# Empty compiler generated dependencies file for bench_table3_frame_queries.
# This may be replaced when dependencies are built.
