# Empty compiler generated dependencies file for bench_fig8_impl_comparison.
# This may be replaced when dependencies are built.
