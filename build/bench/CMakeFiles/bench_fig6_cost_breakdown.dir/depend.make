# Empty dependencies file for bench_fig6_cost_breakdown.
# This may be replaced when dependencies are built.
