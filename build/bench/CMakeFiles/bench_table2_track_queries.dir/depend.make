# Empty dependencies file for bench_table2_track_queries.
# This may be replaced when dependencies are built.
