file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_curves.dir/bench_fig5_curves.cc.o"
  "CMakeFiles/bench_fig5_curves.dir/bench_fig5_curves.cc.o.d"
  "bench_fig5_curves"
  "bench_fig5_curves.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_curves.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
