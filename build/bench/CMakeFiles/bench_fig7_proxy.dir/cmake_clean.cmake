file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_proxy.dir/bench_fig7_proxy.cc.o"
  "CMakeFiles/bench_fig7_proxy.dir/bench_fig7_proxy.cc.o.d"
  "bench_fig7_proxy"
  "bench_fig7_proxy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_proxy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
