file(REMOVE_RECURSE
  "CMakeFiles/track_types_test.dir/track/types_test.cc.o"
  "CMakeFiles/track_types_test.dir/track/types_test.cc.o.d"
  "track_types_test"
  "track_types_test.pdb"
  "track_types_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/track_types_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
