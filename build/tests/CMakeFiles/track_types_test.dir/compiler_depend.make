# Empty compiler generated dependencies file for track_types_test.
# This may be replaced when dependencies are built.
