
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/geom/geometry_test.cc" "tests/CMakeFiles/geom_test.dir/geom/geometry_test.cc.o" "gcc" "tests/CMakeFiles/geom_test.dir/geom/geometry_test.cc.o.d"
  "/root/repo/tests/geom/grid_index_test.cc" "tests/CMakeFiles/geom_test.dir/geom/grid_index_test.cc.o" "gcc" "tests/CMakeFiles/geom_test.dir/geom/grid_index_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/otif_util.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/otif_geom.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
