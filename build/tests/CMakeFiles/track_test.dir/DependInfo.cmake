
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/track/hungarian_test.cc" "tests/CMakeFiles/track_test.dir/track/hungarian_test.cc.o" "gcc" "tests/CMakeFiles/track_test.dir/track/hungarian_test.cc.o.d"
  "/root/repo/tests/track/metrics_test.cc" "tests/CMakeFiles/track_test.dir/track/metrics_test.cc.o" "gcc" "tests/CMakeFiles/track_test.dir/track/metrics_test.cc.o.d"
  "/root/repo/tests/track/recurrent_tracker_test.cc" "tests/CMakeFiles/track_test.dir/track/recurrent_tracker_test.cc.o" "gcc" "tests/CMakeFiles/track_test.dir/track/recurrent_tracker_test.cc.o.d"
  "/root/repo/tests/track/refine_test.cc" "tests/CMakeFiles/track_test.dir/track/refine_test.cc.o" "gcc" "tests/CMakeFiles/track_test.dir/track/refine_test.cc.o.d"
  "/root/repo/tests/track/trackers_test.cc" "tests/CMakeFiles/track_test.dir/track/trackers_test.cc.o" "gcc" "tests/CMakeFiles/track_test.dir/track/trackers_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/otif_util.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/otif_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/track/CMakeFiles/otif_track.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/otif_models.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/otif_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/otif_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/track/CMakeFiles/otif_track_types.dir/DependInfo.cmake"
  "/root/repo/build/src/video/CMakeFiles/otif_video.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
