file(REMOVE_RECURSE
  "CMakeFiles/track_test.dir/track/hungarian_test.cc.o"
  "CMakeFiles/track_test.dir/track/hungarian_test.cc.o.d"
  "CMakeFiles/track_test.dir/track/metrics_test.cc.o"
  "CMakeFiles/track_test.dir/track/metrics_test.cc.o.d"
  "CMakeFiles/track_test.dir/track/recurrent_tracker_test.cc.o"
  "CMakeFiles/track_test.dir/track/recurrent_tracker_test.cc.o.d"
  "CMakeFiles/track_test.dir/track/refine_test.cc.o"
  "CMakeFiles/track_test.dir/track/refine_test.cc.o.d"
  "CMakeFiles/track_test.dir/track/trackers_test.cc.o"
  "CMakeFiles/track_test.dir/track/trackers_test.cc.o.d"
  "track_test"
  "track_test.pdb"
  "track_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/track_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
