# Empty dependencies file for track_test.
# This may be replaced when dependencies are built.
