
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/query/queries_test.cc" "tests/CMakeFiles/query_test.dir/query/queries_test.cc.o" "gcc" "tests/CMakeFiles/query_test.dir/query/queries_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/otif_util.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/otif_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/otif_query.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/otif_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/video/CMakeFiles/otif_video.dir/DependInfo.cmake"
  "/root/repo/build/src/track/CMakeFiles/otif_track_types.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
