
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/baselines/baselines_test.cc" "tests/CMakeFiles/baselines_test.dir/baselines/baselines_test.cc.o" "gcc" "tests/CMakeFiles/baselines_test.dir/baselines/baselines_test.cc.o.d"
  "/root/repo/tests/baselines/frame_query_test.cc" "tests/CMakeFiles/baselines_test.dir/baselines/frame_query_test.cc.o" "gcc" "tests/CMakeFiles/baselines_test.dir/baselines/frame_query_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/otif_util.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/otif_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/otif_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/otif_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/otif_core.dir/DependInfo.cmake"
  "/root/repo/build/src/track/CMakeFiles/otif_track.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/otif_models.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/otif_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/otif_query.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/otif_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/video/CMakeFiles/otif_video.dir/DependInfo.cmake"
  "/root/repo/build/src/track/CMakeFiles/otif_track_types.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
