# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/geom_test[1]_include.cmake")
include("/root/repo/build/tests/video_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/track_types_test[1]_include.cmake")
include("/root/repo/build/tests/track_test[1]_include.cmake")
include("/root/repo/build/tests/nn_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/query_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/models_test[1]_include.cmake")
