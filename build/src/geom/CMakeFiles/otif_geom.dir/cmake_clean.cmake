file(REMOVE_RECURSE
  "CMakeFiles/otif_geom.dir/geometry.cc.o"
  "CMakeFiles/otif_geom.dir/geometry.cc.o.d"
  "CMakeFiles/otif_geom.dir/grid_index.cc.o"
  "CMakeFiles/otif_geom.dir/grid_index.cc.o.d"
  "libotif_geom.a"
  "libotif_geom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/otif_geom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
