# Empty compiler generated dependencies file for otif_geom.
# This may be replaced when dependencies are built.
