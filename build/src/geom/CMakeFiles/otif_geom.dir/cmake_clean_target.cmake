file(REMOVE_RECURSE
  "libotif_geom.a"
)
