file(REMOVE_RECURSE
  "libotif_baselines.a"
)
