file(REMOVE_RECURSE
  "CMakeFiles/otif_baselines.dir/baseline.cc.o"
  "CMakeFiles/otif_baselines.dir/baseline.cc.o.d"
  "CMakeFiles/otif_baselines.dir/blazeit.cc.o"
  "CMakeFiles/otif_baselines.dir/blazeit.cc.o.d"
  "CMakeFiles/otif_baselines.dir/catdet.cc.o"
  "CMakeFiles/otif_baselines.dir/catdet.cc.o.d"
  "CMakeFiles/otif_baselines.dir/centertrack.cc.o"
  "CMakeFiles/otif_baselines.dir/centertrack.cc.o.d"
  "CMakeFiles/otif_baselines.dir/chameleon.cc.o"
  "CMakeFiles/otif_baselines.dir/chameleon.cc.o.d"
  "CMakeFiles/otif_baselines.dir/frame_query.cc.o"
  "CMakeFiles/otif_baselines.dir/frame_query.cc.o.d"
  "CMakeFiles/otif_baselines.dir/miris.cc.o"
  "CMakeFiles/otif_baselines.dir/miris.cc.o.d"
  "CMakeFiles/otif_baselines.dir/noscope.cc.o"
  "CMakeFiles/otif_baselines.dir/noscope.cc.o.d"
  "CMakeFiles/otif_baselines.dir/tasti.cc.o"
  "CMakeFiles/otif_baselines.dir/tasti.cc.o.d"
  "libotif_baselines.a"
  "libotif_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/otif_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
