
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/baseline.cc" "src/baselines/CMakeFiles/otif_baselines.dir/baseline.cc.o" "gcc" "src/baselines/CMakeFiles/otif_baselines.dir/baseline.cc.o.d"
  "/root/repo/src/baselines/blazeit.cc" "src/baselines/CMakeFiles/otif_baselines.dir/blazeit.cc.o" "gcc" "src/baselines/CMakeFiles/otif_baselines.dir/blazeit.cc.o.d"
  "/root/repo/src/baselines/catdet.cc" "src/baselines/CMakeFiles/otif_baselines.dir/catdet.cc.o" "gcc" "src/baselines/CMakeFiles/otif_baselines.dir/catdet.cc.o.d"
  "/root/repo/src/baselines/centertrack.cc" "src/baselines/CMakeFiles/otif_baselines.dir/centertrack.cc.o" "gcc" "src/baselines/CMakeFiles/otif_baselines.dir/centertrack.cc.o.d"
  "/root/repo/src/baselines/chameleon.cc" "src/baselines/CMakeFiles/otif_baselines.dir/chameleon.cc.o" "gcc" "src/baselines/CMakeFiles/otif_baselines.dir/chameleon.cc.o.d"
  "/root/repo/src/baselines/frame_query.cc" "src/baselines/CMakeFiles/otif_baselines.dir/frame_query.cc.o" "gcc" "src/baselines/CMakeFiles/otif_baselines.dir/frame_query.cc.o.d"
  "/root/repo/src/baselines/miris.cc" "src/baselines/CMakeFiles/otif_baselines.dir/miris.cc.o" "gcc" "src/baselines/CMakeFiles/otif_baselines.dir/miris.cc.o.d"
  "/root/repo/src/baselines/noscope.cc" "src/baselines/CMakeFiles/otif_baselines.dir/noscope.cc.o" "gcc" "src/baselines/CMakeFiles/otif_baselines.dir/noscope.cc.o.d"
  "/root/repo/src/baselines/tasti.cc" "src/baselines/CMakeFiles/otif_baselines.dir/tasti.cc.o" "gcc" "src/baselines/CMakeFiles/otif_baselines.dir/tasti.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/otif_core.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/otif_query.dir/DependInfo.cmake"
  "/root/repo/build/src/track/CMakeFiles/otif_track.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/otif_models.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/otif_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/otif_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/video/CMakeFiles/otif_video.dir/DependInfo.cmake"
  "/root/repo/build/src/track/CMakeFiles/otif_track_types.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/otif_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/otif_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
