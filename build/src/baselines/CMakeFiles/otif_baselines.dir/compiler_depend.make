# Empty compiler generated dependencies file for otif_baselines.
# This may be replaced when dependencies are built.
