file(REMOVE_RECURSE
  "CMakeFiles/otif_util.dir/logging.cc.o"
  "CMakeFiles/otif_util.dir/logging.cc.o.d"
  "CMakeFiles/otif_util.dir/stats.cc.o"
  "CMakeFiles/otif_util.dir/stats.cc.o.d"
  "CMakeFiles/otif_util.dir/status.cc.o"
  "CMakeFiles/otif_util.dir/status.cc.o.d"
  "CMakeFiles/otif_util.dir/strings.cc.o"
  "CMakeFiles/otif_util.dir/strings.cc.o.d"
  "CMakeFiles/otif_util.dir/table.cc.o"
  "CMakeFiles/otif_util.dir/table.cc.o.d"
  "libotif_util.a"
  "libotif_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/otif_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
