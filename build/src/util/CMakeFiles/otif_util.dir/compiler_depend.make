# Empty compiler generated dependencies file for otif_util.
# This may be replaced when dependencies are built.
