file(REMOVE_RECURSE
  "libotif_util.a"
)
