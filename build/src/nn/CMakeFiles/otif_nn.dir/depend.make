# Empty dependencies file for otif_nn.
# This may be replaced when dependencies are built.
