file(REMOVE_RECURSE
  "libotif_nn.a"
)
