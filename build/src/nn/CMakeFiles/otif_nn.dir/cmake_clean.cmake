file(REMOVE_RECURSE
  "CMakeFiles/otif_nn.dir/layers.cc.o"
  "CMakeFiles/otif_nn.dir/layers.cc.o.d"
  "CMakeFiles/otif_nn.dir/optimizer.cc.o"
  "CMakeFiles/otif_nn.dir/optimizer.cc.o.d"
  "libotif_nn.a"
  "libotif_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/otif_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
