file(REMOVE_RECURSE
  "libotif_track_types.a"
)
