# Empty dependencies file for otif_track_types.
# This may be replaced when dependencies are built.
