file(REMOVE_RECURSE
  "CMakeFiles/otif_track_types.dir/types.cc.o"
  "CMakeFiles/otif_track_types.dir/types.cc.o.d"
  "libotif_track_types.a"
  "libotif_track_types.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/otif_track_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
