# Empty dependencies file for otif_track.
# This may be replaced when dependencies are built.
