file(REMOVE_RECURSE
  "CMakeFiles/otif_track.dir/hungarian.cc.o"
  "CMakeFiles/otif_track.dir/hungarian.cc.o.d"
  "CMakeFiles/otif_track.dir/iou_tracker.cc.o"
  "CMakeFiles/otif_track.dir/iou_tracker.cc.o.d"
  "CMakeFiles/otif_track.dir/kalman.cc.o"
  "CMakeFiles/otif_track.dir/kalman.cc.o.d"
  "CMakeFiles/otif_track.dir/metrics.cc.o"
  "CMakeFiles/otif_track.dir/metrics.cc.o.d"
  "CMakeFiles/otif_track.dir/recurrent_tracker.cc.o"
  "CMakeFiles/otif_track.dir/recurrent_tracker.cc.o.d"
  "CMakeFiles/otif_track.dir/refine.cc.o"
  "CMakeFiles/otif_track.dir/refine.cc.o.d"
  "CMakeFiles/otif_track.dir/sort_tracker.cc.o"
  "CMakeFiles/otif_track.dir/sort_tracker.cc.o.d"
  "libotif_track.a"
  "libotif_track.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/otif_track.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
