
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/track/hungarian.cc" "src/track/CMakeFiles/otif_track.dir/hungarian.cc.o" "gcc" "src/track/CMakeFiles/otif_track.dir/hungarian.cc.o.d"
  "/root/repo/src/track/iou_tracker.cc" "src/track/CMakeFiles/otif_track.dir/iou_tracker.cc.o" "gcc" "src/track/CMakeFiles/otif_track.dir/iou_tracker.cc.o.d"
  "/root/repo/src/track/kalman.cc" "src/track/CMakeFiles/otif_track.dir/kalman.cc.o" "gcc" "src/track/CMakeFiles/otif_track.dir/kalman.cc.o.d"
  "/root/repo/src/track/metrics.cc" "src/track/CMakeFiles/otif_track.dir/metrics.cc.o" "gcc" "src/track/CMakeFiles/otif_track.dir/metrics.cc.o.d"
  "/root/repo/src/track/recurrent_tracker.cc" "src/track/CMakeFiles/otif_track.dir/recurrent_tracker.cc.o" "gcc" "src/track/CMakeFiles/otif_track.dir/recurrent_tracker.cc.o.d"
  "/root/repo/src/track/refine.cc" "src/track/CMakeFiles/otif_track.dir/refine.cc.o" "gcc" "src/track/CMakeFiles/otif_track.dir/refine.cc.o.d"
  "/root/repo/src/track/sort_tracker.cc" "src/track/CMakeFiles/otif_track.dir/sort_tracker.cc.o" "gcc" "src/track/CMakeFiles/otif_track.dir/sort_tracker.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/track/CMakeFiles/otif_track_types.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/otif_models.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/otif_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/otif_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/video/CMakeFiles/otif_video.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/otif_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/otif_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
