file(REMOVE_RECURSE
  "libotif_track.a"
)
