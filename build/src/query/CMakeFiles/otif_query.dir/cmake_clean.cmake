file(REMOVE_RECURSE
  "CMakeFiles/otif_query.dir/queries.cc.o"
  "CMakeFiles/otif_query.dir/queries.cc.o.d"
  "libotif_query.a"
  "libotif_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/otif_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
