file(REMOVE_RECURSE
  "libotif_query.a"
)
