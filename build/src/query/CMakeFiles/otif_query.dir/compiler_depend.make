# Empty compiler generated dependencies file for otif_query.
# This may be replaced when dependencies are built.
