file(REMOVE_RECURSE
  "libotif_eval.a"
)
