file(REMOVE_RECURSE
  "CMakeFiles/otif_eval.dir/harness.cc.o"
  "CMakeFiles/otif_eval.dir/harness.cc.o.d"
  "CMakeFiles/otif_eval.dir/workload.cc.o"
  "CMakeFiles/otif_eval.dir/workload.cc.o.d"
  "libotif_eval.a"
  "libotif_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/otif_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
