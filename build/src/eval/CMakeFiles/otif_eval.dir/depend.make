# Empty dependencies file for otif_eval.
# This may be replaced when dependencies are built.
