file(REMOVE_RECURSE
  "CMakeFiles/otif_video.dir/codec.cc.o"
  "CMakeFiles/otif_video.dir/codec.cc.o.d"
  "CMakeFiles/otif_video.dir/image.cc.o"
  "CMakeFiles/otif_video.dir/image.cc.o.d"
  "libotif_video.a"
  "libotif_video.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/otif_video.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
