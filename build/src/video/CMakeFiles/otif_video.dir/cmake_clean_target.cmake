file(REMOVE_RECURSE
  "libotif_video.a"
)
