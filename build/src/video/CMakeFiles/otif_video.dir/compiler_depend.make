# Empty compiler generated dependencies file for otif_video.
# This may be replaced when dependencies are built.
