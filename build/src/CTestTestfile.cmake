# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("geom")
subdirs("sim")
subdirs("video")
subdirs("nn")
subdirs("models")
subdirs("track")
subdirs("core")
subdirs("query")
subdirs("baselines")
subdirs("eval")
