file(REMOVE_RECURSE
  "libotif_core.a"
)
