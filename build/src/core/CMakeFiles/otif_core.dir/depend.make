# Empty dependencies file for otif_core.
# This may be replaced when dependencies are built.
