file(REMOVE_RECURSE
  "CMakeFiles/otif_core.dir/best_config.cc.o"
  "CMakeFiles/otif_core.dir/best_config.cc.o.d"
  "CMakeFiles/otif_core.dir/cell_grouping.cc.o"
  "CMakeFiles/otif_core.dir/cell_grouping.cc.o.d"
  "CMakeFiles/otif_core.dir/otif.cc.o"
  "CMakeFiles/otif_core.dir/otif.cc.o.d"
  "CMakeFiles/otif_core.dir/pipeline.cc.o"
  "CMakeFiles/otif_core.dir/pipeline.cc.o.d"
  "CMakeFiles/otif_core.dir/tuner.cc.o"
  "CMakeFiles/otif_core.dir/tuner.cc.o.d"
  "CMakeFiles/otif_core.dir/window_select.cc.o"
  "CMakeFiles/otif_core.dir/window_select.cc.o.d"
  "libotif_core.a"
  "libotif_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/otif_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
