
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/best_config.cc" "src/core/CMakeFiles/otif_core.dir/best_config.cc.o" "gcc" "src/core/CMakeFiles/otif_core.dir/best_config.cc.o.d"
  "/root/repo/src/core/cell_grouping.cc" "src/core/CMakeFiles/otif_core.dir/cell_grouping.cc.o" "gcc" "src/core/CMakeFiles/otif_core.dir/cell_grouping.cc.o.d"
  "/root/repo/src/core/otif.cc" "src/core/CMakeFiles/otif_core.dir/otif.cc.o" "gcc" "src/core/CMakeFiles/otif_core.dir/otif.cc.o.d"
  "/root/repo/src/core/pipeline.cc" "src/core/CMakeFiles/otif_core.dir/pipeline.cc.o" "gcc" "src/core/CMakeFiles/otif_core.dir/pipeline.cc.o.d"
  "/root/repo/src/core/tuner.cc" "src/core/CMakeFiles/otif_core.dir/tuner.cc.o" "gcc" "src/core/CMakeFiles/otif_core.dir/tuner.cc.o.d"
  "/root/repo/src/core/window_select.cc" "src/core/CMakeFiles/otif_core.dir/window_select.cc.o" "gcc" "src/core/CMakeFiles/otif_core.dir/window_select.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/models/CMakeFiles/otif_models.dir/DependInfo.cmake"
  "/root/repo/build/src/track/CMakeFiles/otif_track.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/otif_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/otif_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/video/CMakeFiles/otif_video.dir/DependInfo.cmake"
  "/root/repo/build/src/track/CMakeFiles/otif_track_types.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/otif_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/otif_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
