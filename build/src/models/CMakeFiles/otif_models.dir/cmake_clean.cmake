file(REMOVE_RECURSE
  "CMakeFiles/otif_models.dir/cost_model.cc.o"
  "CMakeFiles/otif_models.dir/cost_model.cc.o.d"
  "CMakeFiles/otif_models.dir/detector.cc.o"
  "CMakeFiles/otif_models.dir/detector.cc.o.d"
  "CMakeFiles/otif_models.dir/embedding.cc.o"
  "CMakeFiles/otif_models.dir/embedding.cc.o.d"
  "CMakeFiles/otif_models.dir/proxy.cc.o"
  "CMakeFiles/otif_models.dir/proxy.cc.o.d"
  "CMakeFiles/otif_models.dir/tracker_net.cc.o"
  "CMakeFiles/otif_models.dir/tracker_net.cc.o.d"
  "libotif_models.a"
  "libotif_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/otif_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
