file(REMOVE_RECURSE
  "libotif_models.a"
)
