# Empty compiler generated dependencies file for otif_models.
# This may be replaced when dependencies are built.
