file(REMOVE_RECURSE
  "CMakeFiles/otif_sim.dir/dataset.cc.o"
  "CMakeFiles/otif_sim.dir/dataset.cc.o.d"
  "CMakeFiles/otif_sim.dir/raster.cc.o"
  "CMakeFiles/otif_sim.dir/raster.cc.o.d"
  "CMakeFiles/otif_sim.dir/world.cc.o"
  "CMakeFiles/otif_sim.dir/world.cc.o.d"
  "libotif_sim.a"
  "libotif_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/otif_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
