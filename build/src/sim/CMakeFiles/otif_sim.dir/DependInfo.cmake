
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/dataset.cc" "src/sim/CMakeFiles/otif_sim.dir/dataset.cc.o" "gcc" "src/sim/CMakeFiles/otif_sim.dir/dataset.cc.o.d"
  "/root/repo/src/sim/raster.cc" "src/sim/CMakeFiles/otif_sim.dir/raster.cc.o" "gcc" "src/sim/CMakeFiles/otif_sim.dir/raster.cc.o.d"
  "/root/repo/src/sim/world.cc" "src/sim/CMakeFiles/otif_sim.dir/world.cc.o" "gcc" "src/sim/CMakeFiles/otif_sim.dir/world.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/otif_util.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/otif_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/video/CMakeFiles/otif_video.dir/DependInfo.cmake"
  "/root/repo/build/src/track/CMakeFiles/otif_track_types.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
