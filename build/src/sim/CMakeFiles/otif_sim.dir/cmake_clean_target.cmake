file(REMOVE_RECURSE
  "libotif_sim.a"
)
