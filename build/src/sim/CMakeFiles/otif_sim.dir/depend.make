# Empty dependencies file for otif_sim.
# This may be replaced when dependencies are built.
