# Empty compiler generated dependencies file for highway_monitor.
# This may be replaced when dependencies are built.
