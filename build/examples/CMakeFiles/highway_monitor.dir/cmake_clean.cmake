file(REMOVE_RECURSE
  "CMakeFiles/highway_monitor.dir/highway_monitor.cc.o"
  "CMakeFiles/highway_monitor.dir/highway_monitor.cc.o.d"
  "highway_monitor"
  "highway_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/highway_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
