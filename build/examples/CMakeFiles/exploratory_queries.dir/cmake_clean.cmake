file(REMOVE_RECURSE
  "CMakeFiles/exploratory_queries.dir/exploratory_queries.cc.o"
  "CMakeFiles/exploratory_queries.dir/exploratory_queries.cc.o.d"
  "exploratory_queries"
  "exploratory_queries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exploratory_queries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
