# Empty dependencies file for exploratory_queries.
# This may be replaced when dependencies are built.
