# Empty dependencies file for turning_movement_count.
# This may be replaced when dependencies are built.
