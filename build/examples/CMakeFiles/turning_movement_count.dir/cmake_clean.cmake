file(REMOVE_RECURSE
  "CMakeFiles/turning_movement_count.dir/turning_movement_count.cc.o"
  "CMakeFiles/turning_movement_count.dir/turning_movement_count.cc.o.d"
  "turning_movement_count"
  "turning_movement_count.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/turning_movement_count.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
