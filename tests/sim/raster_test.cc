#include "sim/raster.h"

#include <gtest/gtest.h>

#include "sim/dataset.h"
#include "sim/world.h"

namespace otif::sim {
namespace {

Clip MakeTestClip() {
  return SimulateClip(MakeDataset(DatasetId::kSynthetic), 7, 200);
}

TEST(RasterizerTest, RendersRequestedResolution) {
  Clip clip = MakeTestClip();
  Rasterizer raster(&clip);
  video::Image img = raster.Render(0, 80, 60);
  EXPECT_EQ(img.width(), 80);
  EXPECT_EQ(img.height(), 60);
  // Pixels clamped to [0, 1].
  for (int y = 0; y < 60; ++y) {
    for (int x = 0; x < 80; ++x) {
      EXPECT_GE(img.at(x, y), 0.0f);
      EXPECT_LE(img.at(x, y), 1.0f);
    }
  }
}

TEST(RasterizerTest, RenderIsDeterministic) {
  Clip clip = MakeTestClip();
  Rasterizer r1(&clip), r2(&clip);
  video::Image a = r1.Render(5, 80, 60);
  video::Image b = r2.Render(5, 80, 60);
  EXPECT_FLOAT_EQ(a.MeanAbsDiff(b), 0.0f);
}

TEST(RasterizerTest, ObjectsContrastWithBackground) {
  Clip clip = MakeTestClip();
  Rasterizer raster(&clip);
  // Find a frame with a reasonably large visible object.
  for (int f = 0; f < clip.num_frames(); ++f) {
    const auto& visible = clip.VisibleAt(f);
    if (visible.empty()) continue;
    const GtObject& obj = clip.objects()[visible[0].object_index];
    const ObjectFrameState& st = obj.states[visible[0].state_index];
    if (st.box.w < 15) continue;
    const int w = 160, h = 120;
    video::Image img = raster.Render(f, w, h);
    const video::Image& bg = raster.Background(w, h);
    const double sx = static_cast<double>(w) / clip.spec().width;
    const double sy = static_cast<double>(h) / clip.spec().height;
    // Mean absolute contrast over the object's box must be clear of the
    // sensor-noise floor so the proxy model has signal to learn from.
    const int x0 = std::max(0, static_cast<int>(st.box.Left() * sx));
    const int x1 = std::min(w - 1, static_cast<int>(st.box.Right() * sx));
    const int y0 = std::max(0, static_cast<int>(st.box.Top() * sy));
    const int y1 = std::min(h - 1, static_cast<int>(st.box.Bottom() * sy));
    if (x1 <= x0 || y1 <= y0) continue;
    double contrast = 0.0;
    int count = 0;
    for (int y = y0; y <= y1; ++y) {
      for (int x = x0; x <= x1; ++x) {
        contrast += std::abs(img.at(x, y) - bg.at(x, y));
        ++count;
      }
    }
    EXPECT_GT(contrast / count, 0.06)
        << "object at frame " << f << " blends into the background";
    return;  // One good frame suffices.
  }
  FAIL() << "no frame with a large visible object";
}

TEST(RasterizerTest, FramesChangeOverTime) {
  Clip clip = MakeTestClip();
  Rasterizer raster(&clip);
  video::Image a = raster.Render(0, 80, 60);
  video::Image b = raster.Render(50, 80, 60);
  EXPECT_GT(a.MeanAbsDiff(b), 0.001f);
}

TEST(RasterizerTest, BackgroundIsCachedAndStable) {
  Clip clip = MakeTestClip();
  Rasterizer raster(&clip);
  const video::Image& bg1 = raster.Background(64, 48);
  const video::Image& bg2 = raster.Background(64, 48);
  EXPECT_EQ(&bg1, &bg2);
}

TEST(RasterizerTest, MovingCameraShiftsBackground) {
  DatasetSpec spec = MakeDataset(DatasetId::kUav);
  Clip clip = SimulateClip(spec, 43, 100);
  Rasterizer raster(&clip);
  // Two frames with different camera offsets should differ even without
  // objects accounting for most pixels.
  video::Image a = raster.Render(0, 96, 54);
  video::Image b = raster.Render(80, 96, 54);
  EXPECT_GT(a.MeanAbsDiff(b), 0.003f);
}

}  // namespace
}  // namespace otif::sim
