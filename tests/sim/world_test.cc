#include "sim/world.h"

#include <gtest/gtest.h>

#include <set>

#include "sim/dataset.h"

namespace otif::sim {
namespace {

TEST(DatasetTest, AllPresetsWellFormed) {
  for (DatasetId id : AllPaperDatasets()) {
    const DatasetSpec spec = MakeDataset(id);
    EXPECT_EQ(spec.name, DatasetName(id));
    EXPECT_GT(spec.width, 0);
    EXPECT_GT(spec.height, 0);
    EXPECT_GE(spec.fps, 5);
    EXPECT_LE(spec.fps, 30);
    EXPECT_FALSE(spec.paths.empty());
    for (const SpawnPath& p : spec.paths) {
      EXPECT_GE(p.waypoints.size(), 2u) << spec.name << "/" << p.label;
      EXPECT_GT(p.rate_hz, 0.0);
      EXPECT_GT(p.speed_mean_px, 0.0);
      EXPECT_GT(p.size_mean_px, 0.0);
      EXPECT_FALSE(p.label.empty());
    }
  }
}

TEST(DatasetTest, PaperResolutions) {
  // Caldot cameras are 720x480, others 1280x720 (paper Sec 4).
  EXPECT_EQ(MakeDataset(DatasetId::kCaldot1).width, 720);
  EXPECT_EQ(MakeDataset(DatasetId::kCaldot2).height, 480);
  EXPECT_EQ(MakeDataset(DatasetId::kTokyo).width, 1280);
  EXPECT_EQ(MakeDataset(DatasetId::kUav).fps, 5);
  EXPECT_EQ(MakeDataset(DatasetId::kAmsterdam).fps, 30);
  EXPECT_EQ(MakeDataset(DatasetId::kJackson).fps, 30);
}

TEST(DatasetTest, TokyoHasTenTurningMovements) {
  const DatasetSpec spec = MakeDataset(DatasetId::kTokyo);
  std::set<std::string> labels;
  for (const SpawnPath& p : spec.paths) labels.insert(p.label);
  EXPECT_EQ(labels.size(), 10u);
}

TEST(DatasetTest, OnlyUavHasMovingCamera) {
  for (DatasetId id : AllPaperDatasets()) {
    const DatasetSpec spec = MakeDataset(id);
    EXPECT_EQ(spec.moving_camera, id == DatasetId::kUav) << spec.name;
  }
}

TEST(SimulateClipTest, DeterministicForSameSeed) {
  const DatasetSpec spec = MakeDataset(DatasetId::kSynthetic);
  Clip a = SimulateClip(spec, 42, 100);
  Clip b = SimulateClip(spec, 42, 100);
  ASSERT_EQ(a.objects().size(), b.objects().size());
  for (size_t i = 0; i < a.objects().size(); ++i) {
    ASSERT_EQ(a.objects()[i].states.size(), b.objects()[i].states.size());
    for (size_t s = 0; s < a.objects()[i].states.size(); ++s) {
      EXPECT_DOUBLE_EQ(a.objects()[i].states[s].box.cx,
                       b.objects()[i].states[s].box.cx);
    }
  }
}

TEST(SimulateClipTest, DifferentSeedsDiffer) {
  const DatasetSpec spec = MakeDataset(DatasetId::kSynthetic);
  Clip a = SimulateClip(spec, 1, 200);
  Clip b = SimulateClip(spec, 2, 200);
  // Object counts or first-object geometry should differ.
  bool differs = a.objects().size() != b.objects().size();
  if (!differs && !a.objects().empty()) {
    differs = a.objects()[0].states[0].box.cx !=
              b.objects()[0].states[0].box.cx;
  }
  EXPECT_TRUE(differs);
}

TEST(SimulateClipTest, ObjectsArePresentAndVisible) {
  const DatasetSpec spec = MakeDataset(DatasetId::kSynthetic);
  Clip clip = SimulateClip(spec, 3, 300);  // 30 seconds at 10 fps.
  EXPECT_GT(clip.objects().size(), 3u);
  // Every recorded state's box intersects the frame.
  for (const GtObject& obj : clip.objects()) {
    EXPECT_FALSE(obj.states.empty());
    for (const ObjectFrameState& st : obj.states) {
      EXPECT_GT(st.box.Right(), 0.0);
      EXPECT_LT(st.box.Left(), spec.width);
      EXPECT_GT(st.box.Bottom(), 0.0);
      EXPECT_LT(st.box.Top(), spec.height);
      EXPECT_GE(st.frame, 0);
      EXPECT_LT(st.frame, 300);
    }
  }
}

TEST(SimulateClipTest, StatesAreFrameContiguousAndMoving) {
  const DatasetSpec spec = MakeDataset(DatasetId::kSynthetic);
  Clip clip = SimulateClip(spec, 5, 300);
  for (const GtObject& obj : clip.objects()) {
    for (size_t s = 1; s < obj.states.size(); ++s) {
      EXPECT_EQ(obj.states[s].frame, obj.states[s - 1].frame + 1)
          << "object " << obj.id;
    }
    if (obj.states.size() >= 10) {
      const double moved = obj.states.back().box.Center().DistanceTo(
          obj.states.front().box.Center());
      EXPECT_GT(moved, 5.0) << "object " << obj.id << " barely moved";
    }
  }
}

TEST(SimulateClipTest, WarmupYieldsSteadyStateAtFrameZero) {
  const DatasetSpec spec = MakeDataset(DatasetId::kTokyo);
  Clip clip = SimulateClip(spec, 11, 50);
  // A busy junction must already have objects visible in frame 0.
  EXPECT_GT(clip.VisibleAt(0).size(), 0u);
}

TEST(SimulateClipTest, BusyJunctionHasObjectsInEveryFrame) {
  // The paper's premise for the segmentation proxy model: busy scenes have
  // objects in every frame, so classification proxies cannot skip frames.
  const DatasetSpec spec = MakeDataset(DatasetId::kTokyo);
  Clip clip = SimulateClip(spec, 13, 200);
  int empty_frames = 0;
  for (int f = 0; f < clip.num_frames(); ++f) {
    if (clip.VisibleAt(f).empty()) ++empty_frames;
  }
  EXPECT_LT(empty_frames, 4);
}

TEST(SimulateClipTest, AmsterdamHasManyCarFreeFrames) {
  // NoScope's premise: a meaningful fraction of frames has zero cars.
  const DatasetSpec spec = MakeDataset(DatasetId::kAmsterdam);
  Clip clip = SimulateClip(spec, 17, 1200);  // 40 s at 30 fps.
  int car_free = 0;
  for (int f = 0; f < clip.num_frames(); ++f) {
    bool has_car = false;
    for (const VisibleObject& vis : clip.VisibleAt(f)) {
      const GtObject& obj = clip.objects()[vis.object_index];
      if (obj.cls != track::ObjectClass::kPedestrian) has_car = true;
    }
    if (!has_car) ++car_free;
  }
  EXPECT_GT(car_free, clip.num_frames() / 5);
}

TEST(SimulateClipTest, GroundTruthDetectionsMatchIndex) {
  const DatasetSpec spec = MakeDataset(DatasetId::kSynthetic);
  Clip clip = SimulateClip(spec, 19, 100);
  for (int f = 0; f < 100; f += 10) {
    const track::FrameDetections dets = clip.GroundTruthDetections(f);
    EXPECT_EQ(dets.size(), clip.VisibleAt(f).size());
    for (const track::Detection& d : dets) {
      EXPECT_EQ(d.frame, f);
      EXPECT_GE(d.gt_id, 0);
    }
  }
}

TEST(SimulateClipTest, GroundTruthTracksFilterShortTracks) {
  const DatasetSpec spec = MakeDataset(DatasetId::kSynthetic);
  Clip clip = SimulateClip(spec, 23, 200);
  const auto all = clip.GroundTruthTracks(1);
  const auto long_only = clip.GroundTruthTracks(20);
  EXPECT_GE(all.size(), long_only.size());
  for (const track::Track& t : long_only) {
    EXPECT_GE(t.detections.size(), 20u);
  }
}

TEST(SimulateClipTest, BrakingEpisodesOccur) {
  DatasetSpec spec = MakeDataset(DatasetId::kSynthetic);
  spec.brake_prob = 0.5;
  Clip clip = SimulateClip(spec, 29, 600);
  int braked = 0;
  for (const GtObject& obj : clip.objects()) {
    if (obj.braked) ++braked;
  }
  EXPECT_GT(braked, 0);
  // At least one braked object should show a pronounced speed drop (>=30%)
  // after its in-clip maximum (some brake outside their visible span).
  int with_drop = 0;
  for (const GtObject& obj : clip.objects()) {
    if (!obj.braked || obj.states.size() < 10) continue;
    double max_speed = 0.0, min_after_max = 1e9;
    for (const ObjectFrameState& st : obj.states) {
      if (st.speed_px_per_sec > max_speed) {
        max_speed = st.speed_px_per_sec;
      } else {
        min_after_max = std::min(min_after_max, st.speed_px_per_sec);
      }
    }
    if (min_after_max < 0.7 * max_speed) ++with_drop;
  }
  EXPECT_GT(with_drop, 0);
}

TEST(SimulateClipTest, UavCameraOffsetsBoundedAndMoving) {
  const DatasetSpec spec = MakeDataset(DatasetId::kUav);
  Clip clip = SimulateClip(spec, 31, 150);  // 30 s at 5 fps.
  double max_offset = 0.0;
  double total_motion = 0.0;
  for (int f = 0; f < clip.num_frames(); ++f) {
    const geom::Point& o = clip.CameraOffset(f);
    max_offset = std::max({max_offset, std::abs(o.x), std::abs(o.y)});
    if (f > 0) {
      total_motion += o.DistanceTo(clip.CameraOffset(f - 1));
    }
  }
  EXPECT_GT(total_motion, 10.0);
  EXPECT_LE(max_offset, spec.camera_drift_max_px * 1.5);
}

TEST(SimulateClipTest, FixedCameraOffsetsAreZero) {
  const DatasetSpec spec = MakeDataset(DatasetId::kSynthetic);
  Clip clip = SimulateClip(spec, 37, 50);
  for (int f = 0; f < 50; ++f) {
    EXPECT_EQ(clip.CameraOffset(f), geom::Point(0, 0));
  }
}

TEST(ClipSeedTest, DistinctAcrossSplitsAndClips) {
  const DatasetSpec spec = MakeDataset(DatasetId::kSynthetic);
  std::set<uint64_t> seeds;
  for (int split = 0; split < 3; ++split) {
    for (int c = 0; c < 10; ++c) {
      seeds.insert(ClipSeed(spec, split, c));
    }
  }
  EXPECT_EQ(seeds.size(), 30u);
}

TEST(SimulateClipTest, ArrivalRateRoughlyMatchesSpec) {
  DatasetSpec spec = MakeDataset(DatasetId::kSynthetic);
  // Long clip for a tight estimate: expected arrivals = sum(rate) * sec.
  const int frames = 3000;  // 300 s.
  Clip clip = SimulateClip(spec, 41, frames);
  double expected_rate = 0.0;
  for (const SpawnPath& p : spec.paths) expected_rate += p.rate_hz;
  // Count objects that *entered* during the clip (exclude warmup carryover
  // by counting objects whose first state is after frame 0 era).
  int entered = 0;
  for (const GtObject& obj : clip.objects()) {
    if (obj.states.front().frame > 0) ++entered;
  }
  const double observed_rate = entered / 300.0;
  EXPECT_NEAR(observed_rate, expected_rate, expected_rate * 0.35);
}

}  // namespace
}  // namespace otif::sim
