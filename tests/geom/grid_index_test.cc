#include "geom/grid_index.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/rng.h"

namespace otif::geom {
namespace {

TEST(GridIndexTest, EmptyQueries) {
  GridIndex idx(10.0);
  EXPECT_TRUE(idx.QueryRadius({0, 0}, 100).empty());
  EXPECT_TRUE(idx.QueryNearest({0, 0}, 5).empty());
  EXPECT_EQ(idx.num_points(), 0u);
}

TEST(GridIndexTest, RadiusQueryFindsInsideOnly) {
  GridIndex idx(10.0);
  idx.Insert({0, 0}, 1);
  idx.Insert({5, 0}, 2);
  idx.Insert({50, 50}, 3);
  std::vector<int64_t> found = idx.QueryRadius({0, 0}, 10.0);
  std::sort(found.begin(), found.end());
  EXPECT_EQ(found, (std::vector<int64_t>{1, 2}));
}

TEST(GridIndexTest, RadiusQueryDeduplicatesIds) {
  GridIndex idx(10.0);
  // Same id inserted at several sample points, as done for cluster centers.
  idx.Insert({0, 0}, 7);
  idx.Insert({1, 1}, 7);
  idx.Insert({2, 2}, 7);
  EXPECT_EQ(idx.QueryRadius({0, 0}, 5.0).size(), 1u);
}

TEST(GridIndexTest, NearestExpandsUntilEnough) {
  GridIndex idx(1.0);
  idx.Insert({0, 0}, 1);
  idx.Insert({100, 0}, 2);
  idx.Insert({200, 0}, 3);
  std::vector<int64_t> found = idx.QueryNearest({0, 0}, 2);
  ASSERT_GE(found.size(), 2u);
  EXPECT_EQ(found[0], 1);
  EXPECT_EQ(found[1], 2);
}

TEST(GridIndexTest, NearestOrdersByDistance) {
  GridIndex idx(5.0);
  idx.Insert({10, 0}, 10);
  idx.Insert({3, 0}, 3);
  idx.Insert({7, 0}, 7);
  std::vector<int64_t> found = idx.QueryNearest({0, 0}, 3);
  ASSERT_EQ(found.size(), 3u);
  EXPECT_EQ(found[0], 3);
  EXPECT_EQ(found[1], 7);
  EXPECT_EQ(found[2], 10);
}

TEST(GridIndexTest, NegativeCoordinates) {
  GridIndex idx(4.0);
  idx.Insert({-13, -7}, 1);
  EXPECT_EQ(idx.QueryRadius({-13, -7}, 1.0).size(), 1u);
  EXPECT_TRUE(idx.QueryRadius({13, 7}, 1.0).empty());
}

// Property test: the grid index returns exactly the brute-force result for
// random point sets and random radius queries.
TEST(GridIndexPropertyTest, MatchesBruteForce) {
  Rng rng(4242);
  for (int trial = 0; trial < 20; ++trial) {
    GridIndex idx(rng.Uniform(2.0, 30.0));
    std::vector<Point> pts;
    const int n = 1 + static_cast<int>(rng.UniformInt(uint64_t{200}));
    for (int i = 0; i < n; ++i) {
      Point p(rng.Uniform(-100, 100), rng.Uniform(-100, 100));
      pts.push_back(p);
      idx.Insert(p, i);
    }
    for (int q = 0; q < 10; ++q) {
      const Point center(rng.Uniform(-120, 120), rng.Uniform(-120, 120));
      const double radius = rng.Uniform(0.0, 60.0);
      std::vector<int64_t> got = idx.QueryRadius(center, radius);
      std::sort(got.begin(), got.end());
      std::vector<int64_t> want;
      for (int i = 0; i < n; ++i) {
        if (pts[i].DistanceTo(center) <= radius) want.push_back(i);
      }
      EXPECT_EQ(got, want) << "trial=" << trial << " query=" << q;
    }
  }
}

}  // namespace
}  // namespace otif::geom
