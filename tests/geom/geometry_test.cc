#include "geom/geometry.h"

#include <gtest/gtest.h>

namespace otif::geom {
namespace {

TEST(PointTest, Arithmetic) {
  Point a(1, 2), b(3, 5);
  EXPECT_EQ(a + b, Point(4, 7));
  EXPECT_EQ(b - a, Point(2, 3));
  EXPECT_EQ(a * 2.0, Point(2, 4));
  EXPECT_DOUBLE_EQ(a.Dot(b), 13.0);
  EXPECT_DOUBLE_EQ(Point(3, 4).Norm(), 5.0);
  EXPECT_DOUBLE_EQ(a.DistanceTo(a), 0.0);
}

TEST(BBoxTest, CornersAndAccessors) {
  BBox b = BBox::FromCorners(0, 0, 10, 20);
  EXPECT_DOUBLE_EQ(b.cx, 5.0);
  EXPECT_DOUBLE_EQ(b.cy, 10.0);
  EXPECT_DOUBLE_EQ(b.w, 10.0);
  EXPECT_DOUBLE_EQ(b.h, 20.0);
  EXPECT_DOUBLE_EQ(b.Left(), 0.0);
  EXPECT_DOUBLE_EQ(b.Right(), 10.0);
  EXPECT_DOUBLE_EQ(b.Top(), 0.0);
  EXPECT_DOUBLE_EQ(b.Bottom(), 20.0);
  EXPECT_DOUBLE_EQ(b.Area(), 200.0);
}

TEST(BBoxTest, IouIdentityAndDisjoint) {
  BBox a(5, 5, 10, 10);
  EXPECT_DOUBLE_EQ(a.Iou(a), 1.0);
  BBox far(100, 100, 10, 10);
  EXPECT_DOUBLE_EQ(a.Iou(far), 0.0);
  EXPECT_FALSE(a.Intersects(far));
}

TEST(BBoxTest, IouPartialOverlap) {
  BBox a = BBox::FromCorners(0, 0, 10, 10);
  BBox b = BBox::FromCorners(5, 0, 15, 10);
  // Intersection 50, union 150.
  EXPECT_NEAR(a.Iou(b), 50.0 / 150.0, 1e-12);
  EXPECT_TRUE(a.Intersects(b));
}

TEST(BBoxTest, TouchingBoxesHaveZeroIou) {
  BBox a = BBox::FromCorners(0, 0, 10, 10);
  BBox b = BBox::FromCorners(10, 0, 20, 10);
  EXPECT_DOUBLE_EQ(a.Iou(b), 0.0);
  EXPECT_FALSE(a.Intersects(b));
}

TEST(BBoxTest, ContainsPointAndBox) {
  BBox a = BBox::FromCorners(0, 0, 10, 10);
  EXPECT_TRUE(a.Contains(Point(5, 5)));
  EXPECT_TRUE(a.Contains(Point(0, 0)));  // Boundary counts.
  EXPECT_FALSE(a.Contains(Point(11, 5)));
  EXPECT_TRUE(a.ContainsBox(BBox::FromCorners(2, 2, 8, 8)));
  EXPECT_FALSE(a.ContainsBox(BBox::FromCorners(2, 2, 12, 8)));
}

TEST(BBoxTest, UnionCoversBoth) {
  BBox a = BBox::FromCorners(0, 0, 5, 5);
  BBox b = BBox::FromCorners(10, 10, 12, 15);
  BBox u = a.Union(b);
  EXPECT_TRUE(u.ContainsBox(a));
  EXPECT_TRUE(u.ContainsBox(b));
  EXPECT_DOUBLE_EQ(u.Left(), 0.0);
  EXPECT_DOUBLE_EQ(u.Bottom(), 15.0);
}

TEST(BBoxTest, ShiftAndScale) {
  BBox a(5, 5, 4, 2);
  BBox s = a.Shifted(1, -1);
  EXPECT_DOUBLE_EQ(s.cx, 6.0);
  EXPECT_DOUBLE_EQ(s.cy, 4.0);
  BBox sc = a.Scaled(0.5);
  EXPECT_DOUBLE_EQ(sc.cx, 2.5);
  EXPECT_DOUBLE_EQ(sc.w, 2.0);
}

TEST(BBoxTest, ClipToFrame) {
  BBox a = BBox::FromCorners(-5, -5, 5, 5);
  BBox c = a.ClippedTo(100, 100);
  EXPECT_DOUBLE_EQ(c.Left(), 0.0);
  EXPECT_DOUBLE_EQ(c.Top(), 0.0);
  EXPECT_DOUBLE_EQ(c.Right(), 5.0);
  // Fully outside boxes collapse to zero area.
  BBox outside = BBox::FromCorners(-10, -10, -1, -1);
  EXPECT_DOUBLE_EQ(outside.ClippedTo(100, 100).Area(), 0.0);
}

TEST(PolygonTest, ContainsConvex) {
  Polygon square({{0, 0}, {10, 0}, {10, 10}, {0, 10}});
  EXPECT_TRUE(square.Contains(Point(5, 5)));
  EXPECT_FALSE(square.Contains(Point(15, 5)));
  EXPECT_TRUE(square.Contains(Point(0, 5)));  // Boundary.
  EXPECT_TRUE(square.Contains(Point(10, 10)));
}

TEST(PolygonTest, ContainsConcave) {
  // L-shape: notch removed from the top-right.
  Polygon ell({{0, 0}, {10, 0}, {10, 4}, {6, 4}, {6, 10}, {0, 10}});
  EXPECT_TRUE(ell.Contains(Point(2, 8)));
  EXPECT_TRUE(ell.Contains(Point(8, 2)));
  EXPECT_FALSE(ell.Contains(Point(8, 8)));  // In the notch.
}

TEST(PolygonTest, EmptyAndArea) {
  Polygon empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_FALSE(empty.Contains(Point(0, 0)));
  Polygon square({{0, 0}, {10, 0}, {10, 10}, {0, 10}});
  EXPECT_DOUBLE_EQ(std::abs(square.SignedArea()), 100.0);
  BBox b = square.Bounds();
  EXPECT_DOUBLE_EQ(b.Area(), 100.0);
}

TEST(PolylineTest, LengthBasic) {
  EXPECT_DOUBLE_EQ(PolylineLength({{0, 0}, {3, 4}}), 5.0);
  EXPECT_DOUBLE_EQ(PolylineLength({{0, 0}}), 0.0);
  EXPECT_DOUBLE_EQ(PolylineLength({{0, 0}, {1, 0}, {1, 1}}), 2.0);
}

TEST(PolylineTest, ResampleStraightLine) {
  std::vector<Point> line = {{0, 0}, {10, 0}};
  std::vector<Point> pts = ResamplePolyline(line, 5);
  ASSERT_EQ(pts.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_NEAR(pts[i].x, 2.5 * i, 1e-9);
    EXPECT_NEAR(pts[i].y, 0.0, 1e-9);
  }
}

TEST(PolylineTest, ResamplePreservesEndpoints) {
  std::vector<Point> poly = {{0, 0}, {4, 0}, {4, 3}, {9, 3}};
  std::vector<Point> pts = ResamplePolyline(poly, 20);
  EXPECT_NEAR(pts.front().DistanceTo(poly.front()), 0.0, 1e-9);
  EXPECT_NEAR(pts.back().DistanceTo(poly.back()), 0.0, 1e-9);
}

TEST(PolylineTest, ResampleEvenSpacing) {
  std::vector<Point> poly = {{0, 0}, {2, 0}, {2, 2}, {5, 2}, {5, 7}};
  std::vector<Point> pts = ResamplePolyline(poly, 13);
  const double total = PolylineLength(poly);
  const double step = total / 12;
  for (size_t i = 1; i < pts.size(); ++i) {
    EXPECT_NEAR(pts[i].DistanceTo(pts[i - 1]), step, step * 0.5)
        << "between samples " << i - 1 << " and " << i;
  }
}

TEST(PolylineTest, ResampleDegenerate) {
  std::vector<Point> dot = {{3, 3}};
  std::vector<Point> pts = ResamplePolyline(dot, 4);
  ASSERT_EQ(pts.size(), 4u);
  for (const Point& p : pts) EXPECT_EQ(p, Point(3, 3));
}

TEST(PolylineTest, DistanceSymmetricAndZeroOnSelf) {
  std::vector<Point> a = {{0, 0}, {10, 0}};
  std::vector<Point> b = {{0, 5}, {10, 5}};
  EXPECT_NEAR(PolylineDistance(a, a, 20), 0.0, 1e-9);
  EXPECT_NEAR(PolylineDistance(a, b, 20), 5.0, 1e-9);
  EXPECT_NEAR(PolylineDistance(a, b, 20), PolylineDistance(b, a, 20), 1e-9);
}

TEST(PolylineTest, DistanceDetectsOppositeDirections) {
  // Same geometry traversed in opposite directions must be far apart --
  // crucial for path breakdown queries (northbound vs southbound).
  std::vector<Point> north = {{5, 0}, {5, 100}};
  std::vector<Point> south = {{5, 100}, {5, 0}};
  EXPECT_GT(PolylineDistance(north, south, 20), 30.0);
}

TEST(PolylineTest, PointAlong) {
  std::vector<Point> line = {{0, 0}, {10, 0}};
  EXPECT_NEAR(PointAlong(line, 0.0).x, 0.0, 1e-9);
  EXPECT_NEAR(PointAlong(line, 0.5).x, 5.0, 1e-9);
  EXPECT_NEAR(PointAlong(line, 1.0).x, 10.0, 1e-9);
  EXPECT_NEAR(PointAlong(line, 2.0).x, 10.0, 1e-9);  // Clamped.
}

TEST(PolylineTest, DirectionAlong) {
  std::vector<Point> poly = {{0, 0}, {10, 0}, {10, 10}};
  Point d0 = DirectionAlong(poly, 0.25);
  EXPECT_NEAR(d0.x, 1.0, 1e-9);
  EXPECT_NEAR(d0.y, 0.0, 1e-9);
  Point d1 = DirectionAlong(poly, 0.75);
  EXPECT_NEAR(d1.x, 0.0, 1e-9);
  EXPECT_NEAR(d1.y, 1.0, 1e-9);
  EXPECT_EQ(DirectionAlong({{1, 1}}, 0.5), Point(0, 0));
}

}  // namespace
}  // namespace otif::geom
