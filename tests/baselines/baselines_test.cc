#include <gtest/gtest.h>

#include "baselines/baseline.h"
#include "baselines/catdet.h"
#include "baselines/centertrack.h"
#include "baselines/chameleon.h"
#include "baselines/miris.h"
#include "eval/workload.h"
#include "query/queries.h"
#include "track/metrics.h"

namespace otif::baselines {
namespace {

std::vector<sim::Clip> TestClips(int n = 2, int frames = 120) {
  std::vector<sim::Clip> clips;
  const sim::DatasetSpec spec = sim::MakeDataset(sim::DatasetId::kSynthetic);
  for (int c = 0; c < n; ++c) {
    clips.push_back(sim::SimulateClip(spec, sim::ClipSeed(spec, 2, c), frames));
  }
  return clips;
}

core::AccuracyFn CountFn(const std::vector<sim::Clip>* clips) {
  return [clips](const std::vector<std::vector<track::Track>>& per_clip) {
    double sum = 0.0;
    for (size_t c = 0; c < clips->size(); ++c) {
      sum += track::CountAccuracy(
          query::CountVehicleTracks(per_clip[c], 10),
          query::GroundTruthVehicleCount((*clips)[c], 10));
    }
    return sum / clips->size();
  };
}

TEST(FastestWithinToleranceTest, PicksFastestInBand) {
  std::vector<MethodPoint> points;
  MethodPoint a;
  a.seconds = 10;
  a.accuracy = 0.95;
  MethodPoint b;
  b.seconds = 4;
  b.accuracy = 0.92;
  MethodPoint c;
  c.seconds = 1;
  c.accuracy = 0.5;
  points = {a, b, c};
  const MethodPoint* pick = FastestWithinTolerance(points, 0.95, 0.05);
  EXPECT_DOUBLE_EQ(pick->seconds, 4.0);
}

TEST(FastestWithinToleranceTest, FallsBackToMostAccurate) {
  std::vector<MethodPoint> points;
  MethodPoint a;
  a.seconds = 10;
  a.accuracy = 0.6;
  MethodPoint b;
  b.seconds = 4;
  b.accuracy = 0.5;
  points = {a, b};
  const MethodPoint* pick = FastestWithinTolerance(points, 0.99, 0.05);
  EXPECT_DOUBLE_EQ(pick->accuracy, 0.6);
}

TEST(MirisTest, GapSweepTradesSpeedForRefinementCost) {
  const auto clips = TestClips(1, 150);
  models::SimClock slow_clock, fast_clock;
  const auto slow = Miris::RunAtGap(clips, 1, 1.0, &slow_clock);
  const auto fast = Miris::RunAtGap(clips, 8, 1.0, &fast_clock);
  EXPECT_EQ(slow.size(), 1u);
  EXPECT_GT(slow[0].size(), 0u);
  EXPECT_GT(fast[0].size(), 0u);
  EXPECT_LT(fast_clock.TotalSeconds(), slow_clock.TotalSeconds());
}

TEST(MirisTest, RefinementExtendsTracksAtHighGap) {
  const auto clips = TestClips(1, 200);
  models::SimClock clock;
  const auto tracks = Miris::RunAtGap(clips, 16, 1.0, &clock);
  // Refinement inserts detections at frames that are not multiples of 16.
  bool has_refined_frame = false;
  for (const auto& t : tracks[0]) {
    for (const auto& d : t.detections) {
      if (d.frame % 16 != 0) has_refined_frame = true;
    }
  }
  EXPECT_TRUE(has_refined_frame);
}

TEST(MirisTest, EntireRuntimeIsQuerySpecific) {
  const auto clips = TestClips(1, 100);
  const auto valid = clips;
  const core::AccuracyFn fn = CountFn(&clips);
  Miris miris;
  const auto points = miris.Run(valid, clips, fn, fn);
  ASSERT_FALSE(points.empty());
  for (const MethodPoint& p : points) {
    EXPECT_DOUBLE_EQ(p.reusable_seconds, 0.0);
    EXPECT_DOUBLE_EQ(p.query_seconds, p.seconds);
  }
}

TEST(ChameleonTest, ProducesMonotonicallyFasterCandidates) {
  const auto clips = TestClips(2, 100);
  const core::AccuracyFn fn = CountFn(&clips);
  Chameleon chameleon;
  const auto points = chameleon.Run(clips, clips, fn, fn);
  ASSERT_GE(points.size(), 3u);
  // First point is the slowest (naive full configuration).
  for (size_t i = 1; i < points.size(); ++i) {
    EXPECT_LT(points[i].seconds, points[0].seconds * 1.01);
  }
  // Tracks are reusable across queries.
  EXPECT_DOUBLE_EQ(points[0].query_seconds, 0.0);
}

TEST(CaTDetTest, CascadeCheaperThanFullRefresh) {
  const auto clips = TestClips(1, 100);
  const core::AccuracyFn fn = CountFn(&clips);
  CaTDet catdet;
  const auto points = catdet.Run(clips, clips, fn, fn);
  ASSERT_GE(points.size(), 3u);
  // refresh=1 (first point) is the most expensive.
  for (size_t i = 1; i < points.size(); ++i) {
    EXPECT_LT(points[i].seconds, points[0].seconds);
  }
  // Accuracy at refresh=1 should be decent.
  EXPECT_GT(points[0].accuracy, 0.5);
}

TEST(CenterTrackTest, BackboneSlowerThanYolo) {
  const models::DetectorArch ct = CenterTrack::Backbone();
  const models::DetectorArch yolo =
      models::ArchByName(models::StandardDetectorArchs(), "yolov3");
  EXPECT_GT(ct.sec_per_pixel, yolo.sec_per_pixel);
}

TEST(CenterTrackTest, NoGoodSpeedAccuracyTradeoff) {
  const auto clips = TestClips(1, 100);
  const core::AccuracyFn fn = CountFn(&clips);
  CenterTrack ct;
  const auto points = ct.Run(clips, clips, fn, fn);
  ASSERT_FALSE(points.empty());
  // Its fastest point is still detector-bound: more expensive per frame
  // than YOLO-based pipelines would be at the same setting.
  double min_sec = 1e18;
  for (const MethodPoint& p : points) min_sec = std::min(min_sec, p.seconds);
  EXPECT_GT(min_sec, 0.05);
}

}  // namespace
}  // namespace otif::baselines
