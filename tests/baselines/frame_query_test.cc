#include "baselines/frame_query.h"

#include <gtest/gtest.h>

#include "baselines/blazeit.h"
#include "baselines/tasti.h"
#include "eval/workload.h"
#include "sim/raster.h"

namespace otif::baselines {
namespace {

std::vector<sim::Clip> TestClips(int n = 2, int frames = 150) {
  std::vector<sim::Clip> clips;
  const sim::DatasetSpec spec = sim::MakeDataset(sim::DatasetId::kSynthetic);
  for (int c = 0; c < n; ++c) {
    clips.push_back(sim::SimulateClip(spec, sim::ClipSeed(spec, 0, c), frames));
  }
  return clips;
}

TEST(FrameTargetTest, CountTarget) {
  const FrameTarget t = CountTarget();
  EXPECT_DOUBLE_EQ(t({}), 0.0);
  EXPECT_DOUBLE_EQ(t({geom::BBox(1, 1, 2, 2), geom::BBox(5, 5, 2, 2)}), 2.0);
}

TEST(FrameTargetTest, RegionTarget) {
  const FrameTarget t =
      RegionTarget(geom::Polygon({{0, 0}, {10, 0}, {10, 10}, {0, 10}}));
  EXPECT_DOUBLE_EQ(t({geom::BBox(5, 5, 2, 2), geom::BBox(50, 50, 2, 2)}),
                   1.0);
}

TEST(FrameTargetTest, HotSpotTarget) {
  const FrameTarget t = HotSpotTarget(20.0);
  EXPECT_DOUBLE_EQ(t({geom::BBox(0, 0, 2, 2), geom::BBox(10, 0, 2, 2),
                      geom::BBox(100, 100, 2, 2)}),
                   2.0);
}

TEST(CountRegressorTest, LearnsToCount) {
  // Frames with k bright blocks; the regressor must learn to count them.
  Rng rng(5);
  CountRegressor reg(1);
  auto make_frame = [&](int k) {
    video::Image img(32, 32, 0.2f);
    for (int i = 0; i < k; ++i) {
      const int x = 3 + static_cast<int>(rng.UniformInt(uint64_t{24}));
      const int y = 3 + static_cast<int>(rng.UniformInt(uint64_t{24}));
      for (int dy = 0; dy < 4; ++dy) {
        for (int dx = 0; dx < 4; ++dx) img.set(x + dx, y + dy, 0.95f);
      }
    }
    return img;
  };
  for (int step = 0; step < 600; ++step) {
    const int k = static_cast<int>(rng.UniformInt(uint64_t{5}));
    reg.TrainStep(make_frame(k), k);
  }
  // Prediction should correlate with the true count.
  double low = 0, high = 0;
  for (int i = 0; i < 20; ++i) {
    low += reg.Predict(make_frame(0));
    high += reg.Predict(make_frame(4));
  }
  EXPECT_LT(low / 20 + 1.0, high / 20)
      << "regressor does not separate 0 objects from 4";
}

TEST(VerifyByScoreTest, RespectsLimitAndSeparation) {
  const auto clips = TestClips(1, 200);
  // Oracle scores: ground-truth counts.
  std::vector<std::pair<double, FrameRef>> scored;
  for (int f = 0; f < clips[0].num_frames(); ++f) {
    scored.push_back({static_cast<double>(GtVehicleBoxes(clips[0], f).size()),
                      FrameRef{0, f}});
  }
  query::CountPredicate predicate(1);
  FrameQueryReport report;
  VerifyByScore(clips, scored, predicate, 5, 20, 1.0, &report);
  EXPECT_LE(report.output_frames.size(), 5u);
  for (size_t i = 0; i < report.output_frames.size(); ++i) {
    for (size_t j = i + 1; j < report.output_frames.size(); ++j) {
      EXPECT_GE(std::abs(report.output_frames[i].frame -
                         report.output_frames[j].frame),
                20);
    }
  }
  EXPECT_GT(report.detector_invocations, 0);
  EXPECT_GT(report.query_seconds, 0.0);
  EXPECT_GT(report.accuracy, 0.7);
}

TEST(BlazeItTest, EndToEndQuery) {
  const auto clips = TestClips(2, 120);
  BlazeIt::Options opts;
  opts.train_steps = 200;
  opts.limit = 5;
  opts.min_separation_sec = 2;
  query::CountPredicate predicate(1);
  const FrameQueryReport report = BlazeIt::RunQuery(
      clips, clips, CountTarget(), predicate, opts, 77);
  EXPECT_GT(report.preprocess_seconds, 0.0);
  EXPECT_GT(report.detector_invocations, 0);
  EXPECT_GT(report.accuracy, 0.5);
}

TEST(TastiTest, IndexReusableAcrossQueries) {
  const auto clips = TestClips(1, 100);
  const Tasti::Index index = Tasti::BuildIndex(clips);
  EXPECT_EQ(index.embeddings.size(), 100u);
  EXPECT_GT(index.preprocess_seconds, 0.0);

  Tasti::Options opts;
  opts.limit = 5;
  opts.min_separation_sec = 2;
  opts.reference_frames = 100;
  query::CountPredicate p1(1);
  query::CountPredicate p2(2);
  const FrameQueryReport r1 =
      Tasti::RunQuery(index, clips, clips, CountTarget(), p1, opts, 5);
  const FrameQueryReport r2 =
      Tasti::RunQuery(index, clips, clips, CountTarget(), p2, opts, 5);
  // Same (reusable) pre-processing cost reported for both queries.
  EXPECT_DOUBLE_EQ(r1.preprocess_seconds, r2.preprocess_seconds);
  EXPECT_GT(r1.query_seconds, 0.0);
}

TEST(EvalWorkloadTest, CalibrationBoundsMatchRate) {
  const auto clips = TestClips(2, 200);
  eval::FrameQuerySpec spec;
  spec.dataset = sim::DatasetId::kSynthetic;
  spec.kind = "count";
  eval::CalibrateFrameQuery(clips, 0.2, &spec);
  ASSERT_GE(spec.n, 2);
  const auto predicate = spec.MakePredicate();
  int64_t matches = 0, frames = 0;
  for (const auto& clip : clips) {
    for (int f = 0; f < clip.num_frames(); ++f) {
      if (query::GroundTruthMatches(clip, f, *predicate)) ++matches;
      ++frames;
    }
  }
  // Either within the bound, or calibration stepped back from zero matches.
  EXPECT_LE(static_cast<double>(matches) / frames, 0.35);
}

TEST(EvalWorkloadTest, StandardFrameQueriesCoverPaperSet) {
  const auto queries = eval::StandardFrameQueries();
  ASSERT_EQ(queries.size(), 6u);
  int count = 0, region = 0, hotspot = 0;
  for (const auto& q : queries) {
    if (q.kind == "count") ++count;
    if (q.kind == "region") ++region;
    if (q.kind == "hotspot") ++hotspot;
  }
  EXPECT_EQ(count, 2);
  EXPECT_EQ(region, 2);
  EXPECT_EQ(hotspot, 2);
}

}  // namespace
}  // namespace otif::baselines
