#include "models/embedding.h"

#include <gtest/gtest.h>

#include "sim/dataset.h"
#include "sim/raster.h"
#include "sim/world.h"

namespace otif::models {
namespace {

TEST(EmbeddingTest, DimensionAndDeterminism) {
  video::Image frame(64, 48, 0.5f);
  FrameEmbedding a = EmbedFrame(frame);
  FrameEmbedding b = EmbedFrame(frame);
  EXPECT_EQ(a.values.size(), static_cast<size_t>(kEmbeddingDim));
  EXPECT_DOUBLE_EQ(a.DistanceTo(b), 0.0);
}

TEST(EmbeddingTest, DistanceSeparatesDifferentContent) {
  video::Image flat(64, 48, 0.5f);
  video::Image busy(64, 48, 0.5f);
  for (int y = 10; y < 20; ++y) {
    for (int x = 10; x < 30; ++x) busy.set(x, y, 1.0f);
  }
  FrameEmbedding fa = EmbedFrame(flat);
  FrameEmbedding fb = EmbedFrame(busy);
  EXPECT_GT(fa.DistanceTo(fb), 0.1);
}

TEST(EmbeddingTest, SimilarFramesAreCloserThanDissimilar) {
  sim::Clip clip = sim::SimulateClip(
      sim::MakeDataset(sim::DatasetId::kSynthetic), 21, 300);
  sim::Rasterizer raster(&clip);
  video::Image f0 = raster.Render(0, 80, 60);
  video::Image f1 = raster.Render(1, 80, 60);
  video::Image f150 = raster.Render(150, 80, 60);
  FrameEmbedding e0 = EmbedFrame(f0);
  // Adjacent frames nearly identical; distant frames differ more.
  EXPECT_LT(e0.DistanceTo(EmbedFrame(f1)) * 1.5,
            e0.DistanceTo(EmbedFrame(f150)) + 0.5);
}

TEST(EmbeddingTest, CostIsPositiveAndSubDetector) {
  EXPECT_GT(EmbeddingSecondsPerFrame(), 0.0);
  EXPECT_LT(EmbeddingSecondsPerFrame(), 0.01);
}

}  // namespace
}  // namespace otif::models
