#include "models/detector.h"

#include <gtest/gtest.h>

#include <vector>

#include "sim/dataset.h"

namespace otif::models {
namespace {

sim::Clip TestClip() {
  return sim::SimulateClip(sim::MakeDataset(sim::DatasetId::kSynthetic), 17,
                           300);
}

TEST(DetectorArchTest, StandardSetHasYoloAndMaskRcnn) {
  const auto archs = StandardDetectorArchs();
  ASSERT_EQ(archs.size(), 2u);
  EXPECT_EQ(archs[0].name, "yolov3");
  EXPECT_EQ(archs[1].name, "mask_rcnn");
  // Mask R-CNN is slower but stronger on small objects.
  EXPECT_GT(archs[1].sec_per_pixel, archs[0].sec_per_pixel);
  EXPECT_LT(archs[1].size50_px, archs[0].size50_px);
}

TEST(DetectorArchTest, ArchByName) {
  const auto archs = StandardDetectorArchs();
  EXPECT_EQ(ArchByName(archs, "yolov3").name, "yolov3");
  EXPECT_DEATH(ArchByName(archs, "nope"), "unknown detector");
}

TEST(DetectorArchTest, YoloThroughputMatchesPaperAnchor) {
  // Paper: YOLOv3 processes 960x540 at 100 fps, i.e. 10 ms per frame.
  const auto archs = StandardDetectorArchs();
  const double sec = DetectorWindowSeconds(archs[0], 960, 540);
  EXPECT_NEAR(sec, 0.010, 0.002);
}

TEST(SimulatedDetectorTest, Deterministic) {
  sim::Clip clip = TestClip();
  SimulatedDetector det(StandardDetectorArchs()[0]);
  const auto a = det.Detect(clip, 10, 1.0);
  const auto b = det.Detect(clip, 10, 1.0);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].box.cx, b[i].box.cx);
    EXPECT_DOUBLE_EQ(a[i].confidence, b[i].confidence);
  }
}

TEST(SimulatedDetectorTest, DetectBatchMatchesSequentialCalls) {
  sim::Clip clip = TestClip();
  SimulatedDetector det(StandardDetectorArchs()[0]);
  for (double scale : {1.0, 0.5}) {
    std::vector<int> frames;
    for (int f = 0; f < 64; f += 4) frames.push_back(f);
    const auto batched = det.DetectBatch(clip, frames, scale);
    ASSERT_EQ(batched.size(), frames.size());
    for (size_t i = 0; i < frames.size(); ++i) {
      const auto single = det.Detect(clip, frames[i], scale);
      ASSERT_EQ(single.size(), batched[i].size()) << "frame " << frames[i];
      for (size_t d = 0; d < single.size(); ++d) {
        EXPECT_EQ(single[d].box.cx, batched[i][d].box.cx);
        EXPECT_EQ(single[d].box.cy, batched[i][d].box.cy);
        EXPECT_EQ(single[d].box.w, batched[i][d].box.w);
        EXPECT_EQ(single[d].box.h, batched[i][d].box.h);
        EXPECT_EQ(single[d].confidence, batched[i][d].confidence);
        EXPECT_EQ(single[d].cls, batched[i][d].cls);
        EXPECT_EQ(single[d].gt_id, batched[i][d].gt_id);
      }
    }
  }
}

TEST(SimulatedDetectorTest, HighRecallAtFullScale) {
  sim::Clip clip = TestClip();
  SimulatedDetector det(StandardDetectorArchs()[0]);
  int gt_total = 0, detected = 0;
  for (int f = 0; f < clip.num_frames(); f += 5) {
    const auto gt = clip.GroundTruthDetections(f);
    const auto dets = det.Detect(clip, f, 1.0);
    for (const auto& g : gt) {
      ++gt_total;
      for (const auto& d : dets) {
        if (d.gt_id == g.gt_id) {
          ++detected;
          break;
        }
      }
    }
  }
  ASSERT_GT(gt_total, 50);
  EXPECT_GT(static_cast<double>(detected) / gt_total, 0.85);
}

TEST(SimulatedDetectorTest, RecallDegradesWithScale) {
  sim::Clip clip = TestClip();
  SimulatedDetector det(StandardDetectorArchs()[0]);
  auto recall_at = [&](double scale) {
    int gt_total = 0, detected = 0;
    for (int f = 0; f < clip.num_frames(); f += 5) {
      const auto gt = clip.GroundTruthDetections(f);
      const auto dets = det.Detect(clip, f, scale);
      for (const auto& g : gt) {
        ++gt_total;
        for (const auto& d : dets) {
          if (d.gt_id == g.gt_id) {
            ++detected;
            break;
          }
        }
      }
    }
    return gt_total > 0 ? static_cast<double>(detected) / gt_total : 0.0;
  };
  const double full = recall_at(1.0);
  const double half = recall_at(0.5);
  const double tiny = recall_at(0.15);
  EXPECT_GE(full, half - 0.02);
  EXPECT_GT(half, tiny + 0.05);
  EXPECT_LT(tiny, 0.75);
}

TEST(SimulatedDetectorTest, MaskRcnnBeatsYoloAtLowScale) {
  sim::Clip clip = TestClip();
  SimulatedDetector yolo(StandardDetectorArchs()[0]);
  SimulatedDetector rcnn(StandardDetectorArchs()[1]);
  auto recall = [&](SimulatedDetector& det, double scale) {
    int gt_total = 0, detected = 0;
    for (int f = 0; f < clip.num_frames(); f += 4) {
      const auto gt = clip.GroundTruthDetections(f);
      const auto dets = det.Detect(clip, f, scale);
      for (const auto& g : gt) {
        ++gt_total;
        for (const auto& d : dets) {
          if (d.gt_id == g.gt_id) {
            ++detected;
            break;
          }
        }
      }
    }
    return static_cast<double>(detected) / std::max(1, gt_total);
  };
  EXPECT_GT(recall(rcnn, 0.2), recall(yolo, 0.2));
}

TEST(SimulatedDetectorTest, FalsePositivesHaveLowConfidenceAndNoGtId) {
  sim::Clip clip = TestClip();
  SimulatedDetector det(StandardDetectorArchs()[0]);
  int fps_seen = 0;
  double fp_conf_sum = 0.0, tp_conf_sum = 0.0;
  int tp_seen = 0;
  for (int f = 0; f < clip.num_frames(); ++f) {
    for (const auto& d : det.Detect(clip, f, 1.0)) {
      if (d.gt_id < 0) {
        ++fps_seen;
        fp_conf_sum += d.confidence;
      } else {
        ++tp_seen;
        tp_conf_sum += d.confidence;
      }
    }
  }
  ASSERT_GT(fps_seen, 0);
  ASSERT_GT(tp_seen, 0);
  EXPECT_LT(fp_conf_sum / fps_seen, tp_conf_sum / tp_seen);
}

TEST(SimulatedDetectorTest, ConfidenceThresholdTradesRecallForPrecision) {
  sim::Clip clip = TestClip();
  SimulatedDetector det(StandardDetectorArchs()[0]);
  int fp_low = 0, fp_high = 0, tp_low = 0, tp_high = 0;
  for (int f = 0; f < clip.num_frames(); f += 2) {
    const auto dets = det.Detect(clip, f, 1.0);
    for (const auto& d : FilterByConfidence(dets, 0.1)) {
      (d.gt_id < 0 ? fp_low : tp_low) += 1;
    }
    for (const auto& d : FilterByConfidence(dets, 0.6)) {
      (d.gt_id < 0 ? fp_high : tp_high) += 1;
    }
  }
  EXPECT_LT(fp_high, fp_low);
  EXPECT_LE(tp_high, tp_low);
  EXPECT_GT(tp_high, 0);
}

TEST(FilterTest, WindowsKeepOnlyCoveredDetections) {
  track::FrameDetections dets;
  track::Detection d;
  d.box = geom::BBox(10, 10, 4, 4);
  dets.push_back(d);
  d.box = geom::BBox(100, 100, 4, 4);
  dets.push_back(d);
  const std::vector<geom::BBox> windows = {
      geom::BBox::FromCorners(0, 0, 50, 50)};
  const auto kept = FilterByWindows(dets, windows);
  ASSERT_EQ(kept.size(), 1u);
  EXPECT_DOUBLE_EQ(kept[0].box.cx, 10.0);
  EXPECT_TRUE(FilterByWindows(dets, {}).empty());
}

TEST(FilterTest, ByClass) {
  track::FrameDetections dets;
  track::Detection d;
  d.cls = track::ObjectClass::kCar;
  dets.push_back(d);
  d.cls = track::ObjectClass::kPedestrian;
  dets.push_back(d);
  EXPECT_EQ(FilterByClass(dets, track::ObjectClass::kCar).size(), 1u);
}

TEST(SimClockTest, ChargesAndMerges) {
  SimClock clock;
  clock.Charge(CostCategory::kDecode, 1.5);
  clock.Charge(CostCategory::kDetect, 2.0);
  EXPECT_DOUBLE_EQ(clock.Seconds(CostCategory::kDecode), 1.5);
  EXPECT_DOUBLE_EQ(clock.TotalSeconds(), 3.5);
  SimClock other;
  other.Charge(CostCategory::kDecode, 0.5);
  clock.Merge(other);
  EXPECT_DOUBLE_EQ(clock.Seconds(CostCategory::kDecode), 2.0);
  clock.Reset();
  EXPECT_DOUBLE_EQ(clock.TotalSeconds(), 0.0);
}

TEST(CostModelTest, DecodeSecondsScalesWithPixels) {
  video::DecodeStats stats;
  stats.frames_decoded = 10;
  stats.pixels_decoded = 10 * 1280 * 720;
  const double sec = DecodeSeconds(stats, DefaultCostConstants());
  EXPECT_GT(sec, 0.0);
  video::DecodeStats smaller = stats;
  smaller.pixels_decoded /= 4;
  EXPECT_LT(DecodeSeconds(smaller, DefaultCostConstants()), sec);
}

}  // namespace
}  // namespace otif::models
