#include "models/proxy.h"

#include <gtest/gtest.h>

#include <vector>

#include "models/detector.h"
#include "sim/dataset.h"
#include "sim/raster.h"
#include "sim/world.h"
#include "util/rng.h"

namespace otif::models {
namespace {

TEST(ProxyResolutionTest, StandardResolutionsWellFormed) {
  const auto resolutions = StandardProxyResolutions();
  ASSERT_EQ(resolutions.size(), 5u);  // Paper trains 5 resolutions.
  for (const ProxyResolution& r : resolutions) {
    EXPECT_EQ(r.world_w % 32, 0);
    EXPECT_EQ(r.world_h % 32, 0);
    EXPECT_EQ(r.grid_w(), r.world_w / 32);
    EXPECT_EQ(r.grid_h(), r.world_h / 32);
    EXPECT_GT(r.world_pixels(), 0.0);
  }
  // Sorted from largest to smallest.
  for (size_t i = 1; i < resolutions.size(); ++i) {
    EXPECT_LT(resolutions[i].world_pixels(), resolutions[i - 1].world_pixels());
  }
}

TEST(ProxyModelTest, ScoreShapeAndRange) {
  ProxyModel model({160, 96}, 1);
  video::Image frame(40, 24, 0.5f);
  nn::Tensor probs = model.Score(frame);
  EXPECT_EQ(probs.dim(0), model.resolution().grid_h());
  EXPECT_EQ(probs.dim(1), model.resolution().grid_w());
  for (int64_t i = 0; i < probs.size(); ++i) {
    EXPECT_GE(probs[i], 0.0f);
    EXPECT_LE(probs[i], 1.0f);
  }
}

TEST(ProxyModelTest, ScoreBatchMatchesSingleScoresExactly) {
  ProxyModel model({160, 96}, 21);
  // Distinct frames, including one at a non-raster size to exercise the
  // shared resize path.
  std::vector<video::Image> frames;
  frames.emplace_back(40, 24, 0.2f);
  frames.emplace_back(40, 24, 0.8f);
  frames.emplace_back(80, 48, 0.5f);
  video::Image gradient(40, 24, 0.0f);
  for (int y = 0; y < gradient.height(); ++y) {
    for (int x = 0; x < gradient.width(); ++x) {
      gradient.set(x, y, static_cast<float>(x + y) / 64.0f);
    }
  }
  frames.push_back(gradient);

  std::vector<const video::Image*> ptrs;
  for (const video::Image& f : frames) ptrs.push_back(&f);
  const std::vector<nn::Tensor> batched = model.ScoreBatch(ptrs);
  ASSERT_EQ(batched.size(), frames.size());
  for (size_t i = 0; i < frames.size(); ++i) {
    const nn::Tensor want = model.Score(frames[i]);
    ASSERT_EQ(want.shape(), batched[i].shape());
    for (int64_t j = 0; j < want.size(); ++j) {
      ASSERT_EQ(want[j], batched[i][j]) << "frame " << i << " cell " << j;
    }
  }
}

TEST(ProxyModelTest, ScoreBatchEmptyIsNoop) {
  ProxyModel model({160, 96}, 22);
  EXPECT_TRUE(model.ScoreBatch({}).empty());
}

TEST(ProxyModelTest, ScoreOfResizedFrameMatchesDirectScore) {
  // The fused resize+center staging path must be bit-identical to resizing
  // first and scoring the raster-size result.
  ProxyModel model({160, 96}, 23);
  video::Image big(80, 48, 0.0f);
  for (int y = 0; y < big.height(); ++y) {
    for (int x = 0; x < big.width(); ++x) {
      big.set(x, y, static_cast<float>((x * 13 + y * 7) % 41) / 40.0f);
    }
  }
  const video::Image sized =
      big.Resized(model.resolution().raster_w(),
                  model.resolution().raster_h());
  const nn::Tensor via_resize = model.Score(sized);
  const nn::Tensor fused = model.Score(big);
  ASSERT_EQ(via_resize.shape(), fused.shape());
  for (int64_t i = 0; i < via_resize.size(); ++i) {
    ASSERT_EQ(via_resize[i], fused[i]) << "cell " << i;
  }
}

TEST(ProxyModelTest, FillInputSliceWritesCenteredPixels) {
  ProxyModel model({160, 96}, 24);
  const int rw = model.resolution().raster_w();
  const int rh = model.resolution().raster_h();
  video::Image frame(rw, rh, 0.0f);
  for (int y = 0; y < rh; ++y) {
    for (int x = 0; x < rw; ++x) {
      frame.set(x, y, static_cast<float>(x + y) / (rw + rh));
    }
  }
  nn::Tensor batch({2, 1, rh, rw});
  model.FillInputSlice(frame, &batch, 1);
  for (int y = 0; y < rh; ++y) {
    for (int x = 0; x < rw; ++x) {
      ASSERT_EQ(batch.at4(1, 0, y, x), frame.at(x, y) - 0.5f)
          << x << "," << y;
    }
  }
  // Slice 0 untouched (still the constructor's zero fill).
  EXPECT_EQ(batch.at4(0, 0, 0, 0), 0.0f);
}

TEST(ProxyModelDeathTest, FillInputSliceValidatesShape) {
  ProxyModel model({160, 96}, 25);
  video::Image frame(40, 24, 0.5f);
  nn::Tensor wrong({2, 1, 10, 10});
  EXPECT_DEATH(model.FillInputSlice(frame, &wrong, 0), "Check failed");
  nn::Tensor batch({2, 1, model.resolution().raster_h(),
                    model.resolution().raster_w()});
  EXPECT_DEATH(model.FillInputSlice(frame, &batch, 2), "Check failed");
}

TEST(ProxyModelTest, CellRectTilesFrame) {
  ProxyModel model({160, 96}, 2);
  const double fw = 320, fh = 240;
  double total_area = 0.0;
  for (int gy = 0; gy < model.resolution().grid_h(); ++gy) {
    for (int gx = 0; gx < model.resolution().grid_w(); ++gx) {
      total_area += model.CellRect(gx, gy, fw, fh).Area();
    }
  }
  EXPECT_NEAR(total_area, fw * fh, 1.0);
}

TEST(ProxyModelTest, MakeLabelsMarksIntersectingCells) {
  ProxyModel model({160, 96}, 3);
  track::FrameDetections dets;
  track::Detection d;
  d.box = geom::BBox(10, 10, 20, 20);  // Top-left corner of a 320x240 frame.
  dets.push_back(d);
  nn::Tensor labels = model.MakeLabels(dets, 320, 240);
  EXPECT_FLOAT_EQ(labels[0], 1.0f);  // Cell (0,0) intersects.
  // The far corner cell must be negative.
  EXPECT_FLOAT_EQ(labels[labels.size() - 1], 0.0f);
  // Some cells positive, most negative.
  int positives = 0;
  for (int64_t i = 0; i < labels.size(); ++i) {
    if (labels[i] > 0.5f) ++positives;
  }
  EXPECT_GE(positives, 1);
  EXPECT_LT(positives, labels.size() / 2);
}

TEST(ProxyModelTest, LearnsToLocalizeObjects) {
  // End-to-end: train on rasterized synthetic frames with ground-truth
  // labels; the trained model must score object cells above empty cells.
  sim::DatasetSpec spec = sim::MakeDataset(sim::DatasetId::kSynthetic);
  sim::Clip clip = sim::SimulateClip(spec, 5, 400);
  sim::Rasterizer raster(&clip);
  ProxyModel model({160, 96}, 7);
  Rng rng(11);

  auto sampler = [&]() {
    // Sample frames that contain at least one object.
    for (;;) {
      const int f = static_cast<int>(rng.UniformInt(
          static_cast<uint64_t>(clip.num_frames())));
      const auto dets = clip.GroundTruthDetections(f);
      if (dets.empty()) continue;
      ProxySample s;
      s.frame = raster.Render(f, model.resolution().raster_w(),
                              model.resolution().raster_h());
      s.labels = model.MakeLabels(dets, spec.width, spec.height);
      return s;
    }
  };
  const double final_loss = TrainProxyModel(&model, sampler, 250);
  EXPECT_LT(final_loss, 0.5);

  // Evaluate separation on held-out frames.
  sim::Clip test_clip = sim::SimulateClip(spec, 6, 200);
  sim::Rasterizer test_raster(&test_clip);
  double pos_score = 0.0, neg_score = 0.0;
  int pos_n = 0, neg_n = 0;
  for (int f = 0; f < test_clip.num_frames(); f += 10) {
    const auto dets = test_clip.GroundTruthDetections(f);
    video::Image frame = test_raster.Render(
        f, model.resolution().raster_w(), model.resolution().raster_h());
    nn::Tensor probs = model.Score(frame);
    nn::Tensor labels = model.MakeLabels(dets, spec.width, spec.height);
    for (int64_t i = 0; i < probs.size(); ++i) {
      if (labels[i] > 0.5f) {
        pos_score += probs[i];
        ++pos_n;
      } else {
        neg_score += probs[i];
        ++neg_n;
      }
    }
  }
  ASSERT_GT(pos_n, 0);
  ASSERT_GT(neg_n, 0);
  EXPECT_GT(pos_score / pos_n, neg_score / neg_n + 0.2)
      << "trained proxy does not separate object cells from empty cells";
}

}  // namespace
}  // namespace otif::models
