#include "models/tracker_net.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"

namespace otif::models {
namespace {

track::Detection MakeDet(int frame, double cx, double cy, double w = 30,
                         double h = 20) {
  track::Detection d;
  d.frame = frame;
  d.box = geom::BBox(cx, cy, w, h);
  return d;
}

TEST(TrackerNetTest, DetFeatureLayout) {
  track::Detection d = MakeDet(10, 320, 180, 64, 36);
  nn::Tensor f = TrackerNet::DetFeature(d, 5, 10.0, 640, 360, 0.4, 0.1);
  ASSERT_EQ(f.size(), TrackerNet::kDetFeatureDim);
  EXPECT_FLOAT_EQ(f[0], 0.5f);
  EXPECT_FLOAT_EQ(f[1], 0.5f);
  EXPECT_FLOAT_EQ(f[2], 0.1f);
  EXPECT_FLOAT_EQ(f[3], 0.1f);
  EXPECT_FLOAT_EQ(f[4], 0.125f);  // 0.5 s / 4 s cap.
  EXPECT_FLOAT_EQ(f[5], 0.4f);
  EXPECT_FLOAT_EQ(f[6], 0.1f);
}

TEST(TrackerNetTest, PairFeatureDetectsMotionDirection) {
  track::Detection last = MakeDet(0, 100, 100);
  track::Detection right = MakeDet(10, 200, 100);
  track::Detection left = MakeDet(10, 0, 100);
  nn::Tensor fr = TrackerNet::PairFeature(last, last, right, 10.0, 640, 360);
  nn::Tensor fl = TrackerNet::PairFeature(last, last, left, 10.0, 640, 360);
  EXPECT_GT(fr[0], 0.0f);
  EXPECT_LT(fl[0], 0.0f);
}

TEST(TrackerNetTest, PairFeatureIouAndElapsed) {
  track::Detection last = MakeDet(0, 100, 100, 40, 30);
  track::Detection same = MakeDet(5, 100, 100, 40, 30);
  nn::Tensor f = TrackerNet::PairFeature(last, last, same, 10.0, 640, 360);
  EXPECT_FLOAT_EQ(f[2], 1.0f);   // Perfect IoU.
  EXPECT_FLOAT_EQ(f[3], 0.0f);   // Same size.
  EXPECT_FLOAT_EQ(f[4], 0.125f); // 0.5 s / 4.
}

TEST(TrackerNetTest, AdvanceChangesHidden) {
  TrackerNet net(1);
  nn::Tensor h0 = net.InitialHidden();
  track::Detection d = MakeDet(0, 100, 100);
  nn::Tensor f = TrackerNet::DetFeature(d, 1, 10.0, 640, 360, 0.5, 0.1);
  nn::Tensor h1 = net.Advance(h0, f);
  EXPECT_EQ(h1.size(), net.hidden_size());
  double diff = 0.0;
  for (int64_t i = 0; i < h1.size(); ++i) diff += std::abs(h1[i] - h0[i]);
  EXPECT_GT(diff, 1e-3);
}

TEST(TrackerNetTest, ScorePairInUnitInterval) {
  TrackerNet net(2);
  nn::Tensor h = net.InitialHidden();
  track::Detection a = MakeDet(0, 100, 100);
  track::Detection b = MakeDet(4, 120, 100);
  nn::Tensor fa = TrackerNet::DetFeature(a, 1, 10.0, 640, 360, 0.5, 0.1);
  h = net.Advance(h, fa);
  nn::Tensor fb = TrackerNet::DetFeature(b, 4, 10.0, 640, 360, 0.5, 0.1);
  nn::Tensor pair = TrackerNet::PairFeature(a, a, b, 10.0, 640, 360);
  const double p = net.ScorePair(h, fb, pair);
  EXPECT_GE(p, 0.0);
  EXPECT_LE(p, 1.0);
}

// Synthesizes linear-motion tracks and trains the net to pick the true
// continuation against decoys; checks it learns motion consistency.
TEST(TrackerNetTest, LearnsMotionConsistentMatching) {
  TrackerNet net(3);
  Rng rng(42);
  const double fw = 640, fh = 360, fps = 10.0;

  auto make_example = [&](int gap) {
    // A track moving with constant velocity; candidates: the true next
    // detection plus two decoys (one static, one moving the wrong way).
    const double vx = rng.Uniform(-30, 30);
    const double vy = rng.Uniform(-20, 20);
    double cx = rng.Uniform(100, 540), cy = rng.Uniform(80, 280);
    TrackerNet::Example ex;
    track::Detection last;
    int frame = 0;
    const int prefix_len = 3;
    for (int i = 0; i < prefix_len; ++i) {
      track::Detection d = MakeDet(frame, cx, cy);
      ex.prefix_features.push_back(TrackerNet::DetFeature(
          d, i == 0 ? gap : gap, fps, fw, fh, 0.5, 0.1));
      last = d;
      cx += vx * gap / fps * fps / 10.0;  // vx is px per frame * 10.
      cy += vy * gap / fps * fps / 10.0;
      frame += gap;
    }
    // True continuation follows the motion; decoys do not.
    track::Detection truth = MakeDet(frame, cx, cy);
    track::Detection decoy1 = MakeDet(frame, cx - vx * 3, cy - vy * 3);
    track::Detection decoy2 =
        MakeDet(frame, rng.Uniform(50, 590), rng.Uniform(50, 310));
    std::vector<track::Detection> cands = {decoy1, truth, decoy2};
    ex.positive_index = 1;
    for (const auto& c : cands) {
      ex.candidate_features.push_back(
          TrackerNet::DetFeature(c, gap, fps, fw, fh, 0.5, 0.1));
      ex.candidate_pair_features.push_back(
          TrackerNet::PairFeature(last, last, c, fps, fw, fh));
    }
    return ex;
  };

  double loss = 1.0;
  for (int step = 0; step < 800; ++step) {
    const int gap = 1 << rng.UniformInt(uint64_t{4});  // 1, 2, 4, 8.
    loss = net.TrainStep(make_example(gap));
  }
  EXPECT_LT(loss, 0.6);

  // Evaluation: the true candidate must outscore decoys most of the time.
  int correct = 0;
  const int trials = 60;
  for (int t = 0; t < trials; ++t) {
    const int gap = 1 << rng.UniformInt(uint64_t{4});
    TrackerNet::Example ex = make_example(gap);
    nn::Tensor h = net.InitialHidden();
    for (const auto& f : ex.prefix_features) h = net.Advance(h, f);
    int best = -1;
    double best_score = -1;
    for (size_t c = 0; c < ex.candidate_features.size(); ++c) {
      const double s = net.ScorePair(h, ex.candidate_features[c],
                                     ex.candidate_pair_features[c]);
      if (s > best_score) {
        best_score = s;
        best = static_cast<int>(c);
      }
    }
    if (best == ex.positive_index) ++correct;
  }
  EXPECT_GT(correct, trials * 2 / 3)
      << "trained tracker picks the true continuation only " << correct
      << "/" << trials;
}

TEST(TrackerNetTest, TrainStepHandlesNoCandidates) {
  TrackerNet net(4);
  TrackerNet::Example ex;
  ex.prefix_features.push_back(TrackerNet::DetFeature(
      MakeDet(0, 100, 100), 1, 10.0, 640, 360, 0.5, 0.1));
  EXPECT_DOUBLE_EQ(net.TrainStep(ex), 0.0);
}

TEST(TrackerNetTest, TrainStepAllNegatives) {
  TrackerNet net(5);
  TrackerNet::Example ex;
  track::Detection a = MakeDet(0, 100, 100);
  ex.prefix_features.push_back(
      TrackerNet::DetFeature(a, 1, 10.0, 640, 360, 0.5, 0.1));
  track::Detection far = MakeDet(4, 600, 300);
  ex.candidate_features.push_back(
      TrackerNet::DetFeature(far, 4, 10.0, 640, 360, 0.5, 0.1));
  ex.candidate_pair_features.push_back(
      TrackerNet::PairFeature(a, a, far, 10.0, 640, 360));
  ex.positive_index = -1;
  const double loss = net.TrainStep(ex);
  EXPECT_GE(loss, 0.0);
}

}  // namespace
}  // namespace otif::models
