#include "nn/gemm.h"

#include <gtest/gtest.h>

#include <vector>

#include "nn/arena.h"
#include "util/rng.h"

namespace otif::nn {
namespace {

std::vector<float> RandomVec(size_t n, Rng* rng) {
  std::vector<float> v(n);
  for (float& x : v) x = static_cast<float>(rng->Gaussian(0.0, 1.0));
  return v;
}

// The contract the blocked kernel must reproduce bit-for-bit: one
// accumulator chain per output, starting at the bias, k ascending.
std::vector<float> NaiveGemmBias(int m, int n, int k,
                                 const std::vector<float>& a,
                                 const std::vector<float>& b,
                                 const float* bias_row,
                                 const float* bias_col) {
  std::vector<float> c(static_cast<size_t>(m) * n);
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      float acc = bias_row != nullptr ? bias_row[i]
                  : bias_col != nullptr ? bias_col[j]
                                        : 0.0f;
      for (int p = 0; p < k; ++p) {
        acc += a[static_cast<size_t>(i) * k + p] *
               b[static_cast<size_t>(p) * n + j];
      }
      c[static_cast<size_t>(i) * n + j] = acc;
    }
  }
  return c;
}

void ExpectBitIdentical(int m, int n, int k, bool row_bias, bool col_bias,
                        uint64_t seed) {
  Rng rng(seed);
  const std::vector<float> a = RandomVec(static_cast<size_t>(m) * k, &rng);
  const std::vector<float> b = RandomVec(static_cast<size_t>(k) * n, &rng);
  const std::vector<float> br = RandomVec(static_cast<size_t>(m), &rng);
  const std::vector<float> bc = RandomVec(static_cast<size_t>(n), &rng);
  const float* bias_row = row_bias ? br.data() : nullptr;
  const float* bias_col = col_bias ? bc.data() : nullptr;

  const std::vector<float> want = NaiveGemmBias(m, n, k, a, b, bias_row,
                                                bias_col);
  std::vector<float> got(static_cast<size_t>(m) * n, -1.0f);
  GemmBias(m, n, k, a.data(), b.data(), bias_row, bias_col, got.data());
  for (size_t i = 0; i < want.size(); ++i) {
    ASSERT_EQ(want[i], got[i])
        << "m=" << m << " n=" << n << " k=" << k << " at " << i;
  }
}

TEST(GemmBiasTest, MatchesNaiveChainExactlyAcrossTileEdges) {
  // Cover full tiles, row remainders (m % 4), column remainders (n % 16),
  // and the column-panel boundary (n > 512).
  const int ms[] = {1, 3, 4, 5, 8, 16};
  const int ns[] = {1, 15, 16, 17, 48};
  const int ks[] = {1, 9, 72};
  uint64_t seed = 1;
  for (int m : ms) {
    for (int n : ns) {
      for (int k : ks) {
        ExpectBitIdentical(m, n, k, /*row_bias=*/true, /*col_bias=*/false,
                           seed++);
        ExpectBitIdentical(m, n, k, /*row_bias=*/false, /*col_bias=*/false,
                           seed++);
      }
    }
  }
}

TEST(GemmBiasTest, ColumnPanelBoundary) {
  ExpectBitIdentical(6, 520, 27, /*row_bias=*/true, /*col_bias=*/false, 99);
  ExpectBitIdentical(4, 1024, 9, /*row_bias=*/true, /*col_bias=*/false, 100);
}

TEST(GemmBiasTest, ColumnBiasMatchesNaive) {
  const int ns[] = {1, 16, 33};
  uint64_t seed = 200;
  for (int m : {1, 4, 7}) {
    for (int n : ns) {
      ExpectBitIdentical(m, n, 24, /*row_bias=*/false, /*col_bias=*/true,
                         seed++);
    }
  }
}

TEST(Im2ColTest, ReproducesPaddedPatchSampling) {
  const int channels = 3, h = 7, w = 9, kernel = 3;
  for (int stride : {1, 2, 3}) {
    Rng rng(7);
    const std::vector<float> input =
        RandomVec(static_cast<size_t>(channels) * h * w, &rng);
    const int oh = (h + stride - 1) / stride;
    const int ow = (w + stride - 1) / stride;
    const int pad = kernel / 2;
    std::vector<float> panel(static_cast<size_t>(channels) * kernel * kernel *
                             oh * ow);
    Im2Col(input.data(), channels, h, w, kernel, stride, oh, ow,
           panel.data());
    for (int ic = 0; ic < channels; ++ic) {
      for (int ky = 0; ky < kernel; ++ky) {
        for (int kx = 0; kx < kernel; ++kx) {
          const int row = (ic * kernel + ky) * kernel + kx;
          for (int oy = 0; oy < oh; ++oy) {
            for (int ox = 0; ox < ow; ++ox) {
              const int iy = oy * stride - pad + ky;
              const int ix = ox * stride - pad + kx;
              const float want =
                  (iy < 0 || iy >= h || ix < 0 || ix >= w)
                      ? 0.0f
                      : input[(static_cast<size_t>(ic) * h + iy) * w + ix];
              const float got =
                  panel[(static_cast<size_t>(row) * oh + oy) * ow + ox];
              ASSERT_EQ(want, got)
                  << "stride=" << stride << " row=" << row << " oy=" << oy
                  << " ox=" << ox;
            }
          }
        }
      }
    }
  }
}

TEST(ScratchArenaTest, PointersStayValidAcrossGrowth) {
  ScratchArena arena;
  ScratchScope scope(arena);
  float* small = arena.Alloc(16);
  small[0] = 42.0f;
  // Force several chunk growths; the first allocation must not move.
  for (int i = 0; i < 6; ++i) {
    float* big = arena.Alloc(size_t{1} << (17 + i));
    big[0] = static_cast<float>(i);
  }
  EXPECT_EQ(small[0], 42.0f);
}

TEST(ScratchArenaTest, ScopeReleasesAndMemoryIsReused) {
  ScratchArena arena;
  float* first = nullptr;
  {
    ScratchScope scope(arena);
    first = arena.Alloc(1024);
  }
  const size_t reserved = arena.FloatsReserved();
  {
    ScratchScope scope(arena);
    float* again = arena.Alloc(1024);
    EXPECT_EQ(first, again);
  }
  // Steady state: repeated scopes allocate no new chunks.
  for (int i = 0; i < 100; ++i) {
    ScratchScope scope(arena);
    arena.Alloc(1024);
    arena.Alloc(2048);
  }
  EXPECT_EQ(arena.FloatsReserved(), reserved);
}

TEST(ScratchArenaTest, NestedScopesUnwindToTheirWatermarks) {
  ScratchArena arena;
  ScratchScope outer(arena);
  float* a = arena.Alloc(8);
  float* inner_ptr = nullptr;
  {
    ScratchScope inner(arena);
    inner_ptr = arena.Alloc(8);
    EXPECT_NE(a, inner_ptr);
  }
  // Inner scope released its allocation; the next Alloc reuses it.
  EXPECT_EQ(inner_ptr, arena.Alloc(8));
}

}  // namespace
}  // namespace otif::nn
