#include "nn/optimizer.h"

#include <gtest/gtest.h>

#include <memory>

#include "nn/layers.h"
#include "util/rng.h"

namespace otif::nn {
namespace {

TEST(AdamTest, MinimizesQuadratic) {
  // Single parameter, loss = 0.5 * (w - 3)^2.
  Parameter w(Tensor::Zeros({1}));
  Adam::Options opts;
  opts.learning_rate = 0.1;
  Adam adam({&w}, opts);
  for (int step = 0; step < 300; ++step) {
    w.grad[0] = w.value[0] - 3.0f;
    adam.Step();
  }
  EXPECT_NEAR(w.value[0], 3.0f, 0.05f);
  EXPECT_EQ(adam.steps_taken(), 300);
}

TEST(AdamTest, StepZeroesGradients) {
  Parameter w(Tensor::Zeros({2}));
  Adam adam({&w}, Adam::Options{});
  w.grad[0] = 1.0f;
  w.grad[1] = -1.0f;
  adam.Step();
  EXPECT_FLOAT_EQ(w.grad[0], 0.0f);
  EXPECT_FLOAT_EQ(w.grad[1], 0.0f);
}

TEST(AdamTest, ClipNormLimitsUpdateDirection) {
  Parameter w(Tensor::Zeros({1}));
  Adam::Options opts;
  opts.learning_rate = 1.0;
  opts.clip_norm = 0.001;
  Adam adam({&w}, opts);
  w.grad[0] = 1000.0f;
  adam.Step();
  // With heavy clipping the first Adam step is still ~lr in magnitude
  // (Adam normalizes by sqrt(v)), but must be finite and negative.
  EXPECT_LT(w.value[0], 0.0f);
  EXPECT_GT(w.value[0], -2.0f);
}

TEST(AdamTest, ZeroGradDiscardsAccumulation) {
  Parameter w(Tensor::Zeros({1}));
  Adam adam({&w}, Adam::Options{});
  w.grad[0] = 5.0f;
  adam.ZeroGrad();
  EXPECT_FLOAT_EQ(w.grad[0], 0.0f);
  EXPECT_EQ(adam.steps_taken(), 0);
}

TEST(AdamTest, TrainsXorMlp) {
  // End-to-end sanity: a 2-layer MLP learns XOR.
  Rng rng(77);
  Sequential mlp;
  mlp.Add(std::make_unique<Linear>(2, 8, &rng));
  mlp.Add(std::make_unique<Tanh>());
  mlp.Add(std::make_unique<Linear>(8, 1, &rng));

  std::vector<Parameter*> params;
  mlp.CollectParameters(&params);
  Adam::Options opts;
  opts.learning_rate = 0.02;
  Adam adam(params, opts);

  const float xs[4][2] = {{0, 0}, {0, 1}, {1, 0}, {1, 1}};
  const float ys[4] = {0, 1, 1, 0};
  for (int epoch = 0; epoch < 500; ++epoch) {
    for (int k = 0; k < 4; ++k) {
      Tensor x({2});
      x[0] = xs[k][0];
      x[1] = xs[k][1];
      Tensor target({1});
      target[0] = ys[k];
      Tensor logits = mlp.Forward(x);
      Tensor grad;
      BceWithLogits(logits, target, nullptr, &grad);
      mlp.Backward(grad);
      adam.Step();
    }
  }
  for (int k = 0; k < 4; ++k) {
    Tensor x({2});
    x[0] = xs[k][0];
    x[1] = xs[k][1];
    Tensor logits = mlp.Forward(x);
    mlp.ClearCache();
    const float p = StableSigmoid(logits[0]);
    EXPECT_NEAR(p, ys[k], 0.2f) << "example " << k;
  }
}

TEST(AdamTest, TrainsGruToRememberFirstInput) {
  // The GRU must learn to output the first element of a length-4 sequence,
  // proving gradient flow through time.
  Rng rng(88);
  GruCell gru(1, 6, &rng);
  Linear head(6, 1, &rng);
  std::vector<Parameter*> params;
  gru.CollectParameters(&params);
  head.CollectParameters(&params);
  Adam::Options opts;
  opts.learning_rate = 0.01;
  Adam adam(params, opts);

  Rng data_rng(99);
  double final_loss = 1.0;
  for (int step = 0; step < 1500; ++step) {
    const float first = data_rng.Bernoulli(0.5) ? 1.0f : 0.0f;
    std::vector<float> seq = {first};
    for (int i = 1; i < 4; ++i) {
      seq.push_back(data_rng.Bernoulli(0.5) ? 1.0f : 0.0f);
    }
    Tensor h = Tensor::Zeros({6});
    std::vector<Tensor> hs;
    for (float v : seq) {
      Tensor x({1});
      x[0] = v;
      h = gru.Step(x, h);
    }
    Tensor logits = head.Forward(h);
    Tensor target({1});
    target[0] = first;
    Tensor grad;
    final_loss = BceWithLogits(logits, target, nullptr, &grad);
    Tensor gh = head.Backward(grad);
    for (int i = 0; i < 4; ++i) {
      auto [gx, gh_prev] = gru.StepBackward(gh);
      gh = std::move(gh_prev);
    }
    adam.Step();
  }
  EXPECT_LT(final_loss, 0.3);
}

}  // namespace
}  // namespace otif::nn
