#include "nn/layers.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <functional>
#include <memory>
#include <vector>

#include "util/rng.h"

namespace otif::nn {
namespace {

// Numerical gradient of a scalar function with respect to one tensor entry.
double NumericalGrad(const std::function<double()>& f, float* x,
                     double eps = 1e-3) {
  const float orig = *x;
  *x = orig + static_cast<float>(eps);
  const double hi = f();
  *x = orig - static_cast<float>(eps);
  const double lo = f();
  *x = orig;
  return (hi - lo) / (2 * eps);
}

// Scalar loss used for gradient checking: 0.5 * sum(out^2); dL/dout = out.
double HalfSumSquares(const Tensor& t) {
  double s = 0.0;
  for (int64_t i = 0; i < t.size(); ++i) s += 0.5 * t[i] * t[i];
  return s;
}

Tensor RandomTensor(std::vector<int> shape, Rng* rng) {
  Tensor t(std::move(shape));
  for (int64_t i = 0; i < t.size(); ++i) {
    t[i] = static_cast<float>(rng->Uniform(-1.0, 1.0));
  }
  return t;
}

// Checks the input gradient of a layer against finite differences.
void CheckInputGradient(Layer* layer, Tensor input, double tol = 2e-2) {
  Tensor out = layer->Forward(input);
  Tensor grad = layer->Backward(out);  // dL/dout = out for HalfSumSquares.
  auto loss = [&]() {
    Tensor o = layer->Forward(input);
    layer->ClearCache();
    return HalfSumSquares(o);
  };
  // Check a sample of entries.
  const int64_t step = std::max<int64_t>(1, input.size() / 24);
  for (int64_t i = 0; i < input.size(); i += step) {
    const double num = NumericalGrad(loss, &input[i]);
    EXPECT_NEAR(grad[i], num, tol) << "input grad mismatch at " << i;
  }
}

// Checks the parameter gradients of a layer against finite differences.
void CheckParameterGradients(Layer* layer, const Tensor& input,
                             double tol = 2e-2) {
  std::vector<Parameter*> params;
  layer->CollectParameters(&params);
  ASSERT_FALSE(params.empty());
  for (Parameter* p : params) p->ZeroGrad();
  Tensor out = layer->Forward(input);
  layer->Backward(out);
  auto loss = [&]() {
    Tensor o = layer->Forward(input);
    layer->ClearCache();
    return HalfSumSquares(o);
  };
  for (Parameter* p : params) {
    const int64_t step = std::max<int64_t>(1, p->value.size() / 16);
    for (int64_t i = 0; i < p->value.size(); i += step) {
      const double num = NumericalGrad(loss, &p->value[i]);
      EXPECT_NEAR(p->grad[i], num, tol)
          << "param grad mismatch at " << i;
    }
  }
}

TEST(StableSigmoidTest, MatchesDefinitionAndIsStable) {
  EXPECT_NEAR(StableSigmoid(0.0f), 0.5f, 1e-6f);
  EXPECT_NEAR(StableSigmoid(2.0f), 1.0f / (1.0f + std::exp(-2.0f)), 1e-6f);
  EXPECT_NEAR(StableSigmoid(100.0f), 1.0f, 1e-6f);
  EXPECT_NEAR(StableSigmoid(-100.0f), 0.0f, 1e-6f);
  EXPECT_FALSE(std::isnan(StableSigmoid(-1000.0f)));
}

TEST(TensorTest, ShapeAndAccess) {
  Tensor t({2, 3, 4});
  EXPECT_EQ(t.size(), 24);
  EXPECT_EQ(t.ndim(), 3);
  t.at3(1, 2, 3) = 7.0f;
  EXPECT_FLOAT_EQ(t.at3(1, 2, 3), 7.0f);
  EXPECT_FLOAT_EQ(t[23], 7.0f);
}

TEST(TensorTest, AddAndScale) {
  Tensor a({3});
  Tensor b({3});
  a[0] = 1;
  b[0] = 2;
  a.Add(b);
  EXPECT_FLOAT_EQ(a[0], 3.0f);
  a.Scale(2.0f);
  EXPECT_FLOAT_EQ(a[0], 6.0f);
}

TEST(TensorTest, RandomHeStatistics) {
  Rng rng(1);
  Tensor t = Tensor::RandomHe({64, 64}, 64, &rng);
  double mean = 0, sq = 0;
  for (int64_t i = 0; i < t.size(); ++i) {
    mean += t[i];
    sq += t[i] * t[i];
  }
  mean /= t.size();
  sq /= t.size();
  EXPECT_NEAR(mean, 0.0, 0.01);
  EXPECT_NEAR(std::sqrt(sq), std::sqrt(2.0 / 64), 0.02);
}

TEST(LinearTest, ForwardComputesAffine) {
  Rng rng(2);
  Linear lin(2, 1, &rng);
  std::vector<Parameter*> params;
  lin.CollectParameters(&params);
  params[0]->value[0] = 2.0f;  // w00
  params[0]->value[1] = 3.0f;  // w01
  params[1]->value[0] = 1.0f;  // b0
  Tensor x({2});
  x[0] = 1.0f;
  x[1] = -1.0f;
  Tensor y = lin.Forward(x);
  lin.ClearCache();
  EXPECT_FLOAT_EQ(y[0], 2.0f - 3.0f + 1.0f);
}

TEST(LinearTest, GradientCheck) {
  Rng rng(3);
  Linear lin(5, 4, &rng);
  CheckInputGradient(&lin, RandomTensor({5}, &rng));
  CheckParameterGradients(&lin, RandomTensor({5}, &rng));
}

TEST(Conv2dTest, OutputShape) {
  Rng rng(4);
  Conv2d conv(2, 3, 3, 2, &rng);
  Tensor in({2, 9, 11});
  Tensor out = conv.Forward(in);
  conv.ClearCache();
  EXPECT_EQ(out.dim(0), 3);
  EXPECT_EQ(out.dim(1), 5);   // ceil(9/2)
  EXPECT_EQ(out.dim(2), 6);   // ceil(11/2)
}

TEST(Conv2dTest, IdentityKernelReproducesInput) {
  Rng rng(5);
  Conv2d conv(1, 1, 3, 1, &rng);
  std::vector<Parameter*> params;
  conv.CollectParameters(&params);
  params[0]->value.Fill(0.0f);
  params[0]->value[4] = 1.0f;  // Center tap of the 3x3 kernel.
  params[1]->value.Fill(0.0f);
  Tensor in = RandomTensor({1, 6, 7}, &rng);
  Tensor out = conv.Forward(in);
  conv.ClearCache();
  for (int64_t i = 0; i < in.size(); ++i) {
    EXPECT_NEAR(out[i], in[i], 1e-6f);
  }
}

TEST(Conv2dTest, GradientCheckStride1) {
  Rng rng(6);
  Conv2d conv(2, 2, 3, 1, &rng);
  CheckInputGradient(&conv, RandomTensor({2, 5, 6}, &rng));
  CheckParameterGradients(&conv, RandomTensor({2, 5, 6}, &rng));
}

TEST(Conv2dTest, GradientCheckStride2) {
  Rng rng(7);
  Conv2d conv(1, 2, 3, 2, &rng);
  CheckInputGradient(&conv, RandomTensor({1, 7, 7}, &rng));
  CheckParameterGradients(&conv, RandomTensor({1, 7, 7}, &rng));
}

TEST(ActivationTest, ReluForwardBackward) {
  Relu relu;
  Tensor x({4});
  x[0] = -1;
  x[1] = 0;
  x[2] = 2;
  x[3] = -3;
  Tensor y = relu.Forward(x);
  EXPECT_FLOAT_EQ(y[0], 0);
  EXPECT_FLOAT_EQ(y[2], 2);
  Tensor g({4});
  g.Fill(1.0f);
  Tensor gx = relu.Backward(g);
  EXPECT_FLOAT_EQ(gx[0], 0);
  EXPECT_FLOAT_EQ(gx[2], 1);
}

TEST(ActivationTest, SigmoidGradientCheck) {
  Rng rng(8);
  Sigmoid sig;
  CheckInputGradient(&sig, RandomTensor({6}, &rng), 1e-2);
}

TEST(ActivationTest, TanhGradientCheck) {
  Rng rng(9);
  Tanh tanh_layer;
  CheckInputGradient(&tanh_layer, RandomTensor({6}, &rng), 1e-2);
}

TEST(SequentialTest, ComposesLayersAndGradients) {
  Rng rng(10);
  Sequential seq;
  seq.Add(std::make_unique<Linear>(4, 8, &rng));
  seq.Add(std::make_unique<Relu>());
  seq.Add(std::make_unique<Linear>(8, 3, &rng));
  EXPECT_EQ(seq.num_layers(), 3u);
  CheckInputGradient(&seq, RandomTensor({4}, &rng));
  CheckParameterGradients(&seq, RandomTensor({4}, &rng));
}

TEST(LayerCacheTest, RepeatedForwardBackwardLifo) {
  // Weight sharing: two forwards, then two backwards in reverse order must
  // produce per-call input gradients.
  Rng rng(11);
  Linear lin(3, 3, &rng);
  Tensor a = RandomTensor({3}, &rng);
  Tensor b = RandomTensor({3}, &rng);
  Tensor out_a = lin.Forward(a);
  Tensor out_b = lin.Forward(b);
  Tensor gb = lin.Backward(out_b);  // Pops b's cache.
  Tensor ga = lin.Backward(out_a);  // Pops a's cache.
  // With symmetric loss, grads should differ because inputs differ.
  bool differ = false;
  for (int i = 0; i < 3; ++i) {
    if (std::abs(ga[i] - gb[i]) > 1e-7) differ = true;
  }
  EXPECT_TRUE(differ);
}

TEST(GruCellTest, StepShapesAndRange) {
  Rng rng(12);
  GruCell gru(3, 5, &rng);
  Tensor x = RandomTensor({3}, &rng);
  Tensor h = Tensor::Zeros({5});
  Tensor h1 = gru.Step(x, h);
  gru.ClearCache();
  EXPECT_EQ(h1.size(), 5);
  for (int64_t i = 0; i < h1.size(); ++i) {
    EXPECT_GE(h1[i], -1.0f);
    EXPECT_LE(h1[i], 1.0f);
  }
}

TEST(GruCellTest, GradientCheckSingleStep) {
  Rng rng(13);
  GruCell gru(3, 4, &rng);
  Tensor x = RandomTensor({3}, &rng);
  Tensor h = RandomTensor({4}, &rng);
  h.Scale(0.5f);

  std::vector<Parameter*> params;
  gru.CollectParameters(&params);
  EXPECT_EQ(params.size(), 9u);
  for (Parameter* p : params) p->ZeroGrad();

  Tensor h_new = gru.Step(x, h);
  auto [gx, gh] = gru.StepBackward(h_new);  // dL/dh_new = h_new.

  auto loss = [&]() {
    Tensor out = gru.Step(x, h);
    gru.ClearCache();
    return HalfSumSquares(out);
  };
  for (int64_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(gx[i], NumericalGrad(loss, &x[i]), 2e-2) << "x[" << i << "]";
  }
  for (int64_t i = 0; i < h.size(); ++i) {
    EXPECT_NEAR(gh[i], NumericalGrad(loss, &h[i]), 2e-2) << "h[" << i << "]";
  }
  for (size_t pi = 0; pi < params.size(); ++pi) {
    Parameter* p = params[pi];
    const int64_t step = std::max<int64_t>(1, p->value.size() / 8);
    for (int64_t i = 0; i < p->value.size(); i += step) {
      EXPECT_NEAR(p->grad[i], NumericalGrad(loss, &p->value[i]), 2e-2)
          << "param " << pi << "[" << i << "]";
    }
  }
}

TEST(GruCellTest, GradientCheckThroughTime) {
  // Two chained steps: backprop through time must route gradients through
  // the hidden state.
  Rng rng(14);
  GruCell gru(2, 3, &rng);
  Tensor x1 = RandomTensor({2}, &rng);
  Tensor x2 = RandomTensor({2}, &rng);
  Tensor h0 = Tensor::Zeros({3});

  Tensor h1 = gru.Step(x1, h0);
  Tensor h2 = gru.Step(x2, h1);
  auto [gx2, gh1] = gru.StepBackward(h2);
  // Add nothing else to gh1: the loss depends on h2 only.
  auto [gx1, gh0] = gru.StepBackward(gh1);

  auto loss = [&]() {
    Tensor a = gru.Step(x1, h0);
    Tensor b = gru.Step(x2, a);
    gru.ClearCache();
    return HalfSumSquares(b);
  };
  for (int64_t i = 0; i < x1.size(); ++i) {
    EXPECT_NEAR(gx1[i], NumericalGrad(loss, &x1[i]), 2e-2) << "x1[" << i << "]";
  }
  for (int64_t i = 0; i < x2.size(); ++i) {
    EXPECT_NEAR(gx2[i], NumericalGrad(loss, &x2[i]), 2e-2) << "x2[" << i << "]";
  }
}

TEST(BceWithLogitsTest, LossAndGradient) {
  Tensor logits({2});
  logits[0] = 0.0f;
  logits[1] = 2.0f;
  Tensor targets({2});
  targets[0] = 1.0f;
  targets[1] = 0.0f;
  Tensor grad;
  const double loss = BceWithLogits(logits, targets, nullptr, &grad);
  // Element 0: -log(sigmoid(0)) = log 2. Element 1: -log(1-sigmoid(2)).
  const double expect0 = std::log(2.0);
  const double expect1 = -std::log(1.0 - 1.0 / (1.0 + std::exp(-2.0)));
  EXPECT_NEAR(loss, (expect0 + expect1) / 2, 1e-6);
  EXPECT_NEAR(grad[0], (0.5 - 1.0) / 2, 1e-6);
  EXPECT_NEAR(grad[1], (1.0 / (1.0 + std::exp(-2.0))) / 2, 1e-6);
}

TEST(BceWithLogitsTest, MaskRestrictsElements) {
  Tensor logits({2});
  logits[0] = 5.0f;
  logits[1] = 0.0f;
  Tensor targets({2});
  targets[0] = 0.0f;
  targets[1] = 1.0f;
  Tensor mask({2});
  mask[0] = 0.0f;
  mask[1] = 1.0f;
  Tensor grad;
  const double loss = BceWithLogits(logits, targets, &mask, &grad);
  EXPECT_NEAR(loss, std::log(2.0), 1e-6);
  EXPECT_FLOAT_EQ(grad[0], 0.0f);
}

TEST(BceWithLogitsTest, EmptyMaskGivesZeroLoss) {
  Tensor logits({2});
  Tensor targets({2});
  Tensor mask({2});  // All zero.
  Tensor grad;
  EXPECT_DOUBLE_EQ(BceWithLogits(logits, targets, &mask, &grad), 0.0);
}

TEST(Conv2dTest, GemmInferMatchesReferenceBitForBit) {
  // The im2col+GEMM engine must reproduce the naive reference loops exactly
  // (one ascending-k accumulator chain per output; see gemm.h), across
  // strides, channel counts, kernel sizes, and odd spatial dims that
  // exercise every tile-edge case.
  Rng rng(11);
  struct Case {
    int in_c, out_c, kernel, stride, h, w;
  };
  const Case cases[] = {
      {1, 8, 3, 2, 64, 104}, {8, 16, 3, 2, 32, 52}, {16, 16, 3, 2, 16, 26},
      {16, 1, 3, 1, 8, 13},  {3, 5, 5, 1, 9, 7},    {2, 4, 3, 3, 10, 11},
      {1, 1, 1, 1, 4, 4},    {4, 3, 3, 2, 5, 5},
  };
  for (const Case& c : cases) {
    Conv2d conv(c.in_c, c.out_c, c.kernel, c.stride, &rng);
    const Tensor input = RandomTensor({c.in_c, c.h, c.w}, &rng);
    const Tensor want = conv.InferReference(input);
    const Tensor got = conv.Infer(input);
    ASSERT_EQ(want.shape(), got.shape());
    for (int64_t i = 0; i < want.size(); ++i) {
      ASSERT_EQ(want[i], got[i])
          << "ic=" << c.in_c << " oc=" << c.out_c << " k=" << c.kernel
          << " s=" << c.stride << " at " << i;
    }
  }
}

TEST(Conv2dTest, BatchedInferMatchesPerSampleExactly) {
  Rng rng(12);
  Conv2d conv(3, 6, 3, 2, &rng);
  const int nb = 4, h = 11, w = 13;
  Tensor batch({nb, 3, h, w});
  std::vector<Tensor> singles;
  for (int b = 0; b < nb; ++b) {
    Tensor one = RandomTensor({3, h, w}, &rng);
    std::copy(one.data(), one.data() + one.size(),
              batch.data() + static_cast<int64_t>(b) * one.size());
    singles.push_back(std::move(one));
  }
  const Tensor out = conv.Infer(batch);
  ASSERT_EQ(out.ndim(), 4);
  ASSERT_EQ(out.dim(0), nb);
  for (int b = 0; b < nb; ++b) {
    const Tensor want = conv.Infer(singles[static_cast<size_t>(b)]);
    const float* got = out.data() + static_cast<int64_t>(b) * want.size();
    for (int64_t i = 0; i < want.size(); ++i) {
      ASSERT_EQ(want[i], got[i]) << "sample " << b << " at " << i;
    }
  }
}

TEST(Conv2dTest, ForwardStillUsesReferencePath) {
  Rng rng(13);
  Conv2d conv(2, 3, 3, 1, &rng);
  const Tensor input = RandomTensor({2, 6, 6}, &rng);
  const Tensor fwd = conv.Forward(input);
  conv.ClearCache();
  const Tensor ref = conv.InferReference(input);
  for (int64_t i = 0; i < ref.size(); ++i) ASSERT_EQ(ref[i], fwd[i]);
}

TEST(LinearTest, BatchedInferMatchesPerRowExactly) {
  Rng rng(14);
  const int in = 37, out = 19, nb = 5;
  Linear linear(in, out, &rng);
  Tensor batch({nb, in});
  std::vector<Tensor> rows;
  for (int b = 0; b < nb; ++b) {
    Tensor row = RandomTensor({in}, &rng);
    std::copy(row.data(), row.data() + in,
              batch.data() + static_cast<int64_t>(b) * in);
    rows.push_back(std::move(row));
  }
  const Tensor got = linear.Infer(batch);
  ASSERT_EQ(got.ndim(), 2);
  ASSERT_EQ(got.dim(0), nb);
  ASSERT_EQ(got.dim(1), out);
  for (int b = 0; b < nb; ++b) {
    const Tensor want = linear.Infer(rows[static_cast<size_t>(b)]);
    for (int o = 0; o < out; ++o) {
      ASSERT_EQ(want[o], got[static_cast<int64_t>(b) * out + o])
          << "row " << b << " out " << o;
    }
  }
}

TEST(MseLossTest, LossAndGradient) {
  Tensor pred({2});
  pred[0] = 1.0f;
  pred[1] = 3.0f;
  Tensor target({2});
  target[0] = 0.0f;
  target[1] = 3.0f;
  Tensor grad;
  const double loss = MseLoss(pred, target, &grad);
  EXPECT_NEAR(loss, 0.25, 1e-6);  // (0.5*1 + 0) / 2.
  EXPECT_NEAR(grad[0], 0.5f, 1e-6);
  EXPECT_NEAR(grad[1], 0.0f, 1e-6);
}

}  // namespace
}  // namespace otif::nn
