// Integration test: the full Table 2 style experiment on the small
// synthetic dataset with a reduced method set, checking the cross-module
// invariants the benches rely on.

#include <gtest/gtest.h>

#include <utility>

#include "eval/harness.h"
#include "util/logging.h"

namespace otif::eval {
namespace {

const TrackExperimentResult& SharedResult() {
  static const TrackExperimentResult* result = [] {
    ExperimentOptions options;
    options.scale.train_clips = 2;
    options.scale.valid_clips = 2;
    options.scale.test_clips = 2;
    options.scale.clip_seconds = 10;
    options.scale.proxy_train_steps = 150;
    options.scale.tracker_train_steps = 400;
    options.scale.proxy_resolutions = 2;
    options.methods = {"miris", "chameleon"};
    StatusOr<TrackExperimentResult> result_or =
        RunTrackExperiment(sim::DatasetId::kSynthetic, options);
    OTIF_CHECK(result_or.ok()) << result_or.status().ToString();
    return new TrackExperimentResult(std::move(result_or).value());
  }();
  return *result;
}

TEST(HarnessErrorTest, UnknownMethodReturnsInvalidArgument) {
  ExperimentOptions options;
  options.scale.train_clips = 1;
  options.scale.valid_clips = 1;
  options.scale.test_clips = 1;
  options.scale.clip_seconds = 5;
  options.scale.proxy_train_steps = 10;
  options.scale.tracker_train_steps = 10;
  options.methods = {"no_such_method"};
  const StatusOr<TrackExperimentResult> result =
      RunTrackExperiment(sim::DatasetId::kSynthetic, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(HarnessIntegrationTest, RunsAllRequestedMethods) {
  const TrackExperimentResult& r = SharedResult();
  EXPECT_EQ(r.dataset, "synthetic");
  ASSERT_TRUE(r.curves.count("otif"));
  ASSERT_TRUE(r.curves.count("miris"));
  ASSERT_TRUE(r.curves.count("chameleon"));
  EXPECT_FALSE(r.curves.count("noscope"));
}

TEST(HarnessIntegrationTest, EveryMethodHasPositivePoints) {
  const TrackExperimentResult& r = SharedResult();
  for (const auto& [method, points] : r.curves) {
    ASSERT_FALSE(points.empty()) << method;
    for (const auto& p : points) {
      EXPECT_GT(p.seconds, 0.0) << method;
      EXPECT_GE(p.accuracy, 0.0) << method;
      EXPECT_LE(p.accuracy, 1.0) << method;
      EXPECT_NEAR(p.reusable_seconds + p.query_seconds, p.seconds, 1e-9)
          << method << " cost decomposition must sum to the total";
    }
  }
  EXPECT_GT(r.best_accuracy, 0.5);
}

TEST(HarnessIntegrationTest, OtifCurveIncludesThetaBestAnchor) {
  const TrackExperimentResult& r = SharedResult();
  // The first OTIF curve point is theta_best (SORT, no proxy).
  const auto& first = r.otif->curve().front();
  EXPECT_EQ(first.config.tracker, core::TrackerKind::kSort);
  EXPECT_FALSE(first.config.use_proxy);
}

TEST(HarnessIntegrationTest, MirisFiveQueryCostIsFiveTimes) {
  const TrackExperimentResult& r = SharedResult();
  for (const auto& p : r.curves.at("miris")) {
    EXPECT_NEAR(SecondsForQueries(p, 5), 5 * SecondsForQueries(p, 1), 1e-9);
  }
  for (const auto& p : r.curves.at("otif")) {
    EXPECT_NEAR(SecondsForQueries(p, 5), SecondsForQueries(p, 1), 1e-9);
  }
}

TEST(HarnessIntegrationTest, OtifCompetitiveOnSyntheticData) {
  const TrackExperimentResult& r = SharedResult();
  const auto* otif_pick = baselines::FastestWithinTolerance(
      r.curves.at("otif"), r.best_accuracy, 0.1);
  const auto* miris_pick = baselines::FastestWithinTolerance(
      r.curves.at("miris"), r.best_accuracy, 0.1);
  // At five queries OTIF must beat Miris decisively (the paper's headline).
  EXPECT_LT(SecondsForQueries(*otif_pick, 5),
            SecondsForQueries(*miris_pick, 5));
}

}  // namespace
}  // namespace otif::eval
