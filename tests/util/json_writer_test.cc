// Tests for the shared streaming JSON writer: document shapes, separators,
// escaping, number formatting, and raw-value splicing.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <utility>

#include "util/json_writer.h"

namespace otif {
namespace {

TEST(JsonWriterTest, EmptyContainers) {
  {
    JsonWriter w;
    w.BeginObject().EndObject();
    EXPECT_EQ(std::move(w).TakeString(), "{}");
  }
  {
    JsonWriter w;
    w.BeginArray().EndArray();
    EXPECT_EQ(std::move(w).TakeString(), "[]");
  }
}

TEST(JsonWriterTest, ObjectSeparatorsUseSpaceAfterColonAndComma) {
  JsonWriter w;
  w.BeginObject();
  w.Key("a").Value(1);
  w.Key("b").Value(2);
  w.EndObject();
  EXPECT_EQ(std::move(w).TakeString(), "{\"a\": 1, \"b\": 2}");
}

TEST(JsonWriterTest, NestedContainers) {
  JsonWriter w;
  w.BeginObject();
  w.Key("xs").BeginArray().Value(1).Value(2).Value(3).EndArray();
  w.Key("o").BeginObject().Key("k").Value("v").EndObject();
  w.EndObject();
  EXPECT_EQ(std::move(w).TakeString(),
            "{\"xs\": [1, 2, 3], \"o\": {\"k\": \"v\"}}");
}

TEST(JsonWriterTest, ScalarTypes) {
  JsonWriter w;
  w.BeginArray();
  w.Value("s").Value(true).Value(false).Null();
  w.Value(int64_t{-5}).Value(uint64_t{18446744073709551615ull});
  w.EndArray();
  EXPECT_EQ(std::move(w).TakeString(),
            "[\"s\", true, false, null, -5, 18446744073709551615]");
}

TEST(JsonWriterTest, DoubleFormatting) {
  JsonWriter w;
  w.BeginArray();
  w.Value(0.0).Value(1.5).Value(0.125);
  w.Value(std::numeric_limits<double>::infinity());  // Not JSON: null.
  w.Value(std::nan(""));                             // Not JSON: null.
  w.EndArray();
  EXPECT_EQ(std::move(w).TakeString(), "[0, 1.5, 0.125, null, null]");
}

TEST(JsonWriterTest, EscapesControlCharactersQuotesAndBackslashes) {
  JsonWriter w;
  w.BeginObject();
  w.Key("path\\key").Value("line1\nline2\t\"quoted\"\x01");
  w.EndObject();
  EXPECT_EQ(std::move(w).TakeString(),
            "{\"path\\\\key\": \"line1\\nline2\\t\\\"quoted\\\"\\u0001\"}");
}

TEST(JsonWriterTest, RawValueSplicesVerbatim) {
  JsonWriter inner;
  inner.BeginObject();
  inner.Key("n").Value(1);
  inner.EndObject();
  JsonWriter w;
  w.BeginObject();
  w.Key("nested").RawValue(std::move(inner).TakeString());
  w.Key("after").Value(2);
  w.EndObject();
  EXPECT_EQ(std::move(w).TakeString(),
            "{\"nested\": {\"n\": 1}, \"after\": 2}");
}

TEST(JsonWriterTest, TopLevelScalarDocument) {
  JsonWriter w;
  w.Value(42);
  EXPECT_EQ(w.str(), "42");
}

TEST(JsonWriterDeathTest, MisuseAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // A value in an object without a pending key.
  EXPECT_DEATH(
      {
        JsonWriter w;
        w.BeginObject();
        w.Value(1);
      },
      "");
  // Closing the wrong container.
  EXPECT_DEATH(
      {
        JsonWriter w;
        w.BeginArray();
        w.EndObject();
      },
      "");
  // A second top-level value.
  EXPECT_DEATH(
      {
        JsonWriter w;
        w.Value(1);
        w.Value(2);
      },
      "");
}

}  // namespace
}  // namespace otif
