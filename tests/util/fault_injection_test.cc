// Deterministic fault-injection registry tests: spec parsing, the
// everything-off default, seeded replayability, rate endpoints, clip
// scoping, and the injected-fault counters.

#include "util/fault_injection.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "util/status.h"
#include "util/telemetry.h"
#include "util/trace_timeline.h"

namespace otif::fault {
namespace {

class FaultInjectionTest : public ::testing::Test {
 protected:
  void TearDown() override { ClearFaults(); }
};

TEST_F(FaultInjectionTest, DisabledByDefault) {
  EXPECT_FALSE(Enabled());
  Injection inj;
  // A macro-style probe on an unarmed site never fires.
  EXPECT_FALSE(OTIF_FAULT_POINT("test.default", 0, &inj));
}

TEST_F(FaultInjectionTest, ConfigureArmsAndClearDisarms) {
  ASSERT_TRUE(ConfigureFaults("test.arm:error:1:42").ok());
  EXPECT_TRUE(Enabled());
  const std::vector<std::string> armed = ArmedSites();
  EXPECT_NE(std::find(armed.begin(), armed.end(), "test.arm"), armed.end());

  Injection inj;
  EXPECT_TRUE(OTIF_FAULT_POINT("test.arm", 0, &inj));
  EXPECT_EQ(inj.kind, Kind::kError);

  ClearFaults();
  EXPECT_FALSE(Enabled());
  EXPECT_FALSE(OTIF_FAULT_POINT("test.arm", 0, &inj));
  EXPECT_TRUE(ArmedSites().empty());
}

TEST_F(FaultInjectionTest, MalformedSpecsRejectedAndPreviousConfigKept) {
  ASSERT_TRUE(ConfigureFaults("test.keep:error:1:7").ok());
  for (const char* bad :
       {"site_only", "a:b", "a:notakind:0.5:1", "a:error:1.5:1",
        "a:error:-0.1:1", "a:error:0.5:notanumber", "a:error:0.5:1:bogus=3",
        ":error:0.5:1", "a:error:0.5:1:clip=-2"}) {
    EXPECT_EQ(ConfigureFaults(bad).code(), StatusCode::kInvalidArgument)
        << "spec: " << bad;
  }
  // The last good configuration survived every rejected attempt.
  EXPECT_TRUE(Enabled());
  Injection inj;
  EXPECT_TRUE(OTIF_FAULT_POINT("test.keep", 0, &inj));
}

TEST_F(FaultInjectionTest, ParsesOptionsAndMultipleEntries) {
  ASSERT_TRUE(
      ConfigureFaults("test.a:stall:1:3:ms=25, test.b:deny:1:4:clip=2").ok());
  Injection inj;
  ASSERT_TRUE(GetSite("test.a")->Inject(/*clip=*/0, /*token=*/0, &inj));
  EXPECT_EQ(inj.kind, Kind::kStall);
  EXPECT_EQ(inj.stall_ms, 25);

  // test.b is scoped to clip 2 only.
  EXPECT_FALSE(GetSite("test.b")->Inject(/*clip=*/0, /*token=*/0, &inj));
  ASSERT_TRUE(GetSite("test.b")->Inject(/*clip=*/2, /*token=*/0, &inj));
  EXPECT_EQ(inj.kind, Kind::kDeny);
}

TEST_F(FaultInjectionTest, SeededDecisionsAreDeterministicPerToken) {
  ASSERT_TRUE(ConfigureFaults("test.det:error:0.5:1234").ok());
  Site* site = GetSite("test.det");
  std::vector<bool> first;
  Injection inj;
  for (int64_t token = 0; token < 256; ++token) {
    first.push_back(site->Inject(/*clip=*/0, token, &inj));
  }
  // Same seed, same tokens: bit-identical replay, any number of times.
  for (int64_t token = 0; token < 256; ++token) {
    EXPECT_EQ(site->Inject(/*clip=*/0, token, &inj), first[token]) << token;
  }
  // Roughly half fire at rate 0.5 (deterministic, just sanity-bounded).
  const int fired = std::count(first.begin(), first.end(), true);
  EXPECT_GT(fired, 64);
  EXPECT_LT(fired, 192);

  // A different seed produces a different decision sequence.
  ASSERT_TRUE(ConfigureFaults("test.det:error:0.5:99").ok());
  std::vector<bool> reseeded;
  for (int64_t token = 0; token < 256; ++token) {
    reseeded.push_back(site->Inject(/*clip=*/0, token, &inj));
  }
  EXPECT_NE(first, reseeded);
}

TEST_F(FaultInjectionTest, RateEndpoints) {
  ASSERT_TRUE(ConfigureFaults("test.never:error:0:1,test.always:error:1:1")
                  .ok());
  Injection inj;
  for (int64_t token = 0; token < 64; ++token) {
    EXPECT_FALSE(GetSite("test.never")->Inject(/*clip=*/0, token, &inj));
    EXPECT_TRUE(GetSite("test.always")->Inject(/*clip=*/0, token, &inj));
  }
}

TEST_F(FaultInjectionTest, AutoTokenUsesTimelineClipContext) {
  ASSERT_TRUE(ConfigureFaults("test.ctx:error:1:5:clip=3").ok());
  Injection inj;
  // No timeline context: clip resolves to the default (not 3) and the
  // clip-scoped site stays quiet.
  EXPECT_FALSE(OTIF_FAULT_POINT("test.ctx", -1, &inj));
  {
    telemetry::timeline::ScopedContext ctx({.clip = 3});
    EXPECT_TRUE(OTIF_FAULT_POINT("test.ctx", -1, &inj));
  }
  EXPECT_FALSE(OTIF_FAULT_POINT("test.ctx", -1, &inj));
}

TEST_F(FaultInjectionTest, InjectedCounterCountsFiredFaultsOnly) {
  telemetry::Counter* counter =
      telemetry::MetricsRegistry::Global().GetCounter(
          "fault.injected.test.count");
  const int64_t before = counter->value();
  ASSERT_TRUE(ConfigureFaults("test.count:error:1:1").ok());
  Injection inj;
  EXPECT_TRUE(OTIF_FAULT_POINT("test.count", 0, &inj));
  EXPECT_TRUE(OTIF_FAULT_POINT("test.count", 1, &inj));
  EXPECT_EQ(counter->value(), before + 2);

  ASSERT_TRUE(ConfigureFaults("test.count:error:0:1").ok());
  EXPECT_FALSE(OTIF_FAULT_POINT("test.count", 2, &inj));
  EXPECT_EQ(counter->value(), before + 2);
}

}  // namespace
}  // namespace otif::fault
