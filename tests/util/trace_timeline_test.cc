// Tests for the timeline tracing layer: ring-buffer round trips and
// wraparound, trace-context propagation (nesting and across the thread
// pool), Chrome trace-event JSON rendering, the flight recorder, and
// concurrent producers racing a snapshot (run under TSan by check.sh).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "util/telemetry.h"
#include "util/thread_pool.h"
#include "util/trace.h"
#include "util/trace_timeline.h"

namespace otif::telemetry::timeline {
namespace {

class TraceTimelineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    previous_enabled_ = CollectionEnabled();
    previous_capacity_ = BufferCapacity();
    ClearEvents();
  }
  void TearDown() override {
    SetCollectionEnabled(previous_enabled_);
    SetBufferCapacity(previous_capacity_);
    ClearEvents();
  }

  bool previous_enabled_ = false;
  size_t previous_capacity_ = 0;
};

/// Events produced by this test binary only ever use sites registered via
/// GetSpan, so names are stable process-wide.
SpanSite* TestSite(const std::string& name) { return GetSpan(name); }

TEST_F(TraceTimelineTest, EmitAndSnapshotRoundTrip) {
  SetCollectionEnabled(true);
  SpanSite* site = TestSite("timeline_test/round_trip");
  ScopedContext ctx({.clip = 7});
  EmitBegin(site);
  EmitEnd(site);
  SetCollectionEnabled(false);

  const std::vector<Event> events = SnapshotEvents();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].name, "timeline_test/round_trip");
  EXPECT_EQ(events[0].phase, 'B');
  EXPECT_EQ(events[1].phase, 'E');
  EXPECT_EQ(events[0].clip, 7);
  EXPECT_EQ(events[1].clip, 7);
  EXPECT_EQ(events[0].tid, events[1].tid);
  EXPECT_LE(events[0].ts_ns, events[1].ts_ns);
}

TEST_F(TraceTimelineTest, ScopedSpanEmitsOnlyWhenArmed) {
  // ScopedSpan is the production emission path: one flag load decides.
  const bool telemetry_was_on = Enabled();
  SetEnabled(false);
  SetCollectionEnabled(false);
  { OTIF_SPAN("timeline_test/disarmed"); }
  EXPECT_TRUE(SnapshotEvents().empty());

  SetCollectionEnabled(true);
  { OTIF_SPAN("timeline_test/armed"); }
  SetCollectionEnabled(false);
  SetEnabled(telemetry_was_on);

  const std::vector<Event> events = SnapshotEvents();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].name, "timeline_test/armed");
  EXPECT_EQ(events[0].phase, 'B');
  EXPECT_EQ(events[1].phase, 'E');
}

TEST_F(TraceTimelineTest, ScopedContextNestsAndRestores) {
  EXPECT_EQ(CurrentContext().clip, -1);
  {
    ScopedContext outer({.clip = 3});
    EXPECT_EQ(CurrentContext().clip, 3);
    {
      ScopedContext inner({.clip = 9});
      EXPECT_EQ(CurrentContext().clip, 9);
    }
    EXPECT_EQ(CurrentContext().clip, 3);
  }
  EXPECT_EQ(CurrentContext().clip, -1);
}

TEST_F(TraceTimelineTest, WraparoundKeepsTheMostRecentEventsInOrder) {
  // Capacity applies to rings created after the call, so emit from a fresh
  // thread: 20 one-event "clips" through an 8-slot ring must retain exactly
  // the last 8, in emission order.
  SetBufferCapacity(8);
  ASSERT_EQ(BufferCapacity(), 8u);
  SetCollectionEnabled(true);
  SpanSite* site = TestSite("timeline_test/wraparound");
  std::thread producer([&] {
    for (int64_t i = 0; i < 20; ++i) {
      ScopedContext ctx({.clip = i});
      EmitBegin(site);
    }
  });
  producer.join();
  SetCollectionEnabled(false);

  const std::vector<Event> events = SnapshotEvents();
  ASSERT_EQ(events.size(), 8u);
  for (size_t k = 0; k < events.size(); ++k) {
    EXPECT_EQ(events[k].clip, static_cast<int64_t>(12 + k));
    if (k > 0) EXPECT_LE(events[k - 1].ts_ns, events[k].ts_ns);
  }
}

TEST_F(TraceTimelineTest, ContextPropagatesAcrossThreadPoolTasks) {
  SetCollectionEnabled(true);
  SpanSite* site = TestSite("timeline_test/pool_task");
  ThreadPool pool(4);
  std::mutex mu;
  std::set<std::thread::id> participants;
  {
    // Submitter's context must reach every task, whichever thread runs it.
    ScopedContext ctx({.clip = 42});
    pool.ParallelFor(16, [&](int64_t) {
      {
        std::lock_guard<std::mutex> lock(mu);
        participants.insert(std::this_thread::get_id());
      }
      // Hold each task until a second thread has joined the batch so the
      // events provably span more than one ring.
      for (int spin = 0; spin < 200000; ++spin) {
        {
          std::lock_guard<std::mutex> lock(mu);
          if (participants.size() >= 2) break;
        }
        std::this_thread::yield();
      }
      EmitBegin(site);
      EmitEnd(site);
    });
  }
  SetCollectionEnabled(false);

  EXPECT_GE(participants.size(), 2u);
  std::set<uint64_t> tids;
  int matched = 0;
  for (const Event& event : SnapshotEvents()) {
    if (event.name != "timeline_test/pool_task") continue;
    ++matched;
    EXPECT_EQ(event.clip, 42);
    tids.insert(event.tid);
  }
  EXPECT_EQ(matched, 32);
  EXPECT_GE(tids.size(), 2u);
  // The pool must restore each thread's own context afterwards.
  EXPECT_EQ(CurrentContext().clip, -1);
}

TEST_F(TraceTimelineTest, ChromeTraceJsonShape) {
  std::vector<Event> events(2);
  events[0] = {"stage/detect", 1500, 3, 11, 'B'};
  events[1] = {"stage/detect", 4500, 3, 11, 'E'};
  const std::string json = ToChromeTraceJson(events);
  EXPECT_NE(json.find("\"traceEvents\": ["), std::string::npos) << json;
  EXPECT_NE(json.find("\"name\": \"stage/detect\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"B\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"E\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\": 1.5"), std::string::npos) << json;
  EXPECT_NE(json.find("\"tid\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"args\": {\"clip\": 11}"), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\": \"ms\""), std::string::npos);
}

TEST_F(TraceTimelineTest, FlightRecordCarriesTraceAndTelemetry) {
  SetCollectionEnabled(true);
  SpanSite* site = TestSite("timeline_test/flight");
  EmitBegin(site);
  EmitEnd(site);
  SetCollectionEnabled(false);

  const std::string path =
      ::testing::TempDir() + "/otif_flight_record_test.json";
  const Status status = WriteFlightRecord(path, "test reason");
  ASSERT_TRUE(status.ok()) << status.ToString();
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream contents;
  contents << in.rdbuf();
  const std::string record = contents.str();
  std::remove(path.c_str());
  EXPECT_NE(record.find("\"reason\": \"test reason\""), std::string::npos);
  EXPECT_NE(record.find("\"trace\": {\"traceEvents\""), std::string::npos);
  EXPECT_NE(record.find("timeline_test/flight"), std::string::npos);
  EXPECT_NE(record.find("\"telemetry\": {"), std::string::npos);
  EXPECT_NE(record.find("\"counters\""), std::string::npos);
}

TEST_F(TraceTimelineTest, ReportErrorIgnoresOkAndDisarmedStates) {
  // OK statuses never dump, and with the recorder fully disarmed a failure
  // must not leave a record behind either.
  SetCollectionEnabled(false);
  const std::string path = DumpPath();
  std::remove(path.c_str());
  ReportError(Status::OK(), "timeline_test");
  ReportError(Status::Internal("boom"), "timeline_test");
  std::ifstream in(path);
  EXPECT_FALSE(in.good());
}

TEST_F(TraceTimelineTest, ConcurrentProducersAndSnapshotsStayUntorn) {
  // 4 producers each lapping a small ring many times while a reader
  // snapshots continuously: every surfaced record must be internally
  // consistent (valid phase, a known site name, attributed clip). TSan
  // (tools/check.sh) verifies the protocol is race-free; this asserts the
  // seqlock never surfaces a torn record.
  SetBufferCapacity(64);
  SetCollectionEnabled(true);
  SpanSite* site_a = TestSite("timeline_test/producer_a");
  SpanSite* site_b = TestSite("timeline_test/producer_b");
  std::atomic<bool> stop{false};
  std::vector<std::thread> producers;
  for (int t = 0; t < 4; ++t) {
    producers.emplace_back([&, t] {
      ScopedContext ctx({.clip = t});
      for (int i = 0; i < 20000; ++i) {
        EmitBegin(t % 2 == 0 ? site_a : site_b);
        EmitEnd(t % 2 == 0 ? site_a : site_b);
      }
    });
  }
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      for (const Event& event : SnapshotEvents()) {
        ASSERT_TRUE(event.phase == 'B' || event.phase == 'E');
        if (event.name != "timeline_test/producer_a" &&
            event.name != "timeline_test/producer_b") {
          continue;  // Residue from earlier tests on reused rings.
        }
        ASSERT_GE(event.clip, 0);
        ASSERT_LT(event.clip, 4);
        ASSERT_GE(event.ts_ns, 0);
      }
    }
  });
  for (std::thread& p : producers) p.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();
  SetCollectionEnabled(false);
}

}  // namespace
}  // namespace otif::telemetry::timeline
