#include "util/table.h"

#include <gtest/gtest.h>

namespace otif {
namespace {

TEST(TextTableTest, RendersAlignedColumns) {
  TextTable t({"Dataset", "Runtime"});
  t.AddRow({"Caldot1", "40"});
  t.AddRow({"Amsterdam", "25"});
  const std::string out = t.ToString();
  EXPECT_NE(out.find("Dataset"), std::string::npos);
  EXPECT_NE(out.find("Caldot1"), std::string::npos);
  // Every row should align: "Runtime" column starts at the same offset.
  const size_t header_pos = out.find("Runtime");
  const size_t row_pos = out.find("40");
  EXPECT_EQ(header_pos % (out.find('\n') + 1), row_pos % (out.find('\n') + 1));
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(TextTableTest, CsvEscapesSpecialCharacters) {
  TextTable t({"a", "b"});
  t.AddRow({"with,comma", "with\"quote"});
  const std::string csv = t.ToCsv();
  EXPECT_NE(csv.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"with\"\"quote\""), std::string::npos);
}

TEST(TextTableDeathTest, WrongArityRowAborts) {
  TextTable t({"only"});
  EXPECT_DEATH(t.AddRow({"a", "b"}), "Check failed");
}

}  // namespace
}  // namespace otif
