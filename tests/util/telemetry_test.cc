#include "util/telemetry.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "util/thread_pool.h"
#include "util/trace.h"

namespace otif::telemetry {
namespace {

/// Enables telemetry for a test body and restores the previous state.
class ScopedTelemetryEnabled {
 public:
  explicit ScopedTelemetryEnabled(bool enabled) : previous_(Enabled()) {
    SetEnabled(enabled);
  }
  ~ScopedTelemetryEnabled() { SetEnabled(previous_); }

 private:
  const bool previous_;
};

TEST(TelemetryTest, CounterAddsAndResets) {
  Counter counter;
  EXPECT_EQ(counter.value(), 0);
  counter.Add();
  counter.Add(41);
  EXPECT_EQ(counter.value(), 42);
  counter.Reset();
  EXPECT_EQ(counter.value(), 0);
}

TEST(TelemetryTest, GaugeSetAndAccumulate) {
  Gauge gauge;
  gauge.Set(2.5);
  EXPECT_DOUBLE_EQ(gauge.value(), 2.5);
  gauge.Add(1.5);
  EXPECT_DOUBLE_EQ(gauge.value(), 4.0);
  gauge.Reset();
  EXPECT_DOUBLE_EQ(gauge.value(), 0.0);
}

TEST(TelemetryTest, HistogramBucketsByUpperBound) {
  Histogram histogram({1.0, 10.0});
  histogram.Record(0.5);   // Bucket 0 (<= 1).
  histogram.Record(1.0);   // Bucket 0 (inclusive bound).
  histogram.Record(5.0);   // Bucket 1.
  histogram.Record(100.0); // Overflow bucket.
  EXPECT_EQ(histogram.bucket_count(0), 2);
  EXPECT_EQ(histogram.bucket_count(1), 1);
  EXPECT_EQ(histogram.bucket_count(2), 1);
  EXPECT_EQ(histogram.count(), 4);
  EXPECT_DOUBLE_EQ(histogram.sum(), 106.5);
  histogram.Reset();
  EXPECT_EQ(histogram.count(), 0);
  EXPECT_EQ(histogram.bucket_count(2), 0);
}

TEST(TelemetryTest, RegistryDeduplicatesByName) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("dedup.counter");
  Counter* b = registry.GetCounter("dedup.counter");
  EXPECT_EQ(a, b);
  EXPECT_NE(registry.GetGauge("dedup.gauge"),
            static_cast<Gauge*>(nullptr));
  Histogram* h1 = registry.GetHistogram("dedup.histogram", {1.0});
  Histogram* h2 = registry.GetHistogram("dedup.histogram", {2.0, 3.0});
  EXPECT_EQ(h1, h2);  // First registration fixes the bounds.
  EXPECT_EQ(h1->bounds().size(), 1u);
}

TEST(TelemetryTest, SnapshotReflectsValuesAndResetZeroes) {
  MetricsRegistry registry;
  registry.GetCounter("snap.counter")->Add(7);
  registry.GetGauge("snap.gauge")->Set(1.25);
  registry.GetHistogram("snap.histogram", {1.0})->Record(0.5);

  TelemetrySnapshot snapshot = registry.Snapshot();
  const CounterSample* counter = FindCounter(snapshot, "snap.counter");
  ASSERT_NE(counter, nullptr);
  EXPECT_EQ(counter->value, 7);
  const GaugeSample* gauge = FindGauge(snapshot, "snap.gauge");
  ASSERT_NE(gauge, nullptr);
  EXPECT_DOUBLE_EQ(gauge->value, 1.25);
  ASSERT_EQ(snapshot.histograms.size(), 1u);
  EXPECT_EQ(snapshot.histograms[0].count, 1);

  registry.Reset();
  snapshot = registry.Snapshot();
  EXPECT_EQ(FindCounter(snapshot, "snap.counter")->value, 0);
  EXPECT_DOUBLE_EQ(FindGauge(snapshot, "snap.gauge")->value, 0.0);
  EXPECT_EQ(snapshot.histograms[0].count, 0);
}

TEST(TelemetryTest, ConcurrentRegistryUpdatesLoseNothing) {
  // Counters, gauges, and histograms are shared across the pool; N tasks
  // each record once and the totals must be exact.
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("mt.counter");
  Gauge* gauge = registry.GetGauge("mt.gauge");
  Histogram* histogram = registry.GetHistogram("mt.histogram", {0.5});
  constexpr int64_t kTasks = 2000;
  ThreadPool pool(4);
  pool.ParallelFor(kTasks, [&](int64_t i) {
    counter->Add(1);
    gauge->Add(0.25);
    histogram->Record(i % 2 == 0 ? 0.25 : 1.0);
  });
  EXPECT_EQ(counter->value(), kTasks);
  EXPECT_DOUBLE_EQ(gauge->value(), 0.25 * kTasks);
  EXPECT_EQ(histogram->count(), kTasks);
  EXPECT_EQ(histogram->bucket_count(0), kTasks / 2);
  EXPECT_EQ(histogram->bucket_count(1), kTasks / 2);
}

TEST(TelemetryTest, ConcurrentRegistrationReturnsOnePointer) {
  MetricsRegistry registry;
  std::vector<Counter*> seen(8, nullptr);
  ThreadPool pool(4);
  pool.ParallelFor(8, [&](int64_t i) {
    seen[static_cast<size_t>(i)] = registry.GetCounter("mt.race");
  });
  for (Counter* c : seen) EXPECT_EQ(c, seen[0]);
}

TEST(TraceTest, SpanAggregatesCountTotalMinMax) {
  ScopedTelemetryEnabled enabled(true);
  SpanSite* site = GetSpan("test/span_aggregate");
  site->Reset();
  site->Record(0.5);
  site->Record(0.1);
  site->Record(0.9);
  const SpanSample sample = site->Sample();
  EXPECT_EQ(sample.count, 3);
  EXPECT_DOUBLE_EQ(sample.total_seconds, 1.5);
  EXPECT_DOUBLE_EQ(sample.min_seconds, 0.1);
  EXPECT_DOUBLE_EQ(sample.max_seconds, 0.9);
  site->Reset();
  EXPECT_EQ(site->Sample().count, 0);
  EXPECT_DOUBLE_EQ(site->Sample().min_seconds, 0.0);
}

TEST(TraceTest, NestedSpansEachRecordInclusiveTime) {
  ScopedTelemetryEnabled enabled(true);
  SpanSite* outer = GetSpan("test/nest_outer");
  SpanSite* inner = GetSpan("test/nest_inner");
  outer->Reset();
  inner->Reset();
  {
    OTIF_SPAN("test/nest_outer");
    for (int i = 0; i < 3; ++i) {
      OTIF_SPAN("test/nest_inner");
    }
  }
  const SpanSample o = outer->Sample();
  const SpanSample i = inner->Sample();
  EXPECT_EQ(o.count, 1);
  EXPECT_EQ(i.count, 3);
  // The outer span encloses every inner span, so its total dominates.
  EXPECT_GE(o.total_seconds, i.total_seconds);
  EXPECT_GE(i.min_seconds, 0.0);
  EXPECT_LE(i.min_seconds, i.max_seconds);
}

TEST(TraceTest, DisabledSpansRecordNothing) {
  ScopedTelemetryEnabled enabled(false);
  SpanSite* site = GetSpan("test/disabled_span");
  site->Reset();
  {
    OTIF_SPAN("test/disabled_span");
  }
  EXPECT_EQ(site->Sample().count, 0);
  EXPECT_DOUBLE_EQ(site->Sample().total_seconds, 0.0);
}

TEST(TraceTest, ConcurrentSpanRecordsAreExact) {
  ScopedTelemetryEnabled enabled(true);
  SpanSite* site = GetSpan("test/mt_span");
  site->Reset();
  constexpr int64_t kTasks = 1000;
  ThreadPool pool(4);
  pool.ParallelFor(kTasks, [&](int64_t i) {
    site->Record(static_cast<double>(i % 10 + 1));
  });
  const SpanSample sample = site->Sample();
  EXPECT_EQ(sample.count, kTasks);
  EXPECT_DOUBLE_EQ(sample.min_seconds, 1.0);
  EXPECT_DOUBLE_EQ(sample.max_seconds, 10.0);
  EXPECT_DOUBLE_EQ(sample.total_seconds, 5.5 * kTasks);
}

TEST(TraceTest, CaptureSnapshotIncludesSpans) {
  ScopedTelemetryEnabled enabled(true);
  GetSpan("test/capture_span")->Reset();
  {
    OTIF_SPAN("test/capture_span");
  }
  const TelemetrySnapshot snapshot = CaptureSnapshot();
  const SpanSample* span = FindSpan(snapshot, "test/capture_span");
  ASSERT_NE(span, nullptr);
  EXPECT_EQ(span->count, 1);
}

TEST(TelemetryQuantileTest, InterpolatesWithinBuckets) {
  // 100 values uniformly spread over (0, 10) across bounds {5, 10} — bucket
  // midpoints, so none sits on a bound: 50 per bucket. Linear interpolation
  // puts p50 at the first bound and p90 at 10 * 0.9.
  MetricsRegistry registry;
  Histogram* hist = registry.GetHistogram("q.uniform", {5.0, 10.0});
  for (int i = 0; i < 100; ++i) hist->Record((i + 0.5) / 10.0);
  TelemetrySnapshot snapshot = registry.Snapshot();
  const HistogramSample& sample = snapshot.histograms.at(0);
  EXPECT_DOUBLE_EQ(HistogramQuantile(sample, 0.50), 5.0);
  EXPECT_DOUBLE_EQ(HistogramQuantile(sample, 0.90), 9.0);
  EXPECT_DOUBLE_EQ(HistogramQuantile(sample, 0.25), 2.5);
  // The first bucket interpolates from zero.
  EXPECT_DOUBLE_EQ(HistogramQuantile(sample, 0.10), 1.0);
}

TEST(TelemetryQuantileTest, EdgeCases) {
  // Empty histogram: every quantile is zero.
  EXPECT_DOUBLE_EQ(HistogramQuantile(HistogramSample{}, 0.5), 0.0);

  MetricsRegistry registry;
  Histogram* hist = registry.GetHistogram("q.overflow", {1.0, 2.0});
  hist->Record(0.5);
  hist->Record(100.0);  // Lands in the unbounded overflow bucket.
  TelemetrySnapshot snapshot = registry.Snapshot();
  const HistogramSample& sample = snapshot.histograms.at(0);
  // Quantiles that fall in the overflow bucket clamp to the last finite
  // bound rather than inventing an upper edge.
  EXPECT_DOUBLE_EQ(HistogramQuantile(sample, 0.99), 2.0);
  // Quantiles are clamped into [0, 1].
  EXPECT_DOUBLE_EQ(HistogramQuantile(sample, -0.5),
                   HistogramQuantile(sample, 0.0));
  EXPECT_DOUBLE_EQ(HistogramQuantile(sample, 1.5),
                   HistogramQuantile(sample, 1.0));
}

TEST(TelemetryQuantileTest, SingleSample) {
  MetricsRegistry registry;
  Histogram* hist = registry.GetHistogram("q.single", {1.0, 2.0});
  hist->Record(1.5);  // One sample, second bucket.
  TelemetrySnapshot snapshot = registry.Snapshot();
  const HistogramSample& sample = snapshot.histograms.at(0);
  // Every quantile lands in the one occupied bucket and interpolates
  // inside it; the result stays within that bucket's bounds.
  for (const double q : {0.0, 0.25, 0.5, 0.99, 1.0}) {
    const double v = HistogramQuantile(sample, q);
    EXPECT_GE(v, 1.0) << "q=" << q;
    EXPECT_LE(v, 2.0) << "q=" << q;
  }
  EXPECT_DOUBLE_EQ(HistogramQuantile(sample, 1.0), 2.0);
}

TEST(TelemetryQuantileTest, AllSamplesInOneBucket) {
  MetricsRegistry registry;
  Histogram* hist = registry.GetHistogram("q.onebucket", {10.0, 20.0});
  for (int i = 0; i < 100; ++i) hist->Record(15.0);
  TelemetrySnapshot snapshot = registry.Snapshot();
  const HistogramSample& sample = snapshot.histograms.at(0);
  // Interpolation spreads the mass linearly across (10, 20]; the quantile
  // must never escape the occupied bucket.
  EXPECT_DOUBLE_EQ(HistogramQuantile(sample, 0.5), 15.0);
  EXPECT_GT(HistogramQuantile(sample, 0.01), 10.0);
  EXPECT_DOUBLE_EQ(HistogramQuantile(sample, 1.0), 20.0);
}

TEST(PrometheusNameTest, SanitizesSlashesAndDots) {
  EXPECT_EQ(PrometheusMetricName("stage/detect.sim_seconds"),
            "otif_stage_detect_sim_seconds");
  EXPECT_EQ(PrometheusMetricName("pipeline.runs"), "otif_pipeline_runs");
  EXPECT_EQ(PrometheusMetricName("already_legal:name"),
            "otif_already_legal:name");
  EXPECT_EQ(PrometheusMetricName(""), "otif_");
  // Every character outside [a-zA-Z0-9_:] maps to '_'.
  EXPECT_EQ(PrometheusMetricName("a-b c%d"), "otif_a_b_c_d");
}

TEST(PrometheusNameTest, SameNameSameKindIsNotACollision) {
  MetricsRegistry registry;
  EXPECT_EQ(registry.GetCounter("col.same"), registry.GetCounter("col.same"));
}

TEST(PrometheusNameDeathTest, CollidingNamesAreFatal) {
  // "col/a.b" and "col.a/b" both sanitize to otif_col_a_b.
  MetricsRegistry registry;
  registry.GetCounter("col/a.b");
  EXPECT_DEATH(registry.GetGauge("col.a/b"),
               "telemetry metric name collision");
}

TEST(PrometheusNameDeathTest, CrossKindReuseOfOneNameIsFatal) {
  MetricsRegistry registry;
  registry.GetCounter("col.kind");
  EXPECT_DEATH(registry.GetHistogram("col.kind", {1.0}),
               "telemetry metric name collision");
}

TEST(PrometheusNameDeathTest, ExternalNamesJoinTheCollisionTable) {
  MetricsRegistry registry;
  registry.RegisterExternalName("span", "col/ext");
  EXPECT_DEATH(registry.GetCounter("col.ext"),
               "telemetry metric name collision");
}

TEST(TelemetryExportTest, JsonContainsAllSections) {
  MetricsRegistry registry;
  registry.GetCounter("json.counter")->Add(3);
  registry.GetGauge("json.gauge")->Set(0.5);
  registry.GetHistogram("json.histogram", {1.0})->Record(2.0);
  TelemetrySnapshot snapshot = registry.Snapshot();
  snapshot.spans.push_back({"json.span", 2, 1.5, 0.5, 1.0});

  const std::string json = SnapshotToJson(snapshot);
  EXPECT_NE(json.find("\"json.counter\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"json.gauge\": 0.5"), std::string::npos);
  EXPECT_NE(json.find("\"json.histogram\""), std::string::npos);
  EXPECT_NE(json.find("\"buckets\": [0, 1]"), std::string::npos);
  // Exporters surface percentiles for every histogram.
  EXPECT_NE(json.find("\"p50\":"), std::string::npos);
  EXPECT_NE(json.find("\"p90\":"), std::string::npos);
  EXPECT_NE(json.find("\"p99\":"), std::string::npos);
  EXPECT_NE(json.find("\"json.span\""), std::string::npos);
  EXPECT_NE(json.find("\"total_seconds\": 1.5"), std::string::npos);
}

TEST(TelemetryExportTest, EmptySnapshotIsValidJson) {
  const std::string json = SnapshotToJson(TelemetrySnapshot{});
  EXPECT_NE(json.find("\"counters\": {}"), std::string::npos);
  EXPECT_NE(json.find("\"spans\": {}"), std::string::npos);
}

TEST(TelemetryExportTest, TableListsEveryMetric) {
  MetricsRegistry registry;
  registry.GetCounter("table.counter")->Add(1);
  registry.GetGauge("table.gauge")->Set(2.0);
  registry.GetHistogram("table.histogram", {1.0, 4.0})->Record(2.0);
  TelemetrySnapshot snapshot = registry.Snapshot();
  snapshot.spans.push_back({"table.span", 1, 0.25, 0.25, 0.25});
  const std::string table = SnapshotToTable(snapshot);
  EXPECT_NE(table.find("table.counter"), std::string::npos);
  EXPECT_NE(table.find("table.gauge"), std::string::npos);
  EXPECT_NE(table.find("table.histogram"), std::string::npos);
  EXPECT_NE(table.find("table.span"), std::string::npos);
  EXPECT_NE(table.find("p50"), std::string::npos);
  EXPECT_NE(table.find("p99"), std::string::npos);
}

}  // namespace
}  // namespace otif::telemetry
