#include "util/strings.h"

#include <gtest/gtest.h>

namespace otif {
namespace {

TEST(StrFormatTest, FormatsLikePrintf) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%.2f", 3.14159), "3.14");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

TEST(StrSplitTest, SplitsAndKeepsEmptyFields) {
  EXPECT_EQ(StrSplit("a,b,c", ','),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(StrSplit(",a,", ','), (std::vector<std::string>{"", "a", ""}));
  EXPECT_EQ(StrSplit("", ','), (std::vector<std::string>{""}));
}

TEST(StrJoinTest, JoinsWithSeparator) {
  EXPECT_EQ(StrJoin({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(StrJoin({}, ","), "");
  EXPECT_EQ(StrJoin({"solo"}, ","), "solo");
}

TEST(StartsWithTest, Basic) {
  EXPECT_TRUE(StartsWith("caldot1", "cal"));
  EXPECT_FALSE(StartsWith("cal", "caldot1"));
  EXPECT_TRUE(StartsWith("anything", ""));
}

TEST(StripWhitespaceTest, StripsBothEnds) {
  EXPECT_EQ(StripWhitespace("  a b \n"), "a b");
  EXPECT_EQ(StripWhitespace("\t\r\n "), "");
  EXPECT_EQ(StripWhitespace("x"), "x");
}

}  // namespace
}  // namespace otif
