#include "util/status.h"

#include <gtest/gtest.h>

namespace otif {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad resolution");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad resolution");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad resolution");
}

TEST(StatusTest, FactoryFunctionsSetCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusCodeNameTest, AllCodesNamed) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kIoError), "IoError");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 42);
  EXPECT_EQ(*v, 42);
  EXPECT_TRUE(v.status().ok());
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::NotFound("missing");
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> v = std::string("hello");
  std::string s = std::move(v).value();
  EXPECT_EQ(s, "hello");
}

TEST(StatusOrTest, ArrowOperator) {
  StatusOr<std::string> v = std::string("abc");
  EXPECT_EQ(v->size(), 3u);
}

StatusOr<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}

Status UseAssignOrReturn(int x, int* out) {
  OTIF_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  *out = v * 2;
  return Status::OK();
}

TEST(StatusMacrosTest, AssignOrReturnPropagatesError) {
  int out = 0;
  Status s = UseAssignOrReturn(-1, &out);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(out, 0);
}

TEST(StatusMacrosTest, AssignOrReturnAssignsValue) {
  int out = 0;
  ASSERT_TRUE(UseAssignOrReturn(21, &out).ok());
  EXPECT_EQ(out, 42);
}

Status FailThenUnreachable(bool fail, bool* reached) {
  OTIF_RETURN_IF_ERROR(fail ? Status::Internal("boom") : Status::OK());
  *reached = true;
  return Status::OK();
}

TEST(StatusMacrosTest, ReturnIfError) {
  bool reached = false;
  EXPECT_FALSE(FailThenUnreachable(true, &reached).ok());
  EXPECT_FALSE(reached);
  EXPECT_TRUE(FailThenUnreachable(false, &reached).ok());
  EXPECT_TRUE(reached);
}

}  // namespace
}  // namespace otif
