#include "util/stats.h"

#include <gtest/gtest.h>

namespace otif {
namespace {

TEST(StatsTest, MeanBasic) {
  EXPECT_DOUBLE_EQ(Mean({1, 2, 3, 4}), 2.5);
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Mean({-5}), -5.0);
}

TEST(StatsTest, MedianOddAndEven) {
  EXPECT_DOUBLE_EQ(Median({3, 1, 2}), 2.0);
  EXPECT_DOUBLE_EQ(Median({4, 1, 3, 2}), 2.5);
  EXPECT_DOUBLE_EQ(Median({}), 0.0);
  EXPECT_DOUBLE_EQ(Median({7}), 7.0);
}

TEST(StatsTest, StdDevBasic) {
  EXPECT_DOUBLE_EQ(StdDev({2, 2, 2}), 0.0);
  EXPECT_NEAR(StdDev({1, 3}), 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(StdDev({5}), 0.0);
}

TEST(StatsTest, PercentileInterpolates) {
  std::vector<double> v = {10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(Percentile(v, 0), 10.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 100), 40.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 50), 25.0);
}

TEST(StatsTest, WeightedMedianSkewsTowardWeight) {
  // Value 10 carries most of the weight.
  EXPECT_DOUBLE_EQ(WeightedMedian({1, 10, 100}, {1, 10, 1}), 10.0);
  // Uniform weights behave like a lower median.
  EXPECT_DOUBLE_EQ(WeightedMedian({1, 2, 3}, {1, 1, 1}), 2.0);
  // Heavy first element dominates.
  EXPECT_DOUBLE_EQ(WeightedMedian({5, 9}, {10, 1}), 5.0);
}

}  // namespace
}  // namespace otif
