#include "util/rng.h"

#include <gtest/gtest.h>

#include <vector>

namespace otif {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() != b.NextUint64()) ++differing;
  }
  EXPECT_GT(differing, 60);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.Uniform(-3.0, 5.0);
    EXPECT_GE(v, -3.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(RngTest, UniformIntCoversRange) {
  Rng rng(11);
  std::vector<int> counts(6, 0);
  for (int i = 0; i < 6000; ++i) {
    ++counts[rng.UniformInt(6u)];
  }
  for (int c : counts) {
    EXPECT_GT(c, 800);
    EXPECT_LT(c, 1200);
  }
}

TEST(RngTest, UniformIntInclusiveRange) {
  Rng rng(13);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformInt(int64_t{-2}, int64_t{2});
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= (v == -2);
    saw_hi |= (v == 2);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(17);
  int heads = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.Bernoulli(0.3)) ++heads;
  }
  EXPECT_NEAR(heads / 10000.0, 0.3, 0.03);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(19);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Gaussian();
    sum += v;
    sum_sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.08);
}

TEST(RngTest, GaussianWithParams) {
  Rng rng(23);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.Gaussian(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(29);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.03);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(31);
  Rng child = parent.Fork();
  // The child stream must not simply mirror the parent.
  int differing = 0;
  for (int i = 0; i < 32; ++i) {
    if (parent.NextUint64() != child.NextUint64()) ++differing;
  }
  EXPECT_GT(differing, 28);
}

TEST(RngTest, ReseedingReproducesStream) {
  Rng rng(37);
  std::vector<uint64_t> first;
  for (int i = 0; i < 16; ++i) first.push_back(rng.NextUint64());
  rng.Seed(37);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(rng.NextUint64(), first[i]);
}

}  // namespace
}  // namespace otif
