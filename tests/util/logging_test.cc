#include "util/logging.h"

#include <gtest/gtest.h>

#include <cstdlib>

#include "util/status.h"

namespace otif {
namespace {

TEST(LoggingTest, ThresholdRoundTrips) {
  const LogLevel prev = GetLogThreshold();
  SetLogThreshold(LogLevel::kError);
  EXPECT_EQ(GetLogThreshold(), LogLevel::kError);
  SetLogThreshold(prev);
}

TEST(LoggingTest, BelowThresholdDoesNotEvaluateStream) {
  const LogLevel prev = GetLogThreshold();
  SetLogThreshold(LogLevel::kError);
  int evaluations = 0;
  auto count = [&]() {
    ++evaluations;
    return 1;
  };
  OTIF_LOG(kDebug) << count();
  EXPECT_EQ(evaluations, 0);
  SetLogThreshold(prev);
}

TEST(ParseLogLevelTest, AcceptsNamesNumbersAndCase) {
  LogLevel level = LogLevel::kFatal;
  EXPECT_TRUE(ParseLogLevel("debug", &level));
  EXPECT_EQ(level, LogLevel::kDebug);
  EXPECT_TRUE(ParseLogLevel("INFO", &level));
  EXPECT_EQ(level, LogLevel::kInfo);
  EXPECT_TRUE(ParseLogLevel("Warning", &level));
  EXPECT_EQ(level, LogLevel::kWarning);
  EXPECT_TRUE(ParseLogLevel("warn", &level));
  EXPECT_EQ(level, LogLevel::kWarning);
  EXPECT_TRUE(ParseLogLevel("error", &level));
  EXPECT_EQ(level, LogLevel::kError);
  EXPECT_TRUE(ParseLogLevel("4", &level));
  EXPECT_EQ(level, LogLevel::kFatal);
  EXPECT_TRUE(ParseLogLevel("0", &level));
  EXPECT_EQ(level, LogLevel::kDebug);
}

TEST(ParseLogLevelTest, RejectsGarbageWithoutTouchingOutput) {
  LogLevel level = LogLevel::kError;
  EXPECT_FALSE(ParseLogLevel("", &level));
  EXPECT_FALSE(ParseLogLevel("verbose", &level));
  EXPECT_FALSE(ParseLogLevel("5", &level));
  EXPECT_FALSE(ParseLogLevel("-1", &level));
  EXPECT_EQ(level, LogLevel::kError);
}

TEST(ParseLogLevelTest, InitFromEnvAppliesAndIgnoresBadValues) {
  const LogLevel prev = GetLogThreshold();

  ASSERT_EQ(setenv("OTIF_LOG_LEVEL", "error", /*overwrite=*/1), 0);
  EXPECT_TRUE(InitLogLevelFromEnv());
  EXPECT_EQ(GetLogThreshold(), LogLevel::kError);

  ASSERT_EQ(setenv("OTIF_LOG_LEVEL", "nonsense", /*overwrite=*/1), 0);
  EXPECT_FALSE(InitLogLevelFromEnv());
  EXPECT_EQ(GetLogThreshold(), LogLevel::kError);  // Unchanged.

  ASSERT_EQ(unsetenv("OTIF_LOG_LEVEL"), 0);
  EXPECT_FALSE(InitLogLevelFromEnv());
  EXPECT_EQ(GetLogThreshold(), LogLevel::kError);  // Still unchanged.

  SetLogThreshold(prev);
}

TEST(CheckTest, PassingCheckIsNoop) {
  OTIF_CHECK(true) << "never shown";
  OTIF_CHECK_EQ(1, 1);
  OTIF_CHECK_LT(1, 2);
  OTIF_CHECK_GE(2, 2);
}

TEST(CheckDeathTest, FailingCheckAborts) {
  EXPECT_DEATH(OTIF_CHECK(false) << "bad", "Check failed");
  EXPECT_DEATH(OTIF_CHECK_EQ(1, 2), "1 vs 2");
}

TEST(CheckDeathTest, CheckOkAbortsOnError) {
  EXPECT_DEATH(OTIF_CHECK_OK(Status::Internal("kaput")), "kaput");
}

TEST(CheckTest, CheckOkPassesOnOk) { OTIF_CHECK_OK(Status::OK()); }

}  // namespace
}  // namespace otif
