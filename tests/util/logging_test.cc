#include "util/logging.h"

#include <gtest/gtest.h>

#include "util/status.h"

namespace otif {
namespace {

TEST(LoggingTest, ThresholdRoundTrips) {
  const LogLevel prev = GetLogThreshold();
  SetLogThreshold(LogLevel::kError);
  EXPECT_EQ(GetLogThreshold(), LogLevel::kError);
  SetLogThreshold(prev);
}

TEST(LoggingTest, BelowThresholdDoesNotEvaluateStream) {
  const LogLevel prev = GetLogThreshold();
  SetLogThreshold(LogLevel::kError);
  int evaluations = 0;
  auto count = [&]() {
    ++evaluations;
    return 1;
  };
  OTIF_LOG(kDebug) << count();
  EXPECT_EQ(evaluations, 0);
  SetLogThreshold(prev);
}

TEST(CheckTest, PassingCheckIsNoop) {
  OTIF_CHECK(true) << "never shown";
  OTIF_CHECK_EQ(1, 1);
  OTIF_CHECK_LT(1, 2);
  OTIF_CHECK_GE(2, 2);
}

TEST(CheckDeathTest, FailingCheckAborts) {
  EXPECT_DEATH(OTIF_CHECK(false) << "bad", "Check failed");
  EXPECT_DEATH(OTIF_CHECK_EQ(1, 2), "1 vs 2");
}

TEST(CheckDeathTest, CheckOkAbortsOnError) {
  EXPECT_DEATH(OTIF_CHECK_OK(Status::Internal("kaput")), "kaput");
}

TEST(CheckTest, CheckOkPassesOnOk) { OTIF_CHECK_OK(Status::OK()); }

}  // namespace
}  // namespace otif
