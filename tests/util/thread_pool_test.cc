#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <vector>

namespace otif {
namespace {

TEST(ThreadPoolTest, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> counts(1000);
  for (auto& c : counts) c.store(0);
  pool.ParallelFor(1000, [&](int64_t i) {
    counts[static_cast<size_t>(i)].fetch_add(1);
  });
  for (const auto& c : counts) EXPECT_EQ(c.load(), 1);
}

TEST(ThreadPoolTest, SingleThreadRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1);
  const auto caller = std::this_thread::get_id();
  std::vector<std::thread::id> seen(8);
  pool.ParallelFor(8, [&](int64_t i) {
    seen[static_cast<size_t>(i)] = std::this_thread::get_id();
  });
  for (const auto& id : seen) EXPECT_EQ(id, caller);
}

TEST(ThreadPoolTest, ParallelMapPreservesIndexOrder) {
  ThreadPool pool(4);
  const std::vector<int64_t> squares =
      ParallelMap(&pool, 100, [](int64_t i) { return i * i; });
  ASSERT_EQ(squares.size(), 100u);
  for (int64_t i = 0; i < 100; ++i) {
    EXPECT_EQ(squares[static_cast<size_t>(i)], i * i);
  }
}

TEST(ThreadPoolTest, NestedParallelForCompletes) {
  // Each outer task fans out again on the same pool; caller participation
  // guarantees progress even when all workers are busy with outer tasks.
  ThreadPool pool(4);
  std::atomic<int> total{0};
  pool.ParallelFor(8, [&](int64_t) {
    pool.ParallelFor(8, [&](int64_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 64);
}

TEST(ThreadPoolTest, ZeroAndEmptyBatches) {
  ThreadPool pool(3);
  int ran = 0;
  pool.ParallelFor(0, [&](int64_t) { ++ran; });
  EXPECT_EQ(ran, 0);
  pool.ParallelFor(1, [&](int64_t) { ++ran; });
  EXPECT_EQ(ran, 1);
}

TEST(ParseWorkerEnvTest, AcceptsPositiveIntegers) {
  EXPECT_EQ(ThreadPool::ParseWorkerEnv("1", 8), 1);
  EXPECT_EQ(ThreadPool::ParseWorkerEnv("4", 8), 4);
  EXPECT_EQ(ThreadPool::ParseWorkerEnv("64", 8), 64);
}

TEST(ParseWorkerEnvTest, RejectsInvalidValuesWithWarning) {
  // Each rejected value falls back and logs a warning naming the value.
  // (strtol skips leading whitespace, so " 4" would parse; not tested.)
  for (const char* bad : {"", "abc", "4x", "0", "-2", "1e3"}) {
    testing::internal::CaptureStderr();
    EXPECT_EQ(ThreadPool::ParseWorkerEnv(bad, 6), 6) << "value \"" << bad
                                                     << "\"";
    const std::string log = testing::internal::GetCapturedStderr();
    EXPECT_NE(log.find("OTIF_WORKERS"), std::string::npos) << log;
    EXPECT_NE(log.find(bad), std::string::npos) << log;
    EXPECT_NE(log.find("6"), std::string::npos) << log;  // Names the fallback.
  }
  testing::internal::CaptureStderr();
  EXPECT_EQ(ThreadPool::ParseWorkerEnv(nullptr, 3), 3);
  EXPECT_NE(testing::internal::GetCapturedStderr().find("OTIF_WORKERS"),
            std::string::npos);
}

TEST(ThreadPoolTest, DefaultPoolIsReplaceable) {
  ThreadPool::SetDefaultThreads(2);
  EXPECT_EQ(ThreadPool::Default()->num_threads(), 2);
  std::atomic<int> total{0};
  ThreadPool::Default()->ParallelFor(16, [&](int64_t) { total.fetch_add(1); });
  EXPECT_EQ(total.load(), 16);
  ThreadPool::SetDefaultThreads(1);
  EXPECT_EQ(ThreadPool::Default()->num_threads(), 1);
}

}  // namespace
}  // namespace otif
