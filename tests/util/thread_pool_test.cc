#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

namespace otif {
namespace {

TEST(ThreadPoolTest, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> counts(1000);
  for (auto& c : counts) c.store(0);
  pool.ParallelFor(1000, [&](int64_t i) {
    counts[static_cast<size_t>(i)].fetch_add(1);
  });
  for (const auto& c : counts) EXPECT_EQ(c.load(), 1);
}

TEST(ThreadPoolTest, SingleThreadRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1);
  const auto caller = std::this_thread::get_id();
  std::vector<std::thread::id> seen(8);
  pool.ParallelFor(8, [&](int64_t i) {
    seen[static_cast<size_t>(i)] = std::this_thread::get_id();
  });
  for (const auto& id : seen) EXPECT_EQ(id, caller);
}

TEST(ThreadPoolTest, ParallelMapPreservesIndexOrder) {
  ThreadPool pool(4);
  const std::vector<int64_t> squares =
      ParallelMap(&pool, 100, [](int64_t i) { return i * i; });
  ASSERT_EQ(squares.size(), 100u);
  for (int64_t i = 0; i < 100; ++i) {
    EXPECT_EQ(squares[static_cast<size_t>(i)], i * i);
  }
}

TEST(ThreadPoolTest, NestedParallelForCompletes) {
  // Each outer task fans out again on the same pool; caller participation
  // guarantees progress even when all workers are busy with outer tasks.
  ThreadPool pool(4);
  std::atomic<int> total{0};
  pool.ParallelFor(8, [&](int64_t) {
    pool.ParallelFor(8, [&](int64_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 64);
}

TEST(ThreadPoolTest, ZeroAndEmptyBatches) {
  ThreadPool pool(3);
  int ran = 0;
  pool.ParallelFor(0, [&](int64_t) { ++ran; });
  EXPECT_EQ(ran, 0);
  pool.ParallelFor(1, [&](int64_t) { ++ran; });
  EXPECT_EQ(ran, 1);
}

TEST(ThreadPoolTest, DefaultPoolIsReplaceable) {
  ThreadPool::SetDefaultThreads(2);
  EXPECT_EQ(ThreadPool::Default()->num_threads(), 2);
  std::atomic<int> total{0};
  ThreadPool::Default()->ParallelFor(16, [&](int64_t) { total.fetch_add(1); });
  EXPECT_EQ(total.load(), 16);
  ThreadPool::SetDefaultThreads(1);
  EXPECT_EQ(ThreadPool::Default()->num_threads(), 1);
}

}  // namespace
}  // namespace otif
