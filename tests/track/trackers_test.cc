#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "track/iou_tracker.h"
#include "track/kalman.h"
#include "track/sort_tracker.h"
#include "util/rng.h"

namespace otif::track {
namespace {

Detection MakeDet(int frame, double cx, double cy, double w = 30,
                  double h = 20) {
  Detection d;
  d.frame = frame;
  d.box = geom::BBox(cx, cy, w, h);
  return d;
}

TEST(KalmanTest, StaticObjectConverges) {
  KalmanBoxFilter kf(geom::BBox(100, 100, 20, 10));
  for (int i = 0; i < 20; ++i) {
    kf.Predict(1.0);
    kf.Update(geom::BBox(100, 100, 20, 10));
  }
  const geom::BBox state = kf.StateBox();
  EXPECT_NEAR(state.cx, 100.0, 1.0);
  EXPECT_NEAR(state.cy, 100.0, 1.0);
  EXPECT_NEAR(kf.Velocity().Norm(), 0.0, 0.5);
}

TEST(KalmanTest, LearnsConstantVelocity) {
  KalmanBoxFilter kf(geom::BBox(0, 0, 20, 10));
  for (int t = 1; t <= 30; ++t) {
    kf.Predict(1.0);
    kf.Update(geom::BBox(5.0 * t, 2.0 * t, 20, 10));
  }
  // Velocity should approximate (5, 2) px/frame.
  EXPECT_NEAR(kf.Velocity().x, 5.0, 1.5);
  EXPECT_NEAR(kf.Velocity().y, 2.0, 1.0);
  // The 3-frame prediction should land near the extrapolated position.
  const geom::BBox pred = kf.PredictedBox(3.0);
  EXPECT_NEAR(pred.cx, 5.0 * 33, 8.0);
}

TEST(KalmanTest, PredictionWithGapFrames) {
  KalmanBoxFilter kf(geom::BBox(0, 0, 20, 10));
  // Observations arrive every 4 frames; the filter must still track.
  for (int t = 1; t <= 10; ++t) {
    kf.Predict(4.0);
    kf.Update(geom::BBox(12.0 * t, 0, 20, 10));  // 3 px/frame * 4 frames.
  }
  EXPECT_NEAR(kf.StateBox().cx, 120.0, 10.0);
}

TEST(SortTrackerTest, SingleObjectSingleTrack) {
  SortTracker sort;
  for (int t = 0; t < 10; ++t) {
    sort.ProcessFrame(t, {MakeDet(t, 100 + 5 * t, 100)});
  }
  const auto tracks = sort.Finish(2);
  ASSERT_EQ(tracks.size(), 1u);
  EXPECT_EQ(tracks[0].detections.size(), 10u);
}

TEST(SortTrackerTest, TwoCrossingObjectsKeepIdentities) {
  SortTracker sort;
  // Two objects on parallel, vertically separated lanes moving in opposite
  // directions.
  for (int t = 0; t < 20; ++t) {
    FrameDetections dets = {MakeDet(t, 50 + 10 * t, 80),
                            MakeDet(t, 250 - 10 * t, 160)};
    sort.ProcessFrame(t, dets);
  }
  const auto tracks = sort.Finish(5);
  ASSERT_EQ(tracks.size(), 2u);
  // Each track's vertical position must stay on its lane.
  for (const Track& t : tracks) {
    const double y0 = t.detections.front().box.cy;
    for (const Detection& d : t.detections) {
      EXPECT_NEAR(d.box.cy, y0, 10.0);
    }
  }
}

TEST(SortTrackerTest, MissToleranceBridgesGaps) {
  SortTracker::Options opts;
  opts.max_misses = 3;
  SortTracker sort(opts);
  // Object missing on frames 4-5 (e.g. detector misses).
  for (int t = 0; t < 12; ++t) {
    FrameDetections dets;
    if (t != 4 && t != 5) dets.push_back(MakeDet(t, 100 + 6 * t, 100));
    sort.ProcessFrame(t, dets);
  }
  const auto tracks = sort.Finish(2);
  ASSERT_EQ(tracks.size(), 1u);
  EXPECT_EQ(tracks[0].detections.size(), 10u);
}

TEST(SortTrackerTest, PrunesSingleDetectionTracks) {
  SortTracker sort;
  sort.ProcessFrame(0, {MakeDet(0, 100, 100)});
  sort.ProcessFrame(1, {});  // Object gone.
  const auto tracks = sort.Finish(2);
  EXPECT_TRUE(tracks.empty());
}

TEST(SortTrackerTest, ReducedRateTracking) {
  // Detections every 8 frames; Kalman prediction spans the gap.
  SortTracker::Options opts;
  opts.iou_threshold = 0.1;
  SortTracker sort(opts);
  for (int k = 0; k < 8; ++k) {
    const int t = 8 * k;
    sort.ProcessFrame(t, {MakeDet(t, 100 + 2.0 * t, 100, 40, 26)});
  }
  const auto tracks = sort.Finish(2);
  ASSERT_EQ(tracks.size(), 1u) << "track fragmented at reduced rate";
  EXPECT_EQ(tracks[0].detections.size(), 8u);
}

TEST(SortTrackerDeathTest, NonMonotonicFrameAborts) {
  SortTracker sort;
  sort.ProcessFrame(5, {});
  EXPECT_DEATH(sort.ProcessFrame(5, {}), "Check failed");
}

TEST(IouTrackerTest, TracksSlowObject) {
  IouTracker::Options opts;
  opts.frame_w = 320;
  opts.frame_h = 240;
  IouTracker tracker(opts);
  for (int t = 0; t < 10; ++t) {
    tracker.ProcessFrame(t, {MakeDet(t, 100 + 3 * t, 100)});
  }
  const auto tracks = tracker.Finish(2);
  ASSERT_EQ(tracks.size(), 1u);
  EXPECT_EQ(tracks[0].detections.size(), 10u);
}

TEST(IouTrackerTest, FragmentsAtLargeGapsUnlikeSort) {
  // At high sampling gaps the boxes no longer overlap and the displacement
  // gate cuts in; the IoU tracker (pairwise matcher) fragments while SORT's
  // motion model holds on. This is the paper's motivation for recurrent
  // tracking over pairwise matching.
  IouTracker::Options opts;
  opts.frame_w = 320;
  opts.frame_h = 240;
  opts.max_center_shift_frac = 0.1;
  IouTracker tracker(opts);
  for (int k = 0; k < 6; ++k) {
    const int t = 16 * k;
    tracker.ProcessFrame(t, {MakeDet(t, 20 + 3.0 * t, 100, 24, 16)});
  }
  const auto tracks = tracker.Finish(1);
  EXPECT_GT(tracks.size(), 1u);
}

}  // namespace
}  // namespace otif::track
