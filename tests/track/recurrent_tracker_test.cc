#include "track/recurrent_tracker.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace otif::track {
namespace {

Detection MakeDet(int frame, double cx, double cy, double w = 30,
                  double h = 20) {
  Detection d;
  d.frame = frame;
  d.box = geom::BBox(cx, cy, w, h);
  return d;
}

// Trains a small net on linear-motion matching so the runtime tests run
// against a functional scorer. Shared across tests via a static.
models::TrackerNet* TrainedNet() {
  static models::TrackerNet* net = [] {
    auto* n = new models::TrackerNet(99);
    Rng rng(7);
    const double fw = 320, fh = 240, fps = 10.0;
    for (int step = 0; step < 600; ++step) {
      const int gap = 1 << rng.UniformInt(uint64_t{4});
      const double vx = rng.Uniform(-4, 4), vy = rng.Uniform(-3, 3);
      double cx = rng.Uniform(60, 260), cy = rng.Uniform(50, 190);
      models::TrackerNet::Example ex;
      Detection last;
      int frame = 0;
      for (int i = 0; i < 3; ++i) {
        Detection d = MakeDet(frame, cx, cy);
        ex.prefix_features.push_back(models::TrackerNet::DetFeature(
            d, gap, fps, fw, fh, 0.5, 0.1));
        last = d;
        cx += vx * gap;
        cy += vy * gap;
        frame += gap;
      }
      Detection truth = MakeDet(frame, cx, cy);
      Detection decoy = MakeDet(frame, rng.Uniform(20, 300),
                                rng.Uniform(20, 220));
      ex.positive_index = 0;
      for (const Detection& c : {truth, decoy}) {
        ex.candidate_features.push_back(models::TrackerNet::DetFeature(
            c, gap, fps, fw, fh, 0.5, 0.1));
        ex.candidate_pair_features.push_back(
            models::TrackerNet::PairFeature(last, last, c, fps, fw, fh));
      }
      n->TrainStep(ex);
    }
    return n;
  }();
  return net;
}

RecurrentTracker::Options SmallFrameOptions() {
  RecurrentTracker::Options opts;
  opts.frame_w = 320;
  opts.frame_h = 240;
  opts.fps = 10;
  opts.match_threshold = 0.3;
  return opts;
}

TEST(RecurrentTrackerTest, SingleObjectSingleTrack) {
  RecurrentTracker tracker(TrainedNet(), SmallFrameOptions());
  for (int t = 0; t < 10; ++t) {
    tracker.ProcessFrame(t, {MakeDet(t, 50 + 3 * t, 100)});
  }
  const auto tracks = tracker.Finish(2);
  ASSERT_EQ(tracks.size(), 1u);
  EXPECT_EQ(tracks[0].detections.size(), 10u);
}

TEST(RecurrentTrackerTest, ReducedRateKeepsIdentity) {
  RecurrentTracker tracker(TrainedNet(), SmallFrameOptions());
  for (int k = 0; k < 8; ++k) {
    const int t = 8 * k;
    tracker.ProcessFrame(t, {MakeDet(t, 30 + 3.0 * t, 100)});
  }
  const auto tracks = tracker.Finish(2);
  ASSERT_EQ(tracks.size(), 1u) << "fragmented at gap 8";
  EXPECT_EQ(tracks[0].detections.size(), 8u);
}

TEST(RecurrentTrackerTest, TwoObjectsTwoTracks) {
  RecurrentTracker tracker(TrainedNet(), SmallFrameOptions());
  for (int k = 0; k < 6; ++k) {
    const int t = 4 * k;
    tracker.ProcessFrame(
        t, {MakeDet(t, 30 + 3.0 * t, 60), MakeDet(t, 290 - 3.0 * t, 180)});
  }
  const auto tracks = tracker.Finish(3);
  ASSERT_EQ(tracks.size(), 2u);
  for (const Track& t : tracks) {
    const double y0 = t.detections.front().box.cy;
    for (const Detection& d : t.detections) {
      EXPECT_NEAR(d.box.cy, y0, 15.0) << "identity switch";
    }
  }
}

TEST(RecurrentTrackerTest, PairScoreAccounting) {
  RecurrentTracker tracker(TrainedNet(), SmallFrameOptions());
  tracker.ProcessFrame(0, {MakeDet(0, 100, 100)});
  EXPECT_EQ(tracker.pair_scores_computed(), 0);
  tracker.ProcessFrame(1, {MakeDet(1, 103, 100), MakeDet(1, 200, 200)});
  EXPECT_EQ(tracker.pair_scores_computed(), 2);  // 1 track x 2 detections.
}

TEST(RecurrentTrackerTest, FinishResetsState) {
  RecurrentTracker tracker(TrainedNet(), SmallFrameOptions());
  tracker.ProcessFrame(0, {MakeDet(0, 100, 100)});
  tracker.ProcessFrame(1, {MakeDet(1, 103, 100)});
  EXPECT_EQ(tracker.Finish(1).size(), 1u);
  EXPECT_EQ(tracker.num_active(), 0u);
  // Frame counter reset: processing frame 0 again is legal.
  tracker.ProcessFrame(0, {MakeDet(0, 50, 50)});
  EXPECT_EQ(tracker.Finish(1).size(), 1u);
}

}  // namespace
}  // namespace otif::track
