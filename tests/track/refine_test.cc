#include "track/refine.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace otif::track {
namespace {

// Builds a track along a straight line between two points, `n` detections,
// frames spaced by `gap`.
Track LineTrack(int64_t id, geom::Point from, geom::Point to, int n, int gap,
                int start_frame = 0) {
  Track t;
  t.id = id;
  for (int i = 0; i < n; ++i) {
    const double u = n > 1 ? static_cast<double>(i) / (n - 1) : 0.0;
    Detection d;
    d.frame = start_frame + i * gap;
    d.box = geom::BBox(from.x + u * (to.x - from.x),
                       from.y + u * (to.y - from.y), 30, 20);
    t.detections.push_back(d);
  }
  return t;
}

TEST(ClusterTracksTest, GroupsParallelTracks) {
  std::vector<Track> tracks;
  Rng rng(3);
  // 10 tracks along roughly the same path, 10 along another.
  for (int i = 0; i < 10; ++i) {
    const double off = rng.Uniform(-8, 8);
    tracks.push_back(
        LineTrack(i, {0, 100 + off}, {500, 110 + off}, 20, 1));
    tracks.push_back(
        LineTrack(100 + i, {250 + off, 0}, {260 + off, 400}, 20, 1));
  }
  DbscanOptions opts;
  opts.epsilon = 30.0;
  const auto clusters = ClusterTracks(tracks, opts);
  ASSERT_EQ(clusters.size(), 2u);
  EXPECT_EQ(clusters[0].size + clusters[1].size, 20);
}

TEST(ClusterTracksTest, OppositeDirectionsSeparate) {
  std::vector<Track> tracks;
  for (int i = 0; i < 5; ++i) {
    tracks.push_back(LineTrack(i, {0, 100}, {500, 100}, 20, 1));
    tracks.push_back(LineTrack(10 + i, {500, 100}, {0, 100}, 20, 1));
  }
  DbscanOptions opts;
  opts.epsilon = 40.0;
  const auto clusters = ClusterTracks(tracks, opts);
  EXPECT_EQ(clusters.size(), 2u);
}

TEST(ClusterTracksTest, NoiseBecomesSingletonCluster) {
  std::vector<Track> tracks;
  for (int i = 0; i < 4; ++i) {
    tracks.push_back(LineTrack(i, {0, 100}, {500, 100}, 20, 1));
  }
  // One odd track far away from everything.
  tracks.push_back(LineTrack(99, {0, 400}, {100, 350}, 20, 1));
  DbscanOptions opts;
  opts.epsilon = 25.0;
  const auto clusters = ClusterTracks(tracks, opts);
  ASSERT_EQ(clusters.size(), 2u);
  // One cluster of 4, one singleton.
  const int sizes[2] = {clusters[0].size, clusters[1].size};
  EXPECT_EQ(std::max(sizes[0], sizes[1]), 4);
  EXPECT_EQ(std::min(sizes[0], sizes[1]), 1);
}

TEST(ClusterTracksTest, EmptyInput) {
  EXPECT_TRUE(ClusterTracks({}, DbscanOptions{}).empty());
}

TEST(TrackRefinerTest, ExtendsTruncatedTrackToClusterEndpoints) {
  // Training-set tracks span the full path (0..500); the captured track, at
  // a high sampling gap, only covers the middle (150..350). Refinement must
  // extend it toward the cluster's start and end.
  std::vector<Track> training;
  for (int i = 0; i < 8; ++i) {
    training.push_back(LineTrack(i, {0, 100}, {500, 100}, 30, 1));
  }
  const auto clusters = ClusterTracks(training, DbscanOptions{});
  TrackRefiner refiner(clusters, TrackRefiner::Options{});

  Track captured = LineTrack(42, {150, 100}, {350, 100}, 4, 16, 100);
  Track refined = refiner.Refine(captured);
  ASSERT_EQ(refined.detections.size(), captured.detections.size() + 2);
  EXPECT_NEAR(refined.detections.front().box.cx, 0.0, 30.0);
  EXPECT_NEAR(refined.detections.back().box.cx, 500.0, 30.0);
  // Synthetic endpoints must be time-extrapolated outward.
  EXPECT_LT(refined.detections.front().frame, captured.detections.front().frame);
  EXPECT_GT(refined.detections.back().frame, captured.detections.back().frame);
}

TEST(TrackRefinerTest, RefinesAgainstDirectionMatchedCluster) {
  // Right-to-left training tracks; a truncated right-to-left capture must
  // extend toward x=500 at its start and x=0 at its end.
  std::vector<Track> training;
  for (int i = 0; i < 8; ++i) {
    training.push_back(LineTrack(i, {500, 100}, {0, 100}, 30, 1));
  }
  TrackRefiner refiner(ClusterTracks(training, DbscanOptions{}),
                       TrackRefiner::Options{});
  Track captured = LineTrack(7, {350, 100}, {150, 100}, 4, 16, 50);
  Track refined = refiner.Refine(captured);
  EXPECT_NEAR(refined.detections.front().box.cx, 500.0, 30.0);
  EXPECT_NEAR(refined.detections.back().box.cx, 0.0, 30.0);
}

TEST(TrackRefinerTest, OppositeDirectionClusterIsNotUsed) {
  // The paper's track distance metric is directional: a right-to-left
  // capture must NOT be refined by a left-to-right cluster (they represent
  // different movements, e.g. northbound vs southbound lanes).
  std::vector<Track> training;
  for (int i = 0; i < 8; ++i) {
    training.push_back(LineTrack(i, {0, 100}, {500, 100}, 30, 1));
  }
  TrackRefiner::Options opts;
  opts.max_cluster_distance = 120.0;
  TrackRefiner refiner(ClusterTracks(training, DbscanOptions{}), opts);
  Track captured = LineTrack(7, {350, 100}, {150, 100}, 4, 16, 50);
  Track refined = refiner.Refine(captured);
  EXPECT_EQ(refined.detections.size(), captured.detections.size());
}

TEST(TrackRefinerTest, LeavesUnmatchedTracksAlone) {
  std::vector<Track> training = {LineTrack(0, {0, 0}, {100, 0}, 20, 1),
                                 LineTrack(1, {0, 0}, {100, 0}, 20, 1)};
  TrackRefiner::Options opts;
  opts.max_cluster_distance = 50.0;
  TrackRefiner refiner(ClusterTracks(training, DbscanOptions{}), opts);
  // Far away from any cluster.
  Track odd = LineTrack(5, {400, 400}, {450, 480}, 5, 4);
  Track refined = refiner.Refine(odd);
  EXPECT_EQ(refined.detections.size(), odd.detections.size());
}

TEST(TrackRefinerTest, ShortTracksPassThrough) {
  TrackRefiner refiner({}, TrackRefiner::Options{});
  Track single;
  single.id = 1;
  Detection d;
  d.frame = 3;
  d.box = geom::BBox(10, 10, 5, 5);
  single.detections.push_back(d);
  EXPECT_EQ(refiner.Refine(single).detections.size(), 1u);
}

TEST(TrackRefinerTest, WeightedMedianFavorsLargeClusters) {
  // Two clusters near the captured track's endpoints: a large one ending at
  // x=500 and a tiny one ending at x=700. The weighted median must follow
  // the large cluster.
  std::vector<Track> training;
  for (int i = 0; i < 9; ++i) {
    training.push_back(LineTrack(i, {0, 100}, {500, 100}, 30, 1));
  }
  training.push_back(LineTrack(50, {0, 130}, {700, 130}, 30, 1));
  TrackRefiner refiner(ClusterTracks(training, DbscanOptions{}),
                       TrackRefiner::Options{});
  Track captured = LineTrack(42, {150, 105}, {350, 105}, 4, 16, 100);
  Track refined = refiner.Refine(captured);
  EXPECT_NEAR(refined.detections.back().box.cx, 500.0, 40.0);
}

}  // namespace
}  // namespace otif::track
