#include "track/types.h"

#include <gtest/gtest.h>

namespace otif::track {
namespace {

Track MakeTrack(std::vector<std::pair<int, geom::BBox>> dets) {
  Track t;
  t.id = 1;
  for (auto& [frame, box] : dets) {
    Detection d;
    d.frame = frame;
    d.box = box;
    t.detections.push_back(d);
  }
  return t;
}

TEST(ObjectClassTest, Names) {
  EXPECT_STREQ(ObjectClassName(ObjectClass::kCar), "car");
  EXPECT_STREQ(ObjectClassName(ObjectClass::kBus), "bus");
  EXPECT_STREQ(ObjectClassName(ObjectClass::kTruck), "truck");
  EXPECT_STREQ(ObjectClassName(ObjectClass::kPedestrian), "pedestrian");
}

TEST(TrackTest, FrameAccessors) {
  Track t = MakeTrack({{3, {0, 0, 2, 2}}, {7, {10, 0, 2, 2}}});
  EXPECT_EQ(t.StartFrame(), 3);
  EXPECT_EQ(t.EndFrame(), 7);
  EXPECT_EQ(t.DurationFrames(), 5);
  EXPECT_FALSE(t.empty());
}

TEST(TrackTest, EmptyTrackDuration) {
  Track t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.DurationFrames(), 0);
}

TEST(TrackTest, CenterPolyline) {
  Track t = MakeTrack({{0, {0, 0, 2, 2}}, {1, {10, 5, 2, 2}}});
  const auto pts = t.CenterPolyline();
  ASSERT_EQ(pts.size(), 2u);
  EXPECT_EQ(pts[0], geom::Point(0, 0));
  EXPECT_EQ(pts[1], geom::Point(10, 5));
}

TEST(TrackTest, InterpolatedBoxMidpoint) {
  Track t = MakeTrack({{0, {0, 0, 2, 2}}, {10, {10, 20, 4, 6}}});
  geom::BBox mid = t.InterpolatedBoxAt(5);
  EXPECT_DOUBLE_EQ(mid.cx, 5.0);
  EXPECT_DOUBLE_EQ(mid.cy, 10.0);
  EXPECT_DOUBLE_EQ(mid.w, 3.0);
  EXPECT_DOUBLE_EQ(mid.h, 4.0);
}

TEST(TrackTest, InterpolatedBoxClampsOutsideSpan) {
  Track t = MakeTrack({{5, {1, 1, 2, 2}}, {10, {9, 9, 2, 2}}});
  EXPECT_DOUBLE_EQ(t.InterpolatedBoxAt(0).cx, 1.0);
  EXPECT_DOUBLE_EQ(t.InterpolatedBoxAt(99).cx, 9.0);
  EXPECT_DOUBLE_EQ(t.InterpolatedBoxAt(5).cx, 1.0);
  EXPECT_DOUBLE_EQ(t.InterpolatedBoxAt(10).cx, 9.0);
}

TEST(TrackTest, VisibleNear) {
  Track t = MakeTrack({{10, {0, 0, 1, 1}}, {20, {5, 5, 1, 1}}});
  EXPECT_TRUE(t.VisibleNear(10, 0));
  EXPECT_TRUE(t.VisibleNear(12, 2));
  EXPECT_FALSE(t.VisibleNear(15, 2));
}

TEST(TrackTest, MeanSpeed) {
  // 10 px over 10 frames = 1 px/frame.
  Track t = MakeTrack({{0, {0, 0, 1, 1}}, {10, {10, 0, 1, 1}}});
  EXPECT_DOUBLE_EQ(t.MeanSpeedPxPerFrame(), 1.0);
  Track single = MakeTrack({{0, {0, 0, 1, 1}}});
  EXPECT_DOUBLE_EQ(single.MeanSpeedPxPerFrame(), 0.0);
}

TEST(GroupByFrameTest, GroupsAndSortsByFrame) {
  std::vector<Detection> dets;
  Detection d;
  d.frame = 5;
  dets.push_back(d);
  d.frame = 2;
  dets.push_back(d);
  d.frame = 5;
  dets.push_back(d);
  const auto grouped = GroupByFrame(dets);
  ASSERT_EQ(grouped.size(), 2u);
  EXPECT_EQ(grouped[0].first, 2);
  EXPECT_EQ(grouped[0].second.size(), 1u);
  EXPECT_EQ(grouped[1].first, 5);
  EXPECT_EQ(grouped[1].second.size(), 2u);
}

TEST(GroupByFrameTest, EmptyInput) {
  EXPECT_TRUE(GroupByFrame({}).empty());
}

}  // namespace
}  // namespace otif::track
