#include "track/metrics.h"

#include <gtest/gtest.h>

namespace otif::track {
namespace {

Detection MakeDet(int frame, double cx, double cy, double conf = 1.0) {
  Detection d;
  d.frame = frame;
  d.box = geom::BBox(cx, cy, 20, 20);
  d.confidence = conf;
  return d;
}

TEST(CountAccuracyTest, ExactAndOff) {
  EXPECT_DOUBLE_EQ(CountAccuracy(10, 10), 1.0);
  EXPECT_DOUBLE_EQ(CountAccuracy(9, 10), 0.9);
  EXPECT_DOUBLE_EQ(CountAccuracy(11, 10), 0.9);
  EXPECT_DOUBLE_EQ(CountAccuracy(0, 10), 0.0);
  EXPECT_DOUBLE_EQ(CountAccuracy(30, 10), 0.0);  // Clamped, not negative.
}

TEST(CountAccuracyTest, ZeroGroundTruth) {
  EXPECT_DOUBLE_EQ(CountAccuracy(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(CountAccuracy(3, 0), 0.0);
}

TEST(MeanCountAccuracyTest, Averages) {
  EXPECT_DOUBLE_EQ(MeanCountAccuracy({10, 5}, {10, 10}), 0.75);
}

TEST(AveragePrecisionTest, PerfectDetections) {
  std::vector<Detection> gt = {MakeDet(0, 50, 50), MakeDet(1, 80, 80)};
  EXPECT_DOUBLE_EQ(AveragePrecision50(gt, gt), 1.0);
}

TEST(AveragePrecisionTest, EmptyCases) {
  std::vector<Detection> gt = {MakeDet(0, 50, 50)};
  EXPECT_DOUBLE_EQ(AveragePrecision50({}, gt), 0.0);
  EXPECT_DOUBLE_EQ(AveragePrecision50({}, {}), 1.0);
  EXPECT_DOUBLE_EQ(AveragePrecision50(gt, {}), 0.0);
}

TEST(AveragePrecisionTest, MissedDetectionLowersAp) {
  std::vector<Detection> gt = {MakeDet(0, 50, 50), MakeDet(0, 200, 200)};
  std::vector<Detection> dets = {MakeDet(0, 50, 50)};
  const double ap = AveragePrecision50(dets, gt);
  EXPECT_NEAR(ap, 0.5, 1e-9);
}

TEST(AveragePrecisionTest, FalsePositiveWithLowConfidenceHurtsLess) {
  std::vector<Detection> gt = {MakeDet(0, 50, 50)};
  // FP ranked above the TP vs below it.
  std::vector<Detection> fp_first = {MakeDet(0, 300, 300, 0.9),
                                     MakeDet(0, 50, 50, 0.5)};
  std::vector<Detection> fp_last = {MakeDet(0, 300, 300, 0.3),
                                    MakeDet(0, 50, 50, 0.8)};
  EXPECT_LT(AveragePrecision50(fp_first, gt), AveragePrecision50(fp_last, gt));
}

TEST(AveragePrecisionTest, DuplicateDetectionsCountOnce) {
  std::vector<Detection> gt = {MakeDet(0, 50, 50)};
  std::vector<Detection> dets = {MakeDet(0, 50, 50, 0.9),
                                 MakeDet(0, 51, 50, 0.8)};  // Duplicate.
  const double ap = AveragePrecision50(dets, gt);
  EXPECT_LT(ap, 1.01);
  EXPECT_GT(ap, 0.9);  // TP first; duplicate only trims the tail.
}

TEST(AveragePrecisionTest, WrongFrameDoesNotMatch) {
  std::vector<Detection> gt = {MakeDet(0, 50, 50)};
  std::vector<Detection> dets = {MakeDet(1, 50, 50)};
  EXPECT_DOUBLE_EQ(AveragePrecision50(dets, gt), 0.0);
}

TEST(PrecisionRecallCurveTest, SeparableScores) {
  const std::vector<double> scores = {0.9, 0.8, 0.2, 0.1};
  const std::vector<int> labels = {1, 1, 0, 0};
  const auto curve = PrecisionRecallCurve(scores, labels, 11);
  ASSERT_EQ(curve.size(), 11u);
  // At threshold 0.5: precision 1, recall 1.
  EXPECT_DOUBLE_EQ(curve[5].precision, 1.0);
  EXPECT_DOUBLE_EQ(curve[5].recall, 1.0);
  // At threshold 0: everything positive -> precision 0.5, recall 1.
  EXPECT_DOUBLE_EQ(curve[0].precision, 0.5);
  EXPECT_DOUBLE_EQ(curve[0].recall, 1.0);
}

TEST(PrecisionRecallCurveTest, RecallFallsWithThreshold) {
  const std::vector<double> scores = {0.9, 0.6, 0.3};
  const std::vector<int> labels = {1, 1, 1};
  const auto curve = PrecisionRecallCurve(scores, labels, 21);
  for (size_t i = 1; i < curve.size(); ++i) {
    EXPECT_LE(curve[i].recall, curve[i - 1].recall + 1e-12);
  }
}

TEST(DetectionCoverageTest, CountsCoveredCenters) {
  FrameDetections gt = {MakeDet(0, 10, 10), MakeDet(0, 100, 100)};
  const std::vector<geom::BBox> rects = {geom::BBox::FromCorners(0, 0, 50, 50)};
  EXPECT_DOUBLE_EQ(DetectionCoverage(gt, rects), 0.5);
  EXPECT_DOUBLE_EQ(DetectionCoverage({}, rects), 1.0);
  EXPECT_DOUBLE_EQ(DetectionCoverage(gt, {}), 0.0);
}

}  // namespace
}  // namespace otif::track
