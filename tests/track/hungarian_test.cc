#include "track/hungarian.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace otif::track {
namespace {

double TotalCost(const std::vector<std::vector<double>>& cost,
                 const std::vector<int>& assignment) {
  double total = 0.0;
  for (size_t r = 0; r < assignment.size(); ++r) {
    if (assignment[r] >= 0) {
      total += cost[r][static_cast<size_t>(assignment[r])];
    }
  }
  return total;
}

TEST(SolveAssignmentTest, EmptyInputs) {
  EXPECT_TRUE(SolveAssignment({}).empty());
  std::vector<std::vector<double>> no_cols = {{}, {}};
  const auto result = SolveAssignment(no_cols);
  ASSERT_EQ(result.size(), 2u);
  EXPECT_EQ(result[0], -1);
  EXPECT_EQ(result[1], -1);
}

TEST(SolveAssignmentTest, IdentityIsOptimal) {
  std::vector<std::vector<double>> cost = {
      {0.0, 1.0, 1.0}, {1.0, 0.0, 1.0}, {1.0, 1.0, 0.0}};
  const auto result = SolveAssignment(cost);
  EXPECT_EQ(result, (std::vector<int>{0, 1, 2}));
}

TEST(SolveAssignmentTest, AntiDiagonal) {
  std::vector<std::vector<double>> cost = {
      {5.0, 1.0}, {1.0, 5.0}};
  const auto result = SolveAssignment(cost);
  EXPECT_EQ(result, (std::vector<int>{1, 0}));
}

TEST(SolveAssignmentTest, ClassicExample) {
  // Known optimum: total cost 5 (a->2, b->1, c->0 style).
  std::vector<std::vector<double>> cost = {
      {4, 1, 3}, {2, 0, 5}, {3, 2, 2}};
  const auto result = SolveAssignment(cost);
  EXPECT_DOUBLE_EQ(TotalCost(cost, result), 5.0);
}

TEST(SolveAssignmentTest, RectangularMoreRows) {
  std::vector<std::vector<double>> cost = {{1.0}, {0.1}, {2.0}};
  const auto result = SolveAssignment(cost);
  ASSERT_EQ(result.size(), 3u);
  int assigned = 0;
  for (int c : result) {
    if (c >= 0) ++assigned;
  }
  EXPECT_EQ(assigned, 1);
  EXPECT_EQ(result[1], 0);  // Cheapest row gets the only column.
}

TEST(SolveAssignmentTest, RectangularMoreCols) {
  std::vector<std::vector<double>> cost = {{3.0, 0.5, 2.0}};
  const auto result = SolveAssignment(cost);
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0], 1);
}

// Property test: on random square instances, the Hungarian result is never
// worse than 2000 random permutations.
TEST(SolveAssignmentPropertyTest, BeatsRandomPermutations) {
  Rng rng(5150);
  for (int trial = 0; trial < 10; ++trial) {
    const int n = 2 + static_cast<int>(rng.UniformInt(uint64_t{6}));
    std::vector<std::vector<double>> cost(
        static_cast<size_t>(n), std::vector<double>(static_cast<size_t>(n)));
    for (auto& row : cost) {
      for (double& c : row) c = rng.Uniform(0, 10);
    }
    const auto result = SolveAssignment(cost);
    const double optimal = TotalCost(cost, result);
    std::vector<int> perm(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) perm[static_cast<size_t>(i)] = i;
    for (int s = 0; s < 2000; ++s) {
      for (int i = n - 1; i > 0; --i) {
        std::swap(perm[static_cast<size_t>(i)],
                  perm[rng.UniformInt(static_cast<uint64_t>(i + 1))]);
      }
      EXPECT_LE(optimal, TotalCost(cost, perm) + 1e-9);
    }
  }
}

TEST(GreedyAssignmentTest, RespectsMaxCost) {
  std::vector<std::vector<double>> cost = {{0.9, 0.2}, {0.3, 0.95}};
  const auto result = GreedyAssignment(cost, 0.5);
  EXPECT_EQ(result, (std::vector<int>{1, 0}));
  const auto strict = GreedyAssignment(cost, 0.25);
  EXPECT_EQ(strict, (std::vector<int>{1, -1}));
}

TEST(GreedyAssignmentTest, NoDoubleAssignment) {
  // Row 1 would prefer column 0, but row 0 claims it first (lower cost);
  // row 1 falls back to the expensive column 1 which is above max_cost.
  std::vector<std::vector<double>> cost = {{0.1, 0.2}, {0.15, 0.9}};
  const auto result = GreedyAssignment(cost, 0.5);
  EXPECT_EQ(result[0], 0);
  EXPECT_EQ(result[1], -1);
}

TEST(GreedyAssignmentTest, SecondRowTakesRemainingColumn) {
  std::vector<std::vector<double>> cost = {{0.1, 0.2}, {0.15, 0.5}};
  const auto result = GreedyAssignment(cost, 1.0);
  EXPECT_EQ(result, (std::vector<int>{0, 1}));
}

}  // namespace
}  // namespace otif::track
