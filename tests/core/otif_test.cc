#include "core/otif.h"

#include <gtest/gtest.h>

#include "eval/workload.h"
#include "query/queries.h"
#include "track/metrics.h"

namespace otif::core {
namespace {

// Small scale for test speed; one shared prepared instance.
RunScale TestScale() {
  RunScale scale;
  scale.train_clips = 2;
  scale.valid_clips = 2;
  scale.test_clips = 2;
  scale.clip_seconds = 12;
  scale.proxy_train_steps = 300;
  scale.tracker_train_steps = 700;
  scale.proxy_resolutions = 2;
  scale.window_sample_frames = 16;
  return scale;
}

struct PreparedOtif {
  std::unique_ptr<Otif> otif;
  std::vector<sim::Clip> valid;
  std::vector<sim::Clip> test;
  AccuracyFn valid_fn;
  AccuracyFn test_fn;
};

PreparedOtif* Shared() {
  static PreparedOtif* shared = [] {
    auto* p = new PreparedOtif;
    eval::TrackWorkload workload =
        eval::MakeTrackWorkload(sim::DatasetId::kSynthetic);
    p->otif = std::make_unique<Otif>(workload.spec, TestScale());
    p->valid = p->otif->ValidClips();
    p->test = p->otif->TestClips();
    p->valid_fn = workload.MakeAccuracyFn(&p->valid);
    p->test_fn = workload.MakeAccuracyFn(&p->test);
    Tuner::Options topts;
    topts.max_iterations = 6;
    p->otif->Prepare(p->valid_fn, topts);
    return p;
  }();
  return shared;
}

TEST(OtifTest, ClipSplitsAreDisjointAndDeterministic) {
  eval::TrackWorkload workload =
      eval::MakeTrackWorkload(sim::DatasetId::kSynthetic);
  Otif otif(workload.spec, TestScale());
  const auto train = otif.TrainClips();
  const auto valid = otif.ValidClips();
  EXPECT_EQ(train.size(), 2u);
  EXPECT_EQ(valid.size(), 2u);
  EXPECT_NE(train[0].clip_seed(), valid[0].clip_seed());
  const auto train_again = otif.TrainClips();
  EXPECT_EQ(train[0].clip_seed(), train_again[0].clip_seed());
  EXPECT_EQ(train[0].objects().size(), train_again[0].objects().size());
}

TEST(OtifTest, PrepareProducesCurveAndModels) {
  PreparedOtif* p = Shared();
  EXPECT_GT(p->otif->theta_best_accuracy(), 0.4);
  EXPECT_EQ(p->otif->trained().proxies.size(), 2u);
  EXPECT_NE(p->otif->trained().tracker_net, nullptr);
  EXPECT_NE(p->otif->trained().refiner, nullptr);
  EXPECT_GE(p->otif->trained().window_sizes.size(), 2u);
  ASSERT_GE(p->otif->curve().size(), 3u);
}

TEST(OtifTest, CurveTradesSpeedForAccuracy) {
  PreparedOtif* p = Shared();
  const auto& curve = p->otif->curve();
  // Later points must be faster than the first point.
  EXPECT_LT(curve.back().val_seconds, curve.front().val_seconds * 0.7);
  // The best point on the curve should be reasonably accurate.
  double best_acc = 0.0;
  for (const TunerPoint& tp : curve) {
    best_acc = std::max(best_acc, tp.val_accuracy);
  }
  EXPECT_GT(best_acc, 0.5);
}

TEST(OtifTest, FastestWithinToleranceIsFasterThanBest) {
  PreparedOtif* p = Shared();
  const TunerPoint& pick = p->otif->FastestWithinTolerance(0.10);
  double best_acc = 0.0;
  for (const TunerPoint& tp : p->otif->curve()) {
    best_acc = std::max(best_acc, tp.val_accuracy);
  }
  EXPECT_GE(pick.val_accuracy, best_acc - 0.10);
  for (const TunerPoint& tp : p->otif->curve()) {
    if (tp.val_accuracy >= best_acc - 0.10) {
      EXPECT_LE(pick.val_seconds, tp.val_seconds);
    }
  }
}

TEST(OtifTest, ExecuteOnTestSetHoldsAccuracy) {
  PreparedOtif* p = Shared();
  const TunerPoint& pick = p->otif->FastestWithinTolerance(0.10);
  EvalResult r = p->otif->Execute(pick.config, p->test, p->test_fn);
  EXPECT_EQ(r.tracks_per_clip.size(), p->test.size());
  EXPECT_GT(r.accuracy, 0.35) << "test accuracy collapsed vs validation "
                              << pick.val_accuracy;
  EXPECT_GT(r.seconds, 0.0);
}

TEST(OtifTest, TunedConfigUsesSpeedups) {
  // The fastest curve point must use at least one speedup mechanism
  // (gap > 1, proxy, or reduced resolution).
  PreparedOtif* p = Shared();
  const auto& curve = p->otif->curve();
  const PipelineConfig& last = curve.back().config;
  EXPECT_TRUE(last.sampling_gap > 1 || last.use_proxy ||
              last.detector_scale < 0.99);
}

TEST(OtifTest, TracksSupportDownstreamQueries) {
  // End-to-end: extracted tracks answer a hard-braking query without
  // touching video again (the paper's core workflow claim).
  PreparedOtif* p = Shared();
  const TunerPoint& pick = p->otif->FastestWithinTolerance(0.10);
  EvalResult r = p->otif->Execute(pick.config, p->test, p->test_fn);
  for (size_t c = 0; c < p->test.size(); ++c) {
    const auto braking = query::FindHardBrakingTracks(
        r.tracks_per_clip[c], p->test[c].spec(), 3.0);
    // No crash and plausible cardinality.
    EXPECT_LE(braking.size(), r.tracks_per_clip[c].size());
  }
}

}  // namespace
}  // namespace otif::core
