// Determinism tests for the staged pipeline executor: parallel execution
// over the worker pool must reproduce the single-threaded results
// bit-for-bit (tracks, simulated clock charges, coverage diagnostics).

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/best_config.h"
#include "core/pipeline.h"
#include "core/proxy_cache.h"
#include "models/detector.h"
#include "query/queries.h"
#include "sim/dataset.h"
#include "sim/raster.h"
#include "track/metrics.h"
#include "util/thread_pool.h"

namespace otif::core {
namespace {

std::vector<sim::Clip> MakeClips(int n = 3, int frames = 120) {
  std::vector<sim::Clip> clips;
  const sim::DatasetSpec spec = sim::MakeDataset(sim::DatasetId::kSynthetic);
  for (int c = 0; c < n; ++c) {
    clips.push_back(sim::SimulateClip(spec, sim::ClipSeed(spec, 1, c), frames));
  }
  return clips;
}

AccuracyFn CountAccuracyFn(const std::vector<sim::Clip>* clips) {
  return [clips](const std::vector<std::vector<track::Track>>& per_clip) {
    double sum = 0.0;
    for (size_t c = 0; c < clips->size(); ++c) {
      const int gt = query::GroundTruthVehicleCount((*clips)[c], 10);
      const int est = query::CountVehicleTracks(per_clip[c], 10);
      sum += track::CountAccuracy(est, gt);
    }
    return sum / static_cast<double>(clips->size());
  };
}

/// Trained artifacts for the matrix: one lightly trained proxy (enough to
/// produce non-trivial cell scores), a freshly seeded (deterministic)
/// recurrent tracker net, and a hand-picked window set. No refiner: the
/// refine path needs S*, which is out of scope for these tests.
std::unique_ptr<TrainedModels> MakeTrained(
    const std::vector<sim::Clip>& clips) {
  auto trained = std::make_unique<TrainedModels>();
  const auto resolutions = models::StandardProxyResolutions();
  auto proxy = std::make_unique<models::ProxyModel>(resolutions[0], 1234);

  models::SimulatedDetector detector(models::ArchByName(
      models::StandardDetectorArchs(), "yolov3"));
  sim::Rasterizer raster(&clips[0]);
  int next_frame = 0;
  auto sampler = [&]() {
    const int f = next_frame;
    next_frame = (next_frame + 7) % clips[0].num_frames();
    models::ProxySample s;
    s.frame = raster.Render(f, proxy->resolution().raster_w(),
                            proxy->resolution().raster_h());
    s.labels = proxy->MakeLabels(
        models::FilterByConfidence(detector.Detect(clips[0], f, 1.0), 0.4),
        clips[0].spec().width, clips[0].spec().height);
    return s;
  };
  models::TrainProxyModel(proxy.get(), sampler, 24);
  trained->proxies.push_back(std::move(proxy));
  trained->tracker_net = std::make_unique<models::TrackerNet>(99);
  trained->window_sizes = {WindowSize{64, 64}, WindowSize{128, 96},
                           WindowSize{224, 160}};
  return trained;
}

void ExpectIdentical(const EvalResult& a, const EvalResult& b) {
  // Exact floating-point equality: the parallel schedule must not change a
  // single bit of the accounting.
  for (const models::CostCategory cat :
       {models::CostCategory::kDecode, models::CostCategory::kProxy,
        models::CostCategory::kDetect, models::CostCategory::kTrack,
        models::CostCategory::kRefine}) {
    EXPECT_EQ(a.clock.Seconds(cat), b.clock.Seconds(cat))
        << "category " << static_cast<int>(cat);
  }
  EXPECT_EQ(a.seconds, b.seconds);
  EXPECT_EQ(a.accuracy, b.accuracy);
  ASSERT_EQ(a.tracks_per_clip.size(), b.tracks_per_clip.size());
  for (size_t c = 0; c < a.tracks_per_clip.size(); ++c) {
    const auto& ta = a.tracks_per_clip[c];
    const auto& tb = b.tracks_per_clip[c];
    ASSERT_EQ(ta.size(), tb.size()) << "clip " << c;
    for (size_t t = 0; t < ta.size(); ++t) {
      EXPECT_EQ(ta[t].id, tb[t].id);
      EXPECT_EQ(ta[t].cls, tb[t].cls);
      ASSERT_EQ(ta[t].detections.size(), tb[t].detections.size());
      for (size_t d = 0; d < ta[t].detections.size(); ++d) {
        const track::Detection& da = ta[t].detections[d];
        const track::Detection& db = tb[t].detections[d];
        EXPECT_EQ(da.frame, db.frame);
        EXPECT_EQ(da.box.cx, db.box.cx);
        EXPECT_EQ(da.box.cy, db.box.cy);
        EXPECT_EQ(da.box.w, db.box.w);
        EXPECT_EQ(da.box.h, db.box.h);
        EXPECT_EQ(da.confidence, db.confidence);
      }
    }
  }
}

class PipelineStagesDeterminismTest : public ::testing::Test {
 protected:
  void TearDown() override { ThreadPool::SetDefaultThreads(1); }

  /// Evaluates `config` serially and with a 4-lane pool; both must agree
  /// bit-for-bit. The proxy cache is cleared before each run so the
  /// parallel pass exercises concurrent compute+insert, not just hits.
  void CheckConfig(const PipelineConfig& config,
                   const TrainedModels* trained) {
    const auto fn = CountAccuracyFn(&clips_);
    ThreadPool::SetDefaultThreads(1);
    if (trained != nullptr) trained->proxy_cache.Clear();
    const EvalResult serial = EvaluateConfig(config, trained, clips_, fn);
    ThreadPool::SetDefaultThreads(4);
    if (trained != nullptr) trained->proxy_cache.Clear();
    const EvalResult parallel = EvaluateConfig(config, trained, clips_, fn);
    ExpectIdentical(serial, parallel);
  }

  std::vector<sim::Clip> clips_ = MakeClips();
};

TEST_F(PipelineStagesDeterminismTest, SortNoProxy) {
  PipelineConfig config;
  config.tracker = TrackerKind::kSort;
  config.use_proxy = false;
  CheckConfig(config, nullptr);
}

TEST_F(PipelineStagesDeterminismTest, SortWithProxy) {
  const auto trained = MakeTrained(clips_);
  PipelineConfig config;
  config.tracker = TrackerKind::kSort;
  config.use_proxy = true;
  config.proxy_threshold = 0.3;
  config.sampling_gap = 2;
  CheckConfig(config, trained.get());
}

TEST_F(PipelineStagesDeterminismTest, RecurrentNoProxy) {
  const auto trained = MakeTrained(clips_);
  PipelineConfig config;
  config.tracker = TrackerKind::kRecurrent;
  config.use_proxy = false;
  config.sampling_gap = 4;
  CheckConfig(config, trained.get());
}

TEST_F(PipelineStagesDeterminismTest, RecurrentWithProxy) {
  const auto trained = MakeTrained(clips_);
  PipelineConfig config;
  config.tracker = TrackerKind::kRecurrent;
  config.use_proxy = true;
  config.proxy_threshold = 0.3;
  config.sampling_gap = 2;
  CheckConfig(config, trained.get());
}

TEST_F(PipelineStagesDeterminismTest, ProxyCacheCountsHitsAcrossRuns) {
  const auto trained = MakeTrained(clips_);
  PipelineConfig config;
  config.use_proxy = true;
  config.proxy_threshold = 0.3;
  config.sampling_gap = 2;
  const auto fn = CountAccuracyFn(&clips_);
  trained->proxy_cache.Clear();
  EvaluateConfig(config, trained.get(), clips_, fn);
  const int64_t misses_first = trained->proxy_cache.misses();
  EXPECT_GT(misses_first, 0);
  EXPECT_GT(trained->proxy_cache.size(), 0u);
  const int64_t hits_before = trained->proxy_cache.hits();
  EvaluateConfig(config, trained.get(), clips_, fn);
  // Second evaluation re-scores the same frames: all lookups hit.
  EXPECT_EQ(trained->proxy_cache.misses(), misses_first);
  EXPECT_GE(trained->proxy_cache.hits() - hits_before, misses_first);
}

TEST(ProxyScoreCacheTest, EvictsFifoAtCapacity) {
  ProxyScoreCache cache(/*capacity=*/2);
  int computes = 0;
  auto make = [&](float v) {
    return [&computes, v] {
      ++computes;
      nn::Tensor t({1});
      t[0] = v;
      return t;
    };
  };
  EXPECT_EQ(cache.GetOrCompute({1, 0, 0}, make(1.0f))[0], 1.0f);
  EXPECT_EQ(cache.GetOrCompute({2, 0, 0}, make(2.0f))[0], 2.0f);
  EXPECT_EQ(cache.GetOrCompute({3, 0, 0}, make(3.0f))[0], 3.0f);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(computes, 3);
  // Key 1 was evicted (FIFO) and recomputes; key 3 is still resident.
  EXPECT_EQ(cache.GetOrCompute({1, 0, 0}, make(1.5f))[0], 1.5f);
  EXPECT_EQ(computes, 4);
  EXPECT_EQ(cache.GetOrCompute({3, 0, 0}, make(9.0f))[0], 3.0f);
  EXPECT_EQ(computes, 4);
  EXPECT_EQ(cache.hits(), 1);
  EXPECT_EQ(cache.misses(), 4);
}

TEST(ProxyScoreCacheTest, CountsEvictionsAndResetsCounters) {
  ProxyScoreCache cache(/*capacity=*/2);
  auto make = [](float v) {
    return [v] {
      nn::Tensor t({1});
      t[0] = v;
      return t;
    };
  };
  cache.GetOrCompute({1, 0, 0}, make(1.0f));
  cache.GetOrCompute({2, 0, 0}, make(2.0f));
  cache.GetOrCompute({3, 0, 0}, make(3.0f));  // Evicts key 1.
  cache.GetOrCompute({4, 0, 0}, make(4.0f));  // Evicts key 2.
  cache.GetOrCompute({4, 0, 0}, make(9.0f));  // Hit.
  EXPECT_EQ(cache.evictions(), 2);
  EXPECT_EQ(cache.hits(), 1);
  EXPECT_EQ(cache.misses(), 4);
  EXPECT_DOUBLE_EQ(cache.hit_rate(), 1.0 / 5.0);

  // Clear drops entries but keeps counters (documented contract) ...
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.hits(), 1);
  EXPECT_EQ(cache.misses(), 4);
  EXPECT_EQ(cache.evictions(), 2);

  // ... while ResetCounters starts a fresh measurement interval without
  // touching the entries.
  cache.GetOrCompute({5, 0, 0}, make(5.0f));
  cache.ResetCounters();
  EXPECT_EQ(cache.hits(), 0);
  EXPECT_EQ(cache.misses(), 0);
  EXPECT_EQ(cache.evictions(), 0);
  EXPECT_DOUBLE_EQ(cache.hit_rate(), 0.0);
  EXPECT_EQ(cache.size(), 1u);
  cache.GetOrCompute({5, 0, 0}, make(9.0f));
  EXPECT_EQ(cache.hits(), 1);
}

TEST(ProxyScoreCacheTest, ConcurrentGetOrComputeIsConsistent) {
  ProxyScoreCache cache;
  ThreadPool pool(4);
  std::vector<float> got(256, -1.0f);
  pool.ParallelFor(256, [&](int64_t i) {
    const int key = static_cast<int>(i % 16);
    const nn::Tensor t = cache.GetOrCompute(
        {7, key, 0}, [key] {
          nn::Tensor v({1});
          v[0] = static_cast<float>(key);
          return v;
        });
    got[static_cast<size_t>(i)] = t[0];
  });
  for (int64_t i = 0; i < 256; ++i) {
    EXPECT_EQ(got[static_cast<size_t>(i)], static_cast<float>(i % 16));
  }
  EXPECT_EQ(cache.size(), 16u);
  EXPECT_EQ(cache.hits() + cache.misses(), 256);
}

}  // namespace
}  // namespace otif::core
