// Tests for the cross-clip batcher's release protocol: full releases led by
// the filling submitter, deadline releases of partial waves, Flush as a
// drain aid, and Close abandoning pending requests unprocessed.

#include "core/executor/cross_clip_batcher.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>
#include <vector>

#include "util/fault_injection.h"

namespace otif::core::executor {
namespace {

struct TestRequest {
  int value = 0;
  int response = -1;
};

using Batcher = CrossClipBatcher<TestRequest>;

/// Process function that answers every request with value + 1 and records
/// the wave sizes it saw.
struct EchoProcessor {
  std::mutex mu;
  std::vector<size_t> wave_sizes;

  Batcher::ProcessFn Fn() {
    return [this](const std::vector<TestRequest*>& wave) {
      std::lock_guard<std::mutex> lock(mu);
      wave_sizes.push_back(wave.size());
      for (TestRequest* req : wave) req->response = req->value + 1;
    };
  }
};

TEST(CrossClipBatcherTest, FullSubmissionReleasesInline) {
  EchoProcessor proc;
  Batcher batcher("test", {.target_units = 4, .max_wait = std::chrono::hours(1)},
                  proc.Fn());
  TestRequest req{.value = 10};
  // One submission carrying >= target units fills the wave immediately; the
  // huge max_wait proves no deadline was involved.
  EXPECT_TRUE(batcher.Submit(&req, 4));
  EXPECT_EQ(req.response, 11);
  EXPECT_EQ(batcher.full_releases(), 1);
  EXPECT_EQ(batcher.deadline_releases(), 0);
  EXPECT_EQ(batcher.units_processed(), 4);
  ASSERT_EQ(proc.wave_sizes.size(), 1u);
  EXPECT_EQ(proc.wave_sizes[0], 1u);
}

TEST(CrossClipBatcherTest, UnitsOverflowingTargetStillReleaseOnce) {
  EchoProcessor proc;
  Batcher batcher("test", {.target_units = 4, .max_wait = std::chrono::hours(1)},
                  proc.Fn());
  TestRequest req{.value = 1};
  EXPECT_TRUE(batcher.Submit(&req, 9));
  EXPECT_EQ(batcher.full_releases(), 1);
  EXPECT_EQ(batcher.units_processed(), 9);
}

TEST(CrossClipBatcherTest, DeadlineReleasesPartialWave) {
  EchoProcessor proc;
  Batcher batcher(
      "test", {.target_units = 100, .max_wait = std::chrono::microseconds(200)},
      proc.Fn());
  TestRequest req{.value = 5};
  // The wave can never fill; the submitter itself must time out and become
  // the deadline leader for its own partial wave.
  EXPECT_TRUE(batcher.Submit(&req, 1));
  EXPECT_EQ(req.response, 6);
  EXPECT_EQ(batcher.full_releases(), 0);
  EXPECT_EQ(batcher.deadline_releases(), 1);
  ASSERT_EQ(proc.wave_sizes.size(), 1u);
  EXPECT_EQ(proc.wave_sizes[0], 1u);
}

TEST(CrossClipBatcherTest, BatchesAcrossSubmitters) {
  EchoProcessor proc;
  Batcher batcher("test", {.target_units = 2, .max_wait = std::chrono::hours(1)},
                  proc.Fn());
  TestRequest a{.value = 1};
  TestRequest b{.value = 2};
  // With target 2 and an unreachable deadline, whichever submission arrives
  // first blocks as a follower and the other fills the wave — in either
  // order the single released wave spans both submitters.
  std::thread first([&] { EXPECT_TRUE(batcher.Submit(&a, 1)); });
  std::thread second([&] { EXPECT_TRUE(batcher.Submit(&b, 1)); });
  first.join();
  second.join();
  EXPECT_EQ(a.response, 2);
  EXPECT_EQ(b.response, 3);
  EXPECT_EQ(batcher.full_releases(), 1);
  EXPECT_EQ(batcher.deadline_releases(), 0);
  EXPECT_EQ(batcher.units_processed(), 2);
  ASSERT_EQ(proc.wave_sizes.size(), 1u);
  EXPECT_EQ(proc.wave_sizes[0], 2u);  // One wave spanning both submitters.
}

TEST(CrossClipBatcherTest, FlushReleasesOpenPartialWave) {
  EchoProcessor proc;
  Batcher batcher("test", {.target_units = 100, .max_wait = std::chrono::hours(1)},
                  proc.Fn());
  TestRequest req{.value = 7};
  std::atomic<bool> done{false};
  std::thread submitter([&] {
    EXPECT_TRUE(batcher.Submit(&req, 1));
    done.store(true);
  });
  // Keep flushing until the submitter's wave has been released; Flush on an
  // empty batcher is a no-op, so looping is safe regardless of timing.
  while (!done.load()) {
    batcher.Flush();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  submitter.join();
  EXPECT_EQ(req.response, 8);
  EXPECT_EQ(batcher.full_releases(), 0);
  EXPECT_EQ(batcher.deadline_releases(), 1);  // Flush counts as deadline.
}

TEST(CrossClipBatcherTest, CloseFailsPendingSubmitWithoutProcessing) {
  EchoProcessor proc;
  Batcher batcher("test", {.target_units = 100, .max_wait = std::chrono::hours(1)},
                  proc.Fn());
  TestRequest req{.value = 3};
  std::atomic<int> result{-1};
  std::thread submitter(
      [&] { result.store(batcher.Submit(&req, 1) ? 1 : 0); });
  while (result.load() == -1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    batcher.Close();
  }
  submitter.join();
  EXPECT_EQ(result.load(), 0);      // Submit reported failure...
  EXPECT_EQ(req.response, -1);      // ...and the request was never processed.
  EXPECT_EQ(batcher.full_releases(), 0);
  EXPECT_EQ(batcher.deadline_releases(), 0);
  {
    std::lock_guard<std::mutex> lock(proc.mu);
    EXPECT_TRUE(proc.wave_sizes.empty());
  }
  // Closed batchers fail fast.
  TestRequest late{.value = 9};
  EXPECT_FALSE(batcher.Submit(&late, 1));
  EXPECT_EQ(late.response, -1);
}

TEST(CrossClipBatcherTest, ManyConcurrentSubmittersAllAnswered) {
  EchoProcessor proc;
  Batcher batcher(
      "test", {.target_units = 4, .max_wait = std::chrono::microseconds(500)},
      proc.Fn());
  constexpr int kThreads = 8;
  constexpr int kPerThread = 25;
  std::vector<std::vector<TestRequest>> reqs(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    reqs[t].resize(kPerThread);
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        reqs[t][i].value = t * kPerThread + i;
        EXPECT_TRUE(batcher.Submit(&reqs[t][i], 1));
      }
    });
  }
  for (auto& t : threads) t.join();
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kPerThread; ++i) {
      EXPECT_EQ(reqs[t][i].response, reqs[t][i].value + 1);
    }
  }
  EXPECT_EQ(batcher.units_processed(), kThreads * kPerThread);
  EXPECT_GE(batcher.full_releases() + batcher.deadline_releases(),
            kThreads * kPerThread / 4);
}

TEST(CrossClipBatcherTest, TargetUnitsClampedToOne) {
  EchoProcessor proc;
  Batcher batcher("test", {.target_units = 0, .max_wait = std::chrono::hours(1)},
                  proc.Fn());
  TestRequest req{.value = 0};
  EXPECT_TRUE(batcher.Submit(&req, 1));  // Releases immediately at target 1.
  EXPECT_EQ(req.response, 1);
  EXPECT_EQ(batcher.full_releases(), 1);
}

/// Fault-hook tests: "batcher.<name>.submit" stalls delay submitters before
/// they join a wave, exercising the deadline-release path under producers
/// that lag arbitrarily — and racing Close against stalled submitters.
class CrossClipBatcherFaultTest : public ::testing::Test {
 protected:
  void TearDown() override { fault::ClearFaults(); }
};

TEST_F(CrossClipBatcherFaultTest, StalledSubmittersStillAllAnswered) {
  // Half the submissions stall 1 ms before joining. On-time submitters hit
  // their deadline and release partial waves without the stragglers; the
  // stragglers then form (and release) their own waves. Every request must
  // still be answered exactly once.
  ASSERT_TRUE(
      fault::ConfigureFaults("batcher.stalled.submit:stall:0.5:3:ms=1").ok());
  EchoProcessor proc;
  Batcher batcher(
      "stalled",
      {.target_units = 4, .max_wait = std::chrono::microseconds(300)},
      proc.Fn());
  constexpr int kThreads = 6;
  constexpr int kPerThread = 20;
  std::vector<std::vector<TestRequest>> reqs(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    reqs[t].resize(kPerThread);
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        reqs[t][i].value = t * kPerThread + i;
        EXPECT_TRUE(batcher.Submit(&reqs[t][i], 1));
      }
    });
  }
  for (auto& t : threads) t.join();
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kPerThread; ++i) {
      EXPECT_EQ(reqs[t][i].response, reqs[t][i].value + 1);
    }
  }
  EXPECT_EQ(batcher.units_processed(), kThreads * kPerThread);
}

TEST_F(CrossClipBatcherFaultTest, CloseRacesStalledSubmitters) {
  // Every submission stalls at the hook; Close lands while submitters
  // sleep. Each Submit must either complete normally (answered) or fail
  // cleanly (response untouched) — and nothing may hang. (TSan in CI.)
  ASSERT_TRUE(
      fault::ConfigureFaults("batcher.racing.submit:stall:1:5:ms=2").ok());
  EchoProcessor proc;
  Batcher batcher(
      "racing",
      {.target_units = 100, .max_wait = std::chrono::microseconds(200)},
      proc.Fn());
  constexpr int kThreads = 4;
  std::vector<TestRequest> reqs(kThreads);
  std::vector<std::thread> threads;
  std::vector<std::atomic<int>> accepted(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    reqs[t].value = t;
    threads.emplace_back([&, t] {
      accepted[t].store(batcher.Submit(&reqs[t], 1) ? 1 : 0);
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  batcher.Close();
  for (auto& t : threads) t.join();
  for (int t = 0; t < kThreads; ++t) {
    if (accepted[t].load() == 1) {
      EXPECT_EQ(reqs[t].response, reqs[t].value + 1);
    } else {
      EXPECT_EQ(reqs[t].response, -1);
    }
  }
}

}  // namespace
}  // namespace otif::core::executor
