#include "core/window_select.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace otif::core {
namespace {

models::DetectorArch TestArch() {
  models::DetectorArch arch;
  arch.name = "test";
  arch.sec_per_pixel = 1e-8;
  arch.sec_per_invocation = 1e-4;
  return arch;
}

CellGrid GridWithCells(int w, int h,
                       const std::vector<std::pair<int, int>>& cells) {
  CellGrid grid;
  grid.grid_w = w;
  grid.grid_h = h;
  grid.positive.assign(static_cast<size_t>(w) * h, 0);
  for (auto [x, y] : cells) grid.set(x, y, true);
  return grid;
}

TEST(WindowSizeSelectorTest, AlwaysIncludesFullFrame) {
  WindowSizeSelector selector(640, 360, WindowSizeSelector::Options{});
  std::vector<CellGrid> grids = {GridWithCells(8, 8, {{1, 1}})};
  const auto sizes = selector.Select(grids, TestArch());
  ASSERT_FALSE(sizes.empty());
  bool has_full = false;
  for (const WindowSize& s : sizes) {
    if (s.w >= 640 && s.h >= 360) has_full = true;
  }
  EXPECT_TRUE(has_full);
  EXPECT_LE(sizes.size(), 3u);  // k = 3 default.
}

TEST(WindowSizeSelectorTest, AddsSmallSizeForSparseScenes) {
  // Frames with one small object cluster: a small window size must join W
  // and cut the objective versus full-frame-only.
  WindowSizeSelector selector(640, 360, WindowSizeSelector::Options{});
  Rng rng(3);
  std::vector<CellGrid> grids;
  for (int i = 0; i < 10; ++i) {
    const int x = static_cast<int>(rng.UniformInt(uint64_t{7}));
    const int y = static_cast<int>(rng.UniformInt(uint64_t{7}));
    grids.push_back(GridWithCells(8, 8, {{x, y}}));
  }
  const auto sizes = selector.Select(grids, TestArch());
  ASSERT_GE(sizes.size(), 2u);
  const double with_selection =
      selector.TotalEstSeconds(grids, sizes, TestArch());
  const double full_only = selector.TotalEstSeconds(
      grids, {WindowSize{640, 360}}, TestArch());
  EXPECT_LT(with_selection, full_only * 0.5);
}

TEST(WindowSizeSelectorTest, KOneOnlyFullFrame) {
  WindowSizeSelector::Options opts;
  opts.k = 1;
  WindowSizeSelector selector(640, 360, opts);
  std::vector<CellGrid> grids = {GridWithCells(8, 8, {{1, 1}})};
  const auto sizes = selector.Select(grids, TestArch());
  ASSERT_EQ(sizes.size(), 1u);
  EXPECT_GE(sizes[0].w, 640);
}

TEST(WindowSizeSelectorTest, MoreSizesNeverHurtObjective) {
  // Property: the objective is monotone non-increasing in k (Fig 7 left
  // ablation over k).
  Rng rng(9);
  std::vector<CellGrid> grids;
  for (int i = 0; i < 12; ++i) {
    std::vector<std::pair<int, int>> cells;
    const int n = 1 + static_cast<int>(rng.UniformInt(uint64_t{3}));
    for (int c = 0; c < n; ++c) {
      cells.push_back({static_cast<int>(rng.UniformInt(uint64_t{8})),
                       static_cast<int>(rng.UniformInt(uint64_t{8}))});
    }
    grids.push_back(GridWithCells(8, 8, cells));
  }
  double prev = 1e18;
  for (int k = 1; k <= 4; ++k) {
    WindowSizeSelector::Options opts;
    opts.k = k;
    WindowSizeSelector selector(640, 360, opts);
    const auto sizes = selector.Select(grids, TestArch());
    const double objective =
        selector.TotalEstSeconds(grids, sizes, TestArch());
    EXPECT_LE(objective, prev + 1e-12) << "k=" << k;
    prev = objective;
  }
}

}  // namespace
}  // namespace otif::core
