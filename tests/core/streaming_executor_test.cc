// Cross-executor equivalence tests: the streaming dataflow executor (stage
// queues + cross-clip batching) must reproduce the serial reference path
// Pipeline::Run bit-for-bit — same tracks, same detections, same per-clip
// simulated clock charges — for every tuner configuration, no matter how
// invocations were batched across clips.

#include "core/executor/streaming_executor.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "core/pipeline.h"
#include "models/detector.h"
#include "sim/dataset.h"
#include "sim/raster.h"
#include "track/refine.h"
#include "util/fault_injection.h"
#include "util/status.h"
#include "util/telemetry.h"
#include "util/thread_pool.h"

namespace otif::core {
namespace {

std::vector<sim::Clip> MakeClips(int n = 3, int frames = 120) {
  std::vector<sim::Clip> clips;
  const sim::DatasetSpec spec = sim::MakeDataset(sim::DatasetId::kSynthetic);
  for (int c = 0; c < n; ++c) {
    clips.push_back(sim::SimulateClip(spec, sim::ClipSeed(spec, 1, c), frames));
  }
  return clips;
}

/// Trained artifacts for the matrix (same recipe as the pipeline stage
/// determinism tests): a lightly trained proxy, a deterministically seeded
/// recurrent tracker net, and a hand-picked window set.
std::unique_ptr<TrainedModels> MakeTrained(
    const std::vector<sim::Clip>& clips) {
  auto trained = std::make_unique<TrainedModels>();
  const auto resolutions = models::StandardProxyResolutions();
  auto proxy = std::make_unique<models::ProxyModel>(resolutions[0], 1234);

  models::SimulatedDetector detector(models::ArchByName(
      models::StandardDetectorArchs(), "yolov3"));
  sim::Rasterizer raster(&clips[0]);
  int next_frame = 0;
  auto sampler = [&]() {
    const int f = next_frame;
    next_frame = (next_frame + 7) % clips[0].num_frames();
    models::ProxySample s;
    s.frame = raster.Render(f, proxy->resolution().raster_w(),
                            proxy->resolution().raster_h());
    s.labels = proxy->MakeLabels(
        models::FilterByConfidence(detector.Detect(clips[0], f, 1.0), 0.4),
        clips[0].spec().width, clips[0].spec().height);
    return s;
  };
  models::TrainProxyModel(proxy.get(), sampler, 24);
  trained->proxies.push_back(std::move(proxy));
  trained->tracker_net = std::make_unique<models::TrackerNet>(99);
  trained->window_sizes = {WindowSize{64, 64}, WindowSize{128, 96},
                           WindowSize{224, 160}};
  return trained;
}

/// Builds a refiner the way Otif::Prepare does (clusters from a track set,
/// spatial parameters scaled to the clip resolution), using serial SORT
/// tracks as the stand-in for S*.
void AttachRefiner(TrainedModels* trained,
                   const std::vector<sim::Clip>& clips) {
  PipelineConfig config;
  config.tracker = TrackerKind::kSort;
  Pipeline pipeline(config, nullptr);
  std::vector<track::Track> all;
  for (const sim::Clip& clip : clips) {
    PipelineResult r = pipeline.Run(clip);
    all.insert(all.end(), r.tracks.begin(), r.tracks.end());
  }
  const double dim = std::max(clips[0].spec().width, clips[0].spec().height);
  track::DbscanOptions dbscan;
  dbscan.epsilon = 0.04 * dim;
  track::TrackRefiner::Options opts;
  opts.max_cluster_distance = 0.12 * dim;
  opts.index_cell_px = 0.05 * dim;
  trained->refiner = std::make_unique<track::TrackRefiner>(
      track::ClusterTracks(all, dbscan), opts);
}

/// Exact equality across every observable of a clip's run: the batching
/// schedule must not change a single bit.
void ExpectSameResult(const PipelineResult& a, const PipelineResult& b,
                      size_t clip) {
  for (const models::CostCategory cat :
       {models::CostCategory::kDecode, models::CostCategory::kProxy,
        models::CostCategory::kDetect, models::CostCategory::kTrack,
        models::CostCategory::kRefine}) {
    EXPECT_EQ(a.clock.Seconds(cat), b.clock.Seconds(cat))
        << "clip " << clip << " category " << static_cast<int>(cat);
  }
  EXPECT_EQ(a.frames_processed, b.frames_processed) << "clip " << clip;
  EXPECT_EQ(a.detections_kept, b.detections_kept) << "clip " << clip;
  EXPECT_EQ(a.mean_window_coverage, b.mean_window_coverage)
      << "clip " << clip;
  ASSERT_EQ(a.tracks.size(), b.tracks.size()) << "clip " << clip;
  for (size_t t = 0; t < a.tracks.size(); ++t) {
    EXPECT_EQ(a.tracks[t].id, b.tracks[t].id);
    EXPECT_EQ(a.tracks[t].cls, b.tracks[t].cls);
    ASSERT_EQ(a.tracks[t].detections.size(), b.tracks[t].detections.size());
    for (size_t d = 0; d < a.tracks[t].detections.size(); ++d) {
      const track::Detection& da = a.tracks[t].detections[d];
      const track::Detection& db = b.tracks[t].detections[d];
      EXPECT_EQ(da.frame, db.frame);
      EXPECT_EQ(da.box.cx, db.box.cx);
      EXPECT_EQ(da.box.cy, db.box.cy);
      EXPECT_EQ(da.box.w, db.box.w);
      EXPECT_EQ(da.box.h, db.box.h);
      EXPECT_EQ(da.confidence, db.confidence);
    }
  }
}

class StreamingExecutorEquivalenceTest : public ::testing::Test {
 protected:
  void TearDown() override { ThreadPool::SetDefaultThreads(1); }

  /// Options that force heavy cross-clip interleaving: every clip in
  /// flight, several workers per stage, and a batch target large enough
  /// that waves routinely mix groups from different clips.
  static StreamingOptions MixingOptions() {
    StreamingOptions opts;
    opts.num_streams = 3;
    opts.batch_target_frames = 16;
    opts.batch_wait_us = 200;
    opts.stage_workers = 3;
    return opts;
  }

  /// Serial per-clip reference at 1 thread vs the streaming executor at a
  /// 4-lane pool; every observable must agree exactly.
  void CheckConfig(const PipelineConfig& config, const TrainedModels* trained,
                   StreamingOptions opts = MixingOptions()) {
    ThreadPool::SetDefaultThreads(1);
    if (trained != nullptr) trained->proxy_cache.Clear();
    Pipeline pipeline(config, trained);
    std::vector<PipelineResult> serial;
    for (const sim::Clip& clip : clips_) serial.push_back(pipeline.Run(clip));

    ThreadPool::SetDefaultThreads(4);
    if (trained != nullptr) trained->proxy_cache.Clear();
    StreamingExecutor executor(config, trained, opts);
    StatusOr<StreamingRunReport> streaming = executor.Run(clips_);
    ASSERT_TRUE(streaming.ok()) << streaming.status().ToString();
    ASSERT_EQ(streaming->results.size(), clips_.size());
    EXPECT_TRUE(streaming->failed_clips.empty());
    EXPECT_TRUE(streaming->degraded_clips.empty());
    for (size_t c = 0; c < clips_.size(); ++c) {
      ExpectSameResult(serial[c], streaming->results[c], c);
    }
  }

  std::vector<sim::Clip> clips_ = MakeClips();
};

TEST_F(StreamingExecutorEquivalenceTest, SortNoProxy) {
  PipelineConfig config;
  config.tracker = TrackerKind::kSort;
  config.frame_batch = 4;
  CheckConfig(config, nullptr);
}

TEST_F(StreamingExecutorEquivalenceTest, SortNoProxyDerivedDefaultOptions) {
  // All-zero options exercise the executor's own width/batch derivation.
  PipelineConfig config;
  config.tracker = TrackerKind::kSort;
  CheckConfig(config, nullptr, StreamingOptions{});
}

TEST_F(StreamingExecutorEquivalenceTest, SortWithProxy) {
  const auto trained = MakeTrained(clips_);
  PipelineConfig config;
  config.tracker = TrackerKind::kSort;
  config.use_proxy = true;
  config.proxy_threshold = 0.3;
  config.sampling_gap = 2;
  CheckConfig(config, trained.get());
}

TEST_F(StreamingExecutorEquivalenceTest, RecurrentNoProxy) {
  const auto trained = MakeTrained(clips_);
  PipelineConfig config;
  config.tracker = TrackerKind::kRecurrent;
  config.sampling_gap = 4;
  CheckConfig(config, trained.get());
}

TEST_F(StreamingExecutorEquivalenceTest, RecurrentWithProxy) {
  const auto trained = MakeTrained(clips_);
  PipelineConfig config;
  config.tracker = TrackerKind::kRecurrent;
  config.use_proxy = true;
  config.proxy_threshold = 0.3;
  config.sampling_gap = 2;
  CheckConfig(config, trained.get());
}

TEST_F(StreamingExecutorEquivalenceTest, ProxySkipsDetectorFrames) {
  // A high threshold makes the proxy reject most frames, so detect groups
  // arrive at the batcher with ragged (often zero) window counts.
  const auto trained = MakeTrained(clips_);
  PipelineConfig config;
  config.use_proxy = true;
  config.proxy_threshold = 0.9;
  config.sampling_gap = 2;
  CheckConfig(config, trained.get());
}

TEST_F(StreamingExecutorEquivalenceTest, RaggedSamplingGap) {
  // Gap 7 does not divide 120: the last group of every clip is partial.
  PipelineConfig config;
  config.sampling_gap = 7;
  config.frame_batch = 4;
  CheckConfig(config, nullptr);
}

TEST_F(StreamingExecutorEquivalenceTest, FrameBatchExceedsSampledFrames) {
  // ceil(120 / 32) = 4 sampled frames, far below the frame batch: each clip
  // is a single partial group.
  PipelineConfig config;
  config.sampling_gap = 32;
  config.frame_batch = 64;
  CheckConfig(config, nullptr);
}

TEST_F(StreamingExecutorEquivalenceTest, ScaledDetector) {
  PipelineConfig config;
  config.detector_scale = 0.59;
  config.sampling_gap = 2;
  CheckConfig(config, nullptr);
}

TEST_F(StreamingExecutorEquivalenceTest, RefineEnabled) {
  const auto trained = MakeTrained(clips_);
  AttachRefiner(trained.get(), clips_);
  PipelineConfig config;
  config.tracker = TrackerKind::kSort;
  config.use_proxy = true;
  config.proxy_threshold = 0.3;
  config.sampling_gap = 2;
  config.refine = true;
  CheckConfig(config, trained.get());
}

TEST_F(StreamingExecutorEquivalenceTest,
       DetectorFillHistogramAccountsEverySampledFrame) {
  // Every sampled frame of every clip passes through the detect batcher
  // exactly once, so the fill histogram's sum must grow by the total
  // sampled-frame count (releases may split it into any number of waves).
  const bool was_enabled = telemetry::Enabled();
  telemetry::SetEnabled(true);
  telemetry::Histogram* fill =
      telemetry::MetricsRegistry::Global().GetHistogram(
          "executor.batch.detect.fill",
          {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0});
  const double sum_before = fill->sum();

  PipelineConfig config;
  config.sampling_gap = 2;
  config.frame_batch = 4;
  ThreadPool::SetDefaultThreads(4);
  StreamingExecutor executor(config, nullptr, MixingOptions());
  StatusOr<StreamingRunReport> results = executor.Run(clips_);
  ASSERT_TRUE(results.ok()) << results.status().ToString();

  int sampled = 0;
  for (const sim::Clip& clip : clips_) {
    sampled += (clip.num_frames() + config.sampling_gap - 1) /
               config.sampling_gap;
  }
  EXPECT_EQ(fill->sum() - sum_before, static_cast<double>(sampled));
  telemetry::SetEnabled(was_enabled);
}

TEST_F(StreamingExecutorEquivalenceTest, ExecutorIsReusableAcrossRuns) {
  PipelineConfig config;
  config.sampling_gap = 4;
  ThreadPool::SetDefaultThreads(4);
  StreamingExecutor executor(config, nullptr, MixingOptions());
  StatusOr<StreamingRunReport> first = executor.Run(clips_);
  ASSERT_TRUE(first.ok());
  StatusOr<StreamingRunReport> second = executor.Run(clips_);
  ASSERT_TRUE(second.ok());
  ASSERT_EQ(first->results.size(), second->results.size());
  for (size_t c = 0; c < first->results.size(); ++c) {
    ExpectSameResult(first->results[c], second->results[c], c);
  }
}

/// Fault-injection recovery tests: with OTIF_FAULTS-style specs installed,
/// the executor must retry transient errors, quarantine clips whose faults
/// persist (while the rest of the run completes bit-identically), and fall
/// back to full-frame detection when the proxy keeps failing.
class StreamingExecutorFaultTest : public ::testing::Test {
 protected:
  void TearDown() override {
    fault::ClearFaults();
    ThreadPool::SetDefaultThreads(1);
  }

  static StreamingOptions MixingOptions() {
    StreamingOptions opts;
    opts.num_streams = 3;
    opts.batch_target_frames = 16;
    opts.batch_wait_us = 200;
    opts.stage_workers = 3;
    return opts;
  }

  std::vector<PipelineResult> RunSerial(const PipelineConfig& config,
                                        const TrainedModels* trained) {
    ThreadPool::SetDefaultThreads(1);
    if (trained != nullptr) trained->proxy_cache.Clear();
    Pipeline pipeline(config, trained);
    std::vector<PipelineResult> serial;
    for (const sim::Clip& clip : clips_) serial.push_back(pipeline.Run(clip));
    return serial;
  }

  StatusOr<StreamingRunReport> RunStreaming(const PipelineConfig& config,
                                            const TrainedModels* trained) {
    ThreadPool::SetDefaultThreads(4);
    if (trained != nullptr) trained->proxy_cache.Clear();
    StreamingExecutor executor(config, trained, MixingOptions());
    return executor.Run(clips_);
  }

  static int64_t CounterValue(const std::string& name) {
    return telemetry::MetricsRegistry::Global().GetCounter(name)->value();
  }

  std::vector<sim::Clip> clips_ = MakeClips();
};

TEST_F(StreamingExecutorFaultTest, QuarantineReportsFailedClipCompletesRest) {
  // Clip 1's detector invocations always fail: the executor must exhaust
  // the retry budget, quarantine clip 1, and still deliver clips 0 and 2
  // bit-identical to the serial reference.
  PipelineConfig config;
  config.tracker = TrackerKind::kSort;
  config.sampling_gap = 2;
  const std::vector<PipelineResult> serial = RunSerial(config, nullptr);

  ASSERT_TRUE(fault::ConfigureFaults("detect.invoke:error:1:7:clip=1").ok());
  const int64_t quarantined_before = CounterValue("executor.quarantined_clips");
  StatusOr<StreamingRunReport> report = RunStreaming(config, nullptr);
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  ASSERT_EQ(report->failed_clips.size(), 1u);
  EXPECT_EQ(report->failed_clips[0].clip_index, 1);
  EXPECT_EQ(report->failed_clips[0].status.code(), StatusCode::kIoError);
  EXPECT_GT(report->failed_clips[0].retries, 0);
  EXPECT_EQ(CounterValue("executor.quarantined_clips"),
            quarantined_before + 1);
  EXPECT_TRUE(report->degraded_clips.empty());

  // The quarantined slot stays positional but empty.
  ASSERT_EQ(report->results.size(), clips_.size());
  EXPECT_EQ(report->results[1].frames_processed, 0);
  EXPECT_TRUE(report->results[1].tracks.empty());
  ExpectSameResult(serial[0], report->results[0], 0);
  ExpectSameResult(serial[2], report->results[2], 2);
}

TEST_F(StreamingExecutorFaultTest, TransientErrorsRetryToBitIdenticalRun) {
  // A moderate error rate makes many invocations fail once or twice, but
  // the per-attempt token reroll means no group exhausts all attempts
  // (deterministic for a fixed seed). The run must succeed with results
  // bit-identical to the fault-free serial reference.
  PipelineConfig config;
  config.tracker = TrackerKind::kSort;
  config.sampling_gap = 2;
  const std::vector<PipelineResult> serial = RunSerial(config, nullptr);

  ASSERT_TRUE(fault::ConfigureFaults("detect.invoke:error:0.3:11").ok());
  const int64_t retries_before = CounterValue("executor.retries");
  StatusOr<StreamingRunReport> report = RunStreaming(config, nullptr);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->failed_clips.empty());
  EXPECT_GT(CounterValue("executor.retries"), retries_before);
  ASSERT_EQ(report->results.size(), clips_.size());
  for (size_t c = 0; c < clips_.size(); ++c) {
    ExpectSameResult(serial[c], report->results[c], c);
  }
}

TEST_F(StreamingExecutorFaultTest, StallAndDenyFaultsDoNotChangeResults) {
  // Latency spikes in the channels/batcher and allocation denials in the
  // buffer pool perturb scheduling and memory reuse but must never change
  // a single output bit.
  PipelineConfig config;
  config.tracker = TrackerKind::kSort;
  config.sampling_gap = 2;
  const std::vector<PipelineResult> serial = RunSerial(config, nullptr);

  ASSERT_TRUE(fault::ConfigureFaults(
                  "channel.proxy:stall:0.2:3:ms=1,"
                  "batcher.detect.submit:stall:0.2:5:ms=1,"
                  "mem.acquire:deny:0.5:9,"
                  "decode.frame:stall:0.05:13:ms=1")
                  .ok());
  StatusOr<StreamingRunReport> report = RunStreaming(config, nullptr);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->failed_clips.empty());
  ASSERT_EQ(report->results.size(), clips_.size());
  for (size_t c = 0; c < clips_.size(); ++c) {
    ExpectSameResult(serial[c], report->results[c], c);
  }
}

TEST_F(StreamingExecutorFaultTest, DegradedProxyFallsBackToFullFrame) {
  // The proxy fails permanently for every clip: instead of quarantining,
  // the executor degrades to full-frame detection — exactly what a serial
  // run without the proxy produces.
  const auto trained = MakeTrained(clips_);
  PipelineConfig noproxy;
  noproxy.tracker = TrackerKind::kSort;
  noproxy.sampling_gap = 2;
  const std::vector<PipelineResult> serial = RunSerial(noproxy, trained.get());

  PipelineConfig config = noproxy;
  config.use_proxy = true;
  config.proxy_threshold = 0.3;
  ASSERT_TRUE(fault::ConfigureFaults("proxy.invoke:error:1:7").ok());
  const int64_t degraded_before = CounterValue("executor.degraded_clips");
  StatusOr<StreamingRunReport> report = RunStreaming(config, trained.get());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->failed_clips.empty());
  ASSERT_EQ(report->degraded_clips.size(), clips_.size());
  EXPECT_EQ(CounterValue("executor.degraded_clips"),
            degraded_before + static_cast<int64_t>(clips_.size()));
  ASSERT_EQ(report->results.size(), clips_.size());
  for (size_t c = 0; c < clips_.size(); ++c) {
    ExpectSameResult(serial[c], report->results[c], c);
  }
}

TEST(StreamingExecutorTest, EmptyClipListReturnsEmpty) {
  PipelineConfig config;
  StreamingExecutor executor(config, nullptr);
  StatusOr<StreamingRunReport> results = executor.Run({});
  ASSERT_TRUE(results.ok());
  EXPECT_TRUE(results->results.empty());
  EXPECT_TRUE(results->failed_clips.empty());
}

TEST(StreamingExecutorTest, CancelBeforeRunReturnsCancelled) {
  PipelineConfig config;
  StreamingExecutor executor(config, nullptr);
  executor.Cancel();
  StatusOr<StreamingRunReport> results = executor.Run(MakeClips(1));
  ASSERT_FALSE(results.ok());
  EXPECT_EQ(results.status().code(), StatusCode::kCancelled);
}

TEST(StreamingExecutorTest, InvalidConfigsReturnStatusInsteadOfAborting) {
  const std::vector<sim::Clip> clips = MakeClips(1);
  {
    PipelineConfig config;
    config.detector_scale = 0.0;
    EXPECT_EQ(StreamingExecutor(config, nullptr).Run(clips).status().code(),
              StatusCode::kInvalidArgument);
  }
  {
    PipelineConfig config;
    config.frame_batch = 0;
    EXPECT_EQ(StreamingExecutor(config, nullptr).Run(clips).status().code(),
              StatusCode::kInvalidArgument);
  }
  {
    PipelineConfig config;
    config.sampling_gap = 0;
    EXPECT_EQ(StreamingExecutor(config, nullptr).Run(clips).status().code(),
              StatusCode::kInvalidArgument);
  }
  {
    PipelineConfig config;
    config.detector_arch = "not_a_real_arch";
    EXPECT_EQ(StreamingExecutor(config, nullptr).Run(clips).status().code(),
              StatusCode::kInvalidArgument);
  }
  {
    // Proxy requested but no trained models: precondition, not argument.
    PipelineConfig config;
    config.use_proxy = true;
    EXPECT_EQ(StreamingExecutor(config, nullptr).Run(clips).status().code(),
              StatusCode::kFailedPrecondition);
  }
}

}  // namespace
}  // namespace otif::core
