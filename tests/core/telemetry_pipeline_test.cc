// Telemetry integration tests for the staged pipeline: instrumentation is
// observation-only (telemetry on vs. off must not change a single bit of
// the outputs), and the stage spans / sim-second accumulators the benches
// read must agree with the run's own SimClock.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/best_config.h"
#include "core/pipeline.h"
#include "models/cost_model.h"
#include "models/proxy.h"
#include "query/queries.h"
#include "sim/dataset.h"
#include "track/metrics.h"
#include "util/telemetry.h"
#include "util/thread_pool.h"
#include "util/trace.h"
#include "util/trace_timeline.h"

namespace otif::core {
namespace {

std::vector<sim::Clip> MakeClips(int n = 3, int frames = 100) {
  std::vector<sim::Clip> clips;
  const sim::DatasetSpec spec = sim::MakeDataset(sim::DatasetId::kSynthetic);
  for (int c = 0; c < n; ++c) {
    clips.push_back(sim::SimulateClip(spec, sim::ClipSeed(spec, 5, c), frames));
  }
  return clips;
}

AccuracyFn CountAccuracyFn(const std::vector<sim::Clip>* clips) {
  return [clips](const std::vector<std::vector<track::Track>>& per_clip) {
    double sum = 0.0;
    for (size_t c = 0; c < clips->size(); ++c) {
      const int gt = query::GroundTruthVehicleCount((*clips)[c], 10);
      const int est = query::CountVehicleTracks(per_clip[c], 10);
      sum += track::CountAccuracy(est, gt);
    }
    return sum / static_cast<double>(clips->size());
  };
}

/// Untrained proxy + hand-picked windows: enough to drive the proxy stage
/// and the score cache deterministically without paying for training.
std::unique_ptr<TrainedModels> MakeUntrainedProxy() {
  auto trained = std::make_unique<TrainedModels>();
  trained->proxies.push_back(std::make_unique<models::ProxyModel>(
      models::StandardProxyResolutions()[0], /*seed=*/77));
  // The largest window must cover the full synthetic frame (320x240).
  trained->window_sizes = {WindowSize{64, 64}, WindowSize{128, 96},
                           WindowSize{320, 240}};
  return trained;
}

void ExpectIdentical(const EvalResult& a, const EvalResult& b) {
  for (const models::CostCategory cat :
       {models::CostCategory::kDecode, models::CostCategory::kProxy,
        models::CostCategory::kDetect, models::CostCategory::kTrack,
        models::CostCategory::kRefine}) {
    EXPECT_EQ(a.clock.Seconds(cat), b.clock.Seconds(cat))
        << "category " << static_cast<int>(cat);
  }
  EXPECT_EQ(a.seconds, b.seconds);
  EXPECT_EQ(a.accuracy, b.accuracy);
  ASSERT_EQ(a.tracks_per_clip.size(), b.tracks_per_clip.size());
  for (size_t c = 0; c < a.tracks_per_clip.size(); ++c) {
    const auto& ta = a.tracks_per_clip[c];
    const auto& tb = b.tracks_per_clip[c];
    ASSERT_EQ(ta.size(), tb.size()) << "clip " << c;
    for (size_t t = 0; t < ta.size(); ++t) {
      EXPECT_EQ(ta[t].id, tb[t].id);
      ASSERT_EQ(ta[t].detections.size(), tb[t].detections.size());
      for (size_t d = 0; d < ta[t].detections.size(); ++d) {
        const track::Detection& da = ta[t].detections[d];
        const track::Detection& db = tb[t].detections[d];
        EXPECT_EQ(da.frame, db.frame);
        EXPECT_EQ(da.box.cx, db.box.cx);
        EXPECT_EQ(da.box.cy, db.box.cy);
        EXPECT_EQ(da.box.w, db.box.w);
        EXPECT_EQ(da.box.h, db.box.h);
        EXPECT_EQ(da.confidence, db.confidence);
      }
    }
  }
}

class PipelineTelemetryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    previous_enabled_ = telemetry::Enabled();
    previous_timeline_ = telemetry::timeline::CollectionEnabled();
  }
  void TearDown() override {
    telemetry::SetEnabled(previous_enabled_);
    telemetry::timeline::SetCollectionEnabled(previous_timeline_);
    telemetry::timeline::ClearEvents();
    ThreadPool::SetDefaultThreads(1);
  }

  std::vector<sim::Clip> clips_ = MakeClips();
  bool previous_enabled_ = true;
  bool previous_timeline_ = false;
};

TEST_F(PipelineTelemetryTest, OutputsBitForBitIdenticalOnVsOff) {
  // Regression guard: instrumentation must never perturb results — same
  // tracks, same simulated clock, with or without telemetry, through both
  // the plain and the proxy-enabled paths.
  const auto trained = MakeUntrainedProxy();
  const auto fn = CountAccuracyFn(&clips_);
  for (const bool use_proxy : {false, true}) {
    PipelineConfig config;
    config.tracker = TrackerKind::kSort;
    config.use_proxy = use_proxy;
    config.proxy_threshold = 0.3;
    config.sampling_gap = 2;
    const TrainedModels* t = use_proxy ? trained.get() : nullptr;

    telemetry::SetEnabled(false);
    if (t != nullptr) trained->proxy_cache.Clear();
    const EvalResult off = EvaluateConfig(config, t, clips_, fn);
    telemetry::SetEnabled(true);
    if (t != nullptr) trained->proxy_cache.Clear();
    const EvalResult on = EvaluateConfig(config, t, clips_, fn);
    ExpectIdentical(off, on);
  }
}

TEST_F(PipelineTelemetryTest, OutputsBitForBitIdenticalTimelineOnVsOff) {
  // Same guard for the timeline tracer: ring-buffer event emission across
  // the worker pool must not change a single bit of the outputs.
  const auto trained = MakeUntrainedProxy();
  const auto fn = CountAccuracyFn(&clips_);
  PipelineConfig config;
  config.tracker = TrackerKind::kSort;
  config.use_proxy = true;
  config.proxy_threshold = 0.3;
  config.sampling_gap = 2;
  ThreadPool::SetDefaultThreads(3);

  telemetry::timeline::SetCollectionEnabled(false);
  trained->proxy_cache.Clear();
  const EvalResult off = EvaluateConfig(config, trained.get(), clips_, fn);
  telemetry::timeline::SetCollectionEnabled(true);
  trained->proxy_cache.Clear();
  const EvalResult on = EvaluateConfig(config, trained.get(), clips_, fn);
  telemetry::timeline::SetCollectionEnabled(false);
  EXPECT_FALSE(telemetry::timeline::SnapshotEvents().empty());
  ExpectIdentical(off, on);
}

TEST_F(PipelineTelemetryTest, StageSimSecondsMatchTheRunClock) {
  telemetry::SetEnabled(true);
  telemetry::ResetAll();
  PipelineConfig config;
  config.tracker = TrackerKind::kSort;
  const Pipeline pipeline(config, nullptr);
  models::SimClock merged;
  for (const sim::Clip& clip : clips_) {
    merged.Merge(pipeline.Run(clip).clock);
  }

  const telemetry::TelemetrySnapshot snapshot = telemetry::CaptureSnapshot();
  for (const models::CostCategory cat :
       {models::CostCategory::kDecode, models::CostCategory::kDetect,
        models::CostCategory::kTrack}) {
    const telemetry::GaugeSample* gauge = telemetry::FindGauge(
        snapshot, std::string("stage/") + models::CostCategoryName(cat) +
                      ".sim_seconds");
    ASSERT_NE(gauge, nullptr) << models::CostCategoryName(cat);
    EXPECT_NEAR(gauge->value, merged.Seconds(cat),
                1e-9 * (1.0 + merged.Seconds(cat)))
        << models::CostCategoryName(cat);
  }
  const telemetry::CounterSample* runs =
      telemetry::FindCounter(snapshot, "pipeline.runs");
  ASSERT_NE(runs, nullptr);
  EXPECT_EQ(runs->value, static_cast<int64_t>(clips_.size()));
}

TEST_F(PipelineTelemetryTest, StageSpansCoverEveryStageAndFrame) {
  telemetry::SetEnabled(true);
  telemetry::ResetAll();
  PipelineConfig config;
  config.tracker = TrackerKind::kSort;
  config.sampling_gap = 4;
  const Pipeline pipeline(config, nullptr);
  const PipelineResult result = pipeline.Run(clips_[0]);

  const telemetry::TelemetrySnapshot snapshot = telemetry::CaptureSnapshot();
  for (const char* name :
       {"stage/decode", "stage/proxy", "stage/detect", "stage/track",
        "stage/refine"}) {
    const telemetry::SpanSample* span = telemetry::FindSpan(snapshot, name);
    ASSERT_NE(span, nullptr) << name;
    // BeginClip + one call per frame batch + EndClip.
    const int64_t batches =
        (result.frames_processed + config.frame_batch - 1) /
        config.frame_batch;
    EXPECT_EQ(span->count, batches + 2) << name;
    EXPECT_GE(span->total_seconds, 0.0) << name;
    EXPECT_LE(span->min_seconds, span->max_seconds) << name;
  }
}

TEST_F(PipelineTelemetryTest, DisabledRunsRecordNoPipelineTelemetry) {
  telemetry::SetEnabled(true);
  telemetry::ResetAll();
  telemetry::SetEnabled(false);
  PipelineConfig config;
  const Pipeline pipeline(config, nullptr);
  pipeline.Run(clips_[0]);
  const telemetry::TelemetrySnapshot snapshot = telemetry::CaptureSnapshot();
  const telemetry::CounterSample* runs =
      telemetry::FindCounter(snapshot, "pipeline.runs");
  if (runs != nullptr) EXPECT_EQ(runs->value, 0);
  const telemetry::SpanSample* span =
      telemetry::FindSpan(snapshot, "stage/detect");
  if (span != nullptr) EXPECT_EQ(span->count, 0);
}

TEST_F(PipelineTelemetryTest, ParallelRunsAggregateExactCounts) {
  // The registry is shared across the pool: counts must be exact and the
  // run must stay deterministic with telemetry on (TSan covers the races).
  telemetry::SetEnabled(true);
  telemetry::ResetAll();
  const auto trained = MakeUntrainedProxy();
  PipelineConfig config;
  config.use_proxy = true;
  config.proxy_threshold = 0.3;
  config.sampling_gap = 2;
  const auto fn = CountAccuracyFn(&clips_);
  ThreadPool::SetDefaultThreads(4);
  trained->proxy_cache.Clear();
  EvaluateConfig(config, trained.get(), clips_, fn);

  const telemetry::TelemetrySnapshot snapshot = telemetry::CaptureSnapshot();
  const telemetry::CounterSample* runs =
      telemetry::FindCounter(snapshot, "pipeline.runs");
  ASSERT_NE(runs, nullptr);
  EXPECT_EQ(runs->value, static_cast<int64_t>(clips_.size()));
  const telemetry::CounterSample* hits =
      telemetry::FindCounter(snapshot, "proxy_cache.hits");
  const telemetry::CounterSample* misses =
      telemetry::FindCounter(snapshot, "proxy_cache.misses");
  ASSERT_NE(misses, nullptr);
  // Telemetry mirrors the cache's own counters for this interval.
  const int64_t mirrored_hits = hits != nullptr ? hits->value : 0;
  EXPECT_EQ(mirrored_hits, trained->proxy_cache.hits());
  EXPECT_EQ(misses->value, trained->proxy_cache.misses());
}

}  // namespace
}  // namespace otif::core
