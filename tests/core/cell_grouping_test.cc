#include "core/cell_grouping.h"

#include <gtest/gtest.h>

namespace otif::core {
namespace {

models::DetectorArch TestArch() {
  models::DetectorArch arch;
  arch.name = "test";
  arch.sec_per_pixel = 1e-8;
  arch.sec_per_invocation = 1e-4;
  return arch;
}

CellGrid MakeGrid(int w, int h, std::vector<std::pair<int, int>> positives) {
  CellGrid grid;
  grid.grid_w = w;
  grid.grid_h = h;
  grid.positive.assign(static_cast<size_t>(w) * h, 0);
  for (auto [x, y] : positives) grid.set(x, y, true);
  return grid;
}

// Frame 640x360, 8x8 cells of 80x45 px; sizes: small 160x90, full frame.
std::vector<WindowSize> TestSizes() {
  return {{160, 90}, {320, 180}, {640, 360}};
}

TEST(CellGridTest, FromScoresThresholds) {
  nn::Tensor scores({2, 3});
  scores[0] = 0.9f;
  scores[1] = 0.4f;
  scores[5] = 0.6f;
  CellGrid grid = CellGrid::FromScores(scores, 0.5);
  EXPECT_EQ(grid.grid_w, 3);
  EXPECT_EQ(grid.grid_h, 2);
  EXPECT_TRUE(grid.at(0, 0));
  EXPECT_FALSE(grid.at(1, 0));
  EXPECT_TRUE(grid.at(2, 1));
  EXPECT_EQ(grid.CountPositive(), 2);
}

TEST(GroupCellsTest, EmptyGridNoWindows) {
  CellGrid grid = MakeGrid(8, 8, {});
  GroupingResult r = GroupCells(grid, TestSizes(), TestArch(), 640, 360);
  EXPECT_TRUE(r.windows.empty());
  EXPECT_DOUBLE_EQ(r.est_seconds, 0.0);
}

TEST(GroupCellsTest, SingleCellUsesSmallestWindow) {
  CellGrid grid = MakeGrid(8, 8, {{1, 1}});
  GroupingResult r = GroupCells(grid, TestSizes(), TestArch(), 640, 360);
  ASSERT_EQ(r.windows.size(), 1u);
  EXPECT_EQ(r.windows[0].size.w, 160);
  EXPECT_EQ(r.windows[0].size.h, 90);
  EXPECT_FALSE(r.full_frame);
  EXPECT_LT(r.est_seconds,
            models::DetectorWindowSeconds(TestArch(), 640, 360));
}

TEST(GroupCellsTest, TwoDistantClustersStaySeparate) {
  CellGrid grid = MakeGrid(8, 8, {{0, 0}, {7, 7}});
  GroupingResult r = GroupCells(grid, TestSizes(), TestArch(), 640, 360);
  EXPECT_EQ(r.windows.size(), 2u);
  // Two small windows are cheaper than one full frame here.
  EXPECT_FALSE(r.full_frame);
}

TEST(GroupCellsTest, AdjacentCellsMergeIntoOneComponent) {
  CellGrid grid = MakeGrid(8, 8, {{2, 2}, {3, 2}, {2, 3}});
  GroupingResult r = GroupCells(grid, TestSizes(), TestArch(), 640, 360);
  ASSERT_EQ(r.windows.size(), 1u);
}

TEST(GroupCellsTest, NearbyClustersMergeWhenCheaper) {
  // Two clusters 2 cells apart: one 320x180 window (cost ~0.00068) beats
  // two 160x90 windows (2 * 0.000244 = 0.000488)? No: two smalls are
  // cheaper, so they stay separate. Put them diagonal-adjacent so a single
  // small window covers both -> must merge.
  CellGrid grid = MakeGrid(8, 8, {{2, 2}, {3, 3}});
  GroupingResult r = GroupCells(grid, TestSizes(), TestArch(), 640, 360);
  EXPECT_EQ(r.windows.size(), 1u);
  EXPECT_EQ(r.windows[0].size.w, 160);
}

TEST(GroupCellsTest, DenseGridFallsBackToFullFrame) {
  std::vector<std::pair<int, int>> all;
  for (int y = 0; y < 8; ++y) {
    for (int x = 0; x < 8; ++x) all.push_back({x, y});
  }
  CellGrid grid = MakeGrid(8, 8, all);
  GroupingResult r = GroupCells(grid, TestSizes(), TestArch(), 640, 360);
  ASSERT_EQ(r.windows.size(), 1u);
  EXPECT_TRUE(r.full_frame);
  EXPECT_DOUBLE_EQ(
      r.est_seconds,
      models::DetectorWindowSeconds(TestArch(), 640, 360));
}

TEST(GroupCellsTest, WindowsCoverAllPositiveCells) {
  CellGrid grid = MakeGrid(8, 8, {{0, 0}, {1, 0}, {5, 2}, {6, 6}, {7, 6}});
  GroupingResult r = GroupCells(grid, TestSizes(), TestArch(), 640, 360);
  const auto rects = WindowsToNativeRects(r, 640, 360, 8, 8, 1.0);
  for (int gy = 0; gy < 8; ++gy) {
    for (int gx = 0; gx < 8; ++gx) {
      if (!grid.at(gx, gy)) continue;
      const geom::Point center{(gx + 0.5) * 80.0, (gy + 0.5) * 45.0};
      bool covered = false;
      for (const geom::BBox& rect : rects) {
        if (rect.Contains(center)) covered = true;
      }
      EXPECT_TRUE(covered) << "cell (" << gx << "," << gy << ") uncovered";
    }
  }
}

TEST(GroupCellsTest, ScaledCoordinatesMapBack) {
  CellGrid grid = MakeGrid(8, 8, {{0, 0}});
  // Scaled frame at half resolution.
  std::vector<WindowSize> sizes = {{80, 45}, {320, 180}};
  GroupingResult r = GroupCells(grid, sizes, TestArch(), 320, 180);
  const auto rects = WindowsToNativeRects(r, 320, 180, 8, 8, 0.5);
  ASSERT_EQ(rects.size(), 1u);
  // Native rect should be 160x90 at the top-left.
  EXPECT_NEAR(rects[0].w, 160.0, 1.0);
  EXPECT_NEAR(rects[0].Left(), 0.0, 1.0);
}

TEST(GroupCellsDeathTest, MissingFullFrameSizeAborts) {
  CellGrid grid = MakeGrid(8, 8, {{0, 0}});
  std::vector<WindowSize> sizes = {{160, 90}};
  EXPECT_DEATH(GroupCells(grid, sizes, TestArch(), 640, 360),
               "full frame");
}

TEST(GroupCellsTest, EstNeverExceedsFullFrame) {
  // Property: est(R) <= full-frame cost for any cell pattern.
  const double full = models::DetectorWindowSeconds(TestArch(), 640, 360);
  for (int pattern = 1; pattern < 64; pattern += 7) {
    std::vector<std::pair<int, int>> cells;
    for (int b = 0; b < 6; ++b) {
      if (pattern & (1 << b)) cells.push_back({b, (b * 3) % 8});
    }
    CellGrid grid = MakeGrid(8, 8, cells);
    GroupingResult r = GroupCells(grid, TestSizes(), TestArch(), 640, 360);
    EXPECT_LE(r.est_seconds, full + 1e-12) << "pattern " << pattern;
  }
}

}  // namespace
}  // namespace otif::core
