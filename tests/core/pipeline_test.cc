#include "core/pipeline.h"

#include <gtest/gtest.h>

#include "core/best_config.h"
#include "query/queries.h"
#include "sim/dataset.h"
#include "track/metrics.h"

namespace otif::core {
namespace {

std::vector<sim::Clip> TestClips(int n = 2, int frames = 150) {
  std::vector<sim::Clip> clips;
  const sim::DatasetSpec spec = sim::MakeDataset(sim::DatasetId::kSynthetic);
  for (int c = 0; c < n; ++c) {
    clips.push_back(sim::SimulateClip(spec, sim::ClipSeed(spec, 1, c), frames));
  }
  return clips;
}

AccuracyFn CountAccuracyFn(const std::vector<sim::Clip>* clips) {
  return [clips](const std::vector<std::vector<track::Track>>& per_clip) {
    double sum = 0.0;
    for (size_t c = 0; c < clips->size(); ++c) {
      const int gt = query::GroundTruthVehicleCount((*clips)[c], 10);
      const int est = query::CountVehicleTracks(per_clip[c], 10);
      sum += track::CountAccuracy(est, gt);
    }
    return sum / static_cast<double>(clips->size());
  };
}

TEST(PipelineTest, PlainConfigExtractsTracks) {
  const auto clips = TestClips(1);
  PipelineConfig config;  // Defaults: yolov3 full scale, gap 1, SORT.
  Pipeline pipeline(config, nullptr);
  PipelineResult r = pipeline.Run(clips[0]);
  EXPECT_GT(r.tracks.size(), 0u);
  EXPECT_EQ(r.frames_processed, clips[0].num_frames());
  EXPECT_GT(r.clock.Seconds(models::CostCategory::kDetect), 0.0);
  EXPECT_GT(r.clock.Seconds(models::CostCategory::kDecode), 0.0);
  EXPECT_DOUBLE_EQ(r.clock.Seconds(models::CostCategory::kProxy), 0.0);
  EXPECT_DOUBLE_EQ(r.mean_window_coverage, 1.0);
}

TEST(PipelineTest, GapReducesFramesAndCost) {
  const auto clips = TestClips(1);
  PipelineConfig slow;
  PipelineConfig fast = slow;
  fast.sampling_gap = 8;
  PipelineResult slow_r = Pipeline(slow, nullptr).Run(clips[0]);
  PipelineResult fast_r = Pipeline(fast, nullptr).Run(clips[0]);
  EXPECT_LT(fast_r.frames_processed, slow_r.frames_processed);
  // Detector work drops ~8x; decode does not (gap 8 is below the GOP size,
  // so reference chains still force decoding every frame).
  EXPECT_LT(fast_r.clock.Seconds(models::CostCategory::kDetect),
            slow_r.clock.Seconds(models::CostCategory::kDetect) / 4);
  EXPECT_LT(fast_r.clock.TotalSeconds(), slow_r.clock.TotalSeconds());
}

TEST(PipelineTest, LowerScaleCutsDetectorCost) {
  const auto clips = TestClips(1);
  PipelineConfig full;
  PipelineConfig small = full;
  small.detector_scale = 0.5;
  const double full_detect =
      Pipeline(full, nullptr).Run(clips[0]).clock.Seconds(
          models::CostCategory::kDetect);
  const double small_detect =
      Pipeline(small, nullptr).Run(clips[0]).clock.Seconds(
          models::CostCategory::kDetect);
  // Pixel cost drops 4x; the per-invocation overhead is resolution-
  // independent, so the ratio sits between 0.25 and 1 for small frames.
  EXPECT_LT(small_detect, full_detect * 0.6);
  EXPECT_GT(small_detect, full_detect * 0.25);
}

TEST(PipelineTest, DecodeCostSaturatesBeyondGop) {
  const auto clips = TestClips(1, 320);
  PipelineConfig config;
  auto decode_at_gap = [&](int gap) {
    config.sampling_gap = gap;
    return Pipeline(config, nullptr).DecodeSecondsForClip(clips[0]);
  };
  // Below the GOP size, decode cost is flat (reference chains force
  // decoding every frame); above it, seeking pays off.
  EXPECT_NEAR(decode_at_gap(1), decode_at_gap(8), decode_at_gap(1) * 0.05);
  EXPECT_LT(decode_at_gap(32), decode_at_gap(1) * 0.8);
}

TEST(PipelineDeathTest, ProxyWithoutTrainedModelsAborts) {
  PipelineConfig config;
  config.use_proxy = true;
  EXPECT_DEATH(Pipeline(config, nullptr), "Check failed");
}

TEST(EvaluateConfigTest, AggregatesAcrossClips) {
  const auto clips = TestClips(2);
  const AccuracyFn fn = CountAccuracyFn(&clips);
  PipelineConfig config;
  EvalResult r = EvaluateConfig(config, nullptr, clips, fn);
  EXPECT_EQ(r.tracks_per_clip.size(), 2u);
  EXPECT_GT(r.seconds, 0.0);
  EXPECT_GT(r.accuracy, 0.3) << "full-rate SORT should count well";
}

TEST(SelectBestConfigTest, FindsAccurateSlowConfig) {
  const auto clips = TestClips(2);
  const AccuracyFn fn = CountAccuracyFn(&clips);
  double best_acc = 0.0;
  PipelineConfig best = SelectBestConfig(clips, fn, &best_acc);
  EXPECT_GT(best_acc, 0.5);
  EXPECT_FALSE(best.use_proxy);
  EXPECT_EQ(best.tracker, TrackerKind::kSort);
  // theta_best should not pick an absurdly low resolution.
  EXPECT_GT(best.detector_scale, 0.2);
}

TEST(StandardScalesTest, GeometricLadder) {
  const auto scales = StandardDetectorScales();
  ASSERT_GE(scales.size(), 5u);
  EXPECT_DOUBLE_EQ(scales[0], 1.0);
  for (size_t i = 1; i < scales.size(); ++i) {
    // Pixel count ratio ~0.7 per step.
    const double ratio =
        (scales[i] * scales[i]) / (scales[i - 1] * scales[i - 1]);
    EXPECT_NEAR(ratio, 0.7, 0.01);
  }
}

}  // namespace
}  // namespace otif::core
