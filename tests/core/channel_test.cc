// Tests for the bounded MPMC channel connecting streaming-executor stages:
// FIFO order, blocking backpressure, close-with-drain semantics, and
// multi-producer/multi-consumer accounting.

#include "core/executor/channel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "util/fault_injection.h"

namespace otif::core::executor {
namespace {

// Channels are constructed with an empty name throughout: these tests
// must not register metrics in the process-global telemetry registry.

TEST(ChannelTest, PushPopPreservesFifoOrder) {
  Channel<int> ch(8);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(ch.Push(i));
  EXPECT_EQ(ch.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    int got = -1;
    EXPECT_TRUE(ch.Pop(&got));
    EXPECT_EQ(got, i);
  }
  EXPECT_EQ(ch.size(), 0u);
}

TEST(ChannelTest, CapacityClampsToOne) {
  Channel<int> ch(0);
  EXPECT_EQ(ch.capacity(), 1u);
}

TEST(ChannelTest, PushBlocksWhenFullUntilPop) {
  Channel<int> ch(1);
  EXPECT_TRUE(ch.Push(1));
  std::atomic<bool> second_pushed{false};
  std::thread producer([&] {
    EXPECT_TRUE(ch.Push(2));
    second_pushed.store(true);
  });
  // The producer is stuck on the full channel. This is inherently a
  // can't-prove-a-negative check; the sleep keeps it cheap while still
  // catching a Push that doesn't block at all.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(second_pushed.load());
  int got = -1;
  EXPECT_TRUE(ch.Pop(&got));
  EXPECT_EQ(got, 1);
  producer.join();
  EXPECT_TRUE(second_pushed.load());
  EXPECT_TRUE(ch.Pop(&got));
  EXPECT_EQ(got, 2);
}

TEST(ChannelTest, CloseDrainsBufferedItemsThenReturnsFalse) {
  Channel<int> ch(8);
  for (int i = 0; i < 3; ++i) EXPECT_TRUE(ch.Push(i));
  ch.Close();
  EXPECT_TRUE(ch.closed());
  int got = -1;
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(ch.Pop(&got));
    EXPECT_EQ(got, i);
  }
  EXPECT_FALSE(ch.Pop(&got));  // Drained.
  EXPECT_FALSE(ch.Pop(&got));  // And stays drained.
}

TEST(ChannelTest, PushAfterCloseReturnsFalse) {
  Channel<int> ch(4);
  ch.Close();
  EXPECT_FALSE(ch.Push(7));
  int got = -1;
  EXPECT_FALSE(ch.Pop(&got));
}

TEST(ChannelTest, CloseUnblocksFullProducerWithFalse) {
  Channel<int> ch(1);
  EXPECT_TRUE(ch.Push(1));
  std::atomic<bool> push_result{true};
  std::thread producer([&] { push_result.store(ch.Push(2)); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  ch.Close();
  producer.join();
  EXPECT_FALSE(push_result.load());
  // The buffered item survives the close.
  int got = -1;
  EXPECT_TRUE(ch.Pop(&got));
  EXPECT_EQ(got, 1);
  EXPECT_FALSE(ch.Pop(&got));
}

TEST(ChannelTest, CloseUnblocksEmptyConsumerWithFalse) {
  Channel<int> ch(4);
  std::atomic<bool> pop_result{true};
  std::thread consumer([&] {
    int got = -1;
    pop_result.store(ch.Pop(&got));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  ch.Close();
  consumer.join();
  EXPECT_FALSE(pop_result.load());
}

TEST(ChannelTest, MultiProducerMultiConsumerAccountsForEveryItem) {
  // 4 producers push 250 distinct items each through a tiny channel (so
  // both blocking paths are exercised); 3 consumers drain. Every item must
  // arrive exactly once.
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 250;
  Channel<int> ch(3);
  std::mutex seen_mu;
  std::set<int> seen;
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        EXPECT_TRUE(ch.Push(p * kPerProducer + i));
      }
    });
  }
  std::vector<std::thread> consumers;
  for (int c = 0; c < 3; ++c) {
    consumers.emplace_back([&] {
      int got = -1;
      while (ch.Pop(&got)) {
        std::lock_guard<std::mutex> lock(seen_mu);
        EXPECT_TRUE(seen.insert(got).second) << "duplicate item " << got;
      }
    });
  }
  for (auto& t : threads) t.join();
  ch.Close();
  for (auto& t : consumers) t.join();
  EXPECT_EQ(seen.size(),
            static_cast<size_t>(kProducers) * kPerProducer);
}

TEST(ChannelTest, MoveOnlyItemsFlowThrough) {
  Channel<std::unique_ptr<int>> ch(2);
  EXPECT_TRUE(ch.Push(std::make_unique<int>(42)));
  std::unique_ptr<int> got;
  EXPECT_TRUE(ch.Pop(&got));
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(*got, 42);
}

/// Fault-hook tests: a named channel resolves a "channel.<name>" site at
/// construction; stalls delay the producer without dropping anything, and
/// an injected close behaves exactly like a downstream Close.
class ChannelFaultTest : public ::testing::Test {
 protected:
  void TearDown() override { fault::ClearFaults(); }
};

TEST_F(ChannelFaultTest, InjectedStallDelaysButDeliversEverything) {
  ASSERT_TRUE(
      fault::ConfigureFaults("channel.stalltest:stall:1:1:ms=1").ok());
  Channel<int> ch(4, "stalltest");
  for (int i = 0; i < 8; ++i) {
    EXPECT_TRUE(ch.Push(i));
    int got = -1;
    EXPECT_TRUE(ch.Pop(&got));
    EXPECT_EQ(got, i);
  }
}

TEST_F(ChannelFaultTest, InjectedCloseFailsThePushAndClosesTheChannel) {
  ASSERT_TRUE(fault::ConfigureFaults("channel.closetest:close:1:1").ok());
  Channel<int> ch(4, "closetest");
  EXPECT_FALSE(ch.Push(1));
  EXPECT_TRUE(ch.closed());
  int got = -1;
  EXPECT_FALSE(ch.Pop(&got));
}

TEST_F(ChannelFaultTest, ConcurrentStalledProducersSurviveClose) {
  // Producers randomly stalled by the fault hook race a mid-stream Close:
  // every producer must exit promptly via Push == false, the consumer must
  // see no duplicates, and nothing may deadlock. (Runs under TSan in CI.)
  ASSERT_TRUE(
      fault::ConfigureFaults("channel.racetest:stall:0.5:7:ms=1").ok());
  Channel<int> ch(2, "racetest");
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 50;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        if (!ch.Push(p * kPerProducer + i)) return;
      }
    });
  }
  std::set<int> seen;
  for (int i = 0; i < kProducers * kPerProducer / 4; ++i) {
    int got = -1;
    if (!ch.Pop(&got)) break;
    EXPECT_TRUE(seen.insert(got).second) << "duplicate item " << got;
  }
  ch.Close();
  for (auto& t : producers) t.join();
  // Whatever was buffered at close time is still drainable, duplicate-free.
  int got = -1;
  while (ch.Pop(&got)) {
    EXPECT_TRUE(seen.insert(got).second) << "duplicate item " << got;
  }
}

}  // namespace
}  // namespace otif::core::executor
