// Equivalence tests for the frame-batched pipeline driver: varying
// PipelineConfig::frame_batch changes how many frames each stage sees per
// call (and how the detector's per-invocation overhead amortizes), but must
// not change any pipeline output — tracks, detections, or coverage.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/pipeline.h"
#include "core/stages.h"
#include "models/detector.h"
#include "sim/dataset.h"
#include "sim/raster.h"

namespace otif::core {
namespace {

sim::Clip MakeClip(int frames = 120) {
  const sim::DatasetSpec spec = sim::MakeDataset(sim::DatasetId::kSynthetic);
  return sim::SimulateClip(spec, sim::ClipSeed(spec, 1, 0), frames);
}

std::unique_ptr<TrainedModels> MakeTrained(const sim::Clip& clip) {
  auto trained = std::make_unique<TrainedModels>();
  const auto resolutions = models::StandardProxyResolutions();
  auto proxy = std::make_unique<models::ProxyModel>(resolutions[0], 1234);
  models::SimulatedDetector detector(models::ArchByName(
      models::StandardDetectorArchs(), "yolov3"));
  sim::Rasterizer raster(&clip);
  int next_frame = 0;
  auto sampler = [&]() {
    const int f = next_frame;
    next_frame = (next_frame + 7) % clip.num_frames();
    models::ProxySample s;
    s.frame = raster.Render(f, proxy->resolution().raster_w(),
                            proxy->resolution().raster_h());
    s.labels = proxy->MakeLabels(
        models::FilterByConfidence(detector.Detect(clip, f, 1.0), 0.4),
        clip.spec().width, clip.spec().height);
    return s;
  };
  models::TrainProxyModel(proxy.get(), sampler, 24);
  trained->proxies.push_back(std::move(proxy));
  trained->tracker_net = std::make_unique<models::TrackerNet>(99);
  trained->window_sizes = {WindowSize{64, 64}, WindowSize{128, 96},
                           WindowSize{224, 160}};
  return trained;
}

void ExpectSameOutputs(const PipelineResult& a, const PipelineResult& b) {
  EXPECT_EQ(a.frames_processed, b.frames_processed);
  EXPECT_EQ(a.detections_kept, b.detections_kept);
  // Coverage is the same per-frame sum; batch size only changes float
  // accumulation grouping, so allow ulp-level slack.
  EXPECT_NEAR(a.mean_window_coverage, b.mean_window_coverage, 1e-12);
  ASSERT_EQ(a.tracks.size(), b.tracks.size());
  for (size_t t = 0; t < a.tracks.size(); ++t) {
    EXPECT_EQ(a.tracks[t].id, b.tracks[t].id);
    EXPECT_EQ(a.tracks[t].cls, b.tracks[t].cls);
    ASSERT_EQ(a.tracks[t].detections.size(), b.tracks[t].detections.size());
    for (size_t d = 0; d < a.tracks[t].detections.size(); ++d) {
      const track::Detection& da = a.tracks[t].detections[d];
      const track::Detection& db = b.tracks[t].detections[d];
      EXPECT_EQ(da.frame, db.frame);
      EXPECT_EQ(da.box.cx, db.box.cx);
      EXPECT_EQ(da.box.cy, db.box.cy);
      EXPECT_EQ(da.box.w, db.box.w);
      EXPECT_EQ(da.box.h, db.box.h);
      EXPECT_EQ(da.confidence, db.confidence);
    }
  }
}

void CheckBatchInvariance(PipelineConfig config,
                          const TrainedModels* trained,
                          const sim::Clip& clip) {
  config.frame_batch = 1;
  if (trained != nullptr) trained->proxy_cache.Clear();
  const PipelineResult per_frame = Pipeline(config, trained).Run(clip);
  for (int batch : {4, 32}) {
    config.frame_batch = batch;
    if (trained != nullptr) trained->proxy_cache.Clear();
    const PipelineResult batched = Pipeline(config, trained).Run(clip);
    ExpectSameOutputs(per_frame, batched);
    // Batching can only merge detector invocations, never add them: the
    // detect charge is monotonically non-increasing in the batch size.
    EXPECT_LE(batched.clock.Seconds(models::CostCategory::kDetect),
              per_frame.clock.Seconds(models::CostCategory::kDetect) + 1e-12)
        << "batch " << batch;
  }
}

TEST(PipelineBatchTest, SortNoProxyOutputsInvariantToBatchSize) {
  const sim::Clip clip = MakeClip();
  PipelineConfig config;
  config.tracker = TrackerKind::kSort;
  CheckBatchInvariance(config, nullptr, clip);
}

TEST(PipelineBatchTest, SortWithProxyOutputsInvariantToBatchSize) {
  const sim::Clip clip = MakeClip();
  const auto trained = MakeTrained(clip);
  PipelineConfig config;
  config.tracker = TrackerKind::kSort;
  config.use_proxy = true;
  config.proxy_threshold = 0.3;
  config.sampling_gap = 2;
  CheckBatchInvariance(config, trained.get(), clip);
}

TEST(PipelineBatchTest, RecurrentWithProxyOutputsInvariantToBatchSize) {
  const sim::Clip clip = MakeClip();
  const auto trained = MakeTrained(clip);
  PipelineConfig config;
  config.tracker = TrackerKind::kRecurrent;
  config.use_proxy = true;
  config.proxy_threshold = 0.3;
  config.sampling_gap = 2;
  CheckBatchInvariance(config, trained.get(), clip);
}

TEST(PipelineBatchTest, FrameBatchLargerThanSampledFrames) {
  // Gap 32 over 120 frames samples only 4 frames; a frame batch of 64 means
  // the whole clip is one partial group. Outputs must still match the
  // per-frame run, and the single invocation must amortize the detector's
  // per-invocation overhead across all 4 frames.
  const sim::Clip clip = MakeClip();
  PipelineConfig config;
  config.sampling_gap = 32;

  config.frame_batch = 1;
  const PipelineResult per_frame = Pipeline(config, nullptr).Run(clip);
  config.frame_batch = 64;
  const PipelineResult batched = Pipeline(config, nullptr).Run(clip);
  ExpectSameOutputs(per_frame, batched);
  EXPECT_EQ(per_frame.frames_processed, 4);
  const models::DetectorArch arch = models::ArchByName(
      models::StandardDetectorArchs(), "yolov3");
  // 4 solo invocations collapse into 1: 3 overheads saved.
  EXPECT_NEAR(per_frame.clock.Seconds(models::CostCategory::kDetect) -
                  batched.clock.Seconds(models::CostCategory::kDetect),
              3 * arch.sec_per_invocation, 1e-9);
}

TEST(PipelineBatchTest, SamplingGapRaggedTailOutputsInvariantToBatchSize) {
  // Gap 7 does not divide 120 (18 sampled frames), so the final group of
  // each batched run is partial no matter the batch size.
  const sim::Clip clip = MakeClip();
  PipelineConfig config;
  config.sampling_gap = 7;
  CheckBatchInvariance(config, nullptr, clip);
}

TEST(PipelineBatchTest, ProxySkipDetectorFramesInBatchInvariant) {
  // A high proxy threshold rejects most frames, so batched detect calls see
  // ragged groups where many frames carry zero windows (skip_detector) —
  // the windowed charge formula must still match the per-frame run.
  const sim::Clip clip = MakeClip();
  const auto trained = MakeTrained(clip);
  PipelineConfig config;
  config.use_proxy = true;
  config.proxy_threshold = 0.9;
  config.sampling_gap = 2;
  CheckBatchInvariance(config, trained.get(), clip);
}

TEST(PipelineBatchTest, BatchingAmortizesFullFrameInvocationOverhead) {
  const sim::Clip clip = MakeClip(64);
  PipelineConfig config;  // Full-frame detection on every frame.
  config.frame_batch = 1;
  const double solo =
      Pipeline(config, nullptr).Run(clip).clock.Seconds(
          models::CostCategory::kDetect);
  config.frame_batch = 8;
  const double batched =
      Pipeline(config, nullptr).Run(clip).clock.Seconds(
          models::CostCategory::kDetect);
  const models::DetectorArch arch = models::ArchByName(
      models::StandardDetectorArchs(), "yolov3");
  // 64 frames in batches of 8: 56 invocation overheads saved.
  EXPECT_NEAR(solo - batched, 56 * arch.sec_per_invocation, 1e-9);
}

TEST(PipelineBatchTest, FrameBatchValidatedAndInToString) {
  PipelineConfig config;
  EXPECT_NE(config.ToString().find("batch="), std::string::npos);
  config.frame_batch = 0;
  EXPECT_DEATH(Pipeline(config, nullptr), "frame_batch");
}

}  // namespace
}  // namespace otif::core
