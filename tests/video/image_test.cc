#include "video/image.h"

#include <gtest/gtest.h>

#include <utility>
#include <vector>

namespace otif::video {
namespace {

TEST(ImageTest, ConstructionAndAccess) {
  Image img(4, 3, 0.5f);
  EXPECT_EQ(img.width(), 4);
  EXPECT_EQ(img.height(), 3);
  EXPECT_EQ(img.size(), 12u);
  EXPECT_FLOAT_EQ(img.at(2, 1), 0.5f);
  img.set(2, 1, 0.9f);
  EXPECT_FLOAT_EQ(img.at(2, 1), 0.9f);
  EXPECT_FLOAT_EQ(img.row(1)[2], 0.9f);
}

TEST(ImageTest, EmptyImage) {
  Image img;
  EXPECT_TRUE(img.empty());
  EXPECT_FLOAT_EQ(img.Mean(), 0.0f);
}

TEST(ImageDeathTest, OutOfBoundsAborts) {
  Image img(2, 2);
  EXPECT_DEATH(img.at(2, 0), "Check failed");
  EXPECT_DEATH(img.at(0, -1), "Check failed");
}

TEST(ImageTest, ClampBoundsPixels) {
  Image img(2, 1);
  img.set(0, 0, -0.5f);
  img.set(1, 0, 1.5f);
  img.Clamp();
  EXPECT_FLOAT_EQ(img.at(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(img.at(1, 0), 1.0f);
}

TEST(ImageTest, MeanBasic) {
  Image img(2, 2);
  img.set(0, 0, 1.0f);
  EXPECT_FLOAT_EQ(img.Mean(), 0.25f);
}

TEST(ImageTest, DownscalePreservesMean) {
  Image img(8, 8);
  for (int y = 0; y < 8; ++y) {
    for (int x = 0; x < 8; ++x) {
      img.set(x, y, (x + y) % 2 == 0 ? 1.0f : 0.0f);
    }
  }
  Image small = img.Resized(4, 4);
  EXPECT_EQ(small.width(), 4);
  EXPECT_EQ(small.height(), 4);
  EXPECT_NEAR(small.Mean(), img.Mean(), 0.05f);
}

TEST(ImageTest, DownscaleAveragesBlocks) {
  Image img(4, 2, 0.0f);
  // Left half bright, right half dark.
  for (int y = 0; y < 2; ++y) {
    img.set(0, y, 1.0f);
    img.set(1, y, 1.0f);
  }
  Image small = img.Resized(2, 1);
  EXPECT_NEAR(small.at(0, 0), 1.0f, 1e-5f);
  EXPECT_NEAR(small.at(1, 0), 0.0f, 1e-5f);
}

TEST(ImageTest, UpscaleInterpolates) {
  Image img(2, 1);
  img.set(0, 0, 0.0f);
  img.set(1, 0, 1.0f);
  Image big = img.Resized(4, 1);
  EXPECT_EQ(big.width(), 4);
  // Monotone left-to-right ramp.
  for (int x = 1; x < 4; ++x) {
    EXPECT_GE(big.at(x, 0), big.at(x - 1, 0));
  }
}

TEST(ImageTest, MeanAbsDiff) {
  Image a(2, 2, 0.5f);
  Image b(2, 2, 0.75f);
  EXPECT_NEAR(a.MeanAbsDiff(b), 0.25f, 1e-6f);
  EXPECT_FLOAT_EQ(a.MeanAbsDiff(a), 0.0f);
}

// --- Resized / ResizedInto equivalence and buffer-reuse semantics ----------

Image TestPattern(int w, int h) {
  Image img(w, h);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      img.set(x, y, static_cast<float>((x * 31 + y * 17) % 97) / 96.0f);
    }
  }
  return img;
}

void ExpectBitIdentical(const Image& a, const Image& b) {
  ASSERT_EQ(a.width(), b.width());
  ASSERT_EQ(a.height(), b.height());
  for (int y = 0; y < a.height(); ++y) {
    for (int x = 0; x < a.width(); ++x) {
      ASSERT_EQ(a.at(x, y), b.at(x, y)) << x << "," << y;
    }
  }
}

TEST(ImageResizedIntoTest, IdentitySizeMatchesResized) {
  const Image src = TestPattern(10, 6);
  Image out;
  src.ResizedInto(10, 6, &out);
  ExpectBitIdentical(out, src.Resized(10, 6));
  // Identity-size resize is an area average with 1x1 cells: exact copy.
  ExpectBitIdentical(out, src);
}

TEST(ImageResizedIntoTest, UpscaleMatchesResized) {
  const Image src = TestPattern(5, 4);
  Image out;
  src.ResizedInto(13, 9, &out);
  ExpectBitIdentical(out, src.Resized(13, 9));
}

TEST(ImageResizedIntoTest, NonIntegerRatioDownscaleMatchesResized) {
  const Image src = TestPattern(10, 6);  // 10/4 and 6/3 mix ratios.
  Image out;
  src.ResizedInto(4, 3, &out);
  ExpectBitIdentical(out, src.Resized(4, 3));
  // Mixed direction (downscale x, upscale y) goes through bilinear.
  Image mixed;
  src.ResizedInto(4, 9, &mixed);
  ExpectBitIdentical(mixed, src.Resized(4, 9));
}

TEST(ImageResizedIntoTest, AliasingSelfResizeIsSafe) {
  const Image src = TestPattern(12, 8);
  const Image want = src.Resized(5, 3);
  Image img = src;
  img.ResizedInto(5, 3, &img);  // out == this.
  ExpectBitIdentical(img, want);
  // Self-resize to the same size must also survive (full overlap).
  Image same = src;
  same.ResizedInto(12, 8, &same);
  ExpectBitIdentical(same, src);
}

TEST(ImageResizedIntoTest, ReusesDestinationBuffer) {
  const Image src = TestPattern(16, 12);
  Image out(16, 12);  // Capacity >= any smaller resize target.
  const float* before = out.data();
  src.ResizedInto(8, 6, &out);
  EXPECT_EQ(out.data(), before) << "fitting resize reallocated";
  src.ResizedInto(4, 3, &out);
  EXPECT_EQ(out.data(), before);
}

TEST(ImageResizedIntoTest, ViewTargetMatchesResized) {
  const Image src = TestPattern(9, 7);
  const Image want = src.Resized(4, 3);
  std::vector<float> raw(4 * 3, -1.0f);
  src.ResizedInto(mem::ImageView{raw.data(), 4, 3, 4});
  for (int y = 0; y < 3; ++y) {
    for (int x = 0; x < 4; ++x) {
      ASSERT_EQ(raw[static_cast<size_t>(y) * 4 + x], want.at(x, y))
          << x << "," << y;
    }
  }
}

TEST(ImageTest, CopyAssignReusesCapacityAndCopiesPixels) {
  const Image src = TestPattern(6, 5);
  Image dst(8, 8);  // Larger capacity than src needs.
  const float* before = dst.data();
  dst = src;
  EXPECT_EQ(dst.data(), before) << "fitting copy-assign reallocated";
  ExpectBitIdentical(dst, src);
  // Source is untouched and independent: mutating dst must not alias src.
  dst.set(0, 0, 0.123f);
  EXPECT_NE(src.at(0, 0), 0.123f);
}

TEST(ImageTest, MoveLeavesSourceEmpty) {
  Image src = TestPattern(4, 4);
  const float* p = src.data();
  Image dst = std::move(src);
  EXPECT_EQ(dst.data(), p);
  EXPECT_TRUE(src.empty());  // NOLINT(bugprone-use-after-move)
  EXPECT_EQ(src.width(), 0);
}

}  // namespace
}  // namespace otif::video
