#include "video/image.h"

#include <gtest/gtest.h>

namespace otif::video {
namespace {

TEST(ImageTest, ConstructionAndAccess) {
  Image img(4, 3, 0.5f);
  EXPECT_EQ(img.width(), 4);
  EXPECT_EQ(img.height(), 3);
  EXPECT_EQ(img.size(), 12u);
  EXPECT_FLOAT_EQ(img.at(2, 1), 0.5f);
  img.set(2, 1, 0.9f);
  EXPECT_FLOAT_EQ(img.at(2, 1), 0.9f);
  EXPECT_FLOAT_EQ(img.row(1)[2], 0.9f);
}

TEST(ImageTest, EmptyImage) {
  Image img;
  EXPECT_TRUE(img.empty());
  EXPECT_FLOAT_EQ(img.Mean(), 0.0f);
}

TEST(ImageDeathTest, OutOfBoundsAborts) {
  Image img(2, 2);
  EXPECT_DEATH(img.at(2, 0), "Check failed");
  EXPECT_DEATH(img.at(0, -1), "Check failed");
}

TEST(ImageTest, ClampBoundsPixels) {
  Image img(2, 1);
  img.set(0, 0, -0.5f);
  img.set(1, 0, 1.5f);
  img.Clamp();
  EXPECT_FLOAT_EQ(img.at(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(img.at(1, 0), 1.0f);
}

TEST(ImageTest, MeanBasic) {
  Image img(2, 2);
  img.set(0, 0, 1.0f);
  EXPECT_FLOAT_EQ(img.Mean(), 0.25f);
}

TEST(ImageTest, DownscalePreservesMean) {
  Image img(8, 8);
  for (int y = 0; y < 8; ++y) {
    for (int x = 0; x < 8; ++x) {
      img.set(x, y, (x + y) % 2 == 0 ? 1.0f : 0.0f);
    }
  }
  Image small = img.Resized(4, 4);
  EXPECT_EQ(small.width(), 4);
  EXPECT_EQ(small.height(), 4);
  EXPECT_NEAR(small.Mean(), img.Mean(), 0.05f);
}

TEST(ImageTest, DownscaleAveragesBlocks) {
  Image img(4, 2, 0.0f);
  // Left half bright, right half dark.
  for (int y = 0; y < 2; ++y) {
    img.set(0, y, 1.0f);
    img.set(1, y, 1.0f);
  }
  Image small = img.Resized(2, 1);
  EXPECT_NEAR(small.at(0, 0), 1.0f, 1e-5f);
  EXPECT_NEAR(small.at(1, 0), 0.0f, 1e-5f);
}

TEST(ImageTest, UpscaleInterpolates) {
  Image img(2, 1);
  img.set(0, 0, 0.0f);
  img.set(1, 0, 1.0f);
  Image big = img.Resized(4, 1);
  EXPECT_EQ(big.width(), 4);
  // Monotone left-to-right ramp.
  for (int x = 1; x < 4; ++x) {
    EXPECT_GE(big.at(x, 0), big.at(x - 1, 0));
  }
}

TEST(ImageTest, MeanAbsDiff) {
  Image a(2, 2, 0.5f);
  Image b(2, 2, 0.75f);
  EXPECT_NEAR(a.MeanAbsDiff(b), 0.25f, 1e-6f);
  EXPECT_FLOAT_EQ(a.MeanAbsDiff(a), 0.0f);
}

}  // namespace
}  // namespace otif::video
