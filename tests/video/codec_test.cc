#include "video/codec.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/fault_injection.h"
#include "util/rng.h"
#include "util/status.h"

namespace otif::video {
namespace {

// Builds a synthetic sequence: smooth background with a bright square moving
// one pixel per frame.
std::vector<Image> MovingSquareClip(int num_frames, int width, int height) {
  std::vector<Image> frames;
  for (int t = 0; t < num_frames; ++t) {
    Image img(width, height);
    for (int y = 0; y < height; ++y) {
      for (int x = 0; x < width; ++x) {
        img.set(x, y, 0.2f + 0.2f * static_cast<float>(y) / height);
      }
    }
    const int sx = 4 + t;
    for (int y = 10; y < 18 && y < height; ++y) {
      for (int x = sx; x < sx + 8 && x < width; ++x) {
        if (x >= 0) img.set(x, y, 0.9f);
      }
    }
    frames.push_back(std::move(img));
  }
  return frames;
}

TEST(CodecTest, EncodeRejectsEmptyInput) {
  Encoder encoder(CodecConfig{});
  EXPECT_FALSE(encoder.Encode({}).ok());
}

TEST(CodecTest, EncodeRejectsMismatchedDimensions) {
  Encoder encoder(CodecConfig{});
  std::vector<Image> frames;
  frames.emplace_back(16, 16);
  frames.emplace_back(16, 8);
  EXPECT_FALSE(encoder.Encode(frames).ok());
}

TEST(CodecTest, RoundTripBoundedError) {
  const auto frames = MovingSquareClip(20, 64, 48);
  CodecConfig config;
  Encoder encoder(config);
  auto encoded = encoder.Encode(frames);
  ASSERT_TRUE(encoded.ok());
  Decoder decoder(&encoded.value());
  auto decoded = decoder.DecodeAll(nullptr);
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->size(), frames.size());
  for (size_t t = 0; t < frames.size(); ++t) {
    // Quantization error per pixel is bounded; mean error must be small.
    EXPECT_LT(frames[t].MeanAbsDiff((*decoded)[t]), 0.03f) << "frame " << t;
  }
}

TEST(CodecTest, IntraFramePlacement) {
  const auto frames = MovingSquareClip(33, 32, 32);
  CodecConfig config;
  config.gop_size = 8;
  auto encoded = Encoder(config).Encode(frames);
  ASSERT_TRUE(encoded.ok());
  for (size_t t = 0; t < encoded->frames.size(); ++t) {
    EXPECT_EQ(encoded->frames[t].is_intra, t % 8 == 0) << "frame " << t;
  }
}

TEST(CodecTest, CompressionBeatsRawOnSmoothVideo) {
  const auto frames = MovingSquareClip(32, 64, 48);
  auto encoded = Encoder(CodecConfig{}).Encode(frames);
  ASSERT_TRUE(encoded.ok());
  const size_t raw_bytes = frames.size() * 64 * 48;  // 1 byte per pixel.
  EXPECT_LT(encoded->TotalBytes(), raw_bytes / 2)
      << "compressed=" << encoded->TotalBytes() << " raw=" << raw_bytes;
}

TEST(CodecTest, PFramesSmallerThanIFrames) {
  const auto frames = MovingSquareClip(16, 64, 48);
  CodecConfig config;
  config.gop_size = 16;
  auto encoded = Encoder(config).Encode(frames);
  ASSERT_TRUE(encoded.ok());
  const size_t intra_bytes = encoded->frames[0].payload.size();
  for (size_t t = 1; t < encoded->frames.size(); ++t) {
    EXPECT_LT(encoded->frames[t].payload.size(), intra_bytes)
        << "frame " << t;
  }
}

TEST(CodecTest, SequentialDecodeCountsEachFrameOnce) {
  const auto frames = MovingSquareClip(20, 32, 32);
  auto encoded = Encoder(CodecConfig{}).Encode(frames);
  ASSERT_TRUE(encoded.ok());
  Decoder decoder(&encoded.value());
  DecodeStats stats;
  ASSERT_TRUE(decoder.DecodeAll(&stats).ok());
  EXPECT_EQ(stats.frames_decoded, 20);
  EXPECT_EQ(stats.pixels_decoded, 20 * 32 * 32);
}

TEST(CodecTest, RandomAccessDecodesFromNearestIFrame) {
  const auto frames = MovingSquareClip(33, 32, 32);
  CodecConfig config;
  config.gop_size = 8;
  auto encoded = Encoder(config).Encode(frames);
  ASSERT_TRUE(encoded.ok());
  Decoder decoder(&encoded.value());
  DecodeStats stats;
  // Frame 11: I-frame at 8, so frames 8..11 decode = 4 frames.
  ASSERT_TRUE(decoder.DecodeFrame(11, &stats).ok());
  EXPECT_EQ(stats.frames_decoded, 4);
  EXPECT_EQ(stats.intra_frames_decoded, 1);
}

TEST(CodecTest, ForwardSeekContinuesFromReference) {
  const auto frames = MovingSquareClip(33, 32, 32);
  CodecConfig config;
  config.gop_size = 32;
  auto encoded = Encoder(config).Encode(frames);
  ASSERT_TRUE(encoded.ok());
  Decoder decoder(&encoded.value());
  DecodeStats stats;
  ASSERT_TRUE(decoder.DecodeFrame(5, &stats).ok());
  const int64_t after_first = stats.frames_decoded;
  // Moving forward by 3 should decode exactly 3 more frames (no I restart
  // because the GOP is long).
  ASSERT_TRUE(decoder.DecodeFrame(8, &stats).ok());
  EXPECT_EQ(stats.frames_decoded, after_first + 3);
}

TEST(CodecTest, ForwardSeekPrefersNearbyIFrame) {
  const auto frames = MovingSquareClip(33, 32, 32);
  CodecConfig config;
  config.gop_size = 8;
  auto encoded = Encoder(config).Encode(frames);
  ASSERT_TRUE(encoded.ok());
  Decoder decoder(&encoded.value());
  DecodeStats stats;
  ASSERT_TRUE(decoder.DecodeFrame(0, &stats).ok());
  stats = DecodeStats{};
  // Frame 25 is far ahead; the decoder should restart at I-frame 24 rather
  // than decode 25 consecutive frames.
  ASSERT_TRUE(decoder.DecodeFrame(25, &stats).ok());
  EXPECT_EQ(stats.frames_decoded, 2);
}

TEST(CodecTest, RepeatDecodeIsFree) {
  const auto frames = MovingSquareClip(4, 32, 32);
  auto encoded = Encoder(CodecConfig{}).Encode(frames);
  ASSERT_TRUE(encoded.ok());
  Decoder decoder(&encoded.value());
  DecodeStats stats;
  ASSERT_TRUE(decoder.DecodeFrame(2, &stats).ok());
  const int64_t once = stats.frames_decoded;
  ASSERT_TRUE(decoder.DecodeFrame(2, &stats).ok());
  EXPECT_EQ(stats.frames_decoded, once);
}

TEST(CodecTest, DecodeFrameOutOfRange) {
  const auto frames = MovingSquareClip(4, 32, 32);
  auto encoded = Encoder(CodecConfig{}).Encode(frames);
  ASSERT_TRUE(encoded.ok());
  Decoder decoder(&encoded.value());
  EXPECT_FALSE(decoder.DecodeFrame(4, nullptr).ok());
  EXPECT_FALSE(decoder.DecodeFrame(-1, nullptr).ok());
}

TEST(CodecTest, BackwardSeekWorks) {
  const auto frames = MovingSquareClip(20, 32, 32);
  CodecConfig config;
  config.gop_size = 8;
  auto encoded = Encoder(config).Encode(frames);
  ASSERT_TRUE(encoded.ok());
  Decoder decoder(&encoded.value());
  ASSERT_TRUE(decoder.DecodeFrame(15, nullptr).ok());
  auto img = decoder.DecodeFrame(3, nullptr);
  ASSERT_TRUE(img.ok());
  EXPECT_LT(frames[3].MeanAbsDiff(*img), 0.03f);
}

TEST(CodecTest, DecodeFrameIntoMatchesDecodeFrame) {
  const auto frames = MovingSquareClip(20, 32, 32);
  CodecConfig config;
  config.gop_size = 8;
  auto encoded = Encoder(config).Encode(frames);
  ASSERT_TRUE(encoded.ok());
  Decoder by_value(&encoded.value());
  Decoder into(&encoded.value());
  Image out;
  // Same access pattern (sequential, repeat, backward seek) through both
  // APIs must produce bit-identical pixels and identical stats.
  DecodeStats stats_value, stats_into;
  for (const int f : {0, 1, 2, 7, 8, 15, 15, 3, 19}) {
    auto want = by_value.DecodeFrame(f, &stats_value);
    ASSERT_TRUE(want.ok());
    ASSERT_TRUE(into.DecodeFrameInto(f, &stats_into, &out).ok());
    ASSERT_EQ(out.width(), want->width());
    ASSERT_EQ(out.height(), want->height());
    EXPECT_FLOAT_EQ(out.MeanAbsDiff(*want), 0.0f) << "frame " << f;
  }
  EXPECT_EQ(stats_into.frames_decoded, stats_value.frames_decoded);
  EXPECT_EQ(stats_into.pixels_decoded, stats_value.pixels_decoded);
}

TEST(CodecTest, DecodeFrameIntoReusesOutputBuffer) {
  const auto frames = MovingSquareClip(8, 32, 32);
  auto encoded = Encoder(CodecConfig{}).Encode(frames);
  ASSERT_TRUE(encoded.ok());
  Decoder decoder(&encoded.value());
  Image out;
  ASSERT_TRUE(decoder.DecodeFrameInto(0, nullptr, &out).ok());
  const float* buffer = out.data();
  for (int f = 1; f < 8; ++f) {
    ASSERT_TRUE(decoder.DecodeFrameInto(f, nullptr, &out).ok());
    EXPECT_EQ(out.data(), buffer) << "frame " << f << " reallocated out";
  }
}

TEST(CodecTest, DecodeFrameIntoOutOfRange) {
  const auto frames = MovingSquareClip(4, 32, 32);
  auto encoded = Encoder(CodecConfig{}).Encode(frames);
  ASSERT_TRUE(encoded.ok());
  Decoder decoder(&encoded.value());
  Image out;
  EXPECT_FALSE(decoder.DecodeFrameInto(4, nullptr, &out).ok());
  EXPECT_FALSE(decoder.DecodeFrameInto(-1, nullptr, &out).ok());
}

// Property test: random noise frames still round-trip within quantization
// error, and decode is deterministic.
TEST(CodecPropertyTest, NoiseRoundTripAndDeterminism) {
  Rng rng(99);
  std::vector<Image> frames;
  for (int t = 0; t < 6; ++t) {
    Image img(40, 24);
    for (int y = 0; y < 24; ++y) {
      for (int x = 0; x < 40; ++x) {
        img.set(x, y, static_cast<float>(rng.NextDouble()));
      }
    }
    frames.push_back(std::move(img));
  }
  auto encoded = Encoder(CodecConfig{}).Encode(frames);
  ASSERT_TRUE(encoded.ok());
  Decoder d1(&encoded.value());
  Decoder d2(&encoded.value());
  auto out1 = d1.DecodeAll(nullptr);
  auto out2 = d2.DecodeAll(nullptr);
  ASSERT_TRUE(out1.ok());
  ASSERT_TRUE(out2.ok());
  for (size_t t = 0; t < frames.size(); ++t) {
    EXPECT_LT(frames[t].MeanAbsDiff((*out1)[t]), 0.05f);
    EXPECT_FLOAT_EQ((*out1)[t].MeanAbsDiff((*out2)[t]), 0.0f);
  }
}

/// Fault-hook tests for the "decode.frame" site: injected errors surface
/// as IoError, injected corruption delivers a short (half-zeroed) frame,
/// and with faults cleared the decoder is bit-identical to an untouched one.
class CodecFaultTest : public ::testing::Test {
 protected:
  void TearDown() override { fault::ClearFaults(); }
};

TEST_F(CodecFaultTest, InjectedErrorSurfacesAsIoError) {
  const auto frames = MovingSquareClip(8, 32, 32);
  auto encoded = Encoder(CodecConfig{}).Encode(frames);
  ASSERT_TRUE(encoded.ok());
  Decoder decoder(&encoded.value());
  // The decode token is the frame index, so a rate-1 spec fails every frame.
  ASSERT_TRUE(fault::ConfigureFaults("decode.frame:error:1:3").ok());
  Image out;
  const Status status = decoder.DecodeFrameInto(2, nullptr, &out);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kIoError);
}

TEST_F(CodecFaultTest, InjectedCorruptionDeliversShortFrame) {
  const auto frames = MovingSquareClip(8, 32, 32);
  auto encoded = Encoder(CodecConfig{}).Encode(frames);
  ASSERT_TRUE(encoded.ok());
  Decoder clean(&encoded.value());
  Image want;
  ASSERT_TRUE(clean.DecodeFrameInto(3, nullptr, &want).ok());

  Decoder corrupted(&encoded.value());
  ASSERT_TRUE(fault::ConfigureFaults("decode.frame:corrupt:1:3").ok());
  Image out;
  ASSERT_TRUE(corrupted.DecodeFrameInto(3, nullptr, &out).ok());
  const size_t total = static_cast<size_t>(out.width()) * out.height();
  // Top half decoded normally; bottom half lost (zeroed).
  for (size_t i = 0; i < total / 2; ++i) {
    EXPECT_EQ(out.data()[i], want.data()[i]) << "pixel " << i;
  }
  for (size_t i = total / 2; i < total; ++i) {
    ASSERT_EQ(out.data()[i], 0.0f) << "pixel " << i;
  }

  // Clearing the faults restores bit-identical decoding.
  fault::ClearFaults();
  ASSERT_TRUE(corrupted.DecodeFrameInto(3, nullptr, &out).ok());
  EXPECT_FLOAT_EQ(out.MeanAbsDiff(want), 0.0f);
}

}  // namespace
}  // namespace otif::video
