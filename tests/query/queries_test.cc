#include "query/queries.h"

#include <gtest/gtest.h>

#include "sim/dataset.h"

namespace otif::query {
namespace {

track::Track MakeTrack(int64_t id, track::ObjectClass cls,
                       std::vector<std::pair<int, geom::Point>> points,
                       double w = 30, double h = 20) {
  track::Track t;
  t.id = id;
  t.cls = cls;
  for (auto& [frame, p] : points) {
    track::Detection d;
    d.frame = frame;
    d.box = geom::BBox(p.x, p.y, w, h);
    d.cls = cls;
    t.detections.push_back(d);
  }
  return t;
}

TEST(CountVehicleTracksTest, FiltersClassAndDuration) {
  std::vector<track::Track> tracks;
  tracks.push_back(MakeTrack(1, track::ObjectClass::kCar,
                             {{0, {0, 0}}, {30, {100, 0}}}));
  tracks.push_back(MakeTrack(2, track::ObjectClass::kPedestrian,
                             {{0, {0, 0}}, {30, {10, 0}}}));
  tracks.push_back(
      MakeTrack(3, track::ObjectClass::kBus, {{0, {0, 0}}, {5, {10, 0}}}));
  EXPECT_EQ(CountVehicleTracks(tracks, 10), 1);
  EXPECT_EQ(CountVehicleTracks(tracks, 3), 2);
}

TEST(GroundTruthVehicleCountTest, MatchesClipObjects) {
  sim::Clip clip = sim::SimulateClip(
      sim::MakeDataset(sim::DatasetId::kSynthetic), 3, 300);
  const int all = GroundTruthVehicleCount(clip, 1);
  const int long_only = GroundTruthVehicleCount(clip, 50);
  EXPECT_GT(all, 0);
  EXPECT_LE(long_only, all);
}

TEST(PathCountsTest, GroundTruthCoversSpawnedObjects) {
  sim::Clip clip = sim::SimulateClip(
      sim::MakeDataset(sim::DatasetId::kSynthetic), 5, 400);
  const auto counts = GroundTruthPathCounts(clip, 0.35);
  ASSERT_EQ(counts.size(), 2u);  // Two synthetic paths.
  int total = 0;
  for (const auto& [label, n] : counts) total += n;
  EXPECT_GT(total, 0);
}

TEST(ClassifyTracksByPathTest, AssignsToNearestPath) {
  const sim::DatasetSpec spec = sim::MakeDataset(sim::DatasetId::kSynthetic);
  // Track matching "left_right" ({-20,80} -> {340,90}).
  std::vector<track::Track> tracks;
  tracks.push_back(MakeTrack(1, track::ObjectClass::kCar,
                             {{0, {0, 80}}, {50, {160, 85}}, {100, {330, 90}}}));
  const auto counts = ClassifyTracksByPath(tracks, spec, 80.0);
  EXPECT_EQ(counts.at("left_right"), 1);
  EXPECT_EQ(counts.at("top_bottom"), 0);
}

TEST(ClassifyTracksByPathTest, FarTracksUnassigned) {
  const sim::DatasetSpec spec = sim::MakeDataset(sim::DatasetId::kSynthetic);
  std::vector<track::Track> tracks;
  tracks.push_back(MakeTrack(1, track::ObjectClass::kCar,
                             {{0, {0, 239}}, {50, {320, 239}}}));
  const auto counts = ClassifyTracksByPath(tracks, spec, 30.0);
  int total = 0;
  for (const auto& [label, n] : counts) total += n;
  EXPECT_EQ(total, 0);
}

TEST(PathBreakdownAccuracyTest, PerfectAndPartial) {
  std::map<std::string, int> gt = {{"a", 10}, {"b", 5}};
  EXPECT_DOUBLE_EQ(PathBreakdownAccuracy(gt, gt), 1.0);
  std::map<std::string, int> est = {{"a", 5}, {"b", 5}};
  EXPECT_DOUBLE_EQ(PathBreakdownAccuracy(est, gt), 0.75);
  // Spurious label with zero ground truth scores 0 for that label.
  std::map<std::string, int> extra = {{"a", 10}, {"b", 5}, {"c", 3}};
  EXPECT_NEAR(PathBreakdownAccuracy(extra, gt), 2.0 / 3.0, 1e-9);
}

TEST(PathBreakdownAccuracyTest, SkipsMutuallyEmptyLabels) {
  std::map<std::string, int> gt = {{"a", 10}, {"empty", 0}};
  std::map<std::string, int> est = {{"a", 10}, {"empty", 0}};
  EXPECT_DOUBLE_EQ(PathBreakdownAccuracy(est, gt), 1.0);
}

TEST(HardBrakingTest, DetectsSharpDeceleration) {
  sim::DatasetSpec spec = sim::MakeDataset(sim::DatasetId::kSynthetic);
  // 10 fps, 0.2 m/px. Speed 50 px/s (10 m/s) for 1 s, then 5 px/s: a drop
  // of 9 m/s over ~1 s.
  std::vector<track::Track> tracks;
  std::vector<std::pair<int, geom::Point>> pts;
  double x = 0;
  for (int f = 0; f <= 10; ++f) {
    pts.push_back({f, {x, 100}});
    x += 5.0;
  }
  for (int f = 11; f <= 20; ++f) {
    pts.push_back({f, {x, 100}});
    x += 0.5;
  }
  tracks.push_back(MakeTrack(1, track::ObjectClass::kCar, pts));
  // Constant-speed control track.
  std::vector<std::pair<int, geom::Point>> steady;
  for (int f = 0; f <= 20; ++f) steady.push_back({f, {5.0 * f, 200}});
  tracks.push_back(MakeTrack(2, track::ObjectClass::kCar, steady));

  const auto braking = FindHardBrakingTracks(tracks, spec, 5.0);
  ASSERT_EQ(braking.size(), 1u);
  EXPECT_EQ(braking[0], 1);
}

TEST(PredicateTest, CountPredicate) {
  CountPredicate p(2);
  EXPECT_FALSE(p.Matches({geom::BBox(0, 0, 1, 1)}));
  EXPECT_TRUE(p.Matches({geom::BBox(0, 0, 1, 1), geom::BBox(5, 5, 1, 1)}));
}

TEST(PredicateTest, RegionPredicate) {
  RegionPredicate p(geom::Polygon({{0, 0}, {100, 0}, {100, 100}, {0, 100}}),
                    1);
  EXPECT_TRUE(p.Matches({geom::BBox(50, 50, 10, 10)}));
  EXPECT_FALSE(p.Matches({geom::BBox(200, 200, 10, 10)}));
}

TEST(PredicateTest, HotSpotPredicate) {
  HotSpotPredicate p(50.0, 3);
  // Three boxes within radius 50 of each other.
  EXPECT_TRUE(p.Matches({geom::BBox(0, 0, 5, 5), geom::BBox(30, 0, 5, 5),
                         geom::BBox(0, 30, 5, 5)}));
  // Three boxes spread far apart.
  EXPECT_FALSE(p.Matches({geom::BBox(0, 0, 5, 5), geom::BBox(200, 0, 5, 5),
                          geom::BBox(0, 200, 5, 5)}));
}

TEST(VehicleBoxesAtTest, InterpolatesWithinSpan) {
  std::vector<track::Track> tracks;
  tracks.push_back(MakeTrack(1, track::ObjectClass::kCar,
                             {{0, {0, 0}}, {10, {100, 0}}}));
  tracks.push_back(MakeTrack(2, track::ObjectClass::kPedestrian,
                             {{0, {50, 50}}, {10, {60, 50}}}));
  const auto at5 = VehicleBoxesAt(tracks, 5);
  ASSERT_EQ(at5.size(), 1u);  // Pedestrian excluded.
  EXPECT_NEAR(at5[0].cx, 50.0, 1e-9);
  EXPECT_TRUE(VehicleBoxesAt(tracks, 20).empty());
}

TEST(ExecuteLimitQueryTest, RespectsLimitAndSeparation) {
  // One long track visible frames 0..100; predicate matches everywhere.
  std::vector<track::Track> tracks;
  tracks.push_back(MakeTrack(1, track::ObjectClass::kCar,
                             {{0, {0, 0}}, {100, {100, 0}}}));
  CountPredicate p(1);
  const auto frames = ExecuteLimitQuery(tracks, p, 101, 3, 25);
  ASSERT_EQ(frames.size(), 3u);
  for (size_t i = 0; i < frames.size(); ++i) {
    for (size_t j = i + 1; j < frames.size(); ++j) {
      EXPECT_GE(std::abs(frames[i] - frames[j]), 25);
    }
  }
}

TEST(ExecuteLimitQueryTest, NoMatchesNoOutput) {
  std::vector<track::Track> tracks;
  tracks.push_back(MakeTrack(1, track::ObjectClass::kCar,
                             {{0, {0, 0}}, {10, {100, 0}}}));
  CountPredicate p(5);
  EXPECT_TRUE(ExecuteLimitQuery(tracks, p, 50, 10, 5).empty());
}

TEST(LimitQueryAccuracyTest, ChecksGroundTruth) {
  sim::Clip clip = sim::SimulateClip(
      sim::MakeDataset(sim::DatasetId::kSynthetic), 7, 100);
  CountPredicate p(1);
  // Find a frame with objects and one without.
  int with = -1, without = -1;
  for (int f = 0; f < clip.num_frames(); ++f) {
    const bool matches = GroundTruthMatches(clip, f, p);
    if (matches && with < 0) with = f;
    if (!matches && without < 0) without = f;
  }
  if (with >= 0 && without >= 0) {
    EXPECT_DOUBLE_EQ(LimitQueryAccuracy(clip, {with}, p), 1.0);
    EXPECT_DOUBLE_EQ(LimitQueryAccuracy(clip, {with, without}, p), 0.5);
  }
  EXPECT_DOUBLE_EQ(LimitQueryAccuracy(clip, {}, p), 1.0);
}

}  // namespace
}  // namespace otif::query
