// Introspection server endpoint tests: handler rendering for all four
// endpoints, the /healthz stall watchdog, one real-socket HTTP round trip,
// concurrent /metrics scrapes racing telemetry writers (the TSan target),
// and the bit-identity contract — a streaming run with the server up and
// progress armed must match the server-off run exactly.

#include "obs/introspection_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "core/executor/streaming_executor.h"
#include "core/pipeline.h"
#include "obs/run_progress.h"
#include "sim/dataset.h"
#include "util/status.h"
#include "util/telemetry.h"
#include "util/thread_pool.h"
#include "util/trace.h"
#include "util/trace_timeline.h"

namespace otif::obs {
namespace {

/// Arms progress recording for a test body and restores the previous state
/// (and a clean "idle" phase) on exit.
class ScopedProgress {
 public:
  ScopedProgress() : previous_(ProgressEnabled()) { SetProgressEnabled(true); }
  ~ScopedProgress() {
    RunProgress::Global().EndRun();
    RunProgress::Global().SetPhase("idle");
    SetProgressEnabled(previous_);
  }

 private:
  const bool previous_;
};

std::unique_ptr<IntrospectionServer> StartOrDie(
    IntrospectionServer::Options options = {}) {
  StatusOr<std::unique_ptr<IntrospectionServer>> server =
      IntrospectionServer::Start(options);
  EXPECT_TRUE(server.ok()) << server.status().ToString();
  return std::move(*server);
}

TEST(IntrospectionServerTest, EphemeralPortIsReported) {
  auto server = StartOrDie();
  EXPECT_GT(server->port(), 0);
  EXPECT_LE(server->port(), 65535);
}

TEST(IntrospectionServerTest, MetricsEndpointServesExposition) {
  telemetry::MetricsRegistry::Global()
      .GetCounter("obs_test.metrics_probe")
      ->Add(1);
  auto server = StartOrDie();
  const IntrospectionServer::Response r = server->Handle("/metrics");
  EXPECT_EQ(r.status, 200);
  EXPECT_NE(r.content_type.find("0.0.4"), std::string::npos);
  EXPECT_NE(r.body.find("# TYPE "), std::string::npos);
  EXPECT_NE(r.body.find("otif_obs_test_metrics_probe"), std::string::npos);
  // The scrape refreshes the buffer-pool mirror gauges before rendering.
  EXPECT_NE(r.body.find("otif_mem_pool_hits"), std::string::npos);
}

TEST(IntrospectionServerTest, StatuszReportsRunAndClips) {
  ScopedProgress scoped;
  RunProgress::Global().BeginRun("statusz_unit", {5, 5});
  RunProgress::Global().OnFramesCommitted(0, 2);
  auto server = StartOrDie();
  const IntrospectionServer::Response r = server->Handle("/statusz");
  EXPECT_EQ(r.status, 200);
  EXPECT_NE(r.content_type.find("application/json"), std::string::npos);
  EXPECT_NE(r.body.find("\"phase\""), std::string::npos);
  EXPECT_NE(r.body.find("statusz_unit"), std::string::npos);
  EXPECT_NE(r.body.find("\"committed\""), std::string::npos);
  EXPECT_NE(r.body.find("\"pool\""), std::string::npos);
  EXPECT_NE(r.body.find("\"executor\""), std::string::npos);
}

TEST(IntrospectionServerTest, HealthzFlipsToStalledAndBack) {
  ScopedProgress scoped;
  IntrospectionServer::Options options;
  options.stall_seconds = 0.02;
  auto server = StartOrDie(options);

  // No run in flight: idle is healthy.
  IntrospectionServer::Response r = server->Handle("/healthz");
  EXPECT_EQ(r.status, 200);
  EXPECT_NE(r.body.find("idle"), std::string::npos);

  // A run that stops committing trips the watchdog after stall_seconds.
  RunProgress::Global().BeginRun("healthz_unit", {100});
  RunProgress::Global().OnFramesCommitted(0, 1);
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  r = server->Handle("/healthz");
  EXPECT_EQ(r.status, 503);
  EXPECT_NE(r.body.find("stalled"), std::string::npos);

  // A fresh commit revives it; ending the run returns it to idle.
  RunProgress::Global().OnFramesCommitted(0, 1);
  EXPECT_EQ(server->Handle("/healthz").status, 200);
  RunProgress::Global().EndRun();
  r = server->Handle("/healthz");
  EXPECT_EQ(r.status, 200);
  EXPECT_NE(r.body.find("idle"), std::string::npos);
}

TEST(IntrospectionServerTest, TracezReportsArmedState) {
  auto server = StartOrDie();
  const IntrospectionServer::Response r = server->Handle("/tracez");
  EXPECT_EQ(r.status, 200);
  EXPECT_NE(r.content_type.find("application/json"), std::string::npos);
  EXPECT_NE(r.body.find("\"timeline_armed\""), std::string::npos);
  EXPECT_NE(r.body.find("\"spans\""), std::string::npos);
}

TEST(IntrospectionServerTest, IndexAndNotFound) {
  auto server = StartOrDie();
  const IntrospectionServer::Response index = server->Handle("/");
  EXPECT_EQ(index.status, 200);
  EXPECT_NE(index.body.find("/metrics"), std::string::npos);
  EXPECT_NE(index.body.find("/profilez"), std::string::npos);
  EXPECT_EQ(server->Handle("/nope").status, 404);
  // Parameters an endpoint does not define are rejected, not ignored: a
  // scraper typo ("?seconds=2" on the wrong path) should fail loudly.
  EXPECT_EQ(server->Handle("/healthz?verbose=1").status, 400);
}

TEST(IntrospectionServerTest, ParseQueryStringTable) {
  struct Case {
    const char* query;
    bool ok;
  };
  const Case cases[] = {
      {"", true},
      {"a=1", true},
      {"a=1&b=two", true},
      {"a=", true},       // Empty value is fine; empty key is not.
      {"a==b", true},     // Value containing '='.
      {"=1", false},      // Empty key.
      {"a", false},       // No '='.
      {"a=1&", false},    // Trailing separator.
      {"&a=1", false},    // Leading separator.
      {"a=1&&b=2", false},  // Empty segment.
      {"a=1&a=2", false},   // Repeated key.
  };
  for (const Case& c : cases) {
    std::map<std::string, std::string> params;
    EXPECT_EQ(ParseQueryString(c.query, &params), c.ok) << c.query;
  }
  std::map<std::string, std::string> params;
  ASSERT_TRUE(ParseQueryString("n=25&fmt=json", &params));
  ASSERT_EQ(params.size(), 2u);
  EXPECT_EQ(params["n"], "25");
  EXPECT_EQ(params["fmt"], "json");
}

TEST(IntrospectionServerTest, TracezLimitParameter) {
  telemetry::timeline::SetCollectionEnabled(true);
  for (int i = 0; i < 5; ++i) {
    OTIF_SPAN("obs_test/tracez_span");
  }
  auto server = StartOrDie();
  const IntrospectionServer::Response r = server->Handle("/tracez?n=2");
  EXPECT_EQ(r.status, 200);
  EXPECT_NE(r.body.find("\"span_count\": 2"), std::string::npos) << r.body;
  // Range and grammar violations are 400s, not silent defaults.
  EXPECT_EQ(server->Handle("/tracez?n=0").status, 400);
  EXPECT_EQ(server->Handle("/tracez?n=10001").status, 400);
  EXPECT_EQ(server->Handle("/tracez?n=abc").status, 400);
  EXPECT_EQ(server->Handle("/tracez?n=5x").status, 400);
  EXPECT_EQ(server->Handle("/tracez?m=5").status, 400);
  EXPECT_EQ(server->Handle("/tracez?n=5&n=6").status, 400);
  telemetry::timeline::SetCollectionEnabled(false);
}

TEST(IntrospectionServerTest, ProfilezValidatesParameters) {
  auto server = StartOrDie();
  EXPECT_EQ(server->Handle("/profilez?seconds=0").status, 400);
  EXPECT_EQ(server->Handle("/profilez?seconds=-1").status, 400);
  EXPECT_EQ(server->Handle("/profilez?seconds=61").status, 400);
  EXPECT_EQ(server->Handle("/profilez?seconds=nan").status, 400);
  EXPECT_EQ(server->Handle("/profilez?seconds=2x").status, 400);
  EXPECT_EQ(server->Handle("/profilez?fmt=svg").status, 400);
  EXPECT_EQ(server->Handle("/profilez?bogus=1").status, 400);
}

TEST(IntrospectionServerTest, ProfilezServesAWindow) {
  auto server = StartOrDie();
  const IntrospectionServer::Response r =
      server->Handle("/profilez?seconds=0.05&fmt=json");
  // Sanitizer builds refuse to profile; the endpoint maps that to 503.
  if (r.status == 503) {
    EXPECT_NE(r.body.find("profiler unavailable"), std::string::npos);
    GTEST_SKIP() << "profiler unavailable: " << r.body;
  }
  EXPECT_EQ(r.status, 200);
  EXPECT_NE(r.content_type.find("application/json"), std::string::npos);
  EXPECT_NE(r.body.find("\"hz\""), std::string::npos) << r.body;
  EXPECT_NE(r.body.find("\"stacks\""), std::string::npos) << r.body;
  // Collapsed is the default rendering.
  const IntrospectionServer::Response collapsed =
      server->Handle("/profilez?seconds=0.05");
  EXPECT_EQ(collapsed.status, 200);
  EXPECT_NE(collapsed.content_type.find("text/plain"), std::string::npos);
}

TEST(IntrospectionServerTest, RequestLineEdgeCases) {
  auto server = StartOrDie();
  // Well-formed GET dispatches to the endpoint.
  EXPECT_EQ(server->HandleRequest("GET /healthz HTTP/1.1\r\n\r\n").status,
            200);
  EXPECT_EQ(server->HandleRequest("HEAD / HTTP/1.1\r\n\r\n").status, 200);
  // Known methods we do not serve: 405. Garbage methods: 400.
  EXPECT_EQ(server->HandleRequest("POST /metrics HTTP/1.1\r\n\r\n").status,
            405);
  EXPECT_EQ(server->HandleRequest("DELETE / HTTP/1.1\r\n\r\n").status, 405);
  EXPECT_EQ(server->HandleRequest("get / HTTP/1.1\r\n\r\n").status, 400);
  EXPECT_EQ(server->HandleRequest("\r\n\r\n").status, 400);
  EXPECT_EQ(server->HandleRequest("GET\r\n\r\n").status, 400);
  EXPECT_EQ(server->HandleRequest("").status, 400);
  // A request line that never terminates within the head cap is rejected,
  // not buffered further.
  const std::string oversized(IntrospectionServer::kMaxHeadBytes, 'A');
  const IntrospectionServer::Response r = server->HandleRequest(oversized);
  EXPECT_EQ(r.status, 400);
  EXPECT_NE(r.body.find("too large"), std::string::npos);
  // An oversized but line-terminated request still routes (long paths 404).
  const std::string long_path =
      "GET /" + std::string(IntrospectionServer::kMaxHeadBytes, 'b') +
      " HTTP/1.1\r\n\r\n";
  EXPECT_EQ(server->HandleRequest(long_path).status, 404);
}

TEST(IntrospectionServerTest, RequestsAreCountedPerEndpointAndStatus) {
  auto server = StartOrDie();
  telemetry::MetricsRegistry& registry = telemetry::MetricsRegistry::Global();
  const int64_t healthz_before =
      registry.GetCounter("obs.http.requests.healthz.200")->value();
  const int64_t other_before =
      registry.GetCounter("obs.http.requests.other.404")->value();
  const int64_t bad_before =
      registry.GetCounter("obs.http.requests.other.400")->value();
  const auto scrapes_before =
      registry.GetHistogram("obs.scrape_seconds")->count();
  server->HandleRequest("GET /healthz HTTP/1.1\r\n\r\n");
  server->HandleRequest("GET /unknown/path HTTP/1.1\r\n\r\n");
  server->HandleRequest("bogus\r\n\r\n");
  EXPECT_EQ(registry.GetCounter("obs.http.requests.healthz.200")->value(),
            healthz_before + 1);
  EXPECT_EQ(registry.GetCounter("obs.http.requests.other.404")->value(),
            other_before + 1);
  EXPECT_EQ(registry.GetCounter("obs.http.requests.other.400")->value(),
            bad_before + 1);
  EXPECT_EQ(registry.GetHistogram("obs.scrape_seconds")->count(),
            scrapes_before + 3);
  // The self-instrumentation shows up in the exposition like any metric.
  const IntrospectionServer::Response metrics = server->Handle("/metrics");
  EXPECT_NE(metrics.body.find("otif_obs_http_requests_healthz_200"),
            std::string::npos);
  EXPECT_NE(metrics.body.find("otif_obs_scrape_seconds"), std::string::npos);
}

TEST(IntrospectionServerTest, RealSocketRoundTrip) {
  auto server = StartOrDie();
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(server->port()));
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const std::string request =
      "GET /healthz HTTP/1.1\r\nHost: 127.0.0.1\r\n\r\n";
  ASSERT_EQ(::send(fd, request.data(), request.size(), 0),
            static_cast<ssize_t>(request.size()));
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::read(fd, buf, sizeof(buf))) > 0) response.append(buf, n);
  ::close(fd);
  EXPECT_EQ(response.rfind("HTTP/1.1 200 OK\r\n", 0), 0u) << response;
  EXPECT_NE(response.find("Content-Length: "), std::string::npos);
  EXPECT_NE(response.find("Connection: close"), std::string::npos);
  EXPECT_NE(response.find("\r\n\r\n"), std::string::npos);
}

// The TSan satellite: scrapers hammer every endpoint while writer threads
// mutate the telemetry registry and the progress counters. Correctness here
// is "no data race, no crash, always a well-formed response".
TEST(IntrospectionServerTest, ConcurrentScrapesRaceTelemetryUpdates) {
  ScopedProgress scoped;
  auto server = StartOrDie();
  telemetry::Counter* counter =
      telemetry::MetricsRegistry::Global().GetCounter("obs_test.race_counter");
  telemetry::Histogram* hist = telemetry::MetricsRegistry::Global()
      .GetHistogram("obs_test.race_hist", {0.5, 1.0});
  RunProgress::Global().BeginRun("race_unit", {1000, 1000});

  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 2; ++t) {
    writers.emplace_back([&, t] {
      int i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        counter->Add(1);
        hist->Record((i % 3) * 0.4);
        RunProgress::Global().OnFramesCommitted(t, 1);
        ++i;
      }
    });
  }
  std::vector<std::thread> scrapers;
  for (int t = 0; t < 4; ++t) {
    scrapers.emplace_back([&, t] {
      const char* paths[] = {"/metrics", "/statusz", "/healthz", "/tracez"};
      for (int i = 0; i < 50; ++i) {
        const IntrospectionServer::Response r =
            server->Handle(paths[(t + i) % 4]);
        EXPECT_TRUE(r.status == 200 || r.status == 503);
        EXPECT_FALSE(r.body.empty());
      }
    });
  }
  for (std::thread& t : scrapers) t.join();
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : writers) t.join();
}

/// Exact equality across the observables the executor tests also compare:
/// the introspection server must not change a single bit of any run.
void ExpectSameResult(const core::PipelineResult& a,
                      const core::PipelineResult& b, size_t clip) {
  EXPECT_EQ(a.frames_processed, b.frames_processed) << "clip " << clip;
  EXPECT_EQ(a.detections_kept, b.detections_kept) << "clip " << clip;
  ASSERT_EQ(a.tracks.size(), b.tracks.size()) << "clip " << clip;
  for (size_t t = 0; t < a.tracks.size(); ++t) {
    EXPECT_EQ(a.tracks[t].id, b.tracks[t].id);
    ASSERT_EQ(a.tracks[t].detections.size(), b.tracks[t].detections.size());
    for (size_t d = 0; d < a.tracks[t].detections.size(); ++d) {
      const track::Detection& da = a.tracks[t].detections[d];
      const track::Detection& db = b.tracks[t].detections[d];
      EXPECT_EQ(da.frame, db.frame);
      EXPECT_EQ(da.box.cx, db.box.cx);
      EXPECT_EQ(da.box.cy, db.box.cy);
      EXPECT_EQ(da.box.w, db.box.w);
      EXPECT_EQ(da.box.h, db.box.h);
      EXPECT_EQ(da.confidence, db.confidence);
    }
  }
}

TEST(IntrospectionServerTest, RunsAreBitIdenticalWithServerOnOrOff) {
  std::vector<sim::Clip> clips;
  const sim::DatasetSpec spec = sim::MakeDataset(sim::DatasetId::kSynthetic);
  for (int c = 0; c < 2; ++c) {
    clips.push_back(sim::SimulateClip(spec, sim::ClipSeed(spec, 1, c), 60));
  }
  core::PipelineConfig config;
  config.tracker = core::TrackerKind::kSort;
  config.frame_batch = 4;

  // Reference: server down, progress off.
  SetProgressEnabled(false);
  ThreadPool::SetDefaultThreads(4);
  core::StreamingExecutor off_executor(config, nullptr,
                                       core::StreamingOptions{});
  StatusOr<core::StreamingRunReport> off = off_executor.Run(clips);
  ASSERT_TRUE(off.ok()) << off.status().ToString();

  // Same run with the server scraping and progress armed throughout.
  {
    ScopedProgress scoped;
    auto server = StartOrDie();
    std::atomic<bool> stop{false};
    std::thread scraper([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        server->Handle("/metrics");
        server->Handle("/statusz");
        server->Handle("/healthz");
      }
    });
    core::StreamingExecutor on_executor(config, nullptr,
                                        core::StreamingOptions{});
    StatusOr<core::StreamingRunReport> on = on_executor.Run(clips);
    stop.store(true, std::memory_order_relaxed);
    scraper.join();
    ASSERT_TRUE(on.ok()) << on.status().ToString();
    ASSERT_EQ(on->results.size(), off->results.size());
    for (size_t c = 0; c < off->results.size(); ++c) {
      ExpectSameResult(off->results[c], on->results[c], c);
    }
  }
  ThreadPool::SetDefaultThreads(1);
}

}  // namespace
}  // namespace otif::obs
