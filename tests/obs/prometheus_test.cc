// Golden-file validation of the Prometheus text exposition renderer: a
// hand-built snapshot must serialize to exactly the expected exposition
// (sanitized names, cumulative histogram buckets, spans as summaries).

#include "obs/prometheus.h"

#include <gtest/gtest.h>

#include <string>

#include "util/telemetry.h"

namespace otif::obs {
namespace {

TEST(PrometheusTest, EmptySnapshotRendersNothing) {
  telemetry::TelemetrySnapshot snapshot;
  EXPECT_EQ(ToPrometheusText(snapshot), "");
}

TEST(PrometheusTest, GoldenExposition) {
  telemetry::TelemetrySnapshot snapshot;
  snapshot.counters.push_back({"pipeline.runs", 3});
  snapshot.gauges.push_back({"executor.channel/decode.depth", 2.5});

  telemetry::HistogramSample hist;
  hist.name = "stage/detect.batch";
  hist.bounds = {1.0, 4.0};
  hist.buckets = {2, 3, 1};  // Last entry is the overflow bucket.
  hist.count = 6;
  hist.sum = 13.5;
  snapshot.histograms.push_back(hist);

  telemetry::SpanSample span;
  span.name = "harness/prepare";
  span.count = 2;
  span.total_seconds = 0.25;
  snapshot.spans.push_back(span);

  const std::string expected =
      "# TYPE otif_pipeline_runs counter\n"
      "otif_pipeline_runs 3\n"
      "# TYPE otif_executor_channel_decode_depth gauge\n"
      "otif_executor_channel_decode_depth 2.5\n"
      "# TYPE otif_stage_detect_batch histogram\n"
      "otif_stage_detect_batch_bucket{le=\"1\"} 2\n"
      "otif_stage_detect_batch_bucket{le=\"4\"} 5\n"  // Cumulative: 2 + 3.
      "otif_stage_detect_batch_bucket{le=\"+Inf\"} 6\n"
      "otif_stage_detect_batch_sum 13.5\n"
      "otif_stage_detect_batch_count 6\n"
      "# TYPE otif_harness_prepare summary\n"
      "otif_harness_prepare_sum 0.25\n"
      "otif_harness_prepare_count 2\n";
  EXPECT_EQ(ToPrometheusText(snapshot), expected);
}

TEST(PrometheusTest, TinyBoundsUseScientificNotation) {
  telemetry::HistogramSample hist;
  hist.name = "lat";
  hist.bounds = {1e-06};
  hist.buckets = {1, 0};
  hist.count = 1;
  hist.sum = 5e-07;
  telemetry::TelemetrySnapshot snapshot;
  snapshot.histograms.push_back(hist);
  const std::string text = ToPrometheusText(snapshot);
  EXPECT_NE(text.find("otif_lat_bucket{le=\"1e-06\"} 1"), std::string::npos)
      << text;
  EXPECT_NE(text.find("otif_lat_sum 5e-07"), std::string::npos) << text;
}

TEST(PrometheusTest, ValuesRoundTripThroughShortestForm) {
  // One third has no short decimal form; the renderer must fall back to a
  // representation that parses back to the identical double.
  const double third = 1.0 / 3.0;
  telemetry::TelemetrySnapshot snapshot;
  snapshot.gauges.push_back({"ratio", third});
  const std::string text = ToPrometheusText(snapshot);
  const size_t space = text.rfind(' ');
  ASSERT_NE(space, std::string::npos);
  const std::string rendered = text.substr(space + 1, text.size() - space - 2);
  EXPECT_EQ(std::stod(rendered), third) << "rendered as \"" << rendered <<'"';
}

TEST(PrometheusTest, RendersRealRegistrySnapshot) {
  // End-to-end against a live registry: registration-time sanitization and
  // the renderer agree on names, and every section type appears.
  telemetry::MetricsRegistry registry;
  registry.GetCounter("prom.test/events")->Add(7);
  registry.GetGauge("prom.test/level")->Set(1.5);
  registry.GetHistogram("prom.test/lat", {0.5, 1.0})->Record(0.75);
  const std::string text = ToPrometheusText(registry.Snapshot());
  EXPECT_NE(text.find("# TYPE otif_prom_test_events counter\n"
                      "otif_prom_test_events 7\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("otif_prom_test_level 1.5"), std::string::npos) << text;
  EXPECT_NE(text.find("otif_prom_test_lat_bucket{le=\"+Inf\"} 1"),
            std::string::npos)
      << text;
}

}  // namespace
}  // namespace otif::obs
