// RunProgress registry semantics. RunProgress::Global() is a process-wide
// singleton, so every test here starts its own run generation and restores
// the enabled flag + phase on exit — tests stay order-independent by
// asserting on the generation they created, never on absolute state.

#include "obs/run_progress.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

namespace otif::obs {
namespace {

/// Arms progress recording for a test body and restores the previous state
/// (and a clean "idle" phase) on exit.
class ScopedProgress {
 public:
  ScopedProgress() : previous_(ProgressEnabled()) { SetProgressEnabled(true); }
  ~ScopedProgress() {
    RunProgress::Global().EndRun();
    RunProgress::Global().SetPhase("idle");
    SetProgressEnabled(previous_);
  }

 private:
  const bool previous_;
};

TEST(RunProgressTest, TracksPerClipCommits) {
  ScopedProgress scoped;
  RunProgress& progress = RunProgress::Global();
  progress.BeginRun("unit", {10, 20});
  progress.OnFramesCommitted(0, 4);
  progress.OnFramesCommitted(1, 20);

  ProgressSnapshot snap = progress.Snapshot();
  EXPECT_EQ(snap.run_label, "unit");
  EXPECT_TRUE(snap.run_in_flight);
  EXPECT_EQ(snap.frames_total, 30);
  EXPECT_EQ(snap.frames_committed, 24);
  ASSERT_EQ(snap.clips.size(), 2u);
  EXPECT_EQ(snap.clips[0].clip, 0);
  EXPECT_EQ(snap.clips[0].committed, 4);
  EXPECT_EQ(snap.clips[0].total, 10);
  EXPECT_EQ(snap.clips[1].committed, 20);
  EXPECT_EQ(snap.clips_done, 1);  // Clip 1 reached its total.
  EXPECT_GE(snap.seconds_since_last_commit, 0.0);
  EXPECT_GE(snap.run_uptime_seconds, 0.0);
  // Separate clock reads microseconds apart: only sign is guaranteed when
  // the run began right at process start (as in this test binary).
  EXPECT_GE(snap.process_uptime_seconds, 0.0);

  progress.EndRun();
  EXPECT_FALSE(progress.Snapshot().run_in_flight);
}

TEST(RunProgressTest, UnattributedAndOutOfRangeClipsCountTowardRunTotal) {
  ScopedProgress scoped;
  RunProgress& progress = RunProgress::Global();
  progress.BeginRun("unattributed", {5});
  progress.OnFramesCommitted(-1, 3);  // Serial path with no clip context.
  progress.OnFramesCommitted(7, 2);   // Out of range: run total only.
  ProgressSnapshot snap = progress.Snapshot();
  EXPECT_EQ(snap.frames_committed, 5);
  ASSERT_EQ(snap.clips.size(), 1u);
  EXPECT_EQ(snap.clips[0].committed, 0);
  EXPECT_GE(snap.seconds_since_last_commit, 0.0);  // Watchdog still fed.
}

TEST(RunProgressTest, SeqAdvancesPerRun) {
  ScopedProgress scoped;
  RunProgress& progress = RunProgress::Global();
  progress.BeginRun("first", {});
  const int64_t seq = progress.Snapshot().run_seq;
  progress.EndRun();
  progress.BeginRun("second", {});
  EXPECT_EQ(progress.Snapshot().run_seq, seq + 1);
  EXPECT_EQ(progress.Snapshot().run_label, "second");
}

TEST(RunProgressTest, PhaseOverridesSurviveInnerRuns) {
  ScopedProgress scoped;
  RunProgress& progress = RunProgress::Global();
  progress.SetPhase("idle");
  progress.BeginRun("auto_phase", {});
  EXPECT_EQ(progress.Snapshot().phase, "running");
  progress.EndRun();
  EXPECT_EQ(progress.Snapshot().phase, "idle");

  // A harness override ("prepare") spans many inner executor runs and must
  // not be clobbered by their BeginRun/EndRun.
  progress.SetPhase("prepare");
  progress.BeginRun("inner", {});
  EXPECT_EQ(progress.Snapshot().phase, "prepare");
  progress.EndRun();
  EXPECT_EQ(progress.Snapshot().phase, "prepare");
}

TEST(RunProgressTest, WatchdogIdleIsNegativeAndBeginRunAnchors) {
  ScopedProgress scoped;
  RunProgress& progress = RunProgress::Global();
  progress.EndRun();
  EXPECT_LT(progress.SecondsSinceRunAdvanced(), 0.0);  // Idle: healthy.

  progress.BeginRun("watchdog", {1});
  // No commit yet: the watchdog ages from BeginRun, not from -inf.
  const double since_begin = progress.SecondsSinceRunAdvanced();
  EXPECT_GE(since_begin, 0.0);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_GT(progress.SecondsSinceRunAdvanced(), since_begin);
  progress.OnFramesCommitted(0, 1);
  EXPECT_LT(progress.SecondsSinceRunAdvanced(), since_begin + 0.005);
  progress.EndRun();
  EXPECT_LT(progress.SecondsSinceRunAdvanced(), 0.0);
}

TEST(RunProgressTest, DisabledMethodsAreNoOps) {
  const bool previous = ProgressEnabled();
  SetProgressEnabled(false);
  RunProgress& progress = RunProgress::Global();
  const ProgressSnapshot before = progress.Snapshot();
  progress.BeginRun("should_not_register", {100});
  progress.OnFramesCommitted(0, 50);
  progress.SetPhase("should_not_register");
  const ProgressSnapshot after = progress.Snapshot();
  EXPECT_EQ(after.run_seq, before.run_seq);
  EXPECT_EQ(after.run_label, before.run_label);
  EXPECT_EQ(after.frames_committed, before.frames_committed);
  EXPECT_EQ(after.phase, before.phase);
  SetProgressEnabled(previous);
}

TEST(RunProgressTest, ConcurrentCommitsLoseNothing) {
  ScopedProgress scoped;
  RunProgress& progress = RunProgress::Global();
  constexpr int kThreads = 4;
  constexpr int kCommitsPerThread = 1000;
  progress.BeginRun("concurrent", std::vector<int64_t>(kThreads, 1000));
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kCommitsPerThread; ++i) {
        progress.OnFramesCommitted(t, 1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  ProgressSnapshot snap = progress.Snapshot();
  EXPECT_EQ(snap.frames_committed, kThreads * kCommitsPerThread);
  for (const ClipProgressSample& clip : snap.clips) {
    EXPECT_EQ(clip.committed, kCommitsPerThread);
  }
  EXPECT_EQ(snap.clips_done, kThreads);
}

TEST(RunProgressTest, QuarantinedClipsSurfaceInSnapshot) {
  ScopedProgress scoped;
  RunProgress& progress = RunProgress::Global();
  progress.BeginRun("quarantine", {10, 10, 10});
  EXPECT_TRUE(progress.Snapshot().quarantined.empty());

  progress.MarkClipQuarantined(1, "IoError: injected fault");
  progress.MarkClipQuarantined(2, "IoError: another fault");
  ProgressSnapshot snap = progress.Snapshot();
  ASSERT_EQ(snap.quarantined.size(), 2u);
  EXPECT_EQ(snap.quarantined[0].clip, 1);
  EXPECT_EQ(snap.quarantined[0].reason, "IoError: injected fault");
  EXPECT_EQ(snap.quarantined[1].clip, 2);

  // A new run generation starts with a clean quarantine list.
  progress.BeginRun("next", {10});
  EXPECT_TRUE(progress.Snapshot().quarantined.empty());
}

TEST(RunProgressTest, QuarantineIsNoOpWhenDisabledOrNoRun) {
  {
    ScopedProgress scoped;
    RunProgress& progress = RunProgress::Global();
    progress.BeginRun("gate", {10});
    const bool previous = ProgressEnabled();
    SetProgressEnabled(false);
    progress.MarkClipQuarantined(0, "dropped");
    SetProgressEnabled(previous);
    EXPECT_TRUE(progress.Snapshot().quarantined.empty());
  }
}

}  // namespace
}  // namespace otif::obs
