// Sampling CPU profiler tests: the pure renderers (collapsed stacks, JSON,
// inclusive top-frames) over hand-built profiles, a live Start/Stop window
// over a known busy loop (symbolization must find the loop; stage and clip
// attribution must join in), option validation, and the bit-identity
// contract — a streaming run with the profiler sampling must match the
// profiler-off run exactly. Live-sampling tests self-skip under sanitizers
// (the profiler refuses to start there by design).

#include "obs/profiler.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "core/executor/streaming_executor.h"
#include "core/pipeline.h"
#include "sim/dataset.h"
#include "util/status.h"
#include "util/telemetry.h"
#include "util/thread_pool.h"
#include "util/trace.h"
#include "util/trace_timeline.h"

// The busy loop the live tests profile. extern "C" + noinline so the frame
// survives optimization with an unmangled name dladdr can resolve through
// the -rdynamic dynamic symbol table.
extern "C" __attribute__((noinline)) double OtifProfilerTestBusyLoop(
    int64_t millis) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(millis);
  double x = 1.0;
  while (std::chrono::steady_clock::now() < deadline) {
    for (int i = 0; i < 4096; ++i) x = x * 1.0000001 + 1e-9;
  }
  // Observable result so the arithmetic cannot be optimized away.
  return x;
}

namespace otif::obs {
namespace {

Profile MakeTwoStackProfile() {
  Profile p;
  p.hz = 97;
  p.duration_seconds = 2.0;
  p.samples = 7;
  p.dropped = 1;
  p.signal_overhead_seconds = 0.001;
  ProfileStack hot;
  hot.stage = "stage/detect";
  hot.clip = 3;
  hot.frames = {"main", "Run", "GemmBias"};
  hot.count = 5;
  ProfileStack cold;
  cold.stage = "";
  cold.clip = -1;
  cold.frames = {"main", "Idle"};
  cold.count = 2;
  p.stacks = {hot, cold};
  return p;
}

TEST(ProfilerRenderTest, CollapsedWithoutContext) {
  const std::string collapsed = ToCollapsed(MakeTwoStackProfile(), false);
  EXPECT_EQ(collapsed, "main;Run;GemmBias 5\nmain;Idle 2\n");
}

TEST(ProfilerRenderTest, CollapsedWithContextPrefixesAttribution) {
  const std::string collapsed = ToCollapsed(MakeTwoStackProfile(), true);
  EXPECT_EQ(collapsed,
            "stage/detect;clip3;main;Run;GemmBias 5\n"
            "(no_stage);(no_clip);main;Idle 2\n");
}

TEST(ProfilerRenderTest, JsonCarriesCountsAndStacks) {
  const std::string json = ProfileToJson(MakeTwoStackProfile());
  EXPECT_NE(json.find("\"hz\": 97"), std::string::npos) << json;
  EXPECT_NE(json.find("\"samples\": 7"), std::string::npos) << json;
  EXPECT_NE(json.find("\"dropped\": 1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"signal_overhead_seconds\""), std::string::npos);
  EXPECT_NE(json.find("\"stage\": \"stage/detect\""), std::string::npos);
  EXPECT_NE(json.find("\"GemmBias\""), std::string::npos);
  EXPECT_NE(json.find("\"clip\": -1"), std::string::npos);
}

TEST(ProfilerRenderTest, TopFramesAreInclusiveAndDeduplicated) {
  Profile p;
  p.samples = 4;
  // "main" appears twice in one stack (recursion): it must count once per
  // sample, not once per frame.
  ProfileStack recursive;
  recursive.frames = {"main", "main", "Leaf"};
  recursive.count = 3;
  ProfileStack other;
  other.frames = {"main", "Other"};
  other.count = 1;
  p.stacks = {recursive, other};
  const auto top = TopFrames(p, 10);
  ASSERT_GE(top.size(), 3u);
  EXPECT_EQ(top[0].first, "main");
  EXPECT_EQ(top[0].second, 4);  // Inclusive: on every sample's stack.
  // Truncation honors top_k.
  EXPECT_EQ(TopFrames(p, 1).size(), 1u);
}

TEST(ProfilerTest, RejectsBadOptions) {
  ProfilerOptions options;
  options.hz = 0;
  EXPECT_FALSE(CpuProfiler::Global().Start(options).ok());
  options.hz = 100000;
  EXPECT_FALSE(CpuProfiler::Global().Start(options).ok());
}

TEST(ProfilerTest, StopWithoutStartFails) {
  if (CpuProfiler::Global().running()) GTEST_SKIP() << "window in flight";
  EXPECT_FALSE(CpuProfiler::Global().Stop().ok());
}

/// Starts the profiler or skips the test where it cannot run (sanitizer
/// builds refuse by design).
bool StartOrSkip(const ProfilerOptions& options) {
  const Status status = CpuProfiler::Global().Start(options);
  if (status.ok()) return true;
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition)
      << status.ToString();
  return false;
}

TEST(ProfilerTest, CapturesAndSymbolizesBusyLoop) {
  ProfilerOptions options;
  options.hz = 997;  // Dense sampling keeps the busy window short.
  if (!StartOrSkip(options)) GTEST_SKIP() << "profiler unavailable";
  const double x = OtifProfilerTestBusyLoop(400);
  StatusOr<Profile> profile = CpuProfiler::Global().Stop();
  ASSERT_TRUE(profile.ok()) << profile.status().ToString();
  EXPECT_GT(x, 0.0);
  EXPECT_FALSE(CpuProfiler::Global().running());
  EXPECT_EQ(profile->hz, 997);
  EXPECT_GT(profile->duration_seconds, 0.0);
  // ~400ms of CPU at 997 Hz is ~400 samples; dozens even on a loaded CI
  // machine. The busy loop must be on a captured, symbolized stack.
  EXPECT_GE(profile->samples, 20);
  int64_t busy_samples = 0;
  for (const ProfileStack& stack : profile->stacks) {
    for (const std::string& frame : stack.frames) {
      if (frame == "OtifProfilerTestBusyLoop") {
        busy_samples += stack.count;
        break;
      }
    }
  }
  EXPECT_GT(busy_samples, 0) << ToCollapsed(*profile, true);
  // The flat view agrees.
  bool in_top = false;
  for (const auto& [symbol, count] : TopFrames(*profile, 10)) {
    in_top = in_top || symbol == "OtifProfilerTestBusyLoop";
  }
  EXPECT_TRUE(in_top);
  // Self-metrics published.
  const telemetry::TelemetrySnapshot snapshot = telemetry::CaptureSnapshot();
  const telemetry::CounterSample* samples =
      telemetry::FindCounter(snapshot, "obs.profiler.samples");
  ASSERT_NE(samples, nullptr);
  EXPECT_GT(samples->value, 0);
}

TEST(ProfilerTest, AttributesStageAndClip) {
  ProfilerOptions options;
  options.hz = 997;
  if (!StartOrSkip(options)) GTEST_SKIP() << "profiler unavailable";
  double x = 0.0;
  {
    telemetry::timeline::ScopedContext ctx({.clip = 7});
    OTIF_SPAN("stage/profiler_unit");
    x = OtifProfilerTestBusyLoop(400);
  }
  StatusOr<Profile> profile = CpuProfiler::Global().Stop();
  ASSERT_TRUE(profile.ok()) << profile.status().ToString();
  EXPECT_GT(x, 0.0);
  int64_t attributed = 0;
  for (const ProfileStack& stack : profile->stacks) {
    if (stack.stage == "stage/profiler_unit" && stack.clip == 7) {
      attributed += stack.count;
    }
  }
  EXPECT_GT(attributed, 0) << ToCollapsed(*profile, true);
  // The collapsed form carries the attribution join as a prefix.
  EXPECT_NE(ToCollapsed(*profile, true).find("stage/profiler_unit;clip7;"),
            std::string::npos);
}

TEST(ProfilerTest, SecondStartWhileRunningFails) {
  if (!StartOrSkip({})) GTEST_SKIP() << "profiler unavailable";
  EXPECT_TRUE(CpuProfiler::Global().running());
  EXPECT_FALSE(CpuProfiler::Global().Start().ok());
  StatusOr<Profile> profile = CpuProfiler::Global().Stop();
  EXPECT_TRUE(profile.ok()) << profile.status().ToString();
}

TEST(ProfilerTest, ProfileForRunsOneBoundedWindow) {
  const StatusOr<Profile> profile =
      CpuProfiler::Global().ProfileFor(0.05);
  if (!profile.ok()) {
    EXPECT_EQ(profile.status().code(), StatusCode::kFailedPrecondition);
    GTEST_SKIP() << "profiler unavailable";
  }
  EXPECT_GE(profile->duration_seconds, 0.05);
  EXPECT_FALSE(CpuProfiler::Global().running());
}

/// Exact equality over the same observables the executor tests compare.
void ExpectSameResult(const core::PipelineResult& a,
                      const core::PipelineResult& b, size_t clip) {
  EXPECT_EQ(a.frames_processed, b.frames_processed) << "clip " << clip;
  EXPECT_EQ(a.detections_kept, b.detections_kept) << "clip " << clip;
  ASSERT_EQ(a.tracks.size(), b.tracks.size()) << "clip " << clip;
  for (size_t t = 0; t < a.tracks.size(); ++t) {
    EXPECT_EQ(a.tracks[t].id, b.tracks[t].id);
    ASSERT_EQ(a.tracks[t].detections.size(), b.tracks[t].detections.size());
    for (size_t d = 0; d < a.tracks[t].detections.size(); ++d) {
      const track::Detection& da = a.tracks[t].detections[d];
      const track::Detection& db = b.tracks[t].detections[d];
      EXPECT_EQ(da.frame, db.frame);
      EXPECT_EQ(da.box.cx, db.box.cx);
      EXPECT_EQ(da.box.cy, db.box.cy);
      EXPECT_EQ(da.box.w, db.box.w);
      EXPECT_EQ(da.box.h, db.box.h);
      EXPECT_EQ(da.confidence, db.confidence);
    }
  }
}

// The bit-identity acceptance gate: sampling must never feed back into
// pipeline state. SA_RESTART keeps interrupted syscalls transparent and the
// handler only reads thread-locals and writes its own ring, so a streaming
// run under full-rate sampling must equal the unprofiled run bit for bit.
TEST(ProfilerTest, RunsAreBitIdenticalWithProfilerOnOrOff) {
  std::vector<sim::Clip> clips;
  const sim::DatasetSpec spec = sim::MakeDataset(sim::DatasetId::kSynthetic);
  for (int c = 0; c < 2; ++c) {
    clips.push_back(sim::SimulateClip(spec, sim::ClipSeed(spec, 1, c), 60));
  }
  core::PipelineConfig config;
  config.tracker = core::TrackerKind::kSort;
  config.frame_batch = 4;
  ThreadPool::SetDefaultThreads(4);

  // Reference: profiler off.
  core::StreamingExecutor off_executor(config, nullptr,
                                       core::StreamingOptions{});
  StatusOr<core::StreamingRunReport> off = off_executor.Run(clips);
  ASSERT_TRUE(off.ok()) << off.status().ToString();

  // Same run sampled at full rate.
  ProfilerOptions options;
  options.hz = 997;
  const bool profiling = StartOrSkip(options);
  core::StreamingExecutor on_executor(config, nullptr,
                                      core::StreamingOptions{});
  StatusOr<core::StreamingRunReport> on = on_executor.Run(clips);
  if (profiling) {
    StatusOr<Profile> profile = CpuProfiler::Global().Stop();
    EXPECT_TRUE(profile.ok()) << profile.status().ToString();
  }
  ASSERT_TRUE(on.ok()) << on.status().ToString();
  ASSERT_EQ(on->results.size(), off->results.size());
  for (size_t c = 0; c < off->results.size(); ++c) {
    ExpectSameResult(off->results[c], on->results[c], c);
  }
  ThreadPool::SetDefaultThreads(1);
  if (!profiling) GTEST_SKIP() << "compared without sampling (sanitizer)";
}

}  // namespace
}  // namespace otif::obs
