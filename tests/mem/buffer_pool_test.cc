#include "mem/buffer_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "nn/arena.h"
#include "util/fault_injection.h"
#include "util/telemetry.h"

namespace otif::mem {
namespace {

TEST(BufferPoolTest, AcquireRoundsUpToSizeClass) {
  BufferPool pool;
  PooledBuffer a = pool.Acquire(1);
  EXPECT_EQ(a.capacity(), 256u);  // Min class.
  PooledBuffer b = pool.Acquire(256);
  EXPECT_EQ(b.capacity(), 256u);  // Exact boundary stays in class.
  PooledBuffer c = pool.Acquire(257);
  EXPECT_EQ(c.capacity(), 512u);  // Next class.
  PooledBuffer d = pool.Acquire(100000);
  EXPECT_EQ(d.capacity(), size_t{1} << 17);  // 131072.
}

TEST(BufferPoolTest, AcquireZeroReturnsNullHandle) {
  BufferPool pool;
  PooledBuffer b = pool.Acquire(0);
  EXPECT_FALSE(static_cast<bool>(b));
  EXPECT_EQ(b.data(), nullptr);
  EXPECT_EQ(b.capacity(), 0u);
  EXPECT_EQ(pool.GetStats().misses, 0);
}

TEST(BufferPoolTest, ReleaseThenAcquireReusesBlock) {
  BufferPool pool;
  float* first = nullptr;
  {
    PooledBuffer b = pool.Acquire(1000);
    first = b.data();
    b.data()[0] = 42.0f;
  }  // Released to the freelist.
  EXPECT_EQ(pool.GetStats().misses, 1);
  EXPECT_EQ(pool.GetStats().hits, 0);
  PooledBuffer again = pool.Acquire(900);  // Same class (1024).
  EXPECT_EQ(again.data(), first);          // LIFO reuse, same storage.
  EXPECT_EQ(pool.GetStats().hits, 1);
  EXPECT_EQ(pool.GetStats().misses, 1);
}

TEST(BufferPoolTest, CopiedHandlesShareBlockUntilLastDrop) {
  BufferPool pool;
  PooledBuffer a = pool.Acquire(512);
  EXPECT_TRUE(a.unique());
  PooledBuffer b = a;
  EXPECT_EQ(a.data(), b.data());
  EXPECT_FALSE(a.unique());
  EXPECT_FALSE(b.unique());
  float* p = a.data();
  a.reset();
  // b still owns the block: a new acquire must not steal it.
  PooledBuffer c = pool.Acquire(512);
  EXPECT_NE(c.data(), p);
  b.reset();
  PooledBuffer d = pool.Acquire(512);  // Now the block is recyclable.
  EXPECT_EQ(d.data(), p);
}

TEST(BufferPoolTest, MoveTransfersOwnershipWithoutRefcountChurn) {
  BufferPool pool;
  PooledBuffer a = pool.Acquire(256);
  float* p = a.data();
  PooledBuffer b = std::move(a);
  EXPECT_EQ(b.data(), p);
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(b.unique());
  PooledBuffer c;
  c = std::move(b);
  EXPECT_EQ(c.data(), p);
  EXPECT_TRUE(c.unique());
}

TEST(BufferPoolTest, BytesInFlightAndRetainedAccounting) {
  BufferPool pool;
  EXPECT_EQ(pool.GetStats().bytes_in_flight, 0);
  {
    PooledBuffer a = pool.Acquire(256);  // 1 KiB class.
    EXPECT_EQ(pool.GetStats().bytes_in_flight, 1024);
    EXPECT_EQ(pool.GetStats().bytes_retained, 0);
  }
  EXPECT_EQ(pool.GetStats().bytes_in_flight, 0);
  EXPECT_EQ(pool.GetStats().bytes_retained, 1024);
  pool.TrimAll();
  EXPECT_EQ(pool.GetStats().bytes_retained, 0);
}

TEST(BufferPoolTest, RetentionIsCappedByBytesPerClass) {
  BufferPool pool;
  // Hold more bytes of one class than the 32 MiB retention cap, then drop
  // them all: the freelist must cap (excess blocks are freed, not parked),
  // and in-flight must return to zero. 4 MiB blocks -> the cap admits 8.
  constexpr size_t kBlockFloats = size_t{1} << 20;  // 4 MiB per block.
  constexpr int kBlocks = 12;
  std::vector<PooledBuffer> live;
  live.reserve(kBlocks);
  for (int i = 0; i < kBlocks; ++i) live.push_back(pool.Acquire(kBlockFloats));
  EXPECT_EQ(pool.GetStats().bytes_in_flight,
            int64_t{kBlocks} * kBlockFloats * sizeof(float));
  live.clear();
  const BufferPool::Stats stats = pool.GetStats();
  EXPECT_EQ(stats.bytes_in_flight, 0);
  EXPECT_EQ(stats.bytes_retained, int64_t{32} << 20);
}

TEST(BufferPoolTest, OversizeClassStillParksAFewBlocks) {
  BufferPool pool;
  // A block bigger than the per-class byte cap must still park (two deep) so
  // repeated large acquires recycle instead of thrashing the heap.
  constexpr size_t kHugeFloats = size_t{1} << 24;  // 64 MiB per block.
  { PooledBuffer b = pool.Acquire(kHugeFloats); }
  EXPECT_EQ(pool.GetStats().bytes_retained, int64_t{64} << 20);
  PooledBuffer again = pool.Acquire(kHugeFloats);
  EXPECT_EQ(pool.GetStats().hits, 1);
}

TEST(BufferPoolTest, PublishTelemetryExportsGauges) {
  BufferPool pool;
  { PooledBuffer b = pool.Acquire(512); }
  PooledBuffer live = pool.Acquire(512);
  pool.PublishTelemetry();
  telemetry::TelemetrySnapshot snapshot =
      telemetry::MetricsRegistry::Global().Snapshot();
  const telemetry::GaugeSample* in_flight =
      telemetry::FindGauge(snapshot, "mem.pool.bytes_in_flight");
  ASSERT_NE(in_flight, nullptr);
  EXPECT_GT(in_flight->value, 0.0);
  EXPECT_NE(telemetry::FindGauge(snapshot, "mem.pool.hit_rate"), nullptr);
  EXPECT_NE(telemetry::FindGauge(snapshot, "mem.arena.bytes_reserved"),
            nullptr);
}

TEST(BufferPoolTest, ArenaChunkGrowthIsCounted) {
  const BufferPool::Stats before = BufferPool::Global().GetStats();
  // A fresh thread gets a fresh thread_local arena, so its first Alloc must
  // reserve a chunk and report it to the global pool.
  std::thread t([] {
    nn::ScratchArena& arena = nn::ScratchArena::ThreadLocal();
    nn::ScratchScope scope(arena);
    float* p = arena.Alloc(1024);
    p[0] = 1.0f;
  });
  t.join();
  const BufferPool::Stats after = BufferPool::Global().GetStats();
  EXPECT_GT(after.arena_allocs, before.arena_allocs);
  EXPECT_GT(after.arena_bytes_reserved, before.arena_bytes_reserved);
}

TEST(BufferPoolTest, SteadyStateLoopIsAllocationFree) {
  BufferPool pool;
  // Warm every size the loop uses, then assert zero misses afterwards.
  for (const size_t n : {100, 5000, 20000}) {
    PooledBuffer warm = pool.Acquire(n);
  }
  const int64_t warm_misses = pool.GetStats().misses;
  for (int iter = 0; iter < 100; ++iter) {
    for (const size_t n : {100, 5000, 20000}) {
      PooledBuffer b = pool.Acquire(n);
      b.data()[0] = static_cast<float>(iter);
    }
  }
  const BufferPool::Stats stats = pool.GetStats();
  EXPECT_EQ(stats.misses, warm_misses) << "steady-state loop allocated";
  EXPECT_EQ(stats.hits, 300);
  EXPECT_GE(stats.hit_rate(), 0.99);
}

// Concurrency: many threads acquiring, writing, sharing, and releasing
// buffers of overlapping size classes. Run under TSan via check.sh/ci.
TEST(BufferPoolTest, ConcurrentAcquireReleaseIsSafe) {
  BufferPool pool;
  constexpr int kThreads = 8;
  constexpr int kItersPerThread = 400;
  std::atomic<int64_t> checksum{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&pool, &checksum, t] {
      for (int i = 0; i < kItersPerThread; ++i) {
        const size_t n = 200 + static_cast<size_t>((t * 37 + i * 11) % 2000);
        PooledBuffer b = pool.Acquire(n);
        // Write the whole requested range: overlapping writes from two
        // threads on one block would be a TSan hit and a refcount bug.
        for (size_t k = 0; k < n; ++k) {
          b.data()[k] = static_cast<float>(t + 1);
        }
        checksum.fetch_add(static_cast<int64_t>(b.data()[n - 1]),
                           std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& th : threads) th.join();
  const BufferPool::Stats stats = pool.GetStats();
  EXPECT_EQ(stats.hits + stats.misses, kThreads * kItersPerThread);
  EXPECT_EQ(stats.bytes_in_flight, 0);
  EXPECT_GT(checksum.load(), 0);
}

// Cross-thread handoff: one thread fills a buffer, another reads it through
// a shared handle and drops the last reference. The release/acquire pair on
// the refcount must make the writes visible (TSan validates).
TEST(BufferPoolTest, ConcurrentSharedHandleHandoff) {
  BufferPool pool;
  for (int round = 0; round < 50; ++round) {
    PooledBuffer shared = pool.Acquire(1024);
    for (size_t i = 0; i < 1024; ++i) {
      shared.data()[i] = static_cast<float>(round);
    }
    PooledBuffer reader_handle = shared;
    std::thread reader([handle = std::move(reader_handle), round] {
      float sum = 0.0f;
      for (size_t i = 0; i < 1024; ++i) sum += handle.data()[i];
      EXPECT_EQ(sum, 1024.0f * static_cast<float>(round));
    });
    shared.reset();  // Race the reader's drop for the final release.
    reader.join();
  }
  EXPECT_EQ(pool.GetStats().bytes_in_flight, 0);
}

TEST(BufferPoolTest, InjectedDenyForcesHeapMissButValidBuffer) {
  // The "mem.acquire" deny fault skips the freelist: a warm pool still
  // allocates fresh blocks (a miss), but the returned buffer is fully
  // usable — allocation denial degrades stats, never correctness.
  BufferPool pool;
  { PooledBuffer warm = pool.Acquire(1000); }  // Park a block.
  ASSERT_TRUE(fault::ConfigureFaults("mem.acquire:deny:1:3").ok());
  PooledBuffer denied = pool.Acquire(900);  // Same class; freelist skipped.
  ASSERT_NE(denied.data(), nullptr);
  denied.data()[0] = 1.0f;
  EXPECT_EQ(pool.GetStats().hits, 0);
  EXPECT_EQ(pool.GetStats().misses, 2);

  fault::ClearFaults();
  denied.reset();
  PooledBuffer reused = pool.Acquire(900);  // Freelist works again.
  EXPECT_EQ(pool.GetStats().hits, 1);
}

}  // namespace
}  // namespace otif::mem
