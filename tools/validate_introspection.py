#!/usr/bin/env python3
"""Validates the live introspection endpoints of an in-flight run.

Usage: validate_introspection.py <port-file>

Runs against a bench launched with OTIF_METRICS_PORT=0 and
OTIF_METRICS_PORT_FILE=<port-file>; waits for the port file, then checks
against 127.0.0.1:<port>:

  - /metrics  is legal Prometheus 0.0.4 text exposition: every line is a
              `# TYPE` comment or a sample, names match the exposition
              grammar, histogram buckets are cumulative and agree with
              their `_count`.
  - /statusz  is JSON with the documented sections (phase, run, executor,
              pool) and per-clip `committed` counters that advance
              monotonically within one run generation (`run.seq`).
  - /healthz  answers throughout, and flips to 503 "stalled" during the
              induced post-run pause (the bench's OTIF_BENCH_STALL_SEC run,
              labeled "induced_stall", paired with a sub-second
              OTIF_STALL_SEC watchdog window).
  - /tracez   is JSON with `timeline_armed` true and a `spans` list
              (OTIF_METRICS_PORT arms timeline collection).

Exits non-zero with a diagnostic on the first violation.
"""

import http.client
import json
import re
import sys
import time


def die(message):
    print("ERROR:", message, file=sys.stderr)
    sys.exit(1)


def fetch(port, path, attempts=5, timeout=10):
    """GET with retry/backoff: the single-threaded serving loop can be
    briefly unreachable between accept()s (or blocked inside a /profilez
    window), so transient connection errors back off and retry instead of
    failing the whole validation."""
    delay = 0.05
    for attempt in range(attempts):
        conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
        try:
            conn.request("GET", path)
            resp = conn.getresponse()
            return (resp.status, resp.getheader("Content-Type", ""),
                    resp.read().decode())
        except (ConnectionError, TimeoutError, OSError) as error:
            if attempt == attempts - 1:
                die(f"GET {path} failed after {attempts} attempts: {error}")
            time.sleep(delay)
            delay = min(delay * 2, 1.0)
        finally:
            conn.close()


def wait_for_port(path, deadline_seconds=60.0):
    end = time.monotonic() + deadline_seconds
    while time.monotonic() < end:
        try:
            with open(path) as f:
                text = f.read().strip()
            if text:
                return int(text)
        except (FileNotFoundError, ValueError):
            pass
        time.sleep(0.02)
    die(f"port file {path} not written within {deadline_seconds}s")


NAME_RE = r"[a-zA-Z_:][a-zA-Z0-9_:]*"
SAMPLE_RE = re.compile(
    rf"^(?P<name>{NAME_RE})(?:\{{(?P<labels>[^}}]*)\}})? (?P<value>\S+)$")
TYPE_RE = re.compile(
    rf"^# TYPE (?P<name>{NAME_RE}) (?P<kind>counter|gauge|histogram|summary)$")


def validate_metrics(status, content_type, body):
    if status != 200:
        die(f"/metrics returned {status}")
    if "version=0.0.4" not in content_type:
        die(f"/metrics content type {content_type!r} lacks version=0.0.4")
    kinds = {}
    buckets = {}  # base name -> list of (le, cumulative count)
    counts = {}   # base name -> _count value
    samples = 0
    for line in body.splitlines():
        if not line:
            continue
        if line.startswith("#"):
            m = TYPE_RE.match(line)
            if not m:
                die(f"/metrics bad comment line: {line!r}")
            if m.group("name") in kinds:
                die(f"/metrics duplicate TYPE for {m.group('name')}")
            kinds[m.group("name")] = m.group("kind")
            continue
        m = SAMPLE_RE.match(line)
        if not m:
            die(f"/metrics bad sample line: {line!r}")
        samples += 1
        value = float(m.group("value"))  # Raises on garbage.
        name = m.group("name")
        if name.endswith("_bucket"):
            base = name[: -len("_bucket")]
            labels = m.group("labels") or ""
            lm = re.fullmatch(r'le="([^"]+)"', labels)
            if not lm:
                die(f"/metrics bucket without le label: {line!r}")
            buckets.setdefault(base, []).append((lm.group(1), value))
        elif name.endswith("_count"):
            counts[name[: -len("_count")]] = value
    if samples == 0:
        return 0, ["<any samples>"]  # Nothing registered yet: keep polling.
    for base, series in buckets.items():
        if kinds.get(base) != "histogram":
            die(f"/metrics buckets for non-histogram {base}")
        if series[-1][0] != "+Inf":
            die(f"/metrics {base} buckets do not end at +Inf")
        values = [v for _, v in series]
        if values != sorted(values):
            die(f"/metrics {base} buckets not cumulative: {values}")
        if base not in counts or counts[base] != values[-1]:
            die(f"/metrics {base} +Inf bucket disagrees with _count")
    missing = [name for name in ("otif_pipeline_frames", "otif_mem_pool_hits")
               if name not in kinds]
    return len(kinds), missing


def validate_statusz_schema(doc):
    for key in ("phase", "process_uptime_seconds", "run", "executor", "pool"):
        if key not in doc:
            die(f"/statusz missing key {key!r}: {sorted(doc)}")
    run = doc["run"]
    for key in ("label", "seq", "in_flight", "frames_committed",
                "frames_total", "clips_done", "clips", "quarantined"):
        if key not in run:
            die(f"/statusz run missing key {key!r}: {sorted(run)}")
    for clip in run["clips"]:
        for key in ("clip", "committed", "total"):
            if key not in clip:
                die(f"/statusz clip entry missing {key!r}: {clip}")
    for entry in run["quarantined"]:
        for key in ("clip", "reason"):
            if key not in entry:
                die(f"/statusz quarantined entry missing {key!r}: {entry}")
    for key in ("channels", "batchers"):
        if key not in doc["executor"]:
            die(f"/statusz executor missing {key!r}")
    for key in ("hits", "misses", "bytes_in_flight"):
        if key not in doc["pool"]:
            die(f"/statusz pool missing {key!r}")


def statusz(port):
    status, content_type, body = fetch(port, "/statusz")
    if status != 200:
        die(f"/statusz returned {status}")
    if "application/json" not in content_type:
        die(f"/statusz content type {content_type!r}")
    doc = json.loads(body)
    validate_statusz_schema(doc)
    return doc


def check_monotonic_commits(port, deadline_seconds=120.0):
    """Two scrapes of one run generation: commits must only grow."""
    end = time.monotonic() + deadline_seconds
    while time.monotonic() < end:
        first = statusz(port)
        if not first["run"]["in_flight"] or \
                first["run"]["label"] == "induced_stall":
            time.sleep(0.02)
            continue
        time.sleep(0.15)
        second = statusz(port)
        if second["run"]["seq"] != first["run"]["seq"]:
            continue  # Run ended between scrapes; catch the next one.
        if second["run"]["frames_committed"] < first["run"]["frames_committed"]:
            die("/statusz run frames_committed went backwards")
        before = {c["clip"]: c["committed"] for c in first["run"]["clips"]}
        for clip in second["run"]["clips"]:
            if clip["committed"] < before.get(clip["clip"], 0):
                die(f"/statusz clip {clip['clip']} committed went backwards")
        return first["run"]["seq"]
    die("never observed one run generation across two /statusz scrapes")


def await_stall(port, deadline_seconds=180.0):
    """The induced_stall run must trip the /healthz watchdog (503)."""
    end = time.monotonic() + deadline_seconds
    while time.monotonic() < end:
        doc = statusz(port)
        if doc["run"]["label"] == "induced_stall" and doc["run"]["in_flight"]:
            status, _, body = fetch(port, "/healthz")
            if status == 503 and "stalled" in body:
                return
        time.sleep(0.02)
    die("/healthz never reported stalled during the induced pause")


def main():
    if len(sys.argv) != 2:
        die(f"usage: {sys.argv[0]} <port-file>")
    port = wait_for_port(sys.argv[1])

    # Every scrape must be well-formed from the first poll; the expected
    # series only appear once the bench registers them, so poll for those.
    end = time.monotonic() + 60.0
    while True:
        series, missing = validate_metrics(*fetch(port, "/metrics"))
        if not missing:
            break
        if time.monotonic() > end:
            die(f"/metrics never exported expected series {missing}")
        time.sleep(0.05)

    status, _, body = fetch(port, "/healthz")
    if status not in (200, 503):
        die(f"/healthz returned {status}")
    json.loads(body)

    status, content_type, body = fetch(port, "/tracez")
    if status != 200 or "application/json" not in content_type:
        die(f"/tracez returned {status} ({content_type})")
    tracez = json.loads(body)
    if tracez.get("timeline_armed") is not True:
        die("/tracez reports timeline_armed false under OTIF_METRICS_PORT")
    if not isinstance(tracez.get("spans"), list):
        die("/tracez has no spans list")

    seq = check_monotonic_commits(port)
    await_stall(port)
    print(f"live introspection ok: {series} metric series, monotonic "
          f"commits in run seq {seq}, watchdog flipped to stalled")


if __name__ == "__main__":
    main()
