#!/usr/bin/env bash
# Chaos matrix: runs the streaming bench under every fault site x kind the
# injection layer instruments, at rates high enough to exercise the
# recovery paths (retry, quarantine, proxy degrade, allocation denial,
# stalled producers). Every run must exit 0 — the executor's contract is
# that injected faults are survived, not that they are avoided.
#
# Usage: tools/chaos_matrix.sh [build_dir] [clips] [frames_per_clip]
#
# Flight-recorder dumps (armed via OTIF_DUMP_ON_ERROR) land under
# <build_dir>/chaos_dumps/ so CI can upload them when a run fails.
#
# The executor channel sites deliberately run only the stall kind here: an
# injected mid-run channel *close* tears the pipeline down, which Run
# reports as a clean Internal error — a graceful-shutdown path covered by
# unit tests, not a recovery path this matrix asserts exit-0 on.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
CLIPS="${2:-6}"
FRAMES="${3:-120}"
BENCH="$BUILD_DIR/bench/bench_throughput"
DUMP_DIR="$BUILD_DIR/chaos_dumps"

if [[ ! -x "$BENCH" ]]; then
  echo "ERROR: $BENCH not built" >&2
  exit 2
fi
mkdir -p "$DUMP_DIR"

SPECS=(
  # Decoder site. The simulated streaming pipeline renders frames through
  # the rasterizer (decode is a modeled cost), so these specs verify that
  # an armed-but-unreached site never perturbs a run; the firing behavior
  # itself is covered by the codec unit tests.
  'decode.frame:error:0.02:11'
  'decode.frame:corrupt:0.1:12'
  'decode.frame:stall:0.05:13:ms=1'
  # Proxy invocation: persistent failure degrades to full-frame detection;
  # transient failure retries; stalls just slow the stage down.
  'proxy.invoke:error:1:21'
  'proxy.invoke:error:0.5:22'
  'proxy.invoke:stall:0.3:23:ms=2'
  # Detector invocation: persistent failure on one clip quarantines it;
  # transient failure retries to a bit-identical result.
  'detect.invoke:error:1:31:clip=0'
  'detect.invoke:error:0.5:32'
  'detect.invoke:stall:0.3:33:ms=2'
  # Executor channels and batchers: stalled producers exercise deadline
  # wave releases and backpressure under lag.
  'channel.proxy:stall:0.2:41:ms=1'
  'channel.detect:stall:0.2:42:ms=1'
  'channel.commit:stall:0.2:43:ms=1'
  'batcher.proxy.submit:stall:0.2:44:ms=1'
  'batcher.detect.submit:stall:0.2:45:ms=1'
  # Buffer pool: allocation denial forces heap misses, never failures.
  'mem.acquire:deny:0.5:51'
  # Everything at once.
  'decode.frame:corrupt:0.05:61,proxy.invoke:error:0.3:62,detect.invoke:error:0.3:63,channel.detect:stall:0.1:64:ms=1,mem.acquire:deny:0.3:65'
)

fail=0
for spec in "${SPECS[@]}"; do
  # One dump file per spec, named by the first site in the spec.
  tag="$(echo "$spec" | tr ':,=' '___' | cut -c1-60)"
  echo "== chaos: OTIF_FAULTS='$spec' =="
  if ! OTIF_LOG_LEVEL=warning OTIF_FAULTS="$spec" \
      OTIF_DUMP_ON_ERROR=1 OTIF_DUMP_PATH="$DUMP_DIR/$tag.json" \
      "$BENCH" --executor=streaming "$CLIPS" "$FRAMES" \
      > "$DUMP_DIR/$tag.report.json"; then
    echo "ERROR: chaos run failed for spec: $spec" >&2
    fail=1
  fi
done

if [[ "$fail" -ne 0 ]]; then
  echo "== chaos matrix FAILED — dumps in $DUMP_DIR =="
  exit 1
fi
echo "== chaos matrix passed: ${#SPECS[@]} specs survived =="
