#!/usr/bin/env python3
"""Perf-baseline recorder and regression gate.

Builds a machine-readable perf baseline from the end-to-end benches:

  * bench_throughput  -- clips/sec per worker count, per-stage wall seconds,
                         queue-depth percentiles, proxy cache hit rate
  * bench_throughput --executor=streaming -- clips/sec and achieved
                         cross-clip detector batch size per worker count
  * bench_fig6_cost_breakdown (OTIF_BENCH_JSON=...) -- per-stage simulated
                         and wall seconds for the tuned OTIF configuration

Usage:
  tools/bench_baseline.py record  --out BENCH_baseline.json
  tools/bench_baseline.py compare --baseline BENCH_baseline.json

`record` runs the benches (or consumes pre-captured reports via
--from-throughput/--from-cost) and writes a compact baseline file intended
to be committed. `compare` produces a fresh measurement the same way, then
diffs it against the baseline and exits non-zero on regression:

  * wall-clock metrics (clips/sec, stage wall seconds) gate at --wall-tol
    (default 0.50: generous, machines differ);
  * simulated seconds are deterministic for a given scale, so they gate at
    the much tighter --sim-tol (default 0.10);
  * the proxy cache hit rate gates on an absolute drop of 0.05;
  * the buffer-pool memory section gates hard at the single-worker serial
    sweep point: steady-state hot-loop allocations may not grow at all,
    and the pool hit rate may not drop by more than 0.005 absolute.

Worker counts present in only one of the two files (different machine
widths) are skipped. Stage wall regressions below --wall-floor seconds are
ignored as noise.
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile

SIM_STAGES = ("decode", "proxy", "detect", "track", "refine")


def run_throughput(build_dir, clips, frames, executor="serial"):
    exe = os.path.join(build_dir, "bench", "bench_throughput")
    env = dict(os.environ, OTIF_LOG_LEVEL="warning")
    out = subprocess.run(
        [exe, f"--executor={executor}", str(clips), str(frames)],
        check=True, stdout=subprocess.PIPE, env=env)
    return json.loads(out.stdout)


def run_cost_breakdown(build_dir, scale):
    exe = os.path.join(build_dir, "bench", "bench_fig6_cost_breakdown")
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as f:
        path = f.name
    try:
        env = dict(os.environ, OTIF_LOG_LEVEL="warning",
                   OTIF_BENCH_JSON=path, OTIF_BENCH_SCALE=scale)
        subprocess.run([exe], check=True, stdout=subprocess.DEVNULL, env=env)
        with open(path) as f:
            return json.load(f)
    finally:
        os.unlink(path)


def load_or_run(args):
    """Returns (throughput, streaming_throughput, cost) reports from files
    or fresh runs."""
    if args.from_throughput:
        with open(args.from_throughput) as f:
            throughput = json.load(f)
    else:
        throughput = run_throughput(args.build_dir, args.clips, args.frames)
    if args.from_throughput_streaming:
        with open(args.from_throughput_streaming) as f:
            streaming = json.load(f)
    else:
        streaming = run_throughput(args.build_dir, args.clips, args.frames,
                                   executor="streaming")
    if args.from_cost:
        with open(args.from_cost) as f:
            cost = json.load(f)
    else:
        cost = run_cost_breakdown(args.build_dir, args.scale)
    return throughput, streaming, cost


def build_baseline(throughput, streaming, cost, args):
    """Distills the three bench reports into the committed baseline shape."""
    sweep = {}
    for entry in throughput["results"]:
        sweep[str(entry["workers"])] = {
            "clips_per_sec": entry["clips_per_sec"],
            "stage_wall_seconds": entry["stage_wall_seconds"],
            "queue_depth": entry["queue_depth"],
            "cache_hit_rate": entry["proxy_cache"]["hit_rate"],
            "memory": {
                "allocations": entry["memory"]["allocations"],
                "pool_hit_rate": entry["memory"]["pool_hit_rate"],
            },
        }
    streaming_sweep = {}
    for entry in streaming["results"]:
        streaming_sweep[str(entry["workers"])] = {
            "clips_per_sec": entry["clips_per_sec"],
            "detect_batch_mean": entry["detect_batch"]["mean_frames"],
        }
    return {
        "schema": 3,
        "workload": {"clips": throughput["clips"],
                     "frames_per_clip": throughput["frames_per_clip"],
                     "scale": args.scale},
        "throughput": sweep,
        "throughput_streaming": streaming_sweep,
        "cost_breakdown": {
            "stages": {k: cost["stages"][k] for k in SIM_STAGES},
            "sim_total": cost["sim_total"],
            "cache_hit_rate": cost["cache_hit_rate"],
        },
    }


def cmd_record(args):
    throughput, streaming, cost = load_or_run(args)
    baseline = build_baseline(throughput, streaming, cost, args)
    with open(args.out, "w") as f:
        json.dump(baseline, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"wrote {args.out} "
          f"({len(baseline['throughput'])} sweep points)")
    return 0


def cmd_compare(args):
    with open(args.baseline) as f:
        baseline = json.load(f)
    throughput, streaming, cost = load_or_run(args)
    current = build_baseline(throughput, streaming, cost, args)

    if baseline.get("workload") != current["workload"]:
        print(f"note: workload differs (baseline {baseline.get('workload')}"
              f" vs current {current['workload']}); comparing anyway")

    failures = []
    rows = []

    def check(metric, base, cur, kind, gate=True):
        """kind: 'higher-better-wall', 'lower-better-wall', 'lower-better-sim'."""
        if base is None or cur is None:
            return
        if kind == "higher-better-wall":
            limit = base * (1.0 - args.wall_tol)
            bad = cur < limit
        elif kind == "lower-better-wall":
            limit = base * (1.0 + args.wall_tol)
            bad = cur > limit and (cur - base) > args.wall_floor
        else:  # lower-better-sim
            limit = base * (1.0 + args.sim_tol)
            bad = cur > limit
        delta = (cur - base) / base * 100.0 if base else float("inf")
        if not gate:
            rows.append((metric, base, cur, delta, "info"))
            return
        rows.append((metric, base, cur, delta, "FAIL" if bad else "ok"))
        if bad:
            failures.append(metric)

    common = sorted(set(baseline["throughput"]) & set(current["throughput"]),
                    key=int)
    skipped = set(baseline["throughput"]) ^ set(current["throughput"])
    if skipped:
        print(f"note: skipping worker counts {sorted(skipped)} "
              "(present in only one file)")
    for w in common:
        b, c = baseline["throughput"][w], current["throughput"][w]
        check(f"throughput[{w}].clips_per_sec",
              b["clips_per_sec"], c["clips_per_sec"], "higher-better-wall")
        for stage in SIM_STAGES:
            # Per-stage wall times gate only on the serial sweep point:
            # under multi-worker contention they are scheduling noise, and
            # a real parallel regression still shows up in clips_per_sec.
            check(f"throughput[{w}].stage_wall.{stage}",
                  b["stage_wall_seconds"].get(stage),
                  c["stage_wall_seconds"].get(stage), "lower-better-wall",
                  gate=(w == "1"))
        if b.get("memory") is None:
            if w == "1":
                print("note: baseline predates the buffer pool "
                      "(no memory section); skipping memory gates")
        else:
            bm, cm = b["memory"], c["memory"]
            # Allocation counts are deterministic only in the single-worker
            # serial replay; elsewhere they are scheduling-dependent info.
            alloc_bad = cm["allocations"] > bm["allocations"]
            rows.append((f"throughput[{w}].mem.allocations",
                         bm["allocations"], cm["allocations"],
                         0.0,
                         ("FAIL" if alloc_bad else "ok") if w == "1"
                         else "info"))
            if w == "1" and alloc_bad:
                failures.append(f"throughput[{w}].mem.allocations")
            hit_bad = (bm["pool_hit_rate"] - cm["pool_hit_rate"]) > 0.005
            rows.append((f"throughput[{w}].mem.pool_hit_rate",
                         bm["pool_hit_rate"], cm["pool_hit_rate"],
                         (cm["pool_hit_rate"] - bm["pool_hit_rate"]) * 100.0,
                         ("FAIL" if hit_bad else "ok") if w == "1"
                         else "info"))
            if w == "1" and hit_bad:
                failures.append(f"throughput[{w}].mem.pool_hit_rate")

    base_streaming = baseline.get("throughput_streaming")
    if base_streaming is None:
        print("note: baseline predates the streaming executor "
              "(no throughput_streaming section); skipping")
    else:
        cur_streaming = current["throughput_streaming"]
        common_s = sorted(set(base_streaming) & set(cur_streaming), key=int)
        for w in common_s:
            b, c = base_streaming[w], cur_streaming[w]
            check(f"throughput_streaming[{w}].clips_per_sec",
                  b["clips_per_sec"], c["clips_per_sec"],
                  "higher-better-wall")
            # The achieved cross-clip batch size is scheduling-dependent
            # (deadline releases); report it but don't gate on it.
            check(f"throughput_streaming[{w}].detect_batch_mean",
                  b["detect_batch_mean"], c["detect_batch_mean"],
                  "higher-better-wall", gate=False)

    bc, cc = baseline["cost_breakdown"], current["cost_breakdown"]
    for stage in SIM_STAGES:
        check(f"cost_breakdown.sim_seconds.{stage}",
              bc["stages"][stage]["sim_seconds"],
              cc["stages"][stage]["sim_seconds"], "lower-better-sim")
    check("cost_breakdown.sim_total", bc["sim_total"], cc["sim_total"],
          "lower-better-sim")

    hit_drop = bc["cache_hit_rate"] - cc["cache_hit_rate"]
    status = "FAIL" if hit_drop > 0.05 else "ok"
    rows.append(("cost_breakdown.cache_hit_rate", bc["cache_hit_rate"],
                 cc["cache_hit_rate"], -hit_drop * 100.0, status))
    if status == "FAIL":
        failures.append("cost_breakdown.cache_hit_rate")

    width = max(len(r[0]) for r in rows)
    print(f"{'metric':<{width}}  {'baseline':>12} {'current':>12} "
          f"{'delta%':>8}  status")
    for metric, base, cur, delta, stat in rows:
        print(f"{metric:<{width}}  {base:>12.4f} {cur:>12.4f} "
              f"{delta:>+8.1f}  {stat}")

    if failures:
        print(f"\nREGRESSION: {len(failures)} metric(s) beyond tolerance "
              f"(wall {args.wall_tol:.0%}, sim {args.sim_tol:.0%}):")
        for f_ in failures:
            print(f"  - {f_}")
        return 1
    print(f"\nbaseline compare ok ({len(rows)} metrics within tolerance)")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    sub = parser.add_subparsers(dest="cmd", required=True)

    def common_args(p):
        p.add_argument("--build-dir", default="build")
        p.add_argument("--clips", type=int, default=8,
                       help="bench_throughput clip count")
        p.add_argument("--frames", type=int, default=120,
                       help="bench_throughput frames per clip")
        p.add_argument("--scale", default="tiny",
                       help="OTIF_BENCH_SCALE for the cost breakdown")
        p.add_argument("--from-throughput", metavar="FILE",
                       help="reuse a captured bench_throughput report")
        p.add_argument("--from-throughput-streaming", metavar="FILE",
                       help="reuse a captured bench_throughput "
                            "--executor=streaming report")
        p.add_argument("--from-cost", metavar="FILE",
                       help="reuse a captured OTIF_BENCH_JSON report")

    rec = sub.add_parser("record", help="run benches, write baseline file")
    common_args(rec)
    rec.add_argument("--out", default="BENCH_baseline.json")

    cmp_ = sub.add_parser("compare",
                          help="run benches, diff against a baseline")
    common_args(cmp_)
    cmp_.add_argument("--baseline", default="BENCH_baseline.json")
    cmp_.add_argument("--wall-tol", type=float,
                      default=float(os.environ.get("OTIF_BASELINE_TOL", 0.5)),
                      help="relative tolerance for wall-clock metrics")
    cmp_.add_argument("--sim-tol", type=float, default=0.10,
                      help="relative tolerance for simulated seconds")
    cmp_.add_argument("--wall-floor", type=float, default=0.02,
                      help="ignore stage wall regressions below this many "
                           "absolute seconds")

    args = parser.parse_args()
    return cmd_record(args) if args.cmd == "record" else cmd_compare(args)


if __name__ == "__main__":
    sys.exit(main())
