#!/usr/bin/env python3
"""Validates the /profilez sampling-profiler endpoint over an in-flight run.

Usage: validate_profile.py <port-file> [--out <collapsed-artifact>]

Runs against a bench launched with OTIF_METRICS_PORT=0 and
OTIF_METRICS_PORT_FILE=<port-file>; waits for the port file, then against
127.0.0.1:<port>:

  - Malformed /profilez and /tracez query parameters must 400 (never start
    a window or fall back to silent defaults).
  - /profilez?seconds=2&fmt=collapsed must return flamegraph-compatible
    collapsed stacks: every line is `seg;seg;...;seg <count>` with a
    positive integer count, at least 100 samples total (97 Hz over 2 s of
    a busy pipeline), the GEMM microkernel (inlined into GemmBias) on a
    hot stack, and stage attribution joined in (a `stage/...;clipN;`
    prefix on at least one stack).
  - /profilez?fmt=json must return the documented JSON shape.

The collapsed window is retried for a while: an early scrape can land in a
warm-up gap where the run burns little CPU inside the GEMM. With --out the
last collapsed profile is written there (the CI flamegraph artifact).

Exits non-zero with a diagnostic on the first violation.
"""

import json
import re
import sys
import time

from validate_introspection import die, fetch, wait_for_port

COLLAPSED_LINE_RE = re.compile(r"^(?P<stack>\S.*) (?P<count>\d+)$")


def parse_collapsed(body):
    """Parses collapsed stacks; returns (total_samples, list of frame
    lists). Dies on any grammar violation."""
    total = 0
    stacks = []
    for line in body.splitlines():
        m = COLLAPSED_LINE_RE.match(line)
        if not m:
            die(f"collapsed line does not match 'stack count': {line!r}")
        count = int(m.group("count"))
        if count <= 0:
            die(f"collapsed line with non-positive count: {line!r}")
        frames = m.group("stack").split(";")
        if any(not frame for frame in frames):
            die(f"collapsed line with empty frame: {line!r}")
        if len(frames) < 3:  # stage; clip; at least one real frame.
            die(f"collapsed line shorter than stage;clip;frame: {line!r}")
        if not (frames[1].startswith("clip") or frames[1] == "(no_clip)"):
            die(f"collapsed line without clip attribution slot: {line!r}")
        total += count
        stacks.append(frames)
    return total, stacks


def check_negative_cases(port):
    for path in ("/profilez?seconds=abc", "/profilez?seconds=0",
                 "/profilez?seconds=61", "/profilez?fmt=svg",
                 "/profilez?bogus=1", "/profilez?seconds=2&seconds=3",
                 "/tracez?n=abc", "/tracez?n=0"):
        status, _, _ = fetch(port, path)
        if status != 400:
            die(f"GET {path} returned {status}, want 400")


def check_json_window(port):
    status, content_type, body = fetch(port, "/profilez?seconds=0.2&fmt=json",
                                       timeout=30)
    if status == 503:
        die(f"/profilez unavailable (sanitizer build?): {body.strip()}")
    if status != 200:
        die(f"/profilez fmt=json returned {status}: {body.strip()}")
    if "application/json" not in content_type:
        die(f"/profilez fmt=json content type {content_type!r}")
    doc = json.loads(body)
    for key in ("hz", "duration_seconds", "samples", "dropped",
                "signal_overhead_seconds", "stacks"):
        if key not in doc:
            die(f"/profilez json missing key {key!r}: {sorted(doc)}")
    for stack in doc["stacks"]:
        for key in ("stage", "clip", "count", "frames"):
            if key not in stack:
                die(f"/profilez json stack missing {key!r}: {sorted(stack)}")


def check_collapsed_window(port, min_samples=100, deadline_seconds=120.0):
    """Profiles 2 s windows until one is busy enough to carry the GEMM."""
    end = time.monotonic() + deadline_seconds
    last_problem = "no window attempted"
    body = ""
    while time.monotonic() < end:
        status, content_type, body = fetch(
            port, "/profilez?seconds=2&fmt=collapsed", timeout=30)
        if status == 503:
            die(f"/profilez unavailable (sanitizer build?): {body.strip()}")
        if status != 200:
            die(f"/profilez returned {status}: {body.strip()}")
        if "text/plain" not in content_type:
            die(f"/profilez content type {content_type!r}")
        total, stacks = parse_collapsed(body)
        gemm = sum(1 for frames in stacks
                   if any("GemmBias" in frame for frame in frames))
        staged = sum(1 for frames in stacks
                     if frames[0].startswith("stage/"))
        if total < min_samples:
            last_problem = f"only {total} samples (< {min_samples})"
        elif gemm == 0:
            last_problem = f"no GemmBias frame in {len(stacks)} stacks"
        elif staged == 0:
            last_problem = f"no stage/... attribution in {len(stacks)} stacks"
        else:
            return total, len(stacks), gemm, staged, body
        time.sleep(0.2)
    die(f"/profilez window never satisfied the gate: {last_problem}")


def main():
    args = sys.argv[1:]
    out_path = None
    if "--out" in args:
        i = args.index("--out")
        out_path = args[i + 1]
        del args[i:i + 2]
    if len(args) != 1:
        die(f"usage: {sys.argv[0]} <port-file> [--out <collapsed-artifact>]")
    port = wait_for_port(args[0])

    check_negative_cases(port)
    total, stacks, gemm, staged, body = check_collapsed_window(port)
    check_json_window(port)
    if out_path:
        with open(out_path, "w") as f:
            f.write(body)
    print(f"profile ok: {total} samples across {stacks} stacks "
          f"({gemm} with GemmBias, {staged} stage-attributed)"
          + (f", collapsed profile -> {out_path}" if out_path else ""))


if __name__ == "__main__":
    main()
