#!/usr/bin/env bash
# Tier-1 verification: clean configure + build + full test suite, a smoke
# run of bench_throughput that validates the emitted JSON telemetry report
# (including the buffer-pool memory section: steady-state hot-loop
# allocations must be exactly zero at the single-worker serial point), a
# streaming-executor smoke run (validates the cross-clip batch telemetry
# sections and that streaming detector batches exceed the serial ones), a
# live-introspection smoke run (all HTTP endpoints scraped over an
# in-flight run, Prometheus exposition and /statusz schema validated, the
# /healthz stall watchdog tripped on an induced pause), a /profilez
# sampling-profiler smoke (2 s window over a busy streaming run must
# produce >= 100 collapsed samples with the GEMM microkernel on a hot,
# stage-attributed stack) plus a measured <= 5% profiler-overhead gate, a
# timeline-trace capture validated as Chrome trace-event JSON, a
# mechanics test of the perf-baseline regression gate (self-compare must
# pass, a perturbed baseline must fail), a microbench gate that the fused
# pooled batch-staging path beats the pre-pool copy path, then a
# ThreadSanitizer build of the concurrency-sensitive tests (thread pool,
# buffer pool, telemetry registry/spans, timeline ring buffers, proxy
# score cache, staged-pipeline determinism, executor channels/batcher,
# cross-executor equivalence).
#
# Usage: tools/check.sh [--skip-tsan] [--compare-baseline] [--faults]
#   --compare-baseline  additionally re-measures and diffs against the
#                       committed BENCH_baseline.json (exits non-zero on
#                       regression; tolerance via OTIF_BASELINE_TOL).
#   --faults            additionally runs the fault-injection smoke (a
#                       quarantined-clip streaming run must exit 0, report
#                       the failed clip, and leave every surviving clip
#                       bit-identical to a fault-free run) and the full
#                       chaos matrix (tools/chaos_matrix.sh).
set -euo pipefail
cd "$(dirname "$0")/.."

SKIP_TSAN=0
COMPARE_BASELINE=0
RUN_FAULTS=0
for arg in "$@"; do
  case "$arg" in
    --skip-tsan) SKIP_TSAN=1 ;;
    --compare-baseline) COMPARE_BASELINE=1 ;;
    --faults) RUN_FAULTS=1 ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

# Abort if any element of the last pipeline failed. `set -o pipefail` only
# reports the overall status, which hides *which* element failed and is
# silently discarded when a pipeline feeds a conditional, so every piped
# validator below is followed by: require_pipe_ok "${PIPESTATUS[@]}".
require_pipe_ok() {
  local i=0 rc
  for rc in "$@"; do
    if [[ "$rc" -ne 0 ]]; then
      echo "ERROR: pipeline element $i exited with status $rc" >&2
      exit "$rc"
    fi
    i=$((i + 1))
  done
}

echo "== tier-1: configure + build =="
cmake -B build -S . >/dev/null
cmake --build build -j

echo "== tier-1: ctest =="
(cd build && ctest --output-on-failure)

echo "== smoke: bench_throughput telemetry report =="
# One short sweep; stdout is the JSON run report (logs go to stderr). The
# validator reads JSON from stdin so it composes in a pipeline; tee keeps
# the report on disk for the baseline self-test below. The pipeline's exit
# statuses are checked element-by-element so a validator failure (or a
# crashed benchmark) can never be masked by the pipe.
VALIDATE_THROUGHPUT='
import json, sys

report = json.load(sys.stdin)

assert report["benchmark"] == "pipeline_throughput", report.get("benchmark")
results = report["results"]
assert results, "empty results"
stage_keys = {"decode", "proxy", "detect", "track", "refine"}
for entry in results:
    assert set(entry["stage_wall_seconds"]) == stage_keys, entry
    assert 0.0 <= entry["utilization"], entry
    for key in ("p50", "p90", "p99"):
        assert key in entry["queue_depth"], entry
    cache = entry["proxy_cache"]
    for key in ("hits", "misses", "evictions", "hit_rate"):
        assert key in cache, cache
    mem = entry["memory"]
    for key in ("pool_hits", "pool_misses", "arena_allocations",
                "allocations", "allocations_per_clip", "pool_hit_rate",
                "bytes_in_flight", "bytes_retained", "arena_bytes_reserved"):
        assert key in mem, mem
    # Frame buffers recycle through mem::BufferPool: at steady state the
    # serial hot loop must run essentially allocation-free. Multi-worker
    # entries see occasional scheduling-dependent liveness peaks, so only
    # the single-worker entry (an exact replay of its warm-up) gets the
    # strict bar: hit rate >= 0.99 and exactly zero allocations.
    if entry["workers"] == 1:
        assert mem["pool_hit_rate"] >= 0.99, mem
        assert mem["allocations"] == 0, mem
    else:
        assert mem["pool_hit_rate"] >= 0.95, (entry["workers"], mem)
telemetry = report["telemetry"]
for section in ("counters", "gauges", "histograms", "spans"):
    assert section in telemetry, section
assert "stage/detect" in telemetry["spans"], sorted(telemetry["spans"])
assert "threadpool.tasks_executed" in telemetry["counters"]
for gauge in ("mem.pool.bytes_in_flight", "mem.pool.hit_rate",
              "mem.pool.allocations_per_clip", "mem.arena.bytes_reserved"):
    assert gauge in telemetry["gauges"], sorted(telemetry["gauges"])
for hist in telemetry["histograms"].values():
    for key in ("p50", "p90", "p99"):
        assert key in hist, hist
print("throughput report ok:", len(results), "sweep points")
'
OTIF_LOG_LEVEL=warning ./build/bench/bench_throughput 4 60 \
  | tee build/throughput_report.json \
  | python3 -c "$VALIDATE_THROUGHPUT"
require_pipe_ok "${PIPESTATUS[@]}"

echo "== smoke: streaming executor report + cross-clip batching win =="
# The streaming run must emit the executor telemetry sections (batch fill,
# channel occupancy) and actually batch across clips: its mean detector
# batch size at the widest sweep point must exceed the serial run's, whose
# batches can never span a clip (and so never exceed frame_batch).
VALIDATE_STREAMING='
import json, sys

with open(sys.argv[1]) as f:
    serial = json.load(f)
report = json.load(sys.stdin)

assert report["executor"] == "streaming", report.get("executor")
assert serial["executor"] == "serial", serial.get("executor")
results = report["results"]
assert results, "empty results"
for entry in results:
    for section in ("proxy", "detect"):
        fill = entry["batch_fill"][section]
        for key in ("mean_frames", "p50", "p99"):
            assert key in fill, fill
    for ch in ("proxy", "detect", "commit"):
        depth = entry["executor_queue_depth"][ch]
        for key in ("p50", "p99"):
            assert key in depth, depth
    mem = entry["memory"]
    for key in ("allocations", "pool_hit_rate", "bytes_in_flight"):
        assert key in mem, mem
    # Streaming stage threads make the first sweep point pool warm-up
    # scheduling-dependent, so the bar is a high hit rate rather than the
    # exact-zero allocation count demanded of the serial executor.
    assert mem["pool_hit_rate"] >= 0.9, (entry["workers"], mem)
streaming_mean = results[-1]["detect_batch"]["mean_frames"]
serial_mean = serial["results"][-1]["detect_batch"]["mean_frames"]
assert streaming_mean > serial_mean, (
    f"cross-clip batching did not grow detector batches: "
    f"streaming {streaming_mean} <= serial {serial_mean}")
print(f"streaming report ok: {len(results)} sweep points, detector batch "
      f"{streaming_mean:.1f} frames vs {serial_mean:.1f} serial")
'
OTIF_LOG_LEVEL=warning ./build/bench/bench_throughput --executor=serial \
  8 120 > build/throughput_serial_8x120.json
OTIF_LOG_LEVEL=warning ./build/bench/bench_throughput --executor=streaming \
  8 120 \
  | tee build/throughput_streaming_report.json \
  | python3 -c "$VALIDATE_STREAMING" build/throughput_serial_8x120.json
require_pipe_ok "${PIPESTATUS[@]}"

echo "== smoke: live introspection endpoints over an in-flight run =="
# A streaming bench with the HTTP introspection server on an ephemeral port
# (OTIF_METRICS_PORT=0; the bound port lands in OTIF_METRICS_PORT_FILE).
# The validator scrapes all four endpoints mid-run: /metrics must be legal
# Prometheus 0.0.4 exposition, /statusz must show per-clip commits growing
# monotonically within one run generation, /tracez must be armed, and the
# bench's induced post-run pause (OTIF_BENCH_STALL_SEC, against a short
# OTIF_STALL_SEC watchdog window) must flip /healthz to 503 "stalled".
# Bit-identity of the run itself is covered by obs_test.
rm -f build/metrics_port
OTIF_LOG_LEVEL=warning OTIF_METRICS_PORT=0 \
  OTIF_METRICS_PORT_FILE=build/metrics_port \
  OTIF_STALL_SEC=0.2 OTIF_BENCH_STALL_SEC=2 \
  ./build/bench/bench_throughput --executor=streaming 12 1200 \
  > build/throughput_introspect.json &
INTROSPECT_PID=$!
if ! python3 tools/validate_introspection.py build/metrics_port; then
  kill "$INTROSPECT_PID" 2>/dev/null || true
  wait "$INTROSPECT_PID" 2>/dev/null || true
  echo "ERROR: live introspection validation failed" >&2
  exit 1
fi
wait "$INTROSPECT_PID"

echo "== smoke: /profilez sampling profiler over an in-flight run =="
# A second background streaming bench; the validator rejects malformed
# query parameters (400s), profiles a 2 s window mid-run, checks the
# collapsed-stack grammar, demands >= 100 samples with the GEMM microkernel
# (GemmBias) on a hot stack and stage attribution joined in, and keeps the
# collapsed profile as build/profile.collapsed (uploaded by CI; renders
# with flamegraph.pl). The bench is killed once validated — its report is
# not used.
rm -f build/profile_port build/profile.collapsed
OTIF_LOG_LEVEL=warning OTIF_METRICS_PORT=0 \
  OTIF_METRICS_PORT_FILE=build/profile_port \
  ./build/bench/bench_throughput --executor=streaming 12 1200 \
  > build/throughput_profile_run.json &
PROFILE_PID=$!
if ! python3 tools/validate_profile.py build/profile_port \
    --out build/profile.collapsed; then
  kill "$PROFILE_PID" 2>/dev/null || true
  wait "$PROFILE_PID" 2>/dev/null || true
  echo "ERROR: /profilez validation failed" >&2
  exit 1
fi
kill "$PROFILE_PID" 2>/dev/null || true
wait "$PROFILE_PID" 2>/dev/null || true

echo "== perf: profiler overhead gate (bench --profile) =="
# The profiler's own cost, measured from inside: samples fire at hz per
# consumed CPU second, so samples/hz estimates the profiled CPU and the
# accumulated signal-handler CPU over it is the overhead fraction. Must
# stay within 5% at the default 97 Hz.
VALIDATE_PROFILE_REPORT='
import json, sys

report = json.load(sys.stdin)

points = [e["profile"] for e in report["results"]]
assert points, "no profile sections in report"
enabled = [p for p in points if p["enabled"]]
assert enabled, "profiler enabled at no sweep point"
total = sum(p["samples"] for p in enabled)
assert total > 0, "profiler captured no samples"
for p in enabled:
    assert p["hz"] == 97, p
    assert p["dropped"] <= max(1, p["samples"] // 100), p
    assert p["overhead_fraction"] <= 0.05, p
    if p["samples"] > 0:
        assert p["top_frames"], p
worst = max(p["overhead_fraction"] for p in enabled)
print(f"profiler overhead ok: {total} samples, worst overhead "
      f"{100.0 * worst:.2f}% (<= 5%)")
'
OTIF_LOG_LEVEL=warning ./build/bench/bench_throughput --profile 8 240 \
  | tee build/throughput_profiled.json \
  | python3 -c "$VALIDATE_PROFILE_REPORT"
require_pipe_ok "${PIPESTATUS[@]}"

echo "== smoke: timeline trace capture (Chrome trace-event JSON) =="
VALIDATE_TIMELINE='
import json, sys

trace = json.load(sys.stdin)

events = trace["traceEvents"]
assert events, "empty trace"
assert all(e["ph"] in ("B", "E") for e in events)
assert all(isinstance(e["ts"], (int, float)) for e in events)
# Stage spans must carry clip attribution across more than one thread.
stage_b = [e for e in events
           if e["ph"] == "B" and e["name"].startswith("stage/")]
assert stage_b, sorted({e["name"] for e in events})
tagged = [e for e in stage_b if e.get("args", {}).get("clip", -1) >= 0]
assert tagged, "no stage span carries a clip id"
assert len({e["tid"] for e in tagged}) > 1, "clip context only on one thread"
tids = {e["tid"] for e in events}
clips = {e["args"]["clip"] for e in tagged}
print("timeline trace ok: %d events, %d threads, %d clips tagged"
      % (len(events), len(tids), len(clips)))
'
OTIF_LOG_LEVEL=warning OTIF_TRACE_TIMELINE=build/timeline_trace.json \
  ./build/bench/bench_throughput 4 60 > /dev/null
python3 -c "$VALIDATE_TIMELINE" < build/timeline_trace.json \
  | grep "timeline trace ok"
require_pipe_ok "${PIPESTATUS[@]}"

echo "== smoke: perf-baseline gate mechanics =="
# Deterministic self-test of the regression gate: record and compare from
# the same captured reports (must pass), then perturb the baseline and
# expect the compare to fail.
OTIF_LOG_LEVEL=warning OTIF_BENCH_JSON=build/fig6_cost.json \
  OTIF_BENCH_SCALE=tiny ./build/bench/bench_fig6_cost_breakdown > /dev/null
python3 tools/bench_baseline.py record --out build/BENCH_selftest.json \
  --from-throughput build/throughput_report.json \
  --from-throughput-streaming build/throughput_streaming_report.json \
  --from-cost build/fig6_cost.json
python3 tools/bench_baseline.py compare --baseline build/BENCH_selftest.json \
  --from-throughput build/throughput_report.json \
  --from-throughput-streaming build/throughput_streaming_report.json \
  --from-cost build/fig6_cost.json > /dev/null
python3 - build/BENCH_selftest.json build/BENCH_perturbed.json <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    baseline = json.load(f)
for entry in baseline["throughput"].values():
    entry["clips_per_sec"] *= 10.0  # pretend we used to be 10x faster
with open(sys.argv[2], "w") as f:
    json.dump(baseline, f)
EOF
if python3 tools/bench_baseline.py compare \
    --baseline build/BENCH_perturbed.json \
    --from-throughput build/throughput_report.json \
    --from-throughput-streaming build/throughput_streaming_report.json \
    --from-cost build/fig6_cost.json > /dev/null; then
  echo "ERROR: baseline gate failed to flag a synthetic 10x regression" >&2
  exit 1
fi
echo "baseline gate ok: self-compare passed, synthetic regression flagged"

echo "== perf: pooled batch staging vs copy path =="
# The fused FillInputSlice path must beat the pre-pool staging path (Image
# copy + staging tensor + std::copy) by a clear margin, not just tie it.
VALIDATE_STAGING='
import json, sys

report = json.load(sys.stdin)

times = {}
for bench in report["benchmarks"]:
    times[bench["name"]] = bench["cpu_time"]
copy = times["BM_ScoreBatchCopyPath/8"]
pooled = times["BM_ScoreBatchPooled/8"]
ratio = copy / pooled
assert ratio >= 1.2, (
    f"pooled staging not faster: copy {copy:.0f}ns vs pooled "
    f"{pooled:.0f}ns ({ratio:.2f}x < 1.2x)")
print(f"staging gate ok: pooled {ratio:.1f}x faster than copy path")
'
OTIF_LOG_LEVEL=warning ./build/bench/bench_micro_components \
  --benchmark_filter='BM_ScoreBatch' --benchmark_format=json 2>/dev/null \
  | python3 -c "$VALIDATE_STAGING"
require_pipe_ok "${PIPESTATUS[@]}"

if [[ "$COMPARE_BASELINE" == "1" ]]; then
  echo "== perf: compare against committed BENCH_baseline.json =="
  python3 tools/bench_baseline.py compare --baseline BENCH_baseline.json
fi

if [[ "$RUN_FAULTS" == "1" ]]; then
  echo "== faults: quarantine smoke (failed clip reported, rest bit-identical) =="
  # A fault-free streaming run records per-clip digests; a second run with
  # clip 1's detector failing permanently must still exit 0, report exactly
  # clip 1 in failed_clips, and leave every other clip's digest untouched.
  VALIDATE_FAULT_RUN='
import json, sys

with open(sys.argv[1]) as f:
    clean = json.load(f)
with open(sys.argv[2]) as f:
    faulted = json.load(f)

failed = faulted["failed_clips"]
assert [f["clip"] for f in failed] == [1], failed
assert "injected" in failed[0]["status"], failed[0]
assert failed[0]["retries"] > 0, failed[0]

clean_digests = {e["clip"]: e["digest"] for e in clean["clip_digests"]}
assert not any(e["failed"] for e in clean["clip_digests"])
survivors = 0
for entry in faulted["clip_digests"]:
    if entry["clip"] == 1:
        assert entry["failed"], entry
        continue
    assert not entry["failed"], entry
    assert entry["digest"] == clean_digests[entry["clip"]], (
        f"clip {entry['clip']} digest changed under an unrelated fault: "
        f"{entry['digest']} != {clean_digests[entry['clip']]}")
    survivors += 1
assert survivors >= 2, faulted["clip_digests"]
print(f"fault smoke ok: clip 1 quarantined after {failed[0]['retries']} "
      f"retries, {survivors} surviving clips bit-identical")
'
  OTIF_LOG_LEVEL=warning ./build/bench/bench_throughput \
    --executor=streaming 4 120 > build/fault_clean.json
  OTIF_LOG_LEVEL=warning OTIF_FAULTS='detect.invoke:error:1:7:clip=1' \
    ./build/bench/bench_throughput --executor=streaming 4 120 \
    > build/fault_quarantine.json
  python3 -c "$VALIDATE_FAULT_RUN" build/fault_clean.json \
    build/fault_quarantine.json

  echo "== faults: chaos matrix =="
  tools/chaos_matrix.sh build 4 120
fi

if [[ "$SKIP_TSAN" == "1" ]]; then
  echo "== skipping TSan pass (--skip-tsan) =="
  exit 0
fi

echo "== tsan: build concurrency tests =="
cmake -B build-tsan -S . -DOTIF_SANITIZE=thread >/dev/null
cmake --build build-tsan -j --target util_test mem_test core_test obs_test

echo "== tsan: run concurrency tests =="
./build-tsan/tests/util_test \
  --gtest_filter='ThreadPool*:Telemetry*:Trace*:TraceTimeline*:FaultInjection*'
./build-tsan/tests/mem_test --gtest_filter='BufferPool*'
./build-tsan/tests/core_test \
  --gtest_filter='PipelineStagesDeterminismTest.*:ProxyScoreCache*:PipelineTelemetry*:Channel*:CrossClipBatcher*:StreamingExecutor*'
# Profiler live-sampling tests self-skip under TSan (the profiler refuses
# to start there); the filter still exercises the renderers, option
# validation, and the refusal path.
./build-tsan/tests/obs_test \
  --gtest_filter='IntrospectionServer*:RunProgress*:Profiler*'

echo "== all checks passed =="
