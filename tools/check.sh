#!/usr/bin/env bash
# Tier-1 verification: clean configure + build + full test suite, then a
# ThreadSanitizer build of the concurrency-sensitive tests (thread pool,
# proxy score cache, staged-pipeline determinism).
#
# Usage: tools/check.sh [--skip-tsan]
set -euo pipefail
cd "$(dirname "$0")/.."

SKIP_TSAN=0
for arg in "$@"; do
  case "$arg" in
    --skip-tsan) SKIP_TSAN=1 ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

echo "== tier-1: configure + build =="
cmake -B build -S . >/dev/null
cmake --build build -j

echo "== tier-1: ctest =="
(cd build && ctest --output-on-failure)

if [[ "$SKIP_TSAN" == "1" ]]; then
  echo "== skipping TSan pass (--skip-tsan) =="
  exit 0
fi

echo "== tsan: build concurrency tests =="
cmake -B build-tsan -S . -DOTIF_SANITIZE=thread >/dev/null
cmake --build build-tsan -j --target util_test core_test

echo "== tsan: run concurrency tests =="
./build-tsan/tests/util_test --gtest_filter='ThreadPool*'
./build-tsan/tests/core_test \
  --gtest_filter='PipelineStagesDeterminismTest.*:ProxyScoreCache*'

echo "== all checks passed =="
