#!/usr/bin/env bash
# Tier-1 verification: clean configure + build + full test suite, a smoke
# run of bench_throughput that validates the emitted JSON telemetry report,
# then a ThreadSanitizer build of the concurrency-sensitive tests (thread
# pool, telemetry registry/spans, proxy score cache, staged-pipeline
# determinism).
#
# Usage: tools/check.sh [--skip-tsan]
set -euo pipefail
cd "$(dirname "$0")/.."

SKIP_TSAN=0
for arg in "$@"; do
  case "$arg" in
    --skip-tsan) SKIP_TSAN=1 ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

echo "== tier-1: configure + build =="
cmake -B build -S . >/dev/null
cmake --build build -j

echo "== tier-1: ctest =="
(cd build && ctest --output-on-failure)

echo "== smoke: bench_throughput telemetry report =="
# One short sweep; stdout is the JSON run report (logs go to stderr).
# Validate that it parses and carries the expected stage/telemetry keys.
OTIF_LOG_LEVEL=warning ./build/bench/bench_throughput 4 60 \
  > build/throughput_report.json
python3 - build/throughput_report.json <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    report = json.load(f)

assert report["benchmark"] == "pipeline_throughput", report.get("benchmark")
results = report["results"]
assert results, "empty results"
stage_keys = {"decode", "proxy", "detect", "track", "refine"}
for entry in results:
    assert set(entry["stage_wall_seconds"]) == stage_keys, entry
    assert 0.0 <= entry["utilization"], entry
    cache = entry["proxy_cache"]
    for key in ("hits", "misses", "evictions", "hit_rate"):
        assert key in cache, cache
telemetry = report["telemetry"]
for section in ("counters", "gauges", "histograms", "spans"):
    assert section in telemetry, section
assert "stage/detect" in telemetry["spans"], sorted(telemetry["spans"])
assert "threadpool.tasks_executed" in telemetry["counters"]
print("throughput report ok:", len(results), "sweep points")
EOF

if [[ "$SKIP_TSAN" == "1" ]]; then
  echo "== skipping TSan pass (--skip-tsan) =="
  exit 0
fi

echo "== tsan: build concurrency tests =="
cmake -B build-tsan -S . -DOTIF_SANITIZE=thread >/dev/null
cmake --build build-tsan -j --target util_test core_test

echo "== tsan: run concurrency tests =="
./build-tsan/tests/util_test --gtest_filter='ThreadPool*:Telemetry*:Trace*'
./build-tsan/tests/core_test \
  --gtest_filter='PipelineStagesDeterminismTest.*:ProxyScoreCache*:PipelineTelemetry*'

echo "== all checks passed =="
