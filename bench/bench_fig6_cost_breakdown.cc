// Reproduces Figure 6: cost breakdown of OTIF on Caldot1. Pre-processing
// costs (model training, window-size selection) do not scale with dataset
// size; execution costs (decode, proxy, detection, tracking, refinement)
// do. The execution breakdown uses the fastest configuration within 5% of
// the best achieved accuracy.

#include <cstdio>
#include <memory>

#include "bench/bench_common.h"
#include "eval/workload.h"
#include "util/strings.h"
#include "util/table.h"

namespace otif {
namespace {

int Main() {
  const core::RunScale scale = bench::BenchScale();
  std::printf("=== Figure 6: OTIF cost breakdown (Caldot1) ===\n");
  bench::PrintScale(scale);

  const eval::TrackWorkload workload =
      eval::MakeTrackWorkload(sim::DatasetId::kCaldot1);
  core::Otif otif_system(workload.spec, scale);
  auto valid = std::make_shared<std::vector<sim::Clip>>(
      otif_system.ValidClips());
  auto test = std::make_shared<std::vector<sim::Clip>>(
      otif_system.TestClips());
  const core::AccuracyFn valid_fn = workload.MakeAccuracyFn(valid.get());
  const core::AccuracyFn test_fn = workload.MakeAccuracyFn(test.get());
  core::Tuner::Options topts;
  otif_system.Prepare(valid_fn, topts);

  TextTable pre({"Pre-processing stage", "Simulated seconds"});
  // Training-time accounting from the workflow (dominated by detector /
  // proxy model training in the paper; the detector here is behavioral so
  // its fine-tuning cost is represented by the proxy+tracker training).
  pre.AddRow({"Model training (proxies, tracker)",
              StrFormat("%.1f", otif_system.simulated_training_seconds() - 3.0)});
  pre.AddRow({"Window size selection", "3.0"});
  pre.AddRow({"Parameter tuning (validation runs)",
              StrFormat("%.1f", [&] {
                double total = 0.0;
                for (const core::TunerPoint& p : otif_system.curve()) {
                  total += p.val_seconds;
                }
                return total;
              }())});
  std::printf("%s\n", pre.ToString().c_str());

  const core::TunerPoint& pick = otif_system.FastestWithinTolerance(0.05);
  core::EvalResult run = otif_system.Execute(pick.config, *test, test_fn);
  TextTable exec({"Execution stage", "Simulated seconds"});
  const models::SimClock& clock = run.clock;
  exec.AddRow({"Video decoding",
               StrFormat("%.2f", clock.Seconds(models::CostCategory::kDecode))});
  exec.AddRow({"Segmentation proxy model",
               StrFormat("%.2f", clock.Seconds(models::CostCategory::kProxy))});
  exec.AddRow({"Object detection",
               StrFormat("%.2f", clock.Seconds(models::CostCategory::kDetect))});
  exec.AddRow({"Tracking",
               StrFormat("%.2f", clock.Seconds(models::CostCategory::kTrack))});
  exec.AddRow({"Track refinement",
               StrFormat("%.2f", clock.Seconds(models::CostCategory::kRefine))});
  exec.AddRow({"Total", StrFormat("%.2f", clock.TotalSeconds())});
  std::printf("selected config: %s (test accuracy %.3f)\n\n%s\n",
              pick.config.ToString().c_str(), run.accuracy,
              exec.ToString().c_str());
  return 0;
}

}  // namespace
}  // namespace otif

int main() { return otif::Main(); }
