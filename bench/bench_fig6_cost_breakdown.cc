// Reproduces Figure 6: cost breakdown of OTIF on Caldot1. Pre-processing
// costs (model training, window-size selection) do not scale with dataset
// size; execution costs (decode, proxy, detection, tracking, refinement)
// do. The execution breakdown uses the fastest configuration within 5% of
// the best achieved accuracy.
//
// OTIF_BENCH_JSON=<path> additionally writes the breakdown as JSON for the
// perf-baseline tooling (tools/bench_baseline.py).

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>

#include "bench/bench_common.h"
#include "eval/workload.h"
#include "util/json_writer.h"
#include "util/strings.h"
#include "util/table.h"
#include "util/telemetry.h"
#include "util/trace.h"

namespace otif {
namespace {

/// Per-stage simulated seconds as recorded by the pipeline's own telemetry
/// accumulators ("stage/<name>.sim_seconds") — the execution breakdown and
/// the live instrumentation are one code path.
double StageSimSeconds(const telemetry::TelemetrySnapshot& snapshot,
                       models::CostCategory category) {
  const telemetry::GaugeSample* gauge = telemetry::FindGauge(
      snapshot, std::string("stage/") + models::CostCategoryName(category) +
                    ".sim_seconds");
  return gauge != nullptr ? gauge->value : 0.0;
}

/// Wall-clock the stage actually spent (driver-measured span), for the
/// sim-vs-real comparison column.
double StageWallSeconds(const telemetry::TelemetrySnapshot& snapshot,
                        models::CostCategory category) {
  const telemetry::SpanSample* span = telemetry::FindSpan(
      snapshot, std::string("stage/") + models::CostCategoryName(category));
  return span != nullptr ? span->total_seconds : 0.0;
}

int Main() {
  const core::RunScale scale = bench::BenchScale();
  // The execution breakdown below is read back from the stage telemetry, so
  // collection must be on for this bench.
  telemetry::SetEnabled(true);
  std::printf("=== Figure 6: OTIF cost breakdown (Caldot1) ===\n");
  bench::PrintScale(scale);

  const eval::TrackWorkload workload =
      eval::MakeTrackWorkload(sim::DatasetId::kCaldot1);
  core::Otif otif_system(workload.spec, scale);
  auto valid = std::make_shared<std::vector<sim::Clip>>(
      otif_system.ValidClips());
  auto test = std::make_shared<std::vector<sim::Clip>>(
      otif_system.TestClips());
  const core::AccuracyFn valid_fn = workload.MakeAccuracyFn(valid.get());
  const core::AccuracyFn test_fn = workload.MakeAccuracyFn(test.get());
  core::Tuner::Options topts;
  otif_system.Prepare(valid_fn, topts);

  TextTable pre({"Pre-processing stage", "Simulated seconds"});
  // Training-time accounting from the workflow (dominated by detector /
  // proxy model training in the paper; the detector here is behavioral so
  // its fine-tuning cost is represented by the proxy+tracker training).
  pre.AddRow({"Model training (proxies, tracker)",
              StrFormat("%.1f", otif_system.simulated_training_seconds() - 3.0)});
  pre.AddRow({"Window size selection", "3.0"});
  pre.AddRow({"Parameter tuning (validation runs)",
              StrFormat("%.1f", [&] {
                double total = 0.0;
                for (const core::TunerPoint& p : otif_system.curve()) {
                  total += p.val_seconds;
                }
                return total;
              }())});
  std::printf("%s\n", pre.ToString().c_str());

  const core::TunerPoint& pick = otif_system.FastestWithinTolerance(0.05);
  // Start the measurement interval at zero: Prepare() above ran many
  // pipelines whose telemetry must not leak into the execution breakdown.
  telemetry::ResetAll();
  core::EvalResult run = otif_system.Execute(pick.config, *test, test_fn);
  const telemetry::TelemetrySnapshot snapshot = telemetry::CaptureSnapshot();

  TextTable exec({"Execution stage", "Simulated seconds", "Wall seconds"});
  const struct {
    const char* label;
    models::CostCategory category;
  } kStages[] = {
      {"Video decoding", models::CostCategory::kDecode},
      {"Segmentation proxy model", models::CostCategory::kProxy},
      {"Object detection", models::CostCategory::kDetect},
      {"Tracking", models::CostCategory::kTrack},
      {"Track refinement", models::CostCategory::kRefine},
  };
  double sim_total = 0.0;
  double wall_total = 0.0;
  for (const auto& stage : kStages) {
    const double sim = StageSimSeconds(snapshot, stage.category);
    const double wall = StageWallSeconds(snapshot, stage.category);
    sim_total += sim;
    wall_total += wall;
    exec.AddRow({stage.label, StrFormat("%.2f", sim),
                 StrFormat("%.3f", wall)});
  }
  exec.AddRow({"Total", StrFormat("%.2f", sim_total),
               StrFormat("%.3f", wall_total)});
  std::printf("selected config: %s (test accuracy %.3f)\n\n%s\n",
              pick.config.ToString().c_str(), run.accuracy,
              exec.ToString().c_str());

  if (const char* json_path = std::getenv("OTIF_BENCH_JSON");
      json_path != nullptr && json_path[0] != '\0') {
    const telemetry::CounterSample* hits =
        telemetry::FindCounter(snapshot, "proxy_cache.hits");
    const telemetry::CounterSample* misses =
        telemetry::FindCounter(snapshot, "proxy_cache.misses");
    const int64_t h = hits != nullptr ? hits->value : 0;
    const int64_t m = misses != nullptr ? misses->value : 0;
    JsonWriter out;
    out.BeginObject();
    out.Key("benchmark").Value("fig6_cost_breakdown");
    out.Key("dataset").Value(workload.spec.name);
    out.Key("config").Value(pick.config.ToString());
    out.Key("test_accuracy").Value(run.accuracy);
    out.Key("stages").BeginObject();
    for (const auto& stage : kStages) {
      out.Key(models::CostCategoryName(stage.category)).BeginObject();
      out.Key("sim_seconds").Value(StageSimSeconds(snapshot, stage.category));
      out.Key("wall_seconds")
          .Value(StageWallSeconds(snapshot, stage.category));
      out.EndObject();
    }
    out.EndObject();
    out.Key("sim_total").Value(sim_total);
    out.Key("wall_total").Value(wall_total);
    out.Key("cache_hit_rate")
        .Value(h + m > 0 ? static_cast<double>(h) / static_cast<double>(h + m)
                         : 0.0);
    out.EndObject();
    std::ofstream f(json_path, std::ios::trunc);
    f << std::move(out).TakeString() << "\n";
    std::printf("wrote %s\n", json_path);
  }
  return 0;
}

}  // namespace
}  // namespace otif

int main() { return otif::Main(); }
