// Reproduces Figure 7 on Caldot1.
//   Left: object detection speed (per-frame seconds) vs mAP@50 for YOLOv3
//         alone at varying input resolutions, against YOLOv3 + the
//         segmentation proxy model with k = 1..4 window sizes (k = 1 is
//         detector-only; gains diminish beyond k = 3).
//   Right: precision-recall curves of the per-cell proxy scores at each of
//          the five trained input resolutions.

#include <cstdio>
#include <memory>

#include "bench/bench_common.h"
#include "core/otif.h"
#include "core/window_select.h"
#include "eval/workload.h"
#include "sim/raster.h"
#include "track/metrics.h"
#include "util/strings.h"

namespace otif {
namespace {

int Main() {
  core::RunScale scale = bench::BenchScale();
  scale.proxy_resolutions = 5;  // Figure 7 needs all five resolutions.
  std::printf("=== Figure 7: segmentation proxy model on Caldot1 ===\n");
  bench::PrintScale(scale);

  const eval::TrackWorkload workload =
      eval::MakeTrackWorkload(sim::DatasetId::kCaldot1);
  core::Otif otif_system(workload.spec, scale);
  auto valid = std::make_shared<std::vector<sim::Clip>>(
      otif_system.ValidClips());
  const core::AccuracyFn valid_fn = workload.MakeAccuracyFn(valid.get());
  core::Tuner::Options topts;
  topts.max_iterations = 4;  // Models are what matters here, not the curve.
  otif_system.Prepare(valid_fn, topts);

  const auto test = otif_system.TestClips();
  const models::DetectorArch arch =
      models::ArchByName(models::StandardDetectorArchs(), "yolov3");
  models::SimulatedDetector detector(arch);

  // ~50 labeled frames sampled across the test clips (paper: 50
  // hand-labeled frames).
  struct LabeledFrame {
    const sim::Clip* clip;
    int frame;
  };
  std::vector<LabeledFrame> frames;
  for (const sim::Clip& clip : test) {
    for (int f = 0; f < clip.num_frames();
         f += std::max(1, clip.num_frames() * static_cast<int>(test.size()) /
                              50)) {
      frames.push_back({&clip, f});
    }
  }

  // --- Left: mAP@50 vs detection time ---
  std::printf("# left: detector speed vs mAP@50\n");
  std::printf("series,per_frame_sec,map50\n");
  auto map_for = [&](double det_scale,
                     const std::vector<core::WindowSize>* sizes,
                     models::ProxyModel* proxy, double threshold,
                     double* per_frame_sec) {
    std::vector<track::Detection> all_dets, all_gt;
    double time_sum = 0.0;
    for (const LabeledFrame& lf : frames) {
      const auto gt = lf.clip->GroundTruthDetections(lf.frame);
      for (const auto& g : gt) all_gt.push_back(g);
      track::FrameDetections dets = detector.Detect(*lf.clip, lf.frame,
                                                    det_scale);
      if (sizes != nullptr && proxy != nullptr) {
        sim::Rasterizer raster(lf.clip);
        const nn::Tensor scores = proxy->Score(raster.Render(
            lf.frame, proxy->resolution().raster_w(),
            proxy->resolution().raster_h()));
        const core::CellGrid grid =
            core::CellGrid::FromScores(scores, threshold);
        std::vector<core::WindowSize> scaled;
        for (const core::WindowSize& s : *sizes) {
          scaled.push_back({static_cast<int>(std::ceil(s.w * det_scale)),
                            static_cast<int>(std::ceil(s.h * det_scale))});
        }
        const double sw = workload.spec.width * det_scale;
        const double sh = workload.spec.height * det_scale;
        if (grid.CountPositive() == 0) {
          dets.clear();
        } else {
          const core::GroupingResult grouping =
              core::GroupCells(grid, scaled, arch, sw, sh);
          time_sum += grouping.est_seconds;
          dets = models::FilterByWindows(
              dets, core::WindowsToNativeRects(grouping, sw, sh, grid.grid_w,
                                               grid.grid_h, det_scale));
        }
        time_sum += 3.0e-4;  // Proxy inference.
      } else {
        time_sum += models::DetectorWindowSeconds(
            arch, workload.spec.width * det_scale,
            workload.spec.height * det_scale);
      }
      for (const auto& d : dets) all_dets.push_back(d);
    }
    *per_frame_sec = time_sum / frames.size();
    return track::AveragePrecision50(all_dets, all_gt);
  };

  const std::vector<double> det_scales = {1.0, 0.77, 0.59, 0.45, 0.35, 0.27};
  for (double s : det_scales) {
    double sec = 0.0;
    const double map = map_for(s, nullptr, nullptr, 0.0, &sec);
    std::printf("yolov3_only,%.5f,%.3f\n", sec, map);
  }
  // Proxy + windows at k = 1..4.
  models::ProxyModel* proxy = otif_system.trained().proxies[0].get();
  for (int k = 1; k <= 4; ++k) {
    // Re-select W with cardinality k from oracle grids.
    std::vector<core::CellGrid> grids;
    for (const LabeledFrame& lf : frames) {
      const nn::Tensor labels = proxy->MakeLabels(
          lf.clip->GroundTruthDetections(lf.frame), workload.spec.width,
          workload.spec.height);
      core::CellGrid g;
      g.grid_w = proxy->resolution().grid_w();
      g.grid_h = proxy->resolution().grid_h();
      g.positive.assign(static_cast<size_t>(g.grid_w) * g.grid_h, 0);
      for (int64_t i = 0; i < labels.size(); ++i) {
        g.positive[static_cast<size_t>(i)] = labels[i] > 0.5f ? 1 : 0;
      }
      grids.push_back(std::move(g));
    }
    core::WindowSizeSelector::Options wopts;
    wopts.k = k;
    core::WindowSizeSelector selector(workload.spec.width,
                                      workload.spec.height, wopts);
    const auto sizes = selector.Select(grids, arch);
    for (double s : det_scales) {
      double sec = 0.0;
      const double map = map_for(s, &sizes, proxy, 0.35, &sec);
      std::printf("proxy_k%d,%.5f,%.3f\n", k, sec, map);
    }
  }

  // --- Right: per-cell precision-recall per resolution ---
  std::printf("\n# right: proxy per-cell precision-recall\n");
  std::printf("resolution,threshold,precision,recall\n");
  for (const auto& proxy_ptr : otif_system.trained().proxies) {
    models::ProxyModel* p = proxy_ptr.get();
    std::vector<double> scores;
    std::vector<int> labels;
    for (const LabeledFrame& lf : frames) {
      sim::Rasterizer raster(lf.clip);
      const nn::Tensor s = p->Score(raster.Render(
          lf.frame, p->resolution().raster_w(), p->resolution().raster_h()));
      const nn::Tensor l = p->MakeLabels(
          lf.clip->GroundTruthDetections(lf.frame), workload.spec.width,
          workload.spec.height);
      for (int64_t i = 0; i < s.size(); ++i) {
        scores.push_back(s[i]);
        labels.push_back(l[i] > 0.5f ? 1 : 0);
      }
    }
    const auto curve = track::PrecisionRecallCurve(scores, labels, 11);
    for (const track::PrPoint& pt : curve) {
      std::printf("%dx%d,%.2f,%.3f,%.3f\n", p->resolution().world_w,
                  p->resolution().world_h, pt.threshold, pt.precision,
                  pt.recall);
    }
  }
  return 0;
}

}  // namespace
}  // namespace otif

int main() { return otif::Main(); }
