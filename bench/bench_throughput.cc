// Worker-count sweep over a fixed per-clip pipeline workload. Measures
// wall-clock throughput of the parallel clip scheduler (clips processed per
// second of real time — not simulated seconds) and emits a JSON run report
// on stdout so sweeps can be archived and diffed across machines.
//
// The workload runs the proxy-enabled pipeline (untrained proxy weights:
// deterministic per seed, and training quality is irrelevant to throughput)
// so the report covers every execution stage plus the shared proxy score
// cache. Per worker count the report carries the per-stage wall-clock
// totals from the pipeline's telemetry spans, thread-pool utilization
// (busy seconds / wall * lanes), and the proxy cache hit rate; the full
// telemetry snapshot of the last sweep point is appended under "telemetry".
//
// Usage: bench_throughput [clips] [frames_per_clip]

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <thread>
#include <vector>

#include "core/pipeline.h"
#include "models/cost_model.h"
#include "models/proxy.h"
#include "sim/dataset.h"
#include "util/logging.h"
#include "util/telemetry.h"
#include "util/thread_pool.h"
#include "util/trace.h"

namespace {

double RunOnce(const otif::core::Pipeline& pipeline,
               const std::vector<otif::sim::Clip>& clips) {
  const auto start = std::chrono::steady_clock::now();
  std::vector<otif::core::PipelineResult> results = otif::ParallelMap(
      otif::ThreadPool::Default(), static_cast<int64_t>(clips.size()),
      [&](int64_t i) { return pipeline.Run(clips[static_cast<size_t>(i)]); });
  const auto end = std::chrono::steady_clock::now();
  // Keep the results observable so the work cannot be optimized away.
  int64_t total_tracks = 0;
  for (const auto& r : results) total_tracks += static_cast<int64_t>(r.tracks.size());
  if (total_tracks < 0) std::abort();
  return std::chrono::duration<double>(end - start).count();
}

double StageWallSeconds(const otif::telemetry::TelemetrySnapshot& snapshot,
                        otif::models::CostCategory category) {
  const otif::telemetry::SpanSample* span = otif::telemetry::FindSpan(
      snapshot, std::string("stage/") +
                    otif::models::CostCategoryName(category));
  return span != nullptr ? span->total_seconds : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  otif::InitLogLevelFromEnv();
  // The report is built from telemetry; this bench measures instrumented
  // throughput, so collection is always on regardless of OTIF_TELEMETRY.
  otif::telemetry::SetEnabled(true);

  const int num_clips = argc > 1 ? std::atoi(argv[1]) : 16;
  const int frames = argc > 2 ? std::atoi(argv[2]) : 300;

  const otif::sim::DatasetSpec spec =
      otif::sim::MakeDataset(otif::sim::DatasetId::kSynthetic);
  std::vector<otif::sim::Clip> clips;
  for (int c = 0; c < num_clips; ++c) {
    clips.push_back(otif::sim::SimulateClip(
        spec, otif::sim::ClipSeed(spec, 3, c), frames));
  }

  // Proxy-enabled SORT pipeline over a fixed (untrained, deterministic)
  // proxy model: exercises decode/proxy/detect/track stages and the score
  // cache without paying for training.
  otif::core::TrainedModels trained;
  const auto resolutions = otif::models::StandardProxyResolutions();
  trained.proxies.push_back(std::make_unique<otif::models::ProxyModel>(
      resolutions.back(), /*seed=*/1234));
  // The largest window must cover the full frame (synthetic is 320x240).
  trained.window_sizes = {otif::core::WindowSize{64, 64},
                          otif::core::WindowSize{128, 96},
                          otif::core::WindowSize{spec.width, spec.height}};
  otif::core::PipelineConfig config;
  config.use_proxy = true;
  config.proxy_resolution_index = 0;
  config.proxy_threshold = 0.3;
  const otif::core::Pipeline pipeline(config, &trained);

  // Sweep 1, 2, 4 and the machine width (deduplicated, ascending).
  std::vector<int> worker_counts = {1, 2, 4};
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  if (hw > 0) worker_counts.push_back(hw);
  std::sort(worker_counts.begin(), worker_counts.end());
  worker_counts.erase(
      std::unique(worker_counts.begin(), worker_counts.end()),
      worker_counts.end());

  std::printf("{\n  \"benchmark\": \"pipeline_throughput\",\n");
  std::printf("  \"clips\": %d,\n  \"frames_per_clip\": %d,\n", num_clips,
              frames);
  std::printf("  \"config\": \"%s\",\n", config.ToString().c_str());
  std::printf("  \"hardware_concurrency\": %d,\n  \"results\": [\n", hw);
  otif::telemetry::TelemetrySnapshot snapshot;
  for (size_t wi = 0; wi < worker_counts.size(); ++wi) {
    const int workers = worker_counts[wi];
    otif::ThreadPool::SetDefaultThreads(workers);
    RunOnce(pipeline, clips);  // Warm-up: fault in clip state and pages.
    // Measure from a clean slate so the report covers exactly the measured
    // repetitions of this sweep point.
    otif::telemetry::ResetAll();
    trained.proxy_cache.ResetCounters();
    double best = RunOnce(pipeline, clips);
    double wall_sum = best;
    for (int rep = 0; rep < 2; ++rep) {
      const double seconds = RunOnce(pipeline, clips);
      wall_sum += seconds;
      best = std::min(best, seconds);
    }
    snapshot = otif::telemetry::CaptureSnapshot();

    const otif::telemetry::GaugeSample* busy =
        otif::telemetry::FindGauge(snapshot, "threadpool.busy_seconds");
    const otif::telemetry::CounterSample* tasks =
        otif::telemetry::FindCounter(snapshot, "threadpool.tasks_executed");
    const double utilization =
        busy != nullptr && wall_sum > 0.0
            ? busy->value / (wall_sum * workers)
            : 0.0;
    std::printf(
        "    {\"workers\": %d, \"seconds\": %.4f, \"clips_per_sec\": %.3f,\n"
        "     \"utilization\": %.3f, \"tasks_executed\": %lld,\n",
        workers, best, static_cast<double>(num_clips) / best, utilization,
        tasks != nullptr ? static_cast<long long>(tasks->value) : 0LL);
    std::printf(
        "     \"stage_wall_seconds\": {\"decode\": %.4f, \"proxy\": %.4f, "
        "\"detect\": %.4f, \"track\": %.4f, \"refine\": %.4f},\n",
        StageWallSeconds(snapshot, otif::models::CostCategory::kDecode),
        StageWallSeconds(snapshot, otif::models::CostCategory::kProxy),
        StageWallSeconds(snapshot, otif::models::CostCategory::kDetect),
        StageWallSeconds(snapshot, otif::models::CostCategory::kTrack),
        StageWallSeconds(snapshot, otif::models::CostCategory::kRefine));
    std::printf(
        "     \"proxy_cache\": {\"hits\": %lld, \"misses\": %lld, "
        "\"evictions\": %lld, \"hit_rate\": %.4f}}%s\n",
        static_cast<long long>(trained.proxy_cache.hits()),
        static_cast<long long>(trained.proxy_cache.misses()),
        static_cast<long long>(trained.proxy_cache.evictions()),
        trained.proxy_cache.hit_rate(),
        wi + 1 < worker_counts.size() ? "," : "");
  }
  std::printf("  ],\n  \"telemetry\": %s\n}\n",
              otif::telemetry::SnapshotToJson(snapshot).c_str());
  otif::ThreadPool::SetDefaultThreads(1);
  return 0;
}
