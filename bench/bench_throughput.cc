// Worker-count sweep over a fixed per-clip pipeline workload. Measures
// wall-clock throughput of the parallel clip scheduler (clips processed per
// second of real time — not simulated seconds) and emits JSON on stdout so
// sweeps can be archived and diffed across machines.
//
// Usage: bench_throughput [clips] [frames_per_clip]

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "core/pipeline.h"
#include "sim/dataset.h"
#include "util/thread_pool.h"

namespace {

double RunOnce(const otif::core::Pipeline& pipeline,
               const std::vector<otif::sim::Clip>& clips) {
  const auto start = std::chrono::steady_clock::now();
  std::vector<otif::core::PipelineResult> results = otif::ParallelMap(
      otif::ThreadPool::Default(), static_cast<int64_t>(clips.size()),
      [&](int64_t i) { return pipeline.Run(clips[static_cast<size_t>(i)]); });
  const auto end = std::chrono::steady_clock::now();
  // Keep the results observable so the work cannot be optimized away.
  int64_t total_tracks = 0;
  for (const auto& r : results) total_tracks += static_cast<int64_t>(r.tracks.size());
  if (total_tracks < 0) std::abort();
  return std::chrono::duration<double>(end - start).count();
}

}  // namespace

int main(int argc, char** argv) {
  const int num_clips = argc > 1 ? std::atoi(argv[1]) : 16;
  const int frames = argc > 2 ? std::atoi(argv[2]) : 300;

  const otif::sim::DatasetSpec spec =
      otif::sim::MakeDataset(otif::sim::DatasetId::kSynthetic);
  std::vector<otif::sim::Clip> clips;
  for (int c = 0; c < num_clips; ++c) {
    clips.push_back(otif::sim::SimulateClip(
        spec, otif::sim::ClipSeed(spec, 3, c), frames));
  }

  otif::core::PipelineConfig config;  // Full-rate SORT: detector-dominated.
  const otif::core::Pipeline pipeline(config, nullptr);

  // Sweep 1, 2, 4 and the machine width (deduplicated, ascending).
  std::vector<int> worker_counts = {1, 2, 4};
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  if (hw > 0) worker_counts.push_back(hw);
  std::sort(worker_counts.begin(), worker_counts.end());
  worker_counts.erase(
      std::unique(worker_counts.begin(), worker_counts.end()),
      worker_counts.end());

  std::printf("{\n  \"benchmark\": \"pipeline_throughput\",\n");
  std::printf("  \"clips\": %d,\n  \"frames_per_clip\": %d,\n", num_clips,
              frames);
  std::printf("  \"hardware_concurrency\": %d,\n  \"results\": [\n", hw);
  for (size_t wi = 0; wi < worker_counts.size(); ++wi) {
    const int workers = worker_counts[wi];
    otif::ThreadPool::SetDefaultThreads(workers);
    RunOnce(pipeline, clips);  // Warm-up: fault in clip state and pages.
    double best = RunOnce(pipeline, clips);
    for (int rep = 0; rep < 2; ++rep) {
      best = std::min(best, RunOnce(pipeline, clips));
    }
    std::printf(
        "    {\"workers\": %d, \"seconds\": %.4f, \"clips_per_sec\": %.3f}%s\n",
        workers, best, static_cast<double>(num_clips) / best,
        wi + 1 < worker_counts.size() ? "," : "");
  }
  std::printf("  ]\n}\n");
  otif::ThreadPool::SetDefaultThreads(1);
  return 0;
}
