// Worker-count sweep over a fixed per-clip pipeline workload. Measures
// wall-clock throughput of the parallel clip scheduler (clips processed per
// second of real time — not simulated seconds) and emits a JSON run report
// on stdout so sweeps can be archived and diffed across machines
// (tools/bench_baseline.py builds the perf baseline from it).
//
// The workload runs the proxy-enabled pipeline (untrained proxy weights:
// deterministic per seed, and training quality is irrelevant to throughput)
// so the report covers every execution stage plus the shared proxy score
// cache. Per worker count the report carries the per-stage wall-clock
// totals from the pipeline's telemetry spans, thread-pool utilization
// (busy seconds / wall * lanes), queue-depth percentiles, and the proxy
// cache hit rate; the full telemetry snapshot of the last sweep point is
// appended under "telemetry".
//
// With OTIF_TRACE_TIMELINE set (see bench::BenchInit) the sweep also
// exports a Chrome trace-event timeline of every stage span, tagged with
// clip ids across the worker threads.
//
// With --executor=streaming the sweep runs through the cross-stream
// dataflow executor (bounded stage queues, cross-clip proxy/detector
// batching) instead of the clip-level ParallelMap; the report then also
// carries the cross-clip batch-fill distribution and the stage channels'
// queue-depth percentiles.
//
// With --profile each sweep point's measured repetitions run under the
// sampling CPU profiler (src/obs/profiler); the report then carries a
// "profile" section per point: sample/drop counts, the measured signal-
// handler overhead as a fraction of profiled CPU, and the top-K inclusive
// frames ("which functions is the CPU actually inside or beneath").
// Profiling is observational only — throughput numbers remain comparable
// with runs that did not pass the flag (minus the ~per-sample handler cost
// the overhead_fraction field itself reports).
//
// Usage: bench_throughput [--executor=serial|streaming] [--profile]
//                         [clips] [frames_per_clip]

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

#include "bench/bench_common.h"
#include "core/executor/streaming_executor.h"
#include "core/pipeline.h"
#include "mem/buffer_pool.h"
#include "obs/profiler.h"
#include "obs/run_progress.h"
#include "models/cost_model.h"
#include "models/proxy.h"
#include "sim/dataset.h"
#include "util/json_writer.h"
#include "util/strings.h"
#include "util/telemetry.h"
#include "util/thread_pool.h"
#include "util/trace.h"
#include "util/trace_timeline.h"

namespace {

double RunOnce(const otif::core::Pipeline& pipeline,
               const std::vector<otif::sim::Clip>& clips) {
  // Live-progress run registration (no-op without OTIF_METRICS_PORT /
  // OTIF_PROGRESS_SEC); the streaming path registers inside executor.Run.
  if (otif::obs::ProgressEnabled()) {
    const int gap = pipeline.config().sampling_gap;
    std::vector<int64_t> totals;
    totals.reserve(clips.size());
    for (const otif::sim::Clip& clip : clips) {
      totals.push_back((clip.num_frames() + gap - 1) / gap);
    }
    otif::obs::RunProgress::Global().BeginRun("bench_serial",
                                              std::move(totals));
  }
  const auto start = std::chrono::steady_clock::now();
  std::vector<otif::core::PipelineResult> results = otif::ParallelMap(
      otif::ThreadPool::Default(), static_cast<int64_t>(clips.size()),
      [&](int64_t i) {
        // Timeline attribution: this task is clip i.
        otif::telemetry::timeline::ScopedContext ctx({.clip = i});
        return pipeline.Run(clips[static_cast<size_t>(i)]);
      });
  const auto end = std::chrono::steady_clock::now();
  if (otif::obs::ProgressEnabled()) {
    otif::obs::RunProgress::Global().EndRun();
  }
  // Keep the results observable so the work cannot be optimized away.
  int64_t total_tracks = 0;
  for (const auto& r : results) total_tracks += static_cast<int64_t>(r.tracks.size());
  if (total_tracks < 0) std::abort();
  return std::chrono::duration<double>(end - start).count();
}

double RunOnceStreaming(const otif::core::PipelineConfig& config,
                        const otif::core::TrainedModels* trained,
                        const std::vector<otif::sim::Clip>& clips,
                        otif::core::StreamingRunReport* out_report) {
  // Constructed per run so the worker widths re-derive from the current
  // default-pool size at every sweep point.
  otif::core::StreamingExecutor executor(
      config, trained, otif::core::StreamingOptionsFromEnv());
  const auto start = std::chrono::steady_clock::now();
  otif::StatusOr<otif::core::StreamingRunReport> result =
      executor.Run(clips);
  const auto end = std::chrono::steady_clock::now();
  if (!result.ok()) {
    std::fprintf(stderr, "streaming run failed: %s\n",
                 result.status().ToString().c_str());
    std::abort();
  }
  int64_t total_tracks = 0;
  for (const auto& r : result->results) {
    total_tracks += static_cast<int64_t>(r.tracks.size());
  }
  if (total_tracks < 0) std::abort();
  if (out_report != nullptr) *out_report = std::move(result.value());
  return std::chrono::duration<double>(end - start).count();
}

// --- Per-clip result digests -------------------------------------------------
//
// A 64-bit FNV-1a over every result field the executor's bit-identity
// contract covers. check.sh --faults compares these digests between a
// faulted and a fault-free run to prove surviving clips were untouched.

void DigestBytes(uint64_t* h, const void* data, size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; ++i) {
    *h ^= p[i];
    *h *= 1099511628211ull;
  }
}

template <typename T>
void DigestValue(uint64_t* h, const T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  DigestBytes(h, &value, sizeof(value));
}

uint64_t ResultDigest(const otif::core::PipelineResult& r) {
  uint64_t h = 14695981039346656037ull;
  DigestValue(&h, r.frames_processed);
  DigestValue(&h, r.detections_kept);
  DigestValue(&h, r.mean_window_coverage);
  for (int c = 0; c < otif::models::kNumCostCategories; ++c) {
    DigestValue(
        &h, r.clock.Seconds(static_cast<otif::models::CostCategory>(c)));
  }
  for (const otif::track::Track& t : r.tracks) {
    DigestValue(&h, t.id);
    DigestValue(&h, t.cls);
    for (const otif::track::Detection& d : t.detections) {
      DigestValue(&h, d.frame);
      DigestValue(&h, d.box.cx);
      DigestValue(&h, d.box.cy);
      DigestValue(&h, d.box.w);
      DigestValue(&h, d.box.h);
      DigestValue(&h, d.cls);
      DigestValue(&h, d.confidence);
    }
  }
  return h;
}

double StageWallSeconds(const otif::telemetry::TelemetrySnapshot& snapshot,
                        otif::models::CostCategory category) {
  const otif::telemetry::SpanSample* span = otif::telemetry::FindSpan(
      snapshot, std::string("stage/") +
                    otif::models::CostCategoryName(category));
  return span != nullptr ? span->total_seconds : 0.0;
}

const otif::telemetry::HistogramSample* FindHistogram(
    const otif::telemetry::TelemetrySnapshot& snapshot,
    const std::string& name) {
  for (const otif::telemetry::HistogramSample& s : snapshot.histograms) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

/// Emits {"mean_frames": .., "p50": .., "p99": ..} for a (possibly absent)
/// frame-count histogram into the currently open object.
void WriteFrameHistogramStats(otif::JsonWriter& report,
                              const otif::telemetry::HistogramSample* h) {
  const otif::telemetry::HistogramSample empty{};
  const otif::telemetry::HistogramSample& s = h != nullptr ? *h : empty;
  report.Key("mean_frames")
      .Value(s.count > 0 ? s.sum / static_cast<double>(s.count) : 0.0);
  report.Key("p50").Value(otif::telemetry::HistogramQuantile(s, 0.50));
  report.Key("p99").Value(otif::telemetry::HistogramQuantile(s, 0.99));
}

/// Emits {"p50": .., "p99": ..} for a (possibly absent) depth histogram.
void WriteDepthStats(otif::JsonWriter& report,
                     const otif::telemetry::HistogramSample* h) {
  const otif::telemetry::HistogramSample empty{};
  const otif::telemetry::HistogramSample& s = h != nullptr ? *h : empty;
  report.Key("p50").Value(otif::telemetry::HistogramQuantile(s, 0.50));
  report.Key("p99").Value(otif::telemetry::HistogramQuantile(s, 0.99));
}

}  // namespace

int main(int argc, char** argv) {
  otif::bench::BenchInit();
  // The report is built from telemetry; this bench measures instrumented
  // throughput, so collection is always on regardless of OTIF_TELEMETRY.
  otif::telemetry::SetEnabled(true);

  bool streaming = false;
  bool profile = false;
  std::vector<const char*> positional;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--executor=streaming") == 0) {
      streaming = true;
    } else if (std::strcmp(argv[i], "--executor=serial") == 0) {
      streaming = false;
    } else if (std::strcmp(argv[i], "--profile") == 0) {
      profile = true;
    } else {
      positional.push_back(argv[i]);
    }
  }
  const int num_clips =
      positional.size() > 0 ? std::atoi(positional[0]) : 16;
  const int frames = positional.size() > 1 ? std::atoi(positional[1]) : 300;

  const otif::sim::DatasetSpec spec =
      otif::sim::MakeDataset(otif::sim::DatasetId::kSynthetic);
  std::vector<otif::sim::Clip> clips;
  for (int c = 0; c < num_clips; ++c) {
    clips.push_back(otif::sim::SimulateClip(
        spec, otif::sim::ClipSeed(spec, 3, c), frames));
  }

  // Proxy-enabled SORT pipeline over a fixed (untrained, deterministic)
  // proxy model: exercises decode/proxy/detect/track stages and the score
  // cache without paying for training.
  otif::core::TrainedModels trained;
  const auto resolutions = otif::models::StandardProxyResolutions();
  trained.proxies.push_back(std::make_unique<otif::models::ProxyModel>(
      resolutions.back(), /*seed=*/1234));
  // The largest window must cover the full frame (synthetic is 320x240).
  trained.window_sizes = {otif::core::WindowSize{64, 64},
                          otif::core::WindowSize{128, 96},
                          otif::core::WindowSize{spec.width, spec.height}};
  otif::core::PipelineConfig config;
  config.use_proxy = true;
  config.proxy_resolution_index = 0;
  config.proxy_threshold = 0.3;
  const otif::core::Pipeline pipeline(config, &trained);

  // Sweep 1, 2, 4 and the machine width (deduplicated, ascending).
  std::vector<int> worker_counts = {1, 2, 4};
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  if (hw > 0) worker_counts.push_back(hw);
  std::sort(worker_counts.begin(), worker_counts.end());
  worker_counts.erase(
      std::unique(worker_counts.begin(), worker_counts.end()),
      worker_counts.end());

  otif::JsonWriter report;
  report.BeginObject();
  report.Key("benchmark").Value("pipeline_throughput");
  report.Key("executor").Value(streaming ? "streaming" : "serial");
  report.Key("clips").Value(num_clips);
  report.Key("frames_per_clip").Value(frames);
  report.Key("config").Value(config.ToString());
  report.Key("hardware_concurrency").Value(hw);
  report.Key("results").BeginArray();
  otif::telemetry::TelemetrySnapshot snapshot;
  otif::core::StreamingRunReport last_streaming;
  for (const int workers : worker_counts) {
    otif::ThreadPool::SetDefaultThreads(workers);
    const auto run_once = [&] {
      return streaming
                 ? RunOnceStreaming(config, &trained, clips, &last_streaming)
                 : RunOnce(pipeline, clips);
    };
    // Warm-up: the first run faults in clip state and the proxy cache; the
    // second runs the warm-cache code path the measured reps take, faulting
    // in the buffer-pool blocks that path's liveness peak needs. After it,
    // a serial single-worker run is exactly replayed by each measured rep,
    // so the steady-state allocation count is deterministically zero.
    run_once();
    run_once();
    // Measure from a clean slate so the report covers exactly the measured
    // repetitions of this sweep point. Pool stats are intrinsic atomics
    // (not registry metrics), so they are deltaed across the window instead
    // of reset — ResetAll() must not disturb them.
    otif::telemetry::ResetAll();
    trained.proxy_cache.ResetCounters();
    const otif::mem::BufferPool::Stats mem_before =
        otif::mem::BufferPool::Global().GetStats();
    constexpr int kReps = 3;
    // --profile: sample the measured reps (not the warm-ups) so the top
    // frames describe exactly the window the throughput numbers cover.
    bool profiling = false;
    if (profile) {
      const otif::Status started = otif::obs::CpuProfiler::Global().Start();
      profiling = started.ok();
      if (!profiling) {
        std::fprintf(stderr, "profiler disabled: %s\n",
                     started.ToString().c_str());
      }
    }
    double best = run_once();
    double wall_sum = best;
    for (int rep = 1; rep < kReps; ++rep) {
      const double seconds = run_once();
      wall_sum += seconds;
      best = std::min(best, seconds);
    }
    otif::obs::Profile prof;
    if (profiling) {
      otif::StatusOr<otif::obs::Profile> stopped =
          otif::obs::CpuProfiler::Global().Stop();
      if (stopped.ok()) {
        prof = std::move(stopped.value());
      } else {
        profiling = false;
        std::fprintf(stderr, "profiler stop failed: %s\n",
                     stopped.status().ToString().c_str());
      }
    }
    const otif::mem::BufferPool::Stats mem_after =
        otif::mem::BufferPool::Global().GetStats();
    // The steady-state-allocation claim, measured: pool misses plus arena
    // chunk growth across the measured reps, after the warm-up run above.
    const int64_t mem_hits = mem_after.hits - mem_before.hits;
    const int64_t mem_misses = mem_after.misses - mem_before.misses;
    const int64_t arena_allocs =
        mem_after.arena_allocs - mem_before.arena_allocs;
    const int64_t hot_loop_allocations = mem_misses + arena_allocs;
    const double pool_hit_rate =
        mem_hits + mem_misses > 0
            ? static_cast<double>(mem_hits) / (mem_hits + mem_misses)
            : 1.0;
    otif::mem::BufferPool::Global().PublishTelemetry();
    otif::telemetry::MetricsRegistry::Global()
        .GetGauge("mem.pool.allocations_per_clip")
        ->Set(static_cast<double>(hot_loop_allocations) /
              (static_cast<double>(num_clips) * kReps));
    snapshot = otif::telemetry::CaptureSnapshot();

    const otif::telemetry::GaugeSample* busy =
        otif::telemetry::FindGauge(snapshot, "threadpool.busy_seconds");
    const otif::telemetry::CounterSample* tasks =
        otif::telemetry::FindCounter(snapshot, "threadpool.tasks_executed");
    const double utilization =
        busy != nullptr && wall_sum > 0.0
            ? busy->value / (wall_sum * workers)
            : 0.0;
    report.BeginObject();
    report.Key("workers").Value(workers);
    report.Key("seconds").Value(best);
    report.Key("clips_per_sec").Value(static_cast<double>(num_clips) / best);
    report.Key("utilization").Value(utilization);
    report.Key("tasks_executed")
        .Value(tasks != nullptr ? tasks->value : int64_t{0});
    report.Key("stage_wall_seconds").BeginObject();
    report.Key("decode").Value(
        StageWallSeconds(snapshot, otif::models::CostCategory::kDecode));
    report.Key("proxy").Value(
        StageWallSeconds(snapshot, otif::models::CostCategory::kProxy));
    report.Key("detect").Value(
        StageWallSeconds(snapshot, otif::models::CostCategory::kDetect));
    report.Key("track").Value(
        StageWallSeconds(snapshot, otif::models::CostCategory::kTrack));
    report.Key("refine").Value(
        StageWallSeconds(snapshot, otif::models::CostCategory::kRefine));
    report.EndObject();
    report.Key("queue_depth").BeginObject();
    const otif::telemetry::HistogramSample* depth =
        FindHistogram(snapshot, "threadpool.queue_depth");
    const otif::telemetry::HistogramSample empty{};
    const otif::telemetry::HistogramSample& d =
        depth != nullptr ? *depth : empty;
    report.Key("p50").Value(otif::telemetry::HistogramQuantile(d, 0.50));
    report.Key("p90").Value(otif::telemetry::HistogramQuantile(d, 0.90));
    report.Key("p99").Value(otif::telemetry::HistogramQuantile(d, 0.99));
    report.EndObject();
    report.Key("proxy_cache").BeginObject();
    report.Key("hits").Value(trained.proxy_cache.hits());
    report.Key("misses").Value(trained.proxy_cache.misses());
    report.Key("evictions").Value(trained.proxy_cache.evictions());
    report.Key("hit_rate").Value(trained.proxy_cache.hit_rate());
    report.EndObject();
    // Frame/tensor memory layer over the measured reps: the check.sh gate
    // asserts allocations == 0 at the deterministic single-worker point and
    // pool_hit_rate >= 0.99 everywhere (serial executor).
    report.Key("memory").BeginObject();
    report.Key("pool_hits").Value(mem_hits);
    report.Key("pool_misses").Value(mem_misses);
    report.Key("arena_allocations").Value(arena_allocs);
    report.Key("allocations").Value(hot_loop_allocations);
    report.Key("allocations_per_clip")
        .Value(static_cast<double>(hot_loop_allocations) /
               (static_cast<double>(num_clips) * kReps));
    report.Key("pool_hit_rate").Value(pool_hit_rate);
    report.Key("bytes_in_flight").Value(mem_after.bytes_in_flight);
    report.Key("bytes_retained").Value(mem_after.bytes_retained);
    report.Key("arena_bytes_reserved").Value(mem_after.arena_bytes_reserved);
    report.EndObject();
    if (profile) {
      report.Key("profile").BeginObject();
      report.Key("enabled").Value(profiling);
      if (profiling) {
        report.Key("hz").Value(prof.hz);
        report.Key("duration_seconds").Value(prof.duration_seconds);
        report.Key("samples").Value(prof.samples);
        report.Key("dropped").Value(prof.dropped);
        report.Key("signal_overhead_seconds")
            .Value(prof.signal_overhead_seconds);
        // Samples fire at `hz` per consumed CPU second, so samples/hz
        // estimates the CPU the window profiled; handler CPU over that is
        // the profiler's own overhead fraction (what the check.sh gate
        // bounds at 5%). Immune to wall-clock noise, unlike an A/B of two
        // bench runs.
        const double cpu_seconds =
            prof.hz > 0 ? static_cast<double>(prof.samples) / prof.hz : 0.0;
        report.Key("overhead_fraction")
            .Value(cpu_seconds > 0.0
                       ? prof.signal_overhead_seconds / cpu_seconds
                       : 0.0);
        report.Key("top_frames").BeginArray();
        for (const auto& [symbol, count] : otif::obs::TopFrames(prof, 40)) {
          report.BeginObject();
          report.Key("symbol").Value(symbol);
          report.Key("count").Value(count);
          report.EndObject();
        }
        report.EndArray();
      }
      report.EndObject();
    }
    // Frames per detector invocation at the point the model actually ran —
    // the cross-clip batching win shows up as a larger mean here.
    report.Key("detect_batch").BeginObject();
    WriteFrameHistogramStats(
        report, FindHistogram(snapshot, "detect.invocation_frames"));
    report.EndObject();
    if (streaming) {
      report.Key("batch_fill").BeginObject();
      report.Key("proxy").BeginObject();
      WriteFrameHistogramStats(
          report, FindHistogram(snapshot, "executor.batch.proxy.fill"));
      report.EndObject();
      report.Key("detect").BeginObject();
      WriteFrameHistogramStats(
          report, FindHistogram(snapshot, "executor.batch.detect.fill"));
      report.EndObject();
      report.EndObject();
      report.Key("executor_queue_depth").BeginObject();
      for (const char* ch : {"proxy", "detect", "commit"}) {
        report.Key(ch).BeginObject();
        WriteDepthStats(
            report,
            FindHistogram(snapshot, std::string("executor.channel.") + ch +
                                        ".occupancy"));
        report.EndObject();
      }
      report.EndObject();
    }
    report.EndObject();
  }
  report.EndArray();
  if (streaming) {
    // Per-clip digests and the fault-recovery report of the LAST streaming
    // run (the highest worker count). In a fault-free run failed_clips is
    // empty and the digests match any other fault-free invocation —
    // check.sh --faults leans on both properties.
    report.Key("clip_digests").BeginArray();
    for (size_t i = 0; i < last_streaming.results.size(); ++i) {
      const bool failed =
          std::any_of(last_streaming.failed_clips.begin(),
                      last_streaming.failed_clips.end(),
                      [&](const otif::core::FailedClip& f) {
                        return f.clip_index == static_cast<int>(i);
                      });
      const bool degraded =
          std::find(last_streaming.degraded_clips.begin(),
                    last_streaming.degraded_clips.end(),
                    static_cast<int>(i)) != last_streaming.degraded_clips.end();
      report.BeginObject();
      report.Key("clip").Value(static_cast<int64_t>(i));
      report.Key("digest").Value(otif::StrFormat(
          "%016llx", static_cast<unsigned long long>(
                         ResultDigest(last_streaming.results[i]))));
      report.Key("failed").Value(failed);
      report.Key("degraded").Value(degraded);
      report.EndObject();
    }
    report.EndArray();
    report.Key("failed_clips").BeginArray();
    for (const otif::core::FailedClip& f : last_streaming.failed_clips) {
      report.BeginObject();
      report.Key("clip").Value(f.clip_index);
      report.Key("status").Value(f.status.ToString());
      report.Key("retries").Value(f.retries);
      report.EndObject();
    }
    report.EndArray();
  }
  report.Key("telemetry").RawValue(otif::telemetry::SnapshotToJson(snapshot));
  report.EndObject();
  std::printf("%s\n", std::move(report).TakeString().c_str());
  std::fflush(stdout);

  // Induced-stall hook for the check.sh watchdog smoke test: begin a
  // synthetic run, commit one frame, then sit idle so /healthz flips to
  // stalled once OTIF_STALL_SEC passes without another commit.
  if (const char* stall_env = std::getenv("OTIF_BENCH_STALL_SEC")) {
    const double stall_seconds = std::atof(stall_env);
    if (stall_seconds > 0.0) {
      otif::obs::SetProgressEnabled(true);
      otif::obs::RunProgress::Global().BeginRun("induced_stall",
                                                std::vector<int64_t>{2});
      otif::obs::RunProgress::Global().OnFramesCommitted(0, 1);
      std::this_thread::sleep_for(
          std::chrono::duration<double>(stall_seconds));
      otif::obs::RunProgress::Global().EndRun();
    }
  }
  otif::ThreadPool::SetDefaultThreads(1);
  return 0;
}
