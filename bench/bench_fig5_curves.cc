// Reproduces Figure 5: runtime-accuracy curves on the test set for each
// dataset and method (OTIF vs Miris, Chameleon, NoScope, CaTDet,
// CenterTrack). Each printed point is one parameter configuration chosen on
// the validation set. Output is a CSV-like series per dataset.

#include <cstdio>

#include "bench/bench_common.h"
#include "eval/harness.h"

namespace otif {
namespace {

int Main() {
  const core::RunScale scale = bench::BenchScale();
  std::printf("=== Figure 5: runtime-accuracy curves ===\n");
  bench::PrintScale(scale);

  for (sim::DatasetId id : sim::AllPaperDatasets()) {
    eval::ExperimentOptions options;
    options.scale = scale;
    StatusOr<eval::TrackExperimentResult> result_or =
        eval::RunTrackExperiment(id, options);
    OTIF_CHECK(result_or.ok()) << result_or.status().ToString();
    const eval::TrackExperimentResult& result = *result_or;
    std::printf("# dataset=%s (best accuracy %.3f)\n", result.dataset.c_str(),
                result.best_accuracy);
    std::printf("method,runtime_sec,accuracy\n");
    for (const auto& [method, points] : result.curves) {
      for (const baselines::MethodPoint& p : points) {
        std::printf("%s,%.2f,%.3f\n", method.c_str(), p.seconds, p.accuracy);
      }
    }
    std::printf("\n");
  }
  return 0;
}

}  // namespace
}  // namespace otif

int main() { return otif::Main(); }
