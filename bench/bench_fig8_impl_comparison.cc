// Counterpart to Figure 8. The paper's figure contrasts the original
// BlazeIt implementation (whose detector misses half the visible cars) with
// the authors' re-implementation; the figure's point is that detector
// quality dominates frame-query accuracy at similar proxy speed. The
// original artifacts are not available offline, so this bench reproduces
// the *mechanism*: the same BlazeIt pipeline run with a deliberately weak
// detector profile (low recall on small objects, many false positives)
// versus the standard profile.

#include <cstdio>

#include "baselines/blazeit.h"
#include "bench/bench_common.h"
#include "eval/workload.h"
#include "models/detector.h"
#include "util/table.h"
#include "util/strings.h"

namespace otif {
namespace {

int Main() {
  const core::RunScale scale = bench::BenchScale();
  std::printf("=== Figure 8 analogue: detector quality vs query accuracy ===\n");
  bench::PrintScale(scale);

  const eval::TrackWorkload workload =
      eval::MakeTrackWorkload(sim::DatasetId::kTokyo);
  core::Otif system(workload.spec, scale);
  const auto train = system.TrainClips();
  const auto test = system.TestClips();

  eval::FrameQuerySpec qspec;
  qspec.dataset = sim::DatasetId::kTokyo;
  qspec.kind = "count";
  eval::CalibrateFrameQuery(test, 0.15, &qspec);
  const auto predicate = qspec.MakePredicate();

  // Detector recall comparison at full scale on sampled frames.
  auto detection_recall = [&](const models::DetectorArch& arch) {
    models::SimulatedDetector det(arch);
    int found = 0, total = 0;
    for (const sim::Clip& clip : test) {
      for (int f = 0; f < clip.num_frames(); f += 20) {
        const auto gt = clip.GroundTruthDetections(f);
        const auto dets =
            models::FilterByConfidence(det.Detect(clip, f, 1.0), 0.4);
        for (const auto& g : gt) {
          ++total;
          for (const auto& d : dets) {
            if (d.gt_id == g.gt_id) {
              ++found;
              break;
            }
          }
        }
      }
    }
    return total > 0 ? static_cast<double>(found) / total : 0.0;
  };

  models::DetectorArch strong =
      models::ArchByName(models::StandardDetectorArchs(), "yolov3");
  models::DetectorArch weak = strong;
  weak.name = "weak_detector";
  weak.size50_px = 30.0;   // Misses anything that is not large.
  weak.max_recall = 0.6;   // Even large objects are missed 40% of the time.
  weak.fp_per_mpx = 3.0;   // Frequent spurious boxes.

  TextTable table({"Implementation", "Detection recall", "Query accuracy",
                   "Query time (s)"});
  for (const auto* arch : {&weak, &strong}) {
    // The BlazeIt query pipeline itself is identical; only the verification
    // detector differs. Temporarily emulate by verifying with the arch's
    // confidence behaviour: re-run the verification loop on predictions
    // scored by the standard proxy.
    baselines::BlazeIt::Options opts;
    opts.limit = 25;
    const baselines::FrameQueryReport report = [&] {
      // Use a one-off pipeline with the chosen detector as the verifier by
      // swapping the arch via a derived target check: run the standard
      // BlazeIt and recompute accuracy under this detector's outputs.
      baselines::FrameQueryReport r = baselines::BlazeIt::RunQuery(
          train, test, qspec.MakeTarget(), *predicate, opts,
          workload.spec.seed * 7);
      if (arch == &weak) {
        // Re-verify the produced frames with the weak detector: frames it
        // "accepts" are those whose weak detections satisfy the predicate.
        models::SimulatedDetector det(weak);
        int good = 0, produced = 0;
        for (const auto& ref : r.output_frames) {
          const sim::Clip& clip = test[static_cast<size_t>(ref.clip_index)];
          const auto dets =
              models::FilterByConfidence(det.Detect(clip, ref.frame, 1.0), 0.4);
          std::vector<geom::BBox> boxes;
          for (const auto& d : dets) boxes.push_back(d.box);
          if (!predicate->Matches(boxes)) continue;  // Weak impl drops it.
          ++produced;
          if (query::GroundTruthMatches(clip, ref.frame, *predicate)) ++good;
        }
        r.accuracy = produced > 0 ? static_cast<double>(good) / produced : 0.0;
      }
      return r;
    }();
    table.AddRow({arch->name, StrFormat("%.2f", detection_recall(*arch)),
                  StrFormat("%.2f", report.accuracy),
                  StrFormat("%.1f", report.query_seconds)});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "Interpretation: with a weak detector (as in the original BlazeIt\n"
      "artifacts, Fig 8 left), the same query pipeline at the same speed\n"
      "finds far fewer true matches; detector quality, not the proxy,\n"
      "bounds frame-query accuracy.\n");
  return 0;
}

}  // namespace
}  // namespace otif

int main() { return otif::Main(); }
