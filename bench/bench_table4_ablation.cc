// Reproduces Table 4: ablation of OTIF on Caldot1 and Warsaw. Four
// successively more complete systems are tuned and the fastest
// configuration within 5% of the best achieved accuracy is reported:
//   1. Detector Only          (tune architecture/resolution, gap fixed 1)
//   2. + Sampling Rate        (add gap tuning, SORT tracker)
//   3. + Recurrent Tracker    (replace SORT with the recurrent model)
//   4. + Segmentation Proxy   (full OTIF)

#include <cstdio>
#include <memory>

#include "bench/bench_common.h"
#include "eval/workload.h"
#include "util/strings.h"
#include "util/table.h"

namespace otif {
namespace {

struct AblationRow {
  const char* name;
  bool gap_tuning;
  core::TrackerKind tracker;
  bool proxy;
};

int Main() {
  const core::RunScale scale = bench::BenchScale();
  std::printf("=== Table 4: ablation study (Caldot1, Warsaw) ===\n");
  bench::PrintScale(scale);

  const AblationRow rows[] = {
      {"Detector Only", false, core::TrackerKind::kSort, false},
      {"+ Sampling Rate", true, core::TrackerKind::kSort, false},
      {"+ Recurrent Tracker", true, core::TrackerKind::kRecurrent, false},
      {"+ Segmentation Proxy Model", true, core::TrackerKind::kRecurrent,
       true},
  };

  TextTable table({"Method", "Caldot1", "Warsaw"});
  std::vector<std::vector<std::string>> cells(
      4, std::vector<std::string>{"", "", ""});
  for (int r = 0; r < 4; ++r) cells[r][0] = rows[r].name;

  int col = 1;
  for (sim::DatasetId id : {sim::DatasetId::kCaldot1, sim::DatasetId::kWarsaw}) {
    const eval::TrackWorkload workload = eval::MakeTrackWorkload(id);
    // Shared training products across ablation rows (one Prepare).
    core::Otif otif_system(workload.spec, scale);
    auto valid = std::make_shared<std::vector<sim::Clip>>(
        otif_system.ValidClips());
    auto test = std::make_shared<std::vector<sim::Clip>>(
        otif_system.TestClips());
    const core::AccuracyFn valid_fn = workload.MakeAccuracyFn(valid.get());
    const core::AccuracyFn test_fn = workload.MakeAccuracyFn(test.get());
    core::Tuner::Options full_opts;
    otif_system.Prepare(valid_fn, full_opts);

    // Best accuracy across all ablation variants defines the 5% band;
    // compute each variant's curve with the shared trained models.
    std::vector<std::vector<core::TunerPoint>> curves;
    for (const AblationRow& row : rows) {
      core::Tuner::Options opts;
      opts.enable_gap_tuning = row.gap_tuning;
      opts.tracker = row.tracker;
      opts.enable_proxy = row.proxy;
      opts.enable_refine = row.tracker == core::TrackerKind::kRecurrent;
      core::Tuner tuner(valid.get(), &otif_system.trained(), valid_fn, opts);
      curves.push_back(tuner.Run(otif_system.theta_best()));
    }
    // Evaluate each curve point on the test set.
    double best_acc = 0.0;
    std::vector<std::vector<std::pair<double, double>>> test_points(4);
    for (int r = 0; r < 4; ++r) {
      for (const core::TunerPoint& p : curves[static_cast<size_t>(r)]) {
        const core::EvalResult e =
            otif_system.Execute(p.config, *test, test_fn);
        test_points[static_cast<size_t>(r)].push_back({e.seconds, e.accuracy});
        best_acc = std::max(best_acc, e.accuracy);
      }
    }
    for (int r = 0; r < 4; ++r) {
      double fastest = 1e18;
      double fallback_best = 0.0;
      double fallback_sec = 1e18;
      for (const auto& [sec, acc] : test_points[static_cast<size_t>(r)]) {
        if (acc >= best_acc - 0.05) fastest = std::min(fastest, sec);
        if (acc > fallback_best ||
            (acc == fallback_best && sec < fallback_sec)) {
          fallback_best = acc;
          fallback_sec = sec;
        }
      }
      if (fastest >= 1e18) fastest = fallback_sec;
      cells[static_cast<size_t>(r)][static_cast<size_t>(col)] =
          StrFormat("%.1f", fastest);
    }
    ++col;
  }
  for (const auto& row : cells) table.AddRow(row);
  std::printf("runtime (simulated seconds) at fastest config within 5%% of "
              "best accuracy\n%s\n",
              table.ToString().c_str());
  return 0;
}

}  // namespace
}  // namespace otif

int main() { return otif::Main(); }
