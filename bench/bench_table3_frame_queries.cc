// Reproduces Table 3: frame-level limit queries. OTIF extracts all tracks
// once and answers each query by post-processing; BlazeIt trains and runs a
// query-specific proxy over every frame per query; TASTI builds a reusable
// embedding index but re-scores and re-verifies per query. Times are
// simulated seconds, averaged over the six queries.

#include <cstdio>
#include <memory>

#include "baselines/blazeit.h"
#include "baselines/tasti.h"
#include "bench/bench_common.h"
#include "eval/harness.h"
#include "models/cost_model.h"
#include "util/strings.h"
#include "util/table.h"

namespace otif {
namespace {

struct MethodTotals {
  double preprocess = 0.0;
  double query = 0.0;
  double accuracy = 0.0;
  int n = 0;
};

int Main() {
  const core::RunScale scale = bench::BenchScale();
  std::printf("=== Table 3: frame-level limit queries ===\n");
  bench::PrintScale(scale);

  MethodTotals otif_totals, blazeit_totals, tasti_totals;
  TextTable per_query({"Dataset", "Query", "N", "OTIF pre/q/acc",
                       "BlazeIt pre/q/acc", "TASTI pre/q/acc"});

  for (eval::FrameQuerySpec qspec : eval::StandardFrameQueries()) {
    const eval::TrackWorkload workload = eval::MakeTrackWorkload(qspec.dataset);
    core::Otif otif_system(workload.spec, scale);
    const auto train = otif_system.TrainClips();
    auto valid = std::make_shared<std::vector<sim::Clip>>(
        otif_system.ValidClips());
    const auto test = otif_system.TestClips();
    const core::AccuracyFn valid_fn = workload.MakeAccuracyFn(valid.get());

    eval::CalibrateFrameQuery(test, 0.15, &qspec);
    const auto predicate = qspec.MakePredicate();
    const int separation = qspec.min_separation_sec * workload.spec.fps;

    // --- OTIF: extract all tracks once with the fastest <=5%-loss config.
    core::Tuner::Options topts;
    otif_system.Prepare(valid_fn, topts);
    const core::TunerPoint& pick = otif_system.FastestWithinTolerance(0.05);
    const core::AccuracyFn test_fn = workload.MakeAccuracyFn(
        const_cast<std::vector<sim::Clip>*>(&test));
    core::EvalResult extraction =
        otif_system.Execute(pick.config, test, test_fn);
    std::vector<int> clip_frames;
    for (const sim::Clip& c : test) clip_frames.push_back(c.num_frames());
    const auto chosen = query::ExecuteLimitQueryMultiClip(
        extraction.tracks_per_clip, *predicate, clip_frames, qspec.limit,
        separation);
    double otif_query_sec = 0.0;
    for (const auto& per_clip : extraction.tracks_per_clip) {
      otif_query_sec += models::DefaultCostConstants().query_sec_per_track *
                        per_clip.size() * clip_frames[0];
    }
    int good = 0;
    for (const auto& [ci, f] : chosen) {
      if (query::GroundTruthMatches(test[static_cast<size_t>(ci)], f,
                                    *predicate)) {
        ++good;
      }
    }
    const double otif_acc =
        chosen.empty() ? 1.0
                       : static_cast<double>(good) /
                             static_cast<double>(chosen.size());

    // --- BlazeIt ---
    baselines::BlazeIt::Options bopts;
    bopts.limit = qspec.limit;
    bopts.min_separation_sec = qspec.min_separation_sec;
    const baselines::FrameQueryReport blazeit = baselines::BlazeIt::RunQuery(
        train, test, qspec.MakeTarget(), *predicate, bopts,
        workload.spec.seed * 101);

    // --- TASTI ---
    const baselines::Tasti::Index index = baselines::Tasti::BuildIndex(test);
    baselines::Tasti::Options taopts;
    taopts.limit = qspec.limit;
    taopts.min_separation_sec = qspec.min_separation_sec;
    const baselines::FrameQueryReport tasti = baselines::Tasti::RunQuery(
        index, train, test, qspec.MakeTarget(), *predicate, taopts,
        workload.spec.seed * 103);

    per_query.AddRow(
        {workload.spec.name, qspec.kind, StrFormat("%d", qspec.n),
         StrFormat("%.1f/%.2f/%.2f", extraction.seconds, otif_query_sec,
                   otif_acc),
         StrFormat("%.1f/%.2f/%.2f", blazeit.preprocess_seconds,
                   blazeit.query_seconds, blazeit.accuracy),
         StrFormat("%.1f/%.2f/%.2f", tasti.preprocess_seconds,
                   tasti.query_seconds, tasti.accuracy)});

    otif_totals.preprocess += extraction.seconds;
    otif_totals.query += otif_query_sec;
    otif_totals.accuracy += otif_acc;
    ++otif_totals.n;
    blazeit_totals.preprocess += blazeit.preprocess_seconds;
    blazeit_totals.query += blazeit.query_seconds;
    blazeit_totals.accuracy += blazeit.accuracy;
    ++blazeit_totals.n;
    tasti_totals.preprocess += tasti.preprocess_seconds;
    tasti_totals.query += tasti.query_seconds;
    tasti_totals.accuracy += tasti.accuracy;
    ++tasti_totals.n;
  }

  std::printf("--- per-query detail (pre-processing / query time / accuracy) "
              "---\n%s\n",
              per_query.ToString().c_str());

  TextTable summary({"Metric", "OTIF", "BlazeIt", "TASTI"});
  auto avg = [](double total, int n) { return n > 0 ? total / n : 0.0; };
  // 1 query: OTIF pre-processing reusable, BlazeIt pre-processing repeats
  // per query, TASTI index reusable.
  summary.AddRow({"Avg pre-processing (s)",
                  StrFormat("%.1f", avg(otif_totals.preprocess, otif_totals.n)),
                  StrFormat("%.1f",
                            avg(blazeit_totals.preprocess, blazeit_totals.n)),
                  StrFormat("%.1f", avg(tasti_totals.preprocess,
                                        tasti_totals.n))});
  summary.AddRow(
      {"Avg query time (s)",
       StrFormat("%.2f", avg(otif_totals.query, otif_totals.n)),
       StrFormat("%.2f", avg(blazeit_totals.query, blazeit_totals.n)),
       StrFormat("%.2f", avg(tasti_totals.query, tasti_totals.n))});
  summary.AddRow(
      {"Avg total, 1 query (s)",
       StrFormat("%.1f", avg(otif_totals.preprocess + otif_totals.query,
                             otif_totals.n)),
       StrFormat("%.1f", avg(blazeit_totals.preprocess + blazeit_totals.query,
                             blazeit_totals.n)),
       StrFormat("%.1f", avg(tasti_totals.preprocess + tasti_totals.query,
                             tasti_totals.n))});
  summary.AddRow(
      {"Avg total, 5 queries (s)",
       StrFormat("%.1f", avg(otif_totals.preprocess + 5 * otif_totals.query,
                             otif_totals.n)),
       StrFormat("%.1f",
                 avg(5 * (blazeit_totals.preprocess + blazeit_totals.query),
                     blazeit_totals.n)),
       StrFormat("%.1f", avg(tasti_totals.preprocess + 5 * tasti_totals.query,
                             tasti_totals.n))});
  summary.AddRow(
      {"Avg accuracy",
       StrFormat("%.2f", avg(otif_totals.accuracy, otif_totals.n)),
       StrFormat("%.2f", avg(blazeit_totals.accuracy, blazeit_totals.n)),
       StrFormat("%.2f", avg(tasti_totals.accuracy, tasti_totals.n))});
  std::printf("--- Table 3 summary ---\n%s\n", summary.ToString().c_str());
  return 0;
}

}  // namespace
}  // namespace otif

int main() { return otif::Main(); }
