// Micro-benchmarks (google-benchmark) for the individual components:
// codec encode/decode, proxy CNN inference, cell grouping, Hungarian
// assignment, tracker steps, track clustering, and query post-processing.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <vector>

#include "bench/bench_common.h"
#include "core/cell_grouping.h"
#include "models/proxy.h"
#include "nn/layers.h"
#include "nn/tensor.h"
#include "query/queries.h"
#include "sim/raster.h"
#include "track/hungarian.h"
#include "track/refine.h"
#include "track/sort_tracker.h"
#include "util/rng.h"
#include "video/codec.h"

namespace otif {
namespace {

sim::Clip& BenchClip() {
  static sim::Clip clip = sim::SimulateClip(
      sim::MakeDataset(sim::DatasetId::kSynthetic), 77, 300);
  return clip;
}

void BM_SimulateClip(benchmark::State& state) {
  const sim::DatasetSpec spec = sim::MakeDataset(sim::DatasetId::kSynthetic);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sim::SimulateClip(spec, 1, static_cast<int>(state.range(0))));
  }
}
BENCHMARK(BM_SimulateClip)->Arg(100)->Arg(400);

void BM_RasterizeFrame(benchmark::State& state) {
  sim::Rasterizer raster(&BenchClip());
  int frame = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        raster.Render(frame++ % 300, static_cast<int>(state.range(0)),
                      static_cast<int>(state.range(0)) * 3 / 5));
  }
}
BENCHMARK(BM_RasterizeFrame)->Arg(40)->Arg(104);

void BM_CodecEncode(benchmark::State& state) {
  sim::Rasterizer raster(&BenchClip());
  std::vector<video::Image> frames;
  for (int f = 0; f < 32; ++f) frames.push_back(raster.Render(f, 80, 48));
  video::Encoder encoder(video::CodecConfig{});
  for (auto _ : state) {
    benchmark::DoNotOptimize(encoder.Encode(frames));
  }
  state.SetItemsProcessed(state.iterations() * 32);
}
BENCHMARK(BM_CodecEncode);

void BM_CodecDecode(benchmark::State& state) {
  sim::Rasterizer raster(&BenchClip());
  std::vector<video::Image> frames;
  for (int f = 0; f < 32; ++f) frames.push_back(raster.Render(f, 80, 48));
  auto encoded = video::Encoder(video::CodecConfig{}).Encode(frames);
  for (auto _ : state) {
    video::Decoder decoder(&encoded.value());
    benchmark::DoNotOptimize(decoder.DecodeAll(nullptr));
  }
  state.SetItemsProcessed(state.iterations() * 32);
}
BENCHMARK(BM_CodecDecode);

void BM_ProxyInference(benchmark::State& state) {
  models::ProxyModel proxy(models::StandardProxyResolutions()[4], 1);
  sim::Rasterizer raster(&BenchClip());
  const video::Image frame = raster.Render(
      0, proxy.resolution().raster_w(), proxy.resolution().raster_h());
  for (auto _ : state) {
    benchmark::DoNotOptimize(proxy.Score(frame));
  }
}
BENCHMARK(BM_ProxyInference);

void BM_ProxyInferenceBatched(benchmark::State& state) {
  // The batched proxy path used by ProxyStage::ProcessBatch: one network
  // invocation over N rasterized frames.
  models::ProxyModel proxy(models::StandardProxyResolutions()[4], 1);
  sim::Rasterizer raster(&BenchClip());
  const int n = static_cast<int>(state.range(0));
  std::vector<video::Image> frames;
  std::vector<const video::Image*> ptrs;
  for (int f = 0; f < n; ++f) {
    frames.push_back(raster.Render(f, proxy.resolution().raster_w(),
                                   proxy.resolution().raster_h()));
  }
  for (const video::Image& f : frames) ptrs.push_back(&f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(proxy.ScoreBatch(ptrs));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ProxyInferenceBatched)->Arg(8);

// Proxy batch staging, isolated from the network: the pre-pool copy path
// (per-frame Image copy, a zero-filled per-frame staging tensor, and a
// std::copy into the batch slice) versus the fused FillInputSlice path
// that writes each frame's centered pixels directly into its slice of an
// uninitialized pooled batch. check.sh gates pooled >= 1.2x copy.
void BM_ScoreBatchCopyPath(benchmark::State& state) {
  models::ProxyModel proxy(models::StandardProxyResolutions()[4], 1);
  sim::Rasterizer raster(&BenchClip());
  const int rw = proxy.resolution().raster_w();
  const int rh = proxy.resolution().raster_h();
  const int n = static_cast<int>(state.range(0));
  std::vector<video::Image> frames;
  std::vector<const video::Image*> ptrs;
  for (int f = 0; f < n; ++f) frames.push_back(raster.Render(f, rw, rh));
  for (const video::Image& f : frames) ptrs.push_back(&f);
  const size_t plane = static_cast<size_t>(rh) * rw;
  for (auto _ : state) {
    nn::Tensor batch({n, 1, rh, rw});
    for (int b = 0; b < n; ++b) {
      video::Image sized = *ptrs[b];  // Frames already match raster dims.
      nn::Tensor one({1, rh, rw});
      for (int y = 0; y < rh; ++y) {
        for (int x = 0; x < rw; ++x) {
          one.at3(0, y, x) = sized.at(x, y) - 0.5f;
        }
      }
      std::copy(one.data(), one.data() + plane, batch.data() + b * plane);
    }
    benchmark::DoNotOptimize(batch.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ScoreBatchCopyPath)->Arg(8);

void BM_ScoreBatchPooled(benchmark::State& state) {
  models::ProxyModel proxy(models::StandardProxyResolutions()[4], 1);
  sim::Rasterizer raster(&BenchClip());
  const int rw = proxy.resolution().raster_w();
  const int rh = proxy.resolution().raster_h();
  const int n = static_cast<int>(state.range(0));
  std::vector<video::Image> frames;
  std::vector<const video::Image*> ptrs;
  for (int f = 0; f < n; ++f) frames.push_back(raster.Render(f, rw, rh));
  for (const video::Image& f : frames) ptrs.push_back(&f);
  for (auto _ : state) {
    nn::Tensor batch = nn::Tensor::Uninitialized({n, 1, rh, rw});
    for (int b = 0; b < n; ++b) {
      proxy.FillInputSlice(*ptrs[b], &batch, b);
    }
    benchmark::DoNotOptimize(batch.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ScoreBatchPooled)->Arg(8);

// Conv engine at detector-typical window shapes: the im2col+GEMM inference
// path versus the naive reference loops it replaced. The acceptance gate is
// GEMM >= 3x naive at these shapes (see BENCH_baseline notes).
nn::Conv2d& DetectorShapeConv() {
  static Rng rng(3);
  static nn::Conv2d conv(16, 32, 3, 1, &rng);
  return conv;
}

nn::Tensor DetectorShapeInput() {
  Rng rng(4);
  nn::Tensor t({16, 64, 64});
  for (int64_t i = 0; i < t.size(); ++i) {
    t[i] = static_cast<float>(rng.Uniform(-1.0, 1.0));
  }
  return t;
}

void BM_ConvNaive(benchmark::State& state) {
  nn::Conv2d& conv = DetectorShapeConv();
  const nn::Tensor input = DetectorShapeInput();
  for (auto _ : state) {
    benchmark::DoNotOptimize(conv.InferReference(input));
  }
}
BENCHMARK(BM_ConvNaive);

void BM_ConvGemm(benchmark::State& state) {
  nn::Conv2d& conv = DetectorShapeConv();
  const nn::Tensor input = DetectorShapeInput();
  for (auto _ : state) {
    benchmark::DoNotOptimize(conv.Infer(input));
  }
}
BENCHMARK(BM_ConvGemm);

void BM_CellGrouping(benchmark::State& state) {
  Rng rng(5);
  core::CellGrid grid;
  grid.grid_w = 13;
  grid.grid_h = 8;
  grid.positive.assign(13 * 8, 0);
  for (int i = 0; i < static_cast<int>(state.range(0)); ++i) {
    grid.positive[rng.UniformInt(uint64_t{13 * 8})] = 1;
  }
  const models::DetectorArch arch = models::StandardDetectorArchs()[0];
  const std::vector<core::WindowSize> sizes = {
      {160, 90}, {320, 180}, {1280, 720}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::GroupCells(grid, sizes, arch, 1280, 720));
  }
}
BENCHMARK(BM_CellGrouping)->Arg(4)->Arg(16)->Arg(64);

void BM_Hungarian(benchmark::State& state) {
  Rng rng(7);
  const int n = static_cast<int>(state.range(0));
  std::vector<std::vector<double>> cost(n, std::vector<double>(n));
  for (auto& row : cost) {
    for (double& c : row) c = rng.NextDouble();
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(track::SolveAssignment(cost));
  }
}
BENCHMARK(BM_Hungarian)->Arg(8)->Arg(32)->Arg(64);

void BM_SortTrackerFrame(benchmark::State& state) {
  Rng rng(9);
  const int n = static_cast<int>(state.range(0));
  track::SortTracker tracker;
  int frame = 0;
  for (auto _ : state) {
    track::FrameDetections dets;
    for (int i = 0; i < n; ++i) {
      track::Detection d;
      d.frame = frame;
      d.box = geom::BBox(rng.Uniform(0, 1280), rng.Uniform(0, 720), 40, 28);
      dets.push_back(d);
    }
    tracker.ProcessFrame(frame++, dets);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SortTrackerFrame)->Arg(5)->Arg(20);

void BM_TrackClustering(benchmark::State& state) {
  Rng rng(11);
  std::vector<track::Track> tracks;
  for (int i = 0; i < static_cast<int>(state.range(0)); ++i) {
    track::Track t;
    t.id = i;
    const double y = rng.Uniform(50, 700);
    for (int k = 0; k < 20; ++k) {
      track::Detection d;
      d.frame = k;
      d.box = geom::BBox(64.0 * k, y + rng.Gaussian(0, 4), 40, 28);
      t.detections.push_back(d);
    }
    tracks.push_back(std::move(t));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        track::ClusterTracks(tracks, track::DbscanOptions{}));
  }
}
BENCHMARK(BM_TrackClustering)->Arg(20)->Arg(100);

void BM_LimitQueryPostProcess(benchmark::State& state) {
  // Post-processing latency on extracted tracks: the "sub-second query"
  // claim. 60 tracks over 600 frames.
  Rng rng(13);
  std::vector<track::Track> tracks;
  for (int i = 0; i < 60; ++i) {
    track::Track t;
    t.id = i;
    t.cls = track::ObjectClass::kCar;
    const int start = static_cast<int>(rng.UniformInt(uint64_t{400}));
    for (int k = 0; k < 20; ++k) {
      track::Detection d;
      d.frame = start + k * 8;
      d.box = geom::BBox(rng.Uniform(0, 1280), rng.Uniform(0, 720), 40, 28);
      t.detections.push_back(d);
    }
    tracks.push_back(std::move(t));
  }
  query::CountPredicate predicate(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        query::ExecuteLimitQuery(tracks, predicate, 600, 25, 50));
  }
}
BENCHMARK(BM_LimitQueryPostProcess);

}  // namespace
}  // namespace otif

// Expanded BENCHMARK_MAIN so the shared observability init runs first.
int main(int argc, char** argv) {
  otif::bench::BenchInit();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
