#ifndef OTIF_BENCH_BENCH_COMMON_H_
#define OTIF_BENCH_BENCH_COMMON_H_

#include <cstdlib>
#include <cstring>

#include "core/otif.h"
#include "obs/introspection_server.h"
#include "util/logging.h"
#include "util/trace_timeline.h"

namespace otif::bench {

/// The one startup hook every bench binary runs (directly or via
/// BenchScale): applies OTIF_LOG_LEVEL, arms the timeline tracer / flight
/// recorder from the environment (OTIF_TRACE_TIMELINE, OTIF_DUMP_ON_ERROR,
/// ...), and starts the live introspection server / headless progress
/// logger when asked (OTIF_METRICS_PORT, OTIF_PROGRESS_SEC). Keep
/// per-binary env parsing out of bench mains — add shared switches here.
inline void BenchInit() {
  InitObservabilityFromEnv();
  obs::InitIntrospectionFromEnv();
}

/// Experiment scale shared by the table/figure harnesses. Paper scale is 60
/// one-minute clips per split; CPU budgets here default to a few short
/// clips. OTIF_BENCH_SCALE=tiny shrinks further for smoke runs;
/// OTIF_BENCH_SCALE=large grows toward the paper's setting.
///
/// Also runs BenchInit() (every bench main reaches this first), so sweeps
/// can silence the stderr log or capture a timeline without a rebuild.
inline core::RunScale BenchScale() {
  BenchInit();
  core::RunScale scale;
  scale.train_clips = 3;
  scale.valid_clips = 3;
  scale.test_clips = 3;
  scale.clip_seconds = 16;
  scale.proxy_train_steps = 300;
  scale.tracker_train_steps = 700;
  scale.proxy_resolutions = 3;
  const char* env = std::getenv("OTIF_BENCH_SCALE");
  if (env != nullptr && std::strcmp(env, "tiny") == 0) {
    scale.train_clips = 2;
    scale.valid_clips = 2;
    scale.test_clips = 2;
    scale.clip_seconds = 10;
    scale.proxy_train_steps = 150;
    scale.tracker_train_steps = 350;
    scale.proxy_resolutions = 2;
  } else if (env != nullptr && std::strcmp(env, "large") == 0) {
    scale.train_clips = 6;
    scale.valid_clips = 5;
    scale.test_clips = 6;
    scale.clip_seconds = 30;
    scale.proxy_train_steps = 600;
    scale.tracker_train_steps = 1500;
    scale.proxy_resolutions = 5;
  }
  return scale;
}

inline void PrintScale(const core::RunScale& scale) {
  std::printf(
      "scale: train=%d valid=%d test=%d clips of %ds, proxy_steps=%d "
      "tracker_steps=%d resolutions=%d (OTIF_BENCH_SCALE=tiny|large to "
      "change)\n\n",
      scale.train_clips, scale.valid_clips, scale.test_clips,
      scale.clip_seconds, scale.proxy_train_steps, scale.tracker_train_steps,
      scale.proxy_resolutions);
}

}  // namespace otif::bench

#endif  // OTIF_BENCH_BENCH_COMMON_H_
