#ifndef OTIF_BENCH_BENCH_COMMON_H_
#define OTIF_BENCH_BENCH_COMMON_H_

#include <cstdlib>
#include <cstring>

#include "core/otif.h"
#include "util/logging.h"

namespace otif::bench {

/// Experiment scale shared by the table/figure harnesses. Paper scale is 60
/// one-minute clips per split; CPU budgets here default to a few short
/// clips. OTIF_BENCH_SCALE=tiny shrinks further for smoke runs;
/// OTIF_BENCH_SCALE=large grows toward the paper's setting.
///
/// Also applies OTIF_LOG_LEVEL (every bench main calls this first), so
/// sweeps can silence or amplify the stderr log without a rebuild.
inline core::RunScale BenchScale() {
  InitLogLevelFromEnv();
  core::RunScale scale;
  scale.train_clips = 3;
  scale.valid_clips = 3;
  scale.test_clips = 3;
  scale.clip_seconds = 16;
  scale.proxy_train_steps = 300;
  scale.tracker_train_steps = 700;
  scale.proxy_resolutions = 3;
  const char* env = std::getenv("OTIF_BENCH_SCALE");
  if (env != nullptr && std::strcmp(env, "tiny") == 0) {
    scale.train_clips = 2;
    scale.valid_clips = 2;
    scale.test_clips = 2;
    scale.clip_seconds = 10;
    scale.proxy_train_steps = 150;
    scale.tracker_train_steps = 350;
    scale.proxy_resolutions = 2;
  } else if (env != nullptr && std::strcmp(env, "large") == 0) {
    scale.train_clips = 6;
    scale.valid_clips = 5;
    scale.test_clips = 6;
    scale.clip_seconds = 30;
    scale.proxy_train_steps = 600;
    scale.tracker_train_steps = 1500;
    scale.proxy_resolutions = 5;
  }
  return scale;
}

inline void PrintScale(const core::RunScale& scale) {
  std::printf(
      "scale: train=%d valid=%d test=%d clips of %ds, proxy_steps=%d "
      "tracker_steps=%d resolutions=%d (OTIF_BENCH_SCALE=tiny|large to "
      "change)\n\n",
      scale.train_clips, scale.valid_clips, scale.test_clips,
      scale.clip_seconds, scale.proxy_train_steps, scale.tracker_train_steps,
      scale.proxy_resolutions);
}

}  // namespace otif::bench

#endif  // OTIF_BENCH_BENCH_COMMON_H_
