// Reproduces Table 2: runtime of each method on the test set of each
// dataset at the fastest configuration within 5% of the best achieved
// accuracy, for 1 query and (estimated) 5 queries. Runtimes are simulated
// seconds; the paper's comparisons are between methods, not absolute.

#include <cstdio>

#include "bench/bench_common.h"
#include "eval/harness.h"
#include "util/strings.h"
#include "util/table.h"

namespace otif {
namespace {

int Main() {
  const core::RunScale scale = bench::BenchScale();
  std::printf("=== Table 2: object track queries ===\n");
  bench::PrintScale(scale);

  const std::vector<std::string> methods = {"otif",    "miris",  "chameleon",
                                            "noscope", "catdet", "centertrack"};
  TextTable one_query(
      {"Dataset", "OTIF", "Miris", "Cham", "NoScope", "CaTDet", "CTrack"});
  TextTable five_queries(
      {"Dataset", "OTIF", "Miris", "Cham", "NoScope", "CaTDet", "CTrack"});
  TextTable accuracies(
      {"Dataset", "OTIF", "Miris", "Cham", "NoScope", "CaTDet", "CTrack",
       "BestAcc"});

  for (sim::DatasetId id : sim::AllPaperDatasets()) {
    eval::ExperimentOptions options;
    options.scale = scale;
    StatusOr<eval::TrackExperimentResult> result_or =
        eval::RunTrackExperiment(id, options);
    OTIF_CHECK(result_or.ok()) << result_or.status().ToString();
    const eval::TrackExperimentResult& result = *result_or;

    std::vector<std::string> row1 = {result.dataset};
    std::vector<std::string> row5 = {result.dataset};
    std::vector<std::string> rowa = {result.dataset};
    for (const std::string& method : methods) {
      auto it = result.curves.find(method);
      if (it == result.curves.end() || it->second.empty()) {
        row1.push_back("-");
        row5.push_back("-");
        rowa.push_back("-");
        continue;
      }
      const baselines::MethodPoint* pick = baselines::FastestWithinTolerance(
          it->second, result.best_accuracy, options.tolerance);
      row1.push_back(StrFormat("%.1f", eval::SecondsForQueries(*pick, 1)));
      row5.push_back(StrFormat("%.1f", eval::SecondsForQueries(*pick, 5)));
      rowa.push_back(StrFormat("%.2f", pick->accuracy));
    }
    rowa.push_back(StrFormat("%.2f", result.best_accuracy));
    one_query.AddRow(row1);
    five_queries.AddRow(row5);
    accuracies.AddRow(rowa);
  }

  std::printf("--- 1 query: runtime (simulated seconds) ---\n%s\n",
              one_query.ToString().c_str());
  std::printf("--- 5 queries (estimated): runtime (simulated seconds) ---\n%s\n",
              five_queries.ToString().c_str());
  std::printf(
      "--- accuracy of the selected configuration (within 5%% of best) "
      "---\n%s\n",
      accuracies.ToString().c_str());
  return 0;
}

}  // namespace
}  // namespace otif

int main() { return otif::Main(); }
