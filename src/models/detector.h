#ifndef OTIF_MODELS_DETECTOR_H_
#define OTIF_MODELS_DETECTOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "geom/geometry.h"
#include "models/cost_model.h"
#include "sim/world.h"
#include "track/types.h"

namespace otif::models {

/// Behavioral profile of an object detection architecture. The accuracy
/// model reproduces the detector's speed-accuracy response to input
/// resolution: miss probability grows as apparent object size (in detector
/// input pixels) shrinks, plus occlusion penalties, localization jitter, and
/// false positives. Throughput is calibrated so that the `yolov3` profile
/// matches the paper's anchor (100 fps at 960x540 on a V100).
struct DetectorArch {
  std::string name;
  /// GPU inference time per input pixel, seconds.
  double sec_per_pixel = 1.93e-8;
  /// Per-invocation overhead (kernel launch / batching residue), seconds.
  double sec_per_invocation = 5.0e-4;
  /// Apparent object size (sqrt of box area in detector-input pixels) at
  /// which detection probability reaches half of max_recall.
  double size50_px = 9.0;
  /// Slope of the logistic detection curve (relative to size50_px).
  double size_slope = 0.28;
  /// Detection probability ceiling for large, unoccluded objects.
  double max_recall = 0.97;
  /// Expected false positives per megapixel of detector input per frame.
  double fp_per_mpx = 0.8;
  /// Center/size jitter as a fraction of object size (at scale 1; grows as
  /// 1/scale for downsampled inputs).
  double loc_jitter = 0.045;
};

/// The architecture set A = {YOLOv3, Mask R-CNN} used in the paper.
std::vector<DetectorArch> StandardDetectorArchs();

/// Returns the architecture with the given name (CHECK-fails if absent).
const DetectorArch& ArchByName(const std::vector<DetectorArch>& archs,
                               const std::string& name);

/// Simulated detector execution time on a (w x h)-pixel input window.
double DetectorWindowSeconds(const DetectorArch& arch, double width,
                             double height);

/// Behavioral object detector. Given ground truth, emits the detections the
/// real architecture would plausibly produce at a given input scale.
/// Deterministic in (clip seed, frame, arch, scale bucket): repeated calls
/// return identical results, which makes tuner evaluations cacheable.
class SimulatedDetector {
 public:
  explicit SimulatedDetector(DetectorArch arch);

  const DetectorArch& arch() const { return arch_; }

  /// Full-frame detections at input scale in (0, 1]: the frame is
  /// virtually resized to (scale*W, scale*H) before inference. Output boxes
  /// are in native coordinates. Includes false positives; detections carry
  /// confidences for downstream thresholding. Class labels are noisy for
  /// small objects.
  track::FrameDetections Detect(const sim::Clip& clip, int frame,
                                double scale) const;

  /// Batched Detect: full-frame detections for every frame index in
  /// `frames` at the same scale, in order. Element i is bit-identical to
  /// Detect(clip, frames[i], scale); the per-invocation seed work
  /// (arch-name hashing, scale bucketing) is hoisted out of the per-frame
  /// loop, which is what makes aggregating a clip batch into one call pay.
  std::vector<track::FrameDetections> DetectBatch(
      const sim::Clip& clip, const std::vector<int>& frames,
      double scale) const;

  /// One clip's slice of a cross-clip batched invocation.
  struct ClipBatchRequest {
    const sim::Clip* clip = nullptr;
    std::vector<int> frames;
  };

  /// Batched detection across clips: one invocation spanning every
  /// request's frames (the streaming executor's cross-clip batcher feeds
  /// this so one model call amortizes over many streams, paper Sec 4).
  /// Result [r][i] is bit-identical to Detect(*requests[r].clip,
  /// requests[r].frames[i], scale).
  std::vector<std::vector<track::FrameDetections>> DetectBatchMulti(
      const std::vector<ClipBatchRequest>& requests, double scale) const;

  /// Simulated seconds to run this detector on the full frame at `scale`.
  double FullFrameSeconds(const sim::Clip& clip, double scale) const;

 private:
  /// Shared emission path: detections for `frame` from a fully mixed seed.
  track::FrameDetections DetectSeeded(const sim::Clip& clip, int frame,
                                      double scale, uint64_t seed) const;

  DetectorArch arch_;
};

/// Keeps detections whose box center lies inside at least one window
/// (native-coordinate rectangles). Models windowed detector execution: the
/// detection set is the full-frame set restricted to covered regions.
track::FrameDetections FilterByWindows(
    const track::FrameDetections& detections,
    const std::vector<geom::BBox>& windows);

/// Keeps detections with confidence >= threshold.
track::FrameDetections FilterByConfidence(
    const track::FrameDetections& detections, double threshold);

/// Keeps detections of the given class.
track::FrameDetections FilterByClass(const track::FrameDetections& detections,
                                     track::ObjectClass cls);

}  // namespace otif::models

#endif  // OTIF_MODELS_DETECTOR_H_
