#include "models/cost_model.h"

#include "util/logging.h"

namespace otif::models {

const char* CostCategoryName(CostCategory c) {
  switch (c) {
    case CostCategory::kDecode:
      return "decode";
    case CostCategory::kProxy:
      return "proxy";
    case CostCategory::kDetect:
      return "detect";
    case CostCategory::kTrack:
      return "track";
    case CostCategory::kRefine:
      return "refine";
    case CostCategory::kQuery:
      return "query";
    case CostCategory::kOther:
      return "other";
  }
  return "unknown";
}

void SimClock::Charge(CostCategory category, double seconds) {
  OTIF_CHECK_GE(seconds, 0.0);
  categories_[static_cast<size_t>(category)] += seconds;
}

double SimClock::Seconds(CostCategory category) const {
  return categories_[static_cast<size_t>(category)];
}

double SimClock::TotalSeconds() const {
  double total = 0.0;
  for (double s : categories_) total += s;
  return total;
}

void SimClock::Merge(const SimClock& other) {
  for (int i = 0; i < kNumCostCategories; ++i) {
    categories_[static_cast<size_t>(i)] += other.categories_[static_cast<size_t>(i)];
  }
}

const CostConstants& DefaultCostConstants() {
  static const CostConstants kConstants;
  return kConstants;
}

double DecodeSeconds(const video::DecodeStats& stats,
                     const CostConstants& constants) {
  return stats.pixels_decoded * constants.decode_sec_per_pixel +
         stats.frames_decoded * constants.decode_sec_per_frame;
}

}  // namespace otif::models
