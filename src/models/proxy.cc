#include "models/proxy.h"

#include <algorithm>
#include <memory>

#include "mem/view.h"
#include "util/logging.h"
#include "util/rng.h"

namespace otif::models {

std::vector<ProxyResolution> StandardProxyResolutions() {
  return {{416, 256}, {352, 224}, {288, 160}, {224, 128}, {160, 96}};
}

ProxyModel::ProxyModel(ProxyResolution resolution, uint64_t seed)
    : resolution_(resolution) {
  OTIF_CHECK_EQ(resolution_.world_w % 32, 0);
  OTIF_CHECK_EQ(resolution_.world_h % 32, 0);
  Rng rng(seed);
  net_.Add(std::make_unique<nn::Conv2d>(1, 8, 3, 2, &rng));
  net_.Add(std::make_unique<nn::Relu>());
  net_.Add(std::make_unique<nn::Conv2d>(8, 16, 3, 2, &rng));
  net_.Add(std::make_unique<nn::Relu>());
  net_.Add(std::make_unique<nn::Conv2d>(16, 16, 3, 2, &rng));
  net_.Add(std::make_unique<nn::Relu>());
  net_.Add(std::make_unique<nn::Conv2d>(16, 1, 3, 1, &rng));
  std::vector<nn::Parameter*> params;
  net_.CollectParameters(&params);
  nn::Adam::Options opts;
  opts.learning_rate = 2e-3;
  optimizer_ = std::make_unique<nn::Adam>(std::move(params), opts);
}

void ProxyModel::FillInputSlice(const video::Image& frame, nn::Tensor* batch,
                                int b) const {
  OTIF_CHECK(batch != nullptr);
  const int rh = resolution_.raster_h(), rw = resolution_.raster_w();
  const int nd = batch->ndim();
  OTIF_CHECK(nd == 3 || nd == 4) << "batch must be (1,H,W) or (N,1,H,W)";
  OTIF_CHECK_EQ(batch->dim(nd - 2), rh);
  OTIF_CHECK_EQ(batch->dim(nd - 1), rw);
  OTIF_CHECK(b >= 0 && b < (nd == 4 ? batch->dim(0) : 1)) << b;
  OTIF_CHECK(!frame.empty());
  const size_t plane = static_cast<size_t>(rh) * rw;
  float* dst = batch->data() + static_cast<size_t>(b) * plane;
  if (frame.width() == rw && frame.height() == rh) {
    // Already at raster size: stream pixels straight into the slice,
    // centering around zero for conditioning. No copy, no temporary.
    const float* src = frame.data();
    for (size_t i = 0; i < plane; ++i) dst[i] = src[i] - 0.5f;
  } else {
    // Resize directly into the slice, then center in place. Same float op
    // order as resize-then-subtract through a temporary image.
    frame.ResizedInto(mem::ImageView{dst, rw, rh, rw});
    for (size_t i = 0; i < plane; ++i) dst[i] -= 0.5f;
  }
}

nn::Tensor ProxyModel::ImageToTensor(const video::Image& frame) const {
  nn::Tensor t = nn::Tensor::Uninitialized(
      {1, resolution_.raster_h(), resolution_.raster_w()});
  FillInputSlice(frame, &t, 0);
  return t;
}

nn::Tensor ProxyModel::ForwardLogits(const video::Image& frame) {
  nn::Tensor logits = net_.Forward(ImageToTensor(frame));
  OTIF_CHECK_EQ(logits.dim(0), 1);
  OTIF_CHECK_EQ(logits.dim(1), resolution_.grid_h());
  OTIF_CHECK_EQ(logits.dim(2), resolution_.grid_w());
  return logits;
}

nn::Tensor ProxyModel::Score(const video::Image& frame) const {
  nn::Tensor logits = net_.Infer(ImageToTensor(frame));
  OTIF_CHECK_EQ(logits.dim(0), 1);
  OTIF_CHECK_EQ(logits.dim(1), resolution_.grid_h());
  OTIF_CHECK_EQ(logits.dim(2), resolution_.grid_w());
  nn::Tensor probs({resolution_.grid_h(), resolution_.grid_w()});
  for (int64_t i = 0; i < probs.size(); ++i) {
    probs[i] = nn::StableSigmoid(logits[i]);
  }
  return probs;
}

std::vector<nn::Tensor> ProxyModel::ScoreBatch(
    const std::vector<const video::Image*>& frames) const {
  std::vector<nn::Tensor> out;
  out.reserve(frames.size());
  if (frames.empty()) return out;
  const int rh = resolution_.raster_h(), rw = resolution_.raster_w();
  const int nb = static_cast<int>(frames.size());
  // Each frame stages directly into its batch slice — no per-frame tensor,
  // no copy; the batch buffer itself comes from the shared pool.
  nn::Tensor batch = nn::Tensor::Uninitialized({nb, 1, rh, rw});
  for (int b = 0; b < nb; ++b) {
    OTIF_CHECK(frames[b] != nullptr);
    FillInputSlice(*frames[b], &batch, b);
  }
  nn::Tensor logits = net_.Infer(batch);
  OTIF_CHECK_EQ(logits.ndim(), 4);
  OTIF_CHECK_EQ(logits.dim(0), nb);
  OTIF_CHECK_EQ(logits.dim(1), 1);
  OTIF_CHECK_EQ(logits.dim(2), resolution_.grid_h());
  OTIF_CHECK_EQ(logits.dim(3), resolution_.grid_w());
  const size_t cells = static_cast<size_t>(resolution_.grid_h()) *
                       resolution_.grid_w();
  for (int b = 0; b < nb; ++b) {
    nn::Tensor probs({resolution_.grid_h(), resolution_.grid_w()});
    const float* src = logits.data() + b * cells;
    for (size_t i = 0; i < cells; ++i) {
      probs[static_cast<int64_t>(i)] = nn::StableSigmoid(src[i]);
    }
    out.push_back(std::move(probs));
  }
  return out;
}

double ProxyModel::TrainStep(const video::Image& frame,
                             const nn::Tensor& labels) {
  OTIF_CHECK_EQ(labels.dim(0), resolution_.grid_h());
  OTIF_CHECK_EQ(labels.dim(1), resolution_.grid_w());
  nn::Tensor logits = ForwardLogits(frame);
  // Reshape labels to the logits' (1, H, W) shape for the loss.
  nn::Tensor target({1, resolution_.grid_h(), resolution_.grid_w()});
  for (int64_t i = 0; i < labels.size(); ++i) target[i] = labels[i];
  nn::Tensor grad;
  const double loss = nn::BceWithLogits(logits, target, nullptr, &grad);
  net_.Backward(grad);
  optimizer_->Step();
  return loss;
}

geom::BBox ProxyModel::CellRect(int gx, int gy, double frame_w,
                                double frame_h) const {
  const double cell_w = frame_w / resolution_.grid_w();
  const double cell_h = frame_h / resolution_.grid_h();
  return geom::BBox::FromCorners(gx * cell_w, gy * cell_h, (gx + 1) * cell_w,
                                 (gy + 1) * cell_h);
}

nn::Tensor ProxyModel::MakeLabels(const track::FrameDetections& detections,
                                  double frame_w, double frame_h) const {
  nn::Tensor labels({resolution_.grid_h(), resolution_.grid_w()});
  for (int gy = 0; gy < resolution_.grid_h(); ++gy) {
    for (int gx = 0; gx < resolution_.grid_w(); ++gx) {
      const geom::BBox cell = CellRect(gx, gy, frame_w, frame_h);
      for (const track::Detection& d : detections) {
        if (cell.Intersects(d.box)) {
          labels[static_cast<int64_t>(gy) * resolution_.grid_w() + gx] = 1.0f;
          break;
        }
      }
    }
  }
  return labels;
}

double TrainProxyModel(ProxyModel* model,
                       const std::function<ProxySample()>& sampler,
                       int steps) {
  OTIF_CHECK_GT(steps, 0);
  double tail_loss = 0.0;
  int tail_count = 0;
  const int tail_start = steps - steps / 4;
  for (int step = 0; step < steps; ++step) {
    const ProxySample sample = sampler();
    const double loss = model->TrainStep(sample.frame, sample.labels);
    if (step >= tail_start) {
      tail_loss += loss;
      ++tail_count;
    }
  }
  return tail_count > 0 ? tail_loss / tail_count : 0.0;
}

}  // namespace otif::models
