#ifndef OTIF_MODELS_COST_MODEL_H_
#define OTIF_MODELS_COST_MODEL_H_

#include <array>
#include <cstdint>
#include <string>

#include "video/codec.h"

namespace otif::models {

/// Pipeline stages tracked by the simulated clock (Figure 6 cost breakdown).
enum class CostCategory : int {
  kDecode = 0,
  kProxy = 1,
  kDetect = 2,
  kTrack = 3,
  kRefine = 4,
  kQuery = 5,
  kOther = 6,
};
inline constexpr int kNumCostCategories = 7;

/// Stable display name for a category ("decode", ...).
const char* CostCategoryName(CostCategory c);

/// Simulated execution clock. All pipeline stages charge simulated seconds
/// here instead of relying on wall-clock time; throughput constants are
/// calibrated to the hardware anchors reported in the paper (YOLOv3 at 100
/// fps on 960x540 frames on a V100, BlazeIt proxy at 64x64, decode roughly a
/// third of CPU time once inference is optimized).
class SimClock {
 public:
  SimClock() { categories_.fill(0.0); }

  /// Adds simulated seconds to a category.
  void Charge(CostCategory category, double seconds);

  /// Seconds accumulated in one category.
  double Seconds(CostCategory category) const;

  /// Total simulated seconds across categories.
  double TotalSeconds() const;

  /// Resets all counters.
  void Reset() { categories_.fill(0.0); }

  /// Adds another clock's counters into this one.
  void Merge(const SimClock& other);

 private:
  std::array<double, kNumCostCategories> categories_;
};

/// Calibrated throughput constants. All per-pixel costs are in seconds per
/// native-resolution pixel processed.
struct CostConstants {
  /// H264-like decode: seconds per output pixel plus per-frame overhead.
  double decode_sec_per_pixel = 2.2e-9;
  double decode_sec_per_frame = 2.0e-4;
  /// Segmentation proxy model (shallow CNN).
  double proxy_sec_per_pixel = 3.0e-9;
  double proxy_sec_per_frame = 2.0e-4;
  /// Recurrent tracker: per processed frame and per detection matched.
  double track_sec_per_frame = 1.5e-4;
  double track_sec_per_detection = 4.0e-5;
  /// SORT tracker (cheaper, no neural net).
  double sort_sec_per_detection = 8.0e-6;
  /// Track refinement per extracted track (kNN against cluster index).
  double refine_sec_per_track = 3.0e-5;
  /// Post-processing query over extracted tracks, per track examined.
  double query_sec_per_track = 2.0e-6;
};

/// Returns the default calibrated constants.
const CostConstants& DefaultCostConstants();

/// Converts decoder statistics into simulated decode seconds.
double DecodeSeconds(const video::DecodeStats& stats,
                     const CostConstants& constants);

}  // namespace otif::models

#endif  // OTIF_MODELS_COST_MODEL_H_
