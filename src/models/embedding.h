#ifndef OTIF_MODELS_EMBEDDING_H_
#define OTIF_MODELS_EMBEDDING_H_

#include <vector>

#include "video/image.h"

namespace otif::models {

/// Query-agnostic per-frame feature extractor used by the TASTI baseline.
/// TASTI processes every frame at 224x224 through an embedding CNN; here the
/// embedding is an 8x8 grid of local intensity means plus deviations
/// (128-d), which captures the same "where is stuff in the frame" signal at
/// simulator fidelity. The cost model charges the 224x224 CNN price.
struct FrameEmbedding {
  std::vector<float> values;

  /// Euclidean distance between embeddings (dimensions must match).
  double DistanceTo(const FrameEmbedding& other) const;
};

/// Embedding dimensionality (8x8 means + 8x8 deviations).
inline constexpr int kEmbeddingDim = 128;

/// Side length of the input TASTI's real extractor would consume; drives
/// the simulated cost (224x224 pixels per frame).
inline constexpr int kEmbeddingInputSide = 224;

/// Computes the embedding of a frame.
FrameEmbedding EmbedFrame(const video::Image& frame);

/// Simulated seconds to embed one frame (CNN at 224x224).
double EmbeddingSecondsPerFrame();

}  // namespace otif::models

#endif  // OTIF_MODELS_EMBEDDING_H_
