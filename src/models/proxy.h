#ifndef OTIF_MODELS_PROXY_H_
#define OTIF_MODELS_PROXY_H_

#include <functional>
#include <memory>
#include <vector>

#include "nn/layers.h"
#include "nn/optimizer.h"
#include "track/types.h"
#include "video/image.h"

namespace otif::models {

/// One proxy input resolution, expressed in native ("world") pixels as in
/// the paper (e.g. 416x256) plus the raster resolution the CNN actually
/// consumes (world / 4 in this scaled-down reproduction). The output grid is
/// raster / 8, i.e. one cell per 32x32 world pixels, matching the paper's
/// cell size.
struct ProxyResolution {
  int world_w = 416;
  int world_h = 256;

  int raster_w() const { return world_w / 4; }
  int raster_h() const { return world_h / 4; }
  int grid_w() const { return raster_w() / 8; }
  int grid_h() const { return raster_h() / 8; }
  /// Pixels the real model would process (drives the cost model).
  double world_pixels() const {
    return static_cast<double>(world_w) * world_h;
  }
};

/// The five input resolutions trained per dataset (paper Sec 3.3 trains
/// "5 resolutions"; inputs like 416x256 down to 160x96).
std::vector<ProxyResolution> StandardProxyResolutions();

/// Segmentation proxy model (paper Sec 3.3): a small CNN that scores every
/// cell of the frame with the likelihood that the cell intersects at least
/// one detection. This is a real network trained with backprop on rasterized
/// frames; its errors are learned, not scripted.
///
/// Architecture: three stride-2 3x3 conv layers (8, 16, 16 channels) with
/// ReLU, then a 3x3 conv to 1 channel of logits. Output grid is 1/8 of the
/// raster input, i.e. one score per 32x32 native-pixel cell.
class ProxyModel {
 public:
  ProxyModel(ProxyResolution resolution, uint64_t seed);

  ProxyModel(const ProxyModel&) = delete;
  ProxyModel& operator=(const ProxyModel&) = delete;

  const ProxyResolution& resolution() const { return resolution_; }

  /// Scores a frame (any resolution; resized to the raster input size).
  /// Returns per-cell probabilities in a (grid_h, grid_w) tensor. Uses the
  /// cache-free inference path, so concurrent calls on a shared trained
  /// model are safe (training must stay single-threaded).
  nn::Tensor Score(const video::Image& frame) const;

  /// Batched Score: one network invocation over a (N, 1, H, W) stack of
  /// rasterized frames. Element i of the result is bit-identical to
  /// Score(frames[i]). Thread-safe like Score.
  std::vector<nn::Tensor> ScoreBatch(
      const std::vector<const video::Image*>& frames) const;

  /// Fused resize + zero-centering of `frame` written directly into batch
  /// element `b` of a (N, 1, raster_h, raster_w) tensor (or element 0 of
  /// the (1, raster_h, raster_w) single-frame form): the zero-copy input
  /// staging path. A frame already at raster size streams through one
  /// subtract pass without the intermediate image copy; other sizes resize
  /// straight into the slice. Bit-identical to the old copy path.
  void FillInputSlice(const video::Image& frame, nn::Tensor* batch,
                      int b) const;

  /// One training step on (frame, cell labels); returns the BCE loss.
  /// `labels` must be (grid_h, grid_w) with 0/1 entries.
  double TrainStep(const video::Image& frame, const nn::Tensor& labels);

  /// Builds 0/1 cell labels for a frame: cell = 1 iff it intersects any
  /// detection box (native coordinates, frame_w x frame_h).
  nn::Tensor MakeLabels(const track::FrameDetections& detections,
                        double frame_w, double frame_h) const;

  /// Native-coordinate rectangle covered by a cell.
  geom::BBox CellRect(int gx, int gy, double frame_w, double frame_h) const;

  int64_t train_steps() const { return optimizer_->steps_taken(); }

 private:
  nn::Tensor ImageToTensor(const video::Image& frame) const;
  nn::Tensor ForwardLogits(const video::Image& frame);

  ProxyResolution resolution_;
  nn::Sequential net_;
  std::unique_ptr<nn::Adam> optimizer_;
};

/// A training sample: rasterized frame plus its cell labels.
struct ProxySample {
  video::Image frame;
  nn::Tensor labels;
};

/// Trains the model for `steps` steps, drawing samples from `sampler`.
/// Returns the mean loss over the final quarter of training.
double TrainProxyModel(ProxyModel* model,
                       const std::function<ProxySample()>& sampler,
                       int steps);

}  // namespace otif::models

#endif  // OTIF_MODELS_PROXY_H_
