#include "models/embedding.h"

#include <cmath>

#include "util/logging.h"

namespace otif::models {

double FrameEmbedding::DistanceTo(const FrameEmbedding& other) const {
  OTIF_CHECK_EQ(values.size(), other.values.size());
  double sq = 0.0;
  for (size_t i = 0; i < values.size(); ++i) {
    const double d = values[i] - other.values[i];
    sq += d * d;
  }
  return std::sqrt(sq);
}

FrameEmbedding EmbedFrame(const video::Image& frame) {
  OTIF_CHECK(!frame.empty());
  constexpr int kGrid = 8;
  FrameEmbedding emb;
  emb.values.assign(kEmbeddingDim, 0.0f);
  const int w = frame.width(), h = frame.height();
  for (int gy = 0; gy < kGrid; ++gy) {
    const int y0 = gy * h / kGrid;
    const int y1 = std::max(y0 + 1, (gy + 1) * h / kGrid);
    for (int gx = 0; gx < kGrid; ++gx) {
      const int x0 = gx * w / kGrid;
      const int x1 = std::max(x0 + 1, (gx + 1) * w / kGrid);
      double sum = 0.0, sum_sq = 0.0;
      int count = 0;
      for (int y = y0; y < y1 && y < h; ++y) {
        for (int x = x0; x < x1 && x < w; ++x) {
          const double v = frame.at(x, y);
          sum += v;
          sum_sq += v * v;
          ++count;
        }
      }
      const double mean = count > 0 ? sum / count : 0.0;
      const double var = count > 0 ? std::max(0.0, sum_sq / count - mean * mean)
                                   : 0.0;
      emb.values[static_cast<size_t>(gy) * kGrid + gx] =
          static_cast<float>(mean);
      emb.values[64 + static_cast<size_t>(gy) * kGrid + gx] =
          static_cast<float>(std::sqrt(var));
    }
  }
  return emb;
}

double EmbeddingSecondsPerFrame() {
  // A ResNet-18-class extractor at 224x224: ~2 GFLOPs, ~3.5 ms on a V100
  // with batching.
  return 3.5e-3;
}

}  // namespace otif::models
