#include "models/tracker_net.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/rng.h"

namespace otif::models {
namespace {

// Elapsed-time normalization: cap at 4 seconds, scale to ~[0, 1].
double NormElapsedSec(double frames, double fps) {
  return std::min(frames / fps, 4.0) / 4.0;
}

}  // namespace

TrackerNet::TrackerNet(uint64_t seed) {
  Rng rng(seed);
  det_encoder_.Add(std::make_unique<nn::Linear>(kDetFeatureDim, kEncodedDim,
                                                &rng));
  det_encoder_.Add(std::make_unique<nn::Relu>());
  det_encoder_.Add(std::make_unique<nn::Linear>(kEncodedDim, kEncodedDim,
                                                &rng));
  gru_ = std::make_unique<nn::GruCell>(kEncodedDim, kHiddenSize, &rng);
  matcher_.Add(std::make_unique<nn::Linear>(
      kHiddenSize + kEncodedDim + kPairFeatureDim, 32, &rng));
  matcher_.Add(std::make_unique<nn::Relu>());
  matcher_.Add(std::make_unique<nn::Linear>(32, 1, &rng));

  std::vector<nn::Parameter*> params;
  det_encoder_.CollectParameters(&params);
  gru_->CollectParameters(&params);
  matcher_.CollectParameters(&params);
  nn::Adam::Options opts;
  opts.learning_rate = 1e-3;
  optimizer_ = std::make_unique<nn::Adam>(std::move(params), opts);
}

nn::Tensor TrackerNet::DetFeature(const track::Detection& d,
                                  double t_elapsed_frames, double fps,
                                  double frame_w, double frame_h,
                                  double patch_mean, double patch_std) {
  OTIF_CHECK_GT(fps, 0);
  nn::Tensor f({kDetFeatureDim});
  f[0] = static_cast<float>(d.box.cx / frame_w);
  f[1] = static_cast<float>(d.box.cy / frame_h);
  f[2] = static_cast<float>(d.box.w / frame_w);
  f[3] = static_cast<float>(d.box.h / frame_h);
  f[4] = static_cast<float>(NormElapsedSec(t_elapsed_frames, fps));
  f[5] = static_cast<float>(patch_mean);
  f[6] = static_cast<float>(patch_std);
  f[7] = static_cast<float>(static_cast<int>(d.cls)) / 3.0f;
  return f;
}

nn::Tensor TrackerNet::PairFeature(const track::Detection& prev,
                                   const track::Detection& last,
                                   const track::Detection& candidate,
                                   double fps, double frame_w,
                                   double frame_h) {
  OTIF_CHECK_GT(fps, 0);
  const double dt_sec =
      std::max(1.0, static_cast<double>(candidate.frame - last.frame)) / fps;
  nn::Tensor f({kPairFeatureDim});
  // Displacement in frame-widths per second, squashed to a stable range.
  f[0] = static_cast<float>(
      std::tanh((candidate.box.cx - last.box.cx) / (frame_w * dt_sec) * 4.0));
  f[1] = static_cast<float>(
      std::tanh((candidate.box.cy - last.box.cy) / (frame_h * dt_sec) * 4.0));
  f[2] = static_cast<float>(last.box.Iou(candidate.box));
  const double size_ratio =
      std::sqrt(std::max(1.0, candidate.box.Area()) /
                std::max(1.0, last.box.Area()));
  f[3] = static_cast<float>(std::clamp(std::log(size_ratio), -2.0, 2.0));
  f[4] = static_cast<float>(std::min(dt_sec, 4.0) / 4.0);
  // Constant-velocity extrapolation residual: predicted position of the
  // track at the candidate's frame, from the last two detections.
  double pred_cx = last.box.cx, pred_cy = last.box.cy;
  const int prev_span = last.frame - prev.frame;
  if (prev_span > 0) {
    const double frames_ahead = candidate.frame - last.frame;
    pred_cx += (last.box.cx - prev.box.cx) / prev_span * frames_ahead;
    pred_cy += (last.box.cy - prev.box.cy) / prev_span * frames_ahead;
  }
  const double size = std::max(4.0, std::sqrt(last.box.Area()));
  f[5] = static_cast<float>(
      std::tanh((candidate.box.cx - pred_cx) / (size * 2.0)));
  f[6] = static_cast<float>(
      std::tanh((candidate.box.cy - pred_cy) / (size * 2.0)));
  return f;
}

std::pair<double, double> TrackerNet::AppearanceStats(
    const video::Image& raster, const geom::BBox& native_box, double native_w,
    double native_h) {
  const double sx = raster.width() / native_w;
  const double sy = raster.height() / native_h;
  const int x0 = std::clamp(static_cast<int>(native_box.Left() * sx), 0,
                            raster.width() - 1);
  const int x1 = std::clamp(static_cast<int>(native_box.Right() * sx), x0,
                            raster.width() - 1);
  const int y0 = std::clamp(static_cast<int>(native_box.Top() * sy), 0,
                            raster.height() - 1);
  const int y1 = std::clamp(static_cast<int>(native_box.Bottom() * sy), y0,
                            raster.height() - 1);
  double sum = 0.0, sum_sq = 0.0;
  int count = 0;
  for (int y = y0; y <= y1; ++y) {
    for (int x = x0; x <= x1; ++x) {
      const double v = raster.at(x, y);
      sum += v;
      sum_sq += v * v;
      ++count;
    }
  }
  if (count == 0) return {0.5, 0.1};
  const double mean = sum / count;
  const double var = std::max(0.0, sum_sq / count - mean * mean);
  return {mean, std::sqrt(var)};
}

nn::Tensor TrackerNet::InitialHidden() const {
  return nn::Tensor::Zeros({kHiddenSize});
}

nn::Tensor TrackerNet::EncodeDet(const nn::Tensor& feature) {
  OTIF_CHECK_EQ(feature.size(), kDetFeatureDim);
  return det_encoder_.Forward(feature);
}

nn::Tensor TrackerNet::MatcherInput(const nn::Tensor& hidden,
                                    const nn::Tensor& encoded,
                                    const nn::Tensor& pair_feature) const {
  OTIF_CHECK_EQ(hidden.size(), kHiddenSize);
  OTIF_CHECK_EQ(encoded.size(), kEncodedDim);
  OTIF_CHECK_EQ(pair_feature.size(), kPairFeatureDim);
  nn::Tensor in({kHiddenSize + kEncodedDim + kPairFeatureDim});
  int64_t k = 0;
  for (int64_t i = 0; i < hidden.size(); ++i) in[k++] = hidden[i];
  for (int64_t i = 0; i < encoded.size(); ++i) in[k++] = encoded[i];
  for (int64_t i = 0; i < pair_feature.size(); ++i) in[k++] = pair_feature[i];
  return in;
}

nn::Tensor TrackerNet::Advance(const nn::Tensor& hidden,
                               const nn::Tensor& det_feature) const {
  OTIF_CHECK_EQ(det_feature.size(), kDetFeatureDim);
  return gru_->StepInfer(det_encoder_.Infer(det_feature), hidden);
}

double TrackerNet::ScorePair(const nn::Tensor& hidden,
                             const nn::Tensor& det_feature,
                             const nn::Tensor& pair_feature) const {
  OTIF_CHECK_EQ(det_feature.size(), kDetFeatureDim);
  nn::Tensor encoded = det_encoder_.Infer(det_feature);
  nn::Tensor logit =
      matcher_.Infer(MatcherInput(hidden, encoded, pair_feature));
  return nn::StableSigmoid(logit[0]);
}

double TrackerNet::TrainStep(const Example& example) {
  OTIF_CHECK(!example.prefix_features.empty());
  OTIF_CHECK_EQ(example.candidate_features.size(),
                example.candidate_pair_features.size());
  if (example.candidate_features.empty()) return 0.0;
  OTIF_CHECK_LT(example.positive_index,
                static_cast<int>(example.candidate_features.size()));

  // Forward: encode prefix detections, fold through the GRU.
  const size_t prefix_len = example.prefix_features.size();
  nn::Tensor h = InitialHidden();
  for (const nn::Tensor& f : example.prefix_features) {
    h = gru_->Step(det_encoder_.Forward(f), h);
  }
  // Encode candidates and score them against the track features.
  const size_t num_cand = example.candidate_features.size();
  std::vector<nn::Tensor> encoded(num_cand);
  std::vector<nn::Tensor> logits(num_cand);
  for (size_t c = 0; c < num_cand; ++c) {
    encoded[c] = det_encoder_.Forward(example.candidate_features[c]);
    logits[c] = matcher_.Forward(
        MatcherInput(h, encoded[c], example.candidate_pair_features[c]));
  }

  // Loss: BCE per candidate, with the positive and the negative set
  // weighted equally. Plain averaging would give the single positive a
  // 1/k weight, biasing all match scores toward zero and breaking the
  // absolute calibration that the match threshold relies on.
  const bool has_positive = example.positive_index >= 0;
  const int num_neg =
      static_cast<int>(num_cand) - (has_positive ? 1 : 0);
  double loss = 0.0;
  std::vector<nn::Tensor> grad_logits(num_cand);
  for (size_t c = 0; c < num_cand; ++c) {
    const bool is_positive =
        static_cast<int>(c) == example.positive_index;
    nn::Tensor target({1});
    target[0] = is_positive ? 1.0f : 0.0f;
    nn::Tensor grad;
    const double l = nn::BceWithLogits(logits[c], target, nullptr, &grad);
    double weight;
    if (!has_positive) {
      weight = 1.0 / num_cand;
    } else if (is_positive) {
      weight = num_neg > 0 ? 0.5 : 1.0;
    } else {
      weight = 0.5 / num_neg;
    }
    loss += weight * l;
    grad.Scale(static_cast<float>(weight));
    grad_logits[c] = std::move(grad);
  }

  // Backward, strictly LIFO: matcher + candidate encoders in reverse order,
  // accumulating the track-feature gradient; then back through the GRU and
  // the prefix encoders.
  nn::Tensor grad_h = nn::Tensor::Zeros({kHiddenSize});
  for (size_t c = num_cand; c-- > 0;) {
    nn::Tensor grad_in = matcher_.Backward(grad_logits[c]);
    // Split the concatenated gradient.
    nn::Tensor grad_encoded({kEncodedDim});
    for (int64_t i = 0; i < kHiddenSize; ++i) grad_h[i] += grad_in[i];
    for (int64_t i = 0; i < kEncodedDim; ++i) {
      grad_encoded[i] = grad_in[kHiddenSize + i];
    }
    det_encoder_.Backward(grad_encoded);  // Pops candidate c's cache.
  }
  for (size_t s = prefix_len; s-- > 0;) {
    auto [grad_x, grad_h_prev] = gru_->StepBackward(grad_h);
    det_encoder_.Backward(grad_x);  // Pops prefix s's cache.
    grad_h = std::move(grad_h_prev);
  }
  optimizer_->Step();
  return loss;
}

}  // namespace otif::models
