#include "models/detector.h"

#include <algorithm>
#include <cmath>

#include "nn/layers.h"
#include "util/logging.h"
#include "util/rng.h"

namespace otif::models {
namespace {

// Scale is bucketed so that numerically close scales share the same random
// stream (stable, cacheable detections across tuner evaluations).
int ScaleBucket(double scale) {
  return static_cast<int>(std::lround(scale * 100.0));
}

// Frame-independent part of DetectSeed; XOR with FrameSeedTerm(frame) to get
// the full per-frame seed. Split out so batched calls hash the arch name and
// bucket the scale once per invocation instead of once per frame.
uint64_t DetectSeedBase(const sim::Clip& clip, const DetectorArch& arch,
                        double scale) {
  uint64_t h = clip.clip_seed() * 0x9e3779b97f4a7c15ULL;
  h ^= std::hash<std::string>{}(arch.name) * 0x94d049bb133111ebULL;
  h ^= static_cast<uint64_t>(ScaleBucket(scale) + 7) * 0xd6e8feb86659fd93ULL;
  return h;
}

uint64_t FrameSeedTerm(int frame) {
  return static_cast<uint64_t>(frame + 1) * 0xbf58476d1ce4e5b9ULL;
}

uint64_t DetectSeed(const sim::Clip& clip, int frame,
                    const DetectorArch& arch, double scale) {
  return DetectSeedBase(clip, arch, scale) ^ FrameSeedTerm(frame);
}

// Fraction of `box` covered by `other` (0..1).
double CoveredFraction(const geom::BBox& box, const geom::BBox& other) {
  const double area = box.Area();
  if (area <= 0) return 0.0;
  return box.IntersectionArea(other) / area;
}

track::ObjectClass NoisyClass(track::ObjectClass true_cls, double apparent,
                              Rng* rng) {
  // Class confusion for small objects: cars/trucks are visually similar.
  const double confuse_prob =
      std::clamp(0.25 - apparent / 120.0, 0.0, 0.25);
  if (!rng->Bernoulli(confuse_prob)) return true_cls;
  switch (true_cls) {
    case track::ObjectClass::kCar:
      return track::ObjectClass::kTruck;
    case track::ObjectClass::kTruck:
      return track::ObjectClass::kCar;
    case track::ObjectClass::kBus:
      return track::ObjectClass::kTruck;
    case track::ObjectClass::kPedestrian:
      return track::ObjectClass::kPedestrian;
  }
  return true_cls;
}

}  // namespace

std::vector<DetectorArch> StandardDetectorArchs() {
  DetectorArch yolo;
  yolo.name = "yolov3";
  // 100 fps at 960x540 = 10 ms / 518400 px = 19.3 ns per pixel (paper Sec 1).
  yolo.sec_per_pixel = 1.93e-8;
  yolo.sec_per_invocation = 5.0e-4;
  yolo.size50_px = 9.0;
  yolo.size_slope = 0.28;
  yolo.max_recall = 0.97;
  yolo.fp_per_mpx = 0.8;
  yolo.loc_jitter = 0.045;

  DetectorArch mask_rcnn;
  mask_rcnn.name = "mask_rcnn";
  // Roughly 5x slower than YOLOv3, better on small objects, fewer FPs.
  mask_rcnn.sec_per_pixel = 9.6e-8;
  mask_rcnn.sec_per_invocation = 2.0e-3;
  mask_rcnn.size50_px = 6.0;
  mask_rcnn.size_slope = 0.24;
  mask_rcnn.max_recall = 0.985;
  mask_rcnn.fp_per_mpx = 0.45;
  mask_rcnn.loc_jitter = 0.03;
  return {yolo, mask_rcnn};
}

const DetectorArch& ArchByName(const std::vector<DetectorArch>& archs,
                               const std::string& name) {
  for (const DetectorArch& a : archs) {
    if (a.name == name) return a;
  }
  OTIF_CHECK(false) << "unknown detector architecture: " << name;
  return archs.front();
}

double DetectorWindowSeconds(const DetectorArch& arch, double width,
                             double height) {
  return arch.sec_per_invocation + arch.sec_per_pixel * width * height;
}

SimulatedDetector::SimulatedDetector(DetectorArch arch)
    : arch_(std::move(arch)) {}

double SimulatedDetector::FullFrameSeconds(const sim::Clip& clip,
                                           double scale) const {
  return DetectorWindowSeconds(arch_, clip.spec().width * scale,
                               clip.spec().height * scale);
}

track::FrameDetections SimulatedDetector::Detect(const sim::Clip& clip,
                                                 int frame,
                                                 double scale) const {
  OTIF_CHECK_GT(scale, 0.0);
  OTIF_CHECK_LE(scale, 1.0);
  return DetectSeeded(clip, frame, scale, DetectSeed(clip, frame, arch_, scale));
}

std::vector<track::FrameDetections> SimulatedDetector::DetectBatch(
    const sim::Clip& clip, const std::vector<int>& frames,
    double scale) const {
  OTIF_CHECK_GT(scale, 0.0);
  OTIF_CHECK_LE(scale, 1.0);
  const uint64_t base = DetectSeedBase(clip, arch_, scale);
  std::vector<track::FrameDetections> out;
  out.reserve(frames.size());
  for (int frame : frames) {
    out.push_back(DetectSeeded(clip, frame, scale, base ^ FrameSeedTerm(frame)));
  }
  return out;
}

std::vector<std::vector<track::FrameDetections>>
SimulatedDetector::DetectBatchMulti(
    const std::vector<ClipBatchRequest>& requests, double scale) const {
  OTIF_CHECK_GT(scale, 0.0);
  OTIF_CHECK_LE(scale, 1.0);
  std::vector<std::vector<track::FrameDetections>> out;
  out.reserve(requests.size());
  for (const ClipBatchRequest& req : requests) {
    OTIF_CHECK(req.clip != nullptr);
    // The frame-independent seed material is hoisted per clip slice; the
    // per-frame emission is the same seeded path as Detect/DetectBatch.
    const uint64_t base = DetectSeedBase(*req.clip, arch_, scale);
    std::vector<track::FrameDetections> dets;
    dets.reserve(req.frames.size());
    for (int frame : req.frames) {
      dets.push_back(
          DetectSeeded(*req.clip, frame, scale, base ^ FrameSeedTerm(frame)));
    }
    out.push_back(std::move(dets));
  }
  return out;
}

track::FrameDetections SimulatedDetector::DetectSeeded(const sim::Clip& clip,
                                                       int frame, double scale,
                                                       uint64_t seed) const {
  Rng rng(seed);
  track::FrameDetections out;

  const auto& visible = clip.VisibleAt(frame);
  const auto& objects = clip.objects();

  for (const sim::VisibleObject& vis : visible) {
    const sim::GtObject& obj = objects[static_cast<size_t>(vis.object_index)];
    const sim::ObjectFrameState& st =
        obj.states[static_cast<size_t>(vis.state_index)];
    // Apparent size in detector-input pixels.
    const double apparent = std::sqrt(st.box.w * st.box.h) * scale;
    double p = arch_.max_recall *
               nn::StableSigmoid(static_cast<float>(
                   (apparent - arch_.size50_px) /
                   (arch_.size_slope * arch_.size50_px)));
    // Occlusion penalty: fraction covered by any larger object.
    double occluded = 0.0;
    for (const sim::VisibleObject& other_vis : visible) {
      if (other_vis.object_index == vis.object_index) continue;
      const sim::GtObject& other =
          objects[static_cast<size_t>(other_vis.object_index)];
      const sim::ObjectFrameState& other_st =
          other.states[static_cast<size_t>(other_vis.state_index)];
      if (other_st.box.Area() <= st.box.Area()) continue;
      occluded = std::max(occluded, CoveredFraction(st.box, other_st.box));
    }
    p *= (1.0 - 0.75 * occluded);
    // Boundary penalty: partially out-of-frame objects are harder.
    const geom::BBox clipped =
        st.box.ClippedTo(clip.spec().width, clip.spec().height);
    const double inside = clipped.Area() / std::max(1.0, st.box.Area());
    p *= std::clamp(inside * 1.25, 0.0, 1.0);

    if (!rng.Bernoulli(p)) continue;

    // Localization jitter grows as the input is downsampled.
    const double jitter = arch_.loc_jitter / std::sqrt(scale);
    track::Detection d;
    d.frame = frame;
    d.box = geom::BBox(
        st.box.cx + rng.Gaussian(0.0, jitter * st.box.w),
        st.box.cy + rng.Gaussian(0.0, jitter * st.box.h),
        std::max(2.0, st.box.w * (1.0 + rng.Gaussian(0.0, jitter))),
        std::max(2.0, st.box.h * (1.0 + rng.Gaussian(0.0, jitter))));
    d.cls = NoisyClass(obj.cls, apparent, &rng);
    // Confidence correlates with apparent size and detection difficulty.
    const double conf_mean =
        0.55 + 0.45 * nn::StableSigmoid(static_cast<float>(
                          (apparent - arch_.size50_px) / arch_.size50_px));
    d.confidence = std::clamp(rng.Gaussian(conf_mean, 0.1), 0.05, 1.0);
    d.gt_id = obj.id;
    out.push_back(d);
  }

  // False positives: Poisson over the detector-input area, low confidence.
  const double input_mpx =
      clip.spec().width * scale * clip.spec().height * scale / 1e6;
  const double fp_mean = arch_.fp_per_mpx * input_mpx;
  int n_fp = 0;
  {
    // Knuth Poisson sampling (fp_mean is small).
    double l = std::exp(-fp_mean), prod = rng.NextDouble();
    while (prod > l) {
      ++n_fp;
      prod *= rng.NextDouble();
    }
  }
  for (int i = 0; i < n_fp; ++i) {
    track::Detection d;
    d.frame = frame;
    const double w = std::exp(rng.Gaussian(std::log(30.0), 0.4));
    d.box = geom::BBox(rng.Uniform(0, clip.spec().width),
                       rng.Uniform(0, clip.spec().height), w, w * 0.7);
    d.cls = track::ObjectClass::kCar;
    d.confidence = std::clamp(rng.Gaussian(0.35, 0.12), 0.05, 0.8);
    d.gt_id = -1;
    out.push_back(d);
  }
  return out;
}

track::FrameDetections FilterByWindows(
    const track::FrameDetections& detections,
    const std::vector<geom::BBox>& windows) {
  track::FrameDetections out;
  for (const track::Detection& d : detections) {
    for (const geom::BBox& w : windows) {
      if (w.Contains(d.box.Center())) {
        out.push_back(d);
        break;
      }
    }
  }
  return out;
}

track::FrameDetections FilterByConfidence(
    const track::FrameDetections& detections, double threshold) {
  track::FrameDetections out;
  for (const track::Detection& d : detections) {
    if (d.confidence >= threshold) out.push_back(d);
  }
  return out;
}

track::FrameDetections FilterByClass(const track::FrameDetections& detections,
                                     track::ObjectClass cls) {
  track::FrameDetections out;
  for (const track::Detection& d : detections) {
    if (d.cls == cls) out.push_back(d);
  }
  return out;
}

}  // namespace otif::models
