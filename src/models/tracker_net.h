#ifndef OTIF_MODELS_TRACKER_NET_H_
#define OTIF_MODELS_TRACKER_NET_H_

#include <memory>
#include <vector>

#include "nn/layers.h"
#include "nn/optimizer.h"
#include "track/types.h"
#include "video/image.h"

namespace otif::models {

/// Recurrent reduced-rate tracking network (paper Sec 3.4). Three
/// components, all trained jointly with backprop:
///   1. a detection feature encoder (MLP over geometry, appearance
///      statistics, and the elapsed-frames input t_elapsed),
///   2. a GRU that folds a track prefix's detection features into a
///      track-level feature (replacing the paper's RNN over CNN features),
///   3. a matching MLP scoring (track features, detection features, pair
///      features) -> logit that the detection extends the track.
///
/// The t_elapsed input is what makes the model usable at arbitrary sampling
/// gaps: training sub-samples tracks at gaps drawn from {1, 2, 4, ..., 2^n}
/// so one model serves every gap the tuner may select.
class TrackerNet {
 public:
  /// Detection feature layout: cx/W, cy/H, w/W, h/H, t_elapsed (seconds,
  /// capped), patch mean, patch std, class index / 3.
  static constexpr int kDetFeatureDim = 8;
  /// Pair feature layout: dx and dy normalized by elapsed time, IoU with
  /// the track's last box, log size ratio, elapsed seconds, and the
  /// candidate's residual against a constant-velocity extrapolation from
  /// the track's last two detections (x and y, normalized by box size).
  /// The residual is the explicit motion cue that lets the matcher stay
  /// accurate at large sampling gaps where boxes no longer overlap.
  static constexpr int kPairFeatureDim = 7;

  explicit TrackerNet(uint64_t seed);

  TrackerNet(const TrackerNet&) = delete;
  TrackerNet& operator=(const TrackerNet&) = delete;

  int hidden_size() const { return kHiddenSize; }

  /// Builds the detection feature vector. `t_elapsed_frames` is the number
  /// of frames since the previous detection of the same track (or since the
  /// previously processed frame, for fresh detections).
  static nn::Tensor DetFeature(const track::Detection& d,
                               double t_elapsed_frames, double fps,
                               double frame_w, double frame_h,
                               double patch_mean, double patch_std);

  /// Builds the pair feature vector between a track's last detections and
  /// a candidate. `prev` is the detection before `last` (pass `last` again
  /// for single-detection tracks; the velocity term is then zero).
  static nn::Tensor PairFeature(const track::Detection& prev,
                                const track::Detection& last,
                                const track::Detection& candidate, double fps,
                                double frame_w, double frame_h);

  /// Appearance statistics (mean, std) of a native-coordinate box inside a
  /// low-resolution render; used for both training and inference so the
  /// feature distributions match.
  static std::pair<double, double> AppearanceStats(
      const video::Image& raster, const geom::BBox& native_box,
      double native_w, double native_h);

  /// Zero hidden state for a new track.
  nn::Tensor InitialHidden() const;

  /// Inference: folds one detection feature into the hidden state. Uses
  /// the cache-free inference path; safe to call concurrently from many
  /// trackers sharing one trained net.
  nn::Tensor Advance(const nn::Tensor& hidden,
                     const nn::Tensor& det_feature) const;

  /// Inference: match probability (sigmoid of the logit) for a candidate
  /// against a track hidden state. Thread-safe like Advance.
  double ScorePair(const nn::Tensor& hidden, const nn::Tensor& det_feature,
                   const nn::Tensor& pair_feature) const;

  /// One training example: a track prefix (already gap-subsampled, features
  /// built with their true t_elapsed), candidate detections in the next
  /// processed frame, and which candidate (if any) truly extends the track.
  struct Example {
    std::vector<nn::Tensor> prefix_features;
    std::vector<nn::Tensor> candidate_features;
    std::vector<nn::Tensor> candidate_pair_features;
    /// Index into candidates of the true continuation; -1 when the track
    /// ends here (all candidates are negatives).
    int positive_index = -1;
  };

  /// Runs forward + backward + Adam on one example; returns the loss.
  double TrainStep(const Example& example);

  int64_t train_steps() const { return optimizer_->steps_taken(); }

 private:
  static constexpr int kEncodedDim = 24;
  static constexpr int kHiddenSize = 32;

  nn::Tensor EncodeDet(const nn::Tensor& feature);
  nn::Tensor MatcherInput(const nn::Tensor& hidden, const nn::Tensor& encoded,
                          const nn::Tensor& pair_feature) const;

  nn::Sequential det_encoder_;
  std::unique_ptr<nn::GruCell> gru_;
  nn::Sequential matcher_;
  std::unique_ptr<nn::Adam> optimizer_;
};

}  // namespace otif::models

#endif  // OTIF_MODELS_TRACKER_NET_H_
