#ifndef OTIF_MEM_BUFFER_POOL_H_
#define OTIF_MEM_BUFFER_POOL_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

namespace otif::mem {

class BufferPool;

namespace internal {

/// One pooled allocation: the float storage plus the refcount and the
/// size-class bookkeeping the pool needs to take it back. Blocks are only
/// ever created by BufferPool and only destroyed by it (or by TrimAll).
struct Block {
  explicit Block(size_t capacity_floats)
      : capacity(capacity_floats),
        data(std::make_unique<float[]>(capacity_floats)) {}

  std::atomic<int32_t> refs{0};
  uint32_t size_class = 0;      // Freelist index; kUnpooledClass if oversize.
  size_t capacity = 0;          // Floats.
  BufferPool* pool = nullptr;   // Owning pool; receives the last release.
  std::unique_ptr<float[]> data;
};

}  // namespace internal

/// Refcounted handle to a pooled float buffer. Copying shares the block
/// (refcount increment); the block returns to its pool's freelist when the
/// last handle drops. Handles are cheap to move and safe to destroy from
/// any thread. A default-constructed handle is null.
class PooledBuffer {
 public:
  PooledBuffer() = default;
  ~PooledBuffer() { reset(); }

  PooledBuffer(const PooledBuffer& o) : block_(o.block_) {
    if (block_ != nullptr) {
      block_->refs.fetch_add(1, std::memory_order_relaxed);
    }
  }
  PooledBuffer& operator=(const PooledBuffer& o) {
    if (this == &o) return *this;
    PooledBuffer tmp(o);  // Acquire first: self-block-safe.
    std::swap(block_, tmp.block_);
    return *this;
  }
  PooledBuffer(PooledBuffer&& o) noexcept : block_(o.block_) {
    o.block_ = nullptr;
  }
  PooledBuffer& operator=(PooledBuffer&& o) noexcept {
    if (this == &o) return *this;
    reset();
    block_ = o.block_;
    o.block_ = nullptr;
    return *this;
  }

  float* data() const {
    return block_ != nullptr ? block_->data.get() : nullptr;
  }
  /// Usable floats (the size-class rounding, >= the requested count).
  size_t capacity() const { return block_ != nullptr ? block_->capacity : 0; }
  /// True when this is the only live handle to the block — the holder may
  /// write in place without aliasing another owner.
  bool unique() const {
    return block_ != nullptr &&
           block_->refs.load(std::memory_order_acquire) == 1;
  }
  explicit operator bool() const { return block_ != nullptr; }

  /// Drops this handle; the last drop releases the block to its pool.
  void reset();

 private:
  friend class BufferPool;
  explicit PooledBuffer(internal::Block* block) : block_(block) {}

  internal::Block* block_ = nullptr;
};

/// Thread-safe size-class buffer pool for the frame/tensor data path.
/// Capacities round up to power-of-two size classes (min 256 floats);
/// released blocks park on a per-class freelist (mutex-guarded, LIFO) and
/// satisfy later acquires without touching the heap, so a steady-state
/// pipeline run performs zero frame-buffer allocations after warmup. The
/// pool also aggregates the nn scratch-arena's chunk reservations so the
/// whole hot-path memory story shows up in one set of counters.
///
/// Statistics are intrinsic relaxed atomics (not the telemetry registry) so
/// benches can delta them across a measurement window independently of
/// telemetry::ResetAll(); PublishTelemetry() mirrors them into the registry
/// as `mem.*` gauges for run reports.
class BufferPool {
 public:
  /// The process-wide pool (leaked singleton: handles held by static-storage
  /// images/tensors may release during shutdown).
  static BufferPool& Global();

  BufferPool();
  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;
  ~BufferPool();

  /// Returns a handle to at least `n_floats` floats. Contents are
  /// unspecified (possibly a recycled buffer); callers must write before
  /// reading. `n_floats` == 0 returns a null handle.
  PooledBuffer Acquire(size_t n_floats);

  struct Stats {
    int64_t hits = 0;            // Acquires served from a freelist.
    int64_t misses = 0;          // Acquires that allocated a new block.
    int64_t bytes_in_flight = 0;  // Bytes currently held by live handles.
    int64_t bytes_retained = 0;   // Bytes parked on freelists.
    int64_t arena_allocs = 0;     // Scratch-arena chunk allocations.
    int64_t arena_bytes_reserved = 0;  // Scratch-arena bytes reserved.

    double hit_rate() const {
      const int64_t total = hits + misses;
      return total > 0 ? static_cast<double>(hits) / total : 1.0;
    }
  };
  Stats GetStats() const;

  /// Called by nn::ScratchArena when it reserves a new chunk, so im2col
  /// scratch growth is visible in the same accounting as pool misses.
  void NoteArenaAlloc(size_t bytes);

  /// Mirrors current stats into the telemetry registry: gauges
  /// mem.pool.{hits,misses,hit_rate,bytes_in_flight,bytes_retained} and
  /// mem.arena.{allocations,bytes_reserved}.
  void PublishTelemetry() const;

  /// Frees every parked block (tests; live handles are unaffected).
  void TrimAll();

 private:
  friend class PooledBuffer;

  // 2^8 .. 2^28 floats (1 KiB .. 1 GiB); larger requests bypass pooling.
  static constexpr uint32_t kMinClassLog2 = 8;
  static constexpr uint32_t kNumClasses = 21;
  static constexpr uint32_t kUnpooledClass = ~0u;
  // Per-class retention cap, in bytes rather than blocks: small classes may
  // park thousands of blocks (the executor keeps one tiny score tensor live
  // per in-flight frame, so peak demand scales with clips x frames), while a
  // class of 32 MiB blocks parks at most kMinRetainedPerClass. Blocks above
  // the byte cap still park a couple deep so repeated large acquires don't
  // thrash the heap.
  static constexpr size_t kMaxRetainedBytesPerClass = size_t{32} << 20;
  static constexpr size_t kMinRetainedPerClass = 2;

  struct SizeClass {
    std::mutex mu;
    std::vector<internal::Block*> free;  // mu.
  };

  /// Takes `block` back from the last handle: parks it (or frees it when
  /// the class is full or the block is unpooled).
  void Release(internal::Block* block);

  SizeClass classes_[kNumClasses];
  std::atomic<int64_t> hits_{0};
  std::atomic<int64_t> misses_{0};
  std::atomic<int64_t> bytes_in_flight_{0};
  std::atomic<int64_t> bytes_retained_{0};
  std::atomic<int64_t> arena_allocs_{0};
  std::atomic<int64_t> arena_bytes_{0};
};

}  // namespace otif::mem

#endif  // OTIF_MEM_BUFFER_POOL_H_
