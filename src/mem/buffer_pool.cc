#include "mem/buffer_pool.h"

#include <algorithm>
#include <cstdlib>

#include "util/fault_injection.h"
#include "util/logging.h"
#include "util/telemetry.h"

namespace otif::mem {
namespace {

/// Whether OTIF_POOL_DEBUG per-miss logging is requested (checked once per
/// process; the miss path should not pay a getenv per allocation).
bool PoolDebugFromEnv() {
  static const bool enabled = std::getenv("OTIF_POOL_DEBUG") != nullptr;
  return enabled;
}

/// Smallest size class whose capacity covers `n` floats.
uint32_t ClassForSize(size_t n, uint32_t min_log2, uint32_t num_classes) {
  size_t cap = size_t{1} << min_log2;
  for (uint32_t c = 0; c < num_classes; ++c, cap <<= 1) {
    if (cap >= n) return c;
  }
  return ~0u;  // Oversize: caller bypasses pooling.
}

}  // namespace

void PooledBuffer::reset() {
  if (block_ == nullptr) return;
  internal::Block* block = block_;
  block_ = nullptr;
  // Release ordering so every write through data() happens-before the next
  // owner's reads; the matching acquire fence runs only on the last drop.
  if (block->refs.fetch_sub(1, std::memory_order_release) == 1) {
    std::atomic_thread_fence(std::memory_order_acquire);
    block->pool->Release(block);
  }
}

BufferPool& BufferPool::Global() {
  static BufferPool* pool = new BufferPool();  // Leaked: see header.
  return *pool;
}

BufferPool::BufferPool() = default;

BufferPool::~BufferPool() { TrimAll(); }

PooledBuffer BufferPool::Acquire(size_t n_floats) {
  if (n_floats == 0) return PooledBuffer();
  const uint32_t cls = ClassForSize(n_floats, kMinClassLog2, kNumClasses);
  // Chaos hook: "mem.acquire" kDeny bypasses the freelist, forcing a heap
  // miss — callers see only a pool-stats change, never a behavioral one,
  // which is exactly the failure shape of a pool under memory pressure.
  bool deny_freelist = false;
  {
    fault::Injection inj;
    if (OTIF_FAULT_POINT("mem.acquire", -1, &inj) &&
        inj.kind == fault::Kind::kDeny) {
      deny_freelist = true;
    }
  }
  internal::Block* block = nullptr;
  if (cls != kUnpooledClass && !deny_freelist) {
    SizeClass& sc = classes_[cls];
    std::lock_guard<std::mutex> lock(sc.mu);
    if (!sc.free.empty()) {
      block = sc.free.back();
      sc.free.pop_back();
    }
  }
  if (block != nullptr) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    bytes_retained_.fetch_sub(
        static_cast<int64_t>(block->capacity * sizeof(float)),
        std::memory_order_relaxed);
  } else {
    misses_.fetch_add(1, std::memory_order_relaxed);
    // Set OTIF_POOL_DEBUG=1 to log each miss: at steady state misses should
    // not happen, and each log line is an allocation site to chase. Emitted
    // at kDebug severity so a long run at the default threshold (kInfo) is
    // not flooded — pair with OTIF_LOG_LEVEL=debug to see the lines.
    if (PoolDebugFromEnv()) {
      OTIF_LOG(kDebug) << "[buffer_pool miss] n_floats=" << n_floats
                       << " class=" << cls;
    }
    const size_t capacity =
        cls != kUnpooledClass ? (size_t{1} << (kMinClassLog2 + cls))
                              : n_floats;
    block = new internal::Block(capacity);
    block->size_class = cls;
    block->pool = this;
  }
  block->refs.store(1, std::memory_order_relaxed);
  bytes_in_flight_.fetch_add(
      static_cast<int64_t>(block->capacity * sizeof(float)),
      std::memory_order_relaxed);
  return PooledBuffer(block);
}

void BufferPool::Release(internal::Block* block) {
  OTIF_CHECK(block != nullptr);
  bytes_in_flight_.fetch_sub(
      static_cast<int64_t>(block->capacity * sizeof(float)),
      std::memory_order_relaxed);
  if (block->size_class != kUnpooledClass) {
    // All blocks in a class share one capacity, so the byte cap reduces to a
    // per-class block-count cap.
    const size_t block_bytes = block->capacity * sizeof(float);
    const size_t max_blocks = std::max(
        kMinRetainedPerClass, kMaxRetainedBytesPerClass / block_bytes);
    SizeClass& sc = classes_[block->size_class];
    std::lock_guard<std::mutex> lock(sc.mu);
    if (sc.free.size() < max_blocks) {
      sc.free.push_back(block);
      bytes_retained_.fetch_add(
          static_cast<int64_t>(block->capacity * sizeof(float)),
          std::memory_order_relaxed);
      return;
    }
  }
  delete block;
}

BufferPool::Stats BufferPool::GetStats() const {
  Stats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.bytes_in_flight = bytes_in_flight_.load(std::memory_order_relaxed);
  s.bytes_retained = bytes_retained_.load(std::memory_order_relaxed);
  s.arena_allocs = arena_allocs_.load(std::memory_order_relaxed);
  s.arena_bytes_reserved = arena_bytes_.load(std::memory_order_relaxed);
  return s;
}

void BufferPool::NoteArenaAlloc(size_t bytes) {
  arena_allocs_.fetch_add(1, std::memory_order_relaxed);
  arena_bytes_.fetch_add(static_cast<int64_t>(bytes),
                         std::memory_order_relaxed);
}

void BufferPool::PublishTelemetry() const {
  const Stats s = GetStats();
  telemetry::MetricsRegistry& registry = telemetry::MetricsRegistry::Global();
  registry.GetGauge("mem.pool.hits")->Set(static_cast<double>(s.hits));
  registry.GetGauge("mem.pool.misses")->Set(static_cast<double>(s.misses));
  registry.GetGauge("mem.pool.hit_rate")->Set(s.hit_rate());
  registry.GetGauge("mem.pool.bytes_in_flight")
      ->Set(static_cast<double>(s.bytes_in_flight));
  registry.GetGauge("mem.pool.bytes_retained")
      ->Set(static_cast<double>(s.bytes_retained));
  registry.GetGauge("mem.arena.allocations")
      ->Set(static_cast<double>(s.arena_allocs));
  registry.GetGauge("mem.arena.bytes_reserved")
      ->Set(static_cast<double>(s.arena_bytes_reserved));
}

void BufferPool::TrimAll() {
  for (SizeClass& sc : classes_) {
    std::vector<internal::Block*> drained;
    {
      std::lock_guard<std::mutex> lock(sc.mu);
      drained.swap(sc.free);
    }
    for (internal::Block* block : drained) {
      bytes_retained_.fetch_sub(
          static_cast<int64_t>(block->capacity * sizeof(float)),
          std::memory_order_relaxed);
      delete block;
    }
  }
}

}  // namespace otif::mem
