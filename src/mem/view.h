#ifndef OTIF_MEM_VIEW_H_
#define OTIF_MEM_VIEW_H_

#include <cstddef>
#include <cstdint>

namespace otif::mem {

/// Non-owning 2-D view over row-major float pixels. Borrowed from an owning
/// container (video::Image, a tensor slice, a pool buffer); the borrower
/// must not outlive the storage, and must not hold the view across any
/// operation that may reallocate it (resize, assignment, pool release).
/// Accessors skip bounds checks: views are the hot-path interface, the
/// owning containers keep the checked accessors.
struct ConstImageView {
  const float* data = nullptr;
  int width = 0;
  int height = 0;
  int row_stride = 0;  // Floats between the starts of adjacent rows.

  const float* row(int y) const {
    return data + static_cast<size_t>(y) * row_stride;
  }
  float at(int x, int y) const { return row(y)[x]; }
  bool empty() const { return width <= 0 || height <= 0; }
};

/// Mutable variant of ConstImageView; converts implicitly to the const view.
struct ImageView {
  float* data = nullptr;
  int width = 0;
  int height = 0;
  int row_stride = 0;

  float* row(int y) const {
    return data + static_cast<size_t>(y) * row_stride;
  }
  float at(int x, int y) const { return row(y)[x]; }
  void set(int x, int y, float v) const { row(y)[x] = v; }
  bool empty() const { return width <= 0 || height <= 0; }

  operator ConstImageView() const {  // NOLINT(google-explicit-constructor)
    return ConstImageView{data, width, height, row_stride};
  }
};

/// Non-owning dense row-major tensor view, up to 4 dimensions. Same lifetime
/// rules as ImageView. `shape` holds `ndim` leading entries; trailing
/// entries are 1 so stride math is uniform.
struct TensorView {
  float* data = nullptr;
  int ndim = 0;
  int64_t shape[4] = {1, 1, 1, 1};

  int64_t size() const {
    return shape[0] * shape[1] * shape[2] * shape[3];
  }
  /// Contiguous plane covered by trailing dimensions from `dim` on (e.g.
  /// dim=1 of an (N, C, H, W) view is one batch element's C*H*W block).
  int64_t plane(int dim) const {
    int64_t p = 1;
    for (int d = dim; d < 4; ++d) p *= shape[d];
    return p;
  }
  float* slice(int i) const { return data + i * plane(1); }
};

}  // namespace otif::mem

#endif  // OTIF_MEM_VIEW_H_
