#ifndef OTIF_TRACK_KALMAN_H_
#define OTIF_TRACK_KALMAN_H_

#include "geom/geometry.h"

namespace otif::track {

/// Constant-velocity Kalman filter over a bounding box, as used by SORT.
/// State: (cx, cy, s, r, vcx, vcy, vs) where s is box area and r the aspect
/// ratio (held constant), with independent per-component variances (the
/// covariance is kept diagonal, which is the standard lightweight SORT
/// simplification).
class KalmanBoxFilter {
 public:
  /// Initializes the filter from the first observed box.
  explicit KalmanBoxFilter(const geom::BBox& box);

  /// Advances the state by `dt_frames` frames (prediction step).
  void Predict(double dt_frames);

  /// Incorporates a new observation (update step).
  void Update(const geom::BBox& box);

  /// Current state as a box.
  geom::BBox StateBox() const;

  /// Predicted box `dt_frames` ahead without mutating the filter.
  geom::BBox PredictedBox(double dt_frames) const;

  /// Velocity of the center, pixels per frame.
  geom::Point Velocity() const { return {vcx_, vcy_}; }

 private:
  double cx_, cy_, s_, r_;
  double vcx_ = 0.0, vcy_ = 0.0, vs_ = 0.0;
  double last_dt_ = 1.0;  // Frames spanned by the most recent Predict().
  // Diagonal covariance entries for (cx, cy, s) and their velocities.
  double p_pos_, p_vel_;
};

}  // namespace otif::track

#endif  // OTIF_TRACK_KALMAN_H_
