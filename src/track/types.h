#ifndef OTIF_TRACK_TYPES_H_
#define OTIF_TRACK_TYPES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "geom/geometry.h"

namespace otif::track {

/// Object categories in the synthetic world. Queries in the evaluation focus
/// on cars, matching the paper (Sec 4, "Datasets").
enum class ObjectClass : uint8_t {
  kCar = 0,
  kBus = 1,
  kTruck = 2,
  kPedestrian = 3,
};

/// Stable display name ("car", "bus", ...).
const char* ObjectClassName(ObjectClass cls);

/// A single object detection d = (t, x, y, w, h) plus class and confidence
/// (paper Sec 3, Table 1). Coordinates are native-resolution frame pixels.
struct Detection {
  /// Frame index within the clip.
  int frame = 0;
  /// Bounding box in native frame coordinates.
  geom::BBox box;
  ObjectClass cls = ObjectClass::kCar;
  /// Detector confidence in [0, 1]; 1 for ground truth.
  double confidence = 1.0;
  /// Ground-truth object id this detection came from; -1 for false
  /// positives or when provenance is unknown. Used only for evaluation,
  /// never by the pipeline itself.
  int64_t gt_id = -1;
};

/// An object track s_i = (C_k, <d_1, ..., d_m>): a unique object represented
/// as a time-ordered sequence of detections (paper Sec 3).
struct Track {
  int64_t id = -1;
  ObjectClass cls = ObjectClass::kCar;
  std::vector<Detection> detections;

  bool empty() const { return detections.empty(); }
  int StartFrame() const;
  int EndFrame() const;
  /// Number of frames between first and last detection, inclusive.
  int DurationFrames() const;

  /// Center points of the detections in order (the track's path).
  std::vector<geom::Point> CenterPolyline() const;

  /// Linearly interpolated box at `frame`; clamps outside the track's span.
  geom::BBox InterpolatedBoxAt(int frame) const;

  /// True when the track has a detection within `tolerance` frames of
  /// `frame`.
  bool VisibleNear(int frame, int tolerance) const;

  /// Average speed (pixels/frame) between consecutive detections over the
  /// whole track; 0 for tracks with fewer than two detections.
  double MeanSpeedPxPerFrame() const;
};

/// Detections of several objects in one frame.
using FrameDetections = std::vector<Detection>;

/// Groups a flat list of detections by frame index (ascending frames;
/// original order preserved within a frame).
std::vector<std::pair<int, FrameDetections>> GroupByFrame(
    const std::vector<Detection>& detections);

}  // namespace otif::track

#endif  // OTIF_TRACK_TYPES_H_
