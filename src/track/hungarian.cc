#include "track/hungarian.h"

#include <algorithm>
#include <limits>

#include "util/logging.h"

namespace otif::track {

std::vector<int> SolveAssignment(
    const std::vector<std::vector<double>>& cost) {
  const int n_rows = static_cast<int>(cost.size());
  if (n_rows == 0) return {};
  const int n_cols = static_cast<int>(cost[0].size());
  for (const auto& row : cost) {
    OTIF_CHECK_EQ(static_cast<int>(row.size()), n_cols);
  }
  if (n_cols == 0) return std::vector<int>(static_cast<size_t>(n_rows), -1);

  // Pad to a square matrix with large-but-finite costs so the augmenting
  // path algorithm can always complete; padded matches become -1.
  const int n = std::max(n_rows, n_cols);
  double max_abs = 1.0;
  for (const auto& row : cost) {
    for (double c : row) max_abs = std::max(max_abs, std::abs(c));
  }
  const double pad = max_abs * 4 + 1;
  auto at = [&](int r, int c) -> double {
    if (r < n_rows && c < n_cols) return cost[static_cast<size_t>(r)][static_cast<size_t>(c)];
    return pad;
  };

  // Jonker-Volgenant style shortest augmenting path (1-indexed internals).
  const double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> u(static_cast<size_t>(n) + 1, 0.0);
  std::vector<double> v(static_cast<size_t>(n) + 1, 0.0);
  std::vector<int> match_col(static_cast<size_t>(n) + 1, 0);  // col -> row
  std::vector<int> way(static_cast<size_t>(n) + 1, 0);

  for (int i = 1; i <= n; ++i) {
    match_col[0] = i;
    int j0 = 0;
    std::vector<double> minv(static_cast<size_t>(n) + 1, kInf);
    std::vector<char> used(static_cast<size_t>(n) + 1, 0);
    do {
      used[static_cast<size_t>(j0)] = 1;
      const int i0 = match_col[static_cast<size_t>(j0)];
      double delta = kInf;
      int j1 = 0;
      for (int j = 1; j <= n; ++j) {
        if (used[static_cast<size_t>(j)]) continue;
        const double cur = at(i0 - 1, j - 1) - u[static_cast<size_t>(i0)] -
                           v[static_cast<size_t>(j)];
        if (cur < minv[static_cast<size_t>(j)]) {
          minv[static_cast<size_t>(j)] = cur;
          way[static_cast<size_t>(j)] = j0;
        }
        if (minv[static_cast<size_t>(j)] < delta) {
          delta = minv[static_cast<size_t>(j)];
          j1 = j;
        }
      }
      for (int j = 0; j <= n; ++j) {
        if (used[static_cast<size_t>(j)]) {
          u[static_cast<size_t>(match_col[static_cast<size_t>(j)])] += delta;
          v[static_cast<size_t>(j)] -= delta;
        } else {
          minv[static_cast<size_t>(j)] -= delta;
        }
      }
      j0 = j1;
    } while (match_col[static_cast<size_t>(j0)] != 0);
    do {
      const int j1 = way[static_cast<size_t>(j0)];
      match_col[static_cast<size_t>(j0)] = match_col[static_cast<size_t>(j1)];
      j0 = j1;
    } while (j0 != 0);
  }

  std::vector<int> row_to_col(static_cast<size_t>(n_rows), -1);
  for (int j = 1; j <= n; ++j) {
    const int i = match_col[static_cast<size_t>(j)];
    if (i >= 1 && i <= n_rows && j <= n_cols) {
      row_to_col[static_cast<size_t>(i - 1)] = j - 1;
    }
  }
  return row_to_col;
}

std::vector<int> GreedyAssignment(
    const std::vector<std::vector<double>>& cost, double max_cost) {
  const int n_rows = static_cast<int>(cost.size());
  std::vector<int> row_to_col(static_cast<size_t>(n_rows), -1);
  if (n_rows == 0) return row_to_col;
  const int n_cols = static_cast<int>(cost[0].size());
  struct Entry {
    double c;
    int r;
    int col;
  };
  std::vector<Entry> entries;
  for (int r = 0; r < n_rows; ++r) {
    OTIF_CHECK_EQ(static_cast<int>(cost[static_cast<size_t>(r)].size()),
                  n_cols);
    for (int c = 0; c < n_cols; ++c) {
      const double value = cost[static_cast<size_t>(r)][static_cast<size_t>(c)];
      if (value <= max_cost) entries.push_back({value, r, c});
    }
  }
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return a.c < b.c; });
  std::vector<char> col_used(static_cast<size_t>(n_cols), 0);
  for (const Entry& e : entries) {
    if (row_to_col[static_cast<size_t>(e.r)] != -1 ||
        col_used[static_cast<size_t>(e.col)]) {
      continue;
    }
    row_to_col[static_cast<size_t>(e.r)] = e.col;
    col_used[static_cast<size_t>(e.col)] = 1;
  }
  return row_to_col;
}

}  // namespace otif::track
