#include "track/refine.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/stats.h"

namespace otif::track {
namespace {

std::vector<geom::Point> CenterOfMembers(
    const std::vector<const std::vector<geom::Point>*>& members, int n) {
  std::vector<geom::Point> center(static_cast<size_t>(n));
  for (const auto* path : members) {
    for (int i = 0; i < n; ++i) {
      center[static_cast<size_t>(i)].x += (*path)[static_cast<size_t>(i)].x;
      center[static_cast<size_t>(i)].y += (*path)[static_cast<size_t>(i)].y;
    }
  }
  const double inv = 1.0 / static_cast<double>(members.size());
  for (geom::Point& p : center) {
    p.x *= inv;
    p.y *= inv;
  }
  return center;
}

double ResampledDistance(const std::vector<geom::Point>& a,
                         const std::vector<geom::Point>& b) {
  OTIF_CHECK_EQ(a.size(), b.size());
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) sum += a[i].DistanceTo(b[i]);
  return sum / static_cast<double>(a.size());
}

}  // namespace

std::vector<TrackCluster> ClusterTracks(const std::vector<Track>& tracks,
                                        const DbscanOptions& options) {
  OTIF_CHECK_GE(options.num_samples, 2);
  const size_t n = tracks.size();
  std::vector<std::vector<geom::Point>> resampled;
  resampled.reserve(n);
  for (const Track& t : tracks) {
    OTIF_CHECK(!t.empty());
    resampled.push_back(
        geom::ResamplePolyline(t.CenterPolyline(), options.num_samples));
  }

  // Pairwise neighbor lists under the resampled distance.
  std::vector<std::vector<int>> neighbors(n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      if (ResampledDistance(resampled[i], resampled[j]) <= options.epsilon) {
        neighbors[i].push_back(static_cast<int>(j));
        neighbors[j].push_back(static_cast<int>(i));
      }
    }
  }

  // DBSCAN: expand clusters from core points (>= min_points incl. self).
  constexpr int kUnvisited = -2, kNoise = -1;
  std::vector<int> label(n, kUnvisited);
  int next_cluster = 0;
  for (size_t i = 0; i < n; ++i) {
    if (label[i] != kUnvisited) continue;
    if (static_cast<int>(neighbors[i].size()) + 1 < options.min_points) {
      label[i] = kNoise;
      continue;
    }
    const int cluster = next_cluster++;
    label[i] = cluster;
    std::vector<int> frontier = neighbors[i];
    while (!frontier.empty()) {
      const int j = frontier.back();
      frontier.pop_back();
      if (label[static_cast<size_t>(j)] == kNoise) {
        label[static_cast<size_t>(j)] = cluster;  // Border point.
      }
      if (label[static_cast<size_t>(j)] != kUnvisited) continue;
      label[static_cast<size_t>(j)] = cluster;
      if (static_cast<int>(neighbors[static_cast<size_t>(j)].size()) + 1 >=
          options.min_points) {
        for (int k : neighbors[static_cast<size_t>(j)]) {
          if (label[static_cast<size_t>(k)] == kUnvisited ||
              label[static_cast<size_t>(k)] == kNoise) {
            frontier.push_back(k);
          }
        }
      }
    }
  }

  // Build cluster centers; noise tracks become singleton clusters so rare
  // paths still participate in refinement.
  std::vector<TrackCluster> clusters;
  std::vector<std::vector<const std::vector<geom::Point>*>> members(
      static_cast<size_t>(next_cluster));
  for (size_t i = 0; i < n; ++i) {
    if (label[i] >= 0) {
      members[static_cast<size_t>(label[i])].push_back(&resampled[i]);
    }
  }
  for (const auto& m : members) {
    if (m.empty()) continue;
    TrackCluster c;
    c.center = CenterOfMembers(m, options.num_samples);
    c.size = static_cast<int>(m.size());
    clusters.push_back(std::move(c));
  }
  for (size_t i = 0; i < n; ++i) {
    if (label[i] == kNoise) {
      TrackCluster c;
      c.center = resampled[i];
      c.size = 1;
      clusters.push_back(std::move(c));
    }
  }
  return clusters;
}

TrackRefiner::TrackRefiner(std::vector<TrackCluster> clusters, Options options)
    : clusters_(std::move(clusters)), options_(options) {
  OTIF_CHECK_GT(options_.k_nearest, 0);
  index_ = std::make_unique<geom::GridIndex>(options_.index_cell_px);
  for (size_t ci = 0; ci < clusters_.size(); ++ci) {
    // Index only path endpoints: the query probes with the track's first
    // and last detections (paper: "identify several cluster centers that
    // pass close to d_1 and d_n").
    if (clusters_[ci].center.empty()) continue;
    index_->Insert(clusters_[ci].center.front(), static_cast<int64_t>(ci));
    index_->Insert(clusters_[ci].center.back(), static_cast<int64_t>(ci));
  }
}

Track TrackRefiner::Refine(const Track& t) const {
  if (t.detections.size() < 2 || clusters_.empty()) return t;
  const std::vector<geom::Point> path = geom::ResamplePolyline(
      t.CenterPolyline(), options_.num_samples);

  // Candidate clusters: those passing near either endpoint.
  std::vector<int64_t> candidates = index_->QueryNearest(
      path.front(), static_cast<size_t>(options_.k_nearest) * 2);
  const std::vector<int64_t> more = index_->QueryNearest(
      path.back(), static_cast<size_t>(options_.k_nearest) * 2);
  candidates.insert(candidates.end(), more.begin(), more.end());
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());
  if (candidates.empty()) return t;

  // Rank candidates by full path distance; keep the k closest.
  std::vector<std::pair<double, int64_t>> ranked;
  for (int64_t ci : candidates) {
    const double d =
        ResampledDistance(path, clusters_[static_cast<size_t>(ci)].center);
    if (d <= options_.max_cluster_distance) ranked.emplace_back(d, ci);
  }
  if (ranked.empty()) return t;
  std::sort(ranked.begin(), ranked.end());
  if (static_cast<int>(ranked.size()) > options_.k_nearest) {
    ranked.resize(static_cast<size_t>(options_.k_nearest));
  }
  // Keep only clusters competitive with the best match: a junction's other
  // roads also pass "nearby" in absolute terms but are far relative to the
  // true path, and blending them corrupts the endpoint medians.
  const double cutoff =
      std::max(ranked.front().first * 2.0, ranked.front().first + 8.0);
  while (ranked.size() > 1 && ranked.back().first > cutoff) {
    ranked.pop_back();
  }

  // Weighted median of cluster start/end coordinates, weight = cluster size.
  std::vector<double> sx, sy, ex, ey, w;
  for (const auto& [dist, ci] : ranked) {
    const TrackCluster& c = clusters_[static_cast<size_t>(ci)];
    sx.push_back(c.center.front().x);
    sy.push_back(c.center.front().y);
    ex.push_back(c.center.back().x);
    ey.push_back(c.center.back().y);
    w.push_back(static_cast<double>(c.size));
  }
  geom::Point start(WeightedMedian(sx, w), WeightedMedian(sy, w));
  geom::Point end(WeightedMedian(ex, w), WeightedMedian(ey, w));

  // Cluster centers are undirected in index probing; orient (start, end) to
  // the track's direction of travel.
  const geom::Point track_start = t.detections.front().box.Center();
  const geom::Point track_end = t.detections.back().box.Center();
  if (start.DistanceTo(track_start) + end.DistanceTo(track_end) >
      start.DistanceTo(track_end) + end.DistanceTo(track_start)) {
    std::swap(start, end);
  }

  Track refined = t;
  const double speed = std::max(0.5, t.MeanSpeedPxPerFrame());
  // Direction of travel, for rejecting extensions that run backwards.
  const geom::Point travel = track_end - track_start;

  // Prepend the estimated entry point (frame extrapolated by travel time).
  {
    const double dist = start.DistanceTo(track_start);
    const geom::Point ext = track_start - start;  // Entry -> first seen.
    if (dist > 1.0 && ext.Dot(travel) >= 0.0) {
      Detection d = t.detections.front();
      const int dt = std::max(1, static_cast<int>(std::lround(dist / speed)));
      d.frame = t.detections.front().frame - dt;
      d.box.cx = start.x;
      d.box.cy = start.y;
      d.confidence = 0.5;  // Synthetic.
      refined.detections.insert(refined.detections.begin(), d);
    }
  }
  // Append the estimated exit point.
  {
    const double dist = end.DistanceTo(track_end);
    const geom::Point ext = end - track_end;  // Last seen -> exit.
    if (dist > 1.0 && ext.Dot(travel) >= 0.0) {
      Detection d = t.detections.back();
      const int dt = std::max(1, static_cast<int>(std::lround(dist / speed)));
      d.frame = t.detections.back().frame + dt;
      d.box.cx = end.x;
      d.box.cy = end.y;
      d.confidence = 0.5;
      refined.detections.push_back(d);
    }
  }
  return refined;
}

std::vector<Track> TrackRefiner::RefineAll(
    const std::vector<Track>& tracks) const {
  std::vector<Track> out;
  out.reserve(tracks.size());
  for (const Track& t : tracks) out.push_back(Refine(t));
  return out;
}

}  // namespace otif::track
