#ifndef OTIF_TRACK_TRACKER_H_
#define OTIF_TRACK_TRACKER_H_

#include <vector>

#include "track/types.h"

namespace otif::track {

/// Online multi-object tracker interface: feed detections frame by frame
/// (frames may be arbitrarily spaced for reduced-rate tracking), then
/// harvest the accumulated tracks.
class Tracker {
 public:
  virtual ~Tracker() = default;

  /// Processes the detections of one frame; `frame` must be strictly
  /// increasing across calls.
  virtual void ProcessFrame(int frame, const FrameDetections& detections) = 0;

  /// Finalizes and returns all tracks (including still-active ones). Tracks
  /// with fewer than `min_detections` detections are pruned; the paper
  /// prunes single-detection tracks as likely spurious (Sec 3.4).
  virtual std::vector<Track> Finish(int min_detections) = 0;
};

}  // namespace otif::track

#endif  // OTIF_TRACK_TRACKER_H_
