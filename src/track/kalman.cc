#include "track/kalman.h"

#include <algorithm>
#include <cmath>

namespace otif::track {
namespace {

constexpr double kProcessPosNoise = 1.0;
constexpr double kProcessVelNoise = 0.5;
constexpr double kMeasurementNoise = 4.0;

}  // namespace

KalmanBoxFilter::KalmanBoxFilter(const geom::BBox& box)
    : cx_(box.cx),
      cy_(box.cy),
      s_(std::max(1.0, box.Area())),
      r_(box.h > 0 ? box.w / box.h : 1.0),
      p_pos_(10.0),
      p_vel_(100.0) {}

void KalmanBoxFilter::Predict(double dt_frames) {
  cx_ += vcx_ * dt_frames;
  cy_ += vcy_ * dt_frames;
  s_ = std::max(1.0, s_ + vs_ * dt_frames);
  p_pos_ += dt_frames * (p_vel_ + kProcessPosNoise);
  p_vel_ += dt_frames * kProcessVelNoise;
  last_dt_ = std::max(1.0, dt_frames);
}

void KalmanBoxFilter::Update(const geom::BBox& box) {
  const double gain = p_pos_ / (p_pos_ + kMeasurementNoise);
  const double dx = box.cx - cx_;
  const double dy = box.cy - cy_;
  const double ds = std::max(1.0, box.Area()) - s_;
  cx_ += gain * dx;
  cy_ += gain * dy;
  s_ = std::max(1.0, s_ + gain * ds);
  if (box.h > 0) r_ = 0.8 * r_ + 0.2 * (box.w / box.h);
  // Velocity update: the innovation dx accumulated over last_dt_ predicted
  // frames, so the implied velocity error is dx / last_dt_.
  const double vel_gain = p_vel_ / (p_vel_ + kMeasurementNoise * 4);
  vcx_ += vel_gain * dx / last_dt_;
  vcy_ += vel_gain * dy / last_dt_;
  vs_ += vel_gain * ds / (2.0 * last_dt_);
  p_pos_ = std::max(1.0, (1.0 - gain) * p_pos_);
  p_vel_ = std::max(0.5, (1.0 - vel_gain) * p_vel_);
}

geom::BBox KalmanBoxFilter::StateBox() const {
  const double w = std::sqrt(std::max(1.0, s_ * r_));
  const double h = std::max(1.0, w / std::max(0.05, r_));
  return geom::BBox(cx_, cy_, w, h);
}

geom::BBox KalmanBoxFilter::PredictedBox(double dt_frames) const {
  const double w = std::sqrt(std::max(1.0, s_ * r_));
  const double h = std::max(1.0, w / std::max(0.05, r_));
  return geom::BBox(cx_ + vcx_ * dt_frames, cy_ + vcy_ * dt_frames, w, h);
}

}  // namespace otif::track
