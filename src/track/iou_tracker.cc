#include "track/iou_tracker.h"

#include <algorithm>
#include <cmath>

#include "track/hungarian.h"
#include "util/logging.h"

namespace otif::track {

IouTracker::IouTracker(Options options) : options_(options) {}

void IouTracker::ProcessFrame(int frame, const FrameDetections& detections) {
  OTIF_CHECK_GT(frame, last_processed_frame_);
  const size_t n_tracks = active_.size();
  const size_t n_dets = detections.size();
  const double diag = std::sqrt(options_.frame_w * options_.frame_w +
                                options_.frame_h * options_.frame_h);

  std::vector<int> det_for_track(n_tracks, -1);
  if (n_tracks > 0 && n_dets > 0) {
    std::vector<std::vector<double>> cost(
        n_tracks, std::vector<double>(n_dets, 2.0));
    for (size_t t = 0; t < n_tracks; ++t) {
      const Detection& last = active_[t].track.detections.back();
      for (size_t d = 0; d < n_dets; ++d) {
        const double shift =
            last.box.Center().DistanceTo(detections[d].box.Center());
        if (shift > options_.max_center_shift_frac * diag) continue;
        const double iou = last.box.Iou(detections[d].box);
        // Cost mixes IoU and normalized displacement so matching still
        // works when boxes at reduced rates no longer overlap.
        cost[t][d] = (1.0 - iou) * 0.5 + (shift / diag) * 0.5;
      }
    }
    det_for_track = GreedyAssignment(cost, 1.0 - options_.iou_threshold * 0.5);
  }

  std::vector<char> det_used(n_dets, 0);
  for (size_t t = 0; t < n_tracks; ++t) {
    const int d = det_for_track[t];
    if (d >= 0) {
      det_used[static_cast<size_t>(d)] = 1;
      active_[t].track.detections.push_back(detections[static_cast<size_t>(d)]);
      active_[t].misses = 0;
    } else {
      ++active_[t].misses;
    }
  }
  for (size_t t = active_.size(); t-- > 0;) {
    if (active_[t].misses > options_.max_misses) {
      finished_.push_back(std::move(active_[t].track));
      active_[t] = std::move(active_.back());
      active_.pop_back();
    }
  }
  for (size_t d = 0; d < n_dets; ++d) {
    if (det_used[d]) continue;
    ActiveTrack at;
    at.track.id = next_id_++;
    at.track.cls = detections[d].cls;
    at.track.detections.push_back(detections[d]);
    active_.push_back(std::move(at));
  }
  last_processed_frame_ = frame;
}

std::vector<Track> IouTracker::Finish(int min_detections) {
  std::vector<Track> out;
  for (Track& t : finished_) {
    if (static_cast<int>(t.detections.size()) >= min_detections) {
      out.push_back(std::move(t));
    }
  }
  for (ActiveTrack& at : active_) {
    if (static_cast<int>(at.track.detections.size()) >= min_detections) {
      out.push_back(std::move(at.track));
    }
  }
  finished_.clear();
  active_.clear();
  last_processed_frame_ = -1;
  std::sort(out.begin(), out.end(),
            [](const Track& a, const Track& b) { return a.id < b.id; });
  return out;
}

}  // namespace otif::track
