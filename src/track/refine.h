#ifndef OTIF_TRACK_REFINE_H_
#define OTIF_TRACK_REFINE_H_

#include <memory>
#include <vector>

#include "geom/geometry.h"
#include "geom/grid_index.h"
#include "track/types.h"

namespace otif::track {

/// A cluster of training-set tracks sharing a similar path: the center path
/// (N evenly spaced points) plus the member count (used as the weight in
/// refinement's weighted median).
struct TrackCluster {
  std::vector<geom::Point> center;
  int size = 0;
};

/// Options for DBSCAN over tracks (paper Sec 3.4 "Refinement").
struct DbscanOptions {
  /// Neighborhood radius under the resampled-polyline distance metric, in
  /// native pixels.
  double epsilon = 40.0;
  /// Minimum neighbors (incl. self) for a core track.
  int min_points = 2;
  /// Number of evenly spaced sample points per track (paper: N = 20).
  int num_samples = 20;
};

/// Clusters tracks with DBSCAN using the paper's distance metric: mean
/// Euclidean distance between corresponding evenly spaced points. Noise
/// tracks (no dense neighborhood) become singleton clusters so rare paths
/// are still represented in the refinement index.
std::vector<TrackCluster> ClusterTracks(const std::vector<Track>& tracks,
                                        const DbscanOptions& options);

/// Refines track start/end points using the cluster index (paper Sec 3.4):
/// tracks captured at a reduced sampling rate begin/end offset from the
/// object's true entry/exit; the refiner extends each track to the
/// size-weighted median start/end of its k nearest cluster paths.
class TrackRefiner {
 public:
  struct Options {
    /// Number of nearest clusters consulted (paper: k = 10).
    int k_nearest = 10;
    /// Only clusters whose endpoints pass within this distance of the
    /// track's endpoints are considered by the index probe.
    double index_cell_px = 64.0;
    /// Tracks whose distance to every cluster exceeds this are left as-is.
    double max_cluster_distance = 160.0;
    int num_samples = 20;
  };

  TrackRefiner(std::vector<TrackCluster> clusters, Options options);

  /// Returns the refined copy of `t`: a synthetic start detection is
  /// prepended and a synthetic end detection appended at the estimated true
  /// entry/exit positions (frame stamps extrapolated from track speed).
  Track Refine(const Track& t) const;

  /// Refines every track in place.
  std::vector<Track> RefineAll(const std::vector<Track>& tracks) const;

  size_t num_clusters() const { return clusters_.size(); }

 private:
  std::vector<TrackCluster> clusters_;
  Options options_;
  std::unique_ptr<geom::GridIndex> index_;
};

}  // namespace otif::track

#endif  // OTIF_TRACK_REFINE_H_
