#ifndef OTIF_TRACK_METRICS_H_
#define OTIF_TRACK_METRICS_H_

#include <vector>

#include "track/types.h"

namespace otif::track {

/// Paper Sec 4.1 count accuracy: 1 - |x_hat - x*| / x*, clamped to [0, 1].
/// When the ground-truth count is zero, returns 1 if the estimate is also
/// zero, else 0.
double CountAccuracy(double estimated, double ground_truth);

/// Mean of CountAccuracy over paired count vectors (e.g. per path type or
/// per clip). Vectors must be the same length and non-empty.
double MeanCountAccuracy(const std::vector<double>& estimated,
                         const std::vector<double>& ground_truth);

/// A detection-level precision/recall operating point.
struct PrPoint {
  double threshold = 0.0;
  double precision = 0.0;
  double recall = 0.0;
};

/// mAP@50 for a single class (paper Fig 7 left): detections across frames
/// are sorted by confidence and matched greedily to ground truth boxes at
/// IoU >= 0.5 (one match per GT box per frame); average precision is the
/// area under the interpolated precision-recall curve.
double AveragePrecision50(const std::vector<Detection>& detections,
                          const std::vector<Detection>& ground_truth);

/// Precision/recall curve over score thresholds for binary per-cell scores
/// (paper Fig 7 right). `scores` and `labels` are parallel; labels are 0/1.
std::vector<PrPoint> PrecisionRecallCurve(const std::vector<double>& scores,
                                          const std::vector<int>& labels,
                                          int num_thresholds);

/// Fraction of ground-truth detections covered by at least one rectangle
/// (the proxy module's recall notion from Sec 3.5.2: a detection is covered
/// when its center lies in some rectangle).
double DetectionCoverage(const FrameDetections& ground_truth,
                         const std::vector<geom::BBox>& rectangles);

}  // namespace otif::track

#endif  // OTIF_TRACK_METRICS_H_
