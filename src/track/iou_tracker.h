#ifndef OTIF_TRACK_IOU_TRACKER_H_
#define OTIF_TRACK_IOU_TRACKER_H_

#include <vector>

#include "track/tracker.h"

namespace otif::track {

/// Minimal IoU-chain tracker: matches detections to the previous frame's
/// boxes by greatest overlap, with no motion model. Used by baselines whose
/// trackers only compare pairs of consecutive frames (Miris' GNN matcher is
/// modeled as this plus a displacement gate; also used by the NoScope /
/// CaTDet pipelines, which pre-date learned trackers).
class IouTracker : public Tracker {
 public:
  struct Options {
    double iou_threshold = 0.1;
    /// Maximum center displacement as a fraction of the frame diagonal per
    /// processed frame step (displacement gate for reduced-rate matching).
    double max_center_shift_frac = 0.25;
    double frame_w = 1280;
    double frame_h = 720;
    int max_misses = 1;
  };

  explicit IouTracker(Options options);

  void ProcessFrame(int frame, const FrameDetections& detections) override;
  std::vector<Track> Finish(int min_detections) override;

 private:
  struct ActiveTrack {
    Track track;
    int misses = 0;
  };

  Options options_;
  int64_t next_id_ = 0;
  int last_processed_frame_ = -1;
  std::vector<ActiveTrack> active_;
  std::vector<Track> finished_;
};

}  // namespace otif::track

#endif  // OTIF_TRACK_IOU_TRACKER_H_
