#ifndef OTIF_TRACK_HUNGARIAN_H_
#define OTIF_TRACK_HUNGARIAN_H_

#include <vector>

namespace otif::track {

/// Solves the rectangular assignment problem: given a cost matrix
/// cost[i][j] (rows = workers, cols = jobs), returns for each row the
/// assigned column or -1 when unassigned. Minimizes total cost; rows/columns
/// beyond the square dimension stay unassigned. O(n^3) Jonker-style
/// augmenting-path implementation.
std::vector<int> SolveAssignment(
    const std::vector<std::vector<double>>& cost);

/// Greedy fallback used by some baselines: repeatedly picks the lowest-cost
/// remaining pair while the cost is below `max_cost`.
std::vector<int> GreedyAssignment(
    const std::vector<std::vector<double>>& cost, double max_cost);

}  // namespace otif::track

#endif  // OTIF_TRACK_HUNGARIAN_H_
