#include "track/metrics.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "util/logging.h"

namespace otif::track {

double CountAccuracy(double estimated, double ground_truth) {
  if (ground_truth <= 0.0) return estimated <= 0.0 ? 1.0 : 0.0;
  return std::clamp(1.0 - std::abs(estimated - ground_truth) / ground_truth,
                    0.0, 1.0);
}

double MeanCountAccuracy(const std::vector<double>& estimated,
                         const std::vector<double>& ground_truth) {
  OTIF_CHECK_EQ(estimated.size(), ground_truth.size());
  OTIF_CHECK(!estimated.empty());
  double sum = 0.0;
  for (size_t i = 0; i < estimated.size(); ++i) {
    sum += CountAccuracy(estimated[i], ground_truth[i]);
  }
  return sum / static_cast<double>(estimated.size());
}

double AveragePrecision50(const std::vector<Detection>& detections,
                          const std::vector<Detection>& ground_truth) {
  if (ground_truth.empty()) return detections.empty() ? 1.0 : 0.0;
  // Group ground truth by frame with matched flags.
  std::map<int, std::vector<std::pair<geom::BBox, bool>>> gt_by_frame;
  for (const Detection& g : ground_truth) {
    gt_by_frame[g.frame].emplace_back(g.box, false);
  }
  // Sort detections by descending confidence.
  std::vector<const Detection*> sorted;
  sorted.reserve(detections.size());
  for (const Detection& d : detections) sorted.push_back(&d);
  std::sort(sorted.begin(), sorted.end(),
            [](const Detection* a, const Detection* b) {
              return a->confidence > b->confidence;
            });

  std::vector<int> tp_flags;
  tp_flags.reserve(sorted.size());
  for (const Detection* d : sorted) {
    bool matched = false;
    auto it = gt_by_frame.find(d->frame);
    if (it != gt_by_frame.end()) {
      double best_iou = 0.5;  // IoU threshold.
      int best = -1;
      for (size_t g = 0; g < it->second.size(); ++g) {
        if (it->second[g].second) continue;  // Already matched.
        const double iou = d->box.Iou(it->second[g].first);
        if (iou >= best_iou) {
          best_iou = iou;
          best = static_cast<int>(g);
        }
      }
      if (best >= 0) {
        it->second[static_cast<size_t>(best)].second = true;
        matched = true;
      }
    }
    tp_flags.push_back(matched ? 1 : 0);
  }

  // Precision-recall sweep; AP = sum over recall steps of max precision to
  // the right (interpolated AP).
  const double total_gt = static_cast<double>(ground_truth.size());
  std::vector<double> precisions, recalls;
  int tp = 0;
  for (size_t i = 0; i < tp_flags.size(); ++i) {
    tp += tp_flags[i];
    precisions.push_back(static_cast<double>(tp) /
                         static_cast<double>(i + 1));
    recalls.push_back(static_cast<double>(tp) / total_gt);
  }
  if (precisions.empty()) return 0.0;
  // Make precision monotone non-increasing from the right.
  for (size_t i = precisions.size() - 1; i-- > 0;) {
    precisions[i] = std::max(precisions[i], precisions[i + 1]);
  }
  double ap = 0.0;
  double prev_recall = 0.0;
  for (size_t i = 0; i < precisions.size(); ++i) {
    ap += (recalls[i] - prev_recall) * precisions[i];
    prev_recall = recalls[i];
  }
  return ap;
}

std::vector<PrPoint> PrecisionRecallCurve(const std::vector<double>& scores,
                                          const std::vector<int>& labels,
                                          int num_thresholds) {
  OTIF_CHECK_EQ(scores.size(), labels.size());
  OTIF_CHECK_GT(num_thresholds, 1);
  int total_pos = 0;
  for (int l : labels) total_pos += (l != 0);
  std::vector<PrPoint> curve;
  for (int k = 0; k < num_thresholds; ++k) {
    const double threshold =
        static_cast<double>(k) / static_cast<double>(num_thresholds - 1);
    int tp = 0, fp = 0;
    for (size_t i = 0; i < scores.size(); ++i) {
      if (scores[i] >= threshold) {
        if (labels[i] != 0) {
          ++tp;
        } else {
          ++fp;
        }
      }
    }
    PrPoint p;
    p.threshold = threshold;
    p.precision = (tp + fp) > 0 ? static_cast<double>(tp) / (tp + fp) : 1.0;
    p.recall = total_pos > 0 ? static_cast<double>(tp) / total_pos : 1.0;
    curve.push_back(p);
  }
  return curve;
}

double DetectionCoverage(const FrameDetections& ground_truth,
                         const std::vector<geom::BBox>& rectangles) {
  if (ground_truth.empty()) return 1.0;
  int covered = 0;
  for (const Detection& d : ground_truth) {
    for (const geom::BBox& r : rectangles) {
      if (r.Contains(d.box.Center())) {
        ++covered;
        break;
      }
    }
  }
  return static_cast<double>(covered) /
         static_cast<double>(ground_truth.size());
}

}  // namespace otif::track
