#ifndef OTIF_TRACK_SORT_TRACKER_H_
#define OTIF_TRACK_SORT_TRACKER_H_

#include <vector>

#include "track/kalman.h"
#include "track/tracker.h"

namespace otif::track {

/// SORT (Simple Online and Realtime Tracking, Bewley et al. 2016): Kalman
/// constant-velocity prediction + Hungarian assignment on IoU. This is the
/// heuristic tracker the paper uses inside the best-accuracy configuration
/// theta_best and in the "+ Sampling Rate" ablation row.
class SortTracker : public Tracker {
 public:
  struct Options {
    /// Minimum IoU between a predicted box and a detection to allow a match.
    double iou_threshold = 0.25;
    /// A track is dropped after this many *processed frames* without a
    /// match (scaled by the sampling gap at reduced rates).
    int max_misses = 3;
  };

  explicit SortTracker(Options options);
  SortTracker() : SortTracker(Options{}) {}

  void ProcessFrame(int frame, const FrameDetections& detections) override;
  std::vector<Track> Finish(int min_detections) override;

  /// Number of currently active (not yet dropped) tracks.
  size_t num_active() const { return active_.size(); }

 private:
  struct ActiveTrack {
    Track track;
    KalmanBoxFilter filter;
    int misses = 0;
    int last_frame = 0;
  };

  Options options_;
  int64_t next_id_ = 0;
  int last_processed_frame_ = -1;
  std::vector<ActiveTrack> active_;
  std::vector<Track> finished_;
};

}  // namespace otif::track

#endif  // OTIF_TRACK_SORT_TRACKER_H_
