#include "track/recurrent_tracker.h"

#include <algorithm>

#include "track/hungarian.h"
#include "util/logging.h"

namespace otif::track {

RecurrentTracker::RecurrentTracker(const models::TrackerNet* net,
                                   Options options)
    : net_(net), options_(options) {
  OTIF_CHECK(net != nullptr);
  OTIF_CHECK_GT(options_.fps, 0);
}

void RecurrentTracker::ProcessFrame(int frame,
                                    const FrameDetections& detections) {
  ProcessFrameWithAppearance(
      frame, detections,
      std::vector<std::pair<double, double>>(detections.size(), {0.5, 0.1}));
}

void RecurrentTracker::ProcessFrameWithAppearance(
    int frame, const FrameDetections& detections,
    const std::vector<std::pair<double, double>>& appearance) {
  OTIF_CHECK_GT(frame, last_processed_frame_);
  OTIF_CHECK_EQ(appearance.size(), detections.size());

  const size_t n_tracks = active_.size();
  const size_t n_dets = detections.size();

  // Detection features: t_elapsed is the gap since the previously processed
  // frame (paper Sec 3.4 "Training", last paragraph).
  const double t_elapsed =
      last_processed_frame_ >= 0 ? frame - last_processed_frame_ : 1;
  std::vector<nn::Tensor> det_features;
  det_features.reserve(n_dets);
  for (size_t d = 0; d < n_dets; ++d) {
    det_features.push_back(models::TrackerNet::DetFeature(
        detections[d], t_elapsed, options_.fps, options_.frame_w,
        options_.frame_h, appearance[d].first, appearance[d].second));
  }

  std::vector<int> det_for_track(n_tracks, -1);
  if (n_tracks > 0 && n_dets > 0) {
    std::vector<std::vector<double>> cost(
        n_tracks, std::vector<double>(n_dets, 1.0));
    for (size_t t = 0; t < n_tracks; ++t) {
      const auto& dets_so_far = active_[t].track.detections;
      const Detection& last = dets_so_far.back();
      const Detection& prev = dets_so_far.size() >= 2
                                  ? dets_so_far[dets_so_far.size() - 2]
                                  : last;
      for (size_t d = 0; d < n_dets; ++d) {
        // Cheap gate: skip pairs that moved implausibly far (more than
        // half the frame diagonal); keeps pair scoring near-linear.
        const double dist =
            last.box.Center().DistanceTo(detections[d].box.Center());
        const double gate =
            0.5 * std::sqrt(options_.frame_w * options_.frame_w +
                            options_.frame_h * options_.frame_h);
        if (dist > gate) continue;
        const nn::Tensor pair = models::TrackerNet::PairFeature(
            prev, last, detections[d], options_.fps, options_.frame_w,
            options_.frame_h);
        const double p =
            net_->ScorePair(active_[t].hidden, det_features[d], pair);
        ++pair_scores_;
        cost[t][d] = 1.0 - p;
      }
    }
    det_for_track = SolveAssignment(cost);
    for (size_t t = 0; t < n_tracks; ++t) {
      const int d = det_for_track[t];
      if (d >= 0 && cost[t][static_cast<size_t>(d)] >
                        1.0 - options_.match_threshold) {
        det_for_track[t] = -1;
      }
    }
  }

  std::vector<char> det_used(n_dets, 0);
  for (size_t t = 0; t < n_tracks; ++t) {
    const int d = det_for_track[t];
    if (d >= 0) {
      det_used[static_cast<size_t>(d)] = 1;
      // Fold the matched detection into the track's GRU state. The
      // detection feature's t_elapsed is re-derived relative to this
      // track's own last detection.
      const Detection& last = active_[t].track.detections.back();
      nn::Tensor f = models::TrackerNet::DetFeature(
          detections[static_cast<size_t>(d)], frame - last.frame,
          options_.fps, options_.frame_w, options_.frame_h,
          appearance[static_cast<size_t>(d)].first,
          appearance[static_cast<size_t>(d)].second);
      active_[t].hidden = net_->Advance(active_[t].hidden, f);
      active_[t].track.detections.push_back(
          detections[static_cast<size_t>(d)]);
      active_[t].misses = 0;
    } else {
      ++active_[t].misses;
    }
  }

  for (size_t t = active_.size(); t-- > 0;) {
    if (active_[t].misses > options_.max_misses) {
      finished_.push_back(std::move(active_[t].track));
      active_[t] = std::move(active_.back());
      active_.pop_back();
    }
  }

  for (size_t d = 0; d < n_dets; ++d) {
    if (det_used[d]) continue;
    ActiveTrack at;
    at.track.id = next_id_++;
    at.track.cls = detections[d].cls;
    at.track.detections.push_back(detections[d]);
    at.hidden = net_->Advance(net_->InitialHidden(), det_features[d]);
    active_.push_back(std::move(at));
  }

  last_processed_frame_ = frame;
}

std::vector<Track> RecurrentTracker::Finish(int min_detections) {
  std::vector<Track> out;
  for (Track& t : finished_) {
    if (static_cast<int>(t.detections.size()) >= min_detections) {
      out.push_back(std::move(t));
    }
  }
  for (ActiveTrack& at : active_) {
    if (static_cast<int>(at.track.detections.size()) >= min_detections) {
      out.push_back(std::move(at.track));
    }
  }
  finished_.clear();
  active_.clear();
  last_processed_frame_ = -1;
  std::sort(out.begin(), out.end(),
            [](const Track& a, const Track& b) { return a.id < b.id; });
  return out;
}

}  // namespace otif::track
