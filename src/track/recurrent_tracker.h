#ifndef OTIF_TRACK_RECURRENT_TRACKER_H_
#define OTIF_TRACK_RECURRENT_TRACKER_H_

#include <vector>

#include "models/tracker_net.h"
#include "track/tracker.h"

namespace otif::track {

/// Runtime for the recurrent reduced-rate tracking model (paper Sec 3.4).
/// Maintains, per active track, the GRU hidden state folded over its
/// detections; on each processed frame, scores every (track, detection)
/// pair with the matching network and solves a Hungarian assignment on
/// (1 - probability), rejecting matches below a probability threshold.
class RecurrentTracker : public Tracker {
 public:
  struct Options {
    /// Minimum match probability to accept an assignment.
    double match_threshold = 0.5;
    /// A track is dropped after this many processed frames without a match.
    int max_misses = 3;
    /// Frame dimensions used for feature normalization.
    double frame_w = 1280;
    double frame_h = 720;
    double fps = 10;
  };

  /// `net` must outlive the tracker and be trained; the tracker only runs
  /// inference (thread-safe on the shared net, so many trackers may share
  /// one trained model across threads).
  RecurrentTracker(const models::TrackerNet* net, Options options);

  void ProcessFrame(int frame, const FrameDetections& detections) override;

  /// Per-detection appearance statistics (mean, std of the patch in a
  /// low-resolution render); `appearance` has one entry per detection. The
  /// plain ProcessFrame uses neutral statistics.
  void ProcessFrameWithAppearance(
      int frame, const FrameDetections& detections,
      const std::vector<std::pair<double, double>>& appearance);

  std::vector<Track> Finish(int min_detections) override;

  size_t num_active() const { return active_.size(); }

  /// Number of (track, detection) pair scores computed so far; drives the
  /// tracker entry in the cost model.
  int64_t pair_scores_computed() const { return pair_scores_; }

 private:
  struct ActiveTrack {
    Track track;
    nn::Tensor hidden;
    int misses = 0;
  };

  const models::TrackerNet* net_;  // Not owned.
  Options options_;
  int64_t next_id_ = 0;
  int last_processed_frame_ = -1;
  int64_t pair_scores_ = 0;
  std::vector<ActiveTrack> active_;
  std::vector<Track> finished_;
};

}  // namespace otif::track

#endif  // OTIF_TRACK_RECURRENT_TRACKER_H_
