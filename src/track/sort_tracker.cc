#include "track/sort_tracker.h"

#include <algorithm>

#include "track/hungarian.h"
#include "util/logging.h"

namespace otif::track {

SortTracker::SortTracker(Options options) : options_(options) {
  OTIF_CHECK_GT(options_.iou_threshold, 0.0);
  OTIF_CHECK_GT(options_.max_misses, 0);
}

void SortTracker::ProcessFrame(int frame, const FrameDetections& detections) {
  OTIF_CHECK_GT(frame, last_processed_frame_);
  for (const Detection& d : detections) OTIF_CHECK_EQ(d.frame, frame);

  // Predict all active tracks forward to the current frame.
  for (ActiveTrack& at : active_) {
    at.filter.Predict(frame - at.last_frame);
  }

  // Assignment on negative IoU (Hungarian minimizes cost).
  const size_t n_tracks = active_.size();
  const size_t n_dets = detections.size();
  std::vector<int> det_for_track(n_tracks, -1);
  if (n_tracks > 0 && n_dets > 0) {
    std::vector<std::vector<double>> cost(
        n_tracks, std::vector<double>(n_dets, 1.0));
    for (size_t t = 0; t < n_tracks; ++t) {
      const geom::BBox predicted = active_[t].filter.StateBox();
      for (size_t d = 0; d < n_dets; ++d) {
        cost[t][d] = 1.0 - predicted.Iou(detections[d].box);
      }
    }
    det_for_track = SolveAssignment(cost);
    // Reject matches below the IoU threshold.
    for (size_t t = 0; t < n_tracks; ++t) {
      const int d = det_for_track[t];
      if (d >= 0 && cost[t][static_cast<size_t>(d)] >
                        1.0 - options_.iou_threshold) {
        det_for_track[t] = -1;
      }
    }
  }

  std::vector<char> det_used(n_dets, 0);
  for (size_t t = 0; t < n_tracks; ++t) {
    const int d = det_for_track[t];
    if (d >= 0) {
      det_used[static_cast<size_t>(d)] = 1;
      active_[t].filter.Update(detections[static_cast<size_t>(d)].box);
      active_[t].track.detections.push_back(
          detections[static_cast<size_t>(d)]);
      active_[t].misses = 0;
      active_[t].last_frame = frame;
    } else {
      ++active_[t].misses;
    }
  }

  // Retire stale tracks.
  for (size_t t = active_.size(); t-- > 0;) {
    if (active_[t].misses > options_.max_misses) {
      finished_.push_back(std::move(active_[t].track));
      active_[t] = std::move(active_.back());
      active_.pop_back();
    }
  }

  // New tracks for unmatched detections.
  for (size_t d = 0; d < n_dets; ++d) {
    if (det_used[d]) continue;
    ActiveTrack at{Track{}, KalmanBoxFilter(detections[d].box), 0, frame};
    at.track.id = next_id_++;
    at.track.cls = detections[d].cls;
    at.track.detections.push_back(detections[d]);
    active_.push_back(std::move(at));
  }

  last_processed_frame_ = frame;
}

std::vector<Track> SortTracker::Finish(int min_detections) {
  std::vector<Track> out;
  for (Track& t : finished_) {
    if (static_cast<int>(t.detections.size()) >= min_detections) {
      out.push_back(std::move(t));
    }
  }
  for (ActiveTrack& at : active_) {
    if (static_cast<int>(at.track.detections.size()) >= min_detections) {
      out.push_back(std::move(at.track));
    }
  }
  finished_.clear();
  active_.clear();
  last_processed_frame_ = -1;
  std::sort(out.begin(), out.end(),
            [](const Track& a, const Track& b) { return a.id < b.id; });
  return out;
}

}  // namespace otif::track
