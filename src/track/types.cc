#include "track/types.h"

#include <algorithm>
#include <map>

#include "util/logging.h"

namespace otif::track {

const char* ObjectClassName(ObjectClass cls) {
  switch (cls) {
    case ObjectClass::kCar:
      return "car";
    case ObjectClass::kBus:
      return "bus";
    case ObjectClass::kTruck:
      return "truck";
    case ObjectClass::kPedestrian:
      return "pedestrian";
  }
  return "unknown";
}

int Track::StartFrame() const {
  OTIF_CHECK(!detections.empty());
  return detections.front().frame;
}

int Track::EndFrame() const {
  OTIF_CHECK(!detections.empty());
  return detections.back().frame;
}

int Track::DurationFrames() const {
  if (detections.empty()) return 0;
  return EndFrame() - StartFrame() + 1;
}

std::vector<geom::Point> Track::CenterPolyline() const {
  std::vector<geom::Point> pts;
  pts.reserve(detections.size());
  for (const Detection& d : detections) pts.push_back(d.box.Center());
  return pts;
}

geom::BBox Track::InterpolatedBoxAt(int frame) const {
  OTIF_CHECK(!detections.empty());
  if (frame <= detections.front().frame) return detections.front().box;
  if (frame >= detections.back().frame) return detections.back().box;
  // Find the first detection at or after `frame`.
  const auto it = std::lower_bound(
      detections.begin(), detections.end(), frame,
      [](const Detection& d, int f) { return d.frame < f; });
  const Detection& hi = *it;
  if (hi.frame == frame || it == detections.begin()) return hi.box;
  const Detection& lo = *(it - 1);
  const double u = static_cast<double>(frame - lo.frame) /
                   static_cast<double>(hi.frame - lo.frame);
  return geom::BBox(lo.box.cx + u * (hi.box.cx - lo.box.cx),
                    lo.box.cy + u * (hi.box.cy - lo.box.cy),
                    lo.box.w + u * (hi.box.w - lo.box.w),
                    lo.box.h + u * (hi.box.h - lo.box.h));
}

bool Track::VisibleNear(int frame, int tolerance) const {
  for (const Detection& d : detections) {
    if (std::abs(d.frame - frame) <= tolerance) return true;
  }
  return false;
}

double Track::MeanSpeedPxPerFrame() const {
  if (detections.size() < 2) return 0.0;
  double dist = 0.0;
  for (size_t i = 1; i < detections.size(); ++i) {
    dist += detections[i].box.Center().DistanceTo(
        detections[i - 1].box.Center());
  }
  const int frames = EndFrame() - StartFrame();
  if (frames <= 0) return 0.0;
  return dist / frames;
}

std::vector<std::pair<int, FrameDetections>> GroupByFrame(
    const std::vector<Detection>& detections) {
  std::map<int, FrameDetections> by_frame;
  for (const Detection& d : detections) by_frame[d.frame].push_back(d);
  std::vector<std::pair<int, FrameDetections>> out;
  out.reserve(by_frame.size());
  for (auto& [frame, dets] : by_frame) {
    out.emplace_back(frame, std::move(dets));
  }
  return out;
}

}  // namespace otif::track
