#ifndef OTIF_SIM_WORLD_H_
#define OTIF_SIM_WORLD_H_

#include <cstdint>
#include <vector>

#include "geom/geometry.h"
#include "sim/dataset.h"
#include "track/types.h"

namespace otif::sim {

/// Per-frame state of a ground-truth object while visible.
struct ObjectFrameState {
  int frame = 0;
  /// Box in camera/frame coordinates (after camera motion for UAV).
  geom::BBox box;
  /// Instantaneous speed in native pixels per second (apparent).
  double speed_px_per_sec = 0.0;
};

/// One simulated object with its full per-frame trajectory.
struct GtObject {
  int64_t id = -1;
  track::ObjectClass cls = track::ObjectClass::kCar;
  /// Index into DatasetSpec::paths.
  int path_index = -1;
  /// Frame-contiguous states while the object is visible in the clip.
  std::vector<ObjectFrameState> states;
  /// True when the object experienced a hard-braking episode in this clip.
  bool braked = false;
};

/// Reference to a visible object in one frame.
struct VisibleObject {
  /// Index into Clip::objects.
  int object_index = 0;
  /// Index into GtObject::states.
  int state_index = 0;
};

/// Ground truth for one simulated clip: all objects plus a per-frame
/// visibility index. This is the "oracle" against which accuracy is
/// evaluated and from which the behavioral detector derives detections.
class Clip {
 public:
  Clip(DatasetSpec spec, uint64_t clip_seed, int num_frames,
       std::vector<GtObject> objects,
       std::vector<geom::Point> camera_offsets);

  const DatasetSpec& spec() const { return spec_; }
  uint64_t clip_seed() const { return clip_seed_; }
  int num_frames() const { return num_frames_; }
  int fps() const { return spec_.fps; }
  double duration_sec() const {
    return static_cast<double>(num_frames_) / spec_.fps;
  }
  const std::vector<GtObject>& objects() const { return objects_; }

  /// Camera offset at a frame (zero for fixed cameras).
  const geom::Point& CameraOffset(int frame) const;

  /// Objects visible in the given frame.
  const std::vector<VisibleObject>& VisibleAt(int frame) const;

  /// Ground-truth boxes visible in a frame, as Detections with gt_id set.
  track::FrameDetections GroundTruthDetections(int frame) const;

  /// Converts ground-truth objects into Track structures (one per object
  /// with at least `min_detections` visible frames).
  std::vector<track::Track> GroundTruthTracks(int min_detections) const;

 private:
  DatasetSpec spec_;
  uint64_t clip_seed_ = 0;
  int num_frames_;
  std::vector<GtObject> objects_;
  std::vector<geom::Point> camera_offsets_;
  std::vector<std::vector<VisibleObject>> frame_index_;
};

/// Simulates one clip of `duration_frames` frames. `clip_seed` selects the
/// clip (combine the dataset seed, split id, and clip index); identical
/// arguments produce identical clips. The simulation warms up before frame 0
/// so that objects are already mid-path when the clip begins.
Clip SimulateClip(const DatasetSpec& spec, uint64_t clip_seed,
                  int duration_frames);

/// Derives the seed for clip `clip_index` of split `split` ("train"=0,
/// "valid"=1, "test"=2) of a dataset.
uint64_t ClipSeed(const DatasetSpec& spec, int split, int clip_index);

}  // namespace otif::sim

#endif  // OTIF_SIM_WORLD_H_
