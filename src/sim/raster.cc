#include "sim/raster.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/rng.h"

namespace otif::sim {
namespace {

// Deterministic per-pixel hash noise in [0, 1).
double HashNoise(uint64_t seed, int x, int y) {
  uint64_t h = seed;
  h ^= static_cast<uint64_t>(x + 1) * 0x9e3779b97f4a7c15ULL;
  h ^= static_cast<uint64_t>(y + 1) * 0xbf58476d1ce4e5b9ULL;
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
  h ^= h >> 31;
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

// Object intensity: deterministic per object id, biased away from the
// mid-gray background so objects are learnable.
float ObjectIntensity(int64_t id) {
  const double u = HashNoise(0x51edULL, static_cast<int>(id), 17);
  // Half the objects dark (0.02..0.17), half bright (0.75..0.95).
  if (u < 0.5) return static_cast<float>(0.02 + 0.3 * u);
  return static_cast<float>(0.75 + 0.4 * (u - 0.5));
}

}  // namespace

Rasterizer::Rasterizer(const Clip* clip) : clip_(clip) {
  OTIF_CHECK(clip != nullptr);
}

video::Image Rasterizer::BuildBackground(int width, int height) const {
  const DatasetSpec& spec = clip_->spec();
  video::Image bg(width, height);
  const double amp = 0.08 * spec.background_complexity;
  const double kx = 2.0 * M_PI * 3.0 / width;
  const double ky = 2.0 * M_PI * 2.0 / height;
  for (int y = 0; y < height; ++y) {
    float* row = bg.row(y);
    for (int x = 0; x < width; ++x) {
      double v = 0.42 + amp * std::sin(kx * x + 0.7) * std::cos(ky * y) +
                 0.06 * spec.background_complexity *
                     (HashNoise(spec.seed, x, y) - 0.5);
      row[x] = static_cast<float>(v);
    }
  }
  // Darker road bands along each spawn path: union of discs along the path
  // forms a mask, darkened once (overlapping discs must not compound).
  const double sx = static_cast<double>(width) / spec.width;
  const double sy = static_cast<double>(height) / spec.height;
  std::vector<uint8_t> road_mask(static_cast<size_t>(width) * height, 0);
  for (const SpawnPath& path : spec.paths) {
    const double length = geom::PolylineLength(path.waypoints);
    if (length <= 0) continue;
    const int steps = std::max(8, static_cast<int>(length * sx / 2));
    for (int s = 0; s <= steps; ++s) {
      const double u = static_cast<double>(s) / steps;
      const geom::Point p = geom::PointAlong(path.waypoints, u);
      const double scale = path.scale_at_start +
                           u * (path.scale_at_end - path.scale_at_start);
      const double radius_out =
          std::max(1.0, path.size_mean_px * scale * 0.9 * sx);
      const int cx = static_cast<int>(p.x * sx);
      const int cy = static_cast<int>(p.y * sy);
      const int r = static_cast<int>(radius_out);
      for (int y = cy - r; y <= cy + r; ++y) {
        for (int x = cx - r; x <= cx + r; ++x) {
          if (!bg.InBounds(x, y)) continue;
          road_mask[static_cast<size_t>(y) * width + x] = 1;
        }
      }
    }
  }
  for (int y = 0; y < height; ++y) {
    float* row = bg.row(y);
    for (int x = 0; x < width; ++x) {
      if (road_mask[static_cast<size_t>(y) * width + x]) row[x] *= 0.78f;
    }
  }
  bg.Clamp();
  return bg;
}

const video::Image& Rasterizer::Background(int width, int height) {
  OTIF_CHECK_GT(width, 0);
  OTIF_CHECK_GT(height, 0);
  // Map entries are never erased, so the returned reference stays valid
  // after the lock drops even while other threads insert new resolutions.
  std::lock_guard<std::mutex> lock(mu_);
  auto it = background_cache_.find({width, height});
  if (it == background_cache_.end()) {
    it = background_cache_
             .emplace(std::make_pair(width, height),
                      BuildBackground(width, height))
             .first;
  }
  return it->second;
}

video::Image Rasterizer::Render(int frame, int width, int height) {
  video::Image img;
  RenderInto(frame, width, height, &img);
  return img;
}

void Rasterizer::RenderInto(int frame, int width, int height,
                            video::Image* out) {
  const DatasetSpec& spec = clip_->spec();
  // Copy-assignment reuses out's pixel buffer when the capacity fits.
  video::Image& img = *out;
  img = Background(width, height);
  const double sx = static_cast<double>(width) / spec.width;
  const double sy = static_cast<double>(height) / spec.height;

  // Moving camera: shift the background sample position by the offset.
  if (spec.moving_camera) {
    const geom::Point cam = clip_->CameraOffset(frame);
    const video::Image& bg = Background(width, height);
    const int dx = static_cast<int>(std::lround(cam.x * sx));
    const int dy = static_cast<int>(std::lround(cam.y * sy));
    for (int y = 0; y < height; ++y) {
      float* row = img.row(y);
      const int syy = std::clamp(y + dy, 0, height - 1);
      const float* brow = bg.row(syy);
      for (int x = 0; x < width; ++x) {
        row[x] = brow[std::clamp(x + dx, 0, width - 1)];
      }
    }
  }

  // Draw objects back-to-front by apparent size (small/far first).
  std::vector<VisibleObject> draw = clip_->VisibleAt(frame);
  std::sort(draw.begin(), draw.end(), [&](const VisibleObject& a,
                                          const VisibleObject& b) {
    const auto& sa =
        clip_->objects()[static_cast<size_t>(a.object_index)]
            .states[static_cast<size_t>(a.state_index)];
    const auto& sb =
        clip_->objects()[static_cast<size_t>(b.object_index)]
            .states[static_cast<size_t>(b.state_index)];
    return sa.box.Area() < sb.box.Area();
  });
  for (const VisibleObject& vis : draw) {
    const GtObject& obj =
        clip_->objects()[static_cast<size_t>(vis.object_index)];
    const ObjectFrameState& st =
        obj.states[static_cast<size_t>(vis.state_index)];
    const float base = ObjectIntensity(obj.id);
    const int x0 = std::max(0, static_cast<int>(st.box.Left() * sx));
    const int x1 =
        std::min(width - 1, static_cast<int>(st.box.Right() * sx));
    const int y0 = std::max(0, static_cast<int>(st.box.Top() * sy));
    const int y1 =
        std::min(height - 1, static_cast<int>(st.box.Bottom() * sy));
    for (int y = y0; y <= y1; ++y) {
      float* row = img.row(y);
      for (int x = x0; x <= x1; ++x) {
        // Simple shading: brighter toward the top of the box.
        const double fy = (y1 > y0)
                              ? static_cast<double>(y - y0) / (y1 - y0)
                              : 0.0;
        row[x] = base * static_cast<float>(1.0 - 0.25 * fy) +
                 0.02f * static_cast<float>(
                             HashNoise(obj.id + 77, x, y) - 0.5);
      }
    }
  }

  // Per-frame sensor noise, deterministic in (clip seed, frame).
  Rng noise_rng(clip_->clip_seed() * 1315423911ULL +
                static_cast<uint64_t>(frame));
  for (int y = 0; y < height; ++y) {
    float* row = img.row(y);
    for (int x = 0; x < width; ++x) {
      row[x] += static_cast<float>(noise_rng.Gaussian(0.0, 0.015));
    }
  }
  img.Clamp();
}

}  // namespace otif::sim
