#include "sim/dataset.h"

#include "util/logging.h"

namespace otif::sim {
namespace {

using geom::Point;
using track::ObjectClass;

SpawnPath MakePath(std::string label, std::vector<Point> waypoints,
                   double rate_hz, double speed_mean, double size_mean) {
  SpawnPath p;
  p.label = std::move(label);
  p.waypoints = std::move(waypoints);
  p.rate_hz = rate_hz;
  p.speed_mean_px = speed_mean;
  p.speed_std_px = speed_mean * 0.15;
  p.size_mean_px = size_mean;
  p.size_std_px = size_mean * 0.12;
  return p;
}

void AddTruckBusMix(SpawnPath* p, double truck_w, double bus_w) {
  p->class_mix = {{ObjectClass::kCar, 1.0},
                  {ObjectClass::kTruck, truck_w},
                  {ObjectClass::kBus, bus_w}};
}

// Highway camera: the road runs diagonally across the frame, far edge at the
// top-left (small, slow apparent motion) to near edge at the bottom-right.
DatasetSpec MakeCaldot(const char* name, uint64_t seed, double rate_scale) {
  DatasetSpec spec;
  spec.name = name;
  spec.width = 720;
  spec.height = 480;
  spec.fps = 10;
  spec.meters_per_pixel = 0.12;
  spec.seed = seed;
  spec.brake_prob = 0.02;
  spec.background_complexity = 0.4;

  // Two lanes per direction. "near" lanes left-bound, offset vertically.
  auto lane = [&](std::string label, Point from, Point to, double rate) {
    SpawnPath p = MakePath(std::move(label), {from, to}, rate, 110.0, 34.0);
    // Perspective: the top-left end of the road is far away.
    const bool starts_far = from.y < to.y;
    p.scale_at_start = starts_far ? 0.45 : 1.25;
    p.scale_at_end = starts_far ? 1.25 : 0.45;
    AddTruckBusMix(&p, 0.25, 0.05);
    return p;
  };
  spec.paths.push_back(
      lane("southbound_l1", {60, 30}, {560, 470}, 0.22 * rate_scale));
  spec.paths.push_back(
      lane("southbound_l2", {100, 30}, {660, 470}, 0.20 * rate_scale));
  spec.paths.push_back(
      lane("northbound_l1", {460, 470}, {10, 30}, 0.22 * rate_scale));
  spec.paths.push_back(
      lane("northbound_l2", {360, 470}, {-20, 40}, 0.16 * rate_scale));
  return spec;
}

// Four-way junction with signal-gated arrivals. `arm` is the half-extent of
// the frame used by the approach roads.
void AddJunctionPaths(DatasetSpec* spec, double cx, double cy, double arm_x,
                      double arm_y, double rate, double speed, double size,
                      bool include_all_left_turns) {
  const double lane = size * 0.9;  // Lane offset from the road center line.
  const Point n_in(cx - lane, cy - arm_y), n_out(cx + lane, cy - arm_y);
  const Point s_in(cx + lane, cy + arm_y), s_out(cx - lane, cy + arm_y);
  const Point e_in(cx + arm_x, cy - lane), e_out(cx + arm_x, cy + lane);
  const Point w_in(cx - arm_x, cy + lane), w_out(cx - arm_x, cy - lane);
  const Point center(cx, cy);

  auto add = [&](std::string label, std::vector<Point> pts, double r,
                 double phase) {
    SpawnPath p = MakePath(std::move(label), std::move(pts), r, speed, size);
    p.cycle_sec = 24.0;
    p.green_fraction = 0.42;
    p.phase_sec = phase;
    AddTruckBusMix(&p, 0.12, 0.08);
    spec->paths.push_back(std::move(p));
  };

  // North-south phase at offset 0, east-west at half cycle.
  add("N->S", {n_in, {cx - lane, cy}, {cx - lane, cy + arm_y}}, rate, 0.0);
  add("S->N", {s_in, {cx + lane, cy}, {cx + lane, cy - arm_y}}, rate, 0.0);
  add("E->W", {e_in, {cx, cy - lane}, {cx - arm_x, cy - lane}}, rate, 12.0);
  add("W->E", {w_in, {cx, cy + lane}, {cx + arm_x, cy + lane}}, rate, 12.0);
  // Right turns (tight).
  add("N->W", {n_in, {cx - lane, cy - lane}, w_out}, rate * 0.5, 0.0);
  add("S->E", {s_in, {cx + lane, cy + lane}, e_out}, rate * 0.5, 0.0);
  add("E->N", {e_in, {cx + lane, cy - lane}, n_out}, rate * 0.5, 12.0);
  add("W->S", {w_in, {cx - lane, cy + lane}, s_out}, rate * 0.5, 12.0);
  // Left turns (wide, through the junction center).
  add("N->E", {n_in, center, e_out}, rate * 0.35, 0.0);
  if (include_all_left_turns) {
    add("S->W", {s_in, center, w_out}, rate * 0.35, 0.0);
  }
}

DatasetSpec MakeTokyo() {
  DatasetSpec spec;
  spec.name = "tokyo";
  spec.width = 1280;
  spec.height = 720;
  spec.fps = 10;
  spec.meters_per_pixel = 0.05;
  spec.seed = 3;
  spec.brake_prob = 0.05;
  spec.background_complexity = 0.7;
  // Busy city junction filling the frame: 10 turning movements (paper
  // Sec 4.1 identifies 10 unique directions in Tokyo).
  AddJunctionPaths(&spec, 640, 360, 660, 380, 0.30, 120.0, 46.0,
                   /*include_all_left_turns=*/true);
  return spec;
}

DatasetSpec MakeWarsaw() {
  DatasetSpec spec;
  spec.name = "warsaw";
  spec.width = 1280;
  spec.height = 720;
  spec.fps = 10;
  spec.meters_per_pixel = 0.05;
  spec.seed = 5;
  spec.brake_prob = 0.05;
  spec.background_complexity = 0.6;
  // Busy junction concentrated in the central band of the frame: large
  // margins stay empty, which is what makes the segmentation proxy model
  // give Warsaw its 1.5x ablation speedup (Table 4).
  AddJunctionPaths(&spec, 640, 390, 360, 210, 0.38, 110.0, 42.0,
                   /*include_all_left_turns=*/false);
  return spec;
}

DatasetSpec MakeUav() {
  DatasetSpec spec;
  spec.name = "uav";
  spec.width = 1280;
  spec.height = 720;
  spec.fps = 5;
  spec.meters_per_pixel = 0.08;
  spec.seed = 4;
  spec.moving_camera = true;
  spec.camera_drift_px_per_sec = 30.0;
  spec.camera_drift_max_px = 140.0;
  spec.brake_prob = 0.02;
  spec.background_complexity = 0.9;
  // Aerial view of two crossing roads; small objects, various directions.
  auto add = [&](std::string label, std::vector<Point> pts, double rate) {
    SpawnPath p = MakePath(std::move(label), std::move(pts), rate, 90.0, 26.0);
    AddTruckBusMix(&p, 0.2, 0.05);
    spec.paths.push_back(std::move(p));
  };
  add("west_road_down", {{380, -60}, {420, 780}}, 0.22);
  add("west_road_up", {{470, 780}, {430, -60}}, 0.22);
  add("cross_road_right", {{-60, 420}, {1340, 470}}, 0.18);
  add("cross_road_left", {{1340, 530}, {-60, 480}}, 0.18);
  add("diagonal", {{-60, 700}, {1340, 80}}, 0.10);
  return spec;
}

DatasetSpec MakeAmsterdam() {
  DatasetSpec spec;
  spec.name = "amsterdam";
  spec.width = 1280;
  spec.height = 720;
  spec.fps = 30;
  spec.meters_per_pixel = 0.05;
  spec.seed = 6;
  spec.brake_prob = 0.01;
  spec.background_complexity = 0.5;
  // Riverside plaza: cars pass occasionally on a street near the top of the
  // frame; pedestrians wander the plaza. Many frames contain zero cars,
  // which is what gives NoScope a usable tradeoff here (Sec 4.1 results).
  SpawnPath street_r =
      MakePath("street_east", {{-40, 150}, {1320, 130}}, 0.060, 140.0, 44.0);
  street_r.scale_at_start = 0.9;
  street_r.scale_at_end = 0.9;
  SpawnPath street_l =
      MakePath("street_west", {{1320, 180}, {-40, 200}}, 0.055, 140.0, 44.0);
  spec.paths.push_back(street_r);
  spec.paths.push_back(street_l);
  auto walk = [&](std::string label, std::vector<Point> pts, double rate) {
    SpawnPath p = MakePath(std::move(label), std::move(pts), rate, 35.0, 18.0);
    p.aspect = 2.2;  // Pedestrians are tall.
    p.class_mix = {{ObjectClass::kPedestrian, 1.0}};
    spec.paths.push_back(std::move(p));
  };
  walk("plaza_walk_1", {{200, 700}, {500, 420}, {900, 500}}, 0.25);
  walk("plaza_walk_2", {{1100, 680}, {700, 450}, {350, 520}}, 0.25);
  return spec;
}

DatasetSpec MakeJackson() {
  DatasetSpec spec;
  spec.name = "jackson";
  spec.width = 1280;
  spec.height = 720;
  spec.fps = 30;
  spec.meters_per_pixel = 0.06;
  spec.seed = 7;
  spec.brake_prob = 0.03;
  spec.background_complexity = 0.5;
  // Small-town junction: moderate traffic with gaps between cars.
  AddJunctionPaths(&spec, 640, 400, 660, 340, 0.065, 100.0, 48.0,
                   /*include_all_left_turns=*/false);
  // Pedestrians on the sidewalk.
  SpawnPath walk =
      MakePath("sidewalk", {{-30, 640}, {1310, 620}}, 0.10, 30.0, 16.0);
  walk.aspect = 2.2;
  walk.class_mix = {{ObjectClass::kPedestrian, 1.0}};
  spec.paths.push_back(walk);
  return spec;
}

DatasetSpec MakeSynthetic() {
  DatasetSpec spec;
  spec.name = "synthetic";
  spec.width = 320;
  spec.height = 240;
  spec.fps = 10;
  spec.meters_per_pixel = 0.2;
  spec.seed = 8;
  spec.brake_prob = 0.05;
  spec.background_complexity = 0.4;
  spec.paths.push_back(
      MakePath("left_right", {{-20, 80}, {340, 90}}, 0.25, 60.0, 28.0));
  spec.paths.push_back(
      MakePath("top_bottom", {{160, -20}, {170, 260}}, 0.20, 55.0, 26.0));
  return spec;
}

}  // namespace

const char* DatasetName(DatasetId id) {
  switch (id) {
    case DatasetId::kCaldot1:
      return "caldot1";
    case DatasetId::kCaldot2:
      return "caldot2";
    case DatasetId::kTokyo:
      return "tokyo";
    case DatasetId::kUav:
      return "uav";
    case DatasetId::kWarsaw:
      return "warsaw";
    case DatasetId::kAmsterdam:
      return "amsterdam";
    case DatasetId::kJackson:
      return "jackson";
    case DatasetId::kSynthetic:
      return "synthetic";
  }
  return "unknown";
}

std::vector<DatasetId> AllPaperDatasets() {
  return {DatasetId::kCaldot1, DatasetId::kCaldot2, DatasetId::kTokyo,
          DatasetId::kUav,     DatasetId::kWarsaw,  DatasetId::kAmsterdam,
          DatasetId::kJackson};
}

DatasetSpec MakeDataset(DatasetId id) {
  switch (id) {
    case DatasetId::kCaldot1:
      return MakeCaldot("caldot1", 1, 1.0);
    case DatasetId::kCaldot2:
      return MakeCaldot("caldot2", 2, 0.55);
    case DatasetId::kTokyo:
      return MakeTokyo();
    case DatasetId::kUav:
      return MakeUav();
    case DatasetId::kWarsaw:
      return MakeWarsaw();
    case DatasetId::kAmsterdam:
      return MakeAmsterdam();
    case DatasetId::kJackson:
      return MakeJackson();
    case DatasetId::kSynthetic:
      return MakeSynthetic();
  }
  OTIF_CHECK(false) << "unknown dataset id";
  return {};
}

}  // namespace otif::sim
