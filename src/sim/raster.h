#ifndef OTIF_SIM_RASTER_H_
#define OTIF_SIM_RASTER_H_

#include <map>
#include <mutex>
#include <utility>

#include "sim/world.h"
#include "video/image.h"

namespace otif::sim {

/// Renders grayscale frames of a clip at arbitrary resolutions. The frame
/// content is what the (real, trained) segmentation proxy model consumes:
/// a static per-dataset background texture with darker road bands along the
/// spawn paths, objects drawn as shaded boxes, and per-frame sensor noise.
///
/// Backgrounds are cached per output resolution; rendering a frame costs
/// O(output pixels + object pixels).
///
/// Thread safety: Render/RenderInto may be called concurrently (the
/// background cache is guarded by a mutex; map entries are never erased, so
/// returned references stay valid). Output is deterministic in
/// (frame, width, height) regardless of call order or interleaving — the
/// streaming executor relies on this to render the same frame contents from
/// any stage worker.
class Rasterizer {
 public:
  /// `clip` must outlive the rasterizer.
  explicit Rasterizer(const Clip* clip);

  Rasterizer(const Rasterizer&) = delete;
  Rasterizer& operator=(const Rasterizer&) = delete;

  /// Renders frame `frame` at `width` x `height` output pixels.
  video::Image Render(int frame, int width, int height);

  /// Renders into `out`, reusing its pixel buffer when the capacity fits
  /// (the driver re-renders into per-slot FrameContext images to avoid
  /// per-batch allocation churn; buffers come from the shared
  /// mem::BufferPool, so even a cold `out` is a pool hit at steady state).
  /// Same output as Render.
  void RenderInto(int frame, int width, int height, video::Image* out);

  /// Renders the static background only (no objects, no noise); exposed for
  /// tests and for video-encoding calibration.
  const video::Image& Background(int width, int height);

 private:
  video::Image BuildBackground(int width, int height) const;

  const Clip* clip_;  // Not owned.
  std::mutex mu_;     // Guards background_cache_.
  std::map<std::pair<int, int>, video::Image> background_cache_;
};

}  // namespace otif::sim

#endif  // OTIF_SIM_RASTER_H_
