#ifndef OTIF_SIM_DATASET_H_
#define OTIF_SIM_DATASET_H_

#include <string>
#include <vector>

#include "geom/geometry.h"
#include "track/types.h"

namespace otif::sim {

/// Weighted object-class mix for a spawn path.
struct ClassWeight {
  track::ObjectClass cls = track::ObjectClass::kCar;
  double weight = 1.0;
};

/// One spawn path: objects appear at the first waypoint and follow the
/// polyline at (noisy) constant speed until the last waypoint. Waypoints are
/// native frame coordinates; perspective is expressed both through the path
/// geometry and through the size/speed scale interpolated along the path.
struct SpawnPath {
  /// Human-readable path type, e.g. "north->south". Path breakdown queries
  /// (Sec 4.1) count tracks per label.
  std::string label;
  std::vector<geom::Point> waypoints;
  /// Poisson arrival rate (objects per second of video).
  double rate_hz = 0.1;
  /// Speed distribution along the path, native pixels per second.
  double speed_mean_px = 60.0;
  double speed_std_px = 10.0;
  /// Base bounding-box width in native pixels; height = width * aspect.
  double size_mean_px = 40.0;
  double size_std_px = 6.0;
  double aspect = 0.6;
  /// Apparent size/speed multiplier at the start and end of the path
  /// (perspective: objects near the horizon are smaller and slower).
  double scale_at_start = 1.0;
  double scale_at_end = 1.0;
  /// Traffic-signal gating: arrivals only occur during the first
  /// `green_fraction` of each `cycle_sec` cycle (offset by `phase_sec`).
  /// cycle_sec == 0 disables gating.
  double cycle_sec = 0.0;
  double green_fraction = 1.0;
  double phase_sec = 0.0;
  /// Object class mix; defaults to all cars.
  std::vector<ClassWeight> class_mix = {{track::ObjectClass::kCar, 1.0}};
};

/// The seven evaluation datasets (paper Sec 4) plus a small synthetic
/// default used in examples and tests.
enum class DatasetId {
  kCaldot1 = 0,
  kCaldot2,
  kTokyo,
  kUav,
  kWarsaw,
  kAmsterdam,
  kJackson,
  kSynthetic,
};

/// Names matching the paper ("caldot1", ..., plus "synthetic").
const char* DatasetName(DatasetId id);

/// All seven paper datasets, in Table 2 order.
std::vector<DatasetId> AllPaperDatasets();

/// Full specification of a synthetic video dataset.
struct DatasetSpec {
  std::string name;
  /// Native resolution (720x480 for Caldot*, 1280x720 otherwise, per paper).
  int width = 1280;
  int height = 720;
  /// Native framerate (5 fps UAV ... 30 fps Amsterdam/Jackson).
  int fps = 10;
  /// Physical scale used by speed/acceleration queries (hard braking).
  double meters_per_pixel = 0.05;
  /// Moving camera (UAV): the viewport drifts as a bounded random walk.
  bool moving_camera = false;
  double camera_drift_px_per_sec = 0.0;
  double camera_drift_max_px = 0.0;
  /// Probability that a spawned object performs one hard-braking episode.
  double brake_prob = 0.03;
  /// Braking deceleration range, m/s^2.
  double brake_decel_min = 5.0;
  double brake_decel_max = 9.0;
  /// Background texture amplitude for the rasterizer (0 = flat).
  double background_complexity = 0.5;
  /// Base seed; clip k of split s derives its own stream from this.
  uint64_t seed = 1;
  std::vector<SpawnPath> paths;
};

/// Builds the preset specification for a dataset. Scene statistics follow
/// the paper's descriptions: Caldot1/2 are highway cameras (sparse, small
/// objects), Tokyo and Warsaw are busy junctions (objects in every frame),
/// UAV is a moving aerial camera, Amsterdam is a riverside plaza with many
/// empty-of-car frames, Jackson is a town junction.
DatasetSpec MakeDataset(DatasetId id);

}  // namespace otif::sim

#endif  // OTIF_SIM_DATASET_H_
