#include "sim/world.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/rng.h"

namespace otif::sim {
namespace {

using geom::Point;

// An object in flight during simulation.
struct LiveObject {
  int64_t id;
  track::ObjectClass cls;
  int path_index;
  double arc_pos = 0.0;       // Arc-length position along the path (px).
  double base_speed = 0.0;    // Un-scaled speed, px/sec.
  double base_width = 0.0;    // Un-scaled box width, px.
  double aspect = 0.6;
  // Hard-braking episode: between brake_start_arc and until speed reaches
  // brake_target_factor * base_speed, decelerate at brake_decel px/s^2.
  bool will_brake = false;
  bool braking = false;
  bool brake_done = false;
  double brake_start_arc = 0.0;
  double brake_decel_px = 0.0;   // px/s^2
  double current_speed = 0.0;    // Current un-scaled speed.
  GtObject record;
};

track::ObjectClass SampleClass(const std::vector<ClassWeight>& mix,
                               otif::Rng* rng) {
  double total = 0.0;
  for (const ClassWeight& cw : mix) total += cw.weight;
  OTIF_CHECK_GT(total, 0.0);
  double u = rng->Uniform(0.0, total);
  for (const ClassWeight& cw : mix) {
    if (u < cw.weight) return cw.cls;
    u -= cw.weight;
  }
  return mix.back().cls;
}

// Size multiplier for larger vehicle classes.
double ClassSizeFactor(track::ObjectClass cls) {
  switch (cls) {
    case track::ObjectClass::kCar:
      return 1.0;
    case track::ObjectClass::kTruck:
      return 1.45;
    case track::ObjectClass::kBus:
      return 1.9;
    case track::ObjectClass::kPedestrian:
      return 1.0;
  }
  return 1.0;
}

// True when arrivals are enabled at time `t_sec` under the path's signal
// cycle.
bool SignalGreen(const SpawnPath& path, double t_sec) {
  if (path.cycle_sec <= 0.0) return true;
  double phase = std::fmod(t_sec - path.phase_sec, path.cycle_sec);
  if (phase < 0) phase += path.cycle_sec;
  return phase < path.green_fraction * path.cycle_sec;
}

}  // namespace

Clip::Clip(DatasetSpec spec, uint64_t clip_seed, int num_frames,
           std::vector<GtObject> objects,
           std::vector<geom::Point> camera_offsets)
    : spec_(std::move(spec)),
      clip_seed_(clip_seed),
      num_frames_(num_frames),
      objects_(std::move(objects)),
      camera_offsets_(std::move(camera_offsets)) {
  OTIF_CHECK_EQ(camera_offsets_.size(), static_cast<size_t>(num_frames_));
  frame_index_.resize(static_cast<size_t>(num_frames_));
  for (size_t oi = 0; oi < objects_.size(); ++oi) {
    const GtObject& obj = objects_[oi];
    for (size_t si = 0; si < obj.states.size(); ++si) {
      const int f = obj.states[si].frame;
      OTIF_CHECK_GE(f, 0);
      OTIF_CHECK_LT(f, num_frames_);
      frame_index_[static_cast<size_t>(f)].push_back(
          {static_cast<int>(oi), static_cast<int>(si)});
    }
  }
}

const geom::Point& Clip::CameraOffset(int frame) const {
  OTIF_CHECK_GE(frame, 0);
  OTIF_CHECK_LT(frame, num_frames_);
  return camera_offsets_[static_cast<size_t>(frame)];
}

const std::vector<VisibleObject>& Clip::VisibleAt(int frame) const {
  OTIF_CHECK_GE(frame, 0);
  OTIF_CHECK_LT(frame, num_frames_);
  return frame_index_[static_cast<size_t>(frame)];
}

track::FrameDetections Clip::GroundTruthDetections(int frame) const {
  track::FrameDetections dets;
  for (const VisibleObject& vis : VisibleAt(frame)) {
    const GtObject& obj = objects_[static_cast<size_t>(vis.object_index)];
    const ObjectFrameState& st =
        obj.states[static_cast<size_t>(vis.state_index)];
    track::Detection d;
    d.frame = frame;
    d.box = st.box;
    d.cls = obj.cls;
    d.confidence = 1.0;
    d.gt_id = obj.id;
    dets.push_back(d);
  }
  return dets;
}

std::vector<track::Track> Clip::GroundTruthTracks(int min_detections) const {
  std::vector<track::Track> tracks;
  for (const GtObject& obj : objects_) {
    if (static_cast<int>(obj.states.size()) < min_detections) continue;
    track::Track t;
    t.id = obj.id;
    t.cls = obj.cls;
    t.detections.reserve(obj.states.size());
    for (const ObjectFrameState& st : obj.states) {
      track::Detection d;
      d.frame = st.frame;
      d.box = st.box;
      d.cls = obj.cls;
      d.confidence = 1.0;
      d.gt_id = obj.id;
      t.detections.push_back(d);
    }
    tracks.push_back(std::move(t));
  }
  return tracks;
}

uint64_t ClipSeed(const DatasetSpec& spec, int split, int clip_index) {
  uint64_t h = spec.seed * 0x9e3779b97f4a7c15ULL;
  h ^= static_cast<uint64_t>(split + 1) * 0xbf58476d1ce4e5b9ULL;
  h ^= static_cast<uint64_t>(clip_index + 1) * 0x94d049bb133111ebULL;
  return h;
}

Clip SimulateClip(const DatasetSpec& spec, uint64_t clip_seed,
                  int duration_frames) {
  OTIF_CHECK_GT(duration_frames, 0);
  OTIF_CHECK(!spec.paths.empty());
  Rng rng(clip_seed);
  Rng camera_rng = rng.Fork();
  const double dt = 1.0 / spec.fps;

  // Warm up long enough for the slowest object to cross the frame so that
  // the clip starts in steady state.
  double max_travel_sec = 0.0;
  std::vector<double> path_lengths;
  for (const SpawnPath& p : spec.paths) {
    const double len = geom::PolylineLength(p.waypoints);
    path_lengths.push_back(len);
    const double min_scale = std::min(p.scale_at_start, p.scale_at_end);
    const double slow_speed =
        std::max(5.0, (p.speed_mean_px - 2 * p.speed_std_px) *
                          std::max(0.2, min_scale));
    max_travel_sec = std::max(max_travel_sec, len / slow_speed);
  }
  const int warmup_frames =
      static_cast<int>(std::ceil(max_travel_sec * spec.fps)) + spec.fps;

  // Camera drift: bounded random walk, computed for visible frames only.
  std::vector<Point> camera_offsets(static_cast<size_t>(duration_frames));
  if (spec.moving_camera) {
    Point offset(0, 0);
    Point velocity(camera_rng.Uniform(-1, 1), camera_rng.Uniform(-1, 1));
    for (int f = 0; f < duration_frames; ++f) {
      // Smooth random acceleration with reflection at the drift bound.
      velocity.x += camera_rng.Gaussian(0.0, 0.3);
      velocity.y += camera_rng.Gaussian(0.0, 0.3);
      const double vmax = 1.0;
      velocity.x = std::clamp(velocity.x, -vmax, vmax);
      velocity.y = std::clamp(velocity.y, -vmax, vmax);
      offset.x += velocity.x * spec.camera_drift_px_per_sec * dt;
      offset.y += velocity.y * spec.camera_drift_px_per_sec * dt;
      if (std::abs(offset.x) > spec.camera_drift_max_px) velocity.x *= -1;
      if (std::abs(offset.y) > spec.camera_drift_max_px) velocity.y *= -1;
      camera_offsets[static_cast<size_t>(f)] = offset;
    }
  }

  std::vector<LiveObject> live;
  std::vector<GtObject> finished;
  int64_t next_id = 0;

  // Pre-draw Poisson arrivals per path per frame via Bernoulli thinning
  // (rate * dt is small).
  for (int f = -warmup_frames; f < duration_frames; ++f) {
    const double t_sec = f * dt;
    // Spawn new objects.
    for (size_t pi = 0; pi < spec.paths.size(); ++pi) {
      const SpawnPath& path = spec.paths[pi];
      if (!SignalGreen(path, t_sec)) continue;
      // Compensate the gating duty cycle so the average rate matches
      // rate_hz.
      const double duty =
          path.cycle_sec > 0 ? std::max(0.05, path.green_fraction) : 1.0;
      const double p_spawn = std::min(0.9, path.rate_hz * dt / duty);
      if (!rng.Bernoulli(p_spawn)) continue;
      LiveObject obj;
      obj.id = next_id++;
      obj.cls = SampleClass(path.class_mix, &rng);
      obj.path_index = static_cast<int>(pi);
      obj.arc_pos = 0.0;
      obj.base_speed = std::max(
          5.0, rng.Gaussian(path.speed_mean_px, path.speed_std_px));
      obj.current_speed = obj.base_speed;
      obj.base_width =
          std::max(6.0, rng.Gaussian(path.size_mean_px, path.size_std_px)) *
          ClassSizeFactor(obj.cls);
      obj.aspect = path.aspect;
      if (obj.cls != track::ObjectClass::kPedestrian &&
          rng.Bernoulli(spec.brake_prob)) {
        obj.will_brake = true;
        obj.brake_start_arc =
            rng.Uniform(0.25, 0.7) * path_lengths[pi];
        const double decel_mps2 =
            rng.Uniform(spec.brake_decel_min, spec.brake_decel_max);
        obj.brake_decel_px = decel_mps2 / spec.meters_per_pixel;
      }
      obj.record.id = obj.id;
      obj.record.cls = obj.cls;
      obj.record.path_index = obj.path_index;
      live.push_back(std::move(obj));
    }

    // Advance live objects and record visible states.
    const Point cam = (f >= 0 && spec.moving_camera)
                          ? camera_offsets[static_cast<size_t>(f)]
                          : Point(0, 0);
    for (size_t li = 0; li < live.size();) {
      LiveObject& obj = live[li];
      const SpawnPath& path = spec.paths[static_cast<size_t>(obj.path_index)];
      const double path_len = path_lengths[static_cast<size_t>(obj.path_index)];
      const double u =
          path_len > 0 ? std::clamp(obj.arc_pos / path_len, 0.0, 1.0) : 1.0;
      const double scale =
          path.scale_at_start + u * (path.scale_at_end - path.scale_at_start);

      // Braking dynamics (operates on the un-scaled speed).
      if (obj.will_brake && !obj.brake_done && !obj.braking &&
          obj.arc_pos >= obj.brake_start_arc) {
        obj.braking = true;
        obj.record.braked = true;
      }
      if (obj.braking) {
        obj.current_speed -= obj.brake_decel_px * dt;
        if (obj.current_speed <= obj.base_speed * 0.25) {
          obj.current_speed = obj.base_speed * 0.25;
          obj.braking = false;
          obj.brake_done = true;
        }
      } else if (obj.brake_done) {
        // Gentle re-acceleration back to cruise speed.
        obj.current_speed = std::min(
            obj.base_speed, obj.current_speed + 0.15 * obj.base_speed * dt);
      } else {
        // Mean-reverting (Ornstein-Uhlenbeck) speed noise around cruise:
        // stationary std ~6% of cruise speed regardless of framerate.
        const double theta = 0.8;
        const double sigma = 0.08 * obj.base_speed;
        obj.current_speed += theta * (obj.base_speed - obj.current_speed) * dt +
                             sigma * std::sqrt(dt) * rng.Gaussian();
        obj.current_speed = std::max(obj.current_speed, 0.3 * obj.base_speed);
      }

      // Record state if within the clip and visible.
      if (f >= 0) {
        const Point world_pos = geom::PointAlong(path.waypoints, u);
        const Point frame_pos = world_pos - cam;
        const double w = obj.base_width * std::max(0.15, scale);
        const double h = w * obj.aspect;
        const geom::BBox box(frame_pos.x, frame_pos.y, w, h);
        const bool visible =
            box.Right() > 0 && box.Left() < spec.width && box.Bottom() > 0 &&
            box.Top() < spec.height;
        if (visible) {
          ObjectFrameState st;
          st.frame = f;
          st.box = box;
          st.speed_px_per_sec = obj.current_speed * std::max(0.15, scale);
          obj.record.states.push_back(st);
        } else if (!obj.record.states.empty()) {
          // Left the frame after being visible: finish the object early so
          // re-entry (possible with a moving camera) starts a new identity.
          finished.push_back(std::move(obj.record));
          obj.record = GtObject{};
          obj.record.id = obj.id;
          obj.record.cls = obj.cls;
          obj.record.path_index = obj.path_index;
        }
      }

      // Advance along the path at the apparent (scaled) speed.
      obj.arc_pos += obj.current_speed * std::max(0.15, scale) * dt;
      if (obj.arc_pos >= path_len) {
        if (!obj.record.states.empty()) {
          finished.push_back(std::move(obj.record));
        }
        live[li] = std::move(live.back());
        live.pop_back();
      } else {
        ++li;
      }
    }
  }
  for (LiveObject& obj : live) {
    if (!obj.record.states.empty()) finished.push_back(std::move(obj.record));
  }

  // Re-enter objects with a moving camera may have produced multiple GtObject
  // records sharing an id; give each record a distinct id.
  int64_t reassign = 0;
  for (GtObject& obj : finished) obj.id = reassign++;

  return Clip(spec, clip_seed, duration_frames, std::move(finished),
              std::move(camera_offsets));
}

}  // namespace otif::sim
