#include "util/trace.h"

#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <utility>

namespace otif::telemetry {
namespace {

/// Span sites, keyed by name. Separate from MetricsRegistry because sites
/// aggregate four values atomically as one logical record and benches want
/// them listed apart from plain metrics.
class SpanRegistry {
 public:
  static SpanRegistry& Global() {
    // Leaked: spans may close on worker threads during static destruction.
    static SpanRegistry* registry = new SpanRegistry();
    return *registry;
  }

  SpanSite* Get(const std::string& name) {
    std::lock_guard<std::mutex> lock(mu_);
    std::unique_ptr<SpanSite>& slot = sites_[name];
    if (slot == nullptr) {
      // Spans export to Prometheus in the same namespace as plain metrics
      // (as summaries), so their names go through the same sanitization
      // and collision check as counter/gauge/histogram registrations.
      MetricsRegistry::Global().RegisterExternalName("span", name);
      slot = std::make_unique<SpanSite>(name);
    }
    return slot.get();
  }

  void AppendSamples(TelemetrySnapshot* snapshot) const {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [name, site] : sites_) {
      snapshot->spans.push_back(site->Sample());
    }
  }

  void Reset() {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [name, site] : sites_) site->Reset();
  }

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<SpanSite>> sites_;  // Guarded by mu_.
};

void AtomicAdd(std::atomic<double>* target, double delta) {
  double current = target->load(std::memory_order_relaxed);
  while (!target->compare_exchange_weak(current, current + delta,
                                        std::memory_order_relaxed)) {
  }
}

void AtomicMin(std::atomic<double>* target, double value) {
  double current = target->load(std::memory_order_relaxed);
  while (value < current && !target->compare_exchange_weak(
                                current, value, std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<double>* target, double value) {
  double current = target->load(std::memory_order_relaxed);
  while (value > current && !target->compare_exchange_weak(
                                current, value, std::memory_order_relaxed)) {
  }
}

}  // namespace

SpanSite::SpanSite(std::string name) : name_(std::move(name)) {
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
}

void SpanSite::Record(double seconds) {
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAdd(&total_, seconds);
  AtomicMin(&min_, seconds);
  AtomicMax(&max_, seconds);
}

SpanSample SpanSite::Sample() const {
  SpanSample sample;
  sample.name = name_;
  sample.count = count_.load(std::memory_order_relaxed);
  sample.total_seconds = total_.load(std::memory_order_relaxed);
  // min_ holds +inf until the first record; report 0 for an idle site.
  const double min = min_.load(std::memory_order_relaxed);
  sample.min_seconds = sample.count > 0 ? min : 0.0;
  sample.max_seconds = max_.load(std::memory_order_relaxed);
  return sample;
}

void SpanSite::Reset() {
  count_.store(0, std::memory_order_relaxed);
  total_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(0.0, std::memory_order_relaxed);
}

SpanSite* GetSpan(const std::string& name) {
  return SpanRegistry::Global().Get(name);
}

TelemetrySnapshot CaptureSnapshot() {
  TelemetrySnapshot snapshot = MetricsRegistry::Global().Snapshot();
  SpanRegistry::Global().AppendSamples(&snapshot);
  return snapshot;
}

void ResetAll() {
  MetricsRegistry::Global().Reset();
  SpanRegistry::Global().Reset();
}

}  // namespace otif::telemetry
