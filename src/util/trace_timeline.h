#ifndef OTIF_UTIL_TRACE_TIMELINE_H_
#define OTIF_UTIL_TRACE_TIMELINE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace otif::telemetry {

class SpanSite;  // trace.h

/// Timeline tracing: per-thread lock-free ring buffers of begin/end events
/// that export as Chrome trace-event JSON (loadable in Perfetto or
/// chrome://tracing), plus a flight recorder that dumps the last events and
/// a telemetry snapshot when something goes wrong.
///
/// Unlike the SpanSite aggregates in trace.h (which fold every span into
/// count/total/min/max), the timeline keeps *individual* events with
/// timestamps and thread ids, so one can see where inside a parallel clip
/// sweep the wall time goes — at the cost of a bounded ring per thread that
/// forgets everything but the most recent BufferCapacity() events.
///
/// Events are emitted by ScopedSpan (trace.h) when collection is armed;
/// when it is off the entire feature costs one relaxed atomic load per span
/// site (shared with the telemetry flag — see telemetry::Flags()).
namespace timeline {

/// Context propagated with task submission: which unit of work the current
/// thread is executing on behalf of. Carried as a plain thread-local (no
/// atomics — it is only read by its own thread) and captured into
/// ThreadPool batches, so a worker executing clip 7's task attributes its
/// events to clip 7 even three fan-outs deep.
struct TraceContext {
  /// Index of the clip being processed, or -1 outside any per-clip work.
  int64_t clip = -1;
};

/// The calling thread's current context (default-constructed when unset).
TraceContext CurrentContext();

/// The innermost span site currently open on the calling thread, or nullptr
/// outside any span. Maintained by ScopedSpan *only while the profiler flag
/// (telemetry::kProfilerFlag) is set, so the everything-off cost stays one
/// relaxed flag load. Read by the SIGPROF handler to attribute samples to a
/// stage: a plain thread-local pointer (local-exec TLS in this static
/// build), so the read is async-signal-safe and never torn — the handler
/// interrupts the very thread that owns the slot.
const SpanSite* CurrentSpanSite();

/// Installs `site` as the thread's innermost span and returns the previous
/// one (ScopedSpan restores it on destruction, giving stack semantics).
const SpanSite* ExchangeCurrentSpanSite(const SpanSite* site);

/// RAII: installs `context` as the calling thread's context and restores
/// the previous one on destruction. Scopes may nest.
class ScopedContext {
 public:
  explicit ScopedContext(TraceContext context);
  ~ScopedContext();

  ScopedContext(const ScopedContext&) = delete;
  ScopedContext& operator=(const ScopedContext&) = delete;

 private:
  const TraceContext previous_;
};

/// Whether event collection is armed (== telemetry::Flags() & kTimelineFlag).
bool CollectionEnabled();

/// Arms or disarms collection (tests and benches; flip only between runs —
/// in-flight ScopedSpans that began while armed still emit their end event).
void SetCollectionEnabled(bool enabled);

/// Per-thread ring capacity (events). Applies to buffers created *after*
/// the call; existing threads keep their rings. Rounded up to a power of
/// two; default 32768 (override with OTIF_TRACE_TIMELINE_EVENTS).
void SetBufferCapacity(size_t capacity);
size_t BufferCapacity();

/// Appends a begin/end event for `site` to the calling thread's ring with
/// the current timestamp and context. Callers must check CollectionEnabled()
/// first (ScopedSpan folds that check into its single flag load).
void EmitBegin(const SpanSite* site);
void EmitEnd(const SpanSite* site);

/// One decoded event, as drained from the rings.
struct Event {
  std::string name;
  int64_t ts_ns = 0;   ///< Nanoseconds since the process trace epoch.
  uint64_t tid = 0;    ///< Small stable id of the producing thread.
  int64_t clip = -1;   ///< TraceContext::clip at emission.
  char phase = 'B';    ///< 'B' begin / 'E' end (Chrome trace phases).
};

/// Drains every thread's ring into one list sorted by timestamp. Safe to
/// call while producers are running (seqlock slots: events overwritten
/// mid-read are skipped, never torn); the result is then best-effort rather
/// than a consistent cut.
std::vector<Event> SnapshotEvents();

/// Empties every ring. Call only while producers are quiescent (between
/// runs): a concurrently emitting thread may interleave with the clear.
void ClearEvents();

/// Renders events as a Chrome trace-event JSON document
/// ({"traceEvents": [...]}, "B"/"E" phases, microsecond timestamps, one
/// Chrome tid per producer thread, args carrying the clip id).
std::string ToChromeTraceJson(const std::vector<Event>& events);

/// SnapshotEvents() + ToChromeTraceJson() written to `path`.
Status WriteChromeTrace(const std::string& path);

/// Writes a flight record to `path`: {"reason": ..., "trace": <chrome
/// trace of the last events>, "telemetry": <full snapshot>}.
Status WriteFlightRecord(const std::string& path, const std::string& reason);

/// Postmortem hook for fallible boundaries (pipeline driver, harness): on a
/// non-OK status, writes a flight record to the configured dump path when
/// the recorder is armed (collection on, or OTIF_DUMP_ON_ERROR=1). OK
/// statuses and disarmed recorders return immediately.
void ReportError(const Status& status, const std::string& where);

/// Where ReportError and the fatal-CHECK handler write their dump
/// (OTIF_DUMP_PATH, default "otif_flight_record.json").
std::string DumpPath();

/// Applies the timeline environment configuration once per process:
///  - OTIF_TRACE_TIMELINE: "1"/"on"/"true" arms collection and exports a
///    Chrome trace to "otif_trace.json" at process exit; any other
///    non-empty, non-false value does the same with the value as the output
///    path; unset/"0"/"off"/"false" leaves the timeline off.
///  - OTIF_TRACE_TIMELINE_EVENTS: per-thread ring capacity.
///  - OTIF_DUMP_ON_ERROR=1: arms collection and enables the flight
///    recorder (ReportError dumps, and fatal OTIF_CHECK failures dump
///    before aborting).
///  - OTIF_DUMP_PATH: flight-record output path.
void InitFromEnv();

}  // namespace timeline
}  // namespace otif::telemetry

namespace otif {

/// One-stop observability startup hook for binaries and the harness:
/// applies OTIF_LOG_LEVEL (InitLogLevelFromEnv) and the timeline/flight
/// recorder environment (timeline::InitFromEnv). Idempotent.
void InitObservabilityFromEnv();

}  // namespace otif

#endif  // OTIF_UTIL_TRACE_TIMELINE_H_
