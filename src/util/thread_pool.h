#ifndef OTIF_UTIL_THREAD_POOL_H_
#define OTIF_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "util/trace_timeline.h"

namespace otif {

/// Fixed-size worker pool for embarrassingly parallel outer loops (per-clip
/// pipeline runs, tuner candidate evaluation, per-baseline harness runs).
///
/// The unit of work is a *batch*: ParallelFor(n, fn) runs fn(0..n-1) across
/// the workers and the calling thread, returning when every index has
/// completed. Determinism contract: results are keyed by index (ParallelMap
/// stores fn(i) into slot i), so outputs are independent of thread
/// interleaving as long as fn(i) itself is deterministic and touches no
/// cross-index mutable state.
///
/// Nested ParallelFor calls (a worker's task itself fanning out) are safe:
/// every caller drains its own batch before blocking, so the only wait is
/// for indices already in flight on other threads, which always make
/// progress — no cyclic waits are possible.
///
/// With num_threads = 1 the pool spawns no workers and ParallelFor runs
/// inline on the caller, byte-identical to a plain serial loop.
class ThreadPool {
 public:
  /// `num_threads` counts the calling thread: the pool spawns
  /// num_threads - 1 workers. Clamped below to 1.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total execution lanes (workers + the calling thread).
  int num_threads() const { return num_threads_; }

  /// Runs fn(0..n-1) across the pool; returns when all calls completed.
  /// fn must not throw (the codebase aborts via CHECK instead).
  ///
  /// Trace-context propagation: the submitting thread's
  /// timeline::CurrentContext() is captured with the batch and installed
  /// around every task execution, so events a worker emits on behalf of
  /// this batch are attributed to the submitter's clip — including through
  /// nested ParallelFor fan-outs. A task may still narrow the context
  /// itself (e.g. per-clip ScopedContext inside the body).
  void ParallelFor(int64_t n, const std::function<void(int64_t)>& fn);

  /// The process-wide default pool. Sized from the OTIF_WORKERS environment
  /// variable when set, otherwise std::thread::hardware_concurrency().
  /// Invalid OTIF_WORKERS values (non-numeric, trailing garbage, < 1) fall
  /// back to the hardware width with a logged warning.
  static ThreadPool* Default();

  /// Parses an OTIF_WORKERS-style value. Returns the parsed count when
  /// `value` is a positive decimal integer; otherwise logs a warning naming
  /// the rejected value and returns `fallback`. Exposed for tests.
  static int ParseWorkerEnv(const char* value, int fallback);

  /// Replaces the default pool with one of `num_threads` lanes. Must not be
  /// called while another thread is using the default pool; intended for
  /// benchmark sweeps and tests.
  static void SetDefaultThreads(int num_threads);

 private:
  struct Batch {
    int64_t n = 0;
    const std::function<void(int64_t)>* fn = nullptr;
    /// Submitter's trace context, re-installed around each task.
    telemetry::timeline::TraceContext ctx;
    std::atomic<int64_t> next{0};
    std::atomic<int64_t> completed{0};
  };

  void WorkerLoop();
  /// Claims and runs indices of `batch` until none remain unclaimed.
  void DrainBatch(Batch* batch);
  /// Runs one index of `batch`; notifies waiters on batch completion.
  void RunOne(Batch* batch, int64_t index);

  const int num_threads_;
  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable work_cv_;  // New batch available or shutdown.
  std::condition_variable done_cv_;  // Some batch finished an index.
  std::vector<std::shared_ptr<Batch>> active_;  // Guarded by mu_.
  bool shutdown_ = false;                       // Guarded by mu_.
};

/// Runs fn(0..n-1) on `pool` and returns the results ordered by index.
/// The result type must be default-constructible and movable.
template <typename Fn>
auto ParallelMap(ThreadPool* pool, int64_t n, Fn&& fn) {
  using R = std::invoke_result_t<Fn&, int64_t>;
  static_assert(!std::is_void_v<R>, "use ParallelFor for void tasks");
  std::vector<R> results(static_cast<size_t>(n));
  pool->ParallelFor(
      n, [&](int64_t i) { results[static_cast<size_t>(i)] = fn(i); });
  return results;
}

}  // namespace otif

#endif  // OTIF_UTIL_THREAD_POOL_H_
