#ifndef OTIF_UTIL_FAULT_INJECTION_H_
#define OTIF_UTIL_FAULT_INJECTION_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"
#include "util/telemetry.h"

namespace otif::fault {

/// What an armed site does when its deterministic RNG fires. Sites ignore
/// kinds they cannot express (a Channel has no output to corrupt), so one
/// spec can be pointed at any site without crashing the host layer.
enum class Kind {
  kError,    // Return a transient error (Status::IoError at the site).
  kCorrupt,  // Deliver damaged output (decoder: zeroed bottom half).
  kStall,    // Sleep `stall_ms` before proceeding (latency spike).
  kDeny,     // Refuse a resource (BufferPool: bypass the freelist).
  kClose,    // Close the channel out from under the producer.
};

/// One fired injection, reported to the instrumented call site.
struct Injection {
  Kind kind = Kind::kError;
  int stall_ms = 0;  // Only meaningful for kStall.
};

/// Whether any fault site is armed (one relaxed load of the shared
/// observability flag word — the same everything-off contract as spans).
inline bool Enabled() {
  return (telemetry::Flags() & telemetry::kFaultFlag) != 0;
}

namespace internal {
/// Immutable configuration an armed site reads. Published via an atomic
/// pointer in the Site so readers never lock; retired configs are leaked
/// (they are a handful of bytes and only exist in chaos runs).
struct SiteConfig {
  Kind kind = Kind::kError;
  double rate = 0.0;     // Probability per decision in [0, 1].
  uint64_t seed = 0;     // Per-site stream seed.
  int64_t clip = -1;     // Only fire for this clip; -1 = any clip.
  int stall_ms = 1;      // Sleep for kStall decisions.
};
}  // namespace internal

/// A named point where a fault may be injected. Sites live forever in a
/// process-wide registry (like telemetry::SpanSite): hot paths resolve the
/// pointer once and afterwards pay one flag-word load per decision while
/// disarmed.
class Site {
 public:
  explicit Site(std::string name);

  Site(const Site&) = delete;
  Site& operator=(const Site&) = delete;

  const std::string& name() const { return name_; }

  /// Decides whether a fault fires here for (`clip`, `token`). The decision
  /// is a pure function of (site seed, token): replaying a run with the
  /// same spec and the same tokens reproduces the same faults regardless of
  /// thread interleaving. Pass token = -1 to use a per-site hit counter
  /// instead (deterministic only for serially-invoked sites). Returns true
  /// and fills `out` when a fault fires; bumps `fault.injected.<name>`.
  bool Inject(int64_t clip, int64_t token, Injection* out);

  /// As above, attributing the decision to the calling thread's timeline
  /// clip context (timeline::CurrentContext().clip).
  bool Inject(int64_t token, Injection* out);

  // Configuration plumbing (ConfigureFaults / ClearFaults only).
  void SetConfig(const internal::SiteConfig* config) {
    config_.store(config, std::memory_order_release);
  }
  bool armed() const {
    return config_.load(std::memory_order_acquire) != nullptr;
  }

 private:
  const std::string name_;
  std::atomic<const internal::SiteConfig*> config_{nullptr};
  std::atomic<uint64_t> hits_{0};  // Auto-token counter (token == -1).
  telemetry::Counter* const injected_;
};

/// Returns the site registered under `name`, creating it on first use. The
/// pointer is stable for the process lifetime (function-local-static
/// friendly, same idiom as telemetry::GetSpan).
Site* GetSite(const std::string& name);

/// Decision macro for instrumented layers. Zero-cost while disarmed: one
/// relaxed flag-word load, no registry lookup (the site resolves once into
/// a function-local static). `name` must be a constant expression;
/// `token` is the deterministic replay token (int64_t, or -1 for the
/// per-site hit counter); `out` is an Injection*.
///
///   fault::Injection inj;
///   if (OTIF_FAULT_POINT("decode.frame", index, &inj)) { ... }
#define OTIF_FAULT_POINT(name, token, out)                                 \
  ([&]() -> bool {                                                         \
    if (!::otif::fault::Enabled()) return false;                           \
    static ::otif::fault::Site* const otif_fault_site =                    \
        ::otif::fault::GetSite(name);                                      \
    return otif_fault_site->Inject((token), (out));                        \
  }())

/// Parses and installs a fault spec: comma-separated entries of
///   site:kind:rate:seed[:clip=K][:ms=N]
/// where kind is error|corrupt|stall|deny|close, rate is a probability in
/// [0, 1], seed is a non-negative integer, clip=K limits firing to clip K,
/// and ms=N sets the stall duration (default 1). Example:
///   OTIF_FAULTS=detect.invoke:error:0.5:7:clip=1,channel.proxy:stall:1:9:ms=2
/// Replaces any previous configuration and sets the fault flag when at
/// least one site is armed. Not synchronized with in-flight runs: call
/// between runs (tests, process startup).
Status ConfigureFaults(const std::string& spec);

/// Disarms every site and clears the fault flag.
void ClearFaults();

/// Applies OTIF_FAULTS from the environment (no-op when unset; logs a
/// warning and stays disarmed on a malformed spec). Called by
/// InitObservabilityFromEnv.
void InitFaultsFromEnv();

/// Names of currently armed sites, sorted (introspection and tests).
std::vector<std::string> ArmedSites();

}  // namespace otif::fault

#endif  // OTIF_UTIL_FAULT_INJECTION_H_
