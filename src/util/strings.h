#ifndef OTIF_UTIL_STRINGS_H_
#define OTIF_UTIL_STRINGS_H_

#include <cstdarg>
#include <string>
#include <string_view>
#include <vector>

namespace otif {

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Splits `text` on `sep`, keeping empty fields.
std::vector<std::string> StrSplit(std::string_view text, char sep);

/// Joins `parts` with `sep`.
std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view sep);

/// True when `text` begins with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

/// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view text);

}  // namespace otif

#endif  // OTIF_UTIL_STRINGS_H_
