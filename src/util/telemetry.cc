#include "util/telemetry.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "util/json_writer.h"
#include "util/logging.h"
#include "util/strings.h"
#include "util/table.h"

namespace otif::telemetry {
namespace {

bool EnabledFromEnv() {
  const char* env = std::getenv("OTIF_TELEMETRY");
  if (env == nullptr) return true;
  return std::strcmp(env, "off") != 0 && std::strcmp(env, "0") != 0 &&
         std::strcmp(env, "false") != 0;
}

std::atomic<uint32_t>& FlagsWord() {
  static std::atomic<uint32_t> flags{EnabledFromEnv() ? kTelemetryFlag : 0u};
  return flags;
}

}  // namespace

uint32_t Flags() { return FlagsWord().load(std::memory_order_relaxed); }

bool Enabled() { return (Flags() & kTelemetryFlag) != 0; }

void SetEnabled(bool enabled) {
  internal::SetFlag(kTelemetryFlag, enabled);
}

namespace internal {

void SetFlag(uint32_t mask, bool enabled) {
  if (enabled) {
    FlagsWord().fetch_or(mask, std::memory_order_relaxed);
  } else {
    FlagsWord().fetch_and(~mask, std::memory_order_relaxed);
  }
}

}  // namespace internal

void Gauge::Add(double delta) {
  double current = value_.load(std::memory_order_relaxed);
  while (!value_.compare_exchange_weak(current, current + delta,
                                       std::memory_order_relaxed)) {
  }
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      buckets_(new std::atomic<int64_t>[bounds_.size() + 1]) {
  for (size_t i = 0; i + 1 < bounds_.size(); ++i) {
    OTIF_CHECK_LT(bounds_[i], bounds_[i + 1]) << "bounds must ascend";
  }
  for (size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::Record(double value) {
  size_t i = 0;
  while (i < bounds_.size() && value > bounds_[i]) ++i;
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.Add(value);
}

int64_t Histogram::bucket_count(size_t i) const {
  OTIF_CHECK_LE(i, bounds_.size());
  return buckets_[i].load(std::memory_order_relaxed);
}

void Histogram::Reset() {
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.Reset();
}

std::vector<double> DefaultLatencyBounds() {
  return {1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0};
}

std::string PrometheusMetricName(const std::string& name) {
  std::string out = "otif_";
  out.reserve(out.size() + name.size());
  for (const char c : name) {
    const bool legal = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                       (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(legal ? c : '_');
  }
  return out;
}

double HistogramQuantile(const HistogramSample& sample, double q) {
  if (sample.count <= 0) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  const double rank = q * static_cast<double>(sample.count);
  int64_t cumulative = 0;
  for (size_t i = 0; i < sample.buckets.size(); ++i) {
    const int64_t in_bucket = sample.buckets[i];
    if (in_bucket == 0) continue;
    if (static_cast<double>(cumulative + in_bucket) >= rank) {
      if (i >= sample.bounds.size()) {
        // Overflow bucket: no upper bound to interpolate toward.
        return sample.bounds.empty() ? 0.0 : sample.bounds.back();
      }
      const double lo = i > 0 ? sample.bounds[i - 1] : 0.0;
      const double hi = sample.bounds[i];
      const double fraction =
          (rank - static_cast<double>(cumulative)) / in_bucket;
      return lo + (hi - lo) * std::min(1.0, std::max(0.0, fraction));
    }
    cumulative += in_bucket;
  }
  return sample.bounds.empty() ? 0.0 : sample.bounds.back();
}

const CounterSample* FindCounter(const TelemetrySnapshot& snapshot,
                                 const std::string& name) {
  for (const CounterSample& s : snapshot.counters) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

const GaugeSample* FindGauge(const TelemetrySnapshot& snapshot,
                             const std::string& name) {
  for (const GaugeSample& s : snapshot.gauges) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

const SpanSample* FindSpan(const TelemetrySnapshot& snapshot,
                           const std::string& name) {
  for (const SpanSample& s : snapshot.spans) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

MetricsRegistry& MetricsRegistry::Global() {
  // Leaked: worker threads may still record during static destruction.
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

void MetricsRegistry::ClaimName(const char* kind, const std::string& name) {
  const std::string sanitized = PrometheusMetricName(name);
  const auto [it, inserted] =
      claimed_names_.emplace(sanitized, NameClaim{kind, name});
  if (!inserted) {
    // Same original name, same kind: the registration dedupe path never
    // reaches here, so this is a cross-kind reuse of one name — as much a
    // collision as two names sanitizing together.
    OTIF_LOG(kFatal)
        << "telemetry metric name collision: " << kind << " \"" << name
        << "\" and " << it->second.kind << " \"" << it->second.original
        << "\" both export as Prometheus metric \"" << sanitized
        << "\"; rename one at its registration site";
  }
}

void MetricsRegistry::RegisterExternalName(const char* kind,
                                           const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  ClaimName(kind, name);
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Counter>& slot = counters_[name];
  if (slot == nullptr) {
    ClaimName("counter", name);
    slot = std::make_unique<Counter>();
  }
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Gauge>& slot = gauges_[name];
  if (slot == nullptr) {
    ClaimName("gauge", name);
    slot = std::make_unique<Gauge>();
  }
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Histogram>& slot = histograms_[name];
  if (slot == nullptr) {
    ClaimName("histogram", name);
    slot = std::make_unique<Histogram>(std::move(bounds));
  }
  return slot.get();
}

TelemetrySnapshot MetricsRegistry::Snapshot() const {
  TelemetrySnapshot snapshot;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, counter] : counters_) {
    snapshot.counters.push_back({name, counter->value()});
  }
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges.push_back({name, gauge->value()});
  }
  for (const auto& [name, histogram] : histograms_) {
    HistogramSample sample;
    sample.name = name;
    sample.bounds = histogram->bounds();
    for (size_t i = 0; i <= sample.bounds.size(); ++i) {
      sample.buckets.push_back(histogram->bucket_count(i));
    }
    sample.count = histogram->count();
    sample.sum = histogram->sum();
    snapshot.histograms.push_back(std::move(sample));
  }
  return snapshot;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, counter] : counters_) counter->Reset();
  for (const auto& [name, gauge] : gauges_) gauge->Reset();
  for (const auto& [name, histogram] : histograms_) histogram->Reset();
}

std::string SnapshotToJson(const TelemetrySnapshot& snapshot) {
  JsonWriter w;
  w.BeginObject();
  w.Key("counters").BeginObject();
  for (const CounterSample& s : snapshot.counters) {
    w.Key(s.name).Value(s.value);
  }
  w.EndObject();
  w.Key("gauges").BeginObject();
  for (const GaugeSample& s : snapshot.gauges) {
    w.Key(s.name).Value(s.value);
  }
  w.EndObject();
  w.Key("histograms").BeginObject();
  for (const HistogramSample& s : snapshot.histograms) {
    w.Key(s.name).BeginObject();
    w.Key("count").Value(s.count);
    w.Key("sum").Value(s.sum);
    w.Key("p50").Value(HistogramQuantile(s, 0.50));
    w.Key("p90").Value(HistogramQuantile(s, 0.90));
    w.Key("p99").Value(HistogramQuantile(s, 0.99));
    w.Key("bounds").BeginArray();
    for (const double b : s.bounds) w.Value(b);
    w.EndArray();
    w.Key("buckets").BeginArray();
    for (const int64_t b : s.buckets) w.Value(b);
    w.EndArray();
    w.EndObject();
  }
  w.EndObject();
  w.Key("spans").BeginObject();
  for (const SpanSample& s : snapshot.spans) {
    w.Key(s.name).BeginObject();
    w.Key("count").Value(s.count);
    w.Key("total_seconds").Value(s.total_seconds);
    w.Key("min_seconds").Value(s.min_seconds);
    w.Key("max_seconds").Value(s.max_seconds);
    w.EndObject();
  }
  w.EndObject();
  w.EndObject();
  return std::move(w).TakeString();
}

std::string SnapshotToTable(const TelemetrySnapshot& snapshot) {
  std::ostringstream out;
  if (!snapshot.spans.empty()) {
    TextTable spans({"span", "count", "total s", "min s", "max s"});
    for (const SpanSample& s : snapshot.spans) {
      spans.AddRow({s.name, StrFormat("%lld", static_cast<long long>(s.count)),
                    StrFormat("%.4f", s.total_seconds),
                    StrFormat("%.6f", s.min_seconds),
                    StrFormat("%.6f", s.max_seconds)});
    }
    out << spans.ToString() << "\n";
  }
  if (!snapshot.counters.empty()) {
    TextTable counters({"counter", "value"});
    for (const CounterSample& s : snapshot.counters) {
      counters.AddRow(
          {s.name, StrFormat("%lld", static_cast<long long>(s.value))});
    }
    out << counters.ToString() << "\n";
  }
  if (!snapshot.gauges.empty()) {
    TextTable gauges({"gauge", "value"});
    for (const GaugeSample& s : snapshot.gauges) {
      gauges.AddRow({s.name, StrFormat("%.6f", s.value)});
    }
    out << gauges.ToString() << "\n";
  }
  if (!snapshot.histograms.empty()) {
    TextTable histograms(
        {"histogram", "count", "sum", "mean", "p50", "p90", "p99"});
    for (const HistogramSample& s : snapshot.histograms) {
      histograms.AddRow(
          {s.name, StrFormat("%lld", static_cast<long long>(s.count)),
           StrFormat("%.4f", s.sum),
           StrFormat("%.6f", s.count > 0 ? s.sum / s.count : 0.0),
           StrFormat("%.6f", HistogramQuantile(s, 0.50)),
           StrFormat("%.6f", HistogramQuantile(s, 0.90)),
           StrFormat("%.6f", HistogramQuantile(s, 0.99))});
    }
    out << histograms.ToString() << "\n";
  }
  return out.str();
}

}  // namespace otif::telemetry
