#include "util/telemetry.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "util/logging.h"
#include "util/strings.h"
#include "util/table.h"

namespace otif::telemetry {
namespace {

bool EnabledFromEnv() {
  const char* env = std::getenv("OTIF_TELEMETRY");
  if (env == nullptr) return true;
  return std::strcmp(env, "off") != 0 && std::strcmp(env, "0") != 0 &&
         std::strcmp(env, "false") != 0;
}

std::atomic<bool>& EnabledFlag() {
  static std::atomic<bool> enabled{EnabledFromEnv()};
  return enabled;
}

/// Doubles in reports are formatted with enough digits to round-trip span
/// totals but without printf's locale pitfalls.
std::string JsonNumber(double v) { return StrFormat("%.9g", v); }

}  // namespace

bool Enabled() { return EnabledFlag().load(std::memory_order_relaxed); }

void SetEnabled(bool enabled) {
  EnabledFlag().store(enabled, std::memory_order_relaxed);
}

void Gauge::Add(double delta) {
  double current = value_.load(std::memory_order_relaxed);
  while (!value_.compare_exchange_weak(current, current + delta,
                                       std::memory_order_relaxed)) {
  }
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      buckets_(new std::atomic<int64_t>[bounds_.size() + 1]) {
  for (size_t i = 0; i + 1 < bounds_.size(); ++i) {
    OTIF_CHECK_LT(bounds_[i], bounds_[i + 1]) << "bounds must ascend";
  }
  for (size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::Record(double value) {
  size_t i = 0;
  while (i < bounds_.size() && value > bounds_[i]) ++i;
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.Add(value);
}

int64_t Histogram::bucket_count(size_t i) const {
  OTIF_CHECK_LE(i, bounds_.size());
  return buckets_[i].load(std::memory_order_relaxed);
}

void Histogram::Reset() {
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.Reset();
}

std::vector<double> DefaultLatencyBounds() {
  return {1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0};
}

const CounterSample* FindCounter(const TelemetrySnapshot& snapshot,
                                 const std::string& name) {
  for (const CounterSample& s : snapshot.counters) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

const GaugeSample* FindGauge(const TelemetrySnapshot& snapshot,
                             const std::string& name) {
  for (const GaugeSample& s : snapshot.gauges) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

const SpanSample* FindSpan(const TelemetrySnapshot& snapshot,
                           const std::string& name) {
  for (const SpanSample& s : snapshot.spans) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

MetricsRegistry& MetricsRegistry::Global() {
  // Leaked: worker threads may still record during static destruction.
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Counter>& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Gauge>& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Histogram>& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>(std::move(bounds));
  return slot.get();
}

TelemetrySnapshot MetricsRegistry::Snapshot() const {
  TelemetrySnapshot snapshot;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, counter] : counters_) {
    snapshot.counters.push_back({name, counter->value()});
  }
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges.push_back({name, gauge->value()});
  }
  for (const auto& [name, histogram] : histograms_) {
    HistogramSample sample;
    sample.name = name;
    sample.bounds = histogram->bounds();
    for (size_t i = 0; i <= sample.bounds.size(); ++i) {
      sample.buckets.push_back(histogram->bucket_count(i));
    }
    sample.count = histogram->count();
    sample.sum = histogram->sum();
    snapshot.histograms.push_back(std::move(sample));
  }
  return snapshot;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, counter] : counters_) counter->Reset();
  for (const auto& [name, gauge] : gauges_) gauge->Reset();
  for (const auto& [name, histogram] : histograms_) histogram->Reset();
}

std::string SnapshotToJson(const TelemetrySnapshot& snapshot) {
  // Metric names are code-controlled identifiers (no quotes/backslashes),
  // so they embed directly; keys within each section stay in name order.
  std::ostringstream out;
  out << "{\n  \"counters\": {";
  for (size_t i = 0; i < snapshot.counters.size(); ++i) {
    const CounterSample& s = snapshot.counters[i];
    out << (i == 0 ? "\n" : ",\n") << "    \"" << s.name << "\": " << s.value;
  }
  out << (snapshot.counters.empty() ? "" : "\n  ") << "},\n  \"gauges\": {";
  for (size_t i = 0; i < snapshot.gauges.size(); ++i) {
    const GaugeSample& s = snapshot.gauges[i];
    out << (i == 0 ? "\n" : ",\n") << "    \"" << s.name
        << "\": " << JsonNumber(s.value);
  }
  out << (snapshot.gauges.empty() ? "" : "\n  ") << "},\n  \"histograms\": {";
  for (size_t i = 0; i < snapshot.histograms.size(); ++i) {
    const HistogramSample& s = snapshot.histograms[i];
    out << (i == 0 ? "\n" : ",\n") << "    \"" << s.name
        << "\": {\"count\": " << s.count << ", \"sum\": " << JsonNumber(s.sum)
        << ", \"bounds\": [";
    for (size_t b = 0; b < s.bounds.size(); ++b) {
      out << (b == 0 ? "" : ", ") << JsonNumber(s.bounds[b]);
    }
    out << "], \"buckets\": [";
    for (size_t b = 0; b < s.buckets.size(); ++b) {
      out << (b == 0 ? "" : ", ") << s.buckets[b];
    }
    out << "]}";
  }
  out << (snapshot.histograms.empty() ? "" : "\n  ") << "},\n  \"spans\": {";
  for (size_t i = 0; i < snapshot.spans.size(); ++i) {
    const SpanSample& s = snapshot.spans[i];
    out << (i == 0 ? "\n" : ",\n") << "    \"" << s.name
        << "\": {\"count\": " << s.count
        << ", \"total_seconds\": " << JsonNumber(s.total_seconds)
        << ", \"min_seconds\": " << JsonNumber(s.min_seconds)
        << ", \"max_seconds\": " << JsonNumber(s.max_seconds) << "}";
  }
  out << (snapshot.spans.empty() ? "" : "\n  ") << "}\n}";
  return out.str();
}

std::string SnapshotToTable(const TelemetrySnapshot& snapshot) {
  std::ostringstream out;
  if (!snapshot.spans.empty()) {
    TextTable spans({"span", "count", "total s", "min s", "max s"});
    for (const SpanSample& s : snapshot.spans) {
      spans.AddRow({s.name, StrFormat("%lld", static_cast<long long>(s.count)),
                    StrFormat("%.4f", s.total_seconds),
                    StrFormat("%.6f", s.min_seconds),
                    StrFormat("%.6f", s.max_seconds)});
    }
    out << spans.ToString() << "\n";
  }
  if (!snapshot.counters.empty()) {
    TextTable counters({"counter", "value"});
    for (const CounterSample& s : snapshot.counters) {
      counters.AddRow(
          {s.name, StrFormat("%lld", static_cast<long long>(s.value))});
    }
    out << counters.ToString() << "\n";
  }
  if (!snapshot.gauges.empty()) {
    TextTable gauges({"gauge", "value"});
    for (const GaugeSample& s : snapshot.gauges) {
      gauges.AddRow({s.name, StrFormat("%.6f", s.value)});
    }
    out << gauges.ToString() << "\n";
  }
  if (!snapshot.histograms.empty()) {
    TextTable histograms({"histogram", "count", "sum", "mean"});
    for (const HistogramSample& s : snapshot.histograms) {
      histograms.AddRow(
          {s.name, StrFormat("%lld", static_cast<long long>(s.count)),
           StrFormat("%.4f", s.sum),
           StrFormat("%.6f", s.count > 0 ? s.sum / s.count : 0.0)});
    }
    out << histograms.ToString() << "\n";
  }
  return out.str();
}

}  // namespace otif::telemetry
