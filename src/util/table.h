#ifndef OTIF_UTIL_TABLE_H_
#define OTIF_UTIL_TABLE_H_

#include <string>
#include <vector>

namespace otif {

/// Column-aligned ASCII table used by the benchmark harnesses to print
/// paper-style tables (Table 2/3/4) and figure series.
class TextTable {
 public:
  /// Creates a table with the given column headers.
  explicit TextTable(std::vector<std::string> headers);

  /// Appends a row; must have exactly as many cells as there are headers.
  void AddRow(std::vector<std::string> cells);

  /// Renders the table with aligned columns and a header separator.
  std::string ToString() const;

  /// Renders as CSV (no alignment), for machine consumption.
  std::string ToCsv() const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace otif

#endif  // OTIF_UTIL_TABLE_H_
