#include "util/table.h"

#include <algorithm>

#include "util/logging.h"

namespace otif {
namespace {

std::string CsvEscape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  OTIF_CHECK(!headers_.empty());
}

void TextTable::AddRow(std::vector<std::string> cells) {
  OTIF_CHECK_EQ(cells.size(), headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::ToString() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (size_t c = 0; c < row.size(); ++c) {
      line += row[c];
      if (c + 1 < row.size()) {
        line.append(widths[c] - row[c].size() + 2, ' ');
      }
    }
    line += '\n';
    return line;
  };
  std::string out = render_row(headers_);
  size_t total = 0;
  for (size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  }
  out.append(total, '-');
  out += '\n';
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

std::string TextTable::ToCsv() const {
  std::string out;
  auto render = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out += ',';
      out += CsvEscape(row[c]);
    }
    out += '\n';
  };
  render(headers_);
  for (const auto& row : rows_) render(row);
  return out;
}

}  // namespace otif
