#ifndef OTIF_UTIL_TRACE_H_
#define OTIF_UTIL_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

#include "util/telemetry.h"
#include "util/trace_timeline.h"

namespace otif::telemetry {

/// Aggregation point for one named span: every ScopedSpan that closes over
/// it folds its wall-clock duration in with relaxed atomics (count, total,
/// min, max) — no locks, no per-event allocation, contention-free across
/// the worker pool. Sites live in a process-wide registry keyed by name and
/// are never destroyed.
class SpanSite {
 public:
  explicit SpanSite(std::string name);

  SpanSite(const SpanSite&) = delete;
  SpanSite& operator=(const SpanSite&) = delete;

  const std::string& name() const { return name_; }

  /// Folds one completed span of `seconds` into the aggregate.
  void Record(double seconds);

  SpanSample Sample() const;
  void Reset();

 private:
  const std::string name_;
  std::atomic<int64_t> count_{0};
  std::atomic<double> total_{0.0};
  std::atomic<double> min_{0.0};  // Set to +inf by the ctor until recorded.
  std::atomic<double> max_{0.0};
};

/// Returns the span site registered under `name`, creating it on first use.
/// The pointer is stable for the process lifetime; hot paths should resolve
/// it once (OTIF_SPAN does this with a function-local static).
SpanSite* GetSpan(const std::string& name);

/// RAII span: samples the steady clock on construction and folds the
/// elapsed wall-clock into `site` on destruction; when the timeline is
/// armed it also emits begin/end events into the calling thread's ring
/// (trace_timeline.h). With everything disabled at construction the span
/// is inert — one relaxed atomic load (the shared flag word), no clock
/// reads, no writes. Spans may nest freely (each records its own inclusive
/// time).
class ScopedSpan {
 public:
  explicit ScopedSpan(SpanSite* site) {
    const uint32_t flags = Flags();
    if (flags & kTelemetryFlag) {
      site_ = site;
      start_ = std::chrono::steady_clock::now();
    }
    if (flags & kTimelineFlag) {
      timeline_site_ = site;
      timeline::EmitBegin(site);
    }
    if (flags & kProfilerFlag) {
      // Publish this span as the thread's innermost so the sampling
      // profiler can attribute SIGPROF samples to a stage (profiler.h).
      profile_parent_ = timeline::ExchangeCurrentSpanSite(site);
      profile_pushed_ = true;
    }
  }

  ~ScopedSpan() {
    if (site_ != nullptr) {
      site_->Record(std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - start_)
                        .count());
    }
    if (timeline_site_ != nullptr) timeline::EmitEnd(timeline_site_);
    // Keyed on the constructor's flag sample, not a fresh one, so every
    // push is popped even if the profiler stops mid-span.
    if (profile_pushed_) timeline::ExchangeCurrentSpanSite(profile_parent_);
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  SpanSite* site_ = nullptr;
  const SpanSite* timeline_site_ = nullptr;
  const SpanSite* profile_parent_ = nullptr;
  bool profile_pushed_ = false;
  std::chrono::steady_clock::time_point start_;
};

/// Captures every metric *and* every span site, sorted by name.
TelemetrySnapshot CaptureSnapshot();

/// Zeroes all metrics and span aggregates (registrations survive). Call
/// between benchmark repetitions so run reports do not accumulate.
void ResetAll();

#define OTIF_SPAN_CONCAT_INNER_(a, b) a##b
#define OTIF_SPAN_CONCAT_(a, b) OTIF_SPAN_CONCAT_INNER_(a, b)

/// Scoped wall-clock span over the rest of the enclosing block:
///   OTIF_SPAN("detect");
/// `name` must be constant at the call site (the site is resolved once into
/// a function-local static); use GetSpan + ScopedSpan for dynamic names.
#define OTIF_SPAN(name)                                                     \
  static ::otif::telemetry::SpanSite* const OTIF_SPAN_CONCAT_(              \
      otif_span_site_, __LINE__) = ::otif::telemetry::GetSpan(name);        \
  ::otif::telemetry::ScopedSpan OTIF_SPAN_CONCAT_(otif_span_, __LINE__)(    \
      OTIF_SPAN_CONCAT_(otif_span_site_, __LINE__))

}  // namespace otif::telemetry

#endif  // OTIF_UTIL_TRACE_H_
