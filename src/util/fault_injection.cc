#include "util/fault_injection.h"

#include <cerrno>
#include <cstdlib>
#include <map>
#include <mutex>

#include "util/logging.h"
#include "util/strings.h"
#include "util/trace_timeline.h"

namespace otif::fault {
namespace {

/// SplitMix64-style stateless mix of (seed, token): the fault decision for
/// a given token is a pure function, so a replayed run reproduces the same
/// faults no matter how threads interleave.
uint64_t MixToken(uint64_t seed, uint64_t token) {
  uint64_t z = seed + 0x9e3779b97f4a7c15ull * (token + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// Uniform double in [0, 1) from the mixed bits.
double MixToUnit(uint64_t z) {
  return static_cast<double>(z >> 11) * 0x1.0p-53;
}

struct Registry {
  std::mutex mu;
  std::map<std::string, Site*> sites;  // Values leak (process lifetime).
  // Configs published to sites. Retired on reconfigure but leaked rather
  // than freed: a racing reader may still hold the pointer, and chaos runs
  // reconfigure a handful of times per process at most.
  std::vector<const internal::SiteConfig*> configs;
};

Registry& GetRegistry() {
  static Registry* const registry = new Registry;
  return *registry;
}

bool ParseKind(std::string_view text, Kind* out) {
  if (text == "error") {
    *out = Kind::kError;
  } else if (text == "corrupt") {
    *out = Kind::kCorrupt;
  } else if (text == "stall") {
    *out = Kind::kStall;
  } else if (text == "deny") {
    *out = Kind::kDeny;
  } else if (text == "close") {
    *out = Kind::kClose;
  } else {
    return false;
  }
  return true;
}

bool ParseInt64(std::string_view text, int64_t* out) {
  if (text.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const std::string copy(text);
  const long long value = std::strtoll(copy.c_str(), &end, 10);
  if (errno != 0 || end != copy.c_str() + copy.size()) return false;
  *out = value;
  return true;
}

bool ParseRate(std::string_view text, double* out) {
  if (text.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const std::string copy(text);
  const double value = std::strtod(copy.c_str(), &end);
  if (errno != 0 || end != copy.c_str() + copy.size()) return false;
  if (value < 0.0 || value > 1.0) return false;
  *out = value;
  return true;
}

/// Uninstalls every site's config under the registry lock. Returns whether
/// any site had been armed (for logging).
void DisarmAllLocked(Registry& registry) {
  for (auto& [name, site] : registry.sites) site->SetConfig(nullptr);
}

}  // namespace

Site::Site(std::string name)
    : name_(std::move(name)),
      injected_(telemetry::MetricsRegistry::Global().GetCounter(
          "fault.injected." + name_)) {}

bool Site::Inject(int64_t clip, int64_t token, Injection* out) {
  const internal::SiteConfig* config =
      config_.load(std::memory_order_acquire);
  if (config == nullptr) return false;
  if (config->clip >= 0 && clip != config->clip) return false;
  // The auto-token counter only advances for decisions that passed the
  // clip filter, so clip-scoped specs see a dense token sequence.
  const uint64_t effective_token =
      token >= 0 ? static_cast<uint64_t>(token)
                 : hits_.fetch_add(1, std::memory_order_relaxed);
  if (MixToUnit(MixToken(config->seed, effective_token)) >= config->rate) {
    return false;
  }
  out->kind = config->kind;
  out->stall_ms = config->stall_ms;
  injected_->Add(1);
  return true;
}

bool Site::Inject(int64_t token, Injection* out) {
  return Inject(telemetry::timeline::CurrentContext().clip, token, out);
}

Site* GetSite(const std::string& name) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  auto it = registry.sites.find(name);
  if (it == registry.sites.end()) {
    it = registry.sites.emplace(name, new Site(name)).first;
  }
  return it->second;
}

Status ConfigureFaults(const std::string& spec) {
  // Parse the whole spec before touching any site so a malformed entry
  // leaves the previous configuration fully intact.
  struct Entry {
    std::string site;
    internal::SiteConfig config;
  };
  std::vector<Entry> entries;
  for (const std::string& raw : StrSplit(spec, ',')) {
    const std::string_view item = StripWhitespace(raw);
    if (item.empty()) continue;
    const std::vector<std::string> fields = StrSplit(item, ':');
    if (fields.size() < 4) {
      return Status::InvalidArgument(
          StrFormat("fault spec entry \"%s\": want site:kind:rate:seed",
                    std::string(item).c_str()));
    }
    Entry entry;
    entry.site = fields[0];
    if (entry.site.empty()) {
      return Status::InvalidArgument("fault spec entry has empty site name");
    }
    if (!ParseKind(fields[1], &entry.config.kind)) {
      return Status::InvalidArgument(
          StrFormat("fault spec \"%s\": unknown kind \"%s\"",
                    entry.site.c_str(), fields[1].c_str()));
    }
    if (!ParseRate(fields[2], &entry.config.rate)) {
      return Status::InvalidArgument(
          StrFormat("fault spec \"%s\": rate \"%s\" not in [0, 1]",
                    entry.site.c_str(), fields[2].c_str()));
    }
    int64_t seed = 0;
    if (!ParseInt64(fields[3], &seed) || seed < 0) {
      return Status::InvalidArgument(
          StrFormat("fault spec \"%s\": bad seed \"%s\"", entry.site.c_str(),
                    fields[3].c_str()));
    }
    entry.config.seed = static_cast<uint64_t>(seed);
    for (size_t i = 4; i < fields.size(); ++i) {
      const std::string& option = fields[i];
      int64_t value = 0;
      if (StartsWith(option, "clip=") &&
          ParseInt64(std::string_view(option).substr(5), &value) &&
          value >= 0) {
        entry.config.clip = value;
      } else if (StartsWith(option, "ms=") &&
                 ParseInt64(std::string_view(option).substr(3), &value) &&
                 value >= 0) {
        entry.config.stall_ms = static_cast<int>(value);
      } else {
        return Status::InvalidArgument(
            StrFormat("fault spec \"%s\": bad option \"%s\"",
                      entry.site.c_str(), option.c_str()));
      }
    }
    entries.push_back(std::move(entry));
  }

  Registry& registry = GetRegistry();
  {
    std::lock_guard<std::mutex> lock(registry.mu);
    DisarmAllLocked(registry);
    for (const Entry& entry : entries) {
      auto it = registry.sites.find(entry.site);
      if (it == registry.sites.end()) {
        it = registry.sites.emplace(entry.site, new Site(entry.site)).first;
      }
      auto* config = new internal::SiteConfig(entry.config);
      registry.configs.push_back(config);
      it->second->SetConfig(config);
    }
  }
  telemetry::internal::SetFlag(telemetry::kFaultFlag, !entries.empty());
  return Status::OK();
}

void ClearFaults() {
  telemetry::internal::SetFlag(telemetry::kFaultFlag, false);
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  DisarmAllLocked(registry);
}

void InitFaultsFromEnv() {
  const char* spec = std::getenv("OTIF_FAULTS");
  if (spec == nullptr || spec[0] == '\0') return;
  const Status status = ConfigureFaults(spec);
  if (!status.ok()) {
    OTIF_LOG(kWarning) << "ignoring OTIF_FAULTS: " << status.ToString();
    return;
  }
  std::vector<std::string> armed = ArmedSites();
  OTIF_LOG(kWarning) << "fault injection armed for " << armed.size()
                     << " site(s): " << StrJoin(armed, ", ");
}

std::vector<std::string> ArmedSites() {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  std::vector<std::string> armed;
  for (const auto& [name, site] : registry.sites) {
    if (site->armed()) armed.push_back(name);
  }
  return armed;
}

}  // namespace otif::fault
