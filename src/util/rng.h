#ifndef OTIF_UTIL_RNG_H_
#define OTIF_UTIL_RNG_H_

#include <cmath>
#include <cstdint>

#include "util/logging.h"

namespace otif {

/// Deterministic pseudo-random number generator (xoshiro256**, seeded via
/// SplitMix64). Every stochastic component in OTIF takes an explicit Rng so
/// that datasets, model training, and experiments are reproducible from a
/// single seed.
class Rng {
 public:
  explicit Rng(uint64_t seed) { Seed(seed); }

  /// Re-seeds the generator; identical seeds yield identical streams.
  void Seed(uint64_t seed) {
    // SplitMix64 expansion of the seed into the 256-bit state.
    uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
    has_cached_gaussian_ = false;
  }

  /// Uniform 64-bit value.
  uint64_t NextUint64() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) {
    OTIF_CHECK_LE(lo, hi);
    return lo + (hi - lo) * NextDouble();
  }

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t UniformInt(uint64_t n) {
    OTIF_CHECK_GT(n, 0u);
    // Rejection sampling removes modulo bias.
    const uint64_t threshold = (0 - n) % n;
    for (;;) {
      const uint64_t r = NextUint64();
      if (r >= threshold) return r % n;
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    OTIF_CHECK_LE(lo, hi);
    return lo + static_cast<int64_t>(
                    UniformInt(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Bernoulli draw with probability p of returning true.
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Standard normal via Box-Muller (cached pair).
  double Gaussian() {
    if (has_cached_gaussian_) {
      has_cached_gaussian_ = false;
      return cached_gaussian_;
    }
    double u1 = 0.0;
    while (u1 <= 1e-300) u1 = NextDouble();
    const double u2 = NextDouble();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * M_PI * u2;
    cached_gaussian_ = r * std::sin(theta);
    has_cached_gaussian_ = true;
    return r * std::cos(theta);
  }

  /// Normal draw with the given mean and standard deviation.
  double Gaussian(double mean, double stddev) {
    return mean + stddev * Gaussian();
  }

  /// Exponential draw with the given rate (mean 1/rate).
  double Exponential(double rate) {
    OTIF_CHECK_GT(rate, 0.0);
    double u = 0.0;
    while (u <= 1e-300) u = NextDouble();
    return -std::log(u) / rate;
  }

  /// Derives an independent child generator (for splitting streams across
  /// components without coupling their consumption order).
  Rng Fork() { return Rng(NextUint64()); }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace otif

#endif  // OTIF_UTIL_RNG_H_
