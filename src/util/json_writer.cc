#include "util/json_writer.h"

#include <cmath>

#include "util/logging.h"
#include "util/strings.h"

namespace otif {

void JsonWriter::BeforeValue() {
  OTIF_CHECK(!done_) << "top-level JSON value already complete";
  if (scopes_.empty()) {
    // This value is the whole document.
    return;
  }
  if (scopes_.back() == Scope::kObject) {
    OTIF_CHECK(key_pending_) << "object member written without Key()";
    key_pending_ = false;
    return;
  }
  if (has_element_.back()) out_ += ", ";
  has_element_.back() = true;
}

void JsonWriter::AppendEscaped(std::string_view text) {
  out_ += '"';
  for (const char c : text) {
    switch (c) {
      case '"':
        out_ += "\\\"";
        break;
      case '\\':
        out_ += "\\\\";
        break;
      case '\n':
        out_ += "\\n";
        break;
      case '\r':
        out_ += "\\r";
        break;
      case '\t':
        out_ += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out_ += StrFormat("\\u%04x", c);
        } else {
          out_ += c;
        }
    }
  }
  out_ += '"';
}

JsonWriter& JsonWriter::BeginObject() {
  BeforeValue();
  out_ += '{';
  scopes_.push_back(Scope::kObject);
  has_element_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  OTIF_CHECK(!scopes_.empty() && scopes_.back() == Scope::kObject);
  OTIF_CHECK(!key_pending_) << "Key() without a value";
  out_ += '}';
  scopes_.pop_back();
  has_element_.pop_back();
  if (scopes_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  BeforeValue();
  out_ += '[';
  scopes_.push_back(Scope::kArray);
  has_element_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  OTIF_CHECK(!scopes_.empty() && scopes_.back() == Scope::kArray);
  out_ += ']';
  scopes_.pop_back();
  has_element_.pop_back();
  if (scopes_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::Key(std::string_view key) {
  OTIF_CHECK(!scopes_.empty() && scopes_.back() == Scope::kObject)
      << "Key() outside an object";
  OTIF_CHECK(!key_pending_) << "Key() twice in a row";
  if (has_element_.back()) out_ += ", ";
  has_element_.back() = true;
  AppendEscaped(key);
  out_ += ": ";
  key_pending_ = true;
  return *this;
}

JsonWriter& JsonWriter::Value(std::string_view value) {
  BeforeValue();
  AppendEscaped(value);
  if (scopes_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::Value(double value) {
  BeforeValue();
  if (std::isfinite(value)) {
    out_ += StrFormat("%.9g", value);
  } else {
    out_ += "null";
  }
  if (scopes_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::Value(int64_t value) {
  BeforeValue();
  out_ += StrFormat("%lld", static_cast<long long>(value));
  if (scopes_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::Value(uint64_t value) {
  BeforeValue();
  out_ += StrFormat("%llu", static_cast<unsigned long long>(value));
  if (scopes_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::Value(bool value) {
  BeforeValue();
  out_ += value ? "true" : "false";
  if (scopes_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::Null() {
  BeforeValue();
  out_ += "null";
  if (scopes_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::RawValue(std::string_view json) {
  BeforeValue();
  out_ += json;
  if (scopes_.empty()) done_ = true;
  return *this;
}

}  // namespace otif
