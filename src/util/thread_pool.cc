#include "util/thread_pool.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>

#include "util/logging.h"
#include "util/telemetry.h"

namespace otif {
namespace {

/// Pool-wide telemetry, resolved once. busy_seconds accumulates per-task
/// execution time (inline path included), so
///   utilization = busy_seconds / (wall_seconds * lanes)
/// over any measurement interval. queue_depth samples the number of active
/// batches whenever one is enqueued.
struct PoolTelemetry {
  telemetry::Counter* tasks;
  telemetry::Counter* batches;
  telemetry::Gauge* busy_seconds;
  telemetry::Histogram* queue_depth;
};

const PoolTelemetry& GetPoolTelemetry() {
  static const PoolTelemetry t{
      telemetry::MetricsRegistry::Global().GetCounter(
          "threadpool.tasks_executed"),
      telemetry::MetricsRegistry::Global().GetCounter("threadpool.batches"),
      telemetry::MetricsRegistry::Global().GetGauge("threadpool.busy_seconds"),
      telemetry::MetricsRegistry::Global().GetHistogram(
          "threadpool.queue_depth", {1.0, 2.0, 4.0, 8.0, 16.0, 32.0}),
  };
  return t;
}

/// Runs one task, charging its wall-clock to the pool accumulators when
/// telemetry is on.
void RunTask(const std::function<void(int64_t)>& fn, int64_t index) {
  if (!telemetry::Enabled()) {
    fn(index);
    return;
  }
  const PoolTelemetry& t = GetPoolTelemetry();
  const auto start = std::chrono::steady_clock::now();
  fn(index);
  t.busy_seconds->Add(std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - start)
                          .count());
  t.tasks->Add(1);
}

int HardwareThreadCount() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

int DefaultThreadCount() {
  if (const char* env = std::getenv("OTIF_WORKERS")) {
    return ThreadPool::ParseWorkerEnv(env, HardwareThreadCount());
  }
  return HardwareThreadCount();
}

std::mutex g_default_mu;
std::unique_ptr<ThreadPool>& DefaultSlot() {
  static std::unique_ptr<ThreadPool> pool;
  return pool;
}

}  // namespace

ThreadPool::ThreadPool(int num_threads)
    : num_threads_(std::max(1, num_threads)) {
  workers_.reserve(static_cast<size_t>(num_threads_ - 1));
  for (int i = 0; i < num_threads_ - 1; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::RunOne(Batch* batch, int64_t index) {
  // Run under the submitter's trace context (no-op for the submitter
  // itself; workers inherit it for the duration of the task).
  telemetry::timeline::ScopedContext scope(batch->ctx);
  RunTask(*batch->fn, index);
  const int64_t done = batch->completed.fetch_add(1) + 1;
  if (done == batch->n) {
    // Lock to pair with the waiter's predicate check before notifying.
    { std::lock_guard<std::mutex> lock(mu_); }
    done_cv_.notify_all();
  }
}

void ThreadPool::DrainBatch(Batch* batch) {
  for (;;) {
    const int64_t i = batch->next.fetch_add(1);
    if (i >= batch->n) return;
    RunOne(batch, i);
  }
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::shared_ptr<Batch> batch;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] {
        if (shutdown_) return true;
        for (const auto& b : active_) {
          if (b->next.load() < b->n) return true;
        }
        return false;
      });
      if (shutdown_) return;
      for (const auto& b : active_) {
        if (b->next.load() < b->n) {
          batch = b;
          break;
        }
      }
    }
    if (batch != nullptr) DrainBatch(batch.get());
  }
}

void ThreadPool::ParallelFor(int64_t n,
                             const std::function<void(int64_t)>& fn) {
  if (n <= 0) return;
  if (workers_.empty() || n == 1) {
    if (telemetry::Enabled()) GetPoolTelemetry().batches->Add(1);
    for (int64_t i = 0; i < n; ++i) RunTask(fn, i);
    return;
  }
  auto batch = std::make_shared<Batch>();
  batch->n = n;
  batch->fn = &fn;
  batch->ctx = telemetry::timeline::CurrentContext();
  {
    std::lock_guard<std::mutex> lock(mu_);
    active_.push_back(batch);
    if (telemetry::Enabled()) {
      const PoolTelemetry& t = GetPoolTelemetry();
      t.batches->Add(1);
      t.queue_depth->Record(static_cast<double>(active_.size()));
    }
  }
  work_cv_.notify_all();

  // The caller participates: claim indices until none are left, then wait
  // for in-flight indices on other threads.
  DrainBatch(batch.get());
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] { return batch->completed.load() == n; });
    active_.erase(std::find(active_.begin(), active_.end(), batch));
  }
}

int ThreadPool::ParseWorkerEnv(const char* value, int fallback) {
  if (value != nullptr && *value != '\0') {
    char* end = nullptr;
    const long n = std::strtol(value, &end, 10);
    if (end != nullptr && *end == '\0' && n >= 1 && n <= 1 << 16) {
      return static_cast<int>(n);
    }
  }
  OTIF_LOG(kWarning) << "OTIF_WORKERS=\"" << (value != nullptr ? value : "")
                     << "\" is not a positive integer; using " << fallback
                     << " worker thread(s)";
  return fallback;
}

ThreadPool* ThreadPool::Default() {
  std::lock_guard<std::mutex> lock(g_default_mu);
  std::unique_ptr<ThreadPool>& slot = DefaultSlot();
  if (slot == nullptr) slot = std::make_unique<ThreadPool>(DefaultThreadCount());
  return slot.get();
}

void ThreadPool::SetDefaultThreads(int num_threads) {
  std::lock_guard<std::mutex> lock(g_default_mu);
  DefaultSlot() = std::make_unique<ThreadPool>(num_threads);
}

}  // namespace otif
