#include "util/strings.h"

#include <cstdio>

namespace otif {

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::vector<std::string> StrSplit(std::string_view text, char sep) {
  std::vector<std::string> parts;
  size_t start = 0;
  for (size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      parts.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return parts;
}

std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

std::string_view StripWhitespace(std::string_view text) {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end &&
         (text[begin] == ' ' || text[begin] == '\t' || text[begin] == '\n' ||
          text[begin] == '\r')) {
    ++begin;
  }
  while (end > begin &&
         (text[end - 1] == ' ' || text[end - 1] == '\t' ||
          text[end - 1] == '\n' || text[end - 1] == '\r')) {
    --end;
  }
  return text.substr(begin, end - begin);
}

}  // namespace otif
