#ifndef OTIF_UTIL_LOGGING_H_
#define OTIF_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace otif {

/// Severity levels for OTIF_LOG.
enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kFatal = 4,
};

/// Sets the minimum severity that is emitted to stderr. Defaults to kInfo.
void SetLogThreshold(LogLevel level);
LogLevel GetLogThreshold();

/// Parses a severity name into *level: "debug", "info", "warning" (or
/// "warn"), "error", "fatal" (case-insensitive), or a numeric 0-4. Returns
/// false on anything else, leaving *level untouched.
bool ParseLogLevel(const std::string& text, LogLevel* level);

/// Applies the OTIF_LOG_LEVEL environment variable via SetLogThreshold.
/// Unset leaves the threshold unchanged; an unparsable value logs a warning
/// and changes nothing. Returns true when a level was applied. Shared
/// startup hook for benches, examples, and the eval harness.
bool InitLogLevelFromEnv();

namespace internal {

/// Callback invoked (at most once per process, with the failure message)
/// right before a kFatal log aborts — the timeline flight recorder
/// registers itself here so fatal CHECK failures leave a postmortem dump.
/// The handler must be async-signal-unsafe-tolerant only in the sense that
/// it runs on the failing thread with the process still alive.
using FatalHandler = void (*)(const char* message);
void SetFatalHandler(FatalHandler handler);

}  // namespace internal

namespace internal {

/// Stream-style log message; emits on destruction. kFatal aborts.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Discards the streamed expression when below the threshold.
struct LogMessageVoidify {
  void operator&(std::ostream&) {}
};

}  // namespace internal

#define OTIF_LOG_INTERNAL(level)                                      \
  ::otif::internal::LogMessage(level, __FILE__, __LINE__).stream()

/// Usage: OTIF_LOG(kInfo) << "message " << value;
#define OTIF_LOG(severity)                                            \
  (::otif::LogLevel::severity < ::otif::GetLogThreshold())            \
      ? (void)0                                                       \
      : ::otif::internal::LogMessageVoidify() &                       \
            OTIF_LOG_INTERNAL(::otif::LogLevel::severity)

/// Aborts with a message when `condition` is false. Active in all builds;
/// used for internal invariants (not recoverable user errors).
#define OTIF_CHECK(condition)                                         \
  (condition) ? (void)0                                               \
              : ::otif::internal::LogMessageVoidify() &               \
                    OTIF_LOG_INTERNAL(::otif::LogLevel::kFatal)       \
                        << "Check failed: " #condition " "

#define OTIF_CHECK_OP_(a, b, op)                                         \
  OTIF_CHECK((a)op(b)) << "(" << (a) << " vs " << (b) << ") "
#define OTIF_CHECK_EQ(a, b) OTIF_CHECK_OP_(a, b, ==)
#define OTIF_CHECK_NE(a, b) OTIF_CHECK_OP_(a, b, !=)
#define OTIF_CHECK_LT(a, b) OTIF_CHECK_OP_(a, b, <)
#define OTIF_CHECK_LE(a, b) OTIF_CHECK_OP_(a, b, <=)
#define OTIF_CHECK_GT(a, b) OTIF_CHECK_OP_(a, b, >)
#define OTIF_CHECK_GE(a, b) OTIF_CHECK_OP_(a, b, >=)

/// Aborts when a Status-returning expression fails.
#define OTIF_CHECK_OK(expr)                                  \
  do {                                                       \
    ::otif::Status _otif_check_status = (expr);              \
    OTIF_CHECK(_otif_check_status.ok())                      \
        << _otif_check_status.ToString();                    \
  } while (0)

}  // namespace otif

#endif  // OTIF_UTIL_LOGGING_H_
