#ifndef OTIF_UTIL_JSON_WRITER_H_
#define OTIF_UTIL_JSON_WRITER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace otif {

/// Minimal streaming JSON emitter shared by the telemetry exporters, the
/// bench run reports, the timeline trace export, and the baseline files —
/// one implementation of escaping, separators, and number formatting
/// instead of hand-rolled printf JSON per binary.
///
/// Output is single-line JSON with a space after every ':' and ',' (still
/// strictly valid; pretty-print with `python3 -m json.tool` when a human
/// needs to read it). Calls must describe a well-formed document: a value
/// inside an object must be preceded by Key(), containers must be closed in
/// order, and exactly one top-level value must be written. Misuse aborts
/// via OTIF_CHECK (these are programming errors, not data errors).
///
///   JsonWriter w;
///   w.BeginObject();
///   w.Key("clips").Value(16);
///   w.Key("stages").BeginArray().Value("decode").Value("proxy").EndArray();
///   w.EndObject();
///   std::string json = std::move(w).TakeString();
class JsonWriter {
 public:
  JsonWriter() = default;

  JsonWriter(const JsonWriter&) = delete;
  JsonWriter& operator=(const JsonWriter&) = delete;

  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();

  /// Emits an object key (escaped); the next call must write its value.
  JsonWriter& Key(std::string_view key);

  JsonWriter& Value(std::string_view value);
  JsonWriter& Value(const char* value) {
    return Value(std::string_view(value));
  }
  JsonWriter& Value(const std::string& value) {
    return Value(std::string_view(value));
  }
  /// Doubles use %.9g (round-trips span totals); non-finite values are not
  /// representable in JSON and emit null instead.
  JsonWriter& Value(double value);
  JsonWriter& Value(int64_t value);
  JsonWriter& Value(uint64_t value);
  JsonWriter& Value(int value) { return Value(static_cast<int64_t>(value)); }
  JsonWriter& Value(bool value);
  JsonWriter& Null();

  /// Splices a pre-rendered JSON value verbatim (e.g. a nested document
  /// produced by another writer). The caller vouches for its validity.
  JsonWriter& RawValue(std::string_view json);

  /// The document so far (valid JSON once every container is closed).
  const std::string& str() const { return out_; }
  std::string TakeString() && { return std::move(out_); }

 private:
  enum class Scope : uint8_t { kObject, kArray };

  /// Emits the separator/validity bookkeeping common to every value.
  void BeforeValue();
  void AppendEscaped(std::string_view text);

  std::string out_;
  std::vector<Scope> scopes_;
  /// Whether the current container already holds an element (one flag per
  /// open scope, parallel to scopes_).
  std::vector<bool> has_element_;
  bool key_pending_ = false;
  bool done_ = false;  // A complete top-level value has been written.
};

}  // namespace otif

#endif  // OTIF_UTIL_JSON_WRITER_H_
