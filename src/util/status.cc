#include "util/status.h"

#include <cstdio>
#include <cstdlib>

namespace otif {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kCancelled:
      return "Cancelled";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

namespace internal {

void DieStatusOrMisuse(const char* what) {
  std::fprintf(stderr, "StatusOr misuse: %s\n", what);
  std::abort();
}

}  // namespace internal
}  // namespace otif
