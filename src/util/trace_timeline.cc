#include "util/trace_timeline.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <mutex>

#include "util/fault_injection.h"
#include "util/json_writer.h"
#include "util/logging.h"
#include "util/strings.h"
#include "util/trace.h"

namespace otif::telemetry::timeline {
namespace {

thread_local TraceContext t_context;

/// Innermost open span of this thread, for profiler sample attribution.
/// Written only by the owning thread (ScopedSpan); read by that thread's
/// own SIGPROF handler, so no atomics are needed.
thread_local const SpanSite* t_current_site = nullptr;

/// Nanoseconds since the process trace epoch (anchored on first use so
/// exported timestamps start near zero).
int64_t NowNs() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - epoch)
      .count();
}

constexpr size_t kDefaultCapacity = 1u << 15;

size_t RoundUpPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

std::atomic<size_t>& CapacitySetting() {
  static std::atomic<size_t> capacity{kDefaultCapacity};
  return capacity;
}

/// One ring slot. All fields are atomics with relaxed ordering so a
/// concurrent snapshot is race-free under TSan; logical consistency of a
/// record comes from the seqlock protocol on `seq`: the (single) writer
/// zeroes seq, writes the fields, then publishes seq = index + 1 with
/// release; a reader that observes seq == index + 1 before *and* after
/// reading the fields got an untorn record.
struct Slot {
  std::atomic<uint64_t> seq{0};
  std::atomic<const SpanSite*> site{nullptr};
  std::atomic<int64_t> ts_ns{0};
  std::atomic<int64_t> clip{-1};
  std::atomic<uint8_t> phase{0};
};

/// Single-writer ring buffer of the owning thread's most recent events.
/// The writer never blocks and never allocates after construction; any
/// thread may snapshot concurrently.
class ThreadBuffer {
 public:
  ThreadBuffer(uint64_t tid, size_t capacity)
      : tid_(tid), slots_(capacity), mask_(capacity - 1) {}

  void Emit(const SpanSite* site, char phase, int64_t ts_ns, int64_t clip) {
    const uint64_t h = head_.load(std::memory_order_relaxed);
    Slot& slot = slots_[h & mask_];
    slot.seq.store(0, std::memory_order_release);
    slot.site.store(site, std::memory_order_relaxed);
    slot.ts_ns.store(ts_ns, std::memory_order_relaxed);
    slot.clip.store(clip, std::memory_order_relaxed);
    slot.phase.store(static_cast<uint8_t>(phase), std::memory_order_relaxed);
    slot.seq.store(h + 1, std::memory_order_release);
    head_.store(h + 1, std::memory_order_release);
  }

  void Snapshot(std::vector<Event>* out) const {
    const uint64_t head = head_.load(std::memory_order_acquire);
    const uint64_t capacity = slots_.size();
    const uint64_t begin = head > capacity ? head - capacity : 0;
    for (uint64_t i = begin; i < head; ++i) {
      const Slot& slot = slots_[i & mask_];
      if (slot.seq.load(std::memory_order_acquire) != i + 1) continue;
      Event event;
      const SpanSite* site = slot.site.load(std::memory_order_relaxed);
      event.ts_ns = slot.ts_ns.load(std::memory_order_relaxed);
      event.clip = slot.clip.load(std::memory_order_relaxed);
      event.phase =
          static_cast<char>(slot.phase.load(std::memory_order_relaxed));
      // Seqlock re-check: discard the record if the writer lapped us while
      // we were reading (site pointers are immortal, so even a discarded
      // read never dereferenced anything invalid).
      if (slot.seq.load(std::memory_order_acquire) != i + 1) continue;
      event.name = site->name();
      event.tid = tid_;
      out->push_back(std::move(event));
    }
  }

  void Clear() {
    for (Slot& slot : slots_) slot.seq.store(0, std::memory_order_relaxed);
    head_.store(0, std::memory_order_relaxed);
  }

 private:
  const uint64_t tid_;
  std::vector<Slot> slots_;
  const uint64_t mask_;
  std::atomic<uint64_t> head_{0};
};

/// Owns every thread's ring. Buffers are never freed (a thread that exits
/// leaves its events readable for the flight recorder) and registration is
/// the only locked operation.
class BufferRegistry {
 public:
  static BufferRegistry& Global() {
    // Leaked: events may be emitted and dumped during static destruction.
    static BufferRegistry* registry = new BufferRegistry();
    return *registry;
  }

  ThreadBuffer* Register() {
    std::lock_guard<std::mutex> lock(mu_);
    const uint64_t tid = static_cast<uint64_t>(buffers_.size()) + 1;
    buffers_.push_back(std::make_unique<ThreadBuffer>(
        tid, CapacitySetting().load(std::memory_order_relaxed)));
    return buffers_.back().get();
  }

  std::vector<Event> Snapshot() const {
    std::vector<Event> events;
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (const auto& buffer : buffers_) buffer->Snapshot(&events);
    }
    std::stable_sort(events.begin(), events.end(),
                     [](const Event& a, const Event& b) {
                       return a.ts_ns < b.ts_ns;
                     });
    return events;
  }

  void Clear() {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& buffer : buffers_) buffer->Clear();
  }

 private:
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;  // Guarded by mu_.
};

ThreadBuffer* LocalBuffer() {
  thread_local ThreadBuffer* buffer = BufferRegistry::Global().Register();
  return buffer;
}

/// Flight-recorder arming and the dump destination, configured by
/// InitFromEnv (plain bools/strings: written once at startup).
struct RecorderConfig {
  bool dump_on_error = false;
  std::string dump_path = "otif_flight_record.json";
  std::string export_path;  // Empty: no atexit export.
};

RecorderConfig& Config() {
  static RecorderConfig* config = new RecorderConfig();
  return *config;
}

bool EnvIsFalse(const char* value) {
  return value == nullptr || *value == '\0' || std::strcmp(value, "0") == 0 ||
         std::strcmp(value, "off") == 0 || std::strcmp(value, "false") == 0;
}

bool EnvIsTrue(const char* value) {
  return value != nullptr &&
         (std::strcmp(value, "1") == 0 || std::strcmp(value, "on") == 0 ||
          std::strcmp(value, "true") == 0);
}

Status WriteFile(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  out << contents << "\n";
  out.flush();
  if (!out) return Status::IoError("short write to " + path);
  return Status::OK();
}

void ExportAtExit() {
  const Status status = WriteChromeTrace(Config().export_path);
  if (!status.ok()) {
    OTIF_LOG(kError) << "timeline export failed: " << status.ToString();
  }
}

/// Fatal-CHECK hook: dump the flight record before the process aborts.
/// Reentrancy guard in logging.cc (the handler is called at most once).
void FatalDumpHandler(const char* message) {
  const Status status = WriteFlightRecord(
      Config().dump_path, std::string("fatal: ") + message);
  if (status.ok()) {
    std::fprintf(stderr, "flight record written to %s\n",
                 Config().dump_path.c_str());
  }
}

}  // namespace

TraceContext CurrentContext() { return t_context; }

const SpanSite* CurrentSpanSite() { return t_current_site; }

const SpanSite* ExchangeCurrentSpanSite(const SpanSite* site) {
  const SpanSite* previous = t_current_site;
  t_current_site = site;
  return previous;
}

ScopedContext::ScopedContext(TraceContext context) : previous_(t_context) {
  t_context = context;
}

ScopedContext::~ScopedContext() { t_context = previous_; }

bool CollectionEnabled() { return (Flags() & kTimelineFlag) != 0; }

void SetCollectionEnabled(bool enabled) {
  internal::SetFlag(kTimelineFlag, enabled);
}

void SetBufferCapacity(size_t capacity) {
  CapacitySetting().store(RoundUpPow2(std::max<size_t>(capacity, 2)),
                          std::memory_order_relaxed);
}

size_t BufferCapacity() {
  return CapacitySetting().load(std::memory_order_relaxed);
}

void EmitBegin(const SpanSite* site) {
  LocalBuffer()->Emit(site, 'B', NowNs(), t_context.clip);
}

void EmitEnd(const SpanSite* site) {
  LocalBuffer()->Emit(site, 'E', NowNs(), t_context.clip);
}

std::vector<Event> SnapshotEvents() {
  return BufferRegistry::Global().Snapshot();
}

void ClearEvents() { BufferRegistry::Global().Clear(); }

std::string ToChromeTraceJson(const std::vector<Event>& events) {
  JsonWriter w;
  w.BeginObject();
  w.Key("traceEvents").BeginArray();
  for (const Event& event : events) {
    w.BeginObject();
    w.Key("name").Value(event.name);
    w.Key("ph").Value(std::string(1, event.phase));
    // Chrome trace timestamps are microseconds.
    w.Key("ts").Value(static_cast<double>(event.ts_ns) / 1e3);
    w.Key("pid").Value(1);
    w.Key("tid").Value(event.tid);
    w.Key("args").BeginObject().Key("clip").Value(event.clip).EndObject();
    w.EndObject();
  }
  w.EndArray();
  w.Key("displayTimeUnit").Value("ms");
  w.EndObject();
  return std::move(w).TakeString();
}

Status WriteChromeTrace(const std::string& path) {
  return WriteFile(path, ToChromeTraceJson(SnapshotEvents()));
}

Status WriteFlightRecord(const std::string& path, const std::string& reason) {
  JsonWriter w;
  w.BeginObject();
  w.Key("reason").Value(reason);
  w.Key("trace").RawValue(ToChromeTraceJson(SnapshotEvents()));
  w.Key("telemetry").RawValue(SnapshotToJson(CaptureSnapshot()));
  w.EndObject();
  return WriteFile(path, std::move(w).TakeString());
}

void ReportError(const Status& status, const std::string& where) {
  if (status.ok()) return;
  if (!Config().dump_on_error && !CollectionEnabled()) return;
  const std::string reason = where + ": " + status.ToString();
  const Status write_status = WriteFlightRecord(Config().dump_path, reason);
  if (write_status.ok()) {
    OTIF_LOG(kError) << reason << " — flight record written to "
                     << Config().dump_path;
  } else {
    OTIF_LOG(kError) << reason << " — flight record failed: "
                     << write_status.ToString();
  }
}

std::string DumpPath() { return Config().dump_path; }

void InitFromEnv() {
  static const bool initialized = [] {
    if (const char* env = std::getenv("OTIF_TRACE_TIMELINE_EVENTS")) {
      const long n = std::atol(env);
      if (n > 0) SetBufferCapacity(static_cast<size_t>(n));
    }
    if (const char* env = std::getenv("OTIF_DUMP_PATH")) {
      if (*env != '\0') Config().dump_path = env;
    }
    const char* timeline = std::getenv("OTIF_TRACE_TIMELINE");
    if (!EnvIsFalse(timeline)) {
      SetCollectionEnabled(true);
      Config().export_path = EnvIsTrue(timeline) ? "otif_trace.json"
                                                 : timeline;
      std::atexit(ExportAtExit);
    }
    if (EnvIsTrue(std::getenv("OTIF_DUMP_ON_ERROR"))) {
      SetCollectionEnabled(true);
      Config().dump_on_error = true;
    }
    // Any armed collector doubles as a crash flight recorder.
    if (CollectionEnabled()) {
      otif::internal::SetFatalHandler(FatalDumpHandler);
    }
    return true;
  }();
  (void)initialized;
}

}  // namespace otif::telemetry::timeline

namespace otif {

void InitObservabilityFromEnv() {
  InitLogLevelFromEnv();
  telemetry::timeline::InitFromEnv();
  fault::InitFaultsFromEnv();
}

}  // namespace otif
