#ifndef OTIF_UTIL_TELEMETRY_H_
#define OTIF_UTIL_TELEMETRY_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace otif::telemetry {

/// Bit flags of the observability subsystems, packed into one atomic so an
/// instrumentation site pays a single relaxed load to learn the state of
/// all of them (the "everything off" cost contract).
inline constexpr uint32_t kTelemetryFlag = 1u << 0;  // Aggregate metrics.
inline constexpr uint32_t kTimelineFlag = 1u << 1;   // Event ring buffers.
inline constexpr uint32_t kProgressFlag = 1u << 2;   // Live run progress.
inline constexpr uint32_t kProfilerFlag = 1u << 3;   // Sampling CPU profiler.
inline constexpr uint32_t kFaultFlag = 1u << 4;      // Fault injection armed.

/// Current flag word (one relaxed atomic load).
uint32_t Flags();

/// Whether aggregate telemetry collection is enabled. Initialized once from
/// the OTIF_TELEMETRY environment variable ("off", "0", or "false" disable
/// it; anything else, including unset, enables it) and overridable at
/// runtime. Disabled-mode cost is a single relaxed atomic load at every
/// instrumentation site: spans skip their clock reads and metric writers
/// are bypassed by the call sites that guard on Enabled().
bool Enabled();

/// Overrides the telemetry flag (benches and tests; not synchronized with
/// in-flight spans, so flip it only between runs).
void SetEnabled(bool enabled);

namespace internal {
/// Sets or clears one flag bit (used by trace_timeline to arm collection).
void SetFlag(uint32_t mask, bool enabled);
}  // namespace internal

/// Monotonically increasing integer metric (events, items processed).
/// Updates are one relaxed atomic add: contention-free across the worker
/// pool.
class Counter {
 public:
  void Add(int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Double-valued metric: Set overwrites (instantaneous readings), Add
/// accumulates via a CAS loop so concurrent writers never lose updates
/// (seconds accumulators).
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  void Add(double delta);
  double value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram: `bounds` are ascending inclusive upper bounds;
/// one extra overflow bucket catches everything above the last bound.
/// Record is a bucket scan plus two relaxed atomic adds — no locks, safe
/// from any number of threads.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Record(double value);

  const std::vector<double>& bounds() const { return bounds_; }
  /// Count in bucket `i` (i == bounds().size() is the overflow bucket).
  int64_t bucket_count(size_t i) const;
  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.value(); }
  void Reset();

 private:
  const std::vector<double> bounds_;
  const std::unique_ptr<std::atomic<int64_t>[]> buckets_;  // bounds+1 slots.
  std::atomic<int64_t> count_{0};
  Gauge sum_;
};

/// Default histogram bounds for latencies in seconds: 1us .. 10s,
/// decade-spaced.
std::vector<double> DefaultLatencyBounds();

// --- Snapshots ---------------------------------------------------------------

struct CounterSample {
  std::string name;
  int64_t value = 0;
};

struct GaugeSample {
  std::string name;
  double value = 0.0;
};

struct HistogramSample {
  std::string name;
  std::vector<double> bounds;
  std::vector<int64_t> buckets;  // bounds.size() + 1 entries.
  int64_t count = 0;
  double sum = 0.0;
};

/// Aggregate of one named span site (see trace.h): how often it ran and the
/// wall-clock it accumulated.
struct SpanSample {
  std::string name;
  int64_t count = 0;
  double total_seconds = 0.0;
  double min_seconds = 0.0;
  double max_seconds = 0.0;
};

/// Point-in-time copy of every registered metric, sorted by name. Spans are
/// populated by CaptureSnapshot() (trace.h); MetricsRegistry::Snapshot()
/// alone leaves them empty.
struct TelemetrySnapshot {
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;
  std::vector<SpanSample> spans;
};

/// The Prometheus exposition name a registered metric exports under:
/// "otif_" + `name` with every character outside [a-zA-Z0-9_:] replaced by
/// '_' (so "stage/detect.sim_seconds" becomes
/// "otif_stage_detect_sim_seconds"). Shared by registration-time collision
/// checking and the /metrics exporter so the two can never disagree.
std::string PrometheusMetricName(const std::string& name);

/// Estimated q-quantile (q in [0, 1]) of a histogram sample: finds the
/// bucket containing the quantile rank and interpolates linearly inside it
/// (the first bucket interpolates from 0, matching the non-negative metrics
/// the registry records). Ranks landing in the overflow bucket report the
/// last finite bound — a lower bound on the true quantile. Returns 0 for an
/// empty histogram.
double HistogramQuantile(const HistogramSample& sample, double q);

/// Lookup helpers for report builders; return nullptr when absent.
const CounterSample* FindCounter(const TelemetrySnapshot& snapshot,
                                 const std::string& name);
const GaugeSample* FindGauge(const TelemetrySnapshot& snapshot,
                             const std::string& name);
const SpanSample* FindSpan(const TelemetrySnapshot& snapshot,
                           const std::string& name);

// --- Registry ----------------------------------------------------------------

/// Process-wide, thread-safe registry of named metrics. Registration takes
/// a lock; the returned pointers are stable for the process lifetime, so
/// hot paths resolve a metric once (function-local static) and then update
/// it lock-free. Metrics are never unregistered; Reset() zeroes values but
/// keeps registrations.
class MetricsRegistry {
 public:
  /// The process-wide registry (leaked singleton: safe to use from worker
  /// threads during shutdown).
  static MetricsRegistry& Global();

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Returns the metric registered under `name`, creating it on first use.
  /// Repeated calls with the same name return the same pointer; a
  /// histogram's bounds are fixed by the first registration.
  ///
  /// Every first registration normalizes `name` through
  /// PrometheusMetricName and records it in a per-registry table; two
  /// *different* names (of any metric kind, spans included) that sanitize
  /// to the same exposition name are a fatal error at the second
  /// registration — a name collision would silently merge two series in
  /// every /metrics scrape.
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name,
                          std::vector<double> bounds = DefaultLatencyBounds());

  /// Enters a metric owned by another registry (the span registry in
  /// trace.cc) into this registry's sanitized-name collision table. Spans
  /// export to Prometheus under the same namespace as plain metrics, so
  /// they must claim their exposition names here too.
  void RegisterExternalName(const char* kind, const std::string& name);

  TelemetrySnapshot Snapshot() const;
  void Reset();

 private:
  /// Claims `name`'s sanitized exposition name for `kind` (fatal on
  /// collision with a previously claimed different name). Caller holds mu_.
  void ClaimName(const char* kind, const std::string& name);

  struct NameClaim {
    std::string kind;
    std::string original;
  };

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;      // mu_.
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;          // mu_.
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;  // mu_.
  std::map<std::string, NameClaim> claimed_names_;                // mu_.
};

// --- Exporters ---------------------------------------------------------------

/// Renders a snapshot as a JSON object with "counters", "gauges",
/// "histograms", and "spans" keys (stable name order, machine-readable).
/// Histogram entries carry "p50"/"p90"/"p99" estimates (HistogramQuantile).
std::string SnapshotToJson(const TelemetrySnapshot& snapshot);

/// Renders a snapshot as aligned text tables (one section per metric kind,
/// empty sections omitted) for human-readable run reports. Histogram rows
/// include p50/p90/p99 columns.
std::string SnapshotToTable(const TelemetrySnapshot& snapshot);

}  // namespace otif::telemetry

#endif  // OTIF_UTIL_TELEMETRY_H_
