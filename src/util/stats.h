#ifndef OTIF_UTIL_STATS_H_
#define OTIF_UTIL_STATS_H_

#include <vector>

namespace otif {

/// Arithmetic mean; 0 for an empty input.
double Mean(const std::vector<double>& values);

/// Median (average of middle two for even sizes); 0 for an empty input.
double Median(std::vector<double> values);

/// Population standard deviation; 0 for fewer than two values.
double StdDev(const std::vector<double>& values);

/// Linear-interpolated percentile, p in [0, 100]; 0 for an empty input.
double Percentile(std::vector<double> values, double p);

/// Weighted median: smallest value v such that the weight of values <= v is
/// at least half the total weight. Weights must be non-negative with a
/// positive sum.
double WeightedMedian(const std::vector<double>& values,
                      const std::vector<double>& weights);

}  // namespace otif

#endif  // OTIF_UTIL_STATS_H_
