#ifndef OTIF_UTIL_STATUS_H_
#define OTIF_UTIL_STATUS_H_

#include <cstdint>
#include <string>
#include <utility>
#include <variant>

namespace otif {

/// Error categories used across the library. Mirrors the Arrow/RocksDB idiom
/// of status-based error handling: the library never throws.
enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
  kUnimplemented,
  kIoError,
  kCancelled,
};

/// Returns a stable human-readable name for a status code ("InvalidArgument").
const char* StatusCodeName(StatusCode code);

/// Result of an operation that can fail. Cheap to copy in the OK case.
///
/// Functions that can fail return `Status` (or `StatusOr<T>` when they also
/// produce a value). Internal invariant violations use OTIF_CHECK instead.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status. Accessing the value of an
/// errored StatusOr aborts the process (programming error).
template <typename T>
class StatusOr {
 public:
  /// Implicit construction from a value or from an error status keeps call
  /// sites terse (`return result;` / `return Status::InvalidArgument(...)`).
  StatusOr(T value) : rep_(std::move(value)) {}  // NOLINT(runtime/explicit)
  StatusOr(Status status) : rep_(std::move(status)) {  // NOLINT
    AbortIfOkStatus();
  }

  bool ok() const { return std::holds_alternative<T>(rep_); }

  /// Returns the error status, or OK when a value is held.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(rep_);
  }

  const T& value() const& {
    AbortIfNoValue();
    return std::get<T>(rep_);
  }
  T& value() & {
    AbortIfNoValue();
    return std::get<T>(rep_);
  }
  T&& value() && {
    AbortIfNoValue();
    return std::get<T>(std::move(rep_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  void AbortIfNoValue() const;
  void AbortIfOkStatus() const;

  std::variant<T, Status> rep_;
};

namespace internal {
[[noreturn]] void DieStatusOrMisuse(const char* what);
}  // namespace internal

template <typename T>
void StatusOr<T>::AbortIfNoValue() const {
  if (!ok()) internal::DieStatusOrMisuse("value() called on errored StatusOr");
}

template <typename T>
void StatusOr<T>::AbortIfOkStatus() const {
  if (std::holds_alternative<Status>(rep_) && std::get<Status>(rep_).ok()) {
    internal::DieStatusOrMisuse("StatusOr constructed from OK status");
  }
}

/// Propagates a non-OK status to the caller.
#define OTIF_RETURN_IF_ERROR(expr)                \
  do {                                            \
    ::otif::Status _otif_status = (expr);         \
    if (!_otif_status.ok()) return _otif_status;  \
  } while (0)

/// Evaluates a StatusOr expression, propagating errors; on success assigns
/// the value to `lhs`. `lhs` may include a declaration.
#define OTIF_ASSIGN_OR_RETURN(lhs, expr)                      \
  OTIF_ASSIGN_OR_RETURN_IMPL_(                                \
      OTIF_STATUS_CONCAT_(_otif_statusor_, __LINE__), lhs, expr)

#define OTIF_STATUS_CONCAT_INNER_(a, b) a##b
#define OTIF_STATUS_CONCAT_(a, b) OTIF_STATUS_CONCAT_INNER_(a, b)
#define OTIF_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).value()

}  // namespace otif

#endif  // OTIF_UTIL_STATUS_H_
