#include "util/logging.h"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace otif {
namespace {

std::atomic<int> g_log_threshold{static_cast<int>(LogLevel::kInfo)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}

}  // namespace

void SetLogThreshold(LogLevel level) {
  g_log_threshold.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogThreshold() {
  return static_cast<LogLevel>(
      g_log_threshold.load(std::memory_order_relaxed));
}

bool ParseLogLevel(const std::string& text, LogLevel* level) {
  std::string lower;
  lower.reserve(text.size());
  for (char c : text) {
    lower.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  if (lower == "debug" || lower == "0") {
    *level = LogLevel::kDebug;
  } else if (lower == "info" || lower == "1") {
    *level = LogLevel::kInfo;
  } else if (lower == "warning" || lower == "warn" || lower == "2") {
    *level = LogLevel::kWarning;
  } else if (lower == "error" || lower == "3") {
    *level = LogLevel::kError;
  } else if (lower == "fatal" || lower == "4") {
    *level = LogLevel::kFatal;
  } else {
    return false;
  }
  return true;
}

bool InitLogLevelFromEnv() {
  const char* env = std::getenv("OTIF_LOG_LEVEL");
  if (env == nullptr) return false;
  LogLevel level;
  if (!ParseLogLevel(env, &level)) {
    OTIF_LOG(kWarning) << "ignoring unparsable OTIF_LOG_LEVEL=\"" << env
                       << "\" (want debug|info|warning|error|fatal or 0-4)";
    return false;
  }
  SetLogThreshold(level);
  return true;
}

namespace internal {
namespace {

std::atomic<FatalHandler> g_fatal_handler{nullptr};
/// Guards against a handler that itself CHECK-fails: the dump runs once.
std::atomic<bool> g_fatal_handler_ran{false};

}  // namespace

void SetFatalHandler(FatalHandler handler) {
  g_fatal_handler.store(handler, std::memory_order_relaxed);
}

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelName(level) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  stream_ << "\n";
  const std::string message = stream_.str();
  std::fputs(message.c_str(), stderr);
  if (level_ == LogLevel::kFatal) {
    const FatalHandler handler =
        g_fatal_handler.load(std::memory_order_relaxed);
    if (handler != nullptr && !g_fatal_handler_ran.exchange(true)) {
      handler(message.c_str());
    }
    std::abort();
  }
}

}  // namespace internal
}  // namespace otif
