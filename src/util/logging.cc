#include "util/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace otif {
namespace {

std::atomic<int> g_log_threshold{static_cast<int>(LogLevel::kInfo)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}

}  // namespace

void SetLogThreshold(LogLevel level) {
  g_log_threshold.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogThreshold() {
  return static_cast<LogLevel>(
      g_log_threshold.load(std::memory_order_relaxed));
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelName(level) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  stream_ << "\n";
  std::fputs(stream_.str().c_str(), stderr);
  if (level_ == LogLevel::kFatal) std::abort();
}

}  // namespace internal
}  // namespace otif
