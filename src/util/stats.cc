#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/logging.h"

namespace otif {

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  return std::accumulate(values.begin(), values.end(), 0.0) /
         static_cast<double>(values.size());
}

double Median(std::vector<double> values) {
  if (values.empty()) return 0.0;
  const size_t mid = values.size() / 2;
  std::nth_element(values.begin(), values.begin() + mid, values.end());
  double hi = values[mid];
  if (values.size() % 2 == 1) return hi;
  double lo = *std::max_element(values.begin(), values.begin() + mid);
  return 0.5 * (lo + hi);
}

double StdDev(const std::vector<double>& values) {
  if (values.size() < 2) return 0.0;
  const double mean = Mean(values);
  double sum_sq = 0.0;
  for (double v : values) sum_sq += (v - mean) * (v - mean);
  return std::sqrt(sum_sq / static_cast<double>(values.size()));
}

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double rank =
      (p / 100.0) * static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double WeightedMedian(const std::vector<double>& values,
                      const std::vector<double>& weights) {
  OTIF_CHECK_EQ(values.size(), weights.size());
  OTIF_CHECK(!values.empty());
  std::vector<size_t> order(values.size());
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return values[a] < values[b]; });
  double total = 0.0;
  for (double w : weights) {
    OTIF_CHECK_GE(w, 0.0);
    total += w;
  }
  OTIF_CHECK_GT(total, 0.0);
  double cumulative = 0.0;
  for (size_t idx : order) {
    cumulative += weights[idx];
    if (cumulative >= 0.5 * total) return values[idx];
  }
  return values[order.back()];
}

}  // namespace otif
