#ifndef OTIF_QUERY_QUERIES_H_
#define OTIF_QUERY_QUERIES_H_

#include <map>
#include <string>
#include <vector>

#include "geom/geometry.h"
#include "sim/dataset.h"
#include "sim/world.h"
#include "track/types.h"

namespace otif::query {

/// --- Object track queries (paper Sec 4.1) --------------------------------

/// Ground-truth number of unique objects of non-pedestrian classes visible
/// for at least `min_frames` frames (the "track count" query target).
int GroundTruthVehicleCount(const sim::Clip& clip, int min_frames);

/// Number of extracted tracks of non-pedestrian classes (cars, buses,
/// trucks) lasting at least `min_duration_frames`.
int CountVehicleTracks(const std::vector<track::Track>& tracks,
                       int min_duration_frames);

/// Ground-truth per-path-label counts (path breakdown query target):
/// objects of non-pedestrian classes that covered at least `min_coverage`
/// of their spawn path's length while visible.
std::map<std::string, int> GroundTruthPathCounts(const sim::Clip& clip,
                                                 double min_coverage);

/// Classifies each extracted vehicle track to the nearest dataset path by
/// the paper's directional polyline distance and returns per-label counts.
/// Tracks farther than `max_distance` (native px) from every path count
/// toward no label.
std::map<std::string, int> ClassifyTracksByPath(
    const std::vector<track::Track>& tracks, const sim::DatasetSpec& spec,
    double max_distance);

/// Mean per-label count accuracy between estimated and ground-truth
/// breakdowns (labels missing on either side count as zero).
double PathBreakdownAccuracy(const std::map<std::string, int>& estimated,
                             const std::map<std::string, int>& ground_truth);

/// Tracks decelerating at or above `decel_mps2` (hard braking, intro query
/// 1). Speeds are derived from detection displacement over time; returns
/// ids of qualifying tracks.
std::vector<int64_t> FindHardBrakingTracks(
    const std::vector<track::Track>& tracks, const sim::DatasetSpec& spec,
    double decel_mps2);

/// --- Frame-level limit queries (paper Sec 4.2) ---------------------------

/// Frame predicate interface: does this frame's set of (vehicle) boxes
/// satisfy the query?
class FramePredicate {
 public:
  virtual ~FramePredicate() = default;
  virtual bool Matches(const std::vector<geom::BBox>& boxes) const = 0;
};

/// "At least N objects" (UAV, Tokyo).
class CountPredicate : public FramePredicate {
 public:
  explicit CountPredicate(int n) : n_(n) {}
  bool Matches(const std::vector<geom::BBox>& boxes) const override;

 private:
  int n_;
};

/// "At least N objects inside a polygon region" (Jackson, Caldot1).
class RegionPredicate : public FramePredicate {
 public:
  RegionPredicate(geom::Polygon region, int n)
      : region_(std::move(region)), n_(n) {}
  bool Matches(const std::vector<geom::BBox>& boxes) const override;

 private:
  geom::Polygon region_;
  int n_;
};

/// "At least N objects within a circular cluster of radius R" (Warsaw,
/// Amsterdam hot spot queries).
class HotSpotPredicate : public FramePredicate {
 public:
  HotSpotPredicate(double radius, int n) : radius_(radius), n_(n) {}
  bool Matches(const std::vector<geom::BBox>& boxes) const override;

 private:
  double radius_;
  int n_;
};

/// Boxes of vehicle tracks visible at `frame` (interpolated between a
/// track's detections; tracks outside their span do not contribute).
std::vector<geom::BBox> VehicleBoxesAt(const std::vector<track::Track>& tracks,
                                       int frame);

/// Executes a frame-level limit query over extracted tracks: scans frames,
/// scores matches by the minimum remaining duration of visible tracks
/// (OTIF picks frames "where the visible tracks have the highest minimum
/// duration", Sec 4.2), and returns up to `limit` matching frames at least
/// `min_separation_frames` apart, best first.
std::vector<int> ExecuteLimitQuery(const std::vector<track::Track>& tracks,
                                   const FramePredicate& predicate,
                                   int num_frames, int limit,
                                   int min_separation_frames);

/// Multi-clip limit query: matching frames across all clips ranked by the
/// per-clip score, limited globally with per-clip separation. Returns
/// (clip index, frame) pairs.
std::vector<std::pair<int, int>> ExecuteLimitQueryMultiClip(
    const std::vector<std::vector<track::Track>>& tracks_per_clip,
    const FramePredicate& predicate, const std::vector<int>& clip_frames,
    int limit, int min_separation_frames);

/// Ground-truth check: does the clip's frame satisfy the predicate (using
/// simulator ground truth, vehicles only)?
bool GroundTruthMatches(const sim::Clip& clip, int frame,
                        const FramePredicate& predicate);

/// Fraction of produced frames whose ground truth satisfies the predicate
/// (the frame-level query accuracy from Sec 4.2). Returns 1 for no output.
double LimitQueryAccuracy(const sim::Clip& clip,
                          const std::vector<int>& frames,
                          const FramePredicate& predicate);

}  // namespace otif::query

#endif  // OTIF_QUERY_QUERIES_H_
