#include "query/queries.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "util/logging.h"

namespace otif::query {
namespace {

bool IsVehicle(track::ObjectClass cls) {
  return cls != track::ObjectClass::kPedestrian;
}

constexpr int kPathSamples = 20;

}  // namespace

int GroundTruthVehicleCount(const sim::Clip& clip, int min_frames) {
  int count = 0;
  for (const sim::GtObject& obj : clip.objects()) {
    if (!IsVehicle(obj.cls)) continue;
    if (static_cast<int>(obj.states.size()) >= min_frames) ++count;
  }
  return count;
}

int CountVehicleTracks(const std::vector<track::Track>& tracks,
                       int min_duration_frames) {
  int count = 0;
  for (const track::Track& t : tracks) {
    if (!IsVehicle(t.cls) || t.empty()) continue;
    if (t.DurationFrames() >= min_duration_frames) ++count;
  }
  return count;
}

std::map<std::string, int> GroundTruthPathCounts(const sim::Clip& clip,
                                                 double min_coverage) {
  std::map<std::string, int> counts;
  const auto& paths = clip.spec().paths;
  // Initialize all labels so zero counts are visible to the metric.
  for (const sim::SpawnPath& p : paths) counts[p.label] = 0;
  for (const sim::GtObject& obj : clip.objects()) {
    if (!IsVehicle(obj.cls) || obj.states.empty()) continue;
    const sim::SpawnPath& path = paths[static_cast<size_t>(obj.path_index)];
    // Fraction of the path length the object covered while visible.
    const double path_len = geom::PolylineLength(path.waypoints);
    if (path_len <= 0) continue;
    const double covered =
        obj.states.back().box.Center().DistanceTo(
            obj.states.front().box.Center());
    if (covered >= min_coverage * path_len) {
      counts[path.label] += 1;
    }
  }
  return counts;
}

std::map<std::string, int> ClassifyTracksByPath(
    const std::vector<track::Track>& tracks, const sim::DatasetSpec& spec,
    double max_distance) {
  std::map<std::string, int> counts;
  for (const sim::SpawnPath& p : spec.paths) counts[p.label] = 0;
  for (const track::Track& t : tracks) {
    if (!IsVehicle(t.cls) || t.detections.size() < 2) continue;
    const std::vector<geom::Point> samples =
        geom::ResamplePolyline(t.CenterPolyline(), kPathSamples);
    const geom::Point travel =
        samples.back() - samples.front();
    const double travel_norm = travel.Norm();
    double best = max_distance;
    int best_idx = -1;
    for (size_t p = 0; p < spec.paths.size(); ++p) {
      const std::vector<geom::Point>& ref = spec.paths[p].waypoints;
      // Mirror the ground truth's coverage requirement: fragments shorter
      // than ~a third of the path do not count toward the breakdown.
      if (travel_norm < 0.3 * geom::PolylineLength(ref)) continue;
      // Tracks may cover only part of the path (late entry, clip end, or
      // reduced-rate truncation), so score by the mean distance of track
      // samples to the reference *curve* rather than index-aligned points.
      double sum = 0.0;
      for (const geom::Point& s : samples) {
        sum += geom::DistanceToPolyline(s, ref);
      }
      double d = sum / kPathSamples;
      // Direction consistency separates opposite lanes sharing geometry:
      // compare travel direction against the path direction near the
      // track's midpoint.
      if (travel_norm > 1e-6) {
        const geom::Point dir = geom::DirectionAlong(ref, 0.5);
        const double align = travel.Dot(dir) / travel_norm;
        if (align <= 0.0) continue;       // Opposite direction: no match.
        d += (1.0 - align) * 0.25 * max_distance;
      }
      if (d < best) {
        best = d;
        best_idx = static_cast<int>(p);
      }
    }
    if (best_idx >= 0) {
      counts[spec.paths[static_cast<size_t>(best_idx)].label] += 1;
    }
  }
  return counts;
}

double PathBreakdownAccuracy(const std::map<std::string, int>& estimated,
                             const std::map<std::string, int>& ground_truth) {
  std::set<std::string> labels;
  for (const auto& [label, n] : estimated) labels.insert(label);
  for (const auto& [label, n] : ground_truth) labels.insert(label);
  if (labels.empty()) return 1.0;
  double sum = 0.0;
  int considered = 0;
  for (const std::string& label : labels) {
    const auto ei = estimated.find(label);
    const auto gi = ground_truth.find(label);
    const double est = ei != estimated.end() ? ei->second : 0;
    const double gt = gi != ground_truth.end() ? gi->second : 0;
    if (gt <= 0 && est <= 0) continue;  // Skip always-empty labels.
    if (gt <= 0) {
      sum += 0.0;
    } else {
      sum += std::clamp(1.0 - std::abs(est - gt) / gt, 0.0, 1.0);
    }
    ++considered;
  }
  return considered > 0 ? sum / considered : 1.0;
}

std::vector<int64_t> FindHardBrakingTracks(
    const std::vector<track::Track>& tracks, const sim::DatasetSpec& spec,
    double decel_mps2) {
  std::vector<int64_t> ids;
  const double fps = spec.fps;
  for (const track::Track& t : tracks) {
    if (!IsVehicle(t.cls) || t.detections.size() < 4) continue;
    // Speeds between consecutive detections (m/s) at their midpoint frames.
    std::vector<double> speeds;
    std::vector<double> mid_sec;
    for (size_t i = 1; i < t.detections.size(); ++i) {
      const track::Detection& a = t.detections[i - 1];
      const track::Detection& b = t.detections[i];
      const double dt = (b.frame - a.frame) / fps;
      if (dt <= 0) continue;
      speeds.push_back(a.box.Center().DistanceTo(b.box.Center()) / dt *
                       spec.meters_per_pixel);
      mid_sec.push_back((a.frame + b.frame) / 2.0 / fps);
    }
    if (speeds.size() < 3) continue;
    // 3-point moving average removes the apparent deceleration that
    // detector localization jitter induces at reduced sampling rates.
    std::vector<double> smooth(speeds.size());
    for (size_t i = 0; i < speeds.size(); ++i) {
      double sum = speeds[i];
      int n = 1;
      if (i > 0) {
        sum += speeds[i - 1];
        ++n;
      }
      if (i + 1 < speeds.size()) {
        sum += speeds[i + 1];
        ++n;
      }
      smooth[i] = sum / n;
    }
    bool braked = false;
    for (size_t i = 1; i < smooth.size() && !braked; ++i) {
      const double span = mid_sec[i] - mid_sec[i - 1];
      if (span <= 0) continue;
      if ((smooth[i - 1] - smooth[i]) / span >= decel_mps2) braked = true;
    }
    if (braked) ids.push_back(t.id);
  }
  return ids;
}

bool CountPredicate::Matches(const std::vector<geom::BBox>& boxes) const {
  return static_cast<int>(boxes.size()) >= n_;
}

bool RegionPredicate::Matches(const std::vector<geom::BBox>& boxes) const {
  int inside = 0;
  for (const geom::BBox& b : boxes) {
    if (region_.Contains(b.Center())) ++inside;
  }
  return inside >= n_;
}

bool HotSpotPredicate::Matches(const std::vector<geom::BBox>& boxes) const {
  // A cluster of >= n boxes within radius R: test circles centered at each
  // box center.
  if (static_cast<int>(boxes.size()) < n_) return false;
  for (const geom::BBox& center : boxes) {
    int nearby = 0;
    for (const geom::BBox& other : boxes) {
      if (center.Center().DistanceTo(other.Center()) <= radius_) ++nearby;
    }
    if (nearby >= n_) return true;
  }
  return false;
}

std::vector<geom::BBox> VehicleBoxesAt(const std::vector<track::Track>& tracks,
                                       int frame) {
  std::vector<geom::BBox> boxes;
  for (const track::Track& t : tracks) {
    if (!IsVehicle(t.cls) || t.empty()) continue;
    if (frame < t.StartFrame() || frame > t.EndFrame()) continue;
    boxes.push_back(t.InterpolatedBoxAt(frame));
  }
  return boxes;
}

std::vector<int> ExecuteLimitQuery(const std::vector<track::Track>& tracks,
                                   const FramePredicate& predicate,
                                   int num_frames, int limit,
                                   int min_separation_frames) {
  OTIF_CHECK_GT(limit, 0);
  struct Candidate {
    int frame;
    double score;
  };
  std::vector<Candidate> candidates;
  for (int f = 0; f < num_frames; ++f) {
    const std::vector<geom::BBox> boxes = VehicleBoxesAt(tracks, f);
    if (!predicate.Matches(boxes)) continue;
    // Score: minimum remaining visible duration among tracks at this frame
    // (frames backed by long tracks are less likely spurious).
    double min_duration = 1e9;
    for (const track::Track& t : tracks) {
      if (t.empty() || f < t.StartFrame() || f > t.EndFrame()) continue;
      min_duration = std::min(min_duration,
                              static_cast<double>(t.DurationFrames()));
    }
    candidates.push_back({f, min_duration >= 1e9 ? 0.0 : min_duration});
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.frame < b.frame;
            });
  std::vector<int> chosen;
  for (const Candidate& c : candidates) {
    if (static_cast<int>(chosen.size()) >= limit) break;
    bool ok = true;
    for (int f : chosen) {
      if (std::abs(f - c.frame) < min_separation_frames) {
        ok = false;
        break;
      }
    }
    if (ok) chosen.push_back(c.frame);
  }
  return chosen;
}

std::vector<std::pair<int, int>> ExecuteLimitQueryMultiClip(
    const std::vector<std::vector<track::Track>>& tracks_per_clip,
    const FramePredicate& predicate, const std::vector<int>& clip_frames,
    int limit, int min_separation_frames) {
  OTIF_CHECK_EQ(tracks_per_clip.size(), clip_frames.size());
  struct Candidate {
    int clip;
    int frame;
    double score;
  };
  std::vector<Candidate> candidates;
  for (size_t c = 0; c < tracks_per_clip.size(); ++c) {
    const auto& tracks = tracks_per_clip[c];
    for (int f = 0; f < clip_frames[c]; ++f) {
      if (!predicate.Matches(VehicleBoxesAt(tracks, f))) continue;
      double min_duration = 1e9;
      for (const track::Track& t : tracks) {
        if (t.empty() || f < t.StartFrame() || f > t.EndFrame()) continue;
        min_duration = std::min(min_duration,
                                static_cast<double>(t.DurationFrames()));
      }
      candidates.push_back(
          {static_cast<int>(c), f, min_duration >= 1e9 ? 0.0 : min_duration});
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.score != b.score) return a.score > b.score;
              if (a.clip != b.clip) return a.clip < b.clip;
              return a.frame < b.frame;
            });
  std::vector<std::pair<int, int>> chosen;
  for (const Candidate& c : candidates) {
    if (static_cast<int>(chosen.size()) >= limit) break;
    bool ok = true;
    for (const auto& [clip, frame] : chosen) {
      if (clip == c.clip && std::abs(frame - c.frame) < min_separation_frames) {
        ok = false;
        break;
      }
    }
    if (ok) chosen.push_back({c.clip, c.frame});
  }
  return chosen;
}

bool GroundTruthMatches(const sim::Clip& clip, int frame,
                        const FramePredicate& predicate) {
  std::vector<geom::BBox> boxes;
  for (const sim::VisibleObject& vis : clip.VisibleAt(frame)) {
    const sim::GtObject& obj = clip.objects()[static_cast<size_t>(vis.object_index)];
    if (!IsVehicle(obj.cls)) continue;
    boxes.push_back(obj.states[static_cast<size_t>(vis.state_index)].box);
  }
  return predicate.Matches(boxes);
}

double LimitQueryAccuracy(const sim::Clip& clip,
                          const std::vector<int>& frames,
                          const FramePredicate& predicate) {
  if (frames.empty()) return 1.0;
  int good = 0;
  for (int f : frames) {
    if (GroundTruthMatches(clip, f, predicate)) ++good;
  }
  return static_cast<double>(good) / static_cast<double>(frames.size());
}

}  // namespace otif::query
