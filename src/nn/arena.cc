#include "nn/arena.h"

#include <algorithm>

#include "mem/buffer_pool.h"

namespace otif::nn {
namespace {

// First chunk size; big enough for every proxy-model im2col panel so the
// common case never chains chunks.
constexpr size_t kMinChunkFloats = size_t{1} << 16;  // 256 KiB.

}  // namespace

float* ScratchArena::Alloc(size_t n) {
  if (n == 0) n = 1;
  // Advance until a chunk with room is found; allocations within one scope
  // may span chunks, but each individual buffer is contiguous.
  while (chunk_index_ < chunks_.size()) {
    Chunk& c = chunks_[chunk_index_];
    if (c.size - offset_ >= n) {
      float* p = c.data.get() + offset_;
      offset_ += n;
      return p;
    }
    ++chunk_index_;
    offset_ = 0;
  }
  // No room anywhere: grow geometrically so long runs converge on a single
  // chunk (existing chunks are never moved — live pointers stay valid).
  size_t size = std::max(n, kMinChunkFloats);
  if (!chunks_.empty()) size = std::max(size, 2 * chunks_.back().size);
  // Chunk growth is a real hot-path heap allocation; report it to the
  // shared pool so im2col scratch shows up in the same accounting as the
  // frame-buffer misses (bench memory section, mem.arena.* gauges).
  mem::BufferPool::Global().NoteArenaAlloc(size * sizeof(float));
  chunks_.push_back(Chunk{std::make_unique<float[]>(size), size});
  chunk_index_ = chunks_.size() - 1;
  offset_ = n;
  return chunks_.back().data.get();
}

size_t ScratchArena::FloatsReserved() const {
  size_t total = 0;
  for (const Chunk& c : chunks_) total += c.size;
  return total;
}

ScratchArena& ScratchArena::ThreadLocal() {
  thread_local ScratchArena arena;
  return arena;
}

}  // namespace otif::nn
