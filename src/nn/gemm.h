#ifndef OTIF_NN_GEMM_H_
#define OTIF_NN_GEMM_H_

#include <cstddef>

namespace otif::nn {

/// C = A * B with an optional bias folded into the accumulator start.
///
///   A: m x k, row-major, leading dimension k
///   B: k x n, row-major, leading dimension n
///   C: m x n, row-major, leading dimension n (fully overwritten)
///   bias_row: length m, added per row of C (pass nullptr for none)
///   bias_col: length n, added per column of C (pass nullptr for none)
///
/// At most one of bias_row / bias_col may be non-null; the bias is the
/// accumulator's *initial* value, matching a scalar loop that starts at the
/// bias and accumulates products in ascending-k order.
///
/// Determinism contract: every C[i][j] is produced by one accumulator chain
///   bias + A[i][0]*B[0][j] + A[i][1]*B[1][j] + ... (k ascending)
/// with no reassociation across k, so the result is bit-identical to the
/// naive triple loop regardless of the register-blocking used internally.
/// The batched/GEMM inference path relies on this to reproduce the
/// reference (training) forward pass exactly.
void GemmBias(int m, int n, int k, const float* a, const float* b,
              const float* bias_row, const float* bias_col, float* c);

/// Unrolls conv input patches into the im2col panel consumed by GemmBias.
///
///   input: (channels, h, w) row-major
///   out:   (channels * kernel * kernel) x (oh * ow) row-major
///
/// Row r = (ic * kernel + ky) * kernel + kx holds, for each output position
/// (oy, ox), the input sample at (ic, oy*stride - pad + ky,
/// ox*stride - pad + kx), or 0 where that falls outside the frame ('same'
/// padding, pad = kernel / 2). The row ordering matches the weight layout
/// (out_ch, in_ch, ky, kx), so conv output = weights (M x K) times this
/// panel (K x N) with K accumulated in the same order as the naive loops.
void Im2Col(const float* input, int channels, int h, int w, int kernel,
            int stride, int oh, int ow, float* out);

}  // namespace otif::nn

#endif  // OTIF_NN_GEMM_H_
