#ifndef OTIF_NN_ARENA_H_
#define OTIF_NN_ARENA_H_

#include <cstddef>
#include <memory>
#include <vector>

namespace otif::nn {

/// Bump-pointer scratch arena for inference temporaries (im2col panels,
/// packed weight panels). Memory is organized as a list of chunks that are
/// never reallocated, so pointers returned by Alloc stay valid until the
/// enclosing ScratchScope unwinds — even if later allocations grow the
/// arena. Chunks are retained across scopes, so steady-state inference does
/// no heap allocation at all.
///
/// Not thread-safe by itself; use ThreadLocal() to get this thread's
/// instance (the inference hot path runs on many pool workers at once).
class ScratchArena {
 public:
  ScratchArena() = default;
  ScratchArena(const ScratchArena&) = delete;
  ScratchArena& operator=(const ScratchArena&) = delete;

  /// Returns an uninitialized buffer of `n` floats valid until the
  /// innermost enclosing ScratchScope is destroyed.
  float* Alloc(size_t n);

  /// Total floats reserved across all chunks (diagnostics).
  size_t FloatsReserved() const;

  /// The calling thread's arena.
  static ScratchArena& ThreadLocal();

 private:
  friend class ScratchScope;

  struct Chunk {
    std::unique_ptr<float[]> data;
    size_t size = 0;
  };

  std::vector<Chunk> chunks_;
  size_t chunk_index_ = 0;  // Chunk currently allocated from.
  size_t offset_ = 0;       // Floats used within that chunk.
};

/// RAII watermark: allocations made while the scope is alive are released
/// (pointer-bump only, memory retained) when it is destroyed. Scopes nest.
class ScratchScope {
 public:
  explicit ScratchScope(ScratchArena& arena)
      : arena_(arena),
        saved_chunk_(arena.chunk_index_),
        saved_offset_(arena.offset_) {}
  ~ScratchScope() {
    arena_.chunk_index_ = saved_chunk_;
    arena_.offset_ = saved_offset_;
  }
  ScratchScope(const ScratchScope&) = delete;
  ScratchScope& operator=(const ScratchScope&) = delete;

 private:
  ScratchArena& arena_;
  size_t saved_chunk_;
  size_t saved_offset_;
};

}  // namespace otif::nn

#endif  // OTIF_NN_ARENA_H_
