#ifndef OTIF_NN_TENSOR_H_
#define OTIF_NN_TENSOR_H_

#include <cstdint>
#include <vector>

#include "mem/buffer_pool.h"
#include "mem/view.h"
#include "util/logging.h"
#include "util/rng.h"

namespace otif::nn {

/// Dense float tensor with up to 4 dimensions. Layout is row-major over the
/// shape vector; conv layers interpret 3-D tensors as (channels, height,
/// width) and 4-D tensors as a batch (batch, channels, height, width).
/// Designed for single-example training of small models on CPU; inference
/// paths accept the batched 4-D form.
///
/// Element storage comes from the shared mem::BufferPool: steady-state
/// inference recycles pooled buffers instead of allocating. Construction
/// zero-fills as before; Uninitialized() skips the fill for buffers whose
/// every element is written before any read (batch staging, output planes).
class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(std::vector<int> shape) : Tensor(std::move(shape), true) {}

  /// Like the shape constructor but leaves the elements unspecified
  /// (possibly recycled pool contents). Callers must write every element
  /// before reading any.
  static Tensor Uninitialized(std::vector<int> shape) {
    return Tensor(std::move(shape), false);
  }

  Tensor(const Tensor& o) { *this = o; }
  Tensor& operator=(const Tensor& o) {
    if (this == &o) return *this;
    shape_ = o.shape_;
    if (!buffer_ || buffer_.capacity() < static_cast<size_t>(o.size_) ||
        !buffer_.unique()) {
      buffer_ = mem::BufferPool::Global().Acquire(
          static_cast<size_t>(o.size_));
    }
    size_ = o.size_;
    if (size_ > 0) std::copy(o.data(), o.data() + size_, data());
    return *this;
  }
  Tensor(Tensor&& o) noexcept
      : shape_(std::move(o.shape_)), size_(o.size_),
        buffer_(std::move(o.buffer_)) {
    o.shape_.clear();
    o.size_ = 0;
  }
  Tensor& operator=(Tensor&& o) noexcept {
    if (this == &o) return *this;
    shape_ = std::move(o.shape_);
    size_ = o.size_;
    buffer_ = std::move(o.buffer_);
    o.shape_.clear();
    o.size_ = 0;
    return *this;
  }

  static Tensor Zeros(std::vector<int> shape) { return Tensor(std::move(shape)); }

  /// He-style initialization: normal with std sqrt(2 / fan_in).
  static Tensor RandomHe(std::vector<int> shape, int fan_in, Rng* rng) {
    Tensor t = Uninitialized(std::move(shape));
    const double std = std::sqrt(2.0 / std::max(1, fan_in));
    float* d = t.data();
    for (int64_t i = 0; i < t.size_; ++i) {
      d[i] = static_cast<float>(rng->Gaussian(0.0, std));
    }
    return t;
  }

  const std::vector<int>& shape() const { return shape_; }
  int dim(int i) const {
    OTIF_CHECK_LT(static_cast<size_t>(i), shape_.size());
    return shape_[static_cast<size_t>(i)];
  }
  int ndim() const { return static_cast<int>(shape_.size()); }
  int64_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  float* data() { return buffer_.data(); }
  const float* data() const { return buffer_.data(); }
  float& operator[](int64_t i) { return data()[i]; }
  float operator[](int64_t i) const { return data()[i]; }

  /// Borrows the elements as a non-owning dense view (see mem/view.h for
  /// lifetime rules). Tensors are at most 4-D by construction.
  mem::TensorView view() {
    mem::TensorView v;
    v.data = data();
    v.ndim = ndim();
    for (int i = 0; i < v.ndim; ++i) v.shape[i] = shape_[static_cast<size_t>(i)];
    return v;
  }

  /// 3-D accessor (c, y, x) for (C, H, W) tensors.
  float& at3(int c, int y, int x) {
    return data()[Index3(c, y, x)];
  }
  float at3(int c, int y, int x) const { return data()[Index3(c, y, x)]; }

  /// 4-D accessor (n, c, y, x) for batched (N, C, H, W) tensors.
  float& at4(int n, int c, int y, int x) { return data()[Index4(n, c, y, x)]; }
  float at4(int n, int c, int y, int x) const {
    return data()[Index4(n, c, y, x)];
  }

  void Fill(float v) {
    float* d = data();
    for (int64_t i = 0; i < size_; ++i) d[i] = v;
  }

  /// Elementwise in-place addition; shapes must match.
  void Add(const Tensor& o) {
    OTIF_CHECK_EQ(size(), o.size());
    float* d = data();
    const float* s = o.data();
    for (int64_t i = 0; i < size_; ++i) d[i] += s[i];
  }

  /// In-place scale.
  void Scale(float s) {
    float* d = data();
    for (int64_t i = 0; i < size_; ++i) d[i] *= s;
  }

  /// Sum of squared entries (for gradient-norm diagnostics).
  double SumSquares() const {
    double s = 0.0;
    const float* d = data();
    for (int64_t i = 0; i < size_; ++i) {
      s += static_cast<double>(d[i]) * d[i];
    }
    return s;
  }

 private:
  Tensor(std::vector<int> shape, bool zero_fill) : shape_(std::move(shape)) {
    int64_t n = 1;
    for (int d : shape_) {
      OTIF_CHECK_GT(d, 0);
      n *= d;
    }
    buffer_ = mem::BufferPool::Global().Acquire(static_cast<size_t>(n));
    size_ = n;
    if (zero_fill) Fill(0.0f);
  }

  size_t Index3(int c, int y, int x) const {
    OTIF_CHECK_EQ(shape_.size(), 3u);
    OTIF_CHECK(c >= 0 && c < shape_[0] && y >= 0 && y < shape_[1] && x >= 0 &&
               x < shape_[2])
        << c << "," << y << "," << x;
    return (static_cast<size_t>(c) * shape_[1] + y) * shape_[2] + x;
  }

  size_t Index4(int n, int c, int y, int x) const {
    OTIF_CHECK_EQ(shape_.size(), 4u);
    OTIF_CHECK(n >= 0 && n < shape_[0] && c >= 0 && c < shape_[1] && y >= 0 &&
               y < shape_[2] && x >= 0 && x < shape_[3])
        << n << "," << c << "," << y << "," << x;
    return ((static_cast<size_t>(n) * shape_[1] + c) * shape_[2] + y) *
               shape_[3] +
           x;
  }

  std::vector<int> shape_;
  int64_t size_ = 0;
  mem::PooledBuffer buffer_;
};

}  // namespace otif::nn

#endif  // OTIF_NN_TENSOR_H_
