#ifndef OTIF_NN_TENSOR_H_
#define OTIF_NN_TENSOR_H_

#include <cstdint>
#include <vector>

#include "util/logging.h"
#include "util/rng.h"

namespace otif::nn {

/// Dense float tensor with up to 4 dimensions. Layout is row-major over the
/// shape vector; conv layers interpret 3-D tensors as (channels, height,
/// width) and 4-D tensors as a batch (batch, channels, height, width).
/// Designed for single-example training of small models on CPU; inference
/// paths accept the batched 4-D form.
class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(std::vector<int> shape) : shape_(std::move(shape)) {
    int64_t n = 1;
    for (int d : shape_) {
      OTIF_CHECK_GT(d, 0);
      n *= d;
    }
    data_.assign(static_cast<size_t>(n), 0.0f);
  }

  static Tensor Zeros(std::vector<int> shape) { return Tensor(std::move(shape)); }

  /// He-style initialization: normal with std sqrt(2 / fan_in).
  static Tensor RandomHe(std::vector<int> shape, int fan_in, Rng* rng) {
    Tensor t(std::move(shape));
    const double std = std::sqrt(2.0 / std::max(1, fan_in));
    for (float& v : t.data_) v = static_cast<float>(rng->Gaussian(0.0, std));
    return t;
  }

  const std::vector<int>& shape() const { return shape_; }
  int dim(int i) const {
    OTIF_CHECK_LT(static_cast<size_t>(i), shape_.size());
    return shape_[static_cast<size_t>(i)];
  }
  int ndim() const { return static_cast<int>(shape_.size()); }
  int64_t size() const { return static_cast<int64_t>(data_.size()); }
  bool empty() const { return data_.empty(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  float& operator[](int64_t i) { return data_[static_cast<size_t>(i)]; }
  float operator[](int64_t i) const { return data_[static_cast<size_t>(i)]; }

  /// 3-D accessor (c, y, x) for (C, H, W) tensors.
  float& at3(int c, int y, int x) {
    return data_[Index3(c, y, x)];
  }
  float at3(int c, int y, int x) const { return data_[Index3(c, y, x)]; }

  /// 4-D accessor (n, c, y, x) for batched (N, C, H, W) tensors.
  float& at4(int n, int c, int y, int x) { return data_[Index4(n, c, y, x)]; }
  float at4(int n, int c, int y, int x) const {
    return data_[Index4(n, c, y, x)];
  }

  void Fill(float v) { std::fill(data_.begin(), data_.end(), v); }

  /// Elementwise in-place addition; shapes must match.
  void Add(const Tensor& o) {
    OTIF_CHECK_EQ(size(), o.size());
    for (size_t i = 0; i < data_.size(); ++i) data_[i] += o.data_[i];
  }

  /// In-place scale.
  void Scale(float s) {
    for (float& v : data_) v *= s;
  }

  /// Sum of squared entries (for gradient-norm diagnostics).
  double SumSquares() const {
    double s = 0.0;
    for (float v : data_) s += static_cast<double>(v) * v;
    return s;
  }

 private:
  size_t Index3(int c, int y, int x) const {
    OTIF_CHECK_EQ(shape_.size(), 3u);
    OTIF_CHECK(c >= 0 && c < shape_[0] && y >= 0 && y < shape_[1] && x >= 0 &&
               x < shape_[2])
        << c << "," << y << "," << x;
    return (static_cast<size_t>(c) * shape_[1] + y) * shape_[2] + x;
  }

  size_t Index4(int n, int c, int y, int x) const {
    OTIF_CHECK_EQ(shape_.size(), 4u);
    OTIF_CHECK(n >= 0 && n < shape_[0] && c >= 0 && c < shape_[1] && y >= 0 &&
               y < shape_[2] && x >= 0 && x < shape_[3])
        << n << "," << c << "," << y << "," << x;
    return ((static_cast<size_t>(n) * shape_[1] + c) * shape_[2] + y) *
               shape_[3] +
           x;
  }

  std::vector<int> shape_;
  std::vector<float> data_;
};

}  // namespace otif::nn

#endif  // OTIF_NN_TENSOR_H_
