#ifndef OTIF_NN_OPTIMIZER_H_
#define OTIF_NN_OPTIMIZER_H_

#include <vector>

#include "nn/layers.h"

namespace otif::nn {

/// Adam optimizer over a fixed set of parameters. Call Step() after each
/// backward pass (gradients are consumed and zeroed).
class Adam {
 public:
  struct Options {
    double learning_rate = 1e-3;
    double beta1 = 0.9;
    double beta2 = 0.999;
    double epsilon = 1e-8;
    /// Gradients are clipped to this global L2 norm (0 disables clipping).
    double clip_norm = 5.0;
  };

  Adam(std::vector<Parameter*> params, Options options);

  /// Applies one update from the accumulated gradients, then zeroes them.
  void Step();

  /// Zeroes all gradients without updating (e.g. to discard a bad example).
  void ZeroGrad();

  int64_t steps_taken() const { return step_; }
  double learning_rate() const { return options_.learning_rate; }
  void set_learning_rate(double lr) { options_.learning_rate = lr; }

 private:
  std::vector<Parameter*> params_;
  Options options_;
  std::vector<Tensor> m_;
  std::vector<Tensor> v_;
  int64_t step_ = 0;
};

}  // namespace otif::nn

#endif  // OTIF_NN_OPTIMIZER_H_
