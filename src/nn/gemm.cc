#include "nn/gemm.h"

#include <algorithm>
#include <cstring>

namespace otif::nn {
namespace {

// Register-blocking factors. kMr rows of A are streamed against kNr-wide
// column strips of B; the kMr x kNr accumulator block lives in registers
// and the kNr-wide inner loops auto-vectorize (no reduction across lanes,
// so vectorization cannot reorder the per-output k chain).
constexpr int kMr = 4;
constexpr int kNr = 16;

// Column blocking: B strips of this many columns stay resident in L1/L2
// while every row of A streams over them.
constexpr int kNc = 512;

// Full kMr x kNr register tile over the complete k range.
inline void MicroKernel(int k, int n, const float* a0, const float* a1,
                        const float* a2, const float* a3, const float* b,
                        float init0, float init1, float init2, float init3,
                        float* c0, float* c1, float* c2, float* c3) {
  float acc0[kNr], acc1[kNr], acc2[kNr], acc3[kNr];
  for (int j = 0; j < kNr; ++j) {
    acc0[j] = init0;
    acc1[j] = init1;
    acc2[j] = init2;
    acc3[j] = init3;
  }
  for (int p = 0; p < k; ++p) {
    const float* brow = b + static_cast<size_t>(p) * n;
    const float va0 = a0[p], va1 = a1[p], va2 = a2[p], va3 = a3[p];
    for (int j = 0; j < kNr; ++j) {
      acc0[j] += va0 * brow[j];
      acc1[j] += va1 * brow[j];
      acc2[j] += va2 * brow[j];
      acc3[j] += va3 * brow[j];
    }
  }
  for (int j = 0; j < kNr; ++j) {
    c0[j] = acc0[j];
    c1[j] = acc1[j];
    c2[j] = acc2[j];
    c3[j] = acc3[j];
  }
}

// Edge tile: any mb x nb block (mb <= kMr, nb <= kNr). Same per-output
// ascending-k accumulator chain as the full tile.
inline void EdgeKernel(int k, int n, int mb, int nb, const float* a,
                       const float* b, const float* bias_row,
                       const float* bias_col, int i0, int j0, float* c) {
  float acc[kMr][kNr];
  for (int i = 0; i < mb; ++i) {
    const float init = bias_row != nullptr ? bias_row[i0 + i] : 0.0f;
    for (int j = 0; j < nb; ++j) {
      acc[i][j] = bias_col != nullptr ? bias_col[j0 + j] : init;
    }
  }
  for (int p = 0; p < k; ++p) {
    const float* brow = b + static_cast<size_t>(p) * n + j0;
    for (int i = 0; i < mb; ++i) {
      const float va = a[static_cast<size_t>(i0 + i) * k + p];
      for (int j = 0; j < nb; ++j) acc[i][j] += va * brow[j];
    }
  }
  for (int i = 0; i < mb; ++i) {
    float* crow = c + static_cast<size_t>(i0 + i) * n + j0;
    for (int j = 0; j < nb; ++j) crow[j] = acc[i][j];
  }
}

}  // namespace

void GemmBias(int m, int n, int k, const float* a, const float* b,
              const float* bias_row, const float* bias_col, float* c) {
  // Column panels: for each strip of B, stream all rows of A over it.
  for (int jc = 0; jc < n; jc += kNc) {
    const int nc = std::min(kNc, n - jc);
    int i = 0;
    for (; i + kMr <= m; i += kMr) {
      const float* a0 = a + static_cast<size_t>(i) * k;
      const float* a1 = a0 + k;
      const float* a2 = a1 + k;
      const float* a3 = a2 + k;
      const float init0 = bias_row != nullptr ? bias_row[i] : 0.0f;
      const float init1 = bias_row != nullptr ? bias_row[i + 1] : 0.0f;
      const float init2 = bias_row != nullptr ? bias_row[i + 2] : 0.0f;
      const float init3 = bias_row != nullptr ? bias_row[i + 3] : 0.0f;
      int j = 0;
      if (bias_col == nullptr) {
        // Fast path: per-row scalar inits let the full register tile run.
        for (; j + kNr <= nc; j += kNr) {
          float* crow = c + static_cast<size_t>(i) * n + jc + j;
          MicroKernel(k, n, a0, a1, a2, a3, b + jc + j, init0, init1, init2,
                      init3, crow, crow + n, crow + 2 * n, crow + 3 * n);
        }
      }
      for (; j < nc; j += kNr) {
        EdgeKernel(k, n, kMr, std::min(kNr, nc - j), a, b, bias_row,
                   bias_col, i, jc + j, c);
      }
    }
    if (i < m) {
      for (int j = 0; j < nc; j += kNr) {
        EdgeKernel(k, n, m - i, std::min(kNr, nc - j), a, b, bias_row,
                   bias_col, i, jc + j, c);
      }
    }
  }
}

void Im2Col(const float* input, int channels, int h, int w, int kernel,
            int stride, int oh, int ow, float* out) {
  const int pad = kernel / 2;
  const size_t row_len = static_cast<size_t>(oh) * ow;
  float* dst = out;
  for (int ic = 0; ic < channels; ++ic) {
    const float* plane = input + static_cast<size_t>(ic) * h * w;
    for (int ky = 0; ky < kernel; ++ky) {
      for (int kx = 0; kx < kernel; ++kx) {
        // Row for tap (ic, ky, kx): sample (oy*stride - pad + ky,
        // ox*stride - pad + kx) for every output position.
        float* row = dst;
        dst += row_len;
        for (int oy = 0; oy < oh; ++oy) {
          const int iy = oy * stride - pad + ky;
          float* out_row = row + static_cast<size_t>(oy) * ow;
          if (iy < 0 || iy >= h) {
            std::memset(out_row, 0, sizeof(float) * static_cast<size_t>(ow));
            continue;
          }
          const int x_off = kx - pad;  // ix = ox*stride + x_off.
          const float* in_row = plane + static_cast<size_t>(iy) * w;
          // ox range with in-bounds ix: ceil((-x_off)/stride) <= ox and
          // ox*stride + x_off < w.
          int ox_lo = x_off >= 0 ? 0 : (-x_off + stride - 1) / stride;
          int ox_hi = (w - 1 - x_off) / stride + 1;  // Exclusive.
          ox_lo = std::min(ox_lo, ow);
          ox_hi = std::clamp(ox_hi, ox_lo, ow);
          for (int ox = 0; ox < ox_lo; ++ox) out_row[ox] = 0.0f;
          if (stride == 1) {
            std::memcpy(out_row + ox_lo, in_row + ox_lo + x_off,
                        sizeof(float) * static_cast<size_t>(ox_hi - ox_lo));
          } else {
            for (int ox = ox_lo; ox < ox_hi; ++ox) {
              out_row[ox] = in_row[ox * stride + x_off];
            }
          }
          for (int ox = ox_hi; ox < ow; ++ox) out_row[ox] = 0.0f;
        }
      }
    }
  }
}

}  // namespace otif::nn
