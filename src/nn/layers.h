#ifndef OTIF_NN_LAYERS_H_
#define OTIF_NN_LAYERS_H_

#include <memory>
#include <vector>

#include "nn/tensor.h"

namespace otif::nn {

/// A trainable parameter: value plus accumulated gradient.
struct Parameter {
  Tensor value;
  Tensor grad;

  explicit Parameter(Tensor v) : value(std::move(v)), grad(value.shape()) {}
  void ZeroGrad() { grad.Fill(0.0f); }
};

/// Base class for layers. Layers cache forward activations on an internal
/// stack so the same layer may be applied several times in one example
/// (weight sharing across time steps or detections); Backward() must then be
/// called once per Forward() in reverse order (LIFO).
///
/// Infer() computes the same output as Forward() without touching the
/// activation cache, so it is const and safe to call concurrently from many
/// threads on a shared trained model (training must stay single-threaded).
class Layer {
 public:
  virtual ~Layer() = default;

  /// Runs the layer; pushes whatever Backward will need onto the cache.
  virtual Tensor Forward(const Tensor& input) = 0;

  /// Inference-only pass: identical output to Forward, no cache mutation.
  virtual Tensor Infer(const Tensor& input) const = 0;

  /// Pops the most recent forward cache, accumulates parameter gradients,
  /// and returns the gradient with respect to that forward's input.
  virtual Tensor Backward(const Tensor& grad_output) = 0;

  /// Appends this layer's parameters (may be none).
  virtual void CollectParameters(std::vector<Parameter*>* out) {}

  /// Drops any cached activations (e.g. after an inference-only pass).
  virtual void ClearCache() = 0;
};

/// 2-D convolution over (C, H, W) tensors with 'same' padding (k odd) and
/// integer stride. Output is (out_channels, ceil(H/stride), ceil(W/stride)).
///
/// Infer() runs the im2col + blocked-GEMM engine and additionally accepts a
/// batched 4-D (N, C, H, W) input, producing (N, out_channels, OH, OW); the
/// GEMM path is bit-identical to the reference loops (see gemm.h).
/// Forward()/Backward() — the training path — keep the naive reference
/// implementation, exposed as InferReference() for cross-checking.
class Conv2d : public Layer {
 public:
  Conv2d(int in_channels, int out_channels, int kernel, int stride, Rng* rng);

  Tensor Forward(const Tensor& input) override;
  Tensor Infer(const Tensor& input) const override;
  Tensor Backward(const Tensor& grad_output) override;
  void CollectParameters(std::vector<Parameter*>* out) override;
  void ClearCache() override { cache_.clear(); }

  /// Reference (naive loop) inference over a single 3-D input. Used by the
  /// training path and by tests/benchmarks as the ground truth the GEMM
  /// path must reproduce exactly.
  Tensor InferReference(const Tensor& input) const;

  int in_channels() const { return in_channels_; }
  int out_channels() const { return out_channels_; }

 private:
  /// im2col + GEMM over one (C, H, W) image laid out at `input`; writes the
  /// (out_channels, oh, ow) result to `out`. Scratch comes from the calling
  /// thread's ScratchArena.
  void InferInto(const float* input, int h, int w, int oh, int ow,
                 float* out) const;

  int in_channels_, out_channels_, kernel_, stride_;
  Parameter weight_;  // (out_ch, in_ch, k, k) flattened as 4-D.
  Parameter bias_;    // (out_ch)
  std::vector<Tensor> cache_;  // Cached inputs.
};

/// Fully connected layer over 1-D tensors. Infer() additionally accepts a
/// batched 2-D (N, in_features) input, producing (N, out_features) via one
/// GEMM; each row is bit-identical to the 1-D path.
class Linear : public Layer {
 public:
  Linear(int in_features, int out_features, Rng* rng);

  Tensor Forward(const Tensor& input) override;
  Tensor Infer(const Tensor& input) const override;
  Tensor Backward(const Tensor& grad_output) override;
  void CollectParameters(std::vector<Parameter*>* out) override;
  void ClearCache() override { cache_.clear(); }

 private:
  int in_features_, out_features_;
  Parameter weight_;  // (out, in)
  Parameter bias_;    // (out)
  std::vector<Tensor> cache_;
};

/// Elementwise ReLU.
class Relu : public Layer {
 public:
  Tensor Forward(const Tensor& input) override;
  Tensor Infer(const Tensor& input) const override;
  Tensor Backward(const Tensor& grad_output) override;
  void ClearCache() override { cache_.clear(); }

 private:
  std::vector<Tensor> cache_;  // Cached outputs (mask source).
};

/// Elementwise logistic sigmoid.
class Sigmoid : public Layer {
 public:
  Tensor Forward(const Tensor& input) override;
  Tensor Infer(const Tensor& input) const override;
  Tensor Backward(const Tensor& grad_output) override;
  void ClearCache() override { cache_.clear(); }

 private:
  std::vector<Tensor> cache_;  // Cached outputs.
};

/// Elementwise tanh.
class Tanh : public Layer {
 public:
  Tensor Forward(const Tensor& input) override;
  Tensor Infer(const Tensor& input) const override;
  Tensor Backward(const Tensor& grad_output) override;
  void ClearCache() override { cache_.clear(); }

 private:
  std::vector<Tensor> cache_;
};

/// Gated recurrent unit cell. Step() consumes (x, h) and returns h'; the
/// sequence wrapper below manages hidden-state plumbing. Backward follows
/// the same LIFO discipline as Layer but with a two-gradient signature.
class GruCell {
 public:
  GruCell(int input_size, int hidden_size, Rng* rng);

  int hidden_size() const { return hidden_size_; }
  int input_size() const { return input_size_; }

  /// One recurrence step.
  Tensor Step(const Tensor& x, const Tensor& h_prev);

  /// Inference-only recurrence step: identical output to Step, no cache
  /// mutation (thread-safe on a shared trained cell).
  Tensor StepInfer(const Tensor& x, const Tensor& h_prev) const;

  /// Backward for the most recent Step: given dL/dh', accumulates parameter
  /// gradients and returns (dL/dx, dL/dh_prev).
  std::pair<Tensor, Tensor> StepBackward(const Tensor& grad_h_new);

  void CollectParameters(std::vector<Parameter*>* out);
  void ClearCache() { cache_.clear(); }

 private:
  struct StepCache {
    Tensor x, h_prev, z, r, h_cand;
  };

  /// Shared gate math for Step/StepInfer; fills `cache` with the
  /// intermediates Backward needs.
  Tensor ComputeStep(const Tensor& x, const Tensor& h_prev,
                     StepCache* cache) const;

  int input_size_, hidden_size_;
  // Gate weights: each (hidden, input) and (hidden, hidden) plus bias.
  Parameter wz_, uz_, bz_;
  Parameter wr_, ur_, br_;
  Parameter wh_, uh_, bh_;
  std::vector<StepCache> cache_;
};

/// Sequential container of layers (each applied in order).
class Sequential : public Layer {
 public:
  Sequential() = default;

  /// Appends a layer; returns *this for chaining.
  Sequential& Add(std::unique_ptr<Layer> layer);

  Tensor Forward(const Tensor& input) override;
  Tensor Infer(const Tensor& input) const override;
  Tensor Backward(const Tensor& grad_output) override;
  void CollectParameters(std::vector<Parameter*>* out) override;
  void ClearCache() override;

  size_t num_layers() const { return layers_.size(); }

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
};

/// Binary cross-entropy with logits, averaged over all elements. `mask`
/// (optional, same shape, 0/1) restricts which elements contribute.
/// Returns the mean loss and writes dL/dlogits into `grad`.
double BceWithLogits(const Tensor& logits, const Tensor& targets,
                     const Tensor* mask, Tensor* grad);

/// Mean squared error, averaged over all elements; writes dL/dpred.
double MseLoss(const Tensor& pred, const Tensor& target, Tensor* grad);

/// Numerically stable logistic function.
float StableSigmoid(float x);

}  // namespace otif::nn

#endif  // OTIF_NN_LAYERS_H_
