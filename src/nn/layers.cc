#include "nn/layers.h"

#include <algorithm>
#include <cmath>

#include "nn/arena.h"
#include "nn/gemm.h"

namespace otif::nn {
namespace {

int OutDim(int in, int stride) { return (in + stride - 1) / stride; }

}  // namespace

float StableSigmoid(float x) {
  if (x >= 0) {
    const float e = std::exp(-x);
    return 1.0f / (1.0f + e);
  }
  const float e = std::exp(x);
  return e / (1.0f + e);
}

// --- Conv2d -----------------------------------------------------------------

Conv2d::Conv2d(int in_channels, int out_channels, int kernel, int stride,
               Rng* rng)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      stride_(stride),
      weight_(Tensor::RandomHe({out_channels, in_channels, kernel, kernel},
                               in_channels * kernel * kernel, rng)),
      bias_(Tensor::Zeros({out_channels})) {
  OTIF_CHECK_EQ(kernel % 2, 1) << "'same' padding requires odd kernels";
  OTIF_CHECK_GE(stride, 1);
}

Tensor Conv2d::Forward(const Tensor& input) {
  // Training keeps the reference loops; the GEMM engine reproduces them
  // bit-for-bit (tests assert this), but gradients are only defined against
  // the reference path.
  Tensor out = InferReference(input);
  cache_.push_back(input);
  return out;
}

void Conv2d::InferInto(const float* input, int h, int w, int oh, int ow,
                       float* out) const {
  const int k = in_channels_ * kernel_ * kernel_;
  const int n = oh * ow;
  ScratchArena& arena = ScratchArena::ThreadLocal();
  ScratchScope scope(arena);
  float* panel = arena.Alloc(static_cast<size_t>(k) * n);
  Im2Col(input, in_channels_, h, w, kernel_, stride_, oh, ow, panel);
  GemmBias(out_channels_, n, k, weight_.value.data(), panel,
           bias_.value.data(), nullptr, out);
}

Tensor Conv2d::Infer(const Tensor& input) const {
  if (input.ndim() == 4) {
    OTIF_CHECK_EQ(input.dim(1), in_channels_);
    const int nb = input.dim(0);
    const int h = input.dim(2), w = input.dim(3);
    const int oh = OutDim(h, stride_), ow = OutDim(w, stride_);
    Tensor out({nb, out_channels_, oh, ow});
    const size_t in_stride = static_cast<size_t>(in_channels_) * h * w;
    const size_t out_stride = static_cast<size_t>(out_channels_) * oh * ow;
    for (int b = 0; b < nb; ++b) {
      InferInto(input.data() + b * in_stride, h, w, oh, ow,
                out.data() + b * out_stride);
    }
    return out;
  }
  OTIF_CHECK_EQ(input.ndim(), 3);
  OTIF_CHECK_EQ(input.dim(0), in_channels_);
  const int h = input.dim(1), w = input.dim(2);
  const int oh = OutDim(h, stride_), ow = OutDim(w, stride_);
  Tensor out({out_channels_, oh, ow});
  InferInto(input.data(), h, w, oh, ow, out.data());
  return out;
}

Tensor Conv2d::InferReference(const Tensor& input) const {
  OTIF_CHECK_EQ(input.ndim(), 3);
  OTIF_CHECK_EQ(input.dim(0), in_channels_);
  const int h = input.dim(1), w = input.dim(2);
  const int oh = OutDim(h, stride_), ow = OutDim(w, stride_);
  const int pad = kernel_ / 2;
  Tensor out({out_channels_, oh, ow});
  const float* wdata = weight_.value.data();
  for (int oc = 0; oc < out_channels_; ++oc) {
    const float b = bias_.value[oc];
    for (int oy = 0; oy < oh; ++oy) {
      for (int ox = 0; ox < ow; ++ox) {
        float acc = b;
        const int iy0 = oy * stride_ - pad;
        const int ix0 = ox * stride_ - pad;
        for (int ic = 0; ic < in_channels_; ++ic) {
          const float* wk =
              wdata + ((static_cast<size_t>(oc) * in_channels_ + ic) *
                       kernel_ * kernel_);
          for (int ky = 0; ky < kernel_; ++ky) {
            const int iy = iy0 + ky;
            if (iy < 0 || iy >= h) continue;
            const int kx_lo = std::max(0, -ix0);
            const int kx_hi = std::min(kernel_, w - ix0);
            const float* in_row = input.data() +
                                  (static_cast<size_t>(ic) * h + iy) * w + ix0;
            const float* w_row = wk + static_cast<size_t>(ky) * kernel_;
            for (int kx = kx_lo; kx < kx_hi; ++kx) {
              acc += w_row[kx] * in_row[kx];
            }
          }
        }
        out.at3(oc, oy, ox) = acc;
      }
    }
  }
  return out;
}

Tensor Conv2d::Backward(const Tensor& grad_output) {
  OTIF_CHECK(!cache_.empty()) << "Backward without matching Forward";
  const Tensor input = std::move(cache_.back());
  cache_.pop_back();
  const int h = input.dim(1), w = input.dim(2);
  const int oh = OutDim(h, stride_), ow = OutDim(w, stride_);
  OTIF_CHECK_EQ(grad_output.dim(0), out_channels_);
  OTIF_CHECK_EQ(grad_output.dim(1), oh);
  OTIF_CHECK_EQ(grad_output.dim(2), ow);
  const int pad = kernel_ / 2;

  Tensor grad_in({in_channels_, h, w});
  float* gw = weight_.grad.data();
  const float* wdata = weight_.value.data();
  for (int oc = 0; oc < out_channels_; ++oc) {
    for (int oy = 0; oy < oh; ++oy) {
      for (int ox = 0; ox < ow; ++ox) {
        const float go = grad_output.at3(oc, oy, ox);
        if (go == 0.0f) continue;
        bias_.grad[oc] += go;
        const int iy0 = oy * stride_ - pad;
        const int ix0 = ox * stride_ - pad;
        for (int ic = 0; ic < in_channels_; ++ic) {
          const size_t wbase =
              (static_cast<size_t>(oc) * in_channels_ + ic) * kernel_ *
              kernel_;
          for (int ky = 0; ky < kernel_; ++ky) {
            const int iy = iy0 + ky;
            if (iy < 0 || iy >= h) continue;
            const int kx_lo = std::max(0, -ix0);
            const int kx_hi = std::min(kernel_, w - ix0);
            const float* in_row = input.data() +
                                  (static_cast<size_t>(ic) * h + iy) * w + ix0;
            float* gin_row = grad_in.data() +
                             (static_cast<size_t>(ic) * h + iy) * w + ix0;
            const size_t wrow = wbase + static_cast<size_t>(ky) * kernel_;
            for (int kx = kx_lo; kx < kx_hi; ++kx) {
              gw[wrow + kx] += go * in_row[kx];
              gin_row[kx] += go * wdata[wrow + kx];
            }
          }
        }
      }
    }
  }
  return grad_in;
}

void Conv2d::CollectParameters(std::vector<Parameter*>* out) {
  out->push_back(&weight_);
  out->push_back(&bias_);
}

// --- Linear -----------------------------------------------------------------

Linear::Linear(int in_features, int out_features, Rng* rng)
    : in_features_(in_features),
      out_features_(out_features),
      weight_(Tensor::RandomHe({out_features, in_features}, in_features, rng)),
      bias_(Tensor::Zeros({out_features})) {}

Tensor Linear::Forward(const Tensor& input) {
  Tensor out = Infer(input);
  cache_.push_back(input);
  return out;
}

Tensor Linear::Infer(const Tensor& input) const {
  if (input.ndim() == 2) {
    // Batched rows: C (N x out) = X (N x in) * W^T (in x out), bias folded
    // in as the per-column accumulator start — bit-identical per row to the
    // 1-D path below (float multiply is commutative bitwise and the k order
    // matches).
    const int nb = input.dim(0);
    OTIF_CHECK_EQ(input.dim(1), in_features_);
    Tensor out({nb, out_features_});
    const float* wdata = weight_.value.data();
    ScratchArena& arena = ScratchArena::ThreadLocal();
    ScratchScope scope(arena);
    float* wt = arena.Alloc(static_cast<size_t>(in_features_) * out_features_);
    for (int i = 0; i < in_features_; ++i) {
      for (int o = 0; o < out_features_; ++o) {
        wt[static_cast<size_t>(i) * out_features_ + o] =
            wdata[static_cast<size_t>(o) * in_features_ + i];
      }
    }
    GemmBias(nb, out_features_, in_features_, input.data(), wt, nullptr,
             bias_.value.data(), out.data());
    return out;
  }
  OTIF_CHECK_EQ(input.size(), in_features_);
  Tensor out({out_features_});
  const float* wdata = weight_.value.data();
  for (int o = 0; o < out_features_; ++o) {
    float acc = bias_.value[o];
    const float* wrow = wdata + static_cast<size_t>(o) * in_features_;
    for (int i = 0; i < in_features_; ++i) acc += wrow[i] * input[i];
    out[o] = acc;
  }
  return out;
}

Tensor Linear::Backward(const Tensor& grad_output) {
  OTIF_CHECK(!cache_.empty());
  const Tensor input = std::move(cache_.back());
  cache_.pop_back();
  OTIF_CHECK_EQ(grad_output.size(), out_features_);
  Tensor grad_in({in_features_});
  float* gw = weight_.grad.data();
  const float* wdata = weight_.value.data();
  for (int o = 0; o < out_features_; ++o) {
    const float go = grad_output[o];
    bias_.grad[o] += go;
    float* gw_row = gw + static_cast<size_t>(o) * in_features_;
    const float* wrow = wdata + static_cast<size_t>(o) * in_features_;
    for (int i = 0; i < in_features_; ++i) {
      gw_row[i] += go * input[i];
      grad_in[i] += go * wrow[i];
    }
  }
  return grad_in;
}

void Linear::CollectParameters(std::vector<Parameter*>* out) {
  out->push_back(&weight_);
  out->push_back(&bias_);
}

// --- Elementwise activations -------------------------------------------------

Tensor Relu::Forward(const Tensor& input) {
  Tensor out = Infer(input);
  cache_.push_back(out);
  return out;
}

Tensor Relu::Infer(const Tensor& input) const {
  Tensor out = input;
  for (int64_t i = 0; i < out.size(); ++i) out[i] = std::max(0.0f, out[i]);
  return out;
}

Tensor Relu::Backward(const Tensor& grad_output) {
  OTIF_CHECK(!cache_.empty());
  const Tensor out = std::move(cache_.back());
  cache_.pop_back();
  Tensor grad_in = grad_output;
  for (int64_t i = 0; i < grad_in.size(); ++i) {
    if (out[i] <= 0.0f) grad_in[i] = 0.0f;
  }
  return grad_in;
}

Tensor Sigmoid::Forward(const Tensor& input) {
  Tensor out = Infer(input);
  cache_.push_back(out);
  return out;
}

Tensor Sigmoid::Infer(const Tensor& input) const {
  Tensor out = input;
  for (int64_t i = 0; i < out.size(); ++i) out[i] = StableSigmoid(out[i]);
  return out;
}

Tensor Sigmoid::Backward(const Tensor& grad_output) {
  OTIF_CHECK(!cache_.empty());
  const Tensor out = std::move(cache_.back());
  cache_.pop_back();
  Tensor grad_in = grad_output;
  for (int64_t i = 0; i < grad_in.size(); ++i) {
    grad_in[i] *= out[i] * (1.0f - out[i]);
  }
  return grad_in;
}

Tensor Tanh::Forward(const Tensor& input) {
  Tensor out = Infer(input);
  cache_.push_back(out);
  return out;
}

Tensor Tanh::Infer(const Tensor& input) const {
  Tensor out = input;
  for (int64_t i = 0; i < out.size(); ++i) out[i] = std::tanh(out[i]);
  return out;
}

Tensor Tanh::Backward(const Tensor& grad_output) {
  OTIF_CHECK(!cache_.empty());
  const Tensor out = std::move(cache_.back());
  cache_.pop_back();
  Tensor grad_in = grad_output;
  for (int64_t i = 0; i < grad_in.size(); ++i) {
    grad_in[i] *= 1.0f - out[i] * out[i];
  }
  return grad_in;
}

// --- GRU ---------------------------------------------------------------------

namespace {

// y = W x + U h + b, all 1-D.
Tensor Affine2(const Parameter& w, const Parameter& u, const Parameter& b,
               const Tensor& x, const Tensor& h) {
  const int out_dim = b.value.dim(0);
  const int in_dim = static_cast<int>(x.size());
  const int hid_dim = static_cast<int>(h.size());
  Tensor y({out_dim});
  for (int o = 0; o < out_dim; ++o) {
    float acc = b.value[o];
    const float* wrow = w.value.data() + static_cast<size_t>(o) * in_dim;
    for (int i = 0; i < in_dim; ++i) acc += wrow[i] * x[i];
    const float* urow = u.value.data() + static_cast<size_t>(o) * hid_dim;
    for (int i = 0; i < hid_dim; ++i) acc += urow[i] * h[i];
    y[o] = acc;
  }
  return y;
}

// Accumulates gradients for y = W x + U h + b given dL/dy; adds into
// grad_x/grad_h.
void Affine2Backward(Parameter* w, Parameter* u, Parameter* b,
                     const Tensor& x, const Tensor& h, const Tensor& grad_y,
                     Tensor* grad_x, Tensor* grad_h) {
  const int out_dim = b->value.dim(0);
  const int in_dim = static_cast<int>(x.size());
  const int hid_dim = static_cast<int>(h.size());
  for (int o = 0; o < out_dim; ++o) {
    const float gy = grad_y[o];
    if (gy == 0.0f) continue;
    b->grad[o] += gy;
    float* gw = w->grad.data() + static_cast<size_t>(o) * in_dim;
    const float* wrow = w->value.data() + static_cast<size_t>(o) * in_dim;
    for (int i = 0; i < in_dim; ++i) {
      gw[i] += gy * x[i];
      (*grad_x)[i] += gy * wrow[i];
    }
    float* gu = u->grad.data() + static_cast<size_t>(o) * hid_dim;
    const float* urow = u->value.data() + static_cast<size_t>(o) * hid_dim;
    for (int i = 0; i < hid_dim; ++i) {
      gu[i] += gy * h[i];
      (*grad_h)[i] += gy * urow[i];
    }
  }
}

}  // namespace

GruCell::GruCell(int input_size, int hidden_size, Rng* rng)
    : input_size_(input_size),
      hidden_size_(hidden_size),
      wz_(Tensor::RandomHe({hidden_size, input_size}, input_size, rng)),
      uz_(Tensor::RandomHe({hidden_size, hidden_size}, hidden_size, rng)),
      bz_(Tensor::Zeros({hidden_size})),
      wr_(Tensor::RandomHe({hidden_size, input_size}, input_size, rng)),
      ur_(Tensor::RandomHe({hidden_size, hidden_size}, hidden_size, rng)),
      br_(Tensor::Zeros({hidden_size})),
      wh_(Tensor::RandomHe({hidden_size, input_size}, input_size, rng)),
      uh_(Tensor::RandomHe({hidden_size, hidden_size}, hidden_size, rng)),
      bh_(Tensor::Zeros({hidden_size})) {}

Tensor GruCell::ComputeStep(const Tensor& x, const Tensor& h_prev,
                            StepCache* c) const {
  OTIF_CHECK_EQ(x.size(), input_size_);
  OTIF_CHECK_EQ(h_prev.size(), hidden_size_);
  c->x = x;
  c->h_prev = h_prev;

  c->z = Affine2(wz_, uz_, bz_, x, h_prev);
  for (int64_t i = 0; i < c->z.size(); ++i) c->z[i] = StableSigmoid(c->z[i]);
  c->r = Affine2(wr_, ur_, br_, x, h_prev);
  for (int64_t i = 0; i < c->r.size(); ++i) c->r[i] = StableSigmoid(c->r[i]);

  Tensor rh({hidden_size_});
  for (int i = 0; i < hidden_size_; ++i) rh[i] = c->r[i] * h_prev[i];
  c->h_cand = Affine2(wh_, uh_, bh_, x, rh);
  for (int64_t i = 0; i < c->h_cand.size(); ++i) {
    c->h_cand[i] = std::tanh(c->h_cand[i]);
  }

  Tensor h_new({hidden_size_});
  for (int i = 0; i < hidden_size_; ++i) {
    h_new[i] = (1.0f - c->z[i]) * h_prev[i] + c->z[i] * c->h_cand[i];
  }
  return h_new;
}

Tensor GruCell::Step(const Tensor& x, const Tensor& h_prev) {
  StepCache c;
  Tensor h_new = ComputeStep(x, h_prev, &c);
  cache_.push_back(std::move(c));
  return h_new;
}

Tensor GruCell::StepInfer(const Tensor& x, const Tensor& h_prev) const {
  StepCache scratch;
  return ComputeStep(x, h_prev, &scratch);
}

std::pair<Tensor, Tensor> GruCell::StepBackward(const Tensor& grad_h_new) {
  OTIF_CHECK(!cache_.empty());
  StepCache c = std::move(cache_.back());
  cache_.pop_back();

  Tensor grad_x({input_size_});
  Tensor grad_h_prev({hidden_size_});

  // h_new = (1 - z) * h_prev + z * h_cand
  Tensor grad_z({hidden_size_});
  Tensor grad_h_cand({hidden_size_});
  for (int i = 0; i < hidden_size_; ++i) {
    const float g = grad_h_new[i];
    grad_h_prev[i] += g * (1.0f - c.z[i]);
    grad_z[i] = g * (c.h_cand[i] - c.h_prev[i]);
    grad_h_cand[i] = g * c.z[i];
  }

  // h_cand = tanh(pre_h); pre_h = Wh x + Uh (r*h_prev) + bh
  Tensor grad_pre_h({hidden_size_});
  for (int i = 0; i < hidden_size_; ++i) {
    grad_pre_h[i] = grad_h_cand[i] * (1.0f - c.h_cand[i] * c.h_cand[i]);
  }
  Tensor rh({hidden_size_});
  for (int i = 0; i < hidden_size_; ++i) rh[i] = c.r[i] * c.h_prev[i];
  Tensor grad_rh({hidden_size_});
  Affine2Backward(&wh_, &uh_, &bh_, c.x, rh, grad_pre_h, &grad_x, &grad_rh);
  Tensor grad_r({hidden_size_});
  for (int i = 0; i < hidden_size_; ++i) {
    grad_r[i] = grad_rh[i] * c.h_prev[i];
    grad_h_prev[i] += grad_rh[i] * c.r[i];
  }

  // r = sigmoid(pre_r); pre_r = Wr x + Ur h_prev + br
  Tensor grad_pre_r({hidden_size_});
  for (int i = 0; i < hidden_size_; ++i) {
    grad_pre_r[i] = grad_r[i] * c.r[i] * (1.0f - c.r[i]);
  }
  Affine2Backward(&wr_, &ur_, &br_, c.x, c.h_prev, grad_pre_r, &grad_x,
                  &grad_h_prev);

  // z = sigmoid(pre_z); pre_z = Wz x + Uz h_prev + bz
  Tensor grad_pre_z({hidden_size_});
  for (int i = 0; i < hidden_size_; ++i) {
    grad_pre_z[i] = grad_z[i] * c.z[i] * (1.0f - c.z[i]);
  }
  Affine2Backward(&wz_, &uz_, &bz_, c.x, c.h_prev, grad_pre_z, &grad_x,
                  &grad_h_prev);

  return {std::move(grad_x), std::move(grad_h_prev)};
}

void GruCell::CollectParameters(std::vector<Parameter*>* out) {
  for (Parameter* p : {&wz_, &uz_, &bz_, &wr_, &ur_, &br_, &wh_, &uh_, &bh_}) {
    out->push_back(p);
  }
}

// --- Sequential ---------------------------------------------------------------

Sequential& Sequential::Add(std::unique_ptr<Layer> layer) {
  layers_.push_back(std::move(layer));
  return *this;
}

Tensor Sequential::Forward(const Tensor& input) {
  Tensor x = input;
  for (auto& layer : layers_) x = layer->Forward(x);
  return x;
}

Tensor Sequential::Infer(const Tensor& input) const {
  Tensor x = input;
  for (const auto& layer : layers_) x = layer->Infer(x);
  return x;
}

Tensor Sequential::Backward(const Tensor& grad_output) {
  Tensor g = grad_output;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    g = (*it)->Backward(g);
  }
  return g;
}

void Sequential::CollectParameters(std::vector<Parameter*>* out) {
  for (auto& layer : layers_) layer->CollectParameters(out);
}

void Sequential::ClearCache() {
  for (auto& layer : layers_) layer->ClearCache();
}

// --- Losses --------------------------------------------------------------------

double BceWithLogits(const Tensor& logits, const Tensor& targets,
                     const Tensor* mask, Tensor* grad) {
  OTIF_CHECK_EQ(logits.size(), targets.size());
  if (mask != nullptr) OTIF_CHECK_EQ(mask->size(), logits.size());
  *grad = Tensor(logits.shape());
  double loss = 0.0;
  int64_t count = 0;
  for (int64_t i = 0; i < logits.size(); ++i) {
    if (mask != nullptr && (*mask)[i] == 0.0f) continue;
    const float x = logits[i];
    const float t = targets[i];
    // log(1 + e^-|x|) + max(x, 0) - x*t is the stable BCE-with-logits form.
    loss += std::log1p(std::exp(-std::abs(x))) + std::max(x, 0.0f) - x * t;
    (*grad)[i] = StableSigmoid(x) - t;
    ++count;
  }
  if (count == 0) return 0.0;
  const float inv = 1.0f / static_cast<float>(count);
  grad->Scale(inv);
  return loss / static_cast<double>(count);
}

double MseLoss(const Tensor& pred, const Tensor& target, Tensor* grad) {
  OTIF_CHECK_EQ(pred.size(), target.size());
  OTIF_CHECK_GT(pred.size(), 0);
  *grad = Tensor(pred.shape());
  double loss = 0.0;
  for (int64_t i = 0; i < pred.size(); ++i) {
    const float d = pred[i] - target[i];
    loss += 0.5 * d * d;
    (*grad)[i] = d;
  }
  const float inv = 1.0f / static_cast<float>(pred.size());
  grad->Scale(inv);
  return loss / static_cast<double>(pred.size());
}

}  // namespace otif::nn
