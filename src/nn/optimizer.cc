#include "nn/optimizer.h"

#include <cmath>

namespace otif::nn {

Adam::Adam(std::vector<Parameter*> params, Options options)
    : params_(std::move(params)), options_(options) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (Parameter* p : params_) {
    OTIF_CHECK(p != nullptr);
    m_.emplace_back(p->value.shape());
    v_.emplace_back(p->value.shape());
  }
}

void Adam::Step() {
  ++step_;
  // Optional global-norm clipping stabilizes RNN training.
  double scale = 1.0;
  if (options_.clip_norm > 0) {
    double sq = 0.0;
    for (Parameter* p : params_) sq += p->grad.SumSquares();
    const double norm = std::sqrt(sq);
    if (norm > options_.clip_norm) scale = options_.clip_norm / norm;
  }
  const double bc1 = 1.0 - std::pow(options_.beta1, step_);
  const double bc2 = 1.0 - std::pow(options_.beta2, step_);
  for (size_t pi = 0; pi < params_.size(); ++pi) {
    Parameter* p = params_[pi];
    Tensor& m = m_[pi];
    Tensor& v = v_[pi];
    for (int64_t i = 0; i < p->value.size(); ++i) {
      const double g = p->grad[i] * scale;
      m[i] = static_cast<float>(options_.beta1 * m[i] +
                                (1.0 - options_.beta1) * g);
      v[i] = static_cast<float>(options_.beta2 * v[i] +
                                (1.0 - options_.beta2) * g * g);
      const double m_hat = m[i] / bc1;
      const double v_hat = v[i] / bc2;
      p->value[i] -= static_cast<float>(
          options_.learning_rate * m_hat /
          (std::sqrt(v_hat) + options_.epsilon));
    }
    p->ZeroGrad();
  }
}

void Adam::ZeroGrad() {
  for (Parameter* p : params_) p->ZeroGrad();
}

}  // namespace otif::nn
