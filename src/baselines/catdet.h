#ifndef OTIF_BASELINES_CATDET_H_
#define OTIF_BASELINES_CATDET_H_

#include "baselines/baseline.h"

namespace otif::baselines {

/// CaTDet (Mao et al., SysML 2019): a cascaded tracker-detector. The full
/// detector runs on a refresh schedule (every K-th frame); between
/// refreshes, the detector runs only inside windows proposed by the
/// tracker's motion predictions (Kalman), so compute follows the tracked
/// objects. No resolution or framerate tuning, matching the paper's
/// observation that CaTDet "does not optimize framerate or resolution".
class CaTDet : public TrackBaseline {
 public:
  std::string name() const override { return "catdet"; }

  std::vector<MethodPoint> Run(
      const std::vector<sim::Clip>& valid, const std::vector<sim::Clip>& test,
      const core::AccuracyFn& valid_accuracy,
      const core::AccuracyFn& test_accuracy) override;
};

}  // namespace otif::baselines

#endif  // OTIF_BASELINES_CATDET_H_
