#include "baselines/centertrack.h"

#include "track/iou_tracker.h"
#include "util/strings.h"

namespace otif::baselines {

models::DetectorArch CenterTrack::Backbone() {
  models::DetectorArch arch;
  arch.name = "centertrack_dla34";
  arch.sec_per_pixel = 6.5e-8;  // Between YOLOv3 and Mask R-CNN.
  arch.sec_per_invocation = 1.2e-3;
  // MOT17-grade on pedestrians, but transferred without dataset-specific
  // hyperparameter tuning it misses more vehicles and hallucinates more
  // (paper Sec 4.1: "performs poorly on all datasets except Amsterdam...
  // may require extensive hyperparameter tuning").
  arch.size50_px = 8.5;
  arch.size_slope = 0.26;
  arch.max_recall = 0.9;
  arch.fp_per_mpx = 1.4;
  arch.loc_jitter = 0.05;
  return arch;
}

std::vector<MethodPoint> CenterTrack::Run(
    const std::vector<sim::Clip>& valid, const std::vector<sim::Clip>& test,
    const core::AccuracyFn& valid_accuracy,
    const core::AccuracyFn& test_accuracy) {
  (void)valid;
  (void)valid_accuracy;
  const models::CostConstants& costs = models::DefaultCostConstants();
  models::SimulatedDetector detector(Backbone());

  std::vector<MethodPoint> points;
  // CenterTrack's offset head is trained at native resolution; the naive
  // tuning of the paper only tolerates modest downscaling.
  for (double scale : {1.0, 0.85, 0.7}) {
    for (int gap : {1, 2, 4}) {
      models::SimClock clock;
      std::vector<std::vector<track::Track>> tracks_per_clip;
      for (const sim::Clip& clip : test) {
        const sim::DatasetSpec& spec = clip.spec();
        track::IouTracker::Options topts;
        topts.frame_w = spec.width;
        topts.frame_h = spec.height;
        // The offset head only regresses small inter-frame motion: tight
        // displacement gate.
        topts.max_center_shift_frac = 0.08;
        topts.max_misses = 1;
        track::IouTracker tracker(topts);

        const int samples = (clip.num_frames() + gap - 1) / gap;
        clock.Charge(models::CostCategory::kDecode,
                     samples * std::min(gap, 9) *
                         (costs.decode_sec_per_frame +
                          spec.width * scale * spec.height * scale *
                              costs.decode_sec_per_pixel));
        for (int f = 0; f < clip.num_frames(); f += gap) {
          clock.Charge(models::CostCategory::kDetect,
                       detector.FullFrameSeconds(clip, scale));
          track::FrameDetections dets = models::FilterByConfidence(
              detector.Detect(clip, f, scale), 0.4);
          clock.Charge(models::CostCategory::kTrack,
                       costs.sort_sec_per_detection * dets.size());
          tracker.ProcessFrame(f, dets);
        }
        tracks_per_clip.push_back(tracker.Finish(2));
      }
      MethodPoint p;
      p.label = StrFormat("centertrack(scale=%.2f gap=%d)", scale, gap);
      p.seconds = clock.TotalSeconds();
      p.reusable_seconds = p.seconds;
      p.accuracy = test_accuracy(tracks_per_clip);
      points.push_back(p);
    }
  }
  return points;
}

}  // namespace otif::baselines
