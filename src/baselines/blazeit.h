#ifndef OTIF_BASELINES_BLAZEIT_H_
#define OTIF_BASELINES_BLAZEIT_H_

#include "baselines/frame_query.h"

namespace otif::baselines {

/// BlazeIt (Kang et al.): frame-level limit queries via a query-specific
/// count-regression proxy. Pre-processing applies the proxy to every frame
/// (64x64-class inputs); query execution verifies frames with the full
/// detector from highest proxy score down until the limit is met. The
/// proxy is query-specific, so pre-processing repeats for every query.
class BlazeIt {
 public:
  struct Options {
    int train_steps = 400;
    int limit = 25;
    int min_separation_sec = 5;
    double detector_scale = 1.0;
  };

  /// Trains the per-query proxy on `train` (cost excluded per the paper),
  /// then executes the limit query over `test`.
  static FrameQueryReport RunQuery(const std::vector<sim::Clip>& train,
                                   const std::vector<sim::Clip>& test,
                                   const FrameTarget& target,
                                   const query::FramePredicate& predicate,
                                   const Options& options, uint64_t seed);

  /// Simulated per-frame proxy cost (decode at proxy resolution + tiny
  /// CNN), calibrated against the paper's Table 3 pre-processing anchor.
  static double ProxySecondsPerFrame();
};

}  // namespace otif::baselines

#endif  // OTIF_BASELINES_BLAZEIT_H_
