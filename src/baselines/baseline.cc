#include "baselines/baseline.h"

namespace otif::baselines {

const MethodPoint* FastestWithinTolerance(
    const std::vector<MethodPoint>& points, double best_accuracy,
    double tolerance) {
  const MethodPoint* fastest = nullptr;
  for (const MethodPoint& p : points) {
    if (p.accuracy + tolerance < best_accuracy) continue;
    if (fastest == nullptr || p.seconds < fastest->seconds) fastest = &p;
  }
  if (fastest == nullptr) {
    // No point reaches the tolerance band: report the most accurate point
    // (the method simply cannot match the best accuracy).
    for (const MethodPoint& p : points) {
      if (fastest == nullptr || p.accuracy > fastest->accuracy ||
          (p.accuracy == fastest->accuracy && p.seconds < fastest->seconds)) {
        fastest = &p;
      }
    }
  }
  return fastest;
}

}  // namespace otif::baselines
