#include "baselines/tasti.h"

#include <algorithm>

#include "sim/raster.h"
#include "util/rng.h"

namespace otif::baselines {

Tasti::Index Tasti::BuildIndex(const std::vector<sim::Clip>& test) {
  Index index;
  for (size_t ci = 0; ci < test.size(); ++ci) {
    sim::Rasterizer raster(&test[ci]);
    for (int f = 0; f < test[ci].num_frames(); ++f) {
      // Embed from a modest render; the cost model charges the 224x224
      // CNN that the real extractor would run.
      index.embeddings.push_back(
          {models::EmbedFrame(raster.Render(f, 64, 36)),
           FrameRef{static_cast<int>(ci), f}});
      index.preprocess_seconds += models::EmbeddingSecondsPerFrame();
    }
  }
  return index;
}

FrameQueryReport Tasti::RunQuery(const Index& index,
                                 const std::vector<sim::Clip>& train,
                                 const std::vector<sim::Clip>& test,
                                 const FrameTarget& target,
                                 const query::FramePredicate& predicate,
                                 const Options& options, uint64_t seed) {
  Rng rng(seed * 7 + 3);
  // Labeled reference set: embeddings + query targets on training frames.
  std::vector<std::pair<models::FrameEmbedding, double>> references;
  std::vector<std::unique_ptr<sim::Rasterizer>> rasters;
  for (const sim::Clip& clip : train) {
    rasters.push_back(std::make_unique<sim::Rasterizer>(&clip));
  }
  for (int i = 0; i < options.reference_frames; ++i) {
    const size_t ci = static_cast<size_t>(
        rng.UniformInt(static_cast<uint64_t>(train.size())));
    const int f = static_cast<int>(
        rng.UniformInt(static_cast<uint64_t>(train[ci].num_frames())));
    references.push_back(
        {models::EmbedFrame(rasters[ci]->Render(f, 64, 36)),
         target(GtVehicleBoxes(train[ci], f))});
  }

  FrameQueryReport report;
  report.preprocess_seconds = index.preprocess_seconds;

  // Score every indexed frame by kNN regression over the references. The
  // scoring model itself is cheap; charge a small per-frame cost.
  std::vector<std::pair<double, FrameRef>> scored;
  scored.reserve(index.embeddings.size());
  for (const auto& [emb, ref] : index.embeddings) {
    std::vector<std::pair<double, double>> dist_target;
    dist_target.reserve(references.size());
    for (const auto& [remb, t] : references) {
      dist_target.push_back({emb.DistanceTo(remb), t});
    }
    const size_t k =
        std::min<size_t>(static_cast<size_t>(options.knn), dist_target.size());
    std::partial_sort(dist_target.begin(), dist_target.begin() + k,
                      dist_target.end());
    double score = 0.0;
    for (size_t i = 0; i < k; ++i) score += dist_target[i].second;
    scored.push_back({k > 0 ? score / k : 0.0, ref});
    report.query_seconds += 2.0e-5;  // kNN scoring per frame.
  }

  const int separation =
      options.min_separation_sec * (test.empty() ? 30 : test[0].fps());
  VerifyByScore(test, scored, predicate, options.limit, separation,
                options.detector_scale, &report);
  return report;
}

}  // namespace otif::baselines
