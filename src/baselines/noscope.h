#ifndef OTIF_BASELINES_NOSCOPE_H_
#define OTIF_BASELINES_NOSCOPE_H_

#include "baselines/baseline.h"
#include "models/proxy.h"

namespace otif::baselines {

/// NoScope (Kang et al., VLDB 2017): a frame-level binary classification
/// proxy decides whether a frame contains at least one object; the detector
/// is skipped on confidently empty frames. No resolution or framerate
/// tuning. On busy datasets where every frame has objects the proxy skips
/// nothing, leaving only the two trivial operating points the paper
/// observes (run on everything / skip everything).
///
/// The frame classifier reuses the segmentation proxy architecture at the
/// smallest resolution with the frame score = max cell score, matching
/// NoScope's "is anything here" semantics.
class NoScope : public TrackBaseline {
 public:
  /// `proxy` is a trained smallest-resolution proxy model (shared with
  /// OTIF's training products to avoid re-training in experiments); the
  /// baseline only uses its frame-level max score.
  explicit NoScope(models::ProxyModel* proxy) : proxy_(proxy) {}

  std::string name() const override { return "noscope"; }

  std::vector<MethodPoint> Run(
      const std::vector<sim::Clip>& valid, const std::vector<sim::Clip>& test,
      const core::AccuracyFn& valid_accuracy,
      const core::AccuracyFn& test_accuracy) override;

 private:
  models::ProxyModel* proxy_;  // Not owned.
};

}  // namespace otif::baselines

#endif  // OTIF_BASELINES_NOSCOPE_H_
