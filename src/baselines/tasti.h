#ifndef OTIF_BASELINES_TASTI_H_
#define OTIF_BASELINES_TASTI_H_

#include "baselines/frame_query.h"
#include "models/embedding.h"

namespace otif::baselines {

/// TASTI (Kang et al.): a query-agnostic per-frame embedding index built
/// once (expensive: every frame at 224x224), plus a cheap query-specific
/// scoring model — k-nearest-neighbor regression from labeled reference
/// frames to the query target. Query execution then verifies frames with
/// the full detector from highest score down, like BlazeIt.
///
/// The embedding pass is reusable across queries; only scoring +
/// verification repeat per query.
class Tasti {
 public:
  struct Options {
    /// Reference frames labeled for kNN scoring (from training clips).
    int reference_frames = 400;
    int knn = 8;
    int limit = 25;
    int min_separation_sec = 5;
    double detector_scale = 1.0;
  };

  /// Embeds every test frame once; returns the embeddings and charges the
  /// pre-processing cost.
  struct Index {
    std::vector<std::pair<models::FrameEmbedding, FrameRef>> embeddings;
    double preprocess_seconds = 0.0;
  };
  static Index BuildIndex(const std::vector<sim::Clip>& test);

  /// Executes one query against a pre-built index. `report.preprocess_
  /// seconds` is copied from the index (reusable across queries).
  static FrameQueryReport RunQuery(const Index& index,
                                   const std::vector<sim::Clip>& train,
                                   const std::vector<sim::Clip>& test,
                                   const FrameTarget& target,
                                   const query::FramePredicate& predicate,
                                   const Options& options, uint64_t seed);
};

}  // namespace otif::baselines

#endif  // OTIF_BASELINES_TASTI_H_
