#ifndef OTIF_BASELINES_CHAMELEON_H_
#define OTIF_BASELINES_CHAMELEON_H_

#include "baselines/baseline.h"
#include "core/pipeline.h"

namespace otif::baselines {

/// Chameleon (Jiang et al., SIGCOMM 2018): adapts the detector input
/// resolution, architecture, and sampling framerate by profiling candidate
/// configurations, but uses a heuristic tracker and no spatial proxy.
/// Implemented as a hill-climbing sweep over (arch, scale, gap) with SORT,
/// mirroring the paper's description of Chameleon as a configuration
/// adapter for the detection pipeline.
class Chameleon : public TrackBaseline {
 public:
  std::string name() const override { return "chameleon"; }

  std::vector<MethodPoint> Run(
      const std::vector<sim::Clip>& valid, const std::vector<sim::Clip>& test,
      const core::AccuracyFn& valid_accuracy,
      const core::AccuracyFn& test_accuracy) override;
};

/// Shared helper: evaluates a plain (no proxy / SORT) pipeline config on a
/// clip set and returns a MethodPoint. Everything in these baselines is
/// reusable across queries (tracks out), so query_seconds = 0.
MethodPoint EvaluatePlainConfig(const std::string& label,
                                const core::PipelineConfig& config,
                                const std::vector<sim::Clip>& clips,
                                const core::AccuracyFn& accuracy);

}  // namespace otif::baselines

#endif  // OTIF_BASELINES_CHAMELEON_H_
