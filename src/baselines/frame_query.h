#ifndef OTIF_BASELINES_FRAME_QUERY_H_
#define OTIF_BASELINES_FRAME_QUERY_H_

#include <functional>
#include <memory>
#include <vector>

#include "models/cost_model.h"
#include "nn/layers.h"
#include "nn/optimizer.h"
#include "query/queries.h"
#include "sim/world.h"

namespace otif::baselines {

/// Query-specific scalar target for proxy training / kNN scoring: e.g. the
/// number of vehicles (count query), vehicles inside the region, or the
/// largest hot-spot cluster size.
using FrameTarget = std::function<double(const std::vector<geom::BBox>&)>;

/// Target functions matching the three limit-query types (Sec 4.2).
FrameTarget CountTarget();
FrameTarget RegionTarget(geom::Polygon region);
FrameTarget HotSpotTarget(double radius);

/// A frame reference in a multi-clip dataset.
struct FrameRef {
  int clip_index = 0;
  int frame = 0;
};

/// Result of executing one frame-level limit query.
struct FrameQueryReport {
  /// Pre-processing simulated seconds (proxy/embedding pass over the
  /// dataset). Reusable across queries for TASTI, per-query for BlazeIt.
  double preprocess_seconds = 0.0;
  /// Query-specific simulated seconds (scoring + detector verification).
  double query_seconds = 0.0;
  int detector_invocations = 0;
  std::vector<FrameRef> output_frames;
  /// Fraction of output frames whose ground truth satisfies the predicate.
  double accuracy = 1.0;
};

/// BlazeIt-style per-frame count regressor: a small CNN over a 32x32
/// rasterized frame trained with MSE against a query-specific scalar
/// target. Really trained with backprop (training cost is excluded from
/// runtimes, as in the paper).
class CountRegressor {
 public:
  explicit CountRegressor(uint64_t seed);

  CountRegressor(const CountRegressor&) = delete;
  CountRegressor& operator=(const CountRegressor&) = delete;

  /// Predicted target value for a frame (rendered at 32x32).
  double Predict(const video::Image& frame32);

  /// One MSE training step; returns the loss.
  double TrainStep(const video::Image& frame32, double target);

  /// Input side length the regressor consumes.
  static constexpr int kInputSide = 32;

 private:
  nn::Sequential net_;
  std::unique_ptr<nn::Adam> optimizer_;
};

/// Ground-truth vehicle boxes in a frame (shared by target computation).
std::vector<geom::BBox> GtVehicleBoxes(const sim::Clip& clip, int frame);

/// Shared verification loop used by BlazeIt and TASTI: walk frames from
/// highest score to lowest, run the full detector on each, accept frames
/// whose *detected* boxes satisfy the predicate (subject to the minimum
/// separation), until `limit` outputs are found or the scores are
/// exhausted. Charges detector time to the report.
void VerifyByScore(const std::vector<sim::Clip>& clips,
                   const std::vector<std::pair<double, FrameRef>>& scored,
                   const query::FramePredicate& predicate, int limit,
                   int min_separation_frames, double detector_scale,
                   FrameQueryReport* report);

}  // namespace otif::baselines

#endif  // OTIF_BASELINES_FRAME_QUERY_H_
