#ifndef OTIF_BASELINES_CENTERTRACK_H_
#define OTIF_BASELINES_CENTERTRACK_H_

#include "baselines/baseline.h"

namespace otif::baselines {

/// CenterTrack (Zhou et al., ECCV 2020): a high-accuracy multi-object
/// tracker that runs a heavy joint detection+offset network on consecutive
/// frame pairs. A speed-accuracy tradeoff is obtained only by naive
/// resolution and framerate tuning (as the paper does in Sec 4). The
/// integrated network pairs frames, so association quality collapses at
/// large sampling gaps — modeled by the pairwise tracker with a tight
/// displacement gate.
class CenterTrack : public TrackBaseline {
 public:
  std::string name() const override { return "centertrack"; }

  std::vector<MethodPoint> Run(
      const std::vector<sim::Clip>& valid, const std::vector<sim::Clip>& test,
      const core::AccuracyFn& valid_accuracy,
      const core::AccuracyFn& test_accuracy) override;

  /// The DLA-34 backbone cost profile (heavier than YOLOv3, close to Mask
  /// R-CNN), exposed for tests.
  static models::DetectorArch Backbone();
};

}  // namespace otif::baselines

#endif  // OTIF_BASELINES_CENTERTRACK_H_
