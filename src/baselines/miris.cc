#include "baselines/miris.h"

#include <algorithm>

#include "baselines/chameleon.h"
#include "track/iou_tracker.h"
#include "util/strings.h"

namespace otif::baselines {
namespace {

// Refinement: recover a track's true start (dir = -1) or end (dir = +1) by
// probing intermediate frames at successively halved steps, running the
// detector in a small window around the extrapolated position. Charges one
// windowed detector invocation per probe. Returns the extension detections
// found.
std::vector<track::Detection> RefineEndpoint(
    const sim::Clip& clip, const track::Track& t, int dir, int gap,
    double scale, const models::SimulatedDetector& detector,
    models::SimClock* clock) {
  std::vector<track::Detection> extension;
  if (t.detections.size() < 2) return extension;
  const track::Detection& edge =
      dir < 0 ? t.detections.front() : t.detections.back();
  const track::Detection& inner =
      dir < 0 ? t.detections[1] : t.detections[t.detections.size() - 2];
  // Per-frame velocity from the edge pair.
  const int span = std::max(1, std::abs(edge.frame - inner.frame));
  const double vx = (edge.box.cx - inner.box.cx) / span;
  const double vy = (edge.box.cy - inner.box.cy) / span;

  geom::BBox last_box = edge.box;
  int last_frame = edge.frame;
  int step = std::max(1, gap / 2);
  const double window = std::max(edge.box.w, edge.box.h) * 3.0;
  while (step >= 1) {
    const int probe = last_frame + dir * step;
    if (probe < 0 || probe >= clip.num_frames()) {
      step /= 2;
      continue;
    }
    // Windowed detector invocation around the extrapolated position.
    clock->Charge(models::CostCategory::kDetect,
                  models::DetectorWindowSeconds(detector.arch(),
                                                window * scale,
                                                window * scale));
    const geom::BBox predicted =
        last_box.Shifted(vx * dir * step, vy * dir * step);
    const geom::BBox probe_window(predicted.cx, predicted.cy, window, window);
    bool found = false;
    for (const track::Detection& d : detector.Detect(clip, probe, scale)) {
      if (!probe_window.Contains(d.box.Center())) continue;
      if (d.box.Iou(predicted) < 0.05 &&
          d.box.Center().DistanceTo(predicted.Center()) > window / 2) {
        continue;
      }
      track::Detection ext = d;
      ext.frame = probe;
      extension.push_back(ext);
      last_box = d.box;
      last_frame = probe;
      found = true;
      break;
    }
    if (!found) step /= 2;  // Object gone: localize the boundary finer.
  }
  if (dir < 0) std::reverse(extension.begin(), extension.end());
  return extension;
}

}  // namespace

std::vector<std::vector<track::Track>> Miris::RunAtGap(
    const std::vector<sim::Clip>& clips, int gap, double detector_scale,
    models::SimClock* clock) {
  const models::CostConstants& costs = models::DefaultCostConstants();
  const models::DetectorArch arch =
      models::ArchByName(models::StandardDetectorArchs(), "yolov3");
  models::SimulatedDetector detector(arch);

  std::vector<std::vector<track::Track>> out;
  for (const sim::Clip& clip : clips) {
    const sim::DatasetSpec& spec = clip.spec();
    track::IouTracker::Options topts;
    topts.frame_w = spec.width;
    topts.frame_h = spec.height;
    topts.max_misses = 2;
    track::IouTracker tracker(topts);

    // Decode cost at the detector resolution (same model as the pipeline).
    const int samples = (clip.num_frames() + gap - 1) / gap;
    const double frames_per_sample = gap < 16 ? gap : 9.0;
    clock->Charge(models::CostCategory::kDecode,
                  samples * frames_per_sample *
                      (costs.decode_sec_per_frame +
                       spec.width * detector_scale * spec.height *
                           detector_scale * costs.decode_sec_per_pixel));

    for (int f = 0; f < clip.num_frames(); f += gap) {
      clock->Charge(models::CostCategory::kDetect,
                    detector.FullFrameSeconds(clip, detector_scale));
      track::FrameDetections dets = models::FilterByConfidence(
          detector.Detect(clip, f, detector_scale), 0.4);
      clock->Charge(models::CostCategory::kTrack,
                    costs.sort_sec_per_detection * dets.size());
      tracker.ProcessFrame(f, dets);
    }
    std::vector<track::Track> tracks = tracker.Finish(2);

    // Query-specific refinement: recover each track's true start and end by
    // probing extra frames (this cost repeats per query).
    if (gap > 1) {
      for (track::Track& t : tracks) {
        auto head = RefineEndpoint(clip, t, -1, gap, detector_scale, detector,
                                   clock);
        auto tail = RefineEndpoint(clip, t, +1, gap, detector_scale, detector,
                                   clock);
        t.detections.insert(t.detections.begin(), head.begin(), head.end());
        t.detections.insert(t.detections.end(), tail.begin(), tail.end());
      }
    }
    out.push_back(std::move(tracks));
  }
  return out;
}

std::vector<MethodPoint> Miris::Run(
    const std::vector<sim::Clip>& valid, const std::vector<sim::Clip>& test,
    const core::AccuracyFn& valid_accuracy,
    const core::AccuracyFn& test_accuracy) {
  (void)valid;
  (void)valid_accuracy;
  // Miris exposes its error-tolerance knob, which maps to the sampling gap
  // plan; sweep gaps directly (the validation step would pick the same
  // Pareto set since the curve is monotone in the gap).
  std::vector<MethodPoint> points;
  for (int gap : {1, 2, 4, 8, 16, 32}) {
    models::SimClock clock;
    auto tracks = RunAtGap(test, gap, 1.0, &clock);
    MethodPoint p;
    p.label = StrFormat("miris(gap=%d)", gap);
    p.seconds = clock.TotalSeconds();
    // The entire execution is query-driven: repeat per query.
    p.reusable_seconds = 0.0;
    p.query_seconds = p.seconds;
    p.accuracy = test_accuracy(tracks);
    points.push_back(p);
  }
  return points;
}

}  // namespace otif::baselines
