#ifndef OTIF_BASELINES_BASELINE_H_
#define OTIF_BASELINES_BASELINE_H_

#include <string>
#include <vector>

#include "core/best_config.h"
#include "sim/world.h"

namespace otif::baselines {

/// One operating point of a baseline on a clip set: simulated runtime,
/// accuracy, and the per-clip tracks it produced.
struct MethodPoint {
  std::string label;
  double seconds = 0.0;
  double accuracy = 0.0;
  /// Multiplier for the query-specific part of the method's runtime when
  /// executing additional queries: seconds for Q queries =
  /// reusable_seconds + query_seconds * Q. For track baselines whose whole
  /// output is reusable, query_seconds = 0.
  double reusable_seconds = 0.0;
  double query_seconds = 0.0;
};

/// A track-extraction baseline: selects Pareto configurations on the
/// validation set, then reports test-set points.
class TrackBaseline {
 public:
  virtual ~TrackBaseline() = default;
  virtual std::string name() const = 0;

  /// Returns the speed-accuracy points measured on `test`, using `valid`
  /// for any parameter selection the method performs.
  virtual std::vector<MethodPoint> Run(
      const std::vector<sim::Clip>& valid, const std::vector<sim::Clip>& test,
      const core::AccuracyFn& valid_accuracy,
      const core::AccuracyFn& test_accuracy) = 0;
};

/// Picks the fastest point within `tolerance` of the best accuracy across
/// `points` (the Table 2 selection rule). `best_accuracy` is the best
/// accuracy achieved by ANY method on this workload.
const MethodPoint* FastestWithinTolerance(
    const std::vector<MethodPoint>& points, double best_accuracy,
    double tolerance);

}  // namespace otif::baselines

#endif  // OTIF_BASELINES_BASELINE_H_
