#ifndef OTIF_BASELINES_MIRIS_H_
#define OTIF_BASELINES_MIRIS_H_

#include "baselines/baseline.h"
#include "models/detector.h"

namespace otif::baselines {

/// Miris (Bastani et al., SIGMOD 2020): query-driven variable-rate
/// tracking. Tracks at reduced sampling rates with a GNN matcher that only
/// compares consecutive processed frames (modeled by the pairwise IoU +
/// displacement tracker), then *refines* tracks by processing additional
/// frames at finer rates around each track's endpoints to recover the true
/// start/end (binary sub-division with windowed detector invocations).
///
/// The refinement and rate-planning phases are query-specific, so the
/// whole execution repeats per query (query_seconds = full runtime); this
/// is what makes Miris 5x more expensive for five queries (Table 2).
class Miris : public TrackBaseline {
 public:
  std::string name() const override { return "miris"; }

  std::vector<MethodPoint> Run(
      const std::vector<sim::Clip>& valid, const std::vector<sim::Clip>& test,
      const core::AccuracyFn& valid_accuracy,
      const core::AccuracyFn& test_accuracy) override;

  /// Runs Miris at one sampling gap over a clip set. Exposed for tests.
  /// Returns the per-clip tracks; charges detection/track/refinement costs
  /// to `clock`.
  static std::vector<std::vector<track::Track>> RunAtGap(
      const std::vector<sim::Clip>& clips, int gap, double detector_scale,
      models::SimClock* clock);
};

}  // namespace otif::baselines

#endif  // OTIF_BASELINES_MIRIS_H_
