#include "baselines/chameleon.h"

#include <algorithm>

#include "util/strings.h"

namespace otif::baselines {

MethodPoint EvaluatePlainConfig(const std::string& label,
                                const core::PipelineConfig& config,
                                const std::vector<sim::Clip>& clips,
                                const core::AccuracyFn& accuracy) {
  core::EvalResult r =
      core::EvaluateConfig(config, nullptr, clips, accuracy);
  MethodPoint p;
  p.label = label;
  p.seconds = r.seconds;
  p.reusable_seconds = r.seconds;
  p.accuracy = r.accuracy;
  return p;
}

std::vector<MethodPoint> Chameleon::Run(
    const std::vector<sim::Clip>& valid, const std::vector<sim::Clip>& test,
    const core::AccuracyFn& valid_accuracy,
    const core::AccuracyFn& test_accuracy) {
  // Hill climb on the validation set: start from the slowest configuration
  // and repeatedly apply whichever knob update (resolution step, gap
  // doubling, architecture switch) loses the least accuracy; each accepted
  // update is one Pareto candidate.
  const std::vector<double> scales = core::StandardDetectorScales();
  core::PipelineConfig current;
  current.detector_arch = "mask_rcnn";
  current.detector_scale = 1.0;
  current.sampling_gap = 1;
  current.tracker = core::TrackerKind::kSort;

  std::vector<core::PipelineConfig> selected = {current};
  size_t scale_idx = 0;
  for (int iter = 0; iter < 12; ++iter) {
    std::vector<std::pair<core::PipelineConfig, size_t>> candidates;
    if (scale_idx + 1 < scales.size()) {
      core::PipelineConfig c = current;
      c.detector_scale = scales[scale_idx + 1];
      candidates.push_back({c, scale_idx + 1});
    }
    if (current.sampling_gap < 32) {
      core::PipelineConfig c = current;
      c.sampling_gap *= 2;
      candidates.push_back({c, scale_idx});
    }
    {
      core::PipelineConfig c = current;
      c.detector_arch =
          current.detector_arch == "yolov3" ? "mask_rcnn" : "yolov3";
      // Architecture switch is only a speedup in one direction.
      if (c.detector_arch == "yolov3") candidates.push_back({c, scale_idx});
    }
    if (candidates.empty()) break;
    double best_acc = -1.0;
    core::PipelineConfig best_config;
    size_t best_scale_idx = scale_idx;
    for (const auto& [c, si] : candidates) {
      const double acc =
          core::EvaluateConfig(c, nullptr, valid, valid_accuracy).accuracy;
      if (acc > best_acc) {
        best_acc = acc;
        best_config = c;
        best_scale_idx = si;
      }
    }
    current = best_config;
    scale_idx = best_scale_idx;
    selected.push_back(current);
  }

  std::vector<MethodPoint> points;
  for (const core::PipelineConfig& c : selected) {
    points.push_back(EvaluatePlainConfig(
        StrFormat("chameleon(%s)", c.ToString().c_str()), c, test,
        test_accuracy));
  }
  return points;
}

}  // namespace otif::baselines
