#include "baselines/blazeit.h"

#include "sim/raster.h"
#include "util/rng.h"

namespace otif::baselines {

double BlazeIt::ProxySecondsPerFrame() {
  // 64x64 specialized NN plus decode overhead; calibrated so that a 1-hour
  // 30 fps dataset takes on the order of the paper's ~100 s pre-processing.
  return 1.0e-3;
}

FrameQueryReport BlazeIt::RunQuery(const std::vector<sim::Clip>& train,
                                   const std::vector<sim::Clip>& test,
                                   const FrameTarget& target,
                                   const query::FramePredicate& predicate,
                                   const Options& options, uint64_t seed) {
  CountRegressor regressor(seed);
  Rng rng(seed * 3 + 1);

  // Train the query-specific proxy on ground-truth-derived targets from
  // the training clips (the paper trains on detector outputs; targets here
  // come from the same source as our theta_best labels).
  std::vector<std::unique_ptr<sim::Rasterizer>> train_rasters;
  for (const sim::Clip& clip : train) {
    train_rasters.push_back(std::make_unique<sim::Rasterizer>(&clip));
  }
  for (int step = 0; step < options.train_steps; ++step) {
    const size_t ci = static_cast<size_t>(
        rng.UniformInt(static_cast<uint64_t>(train.size())));
    const int f = static_cast<int>(
        rng.UniformInt(static_cast<uint64_t>(train[ci].num_frames())));
    const double t = target(GtVehicleBoxes(train[ci], f));
    regressor.TrainStep(
        train_rasters[ci]->Render(f, CountRegressor::kInputSide,
                                  CountRegressor::kInputSide),
        t);
  }

  // Pre-processing: score every test frame (query-specific!).
  FrameQueryReport report;
  std::vector<std::pair<double, FrameRef>> scored;
  for (size_t ci = 0; ci < test.size(); ++ci) {
    sim::Rasterizer raster(&test[ci]);
    for (int f = 0; f < test[ci].num_frames(); ++f) {
      const double score = regressor.Predict(raster.Render(
          f, CountRegressor::kInputSide, CountRegressor::kInputSide));
      scored.push_back({score, FrameRef{static_cast<int>(ci), f}});
      report.preprocess_seconds += ProxySecondsPerFrame();
    }
  }

  // Query execution: verify from the highest-scoring frames down.
  const int separation =
      options.min_separation_sec * (test.empty() ? 30 : test[0].fps());
  VerifyByScore(test, scored, predicate, options.limit, separation,
                options.detector_scale, &report);
  return report;
}

}  // namespace otif::baselines
