#include "baselines/frame_query.h"

#include <algorithm>

#include "models/detector.h"
#include "util/logging.h"
#include "util/rng.h"

namespace otif::baselines {

FrameTarget CountTarget() {
  return [](const std::vector<geom::BBox>& boxes) {
    return static_cast<double>(boxes.size());
  };
}

FrameTarget RegionTarget(geom::Polygon region) {
  return [region = std::move(region)](const std::vector<geom::BBox>& boxes) {
    int inside = 0;
    for (const geom::BBox& b : boxes) {
      if (region.Contains(b.Center())) ++inside;
    }
    return static_cast<double>(inside);
  };
}

FrameTarget HotSpotTarget(double radius) {
  return [radius](const std::vector<geom::BBox>& boxes) {
    int best = 0;
    for (const geom::BBox& center : boxes) {
      int nearby = 0;
      for (const geom::BBox& other : boxes) {
        if (center.Center().DistanceTo(other.Center()) <= radius) ++nearby;
      }
      best = std::max(best, nearby);
    }
    return static_cast<double>(best);
  };
}

CountRegressor::CountRegressor(uint64_t seed) {
  Rng rng(seed);
  net_.Add(std::make_unique<nn::Conv2d>(1, 8, 3, 2, &rng));
  net_.Add(std::make_unique<nn::Relu>());
  net_.Add(std::make_unique<nn::Conv2d>(8, 16, 3, 2, &rng));
  net_.Add(std::make_unique<nn::Relu>());
  net_.Add(std::make_unique<nn::Conv2d>(16, 16, 3, 2, &rng));
  net_.Add(std::make_unique<nn::Relu>());
  net_.Add(std::make_unique<nn::Conv2d>(16, 1, 3, 1, &rng));
  net_.Add(std::make_unique<nn::Relu>());  // Non-negative cell counts.
  std::vector<nn::Parameter*> params;
  net_.CollectParameters(&params);
  nn::Adam::Options opts;
  opts.learning_rate = 2e-3;
  optimizer_ = std::make_unique<nn::Adam>(std::move(params), opts);
}

namespace {

nn::Tensor ImageToTensor32(const video::Image& frame) {
  video::Image sized = frame;
  if (frame.width() != CountRegressor::kInputSide ||
      frame.height() != CountRegressor::kInputSide) {
    sized = frame.Resized(CountRegressor::kInputSide,
                          CountRegressor::kInputSide);
  }
  nn::Tensor t({1, CountRegressor::kInputSide, CountRegressor::kInputSide});
  for (int y = 0; y < sized.height(); ++y) {
    for (int x = 0; x < sized.width(); ++x) {
      t.at3(0, y, x) = sized.at(x, y) - 0.5f;
    }
  }
  return t;
}

double SumCells(const nn::Tensor& grid) {
  double sum = 0.0;
  for (int64_t i = 0; i < grid.size(); ++i) sum += grid[i];
  return sum;
}

}  // namespace

double CountRegressor::Predict(const video::Image& frame32) {
  nn::Tensor grid = net_.Forward(ImageToTensor32(frame32));
  net_.ClearCache();
  return SumCells(grid);
}

double CountRegressor::TrainStep(const video::Image& frame32, double target) {
  nn::Tensor grid = net_.Forward(ImageToTensor32(frame32));
  const double predicted = SumCells(grid);
  const double err = predicted - target;
  // d(0.5 * err^2)/d(cell) = err for every cell (prediction is the sum).
  nn::Tensor grad(grid.shape());
  const float g = static_cast<float>(
      std::clamp(err, -10.0, 10.0) / static_cast<double>(grid.size()));
  for (int64_t i = 0; i < grad.size(); ++i) grad[i] = g;
  net_.Backward(grad);
  optimizer_->Step();
  return 0.5 * err * err;
}

std::vector<geom::BBox> GtVehicleBoxes(const sim::Clip& clip, int frame) {
  std::vector<geom::BBox> boxes;
  for (const sim::VisibleObject& vis : clip.VisibleAt(frame)) {
    const sim::GtObject& obj =
        clip.objects()[static_cast<size_t>(vis.object_index)];
    if (obj.cls == track::ObjectClass::kPedestrian) continue;
    boxes.push_back(obj.states[static_cast<size_t>(vis.state_index)].box);
  }
  return boxes;
}

void VerifyByScore(const std::vector<sim::Clip>& clips,
                   const std::vector<std::pair<double, FrameRef>>& scored,
                   const query::FramePredicate& predicate, int limit,
                   int min_separation_frames, double detector_scale,
                   FrameQueryReport* report) {
  OTIF_CHECK(report != nullptr);
  std::vector<std::pair<double, FrameRef>> order = scored;
  std::stable_sort(order.begin(), order.end(),
                   [](const auto& a, const auto& b) {
                     return a.first > b.first;
                   });
  const models::DetectorArch arch =
      models::ArchByName(models::StandardDetectorArchs(), "yolov3");
  models::SimulatedDetector detector(arch);

  std::vector<FrameRef> accepted;
  for (const auto& [score, ref] : order) {
    if (static_cast<int>(accepted.size()) >= limit) break;
    bool separated = true;
    for (const FrameRef& a : accepted) {
      if (a.clip_index == ref.clip_index &&
          std::abs(a.frame - ref.frame) < min_separation_frames) {
        separated = false;
        break;
      }
    }
    if (!separated) continue;
    const sim::Clip& clip = clips[static_cast<size_t>(ref.clip_index)];
    report->query_seconds += models::DetectorWindowSeconds(
        arch, clip.spec().width * detector_scale,
        clip.spec().height * detector_scale);
    ++report->detector_invocations;
    const track::FrameDetections dets = models::FilterByConfidence(
        detector.Detect(clip, ref.frame, detector_scale), 0.4);
    std::vector<geom::BBox> boxes;
    for (const track::Detection& d : dets) {
      if (d.cls != track::ObjectClass::kPedestrian) boxes.push_back(d.box);
    }
    if (predicate.Matches(boxes)) accepted.push_back(ref);
  }
  report->output_frames = accepted;
  if (accepted.empty()) {
    report->accuracy = 1.0;
  } else {
    int good = 0;
    for (const FrameRef& ref : accepted) {
      if (query::GroundTruthMatches(clips[static_cast<size_t>(ref.clip_index)],
                                    ref.frame, predicate)) {
        ++good;
      }
    }
    report->accuracy =
        static_cast<double>(good) / static_cast<double>(accepted.size());
  }
}

}  // namespace otif::baselines
