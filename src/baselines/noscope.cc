#include "baselines/noscope.h"

#include <algorithm>

#include "sim/raster.h"
#include "track/iou_tracker.h"
#include "util/strings.h"

namespace otif::baselines {

std::vector<MethodPoint> NoScope::Run(
    const std::vector<sim::Clip>& valid, const std::vector<sim::Clip>& test,
    const core::AccuracyFn& valid_accuracy,
    const core::AccuracyFn& test_accuracy) {
  (void)valid;
  (void)valid_accuracy;
  const models::CostConstants& costs = models::DefaultCostConstants();
  const models::DetectorArch arch =
      models::ArchByName(models::StandardDetectorArchs(), "yolov3");
  models::SimulatedDetector detector(arch);

  // Per-frame max proxy scores, computed once and swept over thresholds.
  std::vector<std::vector<double>> frame_scores(test.size());
  for (size_t ci = 0; ci < test.size(); ++ci) {
    sim::Rasterizer raster(&test[ci]);
    frame_scores[ci].reserve(static_cast<size_t>(test[ci].num_frames()));
    for (int f = 0; f < test[ci].num_frames(); ++f) {
      const nn::Tensor scores = proxy_->Score(
          raster.Render(f, proxy_->resolution().raster_w(),
                        proxy_->resolution().raster_h()));
      double max_score = 0.0;
      for (int64_t i = 0; i < scores.size(); ++i) {
        max_score = std::max<double>(max_score, scores[i]);
      }
      frame_scores[ci].push_back(max_score);
    }
  }

  std::vector<MethodPoint> points;
  for (double skip_threshold : {0.0, 0.3, 0.5, 0.7, 0.9, 1.01}) {
    models::SimClock clock;
    std::vector<std::vector<track::Track>> tracks_per_clip;
    for (size_t ci = 0; ci < test.size(); ++ci) {
      const sim::Clip& clip = test[ci];
      const sim::DatasetSpec& spec = clip.spec();
      track::IouTracker::Options topts;
      topts.frame_w = spec.width;
      topts.frame_h = spec.height;
      topts.max_misses = 2;
      track::IouTracker tracker(topts);

      // NoScope decodes every frame at native resolution.
      clock.Charge(models::CostCategory::kDecode,
                   clip.num_frames() *
                       (costs.decode_sec_per_frame +
                        static_cast<double>(spec.width) * spec.height *
                            costs.decode_sec_per_pixel));
      for (int f = 0; f < clip.num_frames(); ++f) {
        double frame_score = 1.0;
        if (skip_threshold > 0.0) {
          frame_score = frame_scores[ci][static_cast<size_t>(f)];
          clock.Charge(models::CostCategory::kProxy,
                       costs.proxy_sec_per_frame +
                           costs.proxy_sec_per_pixel *
                               proxy_->resolution().world_pixels());
        }
        track::FrameDetections dets;
        if (frame_score >= skip_threshold) {
          clock.Charge(models::CostCategory::kDetect,
                       detector.FullFrameSeconds(clip, 1.0));
          dets = models::FilterByConfidence(detector.Detect(clip, f, 1.0),
                                            0.4);
        }
        clock.Charge(models::CostCategory::kTrack,
                     costs.sort_sec_per_detection * dets.size());
        tracker.ProcessFrame(f, dets);
      }
      tracks_per_clip.push_back(tracker.Finish(2));
    }
    MethodPoint p;
    p.label = StrFormat("noscope(skip<%.2f)", skip_threshold);
    p.seconds = clock.TotalSeconds();
    p.reusable_seconds = p.seconds;
    p.accuracy = test_accuracy(tracks_per_clip);
    points.push_back(p);
  }
  return points;
}

}  // namespace otif::baselines
