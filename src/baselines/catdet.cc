#include "baselines/catdet.h"

#include <algorithm>

#include "track/kalman.h"
#include "track/sort_tracker.h"
#include "util/strings.h"

namespace otif::baselines {

std::vector<MethodPoint> CaTDet::Run(
    const std::vector<sim::Clip>& valid, const std::vector<sim::Clip>& test,
    const core::AccuracyFn& valid_accuracy,
    const core::AccuracyFn& test_accuracy) {
  (void)valid;
  (void)valid_accuracy;
  const models::CostConstants& costs = models::DefaultCostConstants();
  const models::DetectorArch arch =
      models::ArchByName(models::StandardDetectorArchs(), "yolov3");
  models::SimulatedDetector detector(arch);

  std::vector<MethodPoint> points;
  for (int refresh : {1, 2, 4, 8, 16}) {
    models::SimClock clock;
    std::vector<std::vector<track::Track>> tracks_per_clip;
    for (const sim::Clip& clip : test) {
      const sim::DatasetSpec& spec = clip.spec();
      track::SortTracker tracker;
      // Per-track Kalman predictions come from SORT's internals; the
      // cascade re-derives windows from the last frame's detections, which
      // is what CaTDet's proposal stage does.
      track::FrameDetections last_dets;

      clock.Charge(models::CostCategory::kDecode,
                   clip.num_frames() *
                       (costs.decode_sec_per_frame +
                        static_cast<double>(spec.width) * spec.height *
                            costs.decode_sec_per_pixel));
      for (int f = 0; f < clip.num_frames(); ++f) {
        track::FrameDetections dets;
        if (f % refresh == 0 || last_dets.empty()) {
          clock.Charge(models::CostCategory::kDetect,
                       detector.FullFrameSeconds(clip, 1.0));
          dets = models::FilterByConfidence(detector.Detect(clip, f, 1.0),
                                            0.4);
        } else {
          // Proposal windows: 2x-expanded boxes around the previous
          // frame's detections; the detector runs per window.
          std::vector<geom::BBox> windows;
          for (const track::Detection& d : last_dets) {
            const geom::BBox w(d.box.cx, d.box.cy, d.box.w * 2.5 + 16,
                               d.box.h * 2.5 + 16);
            windows.push_back(w);
            clock.Charge(models::CostCategory::kDetect,
                         models::DetectorWindowSeconds(arch, w.w, w.h));
          }
          dets = models::FilterByConfidence(
              models::FilterByWindows(detector.Detect(clip, f, 1.0), windows),
              0.4);
        }
        clock.Charge(models::CostCategory::kTrack,
                     costs.sort_sec_per_detection * dets.size());
        tracker.ProcessFrame(f, dets);
        last_dets = dets;
      }
      tracks_per_clip.push_back(tracker.Finish(2));
    }
    MethodPoint p;
    p.label = StrFormat("catdet(refresh=%d)", refresh);
    p.seconds = clock.TotalSeconds();
    p.reusable_seconds = p.seconds;
    p.accuracy = test_accuracy(tracks_per_clip);
    points.push_back(p);
  }
  return points;
}

}  // namespace otif::baselines
