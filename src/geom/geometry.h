#ifndef OTIF_GEOM_GEOMETRY_H_
#define OTIF_GEOM_GEOMETRY_H_

#include <cmath>
#include <vector>

namespace otif::geom {

/// 2D point in frame coordinates (pixels at the dataset's native resolution;
/// x grows right, y grows down).
struct Point {
  double x = 0.0;
  double y = 0.0;

  Point() = default;
  Point(double px, double py) : x(px), y(py) {}

  Point operator+(const Point& o) const { return {x + o.x, y + o.y}; }
  Point operator-(const Point& o) const { return {x - o.x, y - o.y}; }
  Point operator*(double s) const { return {x * s, y * s}; }

  double Dot(const Point& o) const { return x * o.x + y * o.y; }
  double Norm() const { return std::sqrt(x * x + y * y); }
  double DistanceTo(const Point& o) const { return (*this - o).Norm(); }

  bool operator==(const Point& o) const { return x == o.x && y == o.y; }
};

/// Axis-aligned bounding box, stored as center plus width/height to match the
/// paper's detection format d = (t, x, y, w, h).
struct BBox {
  double cx = 0.0;
  double cy = 0.0;
  double w = 0.0;
  double h = 0.0;

  BBox() = default;
  BBox(double center_x, double center_y, double width, double height)
      : cx(center_x), cy(center_y), w(width), h(height) {}

  /// Builds a box from corner coordinates (x0,y0) top-left, (x1,y1)
  /// bottom-right.
  static BBox FromCorners(double x0, double y0, double x1, double y1);

  double Left() const { return cx - w / 2; }
  double Right() const { return cx + w / 2; }
  double Top() const { return cy - h / 2; }
  double Bottom() const { return cy + h / 2; }
  double Area() const { return w * h; }
  Point Center() const { return {cx, cy}; }

  /// Intersection area with another box (0 when disjoint).
  double IntersectionArea(const BBox& o) const;

  /// Intersection-over-union in [0, 1].
  double Iou(const BBox& o) const;

  /// True when the point lies inside or on the boundary.
  bool Contains(const Point& p) const;

  /// True when `o` lies entirely within this box.
  bool ContainsBox(const BBox& o) const;

  /// True when the two boxes overlap (positive intersection area).
  bool Intersects(const BBox& o) const;

  /// Smallest box covering both this and `o`.
  BBox Union(const BBox& o) const;

  /// This box translated by (dx, dy).
  BBox Shifted(double dx, double dy) const { return {cx + dx, cy + dy, w, h}; }

  /// This box with coordinates scaled by `s` (resolution change).
  BBox Scaled(double s) const { return {cx * s, cy * s, w * s, h * s}; }

  /// This box clipped to [0,width]x[0,height]; may become empty (w or h 0).
  BBox ClippedTo(double width, double height) const;
};

/// Simple polygon (vertices in order, implicitly closed). Used by frame-level
/// region queries.
class Polygon {
 public:
  Polygon() = default;
  explicit Polygon(std::vector<Point> vertices)
      : vertices_(std::move(vertices)) {}

  const std::vector<Point>& vertices() const { return vertices_; }
  bool empty() const { return vertices_.size() < 3; }

  /// Even-odd rule point-in-polygon test; boundary points count as inside.
  bool Contains(const Point& p) const;

  /// Signed area (positive when counter-clockwise in a y-down frame).
  double SignedArea() const;

  /// Axis-aligned bounding box of the polygon.
  BBox Bounds() const;

 private:
  std::vector<Point> vertices_;
};

/// Length of a polyline (sum of segment lengths).
double PolylineLength(const std::vector<Point>& polyline);

/// Resamples a polyline to exactly `n` points evenly spaced by arc length.
/// This is the P(s) operator in the paper's track distance metric (N=20).
/// Requires n >= 2 and a non-empty polyline; a single-point polyline yields
/// n copies of that point.
std::vector<Point> ResamplePolyline(const std::vector<Point>& polyline, int n);

/// Paper Sec 3.4 track distance: average Euclidean distance between the i-th
/// evenly spaced points of the two polylines, using n sample points.
double PolylineDistance(const std::vector<Point>& a,
                        const std::vector<Point>& b, int n);

/// Position along a polyline at arc-length fraction t in [0,1].
Point PointAlong(const std::vector<Point>& polyline, double t);

/// Distance from a point to the nearest point on a polyline (segments, not
/// just vertices). Returns +inf for an empty polyline.
double DistanceToPolyline(const Point& p, const std::vector<Point>& polyline);

/// Unit tangent direction of the polyline at arc-length fraction t; zero
/// vector for degenerate polylines.
Point DirectionAlong(const std::vector<Point>& polyline, double t);

}  // namespace otif::geom

#endif  // OTIF_GEOM_GEOMETRY_H_
