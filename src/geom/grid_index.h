#ifndef OTIF_GEOM_GRID_INDEX_H_
#define OTIF_GEOM_GRID_INDEX_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "geom/geometry.h"

namespace otif::geom {

/// Uniform-grid spatial index over 2D points carrying integer payload ids.
/// Used by track refinement (Sec 3.4) to find cluster centers whose paths
/// pass near a query track's endpoints. Cells are `cell_size` pixels square;
/// the index is unbounded (hash map keyed by cell coordinates).
class GridIndex {
 public:
  /// Creates an index with the given cell edge length (> 0).
  explicit GridIndex(double cell_size);

  /// Inserts a point with an application-defined id (ids may repeat; a
  /// cluster center polyline inserts one entry per sample point).
  void Insert(const Point& p, int64_t id);

  /// Returns de-duplicated ids of all points within `radius` of `center`.
  std::vector<int64_t> QueryRadius(const Point& center, double radius) const;

  /// Returns de-duplicated ids of points whose distance to `center` is
  /// among the smallest, expanding the search ring until at least
  /// `min_results` unique ids are found (or the index is exhausted).
  std::vector<int64_t> QueryNearest(const Point& center,
                                    size_t min_results) const;

  size_t num_points() const { return num_points_; }

 private:
  struct CellKey {
    int64_t cx;
    int64_t cy;
    bool operator==(const CellKey& o) const {
      return cx == o.cx && cy == o.cy;
    }
  };
  struct CellKeyHash {
    size_t operator()(const CellKey& k) const {
      // 64-bit mix of the two cell coordinates.
      uint64_t h = static_cast<uint64_t>(k.cx) * 0x9e3779b97f4a7c15ULL;
      h ^= static_cast<uint64_t>(k.cy) + 0x9e3779b97f4a7c15ULL + (h << 6) +
           (h >> 2);
      return static_cast<size_t>(h);
    }
  };
  struct Entry {
    Point p;
    int64_t id;
  };

  CellKey KeyFor(const Point& p) const {
    return {static_cast<int64_t>(std::floor(p.x / cell_size_)),
            static_cast<int64_t>(std::floor(p.y / cell_size_))};
  }

  double cell_size_;
  size_t num_points_ = 0;
  // Bounding box of inserted points (valid when num_points_ > 0); bounds
  // the QueryNearest radius expansion.
  double min_x_ = 0.0, max_x_ = 0.0, min_y_ = 0.0, max_y_ = 0.0;
  std::unordered_map<CellKey, std::vector<Entry>, CellKeyHash> cells_;
};

}  // namespace otif::geom

#endif  // OTIF_GEOM_GRID_INDEX_H_
