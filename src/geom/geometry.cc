#include "geom/geometry.h"

#include <algorithm>
#include <limits>

#include "util/logging.h"

namespace otif::geom {

BBox BBox::FromCorners(double x0, double y0, double x1, double y1) {
  OTIF_CHECK_LE(x0, x1);
  OTIF_CHECK_LE(y0, y1);
  return BBox((x0 + x1) / 2, (y0 + y1) / 2, x1 - x0, y1 - y0);
}

double BBox::IntersectionArea(const BBox& o) const {
  const double ix =
      std::min(Right(), o.Right()) - std::max(Left(), o.Left());
  const double iy =
      std::min(Bottom(), o.Bottom()) - std::max(Top(), o.Top());
  if (ix <= 0 || iy <= 0) return 0.0;
  return ix * iy;
}

double BBox::Iou(const BBox& o) const {
  const double inter = IntersectionArea(o);
  const double uni = Area() + o.Area() - inter;
  if (uni <= 0) return 0.0;
  return inter / uni;
}

bool BBox::Contains(const Point& p) const {
  return p.x >= Left() && p.x <= Right() && p.y >= Top() && p.y <= Bottom();
}

bool BBox::ContainsBox(const BBox& o) const {
  return o.Left() >= Left() && o.Right() <= Right() && o.Top() >= Top() &&
         o.Bottom() <= Bottom();
}

bool BBox::Intersects(const BBox& o) const {
  return IntersectionArea(o) > 0.0;
}

BBox BBox::Union(const BBox& o) const {
  return FromCorners(std::min(Left(), o.Left()), std::min(Top(), o.Top()),
                     std::max(Right(), o.Right()),
                     std::max(Bottom(), o.Bottom()));
}

BBox BBox::ClippedTo(double width, double height) const {
  const double x0 = std::clamp(Left(), 0.0, width);
  const double x1 = std::clamp(Right(), 0.0, width);
  const double y0 = std::clamp(Top(), 0.0, height);
  const double y1 = std::clamp(Bottom(), 0.0, height);
  return FromCorners(x0, y0, x1, y1);
}

bool Polygon::Contains(const Point& p) const {
  if (empty()) return false;
  bool inside = false;
  const size_t n = vertices_.size();
  for (size_t i = 0, j = n - 1; i < n; j = i++) {
    const Point& a = vertices_[i];
    const Point& b = vertices_[j];
    // Boundary check: point on segment [a, b].
    const double cross =
        (b.x - a.x) * (p.y - a.y) - (b.y - a.y) * (p.x - a.x);
    if (std::abs(cross) < 1e-9 &&
        p.x >= std::min(a.x, b.x) - 1e-9 &&
        p.x <= std::max(a.x, b.x) + 1e-9 &&
        p.y >= std::min(a.y, b.y) - 1e-9 &&
        p.y <= std::max(a.y, b.y) + 1e-9) {
      return true;
    }
    if ((a.y > p.y) != (b.y > p.y)) {
      const double x_int = a.x + (p.y - a.y) / (b.y - a.y) * (b.x - a.x);
      if (p.x < x_int) inside = !inside;
    }
  }
  return inside;
}

double Polygon::SignedArea() const {
  if (empty()) return 0.0;
  double area = 0.0;
  const size_t n = vertices_.size();
  for (size_t i = 0, j = n - 1; i < n; j = i++) {
    area += vertices_[j].x * vertices_[i].y - vertices_[i].x * vertices_[j].y;
  }
  return area / 2.0;
}

BBox Polygon::Bounds() const {
  OTIF_CHECK(!vertices_.empty());
  double x0 = vertices_[0].x, x1 = vertices_[0].x;
  double y0 = vertices_[0].y, y1 = vertices_[0].y;
  for (const Point& v : vertices_) {
    x0 = std::min(x0, v.x);
    x1 = std::max(x1, v.x);
    y0 = std::min(y0, v.y);
    y1 = std::max(y1, v.y);
  }
  return BBox::FromCorners(x0, y0, x1, y1);
}

double PolylineLength(const std::vector<Point>& polyline) {
  double length = 0.0;
  for (size_t i = 1; i < polyline.size(); ++i) {
    length += polyline[i].DistanceTo(polyline[i - 1]);
  }
  return length;
}

std::vector<Point> ResamplePolyline(const std::vector<Point>& polyline,
                                    int n) {
  OTIF_CHECK_GE(n, 2);
  OTIF_CHECK(!polyline.empty());
  std::vector<Point> out;
  out.reserve(static_cast<size_t>(n));
  const double total = PolylineLength(polyline);
  if (total <= 0.0) {
    out.assign(static_cast<size_t>(n), polyline.front());
    return out;
  }
  const double step = total / (n - 1);
  size_t seg = 0;
  double seg_start_arc = 0.0;
  for (int i = 0; i < n; ++i) {
    const double target = std::min(step * i, total);
    // Advance to the segment containing the target arc length.
    while (seg + 1 < polyline.size()) {
      const double seg_len = polyline[seg + 1].DistanceTo(polyline[seg]);
      if (seg_start_arc + seg_len >= target || seg + 2 == polyline.size()) {
        break;
      }
      seg_start_arc += seg_len;
      ++seg;
    }
    if (seg + 1 >= polyline.size()) {
      out.push_back(polyline.back());
      continue;
    }
    const double seg_len = polyline[seg + 1].DistanceTo(polyline[seg]);
    const double frac =
        seg_len > 0 ? std::clamp((target - seg_start_arc) / seg_len, 0.0, 1.0)
                    : 0.0;
    out.push_back(polyline[seg] + (polyline[seg + 1] - polyline[seg]) * frac);
  }
  return out;
}

double PolylineDistance(const std::vector<Point>& a,
                        const std::vector<Point>& b, int n) {
  const std::vector<Point> pa = ResamplePolyline(a, n);
  const std::vector<Point> pb = ResamplePolyline(b, n);
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += pa[i].DistanceTo(pb[i]);
  return sum / n;
}

Point PointAlong(const std::vector<Point>& polyline, double t) {
  OTIF_CHECK(!polyline.empty());
  t = std::clamp(t, 0.0, 1.0);
  const double total = PolylineLength(polyline);
  if (total <= 0.0) return polyline.front();
  const double target = t * total;
  double arc = 0.0;
  for (size_t i = 1; i < polyline.size(); ++i) {
    const double seg_len = polyline[i].DistanceTo(polyline[i - 1]);
    if (arc + seg_len >= target && seg_len > 0) {
      const double frac = (target - arc) / seg_len;
      return polyline[i - 1] + (polyline[i] - polyline[i - 1]) * frac;
    }
    arc += seg_len;
  }
  return polyline.back();
}

double DistanceToPolyline(const Point& p,
                          const std::vector<Point>& polyline) {
  if (polyline.empty()) return std::numeric_limits<double>::infinity();
  if (polyline.size() == 1) return p.DistanceTo(polyline[0]);
  double best = std::numeric_limits<double>::infinity();
  for (size_t i = 1; i < polyline.size(); ++i) {
    const Point& a = polyline[i - 1];
    const Point& b = polyline[i];
    const Point ab = b - a;
    const double len_sq = ab.Dot(ab);
    double t = 0.0;
    if (len_sq > 0) t = std::clamp((p - a).Dot(ab) / len_sq, 0.0, 1.0);
    best = std::min(best, p.DistanceTo(a + ab * t));
  }
  return best;
}

Point DirectionAlong(const std::vector<Point>& polyline, double t) {
  OTIF_CHECK(!polyline.empty());
  if (polyline.size() < 2) return {0.0, 0.0};
  t = std::clamp(t, 0.0, 1.0);
  const double total = PolylineLength(polyline);
  if (total <= 0.0) return {0.0, 0.0};
  const double target = t * total;
  double arc = 0.0;
  for (size_t i = 1; i < polyline.size(); ++i) {
    const double seg_len = polyline[i].DistanceTo(polyline[i - 1]);
    if ((arc + seg_len >= target || i + 1 == polyline.size()) &&
        seg_len > 0) {
      const Point d = polyline[i] - polyline[i - 1];
      return d * (1.0 / seg_len);
    }
    arc += seg_len;
  }
  return {0.0, 0.0};
}

}  // namespace otif::geom
