#include "geom/grid_index.h"

#include <algorithm>
#include <unordered_set>

#include "util/logging.h"

namespace otif::geom {

GridIndex::GridIndex(double cell_size) : cell_size_(cell_size) {
  OTIF_CHECK_GT(cell_size, 0.0);
}

void GridIndex::Insert(const Point& p, int64_t id) {
  cells_[KeyFor(p)].push_back({p, id});
  if (num_points_ == 0) {
    min_x_ = max_x_ = p.x;
    min_y_ = max_y_ = p.y;
  } else {
    min_x_ = std::min(min_x_, p.x);
    max_x_ = std::max(max_x_, p.x);
    min_y_ = std::min(min_y_, p.y);
    max_y_ = std::max(max_y_, p.y);
  }
  ++num_points_;
}

std::vector<int64_t> GridIndex::QueryRadius(const Point& center,
                                            double radius) const {
  OTIF_CHECK_GE(radius, 0.0);
  std::unordered_set<int64_t> seen;
  std::vector<int64_t> out;
  const int64_t cx0 =
      static_cast<int64_t>(std::floor((center.x - radius) / cell_size_));
  const int64_t cx1 =
      static_cast<int64_t>(std::floor((center.x + radius) / cell_size_));
  const int64_t cy0 =
      static_cast<int64_t>(std::floor((center.y - radius) / cell_size_));
  const int64_t cy1 =
      static_cast<int64_t>(std::floor((center.y + radius) / cell_size_));
  for (int64_t cx = cx0; cx <= cx1; ++cx) {
    for (int64_t cy = cy0; cy <= cy1; ++cy) {
      auto it = cells_.find(CellKey{cx, cy});
      if (it == cells_.end()) continue;
      for (const Entry& e : it->second) {
        if (e.p.DistanceTo(center) <= radius && seen.insert(e.id).second) {
          out.push_back(e.id);
        }
      }
    }
  }
  return out;
}

std::vector<int64_t> GridIndex::QueryNearest(const Point& center,
                                             size_t min_results) const {
  if (num_points_ == 0 || min_results == 0) return {};
  // Expand the radius ring by ring; collect (distance, id) pairs, keeping
  // the nearest entry per id. Once the circle covers the data's bounding
  // box, no further expansion can add results.
  const double reach =
      std::max({center.DistanceTo({min_x_, min_y_}),
                center.DistanceTo({min_x_, max_y_}),
                center.DistanceTo({max_x_, min_y_}),
                center.DistanceTo({max_x_, max_y_})});
  double radius = cell_size_;
  for (;;) {
    const bool covers_all = radius >= reach;
    std::unordered_map<int64_t, double> best;
    if (covers_all) {
      // Scan stored cells directly instead of the (huge) cell range.
      for (const auto& [key, entries] : cells_) {
        for (const Entry& e : entries) {
          const double d = e.p.DistanceTo(center);
          auto [pos, inserted] = best.try_emplace(e.id, d);
          if (!inserted && d < pos->second) pos->second = d;
        }
      }
    } else {
      const int64_t cx0 =
          static_cast<int64_t>(std::floor((center.x - radius) / cell_size_));
      const int64_t cx1 =
          static_cast<int64_t>(std::floor((center.x + radius) / cell_size_));
      const int64_t cy0 =
          static_cast<int64_t>(std::floor((center.y - radius) / cell_size_));
      const int64_t cy1 =
          static_cast<int64_t>(std::floor((center.y + radius) / cell_size_));
      for (int64_t cx = cx0; cx <= cx1; ++cx) {
        for (int64_t cy = cy0; cy <= cy1; ++cy) {
          auto it = cells_.find(CellKey{cx, cy});
          if (it == cells_.end()) continue;
          for (const Entry& e : it->second) {
            const double d = e.p.DistanceTo(center);
            if (d > radius) continue;
            auto [pos, inserted] = best.try_emplace(e.id, d);
            if (!inserted && d < pos->second) pos->second = d;
          }
        }
      }
    }
    if (best.size() >= min_results || covers_all) {
      std::vector<std::pair<double, int64_t>> ranked;
      ranked.reserve(best.size());
      for (const auto& [id, d] : best) ranked.emplace_back(d, id);
      std::sort(ranked.begin(), ranked.end());
      std::vector<int64_t> out;
      out.reserve(ranked.size());
      for (const auto& [d, id] : ranked) out.push_back(id);
      return out;
    }
    radius *= 2.0;
  }
}

}  // namespace otif::geom
