#ifndef OTIF_VIDEO_IMAGE_H_
#define OTIF_VIDEO_IMAGE_H_

#include <cstdint>
#include <vector>

#include "util/logging.h"

namespace otif::video {

/// Grayscale image with float pixels in [0, 1], row-major. All frames in the
/// synthetic world are single-channel; the paper's models consume RGB but
/// nothing in the evaluated pipeline depends on chroma.
class Image {
 public:
  Image() = default;
  Image(int width, int height, float fill = 0.0f)
      : width_(width), height_(height),
        pixels_(static_cast<size_t>(width) * height, fill) {
    OTIF_CHECK_GE(width, 0);
    OTIF_CHECK_GE(height, 0);
  }

  int width() const { return width_; }
  int height() const { return height_; }
  bool empty() const { return pixels_.empty(); }
  size_t size() const { return pixels_.size(); }

  float at(int x, int y) const {
    OTIF_CHECK(InBounds(x, y)) << x << "," << y;
    return pixels_[static_cast<size_t>(y) * width_ + x];
  }
  void set(int x, int y, float v) {
    OTIF_CHECK(InBounds(x, y)) << x << "," << y;
    pixels_[static_cast<size_t>(y) * width_ + x] = v;
  }
  bool InBounds(int x, int y) const {
    return x >= 0 && x < width_ && y >= 0 && y < height_;
  }

  const float* data() const { return pixels_.data(); }
  float* data() { return pixels_.data(); }
  const float* row(int y) const {
    return pixels_.data() + static_cast<size_t>(y) * width_;
  }
  float* row(int y) {
    return pixels_.data() + static_cast<size_t>(y) * width_;
  }

  /// Clamps all pixels into [0, 1].
  void Clamp();

  /// Area-averaged downscale (or bilinear upscale) to the given size.
  Image Resized(int new_width, int new_height) const;

  /// Mean pixel value (0 for an empty image).
  float Mean() const;

  /// Mean absolute per-pixel difference against another image of identical
  /// dimensions.
  float MeanAbsDiff(const Image& other) const;

 private:
  int width_ = 0;
  int height_ = 0;
  std::vector<float> pixels_;
};

}  // namespace otif::video

#endif  // OTIF_VIDEO_IMAGE_H_
