#ifndef OTIF_VIDEO_IMAGE_H_
#define OTIF_VIDEO_IMAGE_H_

#include <cstdint>
#include <cstddef>

#include "mem/buffer_pool.h"
#include "mem/view.h"
#include "util/logging.h"

namespace otif::video {

/// Grayscale image with float pixels in [0, 1], row-major. All frames in the
/// synthetic world are single-channel; the paper's models consume RGB but
/// nothing in the evaluated pipeline depends on chroma.
///
/// Pixel storage comes from the shared mem::BufferPool, so constructing,
/// copying, and destroying images at steady state recycles pooled buffers
/// instead of touching the heap. Copy-assignment reuses the destination's
/// buffer when its capacity fits (FrameContext/Rasterizer rely on this);
/// view() borrows the pixels as a non-owning mem::ImageView for
/// strided/zero-copy consumers.
class Image {
 public:
  Image() = default;
  Image(int width, int height, float fill = 0.0f) {
    OTIF_CHECK_GE(width, 0);
    OTIF_CHECK_GE(height, 0);
    ResizeUninitialized(width, height);
    float* d = data();
    for (size_t i = 0; i < size_; ++i) d[i] = fill;
  }

  Image(const Image& o) { *this = o; }
  Image& operator=(const Image& o);
  Image(Image&& o) noexcept
      : width_(o.width_), height_(o.height_), size_(o.size_),
        buffer_(std::move(o.buffer_)) {
    o.width_ = 0;
    o.height_ = 0;
    o.size_ = 0;
  }
  Image& operator=(Image&& o) noexcept {
    if (this == &o) return *this;
    width_ = o.width_;
    height_ = o.height_;
    size_ = o.size_;
    buffer_ = std::move(o.buffer_);
    o.width_ = 0;
    o.height_ = 0;
    o.size_ = 0;
    return *this;
  }

  int width() const { return width_; }
  int height() const { return height_; }
  bool empty() const { return size_ == 0; }
  size_t size() const { return size_; }

  float at(int x, int y) const {
    OTIF_CHECK(InBounds(x, y)) << x << "," << y;
    return data()[static_cast<size_t>(y) * width_ + x];
  }
  void set(int x, int y, float v) {
    OTIF_CHECK(InBounds(x, y)) << x << "," << y;
    data()[static_cast<size_t>(y) * width_ + x] = v;
  }
  bool InBounds(int x, int y) const {
    return x >= 0 && x < width_ && y >= 0 && y < height_;
  }

  const float* data() const { return buffer_.data(); }
  float* data() { return buffer_.data(); }
  const float* row(int y) const {
    return data() + static_cast<size_t>(y) * width_;
  }
  float* row(int y) {
    return data() + static_cast<size_t>(y) * width_;
  }

  /// Borrows the pixels as a non-owning view (see mem/view.h for lifetime
  /// rules: the view must not outlive this image or span a reallocation).
  mem::ImageView view() { return {data(), width_, height_, width_}; }
  mem::ConstImageView view() const { return {data(), width_, height_, width_}; }

  /// Reshapes to `width` x `height` without initializing pixels, reusing
  /// the current buffer when it is unshared and its capacity fits. Callers
  /// must write every pixel before reading any.
  void ResizeUninitialized(int width, int height);

  /// Clamps all pixels into [0, 1].
  void Clamp();

  /// Area-averaged downscale (or bilinear upscale) to the given size.
  Image Resized(int new_width, int new_height) const;

  /// Resized, but writing into `out` (buffer reused when capacity fits;
  /// zero allocation at steady state). Safe when `out` aliases this image —
  /// the result is then routed through a temporary. Bit-identical to
  /// Resized: both run the same kernel.
  void ResizedInto(int new_width, int new_height, Image* out) const;

  /// Resized into a caller-provided view (e.g. a tensor slice); `out`'s
  /// dimensions select the target size and must be positive. `out` must not
  /// alias this image's pixels.
  void ResizedInto(mem::ImageView out) const;

  /// Mean pixel value (0 for an empty image).
  float Mean() const;

  /// Mean absolute per-pixel difference against another image of identical
  /// dimensions.
  float MeanAbsDiff(const Image& other) const;

 private:
  int width_ = 0;
  int height_ = 0;
  size_t size_ = 0;
  mem::PooledBuffer buffer_;
};

}  // namespace otif::video

#endif  // OTIF_VIDEO_IMAGE_H_
