#include "video/image.h"

#include <algorithm>
#include <cmath>

namespace otif::video {
namespace {

// The one resize kernel: Resized and both ResizedInto overloads funnel here,
// so their outputs are bit-identical by construction. Every output pixel is
// written, which is what lets callers hand in uninitialized pool buffers.
void ResizeImpl(mem::ConstImageView src, mem::ImageView out) {
  const int new_width = out.width;
  const int new_height = out.height;
  const double sx = static_cast<double>(src.width) / new_width;
  const double sy = static_cast<double>(src.height) / new_height;
  if (sx >= 1.0 && sy >= 1.0) {
    // Area average for downscaling.
    for (int oy = 0; oy < new_height; ++oy) {
      const int y0 = static_cast<int>(oy * sy);
      const int y1 = std::max(
          y0 + 1, std::min(static_cast<int>((oy + 1) * sy), src.height));
      for (int ox = 0; ox < new_width; ++ox) {
        const int x0 = static_cast<int>(ox * sx);
        const int x1 = std::max(
            x0 + 1, std::min(static_cast<int>((ox + 1) * sx), src.width));
        float sum = 0.0f;
        for (int y = y0; y < y1; ++y) {
          const float* r = src.row(y);
          for (int x = x0; x < x1; ++x) sum += r[x];
        }
        out.set(ox, oy, sum / static_cast<float>((y1 - y0) * (x1 - x0)));
      }
    }
    return;
  }
  // Bilinear for upscaling (or mixed directions).
  for (int oy = 0; oy < new_height; ++oy) {
    const double fy = (oy + 0.5) * sy - 0.5;
    const int y0 =
        std::clamp(static_cast<int>(std::floor(fy)), 0, src.height - 1);
    const int y1 = std::min(y0 + 1, src.height - 1);
    const double wy = std::clamp(fy - y0, 0.0, 1.0);
    for (int ox = 0; ox < new_width; ++ox) {
      const double fx = (ox + 0.5) * sx - 0.5;
      const int x0 =
          std::clamp(static_cast<int>(std::floor(fx)), 0, src.width - 1);
      const int x1 = std::min(x0 + 1, src.width - 1);
      const double wx = std::clamp(fx - x0, 0.0, 1.0);
      const double top = src.at(x0, y0) * (1 - wx) + src.at(x1, y0) * wx;
      const double bot = src.at(x0, y1) * (1 - wx) + src.at(x1, y1) * wx;
      out.set(ox, oy, static_cast<float>(top * (1 - wy) + bot * wy));
    }
  }
}

}  // namespace

Image& Image::operator=(const Image& o) {
  if (this == &o) return *this;
  ResizeUninitialized(o.width_, o.height_);
  if (size_ > 0) std::copy(o.data(), o.data() + size_, data());
  return *this;
}

void Image::ResizeUninitialized(int width, int height) {
  OTIF_CHECK_GE(width, 0);
  OTIF_CHECK_GE(height, 0);
  const size_t n = static_cast<size_t>(width) * height;
  if (n > 0 && (!buffer_ || buffer_.capacity() < n || !buffer_.unique())) {
    buffer_ = mem::BufferPool::Global().Acquire(n);
  }
  width_ = width;
  height_ = height;
  size_ = n;
}

void Image::Clamp() {
  float* d = data();
  for (size_t i = 0; i < size_; ++i) d[i] = std::clamp(d[i], 0.0f, 1.0f);
}

Image Image::Resized(int new_width, int new_height) const {
  Image out;
  ResizedInto(new_width, new_height, &out);
  return out;
}

void Image::ResizedInto(int new_width, int new_height, Image* out) const {
  OTIF_CHECK_GT(new_width, 0);
  OTIF_CHECK_GT(new_height, 0);
  OTIF_CHECK(!empty());
  OTIF_CHECK(out != nullptr);
  if (out == this || out->data() == data()) {
    Image tmp;
    ResizedInto(new_width, new_height, &tmp);
    *out = std::move(tmp);
    return;
  }
  out->ResizeUninitialized(new_width, new_height);
  ResizeImpl(view(), out->view());
}

void Image::ResizedInto(mem::ImageView out) const {
  OTIF_CHECK_GT(out.width, 0);
  OTIF_CHECK_GT(out.height, 0);
  OTIF_CHECK(!empty());
  OTIF_CHECK(out.data != data());
  ResizeImpl(view(), out);
}

float Image::Mean() const {
  if (empty()) return 0.0f;
  double sum = 0.0;
  const float* d = data();
  for (size_t i = 0; i < size_; ++i) sum += d[i];
  return static_cast<float>(sum / size_);
}

float Image::MeanAbsDiff(const Image& other) const {
  OTIF_CHECK_EQ(width_, other.width_);
  OTIF_CHECK_EQ(height_, other.height_);
  if (empty()) return 0.0f;
  double sum = 0.0;
  const float* a = data();
  const float* b = other.data();
  for (size_t i = 0; i < size_; ++i) sum += std::abs(a[i] - b[i]);
  return static_cast<float>(sum / size_);
}

}  // namespace otif::video
