#include "video/image.h"

#include <algorithm>
#include <cmath>

namespace otif::video {

void Image::Clamp() {
  for (float& p : pixels_) p = std::clamp(p, 0.0f, 1.0f);
}

Image Image::Resized(int new_width, int new_height) const {
  OTIF_CHECK_GT(new_width, 0);
  OTIF_CHECK_GT(new_height, 0);
  OTIF_CHECK(!empty());
  Image out(new_width, new_height);
  const double sx = static_cast<double>(width_) / new_width;
  const double sy = static_cast<double>(height_) / new_height;
  if (sx >= 1.0 && sy >= 1.0) {
    // Area average for downscaling.
    for (int oy = 0; oy < new_height; ++oy) {
      const int y0 = static_cast<int>(oy * sy);
      const int y1 =
          std::max(y0 + 1, std::min(static_cast<int>((oy + 1) * sy), height_));
      for (int ox = 0; ox < new_width; ++ox) {
        const int x0 = static_cast<int>(ox * sx);
        const int x1 =
            std::max(x0 + 1, std::min(static_cast<int>((ox + 1) * sx), width_));
        float sum = 0.0f;
        for (int y = y0; y < y1; ++y) {
          const float* r = row(y);
          for (int x = x0; x < x1; ++x) sum += r[x];
        }
        out.set(ox, oy, sum / static_cast<float>((y1 - y0) * (x1 - x0)));
      }
    }
    return out;
  }
  // Bilinear for upscaling (or mixed directions).
  for (int oy = 0; oy < new_height; ++oy) {
    const double fy = (oy + 0.5) * sy - 0.5;
    const int y0 = std::clamp(static_cast<int>(std::floor(fy)), 0, height_ - 1);
    const int y1 = std::min(y0 + 1, height_ - 1);
    const double wy = std::clamp(fy - y0, 0.0, 1.0);
    for (int ox = 0; ox < new_width; ++ox) {
      const double fx = (ox + 0.5) * sx - 0.5;
      const int x0 =
          std::clamp(static_cast<int>(std::floor(fx)), 0, width_ - 1);
      const int x1 = std::min(x0 + 1, width_ - 1);
      const double wx = std::clamp(fx - x0, 0.0, 1.0);
      const double top = at(x0, y0) * (1 - wx) + at(x1, y0) * wx;
      const double bot = at(x0, y1) * (1 - wx) + at(x1, y1) * wx;
      out.set(ox, oy, static_cast<float>(top * (1 - wy) + bot * wy));
    }
  }
  return out;
}

float Image::Mean() const {
  if (empty()) return 0.0f;
  double sum = 0.0;
  for (float p : pixels_) sum += p;
  return static_cast<float>(sum / pixels_.size());
}

float Image::MeanAbsDiff(const Image& other) const {
  OTIF_CHECK_EQ(width_, other.width_);
  OTIF_CHECK_EQ(height_, other.height_);
  if (empty()) return 0.0f;
  double sum = 0.0;
  for (size_t i = 0; i < pixels_.size(); ++i) {
    sum += std::abs(pixels_[i] - other.pixels_[i]);
  }
  return static_cast<float>(sum / pixels_.size());
}

}  // namespace otif::video
