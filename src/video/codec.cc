#include "video/codec.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>

#include "util/fault_injection.h"
#include "util/logging.h"
#include "util/strings.h"

namespace otif::video {
namespace {

// --- Byte-aligned entropy coding helpers -----------------------------------

void PutVarint(std::vector<uint8_t>* out, uint64_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out->push_back(static_cast<uint8_t>(v));
}

uint64_t GetVarint(const std::vector<uint8_t>& in, size_t* pos) {
  uint64_t v = 0;
  int shift = 0;
  for (;;) {
    OTIF_CHECK_LT(*pos, in.size());
    const uint8_t byte = in[(*pos)++];
    v |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) break;
    shift += 7;
  }
  return v;
}

uint64_t ZigZag(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}

int64_t UnZigZag(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

// Encodes a sequence of small signed integers with zero run-length coding:
// a zero run of length n is written as zigzag(0) followed by varint(n - 1).
void EncodeResidualSeq(const std::vector<int>& values,
                       std::vector<uint8_t>* out) {
  size_t i = 0;
  while (i < values.size()) {
    if (values[i] == 0) {
      size_t run = 1;
      while (i + run < values.size() && values[i + run] == 0) ++run;
      PutVarint(out, ZigZag(0));
      PutVarint(out, run - 1);
      i += run;
    } else {
      PutVarint(out, ZigZag(values[i]));
      ++i;
    }
  }
}

void DecodeResidualSeq(const std::vector<uint8_t>& in, size_t* pos,
                       size_t count, std::vector<int>* values) {
  values->clear();
  values->reserve(count);
  while (values->size() < count) {
    const int64_t v = UnZigZag(GetVarint(in, pos));
    if (v == 0) {
      const uint64_t run = GetVarint(in, pos) + 1;
      for (uint64_t r = 0; r < run && values->size() < count; ++r) {
        values->push_back(0);
      }
    } else {
      values->push_back(static_cast<int>(v));
    }
  }
}

// --- Quantization -----------------------------------------------------------

int QuantizePixel(float v, int levels) {
  const float clamped = std::clamp(v, 0.0f, 1.0f);
  return std::min(levels - 1,
                  static_cast<int>(clamped * static_cast<float>(levels)));
}

float DequantizePixel(int q, int levels) {
  return (static_cast<float>(q) + 0.5f) / static_cast<float>(levels);
}

// Residuals are in [-1, 1]; quantize with a step of 2/levels.
int QuantizeResidual(float r, int levels) {
  const float step = 2.0f / static_cast<float>(levels);
  return static_cast<int>(std::lround(r / step));
}

float DequantizeResidual(int q, int levels) {
  const float step = 2.0f / static_cast<float>(levels);
  return static_cast<float>(q) * step;
}

// --- Motion search ----------------------------------------------------------

// Sum of absolute differences between the block at (bx, by) in `cur` and the
// block displaced by (dx, dy) in `ref`. Returns +inf when displaced block is
// out of bounds.
float BlockSad(const Image& cur, const Image& ref, int bx, int by, int bw,
               int bh, int dx, int dy) {
  if (bx + dx < 0 || by + dy < 0 || bx + dx + bw > ref.width() ||
      by + dy + bh > ref.height()) {
    return std::numeric_limits<float>::infinity();
  }
  float sad = 0.0f;
  for (int y = 0; y < bh; ++y) {
    const float* cur_row = cur.row(by + y) + bx;
    const float* ref_row = ref.row(by + dy + y) + bx + dx;
    for (int x = 0; x < bw; ++x) {
      sad += std::abs(cur_row[x] - ref_row[x]);
    }
  }
  return sad;
}

struct MotionVector {
  int dx = 0;
  int dy = 0;
};

MotionVector SearchMotion(const Image& cur, const Image& ref, int bx, int by,
                          int bw, int bh, int radius) {
  MotionVector best;
  float best_sad = BlockSad(cur, ref, bx, by, bw, bh, 0, 0);
  // Coarse full search with step 2.
  for (int dy = -radius; dy <= radius; dy += 2) {
    for (int dx = -radius; dx <= radius; dx += 2) {
      const float sad = BlockSad(cur, ref, bx, by, bw, bh, dx, dy);
      if (sad < best_sad) {
        best_sad = sad;
        best = {dx, dy};
      }
    }
  }
  // Local refinement around the coarse winner.
  const MotionVector coarse = best;
  for (int dy = coarse.dy - 1; dy <= coarse.dy + 1; ++dy) {
    for (int dx = coarse.dx - 1; dx <= coarse.dx + 1; ++dx) {
      const float sad = BlockSad(cur, ref, bx, by, bw, bh, dx, dy);
      if (sad < best_sad) {
        best_sad = sad;
        best = {dx, dy};
      }
    }
  }
  return best;
}

}  // namespace

size_t EncodedVideo::TotalBytes() const {
  size_t total = 0;
  for (const EncodedFrame& f : frames) total += f.payload.size();
  return total;
}

DecodeStats& DecodeStats::operator+=(const DecodeStats& o) {
  frames_decoded += o.frames_decoded;
  intra_frames_decoded += o.intra_frames_decoded;
  pixels_decoded += o.pixels_decoded;
  blocks_motion_compensated += o.blocks_motion_compensated;
  bytes_read += o.bytes_read;
  return *this;
}

Encoder::Encoder(CodecConfig config) : config_(config) {
  OTIF_CHECK_GT(config_.gop_size, 0);
  OTIF_CHECK_GT(config_.block_size, 0);
  OTIF_CHECK_GT(config_.quant_levels, 1);
  OTIF_CHECK_GE(config_.search_radius, 0);
}

StatusOr<EncodedVideo> Encoder::Encode(
    const std::vector<Image>& frames) const {
  if (frames.empty()) {
    return Status::InvalidArgument("cannot encode an empty frame sequence");
  }
  const int width = frames[0].width();
  const int height = frames[0].height();
  if (width <= 0 || height <= 0) {
    return Status::InvalidArgument("frames must be non-empty images");
  }
  for (const Image& f : frames) {
    if (f.width() != width || f.height() != height) {
      return Status::InvalidArgument("all frames must share dimensions");
    }
  }

  EncodedVideo video;
  video.config = config_;
  video.width = width;
  video.height = height;
  video.frames.reserve(frames.size());

  // Hoisted scratch: recon ping-pongs with reference via the swap below,
  // and the symbol vectors keep their capacity across frames, so the encode
  // loop is allocation-free at steady state.
  Image reference;  // Previous reconstructed frame.
  Image recon;
  std::vector<int> deltas;
  std::vector<int> residual;
  for (size_t t = 0; t < frames.size(); ++t) {
    const Image& frame = frames[t];
    EncodedFrame encoded;
    encoded.is_intra = (t % static_cast<size_t>(config_.gop_size) == 0);

    // Every pixel of recon is written below (intra rows / all P blocks).
    recon.ResizeUninitialized(width, height);
    if (encoded.is_intra) {
      // Intra: quantize, delta-encode left-to-right per row, RLE zeros.
      deltas.clear();
      deltas.reserve(frame.size());
      for (int y = 0; y < height; ++y) {
        int prev = 0;
        const float* row = frame.row(y);
        float* recon_row = recon.row(y);
        for (int x = 0; x < width; ++x) {
          const int q = QuantizePixel(row[x], config_.quant_levels);
          deltas.push_back(q - prev);
          prev = q;
          recon_row[x] = DequantizePixel(q, config_.quant_levels);
        }
      }
      EncodeResidualSeq(deltas, &encoded.payload);
    } else {
      // Predicted: per block, motion vector + optional quantized residual.
      for (int by = 0; by < height; by += config_.block_size) {
        const int bh = std::min(config_.block_size, height - by);
        for (int bx = 0; bx < width; bx += config_.block_size) {
          const int bw = std::min(config_.block_size, width - bx);
          const MotionVector mv = SearchMotion(frame, reference, bx, by, bw,
                                               bh, config_.search_radius);
          // Residual against the motion-compensated prediction (fully
          // rewritten below, so resize without clearing).
          residual.resize(static_cast<size_t>(bw) * bh);
          float mean_abs = 0.0f;
          for (int y = 0; y < bh; ++y) {
            const float* cur_row = frame.row(by + y) + bx;
            const float* ref_row =
                reference.row(by + mv.dy + y) + bx + mv.dx;
            for (int x = 0; x < bw; ++x) {
              const float r = cur_row[x] - ref_row[x];
              residual[static_cast<size_t>(y) * bw + x] =
                  QuantizeResidual(r, config_.quant_levels);
              mean_abs += std::abs(r);
            }
          }
          mean_abs /= static_cast<float>(bw * bh);
          const bool skip = mean_abs <= config_.skip_threshold;
          PutVarint(&encoded.payload, ZigZag(mv.dx));
          PutVarint(&encoded.payload, ZigZag(mv.dy));
          PutVarint(&encoded.payload, skip ? 0 : 1);
          if (!skip) EncodeResidualSeq(residual, &encoded.payload);
          // Reconstruct the block exactly as the decoder will.
          for (int y = 0; y < bh; ++y) {
            const float* ref_row =
                reference.row(by + mv.dy + y) + bx + mv.dx;
            float* recon_row = recon.row(by + y) + bx;
            for (int x = 0; x < bw; ++x) {
              float v = ref_row[x];
              if (!skip) {
                v += DequantizeResidual(
                    residual[static_cast<size_t>(y) * bw + x],
                    config_.quant_levels);
              }
              recon_row[x] = std::clamp(v, 0.0f, 1.0f);
            }
          }
        }
      }
    }
    std::swap(reference, recon);
    video.frames.push_back(std::move(encoded));
  }
  return video;
}

Decoder::Decoder(const EncodedVideo* video) : video_(video) {
  OTIF_CHECK(video != nullptr);
}

Status Decoder::DecodeInto(int index, DecodeStats* stats) {
  const EncodedFrame& encoded = video_->frames[static_cast<size_t>(index)];
  const int width = video_->width;
  const int height = video_->height;
  const CodecConfig& config = video_->config;
  // Member scratch: every pixel of recon_ is written below (intra frames
  // write all rows, P-frames cover every block), so stale contents from the
  // previous frame are never read.
  recon_.ResizeUninitialized(width, height);
  Image& recon = recon_;
  size_t pos = 0;

  if (encoded.is_intra) {
    std::vector<int>& deltas = delta_scratch_;
    DecodeResidualSeq(encoded.payload, &pos,
                      static_cast<size_t>(width) * height, &deltas);
    size_t i = 0;
    for (int y = 0; y < height; ++y) {
      int q = 0;
      float* row = recon.row(y);
      for (int x = 0; x < width; ++x) {
        q += deltas[i++];
        row[x] = DequantizePixel(q, config.quant_levels);
      }
    }
    if (stats != nullptr) ++stats->intra_frames_decoded;
  } else {
    if (reference_index_ != index - 1) {
      return Status::FailedPrecondition(
          "P-frame decoded without its reference");
    }
    std::vector<int>& residual = residual_scratch_;
    for (int by = 0; by < height; by += config.block_size) {
      const int bh = std::min(config.block_size, height - by);
      for (int bx = 0; bx < width; bx += config.block_size) {
        const int bw = std::min(config.block_size, width - bx);
        const int dx = static_cast<int>(UnZigZag(GetVarint(encoded.payload,
                                                           &pos)));
        const int dy = static_cast<int>(UnZigZag(GetVarint(encoded.payload,
                                                           &pos)));
        const bool has_residual = GetVarint(encoded.payload, &pos) != 0;
        if (has_residual) {
          DecodeResidualSeq(encoded.payload, &pos,
                            static_cast<size_t>(bw) * bh, &residual);
        }
        for (int y = 0; y < bh; ++y) {
          const float* ref_row = reference_.row(by + dy + y) + bx + dx;
          float* recon_row = recon.row(by + y) + bx;
          for (int x = 0; x < bw; ++x) {
            float v = ref_row[x];
            if (has_residual) {
              v += DequantizeResidual(residual[static_cast<size_t>(y) * bw + x],
                                      config.quant_levels);
            }
            recon_row[x] = std::clamp(v, 0.0f, 1.0f);
          }
        }
        if (stats != nullptr) ++stats->blocks_motion_compensated;
      }
    }
  }

  if (stats != nullptr) {
    ++stats->frames_decoded;
    stats->pixels_decoded += static_cast<int64_t>(width) * height;
    stats->bytes_read += static_cast<int64_t>(encoded.payload.size());
  }
  // Swap instead of move: reference_'s old buffer becomes next frame's
  // recon_ scratch, so sequential decoding ping-pongs two pooled buffers.
  std::swap(reference_, recon_);
  reference_index_ = index;
  return Status::OK();
}

Status Decoder::DecodeFrameInto(int index, DecodeStats* stats, Image* out) {
  OTIF_CHECK(out != nullptr);
  if (index < 0 || index >= num_frames()) {
    return Status::OutOfRange("frame index out of range");
  }
  if (index != reference_index_) {
    // Two ways to reach `index`: continue forward from the current
    // reference, or restart from the nearest preceding I-frame. Take
    // whichever decodes fewer frames.
    int anchor = index;
    while (anchor > 0 &&
           !video_->frames[static_cast<size_t>(anchor)].is_intra) {
      --anchor;
    }
    int start = anchor;
    if (reference_index_ >= 0 && reference_index_ < index &&
        reference_index_ + 1 > anchor) {
      start = reference_index_ + 1;
    }
    for (int t = start; t <= index; ++t) {
      OTIF_RETURN_IF_ERROR(DecodeInto(t, stats));
    }
  }
  fault::Injection inj;
  if (OTIF_FAULT_POINT("decode.frame", index, &inj)) {
    if (inj.kind == fault::Kind::kError) {
      return Status::IoError(
          StrFormat("injected decode fault at frame %d", index));
    }
    if (inj.kind == fault::Kind::kCorrupt) {
      // Deliver a short frame: the bottom half never decoded. Done on the
      // output copy so the decoder's reference chain stays intact and
      // later frames decode normally.
      *out = reference_;
      float* d = out->data();
      const size_t total =
          static_cast<size_t>(out->width()) * out->height();
      std::fill(d + total / 2, d + total, 0.0f);
      return Status::OK();
    }
    if (inj.kind == fault::Kind::kStall) {
      std::this_thread::sleep_for(std::chrono::milliseconds(inj.stall_ms));
    }
  }
  // Copy-assignment reuses out's pixel buffer when the capacity fits.
  *out = reference_;
  return Status::OK();
}

StatusOr<Image> Decoder::DecodeFrame(int index, DecodeStats* stats) {
  Image out;
  OTIF_RETURN_IF_ERROR(DecodeFrameInto(index, stats, &out));
  return out;
}

StatusOr<std::vector<Image>> Decoder::DecodeAll(DecodeStats* stats) {
  std::vector<Image> out;
  out.reserve(static_cast<size_t>(num_frames()));
  for (int t = 0; t < num_frames(); ++t) {
    OTIF_ASSIGN_OR_RETURN(Image frame, DecodeFrame(t, stats));
    out.push_back(std::move(frame));
  }
  return out;
}

}  // namespace otif::video
