#ifndef OTIF_VIDEO_CODEC_H_
#define OTIF_VIDEO_CODEC_H_

#include <cstdint>
#include <vector>

#include "util/status.h"
#include "video/image.h"

namespace otif::video {

/// Parameters of the toy H264-like codec: I-frames plus motion-compensated
/// P-frames over 16x16 blocks, with quantized residuals and run-length
/// entropy coding. Lossy but bounded-error; deterministic.
struct CodecConfig {
  /// Every `gop_size`-th frame is an intra (I) frame; the frames between
  /// depend on their predecessor, so seeking decodes from the nearest
  /// preceding I-frame.
  int gop_size = 16;
  /// Motion block edge length in pixels.
  int block_size = 16;
  /// Quantization levels for intra pixels (error <= 0.5 / quant_levels).
  int quant_levels = 64;
  /// Motion search radius in pixels (full search, step 2 then refine).
  int search_radius = 8;
  /// Mean-abs-residual below which a predicted block is stored as skip.
  float skip_threshold = 0.01f;
};

/// One encoded frame: its type and byte payload.
struct EncodedFrame {
  bool is_intra = false;
  std::vector<uint8_t> payload;
};

/// Encoded clip: configuration + frame payloads.
struct EncodedVideo {
  CodecConfig config;
  int width = 0;
  int height = 0;
  std::vector<EncodedFrame> frames;

  /// Total compressed size in bytes.
  size_t TotalBytes() const;
};

/// Counters accumulated by the decoder; the cost model converts these into
/// simulated decode seconds.
struct DecodeStats {
  int64_t frames_decoded = 0;
  int64_t intra_frames_decoded = 0;
  int64_t pixels_decoded = 0;
  int64_t blocks_motion_compensated = 0;
  int64_t bytes_read = 0;

  DecodeStats& operator+=(const DecodeStats& o);
};

/// Encodes a frame sequence. Frames must share dimensions divisible choices
/// are handled internally (edge blocks are cropped).
class Encoder {
 public:
  explicit Encoder(CodecConfig config);

  /// Encodes `frames` into a clip. Returns InvalidArgument for empty input
  /// or mismatched frame dimensions.
  StatusOr<EncodedVideo> Encode(const std::vector<Image>& frames) const;

 private:
  CodecConfig config_;
};

/// Decodes frames from an EncodedVideo, maintaining reference state so that
/// sequential decoding is O(1) per frame while random access decodes from
/// the nearest preceding I-frame.
///
/// All decode scratch (the reconstruction image, the delta/residual symbol
/// buffers) lives in reusable members, so sequential decoding is
/// allocation-free at steady state; DecodeFrameInto additionally reuses the
/// caller's output buffer.
class Decoder {
 public:
  explicit Decoder(const EncodedVideo* video);

  int num_frames() const { return static_cast<int>(video_->frames.size()); }

  /// Decodes frame `index`, decoding any needed reference frames first.
  /// Accumulates work into `stats` when non-null.
  StatusOr<Image> DecodeFrame(int index, DecodeStats* stats);

  /// DecodeFrame, but writing into `out` (pixel buffer reused when its
  /// capacity fits — the zero-copy path for drivers with per-slot frames).
  Status DecodeFrameInto(int index, DecodeStats* stats, Image* out);

  /// Decodes every frame in order.
  StatusOr<std::vector<Image>> DecodeAll(DecodeStats* stats);

 private:
  Status DecodeInto(int index, DecodeStats* stats);

  const EncodedVideo* video_;  // Not owned.
  Image reference_;            // Last reconstructed frame.
  Image recon_;                // Scratch: swapped with reference_ per frame.
  std::vector<int> delta_scratch_;     // Intra-frame delta symbols.
  std::vector<int> residual_scratch_;  // P-frame block residual symbols.
  int reference_index_ = -1;
};

}  // namespace otif::video

#endif  // OTIF_VIDEO_CODEC_H_
