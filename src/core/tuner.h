#ifndef OTIF_CORE_TUNER_H_
#define OTIF_CORE_TUNER_H_

#include <string>
#include <vector>

#include "core/best_config.h"
#include "core/pipeline.h"

namespace otif::core {

/// One point on the tuner's output speed-accuracy curve.
struct TunerPoint {
  PipelineConfig config;
  /// Simulated seconds to process the validation set under this config.
  double val_seconds = 0.0;
  double val_accuracy = 0.0;
  /// Module whose update produced this point: "init" for theta_1, else
  /// "detection", "proxy", or "gap". Mirrored into the telemetry counters
  /// tuner.chosen.<module> for run reports.
  std::string chosen_module = "init";
};

/// The OTIF joint parameter tuner (paper Sec 3.5). Starting from the
/// best-accuracy configuration, each iteration asks every enabled module
/// for an update that speeds the pipeline up by roughly the coarseness
/// C (30%), evaluates each candidate on the validation set, and keeps the
/// most accurate. The result approximates the Pareto frontier with O(mn)
/// validation evaluations.
///
/// Module subsets support the Table 4 ablation: detector-only, +sampling
/// rate, +recurrent tracker, +segmentation proxy model.
class Tuner {
 public:
  struct Options {
    /// Tuning coarseness C: each step targets a ~C overall speedup.
    double coarseness = 0.3;
    /// Maximum number of curve points after theta_1.
    int max_iterations = 14;
    /// Enable the tracking module's sampling-gap parameter.
    bool enable_gap_tuning = true;
    /// Cap on the sampling gap.
    int max_gap = 64;
    /// Tracker used by tuned configurations.
    TrackerKind tracker = TrackerKind::kRecurrent;
    /// Enable the segmentation proxy model module.
    bool enable_proxy = true;
    /// Enable cluster-based track refinement in tuned configurations
    /// (ignored for moving-camera datasets by the pipeline itself).
    bool enable_refine = true;
  };

  /// Cached detection-module profile: per-frame runtime and validation
  /// accuracy for one (architecture, scale) choice (Sec 3.5.1).
  struct DetectionProfile {
    std::string arch;
    double scale = 1.0;
    double per_frame_sec = 0.0;
    double accuracy = 0.0;
  };

  /// Cached proxy-module profile for one (resolution, threshold) choice
  /// (Sec 3.5.2): the windowed detector's cost relative to a full-frame
  /// pass, the proxy's own per-frame cost, and its detection recall.
  struct ProxyProfile {
    int resolution_index = 0;
    double threshold = 0.5;
    double relative_detector_cost = 1.0;
    double proxy_sec_per_frame = 0.0;
    double recall = 1.0;
  };

  Tuner(const std::vector<sim::Clip>* validation, const TrainedModels* trained,
        AccuracyFn accuracy_fn, Options options);

  /// Runs the caching phase then the greedy tuning phase; returns the
  /// speed-accuracy curve starting at theta_1 (derived from theta_best).
  std::vector<TunerPoint> Run(const PipelineConfig& theta_best);

  /// Caching-phase outputs, exposed for tests and diagnostics.
  const std::vector<DetectionProfile>& detection_profiles() const {
    return detection_profiles_;
  }
  const std::vector<ProxyProfile>& proxy_profiles() const {
    return proxy_profiles_;
  }

  /// Total validation evaluations performed (the paper's O(mn) claim).
  int evaluations_performed() const { return evaluations_; }

 private:
  void CacheDetectionModule(const PipelineConfig& theta_best);
  void CacheProxyModule(const PipelineConfig& theta_best);

  /// Estimated per-frame detector+proxy cost of a configuration, from the
  /// caches.
  double EstimatedPerFrameCost(const PipelineConfig& config) const;

  /// Module update requests; return false when no ~C-faster update exists.
  bool ProposeDetectionUpdate(const PipelineConfig& current,
                              PipelineConfig* out) const;
  bool ProposeProxyUpdate(const PipelineConfig& current,
                          PipelineConfig* out) const;
  bool ProposeGapUpdate(const PipelineConfig& current,
                        PipelineConfig* out) const;

  const std::vector<sim::Clip>* validation_;  // Not owned.
  const TrainedModels* trained_;              // Not owned.
  AccuracyFn accuracy_fn_;
  Options options_;
  std::vector<DetectionProfile> detection_profiles_;
  std::vector<ProxyProfile> proxy_profiles_;
  int evaluations_ = 0;
};

}  // namespace otif::core

#endif  // OTIF_CORE_TUNER_H_
