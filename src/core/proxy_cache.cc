#include "core/proxy_cache.h"

#include <utility>

#include "util/logging.h"

namespace otif::core {

ProxyScoreCache::ProxyScoreCache(size_t capacity) : capacity_(capacity) {
  OTIF_CHECK_GE(capacity, 1u);
}

nn::Tensor ProxyScoreCache::GetOrCompute(
    const Key& key, const std::function<nn::Tensor()>& compute) const {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  nn::Tensor scores = compute();

  std::lock_guard<std::mutex> lock(mu_);
  // Another thread may have inserted the key meanwhile; first write wins.
  if (entries_.emplace(key, scores).second) {
    insertion_order_.push_back(key);
    while (entries_.size() > capacity_) {
      entries_.erase(insertion_order_.front());
      insertion_order_.pop_front();
    }
  }
  return scores;
}

void ProxyScoreCache::Clear() const {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  insertion_order_.clear();
}

size_t ProxyScoreCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

}  // namespace otif::core
