#include "core/proxy_cache.h"

#include <utility>

#include "util/logging.h"
#include "util/telemetry.h"

namespace otif::core {
namespace {

/// Global mirrors of the per-cache counters so cache behavior shows up in
/// telemetry snapshots without plumbing cache pointers into report code.
/// Written only when telemetry is enabled; the cache's own atomics stay the
/// source of truth for its accessors.
struct CacheTelemetry {
  telemetry::Counter* hits;
  telemetry::Counter* misses;
  telemetry::Counter* evictions;
};

const CacheTelemetry& GetCacheTelemetry() {
  static const CacheTelemetry t{
      telemetry::MetricsRegistry::Global().GetCounter("proxy_cache.hits"),
      telemetry::MetricsRegistry::Global().GetCounter("proxy_cache.misses"),
      telemetry::MetricsRegistry::Global().GetCounter("proxy_cache.evictions"),
  };
  return t;
}

}  // namespace

ProxyScoreCache::ProxyScoreCache(size_t capacity) : capacity_(capacity) {
  OTIF_CHECK_GE(capacity, 1u);
}

nn::Tensor ProxyScoreCache::GetOrCompute(
    const Key& key, const std::function<nn::Tensor()>& compute) const {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      if (telemetry::Enabled()) GetCacheTelemetry().hits->Add(1);
      return it->second;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  if (telemetry::Enabled()) GetCacheTelemetry().misses->Add(1);
  nn::Tensor scores = compute();

  std::lock_guard<std::mutex> lock(mu_);
  // Another thread may have inserted the key meanwhile; first write wins.
  if (entries_.emplace(key, scores).second) {
    insertion_order_.push_back(key);
    while (entries_.size() > capacity_) {
      entries_.erase(insertion_order_.front());
      insertion_order_.pop_front();
      evictions_.fetch_add(1, std::memory_order_relaxed);
      if (telemetry::Enabled()) GetCacheTelemetry().evictions->Add(1);
    }
  }
  return scores;
}

bool ProxyScoreCache::Lookup(const Key& key, nn::Tensor* out) const {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      if (telemetry::Enabled()) GetCacheTelemetry().hits->Add(1);
      *out = it->second;
      return true;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  if (telemetry::Enabled()) GetCacheTelemetry().misses->Add(1);
  return false;
}

nn::Tensor ProxyScoreCache::Insert(const Key& key, nn::Tensor value) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = entries_.emplace(key, std::move(value));
  if (inserted) {
    insertion_order_.push_back(key);
    while (entries_.size() > capacity_) {
      entries_.erase(insertion_order_.front());
      insertion_order_.pop_front();
      evictions_.fetch_add(1, std::memory_order_relaxed);
      if (telemetry::Enabled()) GetCacheTelemetry().evictions->Add(1);
    }
    // The sweep never erases the fresh key: it sits at the back of the
    // insertion order and capacity_ >= 1, so `it` stays valid.
  }
  return it->second;
}

void ProxyScoreCache::Clear() const {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  insertion_order_.clear();
}

void ProxyScoreCache::ResetCounters() const {
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
  evictions_.store(0, std::memory_order_relaxed);
}

double ProxyScoreCache::hit_rate() const {
  const int64_t h = hits();
  const int64_t lookups = h + misses();
  return lookups > 0 ? static_cast<double>(h) / lookups : 0.0;
}

size_t ProxyScoreCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

}  // namespace otif::core
