#ifndef OTIF_CORE_EXECUTOR_STREAMING_EXECUTOR_H_
#define OTIF_CORE_EXECUTOR_STREAMING_EXECUTOR_H_

#include <mutex>
#include <vector>

#include "core/pipeline.h"
#include "sim/world.h"
#include "util/status.h"

namespace otif::core {

/// Tuning knobs for the streaming executor. Zero values mean "derive a
/// default" (from ThreadPool::Default()'s width and the pipeline config).
struct StreamingOptions {
  /// Number of clip streams interleaved by the source stage. More streams
  /// put more distinct clips in flight simultaneously, which is what fills
  /// cross-clip batches. 0 => max(2, worker width).
  int num_streams = 0;
  /// Cross-clip batch release threshold, in frames. 0 => 32, clamped to
  /// what the stage worker count can actually have in flight.
  int batch_target_frames = 0;
  /// Microseconds a partial batch waits for more streams before releasing.
  /// 0 => 500.
  int batch_wait_us = 0;
  /// Capacity of each inter-stage channel (the backpressure bound).
  /// 0 => max(4, 2 x stage workers, num_streams).
  int channel_capacity = 0;
  /// Worker threads per compute stage (proxy, detect) and for the commit
  /// stage. 0 => max(1, worker width / 2).
  int stage_workers = 0;
};

/// Reads OTIF_STREAMS, OTIF_BATCH_TARGET, and OTIF_BATCH_WAIT_US into a
/// StreamingOptions (invalid values are ignored with a logged warning,
/// leaving the derived defaults in place).
StreamingOptions StreamingOptionsFromEnv();

/// One clip the executor gave up on: its detect stage kept failing after
/// bounded retries, so the clip was quarantined (cancelled and drained)
/// while the remaining streams completed.
struct FailedClip {
  int clip_index = -1;
  Status status;    // The fault that exhausted the retry budget.
  int retries = 0;  // Transient-retry count before giving up.
};

/// Result of one streaming run. `results` is positional by clip index —
/// quarantined clips hold a default-constructed placeholder there and are
/// reported in `failed_clips` instead. In a fault-free run failed_clips
/// and degraded_clips are empty and `results` matches the serial reference
/// path bit-identically.
struct StreamingRunReport {
  std::vector<PipelineResult> results;
  std::vector<FailedClip> failed_clips;  // Ascending clip_index.
  /// Clips whose proxy stage failed persistently and fell back to
  /// full-frame detection (completed, but with degraded frame selection).
  std::vector<int> degraded_clips;  // Ascending clip_index.
};

/// Cross-stream dataflow executor: runs the OTIF pipeline over many clips
/// through bounded stage queues (decode/source -> proxy -> detect ->
/// track+commit) with proxy and detector invocations batched ACROSS clips
/// (paper Sec 4 — one GPU batch spans the frames of many videos).
///
/// Determinism contract: results are bit-identical to running the serial
/// reference path `Pipeline::Run` on each clip — same tracks, same
/// detections, same per-clip SimClock charges. The executor achieves this
/// by splitting each stage into its pure compute half (runs on stage
/// workers, any order, any batch composition) and its ordered commit half
/// (replayed per clip in serial group order under a per-clip reassembly
/// buffer); simulated costs are charged with the serial frame_batch
/// grouping formulas regardless of how invocations were actually batched.
/// Batching therefore changes wall-clock throughput and telemetry, never
/// results.
///
/// A StreamingExecutor is single-use per Run call but reusable across
/// calls; Cancel() (from any thread) aborts an in-flight Run, which then
/// returns a Cancelled status.
class StreamingExecutor {
 public:
  /// `trained` may be null under the same conditions as Pipeline (no
  /// proxy, SORT tracker, no refinement). Invalid combinations are
  /// reported by Run as a Status rather than aborting.
  StreamingExecutor(PipelineConfig config, const TrainedModels* trained,
                    StreamingOptions options = {});

  const PipelineConfig& config() const { return config_; }

  /// The invariants Pipeline's constructor enforces with CHECKs, as a
  /// Status (the executor's channel-based error path instead of aborting).
  static Status ValidateConfig(const PipelineConfig& config,
                               const TrainedModels* trained);

  /// Runs the pipeline over every clip, returning per-clip results ordered
  /// by clip index. Blocks until all clips finished (or the run failed /
  /// was cancelled). Must not be called concurrently with itself.
  ///
  /// Fault tolerance (only reachable with OTIF_FAULTS armed): transient
  /// model-invocation faults are retried with bounded exponential backoff;
  /// a clip whose detect stage fails persistently is quarantined — its
  /// remaining groups are drained and the clip lands in
  /// StreamingRunReport::failed_clips while every other clip completes
  /// normally — and a persistently-failing proxy stage degrades the clip
  /// to full-frame detection (reported in degraded_clips).
  StatusOr<StreamingRunReport> Run(const std::vector<sim::Clip>& clips);

  /// Aborts an in-flight Run (closing every channel and batcher) and makes
  /// future Runs fail fast. Safe from any thread; idempotent.
  void Cancel();

  /// Channels, batchers, and per-clip work of one Run call (defined in the
  /// .cc; declared here so the worker loops can name it).
  struct RunState;

 private:
  PipelineConfig config_;
  const TrainedModels* trained_;
  StreamingOptions options_;

  std::mutex mu_;
  RunState* active_ = nullptr;  // Non-null while Run is in flight; mu_.
  bool cancelled_ = false;      // Latched by Cancel; mu_.
};

}  // namespace otif::core

#endif  // OTIF_CORE_EXECUTOR_STREAMING_EXECUTOR_H_
