#ifndef OTIF_CORE_EXECUTOR_CHANNEL_H_
#define OTIF_CORE_EXECUTOR_CHANNEL_H_

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <utility>

#include "util/fault_injection.h"
#include "util/telemetry.h"

namespace otif::core::executor {

/// Bounded multi-producer multi-consumer queue connecting two stage worker
/// groups of the streaming executor.
///
/// Semantics (Go-channel style):
///  - Push blocks while the channel is full; returns false iff the channel
///    was closed (the item is dropped — producers treat false as "stop").
///  - Pop blocks while the channel is empty and open; after Close it keeps
///    returning buffered items until the channel is drained, then returns
///    false. This close-with-drain rule is what lets a finished upstream
///    stage signal "no more work" without losing in-flight items.
///  - Close is idempotent and wakes every blocked producer and consumer.
///
/// The bound is the backpressure mechanism: a slow downstream stage fills
/// its input channel, which blocks the upstream workers instead of letting
/// queued work grow without limit.
///
/// Telemetry (when constructed with a non-empty name and telemetry is on):
///  - gauge "executor.channel.<name>.depth": current queue depth,
///  - histogram "executor.channel.<name>.occupancy": depth observed at each
///    Push, i.e. the stationary queue-depth distribution under load.
template <typename T>
class Channel {
 public:
  /// `capacity` is clamped below to 1. An empty `name` disables telemetry
  /// (used by tests that must not touch the global registry).
  explicit Channel(size_t capacity, std::string name = "")
      : capacity_(capacity == 0 ? 1 : capacity) {
    if (!name.empty()) {
      telemetry::MetricsRegistry& reg = telemetry::MetricsRegistry::Global();
      depth_gauge_ = reg.GetGauge("executor.channel." + name + ".depth");
      occupancy_ = reg.GetHistogram(
          "executor.channel." + name + ".occupancy",
          {0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0});
      fault_site_ = fault::GetSite("channel." + name);
    }
  }

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  /// Blocks while full. Returns true when the item was enqueued, false when
  /// the channel is (or becomes) closed — the item is dropped in that case.
  bool Push(T item) {
    // Chaos hook: "channel.<name>" can stall the producer (backpressure /
    // slow-upstream simulation) or close the channel out from under it
    // (which makes this very Push return false, like any downstream close).
    if (fault_site_ != nullptr && fault::Enabled()) {
      fault::Injection inj;
      if (fault_site_->Inject(/*token=*/-1, &inj)) {
        if (inj.kind == fault::Kind::kStall) {
          std::this_thread::sleep_for(std::chrono::milliseconds(inj.stall_ms));
        } else if (inj.kind == fault::Kind::kClose) {
          Close();
        }
      }
    }
    size_t depth;
    {
      std::unique_lock<std::mutex> lock(mu_);
      not_full_.wait(lock,
                     [&] { return closed_ || items_.size() < capacity_; });
      if (closed_) return false;
      items_.push_back(std::move(item));
      depth = items_.size();
    }
    not_empty_.notify_one();
    RecordDepth(depth, /*pushed=*/true);
    return true;
  }

  /// Blocks while empty and open. Returns true with the next item in *out;
  /// returns false once the channel is closed and drained.
  bool Pop(T* out) {
    size_t depth;
    {
      std::unique_lock<std::mutex> lock(mu_);
      not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
      if (items_.empty()) return false;  // Closed and drained.
      *out = std::move(items_.front());
      items_.pop_front();
      depth = items_.size();
    }
    not_full_.notify_one();
    RecordDepth(depth, /*pushed=*/false);
    return true;
  }

  /// Closes the channel: pending and future Push calls return false,
  /// Pop drains buffered items then returns false. Idempotent.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  /// Instantaneous queue depth (diagnostic; racy by nature).
  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  size_t capacity() const { return capacity_; }

 private:
  void RecordDepth(size_t depth, bool pushed) {
    if (depth_gauge_ == nullptr || !telemetry::Enabled()) return;
    depth_gauge_->Set(static_cast<double>(depth));
    if (pushed) occupancy_->Record(static_cast<double>(depth));
  }

  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;   // Guarded by mu_.
  bool closed_ = false;   // Guarded by mu_.
  telemetry::Gauge* depth_gauge_ = nullptr;   // Null => telemetry off.
  telemetry::Histogram* occupancy_ = nullptr;
  fault::Site* fault_site_ = nullptr;  // Null for unnamed channels.
};

}  // namespace otif::core::executor

#endif  // OTIF_CORE_EXECUTOR_CHANNEL_H_
