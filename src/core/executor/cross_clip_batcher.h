#ifndef OTIF_CORE_EXECUTOR_CROSS_CLIP_BATCHER_H_
#define OTIF_CORE_EXECUTOR_CROSS_CLIP_BATCHER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "util/fault_injection.h"
#include "util/telemetry.h"

namespace otif::core::executor {

/// Collects model-invocation requests from many concurrent clip streams and
/// releases them as one batched invocation — the streaming executor's
/// cross-clip batching point (paper Sec 4: detector batches span the frames
/// of many videos, not just consecutive frames of one).
///
/// Protocol: stage workers call Submit(request, units), which BLOCKS until
/// the request has been processed as part of a wave. A wave releases when
///  - its accumulated units reach Options::target_units (the submitting
///    worker becomes the leader and runs ProcessFn inline), or
///  - Options::max_wait elapses since the wave opened (the first waiting
///    follower to time out becomes the deadline leader and runs the partial
///    wave), or
///  - Flush() is called (drain path: the caller leads the partial wave).
/// Because Submit is synchronous, a worker can never exit with a request
/// still pending — the executor's stage-drain protocol needs no extra
/// bookkeeping to guarantee every request is answered.
///
/// `units` is the submitter-defined fill contribution (the executor counts
/// frames, so a request carrying a frame group contributes the group size).
///
/// Close() cancels: pending waves are abandoned and their Submit calls
/// return false WITHOUT the request having been processed (callers fall
/// back to an unbatched invocation). Waves already processing complete.
///
/// ProcessFn runs on whichever worker becomes the leader, outside the
/// batcher lock, and must fill every request's response slots. It must be
/// batch-composition-independent (per-request results identical no matter
/// which requests share the wave) for the executor's bit-identity
/// guarantee; the simulated models provide exactly that.
///
/// Telemetry (when telemetry is enabled):
///  - histogram "executor.batch.<name>.fill": units per released wave,
///  - counters "executor.batch.<name>.releases_full" / ".releases_deadline"
///    (Flush releases count as deadline releases).
template <typename Request>
class CrossClipBatcher {
 public:
  using ProcessFn = std::function<void(const std::vector<Request*>&)>;

  struct Options {
    /// Release threshold in units. Waves release as soon as accumulated
    /// units reach this value; clamped below to 1.
    int target_units = 32;
    /// How long a partial wave may wait for more streams to contribute
    /// before a follower releases it anyway.
    std::chrono::microseconds max_wait{500};
  };

  CrossClipBatcher(const std::string& name, Options options, ProcessFn process)
      : options_(options), process_(std::move(process)) {
    if (options_.target_units < 1) options_.target_units = 1;
    telemetry::MetricsRegistry& reg = telemetry::MetricsRegistry::Global();
    fill_hist_ = reg.GetHistogram(
        "executor.batch." + name + ".fill",
        {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0});
    full_releases_counter_ =
        reg.GetCounter("executor.batch." + name + ".releases_full");
    deadline_releases_counter_ =
        reg.GetCounter("executor.batch." + name + ".releases_deadline");
    fault_site_ = fault::GetSite("batcher." + name + ".submit");
  }

  CrossClipBatcher(const CrossClipBatcher&) = delete;
  CrossClipBatcher& operator=(const CrossClipBatcher&) = delete;

  /// Adds `req` (contributing `units` toward the release threshold) and
  /// blocks until the wave containing it has been processed. Returns true
  /// when the request was processed, false when the batcher was closed
  /// first (the request was NOT processed; the caller must handle it).
  bool Submit(Request* req, int units) {
    // Chaos hook: "batcher.<name>.submit" stalls this submitter before it
    // joins a wave, exercising the deadline-release path (followers time
    // out and lead partial waves while a producer lags). Only kStall is
    // honoured here — Submit has no output to corrupt or deny.
    if (fault::Enabled()) {
      fault::Injection inj;
      if (fault_site_->Inject(/*token=*/-1, &inj) &&
          inj.kind == fault::Kind::kStall) {
        std::this_thread::sleep_for(std::chrono::milliseconds(inj.stall_ms));
      }
    }
    std::unique_lock<std::mutex> lock(mu_);
    if (closed_) return false;
    if (current_ == nullptr) {
      current_ = std::make_shared<Wave>();
      current_->deadline = std::chrono::steady_clock::now() + options_.max_wait;
    }
    std::shared_ptr<Wave> wave = current_;
    wave->requests.push_back(req);
    wave->units += units;

    if (wave->units >= options_.target_units) {
      // This submitter fills the wave: detach it so new submissions open a
      // fresh wave, and lead the release inline.
      current_ = nullptr;
      ProcessWaveLocked(lock, *wave, /*full=*/true);
      return true;
    }

    // Follower: wait for a leader. If the deadline passes with the wave
    // still open, become the deadline leader and release the partial wave.
    while (!wave->done && !wave->cancelled) {
      if (wave->processing) {
        cv_.wait(lock);
        continue;
      }
      if (cv_.wait_until(lock, wave->deadline) == std::cv_status::timeout &&
          !wave->done && !wave->cancelled && !wave->processing) {
        if (current_ == wave) current_ = nullptr;
        ProcessWaveLocked(lock, *wave, /*full=*/false);
        return true;
      }
    }
    return wave->done;
  }

  /// Releases the currently open wave, if any, on the calling thread.
  /// Drain aid only — the deadline already guarantees liveness.
  void Flush() {
    std::unique_lock<std::mutex> lock(mu_);
    if (current_ == nullptr || current_->processing) return;
    std::shared_ptr<Wave> wave = current_;
    current_ = nullptr;
    ProcessWaveLocked(lock, *wave, /*full=*/false);
  }

  /// Cancels the batcher: the open wave (if not yet processing) is
  /// abandoned and its submitters return false; future Submits return
  /// false immediately. Idempotent.
  void Close() {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    if (current_ != nullptr && !current_->processing) {
      current_->cancelled = true;
      current_ = nullptr;
    }
    cv_.notify_all();
  }

  // Lifetime release statistics (independent of the telemetry flag).
  int64_t full_releases() const {
    return full_releases_.load(std::memory_order_relaxed);
  }
  int64_t deadline_releases() const {
    return deadline_releases_.load(std::memory_order_relaxed);
  }
  int64_t units_processed() const {
    return units_processed_.load(std::memory_order_relaxed);
  }

 private:
  struct Wave {
    std::vector<Request*> requests;
    int units = 0;
    std::chrono::steady_clock::time_point deadline;
    bool processing = false;  // A leader is running ProcessFn on this wave.
    bool done = false;        // ProcessFn completed; responses are filled.
    bool cancelled = false;   // Abandoned by Close before processing.
  };

  /// Runs ProcessFn on `wave` (lock released around the call), marks it
  /// done, and wakes its followers. Caller must hold `lock`.
  void ProcessWaveLocked(std::unique_lock<std::mutex>& lock, Wave& wave,
                         bool full) {
    wave.processing = true;
    lock.unlock();
    process_(wave.requests);
    (full ? full_releases_ : deadline_releases_)
        .fetch_add(1, std::memory_order_relaxed);
    units_processed_.fetch_add(wave.units, std::memory_order_relaxed);
    if (telemetry::Enabled()) {
      fill_hist_->Record(static_cast<double>(wave.units));
      (full ? full_releases_counter_ : deadline_releases_counter_)->Add(1);
    }
    lock.lock();
    wave.done = true;
    cv_.notify_all();
  }

  Options options_;
  ProcessFn process_;

  std::mutex mu_;
  std::condition_variable cv_;
  std::shared_ptr<Wave> current_;  // Open wave accepting requests; mu_.
  bool closed_ = false;            // Guarded by mu_.

  std::atomic<int64_t> full_releases_{0};
  std::atomic<int64_t> deadline_releases_{0};
  std::atomic<int64_t> units_processed_{0};

  telemetry::Histogram* fill_hist_;
  telemetry::Counter* full_releases_counter_;
  telemetry::Counter* deadline_releases_counter_;
  fault::Site* fault_site_;
};

}  // namespace otif::core::executor

#endif  // OTIF_CORE_EXECUTOR_CROSS_CLIP_BATCHER_H_
