#include "core/executor/streaming_executor.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <iterator>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/executor/channel.h"
#include "core/executor/cross_clip_batcher.h"
#include "core/stages.h"
#include "models/proxy.h"
#include "obs/run_progress.h"
#include "util/fault_injection.h"
#include "util/logging.h"
#include "util/strings.h"
#include "util/telemetry.h"
#include "util/thread_pool.h"
#include "util/trace.h"
#include "util/trace_timeline.h"

namespace otif::core {
namespace {

using executor::Channel;
using executor::CrossClipBatcher;

// Same names and bounds as the serial stages' invocation histograms, so
// serial and streaming batch sizes report through comparable metrics.
telemetry::Histogram* ProxyInvocationFrames() {
  static telemetry::Histogram* const h =
      telemetry::MetricsRegistry::Global().GetHistogram(
          "proxy.invocation_frames",
          {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0});
  return h;
}

telemetry::Histogram* DetectInvocationFrames() {
  static telemetry::Histogram* const h =
      telemetry::MetricsRegistry::Global().GetHistogram(
          "detect.invocation_frames",
          {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0});
  return h;
}

// Groups processed per stage worker group (occupancy counters; the
// wall-clock side lives in the shared "stage/<name>" spans).
telemetry::Counter* StageGroupsCounter(const char* stage) {
  return telemetry::MetricsRegistry::Global().GetCounter(
      std::string("executor.stage.") + stage + ".groups");
}

// Recovery counters (fault runs only; never incremented while disarmed).
telemetry::Counter* RetriesCounter() {
  static telemetry::Counter* const c =
      telemetry::MetricsRegistry::Global().GetCounter("executor.retries");
  return c;
}

telemetry::Counter* QuarantinedCounter() {
  static telemetry::Counter* const c =
      telemetry::MetricsRegistry::Global().GetCounter(
          "executor.quarantined_clips");
  return c;
}

telemetry::Counter* DegradedCounter() {
  static telemetry::Counter* const c =
      telemetry::MetricsRegistry::Global().GetCounter(
          "executor.degraded_clips");
  return c;
}

/// How many consecutive injected transient errors exhaust a stage's retry
/// budget for one group.
constexpr int kMaxFaultAttempts = 4;

/// Consults a model-invocation fault site before the stage compute runs.
/// Transient (kError) decisions retry in place with bounded exponential
/// backoff; because the fault fires PRE-invocation, no stage state was
/// touched and the retry is just a fresh decision with the next attempt
/// token — replay-deterministic and independent of worker interleaving.
/// kStall sleeps (latency spike) and succeeds; other kinds are not
/// meaningful for an invocation and pass through. Returns non-OK only
/// after kMaxFaultAttempts consecutive error decisions.
Status AttemptStage(fault::Site* site, int clip, int group, int* retries) {
  for (int attempt = 0;; ++attempt) {
    // Token encodes (clip, group, attempt): each retry re-rolls the site
    // RNG, and the roll sequence is a pure function of the work item.
    const int64_t token =
        (static_cast<int64_t>(clip) * 1000003 + group) * 16 + attempt;
    fault::Injection inj;
    if (!site->Inject(clip, token, &inj)) return Status::OK();
    if (inj.kind == fault::Kind::kStall) {
      std::this_thread::sleep_for(std::chrono::milliseconds(inj.stall_ms));
      return Status::OK();
    }
    if (inj.kind != fault::Kind::kError) return Status::OK();
    if (attempt + 1 >= kMaxFaultAttempts) {
      return Status::IoError(
          StrFormat("injected %s fault: clip %d group %d failed %d attempts",
                    site->name().c_str(), clip, group, kMaxFaultAttempts));
    }
    ++*retries;
    RetriesCounter()->Add(1);
    std::this_thread::sleep_for(
        std::chrono::milliseconds(std::min(1 << attempt, 4)));
  }
}

int ParseEnvInt(const char* name, int fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  char* end = nullptr;
  const long n = std::strtol(value, &end, 10);
  if (end != nullptr && *end == '\0' && n >= 1 && n <= (1 << 20)) {
    return static_cast<int>(n);
  }
  OTIF_LOG(kWarning) << name << "=\"" << value
                     << "\" is not a positive integer; ignoring it";
  return fallback;
}

/// Options with every zero default resolved against the pool width and the
/// pipeline's frame_batch.
struct ResolvedOptions {
  int streams;
  int batch_target;
  int batch_wait_us;
  int channel_capacity;
  int stage_workers;
};

ResolvedOptions Resolve(const StreamingOptions& options, int frame_batch) {
  const int width = ThreadPool::Default()->num_threads();
  ResolvedOptions r;
  r.stage_workers = options.stage_workers > 0 ? options.stage_workers
                                              : std::max(1, width / 2);
  r.streams =
      options.num_streams > 0 ? options.num_streams : std::max(2, width);
  // A stage has at most stage_workers requests pending at once, each
  // carrying at most frame_batch frames; a target above that bound could
  // never fill and every wave would wait out the deadline.
  const int want =
      options.batch_target_frames > 0 ? options.batch_target_frames : 32;
  r.batch_target = std::max(1, std::min(want, r.stage_workers * frame_batch));
  r.batch_wait_us = options.batch_wait_us > 0 ? options.batch_wait_us : 500;
  r.channel_capacity =
      options.channel_capacity > 0
          ? options.channel_capacity
          : std::max({4, 2 * r.stage_workers, r.streams});
  return r;
}

/// One frame_batch group of one clip flowing through the stage channels.
/// Carries (clip, sequence) identity for the commit-side reassembly.
struct Group {
  int clip_index = -1;
  int group_index = 0;
  std::vector<FrameContext> ctxs;

  std::vector<FrameContext*> Batch() {
    std::vector<FrameContext*> batch;
    batch.reserve(ctxs.size());
    for (FrameContext& ctx : ctxs) batch.push_back(&ctx);
    return batch;
  }
};

/// One clip's cache-missed proxy frames awaiting a cross-clip scoring wave.
struct ProxyRequest {
  const models::ProxyModel* proxy = nullptr;
  const std::vector<const video::Image*>* frames = nullptr;
  std::vector<nn::Tensor> out;
};

/// One clip's frame group awaiting a cross-clip detector wave.
struct DetectRequest {
  const models::SimulatedDetector* detector = nullptr;
  const sim::Clip* clip = nullptr;
  const std::vector<int>* frames = nullptr;
  double scale = 1.0;
  std::vector<track::FrameDetections> out;
};

/// Leader body of a proxy wave: one ScoreBatch invocation spanning every
/// stream's frames, split back per request. ScoreBatch is per-frame
/// deterministic, so the split results match per-clip invocations exactly.
void ProcessProxyWave(const std::vector<ProxyRequest*>& wave) {
  std::vector<const video::Image*> frames;
  for (const ProxyRequest* r : wave) {
    frames.insert(frames.end(), r->frames->begin(), r->frames->end());
  }
  std::vector<nn::Tensor> scores = wave.front()->proxy->ScoreBatch(frames);
  if (telemetry::Enabled()) {
    ProxyInvocationFrames()->Record(static_cast<double>(frames.size()));
  }
  size_t k = 0;
  for (ProxyRequest* r : wave) {
    const size_t n = r->frames->size();
    r->out.assign(std::make_move_iterator(scores.begin() + k),
                  std::make_move_iterator(scores.begin() + k + n));
    k += n;
  }
}

/// Leader body of a detect wave: one DetectBatchMulti invocation spanning
/// every stream's frames. Detections are seeded per (clip, frame, arch,
/// scale), so batch composition cannot change them.
void ProcessDetectWave(const std::vector<DetectRequest*>& wave) {
  std::vector<models::SimulatedDetector::ClipBatchRequest> requests;
  requests.reserve(wave.size());
  int total_frames = 0;
  for (const DetectRequest* r : wave) {
    requests.push_back({r->clip, *r->frames});
    total_frames += static_cast<int>(r->frames->size());
  }
  std::vector<std::vector<track::FrameDetections>> dets =
      wave.front()->detector->DetectBatchMulti(requests,
                                               wave.front()->scale);
  if (telemetry::Enabled()) {
    DetectInvocationFrames()->Record(static_cast<double>(total_frames));
  }
  for (size_t i = 0; i < wave.size(); ++i) {
    wave[i]->out = std::move(dets[i]);
  }
}

/// Per-clip execution state: the serial pipeline's per-run stage objects
/// plus the commit-side reassembly buffer. Compute halves touch a
/// ClipWork's stages from several workers concurrently (they are pure per
/// the stage contract); everything below `commit_mu` is commit-ordered.
struct ClipWork {
  ClipWork(const PipelineConfig& config, const TrainedModels* trained,
           const sim::Clip& c, const models::DetectorArch& arch)
      : clip(&c),
        raster(&c),
        decode(config, c),
        proxy(config, trained, c, arch, &raster),
        detect(config, c, arch),
        track(config, trained, c, &raster),
        refine(config, trained, c),
        stages{&decode, &proxy, &detect, &track, &refine} {}

  const sim::Clip* clip;
  sim::Rasterizer raster;
  DecodeStage decode;
  ProxyStage proxy;
  DetectStage detect;
  TrackStage track;
  RefineStage refine;
  std::array<Stage*, internal::kNumStages> stages;

  PipelineResult result;
  int total_groups = 0;

  std::mutex commit_mu;
  std::map<int, Group> pending;  // Out-of-order arrivals; commit_mu.
  int next_group = 0;            // Next group index to commit; commit_mu.
  bool finalized = false;        // EndClip ran; commit_mu.

  // Fault-recovery state (written only during fault runs). Workers read
  // the atomics to drop or degrade this clip's groups; the plain fields
  // are written once by the quarantine winner and read by Run after the
  // worker join (which provides the happens-before edge).
  std::atomic<bool> quarantined{false};
  std::atomic<bool> proxy_degraded{false};
  Status fail_status;
  int fail_retries = 0;
};

/// Marks a clip as failed (first caller wins): from now on the source stops
/// emitting its groups, workers drop in-flight ones, and the commit side
/// discards its reassembly buffer. Reported through the quarantine counter,
/// the live-progress registry (/statusz), and the flight recorder.
void QuarantineClip(ClipWork* w, int clip, const Status& status,
                    int retries) {
  if (w->quarantined.exchange(true)) return;
  w->fail_status = status;
  w->fail_retries = retries;
  QuarantinedCounter()->Add(1);
  OTIF_LOG(kWarning) << "clip " << clip << " quarantined after " << retries
                     << " retrie(s): " << status.ToString()
                     << " — remaining clips continue";
  if (obs::ProgressEnabled()) {
    obs::RunProgress::Global().MarkClipQuarantined(clip, status.ToString());
  }
  telemetry::timeline::ReportError(
      status, "streaming_executor: quarantined clip " + std::to_string(clip));
}

/// Replays the serial driver's per-group stage sequence for one group:
/// frame counting, then decode / proxy-commit / detect-commit / track /
/// refine under the shared per-stage spans. Caller holds the clip's
/// commit_mu and commits groups in index order, which reproduces the
/// serial charge and tracker-update order exactly.
void CommitGroup(ClipWork* w, Group* g) {
  std::vector<FrameContext*> batch = g->Batch();
  PipelineResult* result = &w->result;
  result->frames_processed += static_cast<int>(batch.size());
  {
    telemetry::ScopedSpan span(internal::StageSpan(0));
    w->decode.ProcessBatch(batch, result);
  }
  {
    telemetry::ScopedSpan span(internal::StageSpan(1));
    w->proxy.CommitBatch(batch, result);
  }
  {
    telemetry::ScopedSpan span(internal::StageSpan(2));
    w->detect.CommitBatch(batch, result);
  }
  {
    telemetry::ScopedSpan span(internal::StageSpan(3));
    w->track.ProcessBatch(batch, result);
  }
  {
    telemetry::ScopedSpan span(internal::StageSpan(4));
    w->refine.ProcessBatch(batch, result);
  }
  // Live progress: one relaxed flag load when introspection is off.
  if (obs::ProgressEnabled()) {
    obs::RunProgress::Global().OnFramesCommitted(
        g->clip_index, static_cast<int64_t>(batch.size()));
  }
}

/// Runs the serial EndClip sequence and folds the finished clip into the
/// run-level telemetry (same call the serial driver makes).
void FinalizeClip(ClipWork* w) {
  for (int s = 0; s < internal::kNumStages; ++s) {
    telemetry::ScopedSpan span(internal::StageSpan(s));
    w->stages[static_cast<size_t>(s)]->EndClip(&w->result);
  }
  if (telemetry::Enabled()) internal::RecordRunTelemetry(w->result);
}

}  // namespace

StreamingOptions StreamingOptionsFromEnv() {
  StreamingOptions options;
  options.num_streams = ParseEnvInt("OTIF_STREAMS", 0);
  options.batch_target_frames = ParseEnvInt("OTIF_BATCH_TARGET", 0);
  options.batch_wait_us = ParseEnvInt("OTIF_BATCH_WAIT_US", 0);
  return options;
}

/// Everything one Run call owns: the stage channels, the two cross-clip
/// batchers, and the per-clip work. Lives on Run's stack; Cancel reaches
/// it through the executor's `active_` pointer.
struct StreamingExecutor::RunState {
  RunState(const models::DetectorArch& a, const ResolvedOptions& opts)
      : arch(a),
        proxy_ch(static_cast<size_t>(opts.channel_capacity), "proxy"),
        detect_ch(static_cast<size_t>(opts.channel_capacity), "detect"),
        commit_ch(static_cast<size_t>(opts.channel_capacity), "commit"),
        proxy_batcher("proxy",
                      {opts.batch_target,
                       std::chrono::microseconds(opts.batch_wait_us)},
                      &ProcessProxyWave),
        detect_batcher("detect",
                       {opts.batch_target,
                        std::chrono::microseconds(opts.batch_wait_us)},
                       &ProcessDetectWave) {}

  models::DetectorArch arch;
  Channel<Group> proxy_ch;
  Channel<Group> detect_ch;
  Channel<Group> commit_ch;
  CrossClipBatcher<ProxyRequest> proxy_batcher;
  CrossClipBatcher<DetectRequest> detect_batcher;
  std::vector<std::unique_ptr<ClipWork>> clips;

  std::atomic<int> proxy_live{0};
  std::atomic<int> detect_live{0};
  std::atomic<bool> cancelled{false};

  /// Unblocks every worker: closed channels stop the loops, closed
  /// batchers fail pending Submits (whose callers fall back to direct
  /// invocations and then observe the closed downstream channel).
  void CancelAll() {
    cancelled.store(true, std::memory_order_relaxed);
    proxy_ch.Close();
    detect_ch.Close();
    commit_ch.Close();
    proxy_batcher.Close();
    detect_batcher.Close();
  }
};

namespace {

/// Source stage: interleaves up to `streams` clips round-robin, emitting
/// one frame_batch group per turn, so groups of many distinct clips are in
/// flight together — that interleaving is what the cross-clip batchers
/// feed on. Closes the proxy channel when all clips are emitted.
void SourceLoop(StreamingExecutor::RunState* s, const PipelineConfig& config,
                const std::vector<sim::Clip>& clips, int streams) {
  struct Cursor {
    int clip_index;
    int frame = 0;
    int group = 0;
  };
  std::vector<Cursor> open;
  size_t next_clip = 0;
  const auto refill = [&] {
    while (static_cast<int>(open.size()) < streams &&
           next_clip < clips.size()) {
      const int ci = static_cast<int>(next_clip++);
      // Zero-group clips were finalized at setup; nothing to emit.
      if (clips[static_cast<size_t>(ci)].num_frames() > 0) {
        open.push_back(Cursor{ci});
      }
    }
  };
  refill();
  size_t rr = 0;
  while (!open.empty()) {
    if (rr >= open.size()) rr = 0;
    Cursor& cur = open[rr];
    // A quarantined clip stops at the source: drop its cursor so the
    // remaining streams get its emission slots.
    if (s->clips[static_cast<size_t>(cur.clip_index)]->quarantined.load(
            std::memory_order_relaxed)) {
      open.erase(open.begin() + static_cast<long>(rr));
      refill();
      continue;
    }
    const sim::Clip& clip = clips[static_cast<size_t>(cur.clip_index)];
    Group g;
    g.clip_index = cur.clip_index;
    g.group_index = cur.group++;
    // Fresh contexts per group; their frame buffers (low_res_frame and the
    // stage tensors filled downstream) recycle through the shared
    // mem::BufferPool, so per-group construction stays heap-quiet once the
    // pool is warm.
    g.ctxs.reserve(static_cast<size_t>(config.frame_batch));
    for (int b = 0; b < config.frame_batch && cur.frame < clip.num_frames();
         ++b, cur.frame += config.sampling_gap) {
      FrameContext ctx;
      ctx.frame = cur.frame;
      g.ctxs.push_back(std::move(ctx));
    }
    if (cur.frame >= clip.num_frames()) {
      open.erase(open.begin() + static_cast<long>(rr));
      refill();
    } else {
      ++rr;
    }
    if (!s->proxy_ch.Push(std::move(g))) break;  // Cancelled.
  }
  s->proxy_ch.Close();
}

void ProxyWorkerLoop(StreamingExecutor::RunState* s) {
  telemetry::Counter* const groups = StageGroupsCounter("proxy");
  Group g;
  while (s->proxy_ch.Pop(&g)) {
    ClipWork& w = *s->clips[static_cast<size_t>(g.clip_index)];
    if (w.quarantined.load(std::memory_order_relaxed)) continue;  // Drop.
    telemetry::timeline::ScopedContext tctx({.clip = g.clip_index});
    // Graceful degradation: once this clip's proxy invocation has failed
    // persistently, skip proxy compute entirely — frames keep
    // proxy_ran == false and the detect stage falls back to full-frame
    // detection (correct, just without the proxy's frame selection).
    bool run_proxy = !w.proxy_degraded.load(std::memory_order_relaxed);
    if (run_proxy && fault::Enabled()) {
      static fault::Site* const site = fault::GetSite("proxy.invoke");
      int retries = 0;
      const Status st =
          AttemptStage(site, g.clip_index, g.group_index, &retries);
      if (!st.ok()) {
        if (!w.proxy_degraded.exchange(true)) {
          DegradedCounter()->Add(1);
          OTIF_LOG(kWarning)
              << "clip " << g.clip_index << ": proxy stage failing ("
              << st.ToString()
              << "); degrading to full-frame detection — accuracy may drop";
        }
        run_proxy = false;
      }
    }
    std::vector<FrameContext*> batch = g.Batch();
    if (run_proxy) {
      telemetry::ScopedSpan span(internal::StageSpan(1));
      w.proxy.ComputeBatch(batch);
    }
    if (telemetry::Enabled()) groups->Add(1);
    if (!s->detect_ch.Push(std::move(g))) break;
  }
  // Last worker out: release any partial wave (latency aid; the deadline
  // would release it anyway) and signal end-of-stream downstream.
  if (s->proxy_live.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    s->proxy_batcher.Flush();
    s->detect_ch.Close();
  }
}

void DetectWorkerLoop(StreamingExecutor::RunState* s) {
  telemetry::Counter* const groups = StageGroupsCounter("detect");
  Group g;
  while (s->detect_ch.Pop(&g)) {
    ClipWork& w = *s->clips[static_cast<size_t>(g.clip_index)];
    if (w.quarantined.load(std::memory_order_relaxed)) continue;  // Drop.
    telemetry::timeline::ScopedContext tctx({.clip = g.clip_index});
    if (fault::Enabled()) {
      static fault::Site* const site = fault::GetSite("detect.invoke");
      int retries = 0;
      const Status st =
          AttemptStage(site, g.clip_index, g.group_index, &retries);
      if (!st.ok()) {
        // Detection has no degraded fallback — a clip whose detector keeps
        // failing is quarantined and this group dropped; the source and
        // commit sides drain the rest of the clip.
        QuarantineClip(&w, g.clip_index, st, retries);
        continue;
      }
    }
    std::vector<FrameContext*> batch = g.Batch();
    {
      telemetry::ScopedSpan span(internal::StageSpan(2));
      w.detect.ComputeBatch(batch);
    }
    if (telemetry::Enabled()) groups->Add(1);
    if (!s->commit_ch.Push(std::move(g))) break;
  }
  if (s->detect_live.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    s->detect_batcher.Flush();
    s->commit_ch.Close();
  }
}

void CommitWorkerLoop(StreamingExecutor::RunState* s) {
  telemetry::Counter* const groups = StageGroupsCounter("commit");
  Group g;
  while (s->commit_ch.Pop(&g)) {
    ClipWork& w = *s->clips[static_cast<size_t>(g.clip_index)];
    telemetry::timeline::ScopedContext tctx({.clip = g.clip_index});
    std::lock_guard<std::mutex> lock(w.commit_mu);
    if (w.quarantined.load(std::memory_order_relaxed)) {
      // Drain: discard this group and any out-of-order arrivals buffered
      // for the failed clip (its result is discarded wholesale).
      w.pending.clear();
      continue;
    }
    w.pending.emplace(g.group_index, std::move(g));
    // Drain every consecutively-ready group: the reassembly buffer holds
    // out-of-order arrivals until their predecessors committed.
    while (true) {
      const auto it = w.pending.find(w.next_group);
      if (it == w.pending.end()) break;
      Group ready = std::move(it->second);
      w.pending.erase(it);
      CommitGroup(&w, &ready);
      ++w.next_group;
      if (telemetry::Enabled()) groups->Add(1);
    }
    if (!w.finalized && w.next_group >= w.total_groups) {
      FinalizeClip(&w);
      w.finalized = true;
    }
  }
}

}  // namespace

StreamingExecutor::StreamingExecutor(PipelineConfig config,
                                     const TrainedModels* trained,
                                     StreamingOptions options)
    : config_(std::move(config)), trained_(trained), options_(options) {}

Status StreamingExecutor::ValidateConfig(const PipelineConfig& config,
                                         const TrainedModels* trained) {
  if (config.sampling_gap < 1) {
    return Status::InvalidArgument("sampling_gap must be >= 1");
  }
  if (config.frame_batch < 1) {
    return Status::InvalidArgument("frame_batch must be >= 1");
  }
  if (!(config.detector_scale > 0.0) || config.detector_scale > 1.0) {
    return Status::InvalidArgument("detector_scale must be in (0, 1]");
  }
  bool known_arch = false;
  for (const models::DetectorArch& a : models::StandardDetectorArchs()) {
    if (a.name == config.detector_arch) known_arch = true;
  }
  if (!known_arch) {
    return Status::InvalidArgument("unknown detector architecture: " +
                                   config.detector_arch);
  }
  if (trained == nullptr) {
    if (config.use_proxy) {
      return Status::FailedPrecondition("use_proxy requires trained models");
    }
    if (config.tracker != TrackerKind::kSort) {
      return Status::FailedPrecondition(
          "the recurrent tracker requires trained models");
    }
    if (config.refine) {
      return Status::FailedPrecondition("refine requires trained models");
    }
  } else if (config.use_proxy) {
    if (config.proxy_resolution_index < 0 ||
        static_cast<size_t>(config.proxy_resolution_index) >=
            trained->proxies.size()) {
      return Status::InvalidArgument("proxy_resolution_index out of range");
    }
    if (trained->window_sizes.empty()) {
      return Status::FailedPrecondition(
          "use_proxy requires a trained window size set");
    }
  }
  return Status::OK();
}

StatusOr<StreamingRunReport> StreamingExecutor::Run(
    const std::vector<sim::Clip>& clips) {
  OTIF_RETURN_IF_ERROR(ValidateConfig(config_, trained_));
  if (clips.empty()) return StreamingRunReport{};

  const ResolvedOptions opts = Resolve(options_, config_.frame_batch);
  RunState state(models::ArchByName(models::StandardDetectorArchs(),
                                    config_.detector_arch),
                 opts);

  // Register the run with the live-progress registry (no-op when
  // introspection is off). Totals are the sampled frames each clip will
  // commit — the same quantity CommitGroup reports.
  if (obs::ProgressEnabled()) {
    std::vector<int64_t> totals;
    totals.reserve(clips.size());
    for (const sim::Clip& clip : clips) {
      totals.push_back((clip.num_frames() + config_.sampling_gap - 1) /
                       config_.sampling_gap);
    }
    obs::RunProgress::Global().BeginRun("streaming", std::move(totals));
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    if (cancelled_) {
      return Status::Cancelled("streaming executor was cancelled");
    }
    OTIF_CHECK(active_ == nullptr)
        << "StreamingExecutor::Run called concurrently";
    active_ = &state;
  }

  // Per-clip setup: stage objects, cross-clip batching hooks, BeginClip
  // charges (the serial driver also runs BeginClip before any batch).
  state.clips.reserve(clips.size());
  for (size_t i = 0; i < clips.size(); ++i) {
    const sim::Clip& clip = clips[i];
    auto work =
        std::make_unique<ClipWork>(config_, trained_, clip, state.arch);
    const int samples =
        (clip.num_frames() + config_.sampling_gap - 1) / config_.sampling_gap;
    work->total_groups =
        (samples + config_.frame_batch - 1) / config_.frame_batch;

    RunState* const rs = &state;
    work->proxy.set_score_batch_fn(
        [rs](const models::ProxyModel& proxy,
             const std::vector<const video::Image*>& frames) {
          ProxyRequest req;
          req.proxy = &proxy;
          req.frames = &frames;
          if (rs->proxy_batcher.Submit(&req,
                                       static_cast<int>(frames.size()))) {
            return std::move(req.out);
          }
          // Cancelled mid-flight: a direct invocation is bit-identical, so
          // the in-flight group still completes with correct values.
          return proxy.ScoreBatch(frames);
        });
    work->detect.set_detect_batch_fn(
        [rs](const models::SimulatedDetector& detector, const sim::Clip& c,
             const std::vector<int>& frames, double scale) {
          DetectRequest req;
          req.detector = &detector;
          req.clip = &c;
          req.frames = &frames;
          req.scale = scale;
          if (rs->detect_batcher.Submit(&req,
                                        static_cast<int>(frames.size()))) {
            return std::move(req.out);
          }
          return detector.DetectBatch(c, frames, scale);
        });

    {
      telemetry::timeline::ScopedContext tctx(
          {.clip = static_cast<int64_t>(i)});
      for (int s = 0; s < internal::kNumStages; ++s) {
        telemetry::ScopedSpan span(internal::StageSpan(s));
        work->stages[static_cast<size_t>(s)]->BeginClip(&work->result);
      }
      if (work->total_groups == 0) {
        FinalizeClip(work.get());
        work->finalized = true;
      }
    }
    state.clips.push_back(std::move(work));
  }

  state.proxy_live.store(opts.stage_workers, std::memory_order_relaxed);
  state.detect_live.store(opts.stage_workers, std::memory_order_relaxed);

  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(1 + 3 * opts.stage_workers));
  threads.emplace_back(
      [&] { SourceLoop(&state, config_, clips, opts.streams); });
  for (int t = 0; t < opts.stage_workers; ++t) {
    threads.emplace_back([&] { ProxyWorkerLoop(&state); });
    threads.emplace_back([&] { DetectWorkerLoop(&state); });
    threads.emplace_back([&] { CommitWorkerLoop(&state); });
  }
  for (std::thread& t : threads) t.join();

  if (obs::ProgressEnabled()) obs::RunProgress::Global().EndRun();

  {
    std::lock_guard<std::mutex> lock(mu_);
    active_ = nullptr;
  }
  if (state.cancelled.load(std::memory_order_relaxed)) {
    return Status::Cancelled("streaming executor run was cancelled");
  }

  StreamingRunReport report;
  report.results.reserve(state.clips.size());
  for (size_t i = 0; i < state.clips.size(); ++i) {
    ClipWork* w = state.clips[i].get();
    if (w->quarantined.load(std::memory_order_relaxed)) {
      FailedClip failed;
      failed.clip_index = static_cast<int>(i);
      failed.status = w->fail_status;
      failed.retries = w->fail_retries;
      report.failed_clips.push_back(std::move(failed));
      // Positional placeholder so results[i] still addresses clip i.
      report.results.emplace_back();
      continue;
    }
    if (!w->finalized) {
      // Reachable only under injected pipe faults (e.g. an early channel
      // close): the dataflow shut down before this clip drained. Report
      // it as a run-level error instead of crashing the process.
      return Status::Internal(StrFormat(
          "clip %zu left unfinalized: the stage pipeline shut down early",
          i));
    }
    if (w->proxy_degraded.load(std::memory_order_relaxed)) {
      report.degraded_clips.push_back(static_cast<int>(i));
    }
    report.results.push_back(std::move(w->result));
  }
  return report;
}

void StreamingExecutor::Cancel() {
  std::lock_guard<std::mutex> lock(mu_);
  cancelled_ = true;
  if (active_ != nullptr) active_->CancelAll();
}

}  // namespace otif::core
